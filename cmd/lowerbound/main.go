// Command lowerbound runs the paper's lower-bound adversaries interactively:
//
//	lowerbound -game component -n 1024 -f 4 -k 4   # Theorem 3.8 / Lemma 3.9
//	lowerbound -game wakeup -n 1024                # Theorem 4.2 sweep
//	lowerbound -game lasvegas -n 64 -trials 300    # Theorem 3.16 audit
package main

import (
	"flag"
	"fmt"
	"os"

	"cliquelect/internal/lowerbound"
	"cliquelect/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lowerbound", flag.ContinueOnError)
	var (
		game   = fs.String("game", "component", "which adversary: component, wakeup, lasvegas")
		n      = fs.Int("n", 1024, "number of nodes")
		f      = fs.Float64("f", 4, "message budget parameter f (component game)")
		k      = fs.Int("k", 4, "tradeoff parameter of the victim algorithm")
		trials = fs.Int("trials", 300, "trials (wakeup / lasvegas)")
		seed   = fs.Uint64("seed", 1, "random seed")
		cheat  = fs.Bool("cheat", false, "lasvegas: audit the broken o(n) cheater instead of the honest algorithm")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *game {
	case "component":
		res, err := lowerbound.ComponentGame(*n, *f, lowerbound.TradeoffVictim(*k), *seed)
		if err != nil {
			return err
		}
		fmt.Printf("component game: n=%d f=%.2f sigma-base=%d predicted rounds > %.2f\n\n",
			res.N, res.F, res.SigmaBase, res.PredictedRounds)
		t := stats.NewTable("round", "msgs", "new edges", "max component", "cap 2^sigma")
		for _, cr := range res.Rounds[1:] {
			t.AddRow(cr.Round, cr.Messages, cr.NewEdges, cr.MaxComponent, cr.Cap)
		}
		fmt.Print(t.String())
		fmt.Printf("\nadversary stalled the algorithm for %d round(s)\n", res.StalledRounds())
		if res.BudgetExceededAt > 0 {
			fmt.Printf("budget n·f exceeded (per-block) in round %d\n", res.BudgetExceededAt)
		}
		if res.CapViolatedAt > 0 {
			fmt.Printf("component cap first violated in round %d\n", res.CapViolatedAt)
		}
	case "wakeup":
		res, err := lowerbound.WakeupGame(*n, *trials, []float64{0.125, 0.25, 0.5, 1, 2, 4}, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("wake-up game: n=%d, envelope n^1.5 = %.0f\n\n", res.N, res.Envelope)
		t := stats.NewTable("beta", "fan-out", "mean msgs", "msgs/envelope", "wake-fail rate")
		for _, p := range res.Points {
			t.AddRow(p.Beta, p.Fanout, p.MeanMessages, p.MeanMessages/res.Envelope, p.WakeFailRate)
		}
		fmt.Print(t.String())
	case "lasvegas":
		factory := lowerbound.HonestLasVegas()
		label := "Theorem 3.16 algorithm"
		if *cheat {
			factory = lowerbound.NewCheatingLasVegas()
			label = "cheating o(n) candidate"
		}
		rep, err := lowerbound.CheckLasVegas(*n, *trials, factory, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("las vegas audit of %s: n=%d trials=%d\n", label, rep.N, rep.Trials)
		fmt.Printf("  zero-leader runs : %d\n", rep.ZeroLeader)
		fmt.Printf("  multi-leader runs: %d\n", rep.MultiLeader)
		fmt.Printf("  silent-half runs : %d\n", rep.SilentHalf)
		fmt.Printf("  mean messages    : %.1f (n-1 = %d)\n", rep.MeanMessages, rep.N-1)
		if rep.Failed() {
			fmt.Println("verdict: REFUTED — not a correct sub-linear Las Vegas algorithm (Theorem 3.16)")
		} else {
			fmt.Println("verdict: consistent with Theorem 3.16 (correct, and paying Omega(n))")
		}
	default:
		return fmt.Errorf("unknown game %q", *game)
	}
	return nil
}
