package main

import "testing"

func TestComponentGameCmd(t *testing.T) {
	if err := run([]string{"-game", "component", "-n", "64", "-f", "4", "-k", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestWakeupGameCmd(t *testing.T) {
	if err := run([]string{"-game", "wakeup", "-n", "64", "-trials", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestLasVegasCmd(t *testing.T) {
	if err := run([]string{"-game", "lasvegas", "-n", "32", "-trials", "20"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-game", "lasvegas", "-n", "32", "-trials", "20", "-cheat"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownGame(t *testing.T) {
	if err := run([]string{"-game", "bogus"}); err == nil {
		t.Fatal("unknown game accepted")
	}
}
