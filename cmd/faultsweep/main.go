// Command faultsweep measures election resilience under injected faults: it
// sweeps crash and drop rates across specs and network sizes and prints a
// resilience table — election-success rate, message cost and the fault
// counters per configuration. Per-seed runs are deterministic, so a table is
// reproducible from its seed; rows fan out over a worker pool (elect.RunMany).
//
// The -workers flag is dual-mode like cmd/sweep's: an integer bounds the
// local worker pool, a comma-separated host list shards the sweep across a
// fleet of electd daemons (byte-identical results, per-worker cells/s
// breakdown at the end).
//
// Usage:
//
//	faultsweep -algo tradeoff -ns 64,128 -drop 0,0.05,0.1,0.2
//	faultsweep -algo all -ns 128 -crash 0,0.1,0.3 -csv
//	faultsweep -algo asynctradeoff -drop 0.1 -faults adaptive=1,dup=0.02
//	faultsweep -algo tradeoff -ns 256 -seeds 50 -cache /tmp/electcache
//	faultsweep -algo tradeoff -ns 256 -workers host1:8090,host2:8090
//	faultsweep -algo kpprt -ns 256 -topo ring,torus -drop 0,0.05
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"cliquelect/elect"
	"cliquelect/elect/client"
	"cliquelect/internal/cliutil"
	"cliquelect/internal/distrib"
	"cliquelect/internal/resultcache"
	"cliquelect/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "faultsweep:", err)
		os.Exit(1)
	}
}

// resolveSpecs turns the -algo flag into specs: a comma-separated name list,
// or "all" for every fault-qualified spec in the registry.
func resolveSpecs(algo string) ([]elect.Spec, error) {
	if algo == "all" {
		var out []elect.Spec
		for _, s := range elect.Registry() {
			if s.FaultTolerant {
				out = append(out, s)
			}
		}
		return out, nil
	}
	var out []elect.Spec
	for _, name := range strings.Split(algo, ",") {
		spec, err := elect.Lookup(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	return out, nil
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("faultsweep", flag.ContinueOnError)
	var (
		algo      = fs.String("algo", "tradeoff", `algorithm names (comma-separated), or "all" for every fault-qualified spec`)
		nsFlag    = fs.String("ns", "64,128", "comma-separated network sizes")
		dropFlag  = fs.String("drop", "0,0.05,0.1,0.2", "comma-separated message-drop rates")
		crashFlag = fs.String("crash", "0", "comma-separated node-crash rates")
		base      = fs.String("faults", "", "base fault plan applied to every cell, elect.ParseFaults syntax (e.g. dup=0.02,dropfirst=4,adaptive=1); crash/drop belong to the sweep axes")
		k         = fs.Int("k", 3, "tradeoff parameter k")
		d         = fs.Int("d", 2, "smallid d")
		g         = fs.Int("g", 1, "smallid g")
		eps       = fs.Float64("eps", 1.0/16, "advwake epsilon")
		seeds     = fs.Int("seeds", 20, "runs per configuration")
		seed      = fs.Uint64("seed", 1, "master seed")
		wake      = fs.Int("wake", 0, "adversarial wake-up set size (0 = simultaneous)")
		policy    = fs.String("policy", "unit", "async delay policy")
		workers   = fs.String("workers", "0", "parallel runs (0 = GOMAXPROCS), or a comma-separated electd host list for fleet dispatch")
		csv       = fs.Bool("csv", false, "emit CSV instead of an aligned table")
		cacheDir  = fs.String("cache", "", "persistent result-cache directory; repeated sweeps replay cached runs (adaptive plans always re-execute)")
		topoFlag  = fs.String("topo", "", "comma-separated topology specs swept as an extra axis, e.g. ring,torus (empty = clique)")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs, err := resolveSpecs(*algo)
	if err != nil {
		return err
	}
	delays, err := elect.ParseDelays(*policy)
	if err != nil {
		return err
	}
	basePlan, err := elect.ParseFaults(*base)
	if err != nil {
		return err
	}
	// The sweep axes own the crash and drop rates; a base plan that also sets
	// them would be silently overwritten per cell, so reject the conflict.
	if basePlan.CrashRate != 0 || basePlan.DropRate != 0 {
		return fmt.Errorf("set crash/drop rates via the -crash/-drop sweep axes, not -faults")
	}
	ns, err := cliutil.ParseInts(*nsFlag)
	if err != nil {
		return err
	}
	drops, err := cliutil.ParseFloats(*dropFlag)
	if err != nil {
		return err
	}
	crashes, err := cliutil.ParseFloats(*crashFlag)
	if err != nil {
		return err
	}
	localWorkers, fleetHosts, err := cliutil.ParseWorkers(*workers)
	if err != nil {
		return err
	}
	var fleet *distrib.Fleet
	if fleetHosts != nil {
		if fleet, err = distrib.New(distrib.Config{Workers: fleetHosts}); err != nil {
			return err
		}
	}

	var cache *resultcache.Cache
	if *cacheDir != "" {
		cache = resultcache.New(resultcache.WithDir(*cacheDir))
	}

	topos := splitTopos(*topoFlag)
	var table *stats.Table
	if len(topos) > 0 {
		table = stats.NewTable("algo", "topo", "n", "crash", "drop", "success", "mean msgs",
			"mean time", "crashed", "dropped", "dup'd")
	} else {
		table = stats.NewTable("algo", "n", "crash", "drop", "success", "mean msgs",
			"mean time", "crashed", "dropped", "dup'd")
	}
	cells := 0
	start := time.Now()
	for _, spec := range specs {
		for _, cr := range crashes {
			for _, dr := range drops {
				plan := basePlan
				plan.CrashRate = cr
				plan.DropRate = dr
				opts := []elect.Option{
					elect.WithParams(elect.Params{K: *k, D: *d, G: *g, Eps: *eps}),
					elect.WithWake(*wake),
					elect.WithFaults(plan),
				}
				if spec.Model == elect.Async {
					opts = append(opts, elect.WithDelays(delays))
				}
				b := elect.Batch{
					Ns:      ns,
					Seeds:   elect.Seeds(*seed, *seeds),
					Topos:   topos,
					Options: opts,
					Workers: localWorkers,
				}
				if cache != nil {
					b.Cache = cache
				}
				if fleet != nil {
					// Mirror opts above in wire form; crash/drop rates ride the
					// -faults syntax and round-trip exactly ('g' formatting).
					kk, dd, gg, ee := *k, *d, *g, *eps
					wire := client.Options{
						Params: &client.ParamSpec{K: &kk, D: &dd, G: &gg, Eps: &ee},
						Wake:   *wake,
						Faults: wireFaults(*base, cr, dr),
					}
					if spec.Model == elect.Async {
						wire.Delays = *policy
					}
					b.Remote = fleet.Runner(wire)
				}
				batch, err := elect.RunMany(spec, b)
				if err != nil {
					return err
				}
				cells += len(batch.Runs)
				for _, agg := range batch.Aggregates {
					if len(topos) > 0 {
						table.AddRow(spec.Name, agg.Topo, agg.N, cr, dr,
							fmt.Sprintf("%.2f", agg.SuccessRate),
							agg.Messages.Mean, agg.Time.Mean,
							agg.MeanCrashed, agg.MeanDropped, agg.MeanDuplicated)
					} else {
						table.AddRow(spec.Name, agg.N, cr, dr,
							fmt.Sprintf("%.2f", agg.SuccessRate),
							agg.Messages.Mean, agg.Time.Mean,
							agg.MeanCrashed, agg.MeanDropped, agg.MeanDuplicated)
					}
				}
			}
		}
	}
	elapsed := time.Since(start)
	if *csv {
		// CSV output stays a pure function of the flags (no timing line), so
		// it can be diffed and machine-consumed.
		fmt.Fprint(w, table.CSV())
	} else {
		fmt.Fprint(w, table.String())
		fmt.Fprintf(w, "# %d cells in %v (%.0f cells/s)\n",
			cells, elapsed.Round(time.Millisecond), float64(cells)/elapsed.Seconds())
	}
	if fleet != nil && !*csv {
		fmt.Fprint(w, fleet.Stats())
	}
	if cache != nil {
		s := cache.Stats()
		fmt.Fprintf(w, "# cache: %d hits (%d from disk), %d misses\n", s.Hits, s.DiskHits, s.Misses)
	}
	return nil
}

// splitTopos parses the -topo flag as in cmd/sweep: a comma-separated list
// of topology specs, except an explicit edge list ("edges:0-1,1-2,...") uses
// commas itself and is taken as one spec.
func splitTopos(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	if strings.HasPrefix(s, "edges:") {
		return []string{s}
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// wireFaults renders the cell's fault plan in elect.ParseFaults syntax for
// the wire: the -faults base plan plus the sweep axes' crash/drop rates.
// FormatFloat 'g' with precision -1 round-trips float64 exactly, so the
// worker parses the very rates the local path would use.
func wireFaults(base string, crash, drop float64) string {
	var parts []string
	if s := strings.TrimSpace(base); s != "" {
		parts = append(parts, s)
	}
	if crash != 0 {
		parts = append(parts, "crash="+strconv.FormatFloat(crash, 'g', -1, 64))
	}
	if drop != 0 {
		parts = append(parts, "drop="+strconv.FormatFloat(drop, 'g', -1, 64))
	}
	return strings.Join(parts, ",")
}
