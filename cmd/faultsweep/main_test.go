package main

import (
	"bytes"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"cliquelect/elect"
	"cliquelect/internal/service"
)

func sweepCSV(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(append(args, "-csv"), &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// successColumn extracts the per-row success rates from the CSV output.
func successColumn(t *testing.T, csv string) []float64 {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	var out []float64
	for _, line := range lines[1:] { // skip header
		fields := strings.Split(line, ",")
		if len(fields) < 5 {
			t.Fatalf("short CSV row %q", line)
		}
		v, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			t.Fatalf("bad success cell in %q: %v", line, err)
		}
		out = append(out, v)
	}
	return out
}

// TestResilienceCurves is the sweep's acceptance criterion: for the paper's
// headline sync spec and one async spec, the election-success rate is 1.0 at
// drop rate 0 and degrades monotonically (within noise) as the rate rises —
// on both simulators.
func TestResilienceCurves(t *testing.T) {
	cases := []struct {
		algo  string
		drops string
	}{
		{"tradeoff", "0,0.02,0.08,0.3"},
		{"asynctradeoff", "0,0.002,0.01,0.05"},
	}
	for _, tc := range cases {
		rates := successColumn(t, sweepCSV(t,
			"-algo", tc.algo, "-ns", "48", "-drop", tc.drops, "-seeds", "16"))
		if len(rates) != 4 {
			t.Fatalf("%s: %d rows, want 4", tc.algo, len(rates))
		}
		if rates[0] != 1 {
			t.Errorf("%s: success %v at drop rate 0, want 1.0", tc.algo, rates[0])
		}
		const noise = 0.1
		for i := 1; i < len(rates); i++ {
			if rates[i] > rates[i-1]+noise {
				t.Errorf("%s: success rose from %v to %v between drop rates (rows %d→%d)",
					tc.algo, rates[i-1], rates[i], i-1, i)
			}
		}
		if last := rates[len(rates)-1]; last >= rates[0] {
			t.Errorf("%s: success did not degrade across the sweep: %v", tc.algo, rates)
		}
	}
}

// TestSweepDeterministic: the table is a pure function of its flags — two
// invocations emit identical bytes.
func TestSweepDeterministic(t *testing.T) {
	args := []string{"-algo", "tradeoff,asynctradeoff", "-ns", "32",
		"-drop", "0,0.1", "-crash", "0,0.2", "-seeds", "6", "-faults", "dup=0.02"}
	if a, b := sweepCSV(t, args...), sweepCSV(t, args...); a != b {
		t.Fatalf("same flags, different tables:\n%s\n---\n%s", a, b)
	}
}

func TestSweepAllSelectsQualifiedSpecs(t *testing.T) {
	specs, err := resolveSpecs("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatal("no fault-qualified specs")
	}
	for _, s := range specs {
		if !s.FaultTolerant {
			t.Errorf("%s selected by \"all\" without FaultTolerant", s.Name)
		}
		if s.Name == "lasvegas" {
			t.Error("lasvegas selected despite wedging under faults")
		}
	}
}

func TestSweepAdaptive(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-algo", "tradeoff", "-ns", "24", "-drop", "0",
		"-seeds", "4", "-faults", "adaptive=1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tradeoff") {
		t.Fatalf("missing rows:\n%s", buf.String())
	}
}

func TestSweepErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-algo", "bogus"},
		{"-ns", "12,abc"},
		{"-drop", "0,x"},
		{"-crash", "y"},
		{"-faults", "bogus=1"},
		{"-faults", "drop=0.3"}, // the sweep axes own crash/drop rates
		{"-faults", "crash=0.3"},
		{"-policy", "bogus"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestSweepCacheReplay: -cache leaves the table untouched (cold or warm)
// and the warm pass is all hits.
func TestSweepCacheReplay(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-algo", "tradeoff", "-ns", "32", "-drop", "0,0.1", "-seeds", "4"}
	table := func(csv string) string {
		var rows []string
		for _, line := range strings.Split(csv, "\n") {
			if !strings.HasPrefix(line, "#") {
				rows = append(rows, line)
			}
		}
		return strings.Join(rows, "\n")
	}
	plain := sweepCSV(t, args...)
	cold := sweepCSV(t, append(args, "-cache", dir)...)
	warm := sweepCSV(t, append(args, "-cache", dir)...)
	if table(plain) != table(cold) || table(cold) != table(warm) {
		t.Fatalf("cache changed the table:\n%s\n---\n%s\n---\n%s", plain, cold, warm)
	}
	if !strings.Contains(warm, ", 0 misses") {
		t.Fatalf("warm pass was not all hits:\n%s", warm)
	}
}

// TestFaultsweepFleetMatchesLocal: a resilience sweep across two electd
// workers emits byte-identical CSV to the local run — the crash/drop axes
// ride the wire as fault-plan strings and round-trip exactly.
func TestFaultsweepFleetMatchesLocal(t *testing.T) {
	urls := make([]string, 2)
	for i := range urls {
		srv := service.New(service.Config{})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			ts.Close()
			srv.Close()
		})
		urls[i] = ts.URL
	}
	args := []string{"-algo", "tradeoff", "-ns", "32", "-seeds", "4",
		"-drop", "0,0.1", "-crash", "0,0.25", "-faults", "dup=0.05", "-csv"}
	var local, fleet bytes.Buffer
	if err := run(args, &local); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-workers", strings.Join(urls, ",")), &fleet); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local.Bytes(), fleet.Bytes()) {
		t.Fatalf("fleet CSV differs from local:\n%s\nvs\n%s", fleet.Bytes(), local.Bytes())
	}
}

func TestWireFaults(t *testing.T) {
	for _, tc := range []struct {
		base        string
		crash, drop float64
		want        string
	}{
		{"", 0, 0, ""},
		{"", 0.25, 0, "crash=0.25"},
		{"", 0, 0.1, "drop=0.1"},
		{"dup=0.05", 0.1, 0.2, "dup=0.05,crash=0.1,drop=0.2"},
		{" dup=0.05 ", 0, 0.1, "dup=0.05,drop=0.1"},
	} {
		if got := wireFaults(tc.base, tc.crash, tc.drop); got != tc.want {
			t.Errorf("wireFaults(%q, %v, %v) = %q, want %q", tc.base, tc.crash, tc.drop, got, tc.want)
		}
		// Whatever we emit must parse back to the plan the local path builds.
		plan, err := elect.ParseFaults(wireFaults(tc.base, tc.crash, tc.drop))
		if err != nil {
			t.Fatalf("wireFaults(%q, %v, %v) unparseable: %v", tc.base, tc.crash, tc.drop, err)
		}
		if plan.CrashRate != tc.crash || plan.DropRate != tc.drop {
			t.Errorf("round trip lost rates: %+v", plan)
		}
	}
}
