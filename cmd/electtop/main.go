// Command electtop is the fleet control room: a dependency-free terminal
// dashboard over GET /v1/fleetz. It polls one daemon (any member — the
// daemon federates the rest) and renders the whole fleet: per-node role,
// epoch, SLO health, load and memory, a queue-depth sparkline per node,
// per-route latency quantiles, and a tail of the merged fleet event
// journal.
//
//	electtop -addr http://localhost:8090
//	electtop -addr http://localhost:8090 -once   # one plain-text frame (CI, scripts)
//
// Live mode redraws in place with ANSI escapes at -interval. -once prints a
// single frame without any escape codes and exits — that output is what the
// CI obs-smoke job diffs against /v1/fleetz.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"cliquelect/elect/client"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "electtop:", err)
		os.Exit(1)
	}
}

// sparkMarks are the eight sparkline levels, lowest to highest.
var sparkMarks = []rune("▁▂▃▄▅▆▇█")

// sparkWidth is how many samples each node's load sparkline holds.
const sparkWidth = 30

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("electtop", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "http://localhost:8090", "any fleet daemon's base URL")
		interval = fs.Duration("interval", 2*time.Second, "refresh interval in live mode")
		once     = fs.Bool("once", false, "print one plain frame (no ANSI) and exit")
		events   = fs.Int("events", 10, "journal tail length")
		frames   = fs.Int("frames", 0, "stop after N live frames (0 = run until interrupted; scripting hook)")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	c := client.New(*addr)
	if *once {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		fz, err := c.Fleetz(ctx)
		if err != nil {
			return err
		}
		render(w, fz, nil, *events)
		return nil
	}

	history := map[string][]int{}
	for n := 0; *frames == 0 || n < *frames; n++ {
		if n > 0 {
			time.Sleep(*interval)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		fz, err := c.Fleetz(ctx)
		cancel()
		// Home + clear: redraw in place rather than scroll.
		fmt.Fprint(w, "\x1b[H\x1b[2J")
		if err != nil {
			fmt.Fprintf(w, "electtop: %s unreachable: %v (retrying every %s)\n", *addr, err, *interval)
			continue
		}
		for _, node := range fz.Nodes {
			h := append(history[node.URL], node.QueueDepth+node.ActiveJobs)
			if len(h) > sparkWidth {
				h = h[len(h)-sparkWidth:]
			}
			history[node.URL] = h
		}
		render(w, fz, history, *events)
	}
	return nil
}

// render writes one frame: the fleet header, the node table, the route
// table and the event tail. history is nil in -once mode (no sparklines —
// one frame has no history to draw).
func render(w io.Writer, fz *client.FleetzResponse, history map[string][]int, eventTail int) {
	ts := time.UnixMicro(fz.TSUS).Format("15:04:05")
	coord := fz.Coordinator
	if coord == "" {
		coord = "(none)"
	}
	agree := "epochs agree"
	if !fz.EpochAgreement {
		agree = "EPOCH SPLIT"
	}
	fmt.Fprintf(w, "electd fleet — %d nodes · coordinator %s (epoch %d, %d claiming) · health %s · %s · %s\n\n",
		len(fz.Nodes), coord, fz.Epoch, fz.Coordinators, strings.ToUpper(fz.Health), agree, ts)

	tw := newTable(w)
	header := []string{"NODE", "ROLE", "EPOCH", "HEALTH", "BURN", "QUEUE", "ACTIVE", "CACHE%", "RSS", "GORO", "UP"}
	if history != nil {
		header = append(header, "LOAD")
	}
	tw.row(header...)
	for _, n := range fz.Nodes {
		if !n.Reachable {
			tw.row(n.URL, "UNREACHABLE", "-", "-", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		role := n.Role
		if role == "" {
			role = "standalone"
		}
		health, burn := "-", "-"
		if n.SLO != nil {
			health = n.SLO.Verdict
			burn = fmt.Sprintf("%.2f", n.SLO.BurnRate)
		}
		cache := "-"
		if n.CacheHitRatio >= 0 {
			cache = fmt.Sprintf("%.1f", n.CacheHitRatio*100)
		}
		row := []string{
			n.URL, role, fmt.Sprintf("%d", n.Epoch), health, burn,
			fmt.Sprintf("%d", n.QueueDepth), fmt.Sprintf("%d", n.ActiveJobs),
			cache, fmtBytes(n.RSSBytes), fmt.Sprintf("%d", n.Goroutines),
			fmtDur(time.Duration(n.UptimeSeconds * float64(time.Second))),
		}
		if history != nil {
			row = append(row, sparkline(history[n.URL]))
		}
		tw.row(row...)
	}
	tw.flush()

	routes := mergeRoutes(fz.Nodes)
	if len(routes) > 0 {
		fmt.Fprintf(w, "\n")
		tw = newTable(w)
		tw.row("ROUTE", "REQS", "5XX", "P50", "P99")
		for _, rt := range routes {
			tw.row(rt.Route, fmt.Sprintf("%d", rt.Requests), fmt.Sprintf("%d", rt.Errors),
				fmtMs(rt.P50Ms), fmtMs(rt.P99Ms))
		}
		tw.flush()
	}

	if eventTail > 0 && len(fz.Events) > 0 {
		fmt.Fprintf(w, "\nEVENTS\n")
		evs := fz.Events
		if len(evs) > eventTail {
			evs = evs[len(evs)-eventTail:]
		}
		for _, e := range evs {
			fmt.Fprintf(w, "  %s %-18s %-16s %s\n",
				time.UnixMicro(e.TS).Format("15:04:05.000"), e.Node, e.Kind, fmtFields(e.Fields))
		}
	}
}

// mergeRoutes sums route digests across nodes (quantiles keep each route's
// worst node — a control room surfaces the slowest replica, not the mean).
func mergeRoutes(nodes []client.NodeStatus) []client.RouteStats {
	agg := map[string]*client.RouteStats{}
	for _, n := range nodes {
		for _, rt := range n.Routes {
			a := agg[rt.Route]
			if a == nil {
				a = &client.RouteStats{Route: rt.Route}
				agg[rt.Route] = a
			}
			a.Requests += rt.Requests
			a.Errors += rt.Errors
			a.P50Ms = max(a.P50Ms, rt.P50Ms)
			a.P99Ms = max(a.P99Ms, rt.P99Ms)
		}
	}
	out := make([]client.RouteStats, 0, len(agg))
	for _, a := range agg {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Requests != out[j].Requests {
			return out[i].Requests > out[j].Requests
		}
		return out[i].Route < out[j].Route
	})
	return out
}

// sparkline renders samples as one bar rune each, scaled to the window max.
func sparkline(samples []int) string {
	if len(samples) == 0 {
		return ""
	}
	top := 1
	for _, s := range samples {
		if s > top {
			top = s
		}
	}
	var b strings.Builder
	for _, s := range samples {
		if s < 0 {
			s = 0
		}
		i := s * (len(sparkMarks) - 1) / top
		b.WriteRune(sparkMarks[i])
	}
	return b.String()
}

func fmtFields(fields map[string]string) string {
	if len(fields) == 0 {
		return ""
	}
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+fields[k])
	}
	return strings.Join(parts, " ")
}

func fmtBytes(n int64) string {
	switch {
	case n <= 0:
		return "-"
	case n < 1<<20:
		return fmt.Sprintf("%dKB", n>>10)
	case n < 1<<30:
		return fmt.Sprintf("%dMB", n>>20)
	default:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	}
}

func fmtMs(ms float64) string {
	if ms <= 0 {
		return "-"
	}
	if ms < 10 {
		return fmt.Sprintf("%.2fms", ms)
	}
	return fmt.Sprintf("%.0fms", ms)
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Minute:
		return fmt.Sprintf("%ds", int(d.Seconds()))
	case d < time.Hour:
		return fmt.Sprintf("%dm", int(d.Minutes()))
	default:
		return fmt.Sprintf("%.1fh", d.Hours())
	}
}

// table right-pads columns to the widest cell — a tiny text/tabwriter
// stand-in that keeps the binary dependency-free in spirit and the output
// byte-stable for tests.
type table struct {
	w    io.Writer
	rows [][]string
}

func newTable(w io.Writer) *table { return &table{w: w} }

func (t *table) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) flush() {
	widths := map[int]int{}
	for _, r := range t.rows {
		for i, c := range r {
			// Sparklines are multi-byte but one column per rune.
			if n := len([]rune(c)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	for _, r := range t.rows {
		var b strings.Builder
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(r)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(c))))
			}
		}
		fmt.Fprintln(t.w, strings.TrimRight(b.String(), " "))
	}
	t.rows = t.rows[:0]
}
