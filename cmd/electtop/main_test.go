package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cliquelect/elect/client"
	"cliquelect/internal/obs"
)

// cannedFleetz is a three-node snapshot with one coordinator, one degraded
// follower and one unreachable node — every rendering branch at once.
func cannedFleetz() client.FleetzResponse {
	healthy := &obs.SLOStatus{Verdict: obs.HealthHealthy, BurnRate: 0.2}
	degraded := &obs.SLOStatus{Verdict: obs.HealthDegraded, BurnRate: 2.5}
	return client.FleetzResponse{
		Self:           "http://n1",
		TSUS:           time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC).UnixMicro(),
		Coordinator:    "http://n1",
		Epoch:          4,
		Coordinators:   1,
		EpochAgreement: true,
		Health:         obs.HealthCritical,
		Nodes: []client.NodeStatus{
			{
				URL: "http://n1", Reachable: true, Role: "coordinator", Epoch: 4,
				Coordinator: "http://n1", UptimeSeconds: 90, QueueDepth: 2, ActiveJobs: 1,
				CacheHitRatio: 0.875, Goroutines: 25, RSSBytes: 42 << 20, SLO: healthy,
				Routes: []client.RouteStats{
					{Route: "/v1/run", Requests: 120, Errors: 0, P50Ms: 1.2, P99Ms: 40},
				},
			},
			{
				URL: "http://n2", Reachable: true, Role: "follower", Epoch: 4,
				Coordinator: "http://n1", UptimeSeconds: 4000, CacheHitRatio: -1,
				Goroutines: 19, RSSBytes: 800 << 10, SLO: degraded,
				Routes: []client.RouteStats{
					{Route: "/v1/run", Requests: 30, Errors: 2, P50Ms: 2.1, P99Ms: 95},
				},
			},
			{URL: "http://n3", Reachable: false, Err: "connection refused"},
		},
		Events: []obs.Event{
			{Seq: 1, TS: time.Date(2026, 8, 8, 11, 59, 0, 0, time.UTC).UnixMicro(),
				Node: "n1", Kind: "campaign.won", Fields: map[string]string{"epoch": "4", "grants": "2"}},
			{Seq: 2, TS: time.Date(2026, 8, 8, 11, 59, 1, 0, time.UTC).UnixMicro(),
				Node: "n2", Kind: "lease.grant", Fields: map[string]string{"epoch": "4", "holder": "http://n1"}},
		},
	}
}

func fleetzServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/fleetz" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(cannedFleetz())
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestOnceFrame(t *testing.T) {
	ts := fleetzServer(t)
	var buf bytes.Buffer
	if err := run([]string{"-addr", ts.URL, "-once"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "\x1b[") {
		t.Fatalf("-once frame contains ANSI escapes:\n%s", out)
	}
	for _, want := range []string{
		"3 nodes", "coordinator http://n1 (epoch 4, 1 claiming)", "health CRITICAL", "epochs agree",
		"http://n1", "coordinator", "healthy",
		"http://n2", "follower", "degraded", "42MB",
		"http://n3", "UNREACHABLE",
		"/v1/run", "150",
		"EVENTS", "campaign.won", "epoch=4 grants=2", "lease.grant",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("frame missing %q:\n%s", want, out)
		}
	}
}

func TestLiveFrames(t *testing.T) {
	ts := fleetzServer(t)
	var buf bytes.Buffer
	if err := run([]string{"-addr", ts.URL, "-frames", "2", "-interval", "1ms"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "\x1b[H\x1b[2J"); got != 2 {
		t.Fatalf("saw %d clear sequences, want 2", got)
	}
	if !strings.Contains(out, "LOAD") {
		t.Fatalf("live frame missing sparkline column:\n%s", out)
	}
	// Two polls of queue 2 + active 1 → a flat two-sample sparkline.
	if !strings.Contains(out, "██") {
		t.Fatalf("live frame missing sparkline bars:\n%s", out)
	}
}

func TestLiveUnreachable(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-addr", "http://127.0.0.1:1", "-frames", "1", "-interval", "1ms"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "unreachable") {
		t.Fatalf("no unreachable notice:\n%s", buf.String())
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
	got := sparkline([]int{0, 4, 8})
	if want := "▁▄█"; got != want {
		t.Fatalf("sparkline = %q, want %q", got, want)
	}
	if got := sparkline([]int{0, 0}); got != "▁▁" {
		t.Fatalf("all-zero sparkline = %q, want flat floor", got)
	}
}

func TestMergeRoutes(t *testing.T) {
	fz := cannedFleetz()
	routes := mergeRoutes(fz.Nodes)
	if len(routes) != 1 {
		t.Fatalf("routes = %+v, want a single merged /v1/run", routes)
	}
	rt := routes[0]
	if rt.Requests != 150 || rt.Errors != 2 {
		t.Fatalf("merged counts = %+v", rt)
	}
	// Quantiles keep the slowest node, not a sum or mean.
	if rt.P99Ms != 95 || rt.P50Ms != 2.1 {
		t.Fatalf("merged quantiles = %+v, want worst-node values", rt)
	}
}

func TestFmtHelpers(t *testing.T) {
	cases := []struct{ got, want string }{
		{fmtBytes(0), "-"},
		{fmtBytes(512 << 10), "512KB"},
		{fmtBytes(42 << 20), "42MB"},
		{fmtBytes(3 << 30), "3.0GB"},
		{fmtMs(0), "-"},
		{fmtMs(1.234), "1.23ms"},
		{fmtMs(95), "95ms"},
		{fmtDur(30 * time.Second), "30s"},
		{fmtDur(5 * time.Minute), "5m"},
		{fmtDur(90 * time.Minute), "1.5h"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Fatalf("formatted %q, want %q", c.got, c.want)
		}
	}
}
