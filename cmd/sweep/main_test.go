package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestSweepTradeoff(t *testing.T) {
	if err := run([]string{"-algo", "tradeoff", "-k", "3,4", "-ns", "32,64", "-seeds", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepAsyncCSV(t *testing.T) {
	if err := run([]string{"-algo", "asynctradeoff", "-k", "2", "-ns", "32,64",
		"-seeds", "2", "-wake", "1", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepErrors(t *testing.T) {
	if err := run([]string{"-algo", "bogus"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run([]string{"-ns", "12,abc"}); err == nil {
		t.Fatal("bad ns accepted")
	}
	if err := run([]string{"-k", "x"}); err == nil {
		t.Fatal("bad k accepted")
	}
}

func TestSweepJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := run([]string{"-algo", "tradeoff", "-k", "3", "-ns", "32,64",
		"-seeds", "2", "-json", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var bench struct {
		Date string `json:"date"`
		Algo string `json:"algo"`
		Rows []struct {
			N           int     `json:"n"`
			MeanMsgs    float64 `json:"mean_msgs"`
			SuccessRate float64 `json:"success_rate"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if bench.Algo != "tradeoff" || bench.Date == "" || len(bench.Rows) != 2 {
		t.Fatalf("unexpected bench file: %+v", bench)
	}
	for _, r := range bench.Rows {
		if r.MeanMsgs <= 0 || r.SuccessRate != 1 {
			t.Fatalf("bad row: %+v", r)
		}
	}
}
