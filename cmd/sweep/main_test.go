package main

import "testing"

func TestSweepTradeoff(t *testing.T) {
	if err := run([]string{"-algo", "tradeoff", "-k", "3,4", "-ns", "32,64", "-seeds", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepAsyncCSV(t *testing.T) {
	if err := run([]string{"-algo", "asynctradeoff", "-k", "2", "-ns", "32,64",
		"-seeds", "2", "-wake", "1", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepErrors(t *testing.T) {
	if err := run([]string{"-algo", "bogus"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run([]string{"-ns", "12,abc"}); err == nil {
		t.Fatal("bad ns accepted")
	}
	if err := run([]string{"-k", "x"}); err == nil {
		t.Fatal("bad k accepted")
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts(" 1, 2,3 ")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v, %v", got, err)
	}
}
