package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cliquelect/internal/service"
)

func TestSweepTradeoff(t *testing.T) {
	if err := run([]string{"-algo", "tradeoff", "-k", "3,4", "-ns", "32,64", "-seeds", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepAsyncCSV(t *testing.T) {
	if err := run([]string{"-algo", "asynctradeoff", "-k", "2", "-ns", "32,64",
		"-seeds", "2", "-wake", "1", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepErrors(t *testing.T) {
	if err := run([]string{"-algo", "bogus"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run([]string{"-ns", "12,abc"}); err == nil {
		t.Fatal("bad ns accepted")
	}
	if err := run([]string{"-k", "x"}); err == nil {
		t.Fatal("bad k accepted")
	}
}

func TestSweepJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := run([]string{"-algo", "tradeoff", "-k", "3", "-ns", "32,64",
		"-seeds", "2", "-json", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var bench struct {
		Date string `json:"date"`
		Algo string `json:"algo"`
		Rows []struct {
			N           int     `json:"n"`
			MeanMsgs    float64 `json:"mean_msgs"`
			SuccessRate float64 `json:"success_rate"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if bench.Algo != "tradeoff" || bench.Date == "" || len(bench.Rows) != 2 {
		t.Fatalf("unexpected bench file: %+v", bench)
	}
	for _, r := range bench.Rows {
		if r.MeanMsgs <= 0 || r.SuccessRate != 1 {
			t.Fatalf("bad row: %+v", r)
		}
	}
}

// TestSweepCompare: a sweep compared against its own rows is clean; against
// a doctored prior claiming cheaper rows it fails with regressions flagged.
func TestSweepCompare(t *testing.T) {
	dir := t.TempDir()
	prior := filepath.Join(dir, "prior.json")
	args := []string{"-algo", "tradeoff", "-k", "3", "-ns", "32,64", "-seeds", "2"}
	if err := run(append(args, "-json", prior)); err != nil {
		t.Fatal(err)
	}
	// Same sweep, same seeds: byte-deterministic rows, zero regressions.
	if err := run(append(args, "-compare", prior)); err != nil {
		t.Fatalf("self-comparison flagged regressions: %v", err)
	}

	// A prior that claims half the messages makes every row a >10% regression.
	data, err := os.ReadFile(prior)
	if err != nil {
		t.Fatal(err)
	}
	var bench benchFile
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatal(err)
	}
	doctored := bench
	doctored.Rows = append([]benchRow(nil), bench.Rows...)
	for i := range doctored.Rows {
		doctored.Rows[i].MeanMsgs /= 2
	}
	cheap := filepath.Join(dir, "cheap.json")
	if err := writeBenchJSON(cheap, doctored); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-compare", cheap)); err == nil {
		t.Fatal("regressions not flagged")
	}

	// A prior with no matching (algo, k, n) rows is an error, not a silent pass.
	for i := range doctored.Rows {
		doctored.Rows[i].K = 99
	}
	unmatched := filepath.Join(dir, "unmatched.json")
	if err := writeBenchJSON(unmatched, doctored); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-compare", unmatched)); err == nil {
		t.Fatal("unmatched comparison accepted")
	}
	if err := run(append(args, "-compare", filepath.Join(dir, "missing.json"))); err == nil {
		t.Fatal("missing compare file accepted")
	}
}

// TestSweepCacheFlag: -cache persists run results on disk and replays them
// on the next invocation.
func TestSweepCacheFlag(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-algo", "tradeoff", "-k", "3", "-ns", "32", "-seeds", "2", "-cache", dir}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*", "*.json"))
	if err != nil || len(entries) != 2 {
		t.Fatalf("cache dir holds %d entries (err %v), want 2", len(entries), err)
	}
	// Second invocation replays from the same cache without error.
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

// startWorkers boots n in-process electd services and returns their URLs.
func startWorkers(t *testing.T, n int) string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		srv := service.New(service.Config{})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			ts.Close()
			srv.Close()
		})
		urls[i] = ts.URL
	}
	return strings.Join(urls, ",")
}

// TestSweepFleetMatchesLocal is the multi-worker acceptance check: the
// same sweep dispatched to two electd workers writes a byte-identical
// BENCH_*.json to a purely local run, for a sync and an async spec.
func TestSweepFleetMatchesLocal(t *testing.T) {
	fleet := startWorkers(t, 2)
	dir := t.TempDir()
	for name, args := range map[string][]string{
		"tradeoff":      {"-algo", "tradeoff", "-k", "3,4", "-ns", "32,64", "-seeds", "4"},
		"asynctradeoff": {"-algo", "asynctradeoff", "-k", "2", "-ns", "32", "-seeds", "4", "-wake", "1"},
	} {
		localPath := filepath.Join(dir, name+"-local.json")
		fleetPath := filepath.Join(dir, name+"-fleet.json")
		if err := run(append(args, "-json", localPath)); err != nil {
			t.Fatalf("%s local: %v", name, err)
		}
		if err := run(append(args, "-json", fleetPath, "-workers", fleet)); err != nil {
			t.Fatalf("%s fleet: %v", name, err)
		}
		local, err := os.ReadFile(localPath)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := os.ReadFile(fleetPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(local, remote) {
			t.Fatalf("%s: fleet BENCH json differs from local:\n%s\nvs\n%s", name, remote, local)
		}
	}
}

func TestSweepWorkersFlagErrors(t *testing.T) {
	if err := run([]string{"-algo", "tradeoff", "-ns", "32", "-seeds", "1", "-workers", "-2"}); err == nil {
		t.Fatal("negative worker count accepted")
	}
	if err := run([]string{"-algo", "tradeoff", "-ns", "32", "-seeds", "1", "-workers", "h1,,h2"}); err == nil {
		t.Fatal("malformed host list accepted")
	}
}

// TestSweepTraceOut drives a fleet sweep with -trace-out and checks the
// exported file is Chrome trace-event JSON carrying the full span
// taxonomy, all under one trace.
func TestSweepTraceOut(t *testing.T) {
	fleet := startWorkers(t, 2)
	path := filepath.Join(t.TempDir(), "sweep.trace.json")
	if err := run([]string{"-algo", "tradeoff", "-k", "3", "-ns", "32,64",
		"-seeds", "4", "-workers", fleet, "-trace-out", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	names := map[string]int{}
	traceIDs := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name]++
		if ev.Ph == "X" {
			if id, ok := ev.Args["trace_id"].(string); ok {
				traceIDs[id] = true
			}
		}
	}
	for _, want := range []string{
		"sweep", "grid", "chunk.dispatch", "client.request",
		"chunk.serve", "queue.wait", "job.exec", "process_name",
	} {
		if names[want] == 0 {
			t.Errorf("trace file has no %q events (have %v)", want, names)
		}
	}
	if len(traceIDs) != 1 {
		t.Errorf("trace file spans %d trace ids, want exactly 1: %v", len(traceIDs), traceIDs)
	}
}

// TestSweepLocalTraceOut covers the no-fleet path: a purely local sweep
// still writes a valid trace with sweep and per-k batch spans.
func TestSweepLocalTraceOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "local.trace.json")
	if err := run([]string{"-algo", "tradeoff", "-k", "3,4", "-ns", "32",
		"-seeds", "2", "-trace-out", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name":"sweep"`, `"name":"batch"`, `"k":"3"`, `"k":"4"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("local trace missing %s:\n%s", want, data)
		}
	}
}
