// Command sweep measures one algorithm across network sizes and parameter
// values, printing a table (or CSV) with mean messages, rounds/time, and a
// fitted message-complexity exponent. Runs fan out over a worker pool
// (elect.RunMany), so wide sweeps use every core.
//
// The -json flag additionally writes the rows as machine-readable benchmark
// output ("auto" names the file BENCH_<date>.json), so perf trajectories can
// be tracked across commits; -compare diffs the fresh rows against such a
// prior file and fails on >10% regressions. The -cache flag stores every
// run's result in a persistent content-addressed cache (shared with electd
// and any other elect.Cache consumer), so repeated sweeps replay instead of
// recompute.
//
// The -workers flag is dual-mode: an integer bounds the local worker pool,
// while a comma-separated host list shards the sweep across that fleet of
// electd daemons (internal/distrib) — byte-identical output either way,
// with a per-worker cells/s breakdown at the end of the run.
//
// The -trace-out flag traces the whole invocation — client calls,
// coordinator dispatches, worker-side queue/exec spans returned in chunk
// responses — into one distributed trace, written as Chrome trace-event
// JSON (load it in about:tracing or Perfetto), plus an ASCII waterfall of
// the slowest chunk dispatch on stdout. Tracing is observational: traced
// and untraced sweeps produce byte-identical results.
//
// Usage:
//
//	sweep -algo tradeoff -k 3,4,5 -ns 256,512,1024,2048
//	sweep -algo asynctradeoff -k 2,3 -ns 256,1024 -wake 1 -csv
//	sweep -algo tradeoff -k 3,4 -ns 256,512,1024 -json auto
//	sweep -algo tradeoff -k 3,4 -ns 256,512,1024 -compare BENCH_2026-07-30.json
//	sweep -algo tradeoff -ns 4096 -seeds 50 -cache /tmp/electcache
//	sweep -algo tradeoff -ns 4096,8192 -seeds 50 -workers host1:8090,host2:8090
//	sweep -algo tradeoff -ns 1024 -seeds 20 -workers host1:8090,host2:8090 -trace-out sweep.trace.json
//	sweep -algo kuttenmoses -topo ring,torus,rreg:d=8 -ns 256,1024,4096
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cliquelect/elect"
	"cliquelect/elect/client"
	"cliquelect/internal/cliutil"
	"cliquelect/internal/distrib"
	"cliquelect/internal/obs"
	"cliquelect/internal/resultcache"
	"cliquelect/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		algo     = fs.String("algo", "tradeoff", "algorithm name")
		nsFlag   = fs.String("ns", "256,512,1024,2048", "comma-separated network sizes")
		kFlag    = fs.String("k", "3", "comma-separated k values (tradeoff-family algorithms)")
		d        = fs.Int("d", 2, "smallid d")
		g        = fs.Int("g", 1, "smallid g")
		eps      = fs.Float64("eps", 1.0/16, "advwake epsilon")
		seeds    = fs.Int("seeds", 10, "runs per configuration")
		seed     = fs.Uint64("seed", 1, "master seed")
		wake     = fs.Int("wake", 0, "adversarial wake-up set size (0 = simultaneous)")
		policy   = fs.String("policy", "unit", "async delay policy")
		workers  = fs.String("workers", "0", "parallel runs (0 = GOMAXPROCS), or a comma-separated electd host list for fleet dispatch")
		csv      = fs.Bool("csv", false, "emit CSV instead of an aligned table")
		jsonOut  = fs.String("json", "", `also write machine-readable benchmark JSON to this path ("auto" = BENCH_<date>.json)`)
		compare  = fs.String("compare", "", "diff the new rows against this prior BENCH_*.json and fail on >10% regressions")
		cacheDir = fs.String("cache", "", "persistent result-cache directory; repeated sweeps replay cached runs")
		topoFlag = fs.String("topo", "", "comma-separated topology specs swept as an extra axis, e.g. ring,torus,rreg:d=8 (empty = clique)")
		traceOut = fs.String("trace-out", "", "trace the sweep and write Chrome trace-event JSON (about:tracing / Perfetto) to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := elect.Lookup(*algo)
	if err != nil {
		return err
	}
	delays, err := elect.ParseDelays(*policy)
	if err != nil {
		return err
	}
	ns, err := cliutil.ParseInts(*nsFlag)
	if err != nil {
		return err
	}
	ks, err := cliutil.ParseInts(*kFlag)
	if err != nil {
		return err
	}
	localWorkers, fleetHosts, err := cliutil.ParseWorkers(*workers)
	if err != nil {
		return err
	}
	// -trace-out roots one trace over the whole invocation: every per-k
	// batch (local) or grid (fleet) rides under the same sweep span, so the
	// exported file shows the full client→coordinator→worker waterfall.
	var spanCol *obs.SpanCollector
	var traceRoot obs.SpanContext
	if *traceOut != "" {
		spanCol = obs.NewSpanCollector(0)
		traceRoot = obs.NewSpanContext()
	}
	var fleet *distrib.Fleet
	if fleetHosts != nil {
		if fleet, err = distrib.New(distrib.Config{
			Workers: fleetHosts, Spans: spanCol, Root: traceRoot,
		}); err != nil {
			return err
		}
	}

	var cache *resultcache.Cache
	if *cacheDir != "" {
		cache = resultcache.New(resultcache.WithDir(*cacheDir))
	}
	topos := splitTopos(*topoFlag)

	var table *stats.Table
	if len(topos) > 0 {
		table = stats.NewTable("topo", "k", "n", "mean msgs", "std", "mean time", "success")
	} else {
		table = stats.NewTable("k", "n", "mean msgs", "std", "mean time", "success")
	}
	bench := benchFile{
		Date: time.Now().UTC().Format("2006-01-02"), Algo: *algo, Seeds: *seeds,
	}
	cells := 0
	start := time.Now()
	for _, k := range ks {
		opts := []elect.Option{
			elect.WithParams(elect.Params{K: k, D: *d, G: *g, Eps: *eps}),
			elect.WithWake(*wake),
		}
		if spec.Model == elect.Async {
			opts = append(opts, elect.WithDelays(delays))
		}
		b := elect.Batch{
			Ns:      ns,
			Seeds:   elect.Seeds(*seed+uint64(k)*104729, *seeds),
			Topos:   topos,
			Options: opts,
			Workers: localWorkers,
		}
		if cache != nil {
			b.Cache = cache
		}
		if fleet != nil {
			// The wire options must describe exactly what opts above does, so
			// a remote cell is byte-identical to a local one.
			kk, dd, gg, ee := k, *d, *g, *eps
			wire := client.Options{
				Params: &client.ParamSpec{K: &kk, D: &dd, G: &gg, Eps: &ee},
				Wake:   *wake,
			}
			if spec.Model == elect.Async {
				wire.Delays = *policy
			}
			b.Remote = fleet.Runner(wire)
		}
		kStart := time.Now()
		batch, err := elect.RunMany(spec, b)
		if err != nil {
			return err
		}
		if spanCol != nil && fleet == nil {
			// Local mode has no grid spans, so give each k iteration its own
			// span under the sweep root (fleet mode gets them from distrib).
			sc := traceRoot.Child()
			spanCol.Add(obs.Span{
				Trace: sc.Trace, ID: sc.Span, Parent: traceRoot.Span,
				Name: "batch", Service: "sweep",
				Start: kStart.UnixMicro(), Dur: time.Since(kStart).Microseconds(),
				Attrs: map[string]string{"k": strconv.Itoa(k), "cells": strconv.Itoa(len(batch.Runs))},
			})
		}
		cells += len(batch.Runs)
		// One power fit per topology group (the clique-only sweep is the
		// single group with the empty label).
		fitXs := map[string][]float64{}
		fitYs := map[string][]float64{}
		var fitOrder []string
		for _, agg := range batch.Aggregates {
			if _, seen := fitXs[agg.Topo]; !seen {
				fitOrder = append(fitOrder, agg.Topo)
			}
			fitXs[agg.Topo] = append(fitXs[agg.Topo], float64(agg.N))
			fitYs[agg.Topo] = append(fitYs[agg.Topo], agg.Messages.Mean)
			success := fmt.Sprintf("%d/%d", agg.Successes, agg.Runs)
			if len(topos) > 0 {
				table.AddRow(agg.Topo, k, agg.N, agg.Messages.Mean, agg.Messages.Std, agg.Time.Mean, success)
			} else {
				table.AddRow(k, agg.N, agg.Messages.Mean, agg.Messages.Std, agg.Time.Mean, success)
			}
			bench.Rows = append(bench.Rows, benchRow{
				Algo: *algo, Topo: agg.Topo, K: k, N: agg.N,
				MeanMsgs: agg.Messages.Mean, StdMsgs: agg.Messages.Std,
				MeanTime: agg.Time.Mean, SuccessRate: agg.SuccessRate,
			})
		}
		if len(ns) >= 2 {
			for _, topoName := range fitOrder {
				fit, err := stats.FitPower(fitXs[topoName], fitYs[topoName])
				if err != nil {
					continue
				}
				if topoName != "" {
					fmt.Printf("# k=%d topo=%s: %s\n", k, topoName, fit)
				} else {
					fmt.Printf("# k=%d: %s\n", k, fit)
				}
				bench.Fits = append(bench.Fits, benchFit{K: k, Topo: topoName, Fit: fit.String()})
			}
		}
	}
	elapsed := time.Since(start)
	if *csv {
		// CSV output stays a pure function of the flags (no timing line), so
		// it can be diffed and machine-consumed.
		fmt.Print(table.CSV())
	} else {
		fmt.Print(table.String())
		fmt.Printf("# %d cells in %v (%.0f cells/s)\n",
			cells, elapsed.Round(time.Millisecond), float64(cells)/elapsed.Seconds())
	}
	if fleet != nil && !*csv {
		fmt.Print(fleet.Stats())
	}
	if cache != nil {
		s := cache.Stats()
		fmt.Printf("# cache: %d hits (%d from disk), %d misses\n", s.Hits, s.DiskHits, s.Misses)
	}
	if *jsonOut != "" {
		path := *jsonOut
		if path == "auto" {
			path = "BENCH_" + bench.Date + ".json"
		}
		if err := writeBenchJSON(path, bench); err != nil {
			return err
		}
		fmt.Printf("# wrote %s\n", path)
	}
	if *compare != "" {
		if err := compareBench(*compare, bench); err != nil {
			return err
		}
	}
	if spanCol != nil {
		spanCol.Add(obs.Span{
			Trace: traceRoot.Trace, ID: traceRoot.Span,
			Name: "sweep", Service: "sweep",
			Start: start.UnixMicro(), Dur: elapsed.Microseconds(),
			Attrs: map[string]string{"algo": *algo, "cells": strconv.Itoa(cells)},
		})
		if err := writeTrace(*traceOut, spanCol.Trace(traceRoot.Trace), !*csv); err != nil {
			return err
		}
		if !*csv {
			fmt.Printf("# wrote %s (trace %s, %d spans)\n",
				*traceOut, traceRoot.Trace, spanCol.Len())
		}
	}
	return nil
}

// writeTrace exports the sweep's spans as Chrome trace-event JSON and, when
// verbose, prints an ASCII waterfall of the slowest chunk dispatch — the
// at-a-glance answer to "where did the time go".
func writeTrace(path string, spans []obs.Span, verbose bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if !verbose {
		return nil
	}
	var slowest *obs.Span
	for i := range spans {
		if spans[i].Name != "chunk.dispatch" {
			continue
		}
		if slowest == nil || spans[i].Dur > slowest.Dur {
			slowest = &spans[i]
		}
	}
	if slowest != nil {
		fmt.Printf("# slowest chunk dispatch (%s cells [%s, +%s)):\n",
			slowest.Attrs["worker"], slowest.Attrs["start"], slowest.Attrs["count"])
		obs.Waterfall(os.Stdout, "# ", *slowest, spans, 48)
	}
	return nil
}

// regressionThreshold flags rows whose cost grew (or success shrank) by
// more than this fraction relative to the prior benchmark file.
const regressionThreshold = 0.10

// compareBench diffs the fresh rows against a prior benchFile, matching on
// (algo, k, n): mean messages or mean time more than 10% above the prior
// value — or a success rate more than 10% below it — is a regression, and
// any regression makes the sweep exit non-zero so CI can gate on it.
func compareBench(path string, fresh benchFile) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var prior benchFile
	if err := json.Unmarshal(data, &prior); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	type rowKey struct {
		algo, topo string
		k, n       int
	}
	old := make(map[rowKey]benchRow, len(prior.Rows))
	for _, r := range prior.Rows {
		old[rowKey{r.Algo, r.Topo, r.K, r.N}] = r
	}
	matched, regressions := 0, 0
	flag := func(r benchRow, metric string, was, is float64) {
		regressions++
		label := r.Algo
		if r.Topo != "" {
			label += " topo=" + r.Topo
		}
		fmt.Printf("# REGRESSION %s k=%d n=%d %s: %.4g -> %.4g (%+.1f%%)\n",
			label, r.K, r.N, metric, was, is, 100*(is-was)/was)
	}
	for _, r := range fresh.Rows {
		o, ok := old[rowKey{r.Algo, r.Topo, r.K, r.N}]
		if !ok {
			continue
		}
		matched++
		if o.MeanMsgs > 0 && r.MeanMsgs > o.MeanMsgs*(1+regressionThreshold) {
			flag(r, "mean_msgs", o.MeanMsgs, r.MeanMsgs)
		}
		if o.MeanTime > 0 && r.MeanTime > o.MeanTime*(1+regressionThreshold) {
			flag(r, "mean_time", o.MeanTime, r.MeanTime)
		}
		if o.SuccessRate > 0 && r.SuccessRate < o.SuccessRate*(1-regressionThreshold) {
			flag(r, "success_rate", o.SuccessRate, r.SuccessRate)
		}
	}
	fmt.Printf("# compare: %d/%d rows matched against %s, %d regressions\n",
		matched, len(fresh.Rows), path, regressions)
	if matched == 0 {
		return fmt.Errorf("no rows of this sweep match %s (algo/k/n differ)", path)
	}
	if regressions > 0 {
		return fmt.Errorf("%d regressions >%d%% vs %s", regressions, int(100*regressionThreshold), path)
	}
	return nil
}

// benchFile is the machine-readable benchmark artifact written by -json: one
// sweep invocation, its per-(k, n) measurements and the fitted exponents.
// The schema is append-friendly so the perf trajectory (BENCH_<date>.json
// files across commits) stays diffable.
type benchFile struct {
	Date  string     `json:"date"`
	Algo  string     `json:"algo"`
	Seeds int        `json:"seeds"`
	Rows  []benchRow `json:"rows"`
	Fits  []benchFit `json:"fits,omitempty"`
}

type benchRow struct {
	Algo        string  `json:"algo"`
	Topo        string  `json:"topo,omitempty"`
	K           int     `json:"k"`
	N           int     `json:"n"`
	MeanMsgs    float64 `json:"mean_msgs"`
	StdMsgs     float64 `json:"std_msgs"`
	MeanTime    float64 `json:"mean_time"`
	SuccessRate float64 `json:"success_rate"`
}

type benchFit struct {
	K    int    `json:"k"`
	Topo string `json:"topo,omitempty"`
	Fit  string `json:"fit"`
}

// splitTopos parses the -topo flag: a comma-separated list of topology
// specs, except that an explicit edge list ("edges:0-1,1-2,...") uses commas
// itself and is taken as one spec.
func splitTopos(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	if strings.HasPrefix(s, "edges:") {
		return []string{s}
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func writeBenchJSON(path string, bench benchFile) error {
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
