// Command sweep measures one algorithm across network sizes and parameter
// values, printing a table (or CSV) with mean messages, rounds/time, and a
// fitted message-complexity exponent. Runs fan out over a worker pool
// (elect.RunMany), so wide sweeps use every core.
//
// Usage:
//
//	sweep -algo tradeoff -k 3,4,5 -ns 256,512,1024,2048
//	sweep -algo asynctradeoff -k 2,3 -ns 256,1024 -wake 1 -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cliquelect/elect"
	"cliquelect/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		algo    = fs.String("algo", "tradeoff", "algorithm name")
		nsFlag  = fs.String("ns", "256,512,1024,2048", "comma-separated network sizes")
		kFlag   = fs.String("k", "3", "comma-separated k values (tradeoff-family algorithms)")
		d       = fs.Int("d", 2, "smallid d")
		g       = fs.Int("g", 1, "smallid g")
		eps     = fs.Float64("eps", 1.0/16, "advwake epsilon")
		seeds   = fs.Int("seeds", 10, "runs per configuration")
		seed    = fs.Uint64("seed", 1, "master seed")
		wake    = fs.Int("wake", 0, "adversarial wake-up set size (0 = simultaneous)")
		policy  = fs.String("policy", "unit", "async delay policy")
		workers = fs.Int("workers", 0, "parallel runs (0 = GOMAXPROCS)")
		csv     = fs.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := elect.Lookup(*algo)
	if err != nil {
		return err
	}
	delays, err := elect.ParseDelays(*policy)
	if err != nil {
		return err
	}
	ns, err := parseInts(*nsFlag)
	if err != nil {
		return err
	}
	ks, err := parseInts(*kFlag)
	if err != nil {
		return err
	}

	table := stats.NewTable("k", "n", "mean msgs", "std", "mean time", "success")
	for _, k := range ks {
		opts := []elect.Option{
			elect.WithParams(elect.Params{K: k, D: *d, G: *g, Eps: *eps}),
			elect.WithWake(*wake),
		}
		if spec.Model == elect.Async {
			opts = append(opts, elect.WithDelays(delays))
		}
		batch, err := elect.RunMany(spec, elect.Batch{
			Ns:      ns,
			Seeds:   elect.Seeds(*seed+uint64(k)*104729, *seeds),
			Options: opts,
			Workers: *workers,
		})
		if err != nil {
			return err
		}
		var xs, ys []float64
		for _, agg := range batch.Aggregates {
			xs = append(xs, float64(agg.N))
			ys = append(ys, agg.Messages.Mean)
			table.AddRow(k, agg.N, agg.Messages.Mean, agg.Messages.Std, agg.Time.Mean,
				fmt.Sprintf("%d/%d", agg.Successes, agg.Runs))
		}
		if len(ns) >= 2 {
			if fit, err := stats.FitPower(xs, ys); err == nil {
				fmt.Printf("# k=%d: %s\n", k, fit)
			}
		}
	}
	if *csv {
		fmt.Print(table.CSV())
	} else {
		fmt.Print(table.String())
	}
	return nil
}
