// Command sweep measures one algorithm across network sizes and parameter
// values, printing a table (or CSV) with mean messages, rounds/time, and a
// fitted message-complexity exponent.
//
// Usage:
//
//	sweep -algo tradeoff -k 3,4,5 -ns 256,512,1024,2048
//	sweep -algo asynctradeoff -k 2,3 -ns 256,1024 -wake 1 -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cliquelect/internal/cli"
	"cliquelect/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		algo   = fs.String("algo", "tradeoff", "algorithm name")
		nsFlag = fs.String("ns", "256,512,1024,2048", "comma-separated network sizes")
		kFlag  = fs.String("k", "3", "comma-separated k values (tradeoff-family algorithms)")
		d      = fs.Int("d", 2, "smallid d")
		g      = fs.Int("g", 1, "smallid g")
		eps    = fs.Float64("eps", 1.0/16, "advwake epsilon")
		seeds  = fs.Int("seeds", 10, "runs per configuration")
		seed   = fs.Uint64("seed", 1, "master seed")
		wake   = fs.Int("wake", 0, "adversarial wake-up set size (0 = simultaneous)")
		policy = fs.String("policy", "unit", "async delay policy")
		csv    = fs.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := cli.Lookup(*algo)
	if err != nil {
		return err
	}
	ns, err := parseInts(*nsFlag)
	if err != nil {
		return err
	}
	ks, err := parseInts(*kFlag)
	if err != nil {
		return err
	}

	table := stats.NewTable("k", "n", "mean msgs", "std", "mean time", "success")
	for _, k := range ks {
		var xs, ys []float64
		for _, n := range ns {
			var msgs []float64
			var timeSum float64
			succ := 0
			for s := 0; s < *seeds; s++ {
				sum, err := cli.Run(spec, cli.RunOpts{
					N: n, Seed: *seed + uint64(s*7919+k*104729+n),
					Params:    cli.Params{K: k, D: *d, G: *g, Eps: *eps},
					WakeCount: *wake, Policy: *policy,
				})
				if err != nil {
					return err
				}
				msgs = append(msgs, float64(sum.Messages))
				if spec.Model == cli.Sync {
					timeSum += float64(sum.Rounds)
				} else {
					timeSum += sum.TimeUnits
				}
				if sum.OK {
					succ++
				}
			}
			sm := stats.Summarize(msgs)
			xs = append(xs, float64(n))
			ys = append(ys, sm.Mean)
			table.AddRow(k, n, sm.Mean, sm.Std, timeSum/float64(*seeds),
				fmt.Sprintf("%d/%d", succ, *seeds))
		}
		if len(ns) >= 2 {
			if fit, err := stats.FitPower(xs, ys); err == nil {
				fmt.Printf("# k=%d: %s\n", k, fit)
			}
		}
	}
	if *csv {
		fmt.Print(table.CSV())
	} else {
		fmt.Print(table.String())
	}
	return nil
}
