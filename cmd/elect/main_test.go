package main

import "testing"

func TestElectDefaults(t *testing.T) {
	if err := run([]string{"-n", "64"}); err != nil {
		t.Fatal(err)
	}
}

func TestElectList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestElectAsync(t *testing.T) {
	if err := run([]string{"-algo", "asynctradeoff", "-n", "64", "-k", "2", "-wake", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestElectSmallID(t *testing.T) {
	if err := run([]string{"-algo", "smallid", "-n", "64", "-d", "4", "-g", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestElectErrors(t *testing.T) {
	if err := run([]string{"-algo", "bogus"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run([]string{"-algo", "tradeoff", "-k", "1", "-n", "8"}); err == nil {
		t.Fatal("bad parameter accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestElectExplicit(t *testing.T) {
	if err := run([]string{"-algo", "lasvegas", "-n", "64", "-explicit"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithFaults(t *testing.T) {
	if err := run([]string{"-algo", "tradeoff", "-n", "32", "-faults", "dup=0.01"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-algo", "tradeoff", "-n", "32", "-faults", "bogus=1"}); err == nil {
		t.Fatal("bad fault plan accepted")
	}
	if err := run([]string{"-algo", "asynctradeoff", "-n", "32", "-engine", "live",
		"-faults", "drop=0.1"}); err == nil {
		t.Fatal("live engine accepted faults")
	}
}
