// Command elect runs one leader-election protocol on one simulated network
// — the clique by default, any generated topology with -topo — and prints
// the outcome.
//
// Usage:
//
//	elect -algo tradeoff -n 1024 -k 4
//	elect -algo advwake -n 4096 -wake 16 -eps 0.0625
//	elect -algo asynctradeoff -n 2048 -k 3 -wake 1 -policy skew
//	elect -algo asynctradeoff -n 256 -engine live
//	elect -algo tradeoff -n 1024 -faults drop=0.05,crash=0.1
//	elect -algo kuttenmoses -n 1024 -topo ring
//	elect -algo kpprt -n 4096 -topo rreg:d=8
//	elect -algo tradeoff -n 1024 -trace
//	elect -list
package main

import (
	"flag"
	"fmt"
	"os"

	"cliquelect/elect"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "elect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("elect", flag.ContinueOnError)
	var (
		algo     = fs.String("algo", "tradeoff", "algorithm name (see -list)")
		n        = fs.Int("n", 1024, "number of nodes")
		seed     = fs.Uint64("seed", 1, "random seed")
		k        = fs.Int("k", 3, "tradeoff parameter k")
		d        = fs.Int("d", 2, "smallid window parameter d")
		g        = fs.Int("g", 1, "smallid universe slack g")
		eps      = fs.Float64("eps", 1.0/16, "advwake failure budget epsilon")
		wake     = fs.Int("wake", 0, "adversarial wake-up set size (0 = simultaneous)")
		policy   = fs.String("policy", "unit", "async delay policy: unit, uniform, skew")
		engine   = fs.String("engine", "auto", "engine: auto, sync, async, live")
		budget   = fs.Int64("budget", 0, "message budget (0 = unlimited)")
		explicit = fs.Bool("explicit", false, "explicit election: all nodes output the leader ID (sync only)")
		faults   = fs.String("faults", "", "fault plan, e.g. drop=0.05,crash=0.1,dup=0.01,adaptive=1 (simulators only)")
		topoSpec = fs.String("topo", "", "topology spec: ring, torus, rreg:d=K, power:m=K, edges:u-v,... (empty = clique)")
		trace    = fs.Bool("trace", false, "print a per-round telemetry timeline (simulators only)")
		list     = fs.Bool("list", false, "list algorithms and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, s := range elect.Registry() {
			fmt.Printf("%-15s %-6s %-30s %s\n", s.Name, s.Model, s.Paper, s.Description)
		}
		return nil
	}
	spec, err := elect.Lookup(*algo)
	if err != nil {
		return err
	}
	delays, err := elect.ParseDelays(*policy)
	if err != nil {
		return err
	}
	eng, err := elect.ParseEngine(*engine)
	if err != nil {
		return err
	}
	plan, err := elect.ParseFaults(*faults)
	if err != nil {
		return err
	}
	opts := []elect.Option{
		elect.WithN(*n),
		elect.WithSeed(*seed),
		elect.WithParams(elect.Params{K: *k, D: *d, G: *g, Eps: *eps}),
		elect.WithWake(*wake),
		elect.WithEngine(eng),
		elect.WithMessageBudget(*budget),
		elect.WithFaults(plan),
	}
	if *topoSpec != "" {
		opts = append(opts, elect.WithTopology(*topoSpec))
	}
	if spec.Model == elect.Async {
		opts = append(opts, elect.WithDelays(delays))
	}
	if *explicit && spec.Model == elect.Sync {
		opts = append(opts, elect.WithExplicit())
	}
	if *trace {
		opts = append(opts, elect.WithRoundTrace())
	}
	res, err := elect.Run(spec, opts...)
	if err != nil {
		return err
	}
	fmt.Print(res)
	if *trace {
		printTimeline(res)
	}
	if res.Truncated {
		return fmt.Errorf("run truncated by the message budget (%d messages sent)", res.Messages)
	}
	if !res.OK {
		return fmt.Errorf("run did not elect a unique leader (randomized algorithms may fail; try another -seed)")
	}
	return nil
}

// printTimeline renders the WithRoundTrace timeline as a fixed-width table,
// one line per round (sync) or unit-time window (async).
func printTimeline(res elect.Result) {
	if len(res.RoundTrace) == 0 {
		return
	}
	unit := "round"
	if res.Engine == elect.EngineAsync {
		unit = "window"
	}
	fmt.Printf("\n%-7s %10s %10s %10s %7s %6s %8s  kinds\n",
		unit, "messages", "words", "delivered", "active", "woke", "decided")
	for _, s := range res.RoundTrace {
		kinds := ""
		for k := 0; k < 256; k++ {
			if c, ok := s.Kinds[uint8(k)]; ok {
				if kinds != "" {
					kinds += " "
				}
				kinds += fmt.Sprintf("%d:%d", k, c)
			}
		}
		fmt.Printf("%-7d %10d %10d %10d %7d %6d %8d  %s\n",
			s.Round, s.Messages, s.Words, s.Deliveries, s.Active, s.Woke, s.Decided, kinds)
	}
}
