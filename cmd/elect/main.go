// Command elect runs one leader-election protocol on one simulated clique
// and prints the outcome.
//
// Usage:
//
//	elect -algo tradeoff -n 1024 -k 4
//	elect -algo advwake -n 4096 -wake 16 -eps 0.0625
//	elect -algo asynctradeoff -n 2048 -k 3 -wake 1 -policy skew
//	elect -list
package main

import (
	"flag"
	"fmt"
	"os"

	"cliquelect/internal/cli"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "elect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("elect", flag.ContinueOnError)
	var (
		algo     = fs.String("algo", "tradeoff", "algorithm name (see -list)")
		n        = fs.Int("n", 1024, "number of nodes")
		seed     = fs.Uint64("seed", 1, "random seed")
		k        = fs.Int("k", 3, "tradeoff parameter k")
		d        = fs.Int("d", 2, "smallid window parameter d")
		g        = fs.Int("g", 1, "smallid universe slack g")
		eps      = fs.Float64("eps", 1.0/16, "advwake failure budget epsilon")
		wake     = fs.Int("wake", 0, "adversarial wake-up set size (0 = simultaneous)")
		policy   = fs.String("policy", "unit", "async delay policy: unit, uniform, skew")
		explicit = fs.Bool("explicit", false, "explicit election: all nodes output the leader ID (sync only)")
		list     = fs.Bool("list", false, "list algorithms and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, s := range cli.Algorithms() {
			fmt.Printf("%-15s %-6s %-30s %s\n", s.Name, s.Model, s.Paper, s.Description)
		}
		return nil
	}
	spec, err := cli.Lookup(*algo)
	if err != nil {
		return err
	}
	sum, err := cli.Run(spec, cli.RunOpts{
		N: *n, Seed: *seed,
		Params:    cli.Params{K: *k, D: *d, G: *g, Eps: *eps},
		WakeCount: *wake,
		Policy:    *policy,
		Explicit:  *explicit && spec.Model == cli.Sync,
	})
	if err != nil {
		return err
	}
	fmt.Print(sum)
	if !sum.OK {
		return fmt.Errorf("run did not elect a unique leader (randomized algorithms may fail; try another -seed)")
	}
	return nil
}
