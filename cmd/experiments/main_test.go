package main

import "testing"

func TestExperimentsSubsetQuick(t *testing.T) {
	if err := run([]string{"-quick", "-only", "E4"}); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentsMarkdown(t *testing.T) {
	if err := run([]string{"-quick", "-only", "E5", "-markdown"}); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentsUnknownID(t *testing.T) {
	if err := run([]string{"-only", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
