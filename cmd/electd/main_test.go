package main

import (
	"bytes"
	"context"
	"io"
	"testing"
	"time"

	"cliquelect/elect"
	"cliquelect/elect/client"
)

// startDaemon boots the real daemon (flag parsing, TCP listener, HTTP
// server) on an ephemeral port and returns a client against it.
func startDaemon(t *testing.T, args ...string) *client.Client {
	t.Helper()
	ready := make(chan string, 1)
	stop := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(append([]string{"-addr", "127.0.0.1:0", "-quiet"}, args...),
			io.Discard, ready, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errCh:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never came up")
	}
	t.Cleanup(func() {
		close(stop)
		select {
		case err := <-errCh:
			if err != nil {
				t.Errorf("daemon shutdown: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Error("daemon never shut down")
		}
	})
	return client.New("http://" + addr)
}

// TestElectdEndToEnd is the serving-layer acceptance test and the CI smoke:
// it starts the daemon, drives it through the Go client, and proves that a
// repeated deterministic run is served from the cache — hit counter
// incremented, bytes identical to both the cold run and an uncached run.
func TestElectdEndToEnd(t *testing.T) {
	c := startDaemon(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	if h, err := c.Health(ctx); err != nil || !h.OK {
		t.Fatalf("healthz: %+v err=%v", h, err)
	} else if h.BatchWorkers < 1 || h.QueueDepth != 0 || h.ActiveJobs != 0 {
		// The load gauges fleet schedulers balance on must be present (an
		// idle daemon reports its effective parallelism and empty queues).
		t.Fatalf("healthz load gauges: %+v", h)
	}
	specs, err := c.Specs(ctx)
	if err != nil || len(specs) == 0 {
		t.Fatalf("specs: %d err=%v", len(specs), err)
	}

	req := client.RunRequest{
		Spec: "tradeoff", N: 1024, Seed: 7,
		Options: client.Options{Params: &client.ParamSpec{K: intp(4)}},
	}
	// Cold: computed, stored.
	cold, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit || cold.Result == nil || !cold.Result.OK {
		t.Fatalf("cold run: hit=%v result=%+v", cold.CacheHit, cold.Result)
	}
	healthBefore, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Warm: the identical logical run must come from the cache.
	warm, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("repeated deterministic run was not served from cache")
	}
	healthAfter, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if healthAfter.Cache == nil || healthBefore.Cache == nil ||
		healthAfter.Cache.Hits <= healthBefore.Cache.Hits {
		t.Fatalf("cache hit counter did not increment: %+v -> %+v",
			healthBefore.Cache, healthAfter.Cache)
	}
	// Uncached: same request with the cache bypassed.
	bypass := req
	bypass.NoCache = true
	uncached, err := c.Run(ctx, bypass)
	if err != nil {
		t.Fatal(err)
	}
	if uncached.CacheHit {
		t.Fatal("no_cache run reported a cache hit")
	}
	// All three answers must be byte-identical on the stable codec.
	coldB, _ := elect.EncodeResult(*cold.Result)
	warmB, _ := elect.EncodeResult(*warm.Result)
	uncachedB, _ := elect.EncodeResult(*uncached.Result)
	if !bytes.Equal(coldB, warmB) {
		t.Errorf("cached replay differs from cold run:\n %s\n %s", coldB, warmB)
	}
	if !bytes.Equal(coldB, uncachedB) {
		t.Errorf("uncached run differs from cold run:\n %s\n %s", coldB, uncachedB)
	}

	// Async batch with SSE progress, exercising the full job lifecycle.
	st, err := c.SubmitBatch(ctx, client.BatchRequest{
		Spec: "tradeoff", Ns: []int{64, 128}, SeedBase: 1, SeedCount: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var progressed bool
	final, err := c.Stream(ctx, st.ID, func(s client.JobStatus) { progressed = true })
	if err != nil {
		t.Fatal(err)
	}
	if !progressed || final.Job.State != "done" || final.Batch == nil || len(final.Batch.Runs) != 8 {
		t.Fatalf("batch over SSE: progressed=%v final=%+v", progressed, final.Job)
	}
}

// TestElectdCacheDirPersists proves the disk tier: a second daemon over the
// same -cache-dir serves the first daemon's run as a hit.
func TestElectdCacheDirPersists(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	req := client.RunRequest{Spec: "tradeoff", N: 256, Seed: 3}

	first := startDaemon(t, "-cache-dir", dir)
	cold, err := first.Run(ctx, req)
	if err != nil || cold.CacheHit {
		t.Fatalf("cold: %+v err=%v", cold, err)
	}

	second := startDaemon(t, "-cache-dir", dir)
	warm, err := second.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("fresh daemon over the same cache-dir missed")
	}
	a, _ := elect.EncodeResult(*cold.Result)
	b, _ := elect.EncodeResult(*warm.Result)
	if !bytes.Equal(a, b) {
		t.Fatal("cross-process replay not byte-identical")
	}
}

func TestElectdFlagErrors(t *testing.T) {
	if err := run([]string{"-badflag"}, io.Discard, nil, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-addr", "256.256.256.256:99999"}, io.Discard, nil, nil); err == nil {
		t.Fatal("bad address accepted")
	}
}

func intp(v int) *int { return &v }
