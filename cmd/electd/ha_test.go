package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cliquelect/elect"
	"cliquelect/elect/client"
)

// reservePort grabs an ephemeral port and releases it, so three daemons can
// learn each other's addresses from a static -peers list before any of them
// is up. The tiny reuse race is acceptable in tests.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startHADaemon boots one fleet member on a fixed address and returns a
// client plus an idempotent kill switch (tests kill coordinators mid-run;
// Cleanup kills whoever survives).
func startHADaemon(t *testing.T, addr string, args ...string) (*client.Client, func()) {
	t.Helper()
	ready := make(chan string, 1)
	stop := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(append([]string{"-addr", addr, "-quiet"}, args...),
			io.Discard, ready, stop)
	}()
	select {
	case <-ready:
	case err := <-errCh:
		t.Fatalf("daemon %s exited early: %v", addr, err)
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon %s never came up", addr)
	}
	var once sync.Once
	kill := func() {
		once.Do(func() {
			close(stop)
			select {
			case <-errCh:
			case <-time.After(30 * time.Second):
				t.Errorf("daemon %s never shut down", addr)
			}
		})
	}
	t.Cleanup(kill)
	return client.New("http://" + addr), kill
}

// TestElectdHAFleet is the chaos e2e: three daemons elect a coordinator
// among themselves, a fleet batch merged across the survivors is
// byte-identical to a local run, and when the coordinator is killed
// mid-grid a successor holds the lease within one TTL and serves the same
// bytes again.
func TestElectdHAFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon election on wall-clock leases")
	}
	const ttl = 6 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()

	addrs := []string{reservePort(t), reservePort(t), reservePort(t)}
	var peerURLs []string
	for _, a := range addrs {
		peerURLs = append(peerURLs, "http://"+a)
	}
	peers := strings.Join(peerURLs, ",")

	clients := make(map[string]*client.Client, 3)
	kills := make(map[string]func(), 3)
	for _, a := range addrs {
		// One -state-file per daemon, as production runs: votes are durable,
		// so there is no storeless startup voting grace to wait out.
		c, kill := startHADaemon(t, a, "-peers", peers, "-lease-ttl", ttl.String(),
			"-state-file", filepath.Join(t.TempDir(), "control-state.json"))
		clients["http://"+a] = c
		kills["http://"+a] = kill
	}

	// Bootstrap: every daemon converges on the same coordinator.
	coord := awaitCoordinator(t, ctx, clients, "", 5*ttl)
	h, err := clients[coord].Health(ctx)
	if err != nil || h.Role != "coordinator" || h.Epoch == 0 {
		t.Fatalf("coordinator healthz: %+v err=%v", h, err)
	}
	epochBefore := h.Epoch

	// The reference: the same grid computed in-process.
	spec, err := elect.Lookup("tradeoff")
	if err != nil {
		t.Fatal(err)
	}
	batch := elect.Batch{Ns: []int{64, 128}, Seeds: elect.Seeds(1, 4)}
	local, err := elect.RunMany(spec, batch)
	if err != nil {
		t.Fatal(err)
	}
	localBytes, err := elect.EncodeBatchResult(local)
	if err != nil {
		t.Fatal(err)
	}

	req := client.BatchRequest{
		Spec: "tradeoff", Ns: batch.Ns, SeedBase: 1, SeedCount: 4, Fleet: true,
	}
	// A worker must refuse the fleet batch and name the coordinator.
	for url, c := range clients {
		if url == coord {
			continue
		}
		if _, err := c.Batch(ctx, req); err == nil {
			t.Fatalf("worker %s accepted a fleet batch", url)
		}
		break
	}
	// The coordinator shards it over the fleet; merged == local, byte for byte.
	resp, err := clients[coord].Batch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := elect.EncodeBatchResult(resp.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(localBytes, gotBytes) {
		t.Fatalf("fleet batch not byte-identical to local:\n %s\n %s", localBytes, gotBytes)
	}

	// Kill the coordinator mid-grid: put a bigger async fleet batch in
	// flight on it, give the shards a moment to start, then pull the plug.
	if _, err := clients[coord].SubmitBatch(ctx, client.BatchRequest{
		Spec: "tradeoff", Ns: []int{256, 512}, SeedBase: 1, SeedCount: 8, Fleet: true,
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	killed := coord
	kills[killed]()
	killedAt := time.Now()
	delete(clients, killed)

	// A successor holds the lease within one TTL.
	coord = awaitCoordinator(t, ctx, clients, killed, ttl)
	t.Logf("re-election took %s (ttl %s)", time.Since(killedAt).Round(time.Millisecond), ttl)
	h, err = clients[coord].Health(ctx)
	if err != nil || h.Role != "coordinator" {
		t.Fatalf("successor healthz: %+v err=%v", h, err)
	}
	if h.Epoch <= epochBefore {
		t.Fatalf("epoch did not advance across the crash: %d -> %d", epochBefore, h.Epoch)
	}

	// The successor's fleet is down a member, but the merged result must
	// not change by a byte.
	resp, err = clients[coord].Batch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err = elect.EncodeBatchResult(resp.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(localBytes, gotBytes) {
		t.Fatal("post-crash fleet batch not byte-identical to local")
	}
}

// awaitCoordinator polls every live daemon's /v1/coordinator until they all
// agree on one lease holder (different from `not`, the freshly killed one)
// and returns it.
func awaitCoordinator(t *testing.T, ctx context.Context, clients map[string]*client.Client, not string, within time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(within)
	var last string
	for time.Now().Before(deadline) {
		agreed := ""
		ok := true
		for url, c := range clients {
			co, err := c.Coordinator(ctx)
			if err != nil || co.Coordinator == "" || co.Coordinator == not {
				ok = false
				break
			}
			if agreed == "" {
				agreed = co.Coordinator
			} else if co.Coordinator != agreed {
				ok = false
				break
			}
			last = fmt.Sprintf("%s sees %q", url, co.Coordinator)
		}
		if ok && agreed != "" {
			c, found := clients[agreed]
			if !found {
				t.Fatalf("coordinator %q is not a fleet member", agreed)
			}
			// Agreement on the vote can land an instant before the winner
			// confirms its quorum; the lease is held only once the holder
			// itself reports the coordinator role.
			if h, err := c.Health(ctx); err == nil && h.Role == "coordinator" {
				return agreed
			}
			last = fmt.Sprintf("%s agreed on but not yet leading", agreed)
			time.Sleep(20 * time.Millisecond)
			continue
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("no agreed coordinator within %s (last: %s)", within, last)
	return ""
}
