package main

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cliquelect/elect/client"
)

// TestElectdFleetz is the control-room acceptance test: a three-daemon HA
// fleet elects a coordinator, and GET /v1/fleetz from any member reports
// all three nodes with exactly one coordinator at a matching epoch, a
// health verdict per node, and the election visible in the merged journal.
func TestElectdFleetz(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon election on wall-clock leases")
	}
	const ttl = 6 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	addrs := []string{reservePort(t), reservePort(t), reservePort(t)}
	var peerURLs []string
	for _, a := range addrs {
		peerURLs = append(peerURLs, "http://"+a)
	}
	peers := strings.Join(peerURLs, ",")

	clients := make(map[string]*client.Client, 3)
	for _, a := range addrs {
		c, _ := startHADaemon(t, a, "-peers", peers, "-lease-ttl", ttl.String(),
			"-state-file", filepath.Join(t.TempDir(), "control-state.json"))
		clients["http://"+a] = c
	}
	coord := awaitCoordinator(t, ctx, clients, "", 5*ttl)

	// Ask a NON-coordinator for the fleet snapshot: federation must not
	// depend on asking the lease holder.
	var viewer *client.Client
	for url, c := range clients {
		if url != coord {
			viewer = c
			break
		}
	}
	fz, err := viewer.Fleetz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(fz.Nodes) != 3 {
		t.Fatalf("fleetz has %d nodes, want 3: %+v", len(fz.Nodes), fz.Nodes)
	}
	coordinators := 0
	for _, n := range fz.Nodes {
		if !n.Reachable {
			t.Fatalf("node %s unreachable in a healthy fleet: %s", n.URL, n.Err)
		}
		if n.Role == "coordinator" {
			coordinators++
			if n.URL != coord {
				t.Fatalf("fleetz coordinator %s, cluster agreed on %s", n.URL, coord)
			}
		}
		if n.Epoch != fz.Epoch {
			t.Fatalf("node %s at epoch %d, fleet at %d", n.URL, n.Epoch, fz.Epoch)
		}
		if n.SLO == nil || n.SLO.Verdict == "" {
			t.Fatalf("node %s has no SLO verdict", n.URL)
		}
	}
	if coordinators != 1 || fz.Coordinators != 1 {
		t.Fatalf("saw %d coordinator roles (roll-up %d), want exactly 1", coordinators, fz.Coordinators)
	}
	if !fz.EpochAgreement {
		t.Fatalf("epoch disagreement in a settled fleet: %+v", fz)
	}
	if fz.Health == "" {
		t.Fatal("fleet snapshot has no health verdict")
	}

	// The election that made the coordinator is in its journal, and the
	// merged fleet timeline carries it too.
	ev, err := clients[coord].Events(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	won := false
	for _, e := range ev.Events {
		if e.Kind == "campaign.won" {
			won = true
		}
	}
	if !won {
		t.Fatalf("coordinator journal has no campaign.won: %+v", ev.Events)
	}
	merged := false
	for _, e := range fz.Events {
		if e.Kind == "campaign.won" || e.Kind == "lease.grant" {
			merged = true
		}
	}
	if !merged {
		t.Fatalf("fleet timeline carries no election events: %+v", fz.Events)
	}
}
