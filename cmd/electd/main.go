// Command electd serves leader elections over HTTP: an election-as-a-service
// daemon with a bounded job queue, a worker pool over the elect engines, and
// a content-addressed result cache that turns repeated deterministic runs —
// the dominant shape of sweep traffic — into byte-identical replays.
//
//	electd -addr :8090 -cache-dir /var/cache/electd
//
//	curl -s localhost:8090/v1/specs
//	curl -s -X POST localhost:8090/v1/run \
//	     -d '{"spec":"tradeoff","n":1024,"seed":7,"params":{"k":4}}'
//	curl -s -X POST localhost:8090/v1/batch \
//	     -d '{"spec":"tradeoff","ns":[256,512],"seed_count":16,"async":true}'
//	curl -N -H 'Accept: text/event-stream' localhost:8090/v1/jobs/<id>
//	curl -s localhost:8090/healthz
//	curl -s localhost:8090/metrics
//	curl -s localhost:8090/v1/traces
//	curl -s localhost:8090/v1/traces/<trace-id>   # id from any X-Trace-Id header
//	curl -s localhost:8090/v1/events              # the event journal (?since=&limit=)
//	curl -N localhost:8090/v1/events/stream       # …streamed over SSE
//	curl -s localhost:8090/v1/fleetz              # federated fleet status (electtop renders it)
//
// With -peers, daemons form a self-electing HA fleet (internal/control):
// they elect a dispatch coordinator among themselves using the public elect
// API, the coordinator accepts {"fleet":true} batches and shards them over
// the survivors with fencing tokens, and any daemon answers
// GET /v1/coordinator with who currently leads. Give each daemon a
// -state-file so its lease votes survive kill -9 (without one, a restarted
// daemon waits out one lease TTL before voting again). See the "High
// availability" section of the README for a three-daemon walkthrough.
//
// See the "Serving elections" section of the README for the full API, and
// cliquelect/elect/client for the Go client.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cliquelect/internal/control"
	"cliquelect/internal/distrib"
	"cliquelect/internal/resultcache"
	"cliquelect/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "electd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a termination signal (or, in
// tests, until stop closes). ready, when non-nil, receives the bound
// address once the listener is up.
func run(args []string, w io.Writer, ready chan<- string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("electd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8090", "listen address")
		workers      = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		batchWorkers = fs.Int("batch-workers", 0, "per-batch-job sweep parallelism cap; size workers*batch-workers to the cores available (0 = GOMAXPROCS per job)")
		queue        = fs.Int("queue", 256, "job queue depth beyond the running jobs")
		cacheDir     = fs.String("cache-dir", "", "persistent result-cache directory (empty = memory only)")
		cacheEntries = fs.Int("cache-entries", resultcache.DefaultMaxEntries, "in-memory result-cache bound (0 = unbounded)")
		noCache      = fs.Bool("no-cache", false, "disable the result cache entirely")
		quiet        = fs.Bool("quiet", false, "suppress per-request logging")
		pprofOn      = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		traceSpans   = fs.Int("trace-spans", 0, "request-trace span buffer capacity behind /v1/traces (0 = default, negative = disable tracing)")
		events       = fs.Int("events", 0, "event-journal capacity behind /v1/events (0 = default, negative = disable journaling)")
		instance     = fs.String("instance", "", "daemon name in trace spans, so merged fleet traces tell workers apart (empty = the listen address)")
		peers        = fs.String("peers", "", "comma-separated fleet peer URLs (self included); enables the self-electing control plane")
		leaseTTL     = fs.Duration("lease-ttl", control.DefaultLeaseTTL, "coordinator lease lifetime; a dead coordinator is replaced within one TTL")
		advertise    = fs.String("advertise", "", "this daemon's URL as listed in -peers (empty = the bound listen address)")
		stateFile    = fs.String("state-file", "", "durable control-plane vote state (JSON, one file per daemon); lease votes then stay at-most-once-per-epoch across kill -9 (empty = in-memory only, with a one-lease-TTL voting grace period after startup)")
	)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := service.Config{
		Workers: *workers, QueueDepth: *queue, BatchWorkers: *batchWorkers,
		TraceSpans: *traceSpans, Events: *events, Instance: *instance,
	}
	if cfg.Instance == "" {
		cfg.Instance = *addr
	}
	if !*noCache {
		copts := []resultcache.Option{resultcache.WithMaxEntries(*cacheEntries)}
		if *cacheDir != "" {
			copts = append(copts, resultcache.WithDir(*cacheDir))
		}
		cfg.Cache = resultcache.New(copts...)
	}
	logger := log.New(w, "electd: ", log.LstdFlags)
	if !*quiet {
		cfg.Logf = logger.Printf
	}

	// Listen before assembling the control plane: the daemon's advertised
	// URL defaults to the bound address, which :0 test fleets only know
	// after the listener is up.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()

	var node *control.Node
	if *peers != "" {
		self := *advertise
		if self == "" {
			self = ln.Addr().String()
		}
		self = distrib.NormalizeURL(self)
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if u := distrib.NormalizeURL(p); u != "" {
				peerList = append(peerList, u)
			}
		}
		ctlCfg := control.Config{
			Self:      self,
			Peers:     peerList,
			LeaseTTL:  *leaseTTL,
			Transport: control.NewHTTPTransport(),
			Logf:      logger.Printf,
		}
		if *stateFile != "" {
			ctlCfg.Store = control.NewFileStore(*stateFile)
		}
		node, err = control.New(ctlCfg)
		if err != nil {
			return err
		}
		cfg.Control = node
		// The dispatch fleet is the peer set minus self: a coordinator
		// shards fleet batches over the other daemons (falling back to local
		// execution when none survive), never through its own bounded worker
		// pool. Its fencing token tracks the node's election epoch.
		var others []string
		for _, p := range node.Peers() {
			if p != self {
				others = append(others, p)
			}
		}
		if len(others) > 0 {
			fleet, err := distrib.New(distrib.Config{
				Workers: others,
				Fence:   node.Token,
				Logf:    logger.Printf,
			})
			if err != nil {
				return err
			}
			cfg.Fleet = fleet
		}
	}

	srv := service.New(cfg)
	defer srv.Close()
	if cfg.Fleet != nil {
		cfg.Fleet.SetEvents(srv.Events())
	}
	if node != nil {
		node.SetSpans(srv.Spans())
		node.SetEvents(srv.Events())
		ctlStop := make(chan struct{})
		defer close(ctlStop)
		go node.Run(ctlStop)
		state := *stateFile
		if state == "" {
			state = "memory (one-TTL startup voting grace)"
		}
		logger.Printf("control plane up: self=%s peers=%d lease-ttl=%s state=%s", node.Self(), len(node.Peers()), node.LeaseTTL(), state)
	}

	logger.Printf("serving on %s (cache: %s)", ln.Addr(), cacheDesc(*noCache, *cacheDir))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	handler := srv.Handler()
	if *pprofOn {
		// The API middleware must not wrap the profiler (its requests would
		// pollute the route metrics), so pprof mounts on an outer mux that
		// falls through to the service handler.
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", handler)
		handler = outer
		logger.Printf("pprof mounted on /debug/pprof/")
	}
	httpSrv := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	case <-stop:
	}
	logger.Printf("shutting down")
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shutCancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func cacheDesc(disabled bool, dir string) string {
	switch {
	case disabled:
		return "disabled"
	case dir != "":
		return "memory + " + dir
	}
	return "memory"
}
