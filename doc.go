// Package cliquelect is a reproduction of "Improved Tradeoffs for Leader
// Election" (Shay Kutten, Peter Robinson, Ming Ming Tan, Xianbin Zhu;
// PODC 2023, arXiv:2301.08235): every algorithm, baseline and lower-bound
// construction of the paper, implemented on simulated synchronous and
// asynchronous cliques under the KT0 clean-network model.
//
// The public entry point is the elect package — a registry of protocol
// specs, a single Run over all three execution engines, and a sharded
// parallel batch runner. Runnable walkthroughs live as godoc examples in
// the elect package: see ExampleRun, ExampleRunMany, ExampleRunCached and
// ExampleWithFaults (all compiled and run by go test).
//
//   - elect — public API: Registry/Lookup, Run with functional options,
//     unified Result, RunMany worker-pool sweeps, and fault injection
//     (WithFaults: deterministic crash-stop/drop/duplicate plans plus
//     adaptive adversaries, with OK semantics restricted to survivors).
//     Also the stable JSON wire codec (EncodeResult/EncodeBatchResult) and
//     the content-address machinery (Fingerprint, Cache, RunCached).
//   - elect/client — Go client for the electd daemon, and the daemon's
//     wire schema (shared with internal/service).
//
// # Serving elections
//
// cmd/electd is an election-as-a-service HTTP daemon: POST /v1/run and
// POST /v1/batch execute (or enqueue, with "async":true) elections on a
// bounded job queue + worker pool (internal/jobs); GET /v1/jobs/{id}
// reports a job and streams progress over SSE; GET /v1/specs lists the
// registry; /healthz reports job and cache counters.
//
// The serving layer leans on the determinism contract: EngineSync and
// EngineAsync reproduce byte-identical Results from identical inputs, so
// every deterministic run is memoizable. internal/resultcache stores
// encoded results under elect.Fingerprint content hashes (in-memory LRU +
// optional on-disk tier); repeated runs — the dominant shape of sweep
// traffic — are replayed byte-for-byte instead of re-executed. Live-engine
// runs and adaptive-adversary plans are uncacheable and bypass the cache.
// cmd/sweep and cmd/faultsweep share the same cache via -cache DIR.
//
// The same contract powers distributed dispatch (internal/distrib): the
// sweep CLIs' -workers flag shards a batch grid into deterministic chunks
// across a fleet of electd daemons (POST /v1/chunk), with health-probe
// load balancing, failover off dead workers and straggler re-dispatch —
// merging a BatchResult byte-identical to a purely local RunMany.
//
// The implementation lives under internal/:
//
//   - internal/core — the protocols (Theorems 3.10, 3.15, 3.16, 4.1,
//     5.1, 5.14 plus the [1], [14], [16] baselines).
//   - internal/simsync, internal/simasync — deterministic clique engines,
//     both wired into the fault-injection hooks.
//   - internal/faults — the seeded fault-injection subsystem (crash-stop at
//     a round/time, per-message drop and duplication, targeted first-k
//     drops, composable adaptive adversaries).
//   - internal/livenet — goroutine-per-node concurrent runtime.
//   - internal/lowerbound — executable adversaries for Theorems 3.8, 3.11,
//     3.16 and 4.2.
//   - internal/experiments — the Table-1 reproduction harness (E1..E13).
//   - internal/jobs, internal/resultcache, internal/service — the serving
//     layer behind cmd/electd (job queue, result cache, HTTP handlers).
//   - internal/obs — observability substrate: the metrics registry behind
//     GET /metrics and the distributed request-tracing layer (W3C
//     traceparent spans across client → daemon → job, GET /v1/traces,
//     Chrome trace-event export, sweep -trace-out waterfalls). Despite
//     the similar name, internal/trace is unrelated: it records the
//     paper's communication graph (Definition 3.1) for the lower-bound
//     machinery, while internal/obs traces serving-stack requests.
//   - internal/distrib — the distributed dispatch fabric: chunk
//     partitioner, worker registry, failover/straggler scheduler, merger.
//   - cmd/elect, cmd/sweep, cmd/faultsweep, cmd/experiments,
//     cmd/lowerbound, cmd/electd — CLIs; cmd/faultsweep prints resilience
//     tables (election-success rate under swept crash/drop rates) and
//     cmd/sweep -json writes BENCH_<date>.json perf artifacts, diffable
//     against a prior file with -compare (exits non-zero on >10%
//     regressions).
//   - examples/ — runnable scenarios, each with a smoke test.
//
// # Performance
//
// The deterministic engines are built for large-n sweeps: pooled inbox
// arenas and send buffers (internal/proto), flat open-addressing tables
// under the lazy port wirings (internal/flatmap), a boxing-free event heap
// in the async simulator, and work-stealing shards in elect.RunMany. A
// single tradeoff election at n = 2^20 completes in tens of seconds on one
// core. ARCHITECTURE.md fixes the layer stack and the determinism contract
// all of this preserves; PERFORMANCE.md documents the benchmark workflow,
// the BENCH_<date>.json -compare regression gate, and current numbers.
//
// See README.md for a tour and quickstart.
package cliquelect
