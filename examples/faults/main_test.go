package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSmoke runs the walkthrough at a tiny size so CI catches API drift in
// the example code.
func TestSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(48, 4, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fault-free run", "resilience to message loss", "adaptive front-runner hunt"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
