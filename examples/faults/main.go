// Faults: the resilience walkthrough. The paper proves its election
// guarantees against an adversary that controls wake-ups and message delays;
// this example extends that adversary with crash-stop and message-loss
// faults (elect.WithFaults) and asks the reproduction question the fault
// subsystem exists for: at what fault rate does each guarantee break?
//
// Three scenes: (1) assassinate the fault-free leader with an explicit
// crash and watch the survivors' outcome change, (2) sweep the drop rate on
// one synchronous and one asynchronous protocol and print their resilience
// curves, (3) let an adaptive adversary hunt the lowest-rank sender.
//
//	go run ./examples/faults
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"cliquelect/elect"
	"cliquelect/internal/stats"
)

func main() {
	if err := run(256, 20, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(n, seeds int, w io.Writer) error {
	// Scene 1: crash the winner. A fault-free run tells us who wins; a second
	// run with an explicit crash of exactly that node at round 1 must elect
	// someone else among the survivors — or fail, which is an honest outcome
	// under crash faults (OK is restricted to surviving nodes).
	spec, err := elect.Lookup("tradeoff")
	if err != nil {
		return err
	}
	base := []elect.Option{
		elect.WithN(n), elect.WithSeed(7), elect.WithParams(elect.Params{K: 3}),
	}
	plain, err := elect.Run(spec, base...)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fault-free run : node %d (ID %d) wins in %d rounds\n",
		plain.Leader, plain.LeaderID, plain.Rounds)
	regicide, err := elect.Run(spec, append(base,
		elect.WithFaults(elect.FaultPlan{
			Crashes: []elect.Crash{{Node: plain.Leader, At: 1}},
		}))...)
	if err != nil {
		return err
	}
	switch {
	case regicide.OK:
		fmt.Fprintf(w, "crash node %-4d: survivors elect node %d (ID %d) instead\n",
			plain.Leader, regicide.Leader, regicide.LeaderID)
	default:
		fmt.Fprintf(w, "crash node %-4d: no surviving leader — the election fails honestly\n",
			plain.Leader)
	}

	// Scene 2: resilience curves. Success rate is ~1.0 at drop rate 0 and
	// degrades as the link loss rises; the asynchronous protocol is far more
	// fragile because every one of its O(n^{1+1/k}) messages is load-bearing.
	fmt.Fprintf(w, "\nresilience to message loss (n = %d, %d seeds per cell):\n\n", n, seeds)
	table := stats.NewTable("algo", "drop", "success", "mean msgs", "crashed", "dropped")
	for _, name := range []string{"tradeoff", "asynctradeoff"} {
		spec, err := elect.Lookup(name)
		if err != nil {
			return err
		}
		for _, drop := range []float64{0, 0.002, 0.01, 0.05, 0.2} {
			opts := []elect.Option{
				elect.WithParams(elect.Params{K: 3}),
				elect.WithFaults(elect.FaultPlan{DropRate: drop}),
			}
			batch, err := elect.RunMany(spec, elect.Batch{
				Ns:      []int{n},
				Seeds:   elect.Seeds(1, seeds),
				Options: opts,
			})
			if err != nil {
				return err
			}
			agg := batch.Aggregates[0]
			table.AddRow(name, drop, fmt.Sprintf("%.2f", agg.SuccessRate),
				agg.Messages.Mean, agg.MeanCrashed, agg.MeanDropped)
		}
	}
	fmt.Fprint(w, table.String())

	// Scene 3: the adaptive adversary. CrashLowestSender watches every
	// message and keeps killing whichever node has sent the smallest payload
	// word — for these protocols, the current front-runner.
	hunted, err := elect.Run(spec, append(base,
		elect.WithFaults(elect.FaultPlan{
			NewAdversary: elect.CrashLowestSender(2),
		}))...)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nadaptive front-runner hunt: crashed %v, OK = %v\n",
		hunted.Crashed, hunted.OK)
	fmt.Fprintf(w, "same seed, same plan, rerun: byte-identical — the injector is deterministic\n")
	return nil
}
