// Serving elections: boot an in-process electd (the election-as-a-service
// daemon), then drive it through the Go client — a synchronous run, the
// byte-identical cache replay of the same run, and an asynchronous sweep
// streamed over SSE. The same traffic works against a standalone daemon
// (`go run ./cmd/electd`) with curl; see the README's "Serving elections"
// section.
//
//	go run ./examples/service
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"os"
	"time"

	"cliquelect/elect"
	"cliquelect/elect/client"
	"cliquelect/internal/resultcache"
	"cliquelect/internal/service"
)

func main() {
	if err := run(1024, 16, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(n, seeds int, w io.Writer) error {
	// An electd is the service package mounted on any HTTP listener; the
	// standalone daemon (cmd/electd) wraps exactly this.
	cache := resultcache.New()
	srv := service.New(service.Config{Cache: cache})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := client.New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// One synchronous election: POST /v1/run, answer in-line.
	req := client.RunRequest{
		Spec: "tradeoff", N: n, Seed: 7,
		Options: client.Options{Params: &client.ParamSpec{K: intp(4)}},
	}
	t0 := time.Now()
	cold, err := c.Run(ctx, req)
	if err != nil {
		return err
	}
	coldTime := time.Since(t0)
	fmt.Fprintf(w, "cold run   : leader ID %d after %d msgs in %d rounds (%.2fms, cache hit: %v)\n",
		cold.Result.LeaderID, cold.Result.Messages, cold.Result.Rounds,
		coldTime.Seconds()*1e3, cold.CacheHit)

	// The same logical run again. The engines are byte-deterministic, so
	// the daemon owes us the identical Result — and the cache means it
	// never re-executes the protocol.
	t0 = time.Now()
	warm, err := c.Run(ctx, req)
	if err != nil {
		return err
	}
	warmTime := time.Since(t0)
	a, _ := elect.EncodeResult(*cold.Result)
	b, _ := elect.EncodeResult(*warm.Result)
	fmt.Fprintf(w, "warm run   : cache hit: %v, byte-identical: %v (%.2fms)\n",
		warm.CacheHit, string(a) == string(b), warmTime.Seconds()*1e3)

	// A sweep as an asynchronous job: POST /v1/batch {"async":true}, then
	// SSE progress from GET /v1/jobs/{id}.
	st, err := c.SubmitBatch(ctx, client.BatchRequest{
		Spec: "tradeoff", Ns: []int{n / 4, n / 2}, SeedBase: 1, SeedCount: seeds,
		Options: client.Options{Params: &client.ParamSpec{K: intp(4)}},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "batch job  : %s queued (%d runs)\n", st.ID, st.Total)
	final, err := c.Stream(ctx, st.ID, func(s client.JobStatus) {
		if s.State == "running" && s.Done > 0 {
			fmt.Fprintf(w, "  progress : %d/%d\n", s.Done, s.Total)
		}
	})
	if err != nil {
		return err
	}
	for _, agg := range final.Batch.Aggregates {
		fmt.Fprintf(w, "  n=%-5d  : mean %.0f msgs, success %d/%d\n",
			agg.N, agg.Messages.Mean, agg.Successes, agg.Runs)
	}

	// The daemon's counters tell the caching story.
	h, err := c.Health(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "cache      : %d hits, %d misses, %d entries\n",
		h.Cache.Hits, h.Cache.Misses, h.Cache.Entries)
	return nil
}

func intp(v int) *int { return &v }
