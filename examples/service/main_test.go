package main

import (
	"io"
	"strings"
	"testing"
)

// TestSmoke runs the example's main path at a small size so CI catches API
// drift in the example code.
func TestSmoke(t *testing.T) {
	var out strings.Builder
	if err := run(128, 4, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cold run", "cache hit: true", "byte-identical: true", "batch job"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if err := run(64, 2, io.Discard); err != nil {
		t.Fatal(err)
	}
}
