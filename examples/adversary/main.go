// Adversary: watch the Theorem 3.8 lower-bound adversary throttle a real
// deterministic algorithm round by round. The adversary wires every newly
// opened port back into the sender's block, so the communication graph's
// components cannot outgrow 2^{sigma_r} — and no node can tell the
// difference, because under KT0 an unused port could lead anywhere.
//
//	go run ./examples/adversary -n 1024 -k 4
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"cliquelect/elect"
	"cliquelect/internal/lowerbound"
	"cliquelect/internal/stats"
)

func main() {
	n := flag.Int("n", 1024, "clique size (power of two)")
	k := flag.Int("k", 4, "victim algorithm's tradeoff parameter")
	flag.Parse()
	if err := run(*n, *k, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(n, k int, w io.Writer) error {
	// First measure the victim's own message budget f = messages/n.
	spec, err := elect.Lookup("tradeoff")
	if err != nil {
		return err
	}
	plain, err := elect.Run(spec,
		elect.WithN(n), elect.WithSeed(3), elect.WithParams(elect.Params{K: k}))
	if err != nil {
		return err
	}
	f := float64(plain.Messages) / float64(n)
	fmt.Fprintf(w, "victim: Theorem 3.10 algorithm, k=%d (%d rounds), f = msgs/n = %.1f\n",
		k, plain.Rounds, f)

	game, err := lowerbound.ComponentGame(n, f, lowerbound.TradeoffVictim(k), 99)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Theorem 3.8 floor at this budget: more than %.2f rounds\n\n", game.PredictedRounds)

	table := stats.NewTable("round", "msgs", "max component", "cap 2^sigma_r", "contained")
	for _, cr := range game.Rounds[1:] {
		table.AddRow(cr.Round, cr.Messages, cr.MaxComponent, cr.Cap, cr.MaxComponent <= cr.Cap)
	}
	fmt.Fprint(w, table.String())

	fmt.Fprintf(w, "\nThe algorithm could not terminate before some component held a majority\n")
	fmt.Fprintf(w, "(Corollary 3.7); the adversary enforced caps for %d round(s), and the\n", game.StalledRounds())
	fmt.Fprintf(w, "measured %d rounds indeed exceed the %.2f-round floor.\n", plain.Rounds, game.PredictedRounds)
	return nil
}
