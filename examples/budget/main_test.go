package main

import (
	"io"
	"testing"
)

// TestSmoke runs the example's main path at a tiny size so CI catches API
// drift in the example code.
func TestSmoke(t *testing.T) {
	if err := run(64, 1e6, io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestNoFit: an impossible budget must fail with the planner's explanation,
// not a panic.
func TestNoFit(t *testing.T) {
	if err := run(64, 1, io.Discard); err == nil {
		t.Fatal("1-message budget accepted")
	}
}
