// Budget: the paper's introduction motivates message/time tradeoffs with
// resource-constrained networks (messages and time both cost energy). This
// example is a planner: given a message budget per election, pick the
// fastest algorithm/parameter combination that honors it, then demonstrate
// the choice on a simulated clique — enforcing the budget with
// elect.WithMessageBudget.
//
//	go run ./examples/budget -n 4096 -budget 100000
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"cliquelect/elect"
	"cliquelect/internal/stats"
)

// plan is one candidate configuration with its predicted cost.
type plan struct {
	algo      string
	params    elect.Params
	rounds    float64 // predicted time (rounds or time units)
	predicted float64 // predicted messages
}

func main() {
	n := flag.Int("n", 4096, "clique size")
	budget := flag.Float64("budget", 100000, "message budget per election")
	flag.Parse()
	if err := run(*n, *budget, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(n int, budget float64, w io.Writer) error {
	fn := float64(n)
	var plans []plan
	// Deterministic tradeoff (Theorem 3.10): k >= 3.
	for k := 3; k <= 8; k++ {
		plans = append(plans, plan{
			algo: "tradeoff", params: elect.Params{K: k},
			rounds:    float64(2*k - 3),
			predicted: 2.5 * float64(k) * math.Pow(fn, 1+1/float64(k-1)),
		})
	}
	// Las Vegas (Theorem 3.16): 3 rounds, ~4n messages.
	plans = append(plans, plan{
		algo: "lasvegas", params: elect.Params{},
		rounds: 3, predicted: 4 * fn,
	})
	// Monte Carlo [16]: 2 rounds, ~2·sqrt(n)·ln^{1.5} n messages.
	plans = append(plans, plan{
		algo: "sublinear", params: elect.Params{},
		rounds: 2, predicted: 2 * math.Sqrt(fn) * math.Pow(math.Log(fn), 1.5),
	})

	fmt.Fprintf(w, "election planner: n = %d, budget = %.0f messages\n\n", n, budget)
	table := stats.NewTable("algorithm", "params", "time", "predicted msgs", "fits budget")
	var best *plan
	for i := range plans {
		p := &plans[i]
		fits := p.predicted <= budget
		table.AddRow(p.algo, fmt.Sprintf("k=%d", p.params.K), p.rounds, p.predicted, fits)
		if fits && (best == nil || p.rounds < best.rounds ||
			(p.rounds == best.rounds && p.predicted < best.predicted)) {
			best = p
		}
	}
	fmt.Fprint(w, table.String())
	if best == nil {
		return fmt.Errorf("no algorithm fits a budget of %.0f messages at n=%d; "+
			"the Theorem 3.8 tradeoff says you must pay more time or more messages", budget, n)
	}
	fmt.Fprintf(w, "\nchosen: %s (k=%d) — now validating on a simulated clique\n\n", best.algo, best.params.K)

	spec, err := elect.Lookup(best.algo)
	if err != nil {
		return err
	}
	params := best.params
	if params.K == 0 {
		params = elect.DefaultParams()
	}
	res, err := elect.Run(spec,
		elect.WithN(n), elect.WithSeed(11), elect.WithParams(params),
		elect.WithMessageBudget(int64(budget)))
	if err != nil {
		return err
	}
	fmt.Fprint(w, res)
	switch {
	case res.Truncated:
		fmt.Fprintf(w, "NOTE: the budget truncated the run after %d messages — predictions are asymptotic\n", res.Messages)
	case float64(res.Messages) > budget:
		fmt.Fprintf(w, "NOTE: measured %d messages exceeded the budget — predictions are asymptotic\n", res.Messages)
	default:
		fmt.Fprintf(w, "budget honored: %d <= %.0f\n", res.Messages, budget)
	}
	return nil
}
