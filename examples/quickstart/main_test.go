package main

import (
	"io"
	"testing"
)

// TestSmoke runs the example's main path at a tiny size so CI catches API
// drift in the example code.
func TestSmoke(t *testing.T) {
	if err := run(64, 3, io.Discard); err != nil {
		t.Fatal(err)
	}
}
