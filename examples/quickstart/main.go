// Quickstart: elect a leader on a 1024-node synchronous clique with the
// paper's improved deterministic tradeoff algorithm (Theorem 3.10).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cliquelect/internal/core"
	"cliquelect/internal/ids"
	"cliquelect/internal/simsync"
	"cliquelect/internal/xrand"
)

func main() {
	const (
		n = 1024 // clique size
		k = 4    // tradeoff parameter: 2k-3 = 5 rounds
	)

	// Nodes get unique IDs from the Theta(n log n)-sized universe the paper
	// assumes (Theorem 3.8 shows smaller universes genuinely change the
	// problem).
	assign := ids.Random(ids.LogUniverse(n), n, xrand.New(42))

	res, err := simsync.Run(simsync.Config{
		N:    n,
		IDs:  assign,
		Seed: 7, // seeds the engine's port mapping; the algorithm is deterministic
	}, core.NewTradeoff(k))
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		log.Fatal(err)
	}

	leader := res.UniqueLeader()
	fmt.Printf("clique size      : %d nodes\n", n)
	fmt.Printf("elected leader   : node %d (ID %d — the maximum, as the algorithm guarantees)\n",
		leader, assign[leader])
	fmt.Printf("rounds used      : %d (= 2k-3 exactly)\n", res.Rounds)
	fmt.Printf("messages sent    : %d (Theorem 3.10 bound: O(k·n^{1+1/(k-1)}))\n", res.Messages)
	fmt.Printf("per-round profile: %v\n", res.PerRound[1:])
}
