// Quickstart: elect a leader on a 1024-node synchronous clique with the
// paper's improved deterministic tradeoff algorithm (Theorem 3.10), through
// the public elect API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cliquelect/elect"
)

func main() {
	const (
		n = 1024 // clique size
		k = 4    // tradeoff parameter: 2k-3 = 5 rounds
	)

	spec, err := elect.Lookup("tradeoff")
	if err != nil {
		log.Fatal(err)
	}
	// The seed drives everything reproducible about the run: the random ID
	// assignment (from the Θ(n log n)-sized universe the paper assumes) and
	// the engine's port mapping. The algorithm itself is deterministic.
	res, err := elect.Run(spec,
		elect.WithN(n),
		elect.WithSeed(42),
		elect.WithParams(elect.Params{K: k}),
	)
	if err != nil {
		log.Fatal(err)
	}
	if !res.OK {
		log.Fatalf("run failed to elect a unique leader: %+v", res)
	}

	fmt.Printf("clique size      : %d nodes\n", n)
	fmt.Printf("elected leader   : node %d (ID %d — the maximum, as the algorithm guarantees)\n",
		res.Leader, res.LeaderID)
	fmt.Printf("rounds used      : %d (= 2k-3 exactly)\n", res.Rounds)
	fmt.Printf("messages sent    : %d (Theorem 3.10 bound: O(k·n^{1+1/(k-1)}))\n", res.Messages)
	fmt.Printf("per-round profile: %v\n", res.PerRound[1:])
}
