// Quickstart: elect a leader on a 1024-node synchronous clique with the
// paper's improved deterministic tradeoff algorithm (Theorem 3.10), through
// the public elect API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"cliquelect/elect"
)

func main() {
	// n = clique size; k = tradeoff parameter (2k-3 = 5 rounds at k = 4).
	if err := run(1024, 4, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(n, k int, w io.Writer) error {
	spec, err := elect.Lookup("tradeoff")
	if err != nil {
		return err
	}
	// The seed drives everything reproducible about the run: the random ID
	// assignment (from the Θ(n log n)-sized universe the paper assumes) and
	// the engine's port mapping. The algorithm itself is deterministic.
	res, err := elect.Run(spec,
		elect.WithN(n),
		elect.WithSeed(42),
		elect.WithParams(elect.Params{K: k}),
	)
	if err != nil {
		return err
	}
	if !res.OK {
		return fmt.Errorf("run failed to elect a unique leader: %+v", res)
	}

	fmt.Fprintf(w, "clique size      : %d nodes\n", n)
	fmt.Fprintf(w, "elected leader   : node %d (ID %d — the maximum, as the algorithm guarantees)\n",
		res.Leader, res.LeaderID)
	fmt.Fprintf(w, "rounds used      : %d (= 2k-3 exactly)\n", res.Rounds)
	fmt.Fprintf(w, "messages sent    : %d (Theorem 3.10 bound: O(k·n^{1+1/(k-1)}))\n", res.Messages)
	fmt.Fprintf(w, "per-round profile: %v\n", res.PerRound[1:])
	return nil
}
