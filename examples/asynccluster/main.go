// Asynccluster: run Algorithm 2 (Theorem 5.1) on an asynchronous clique
// under adversarial wake-up and sweep the tradeoff parameter k, printing
// the paper's headline message/time tradeoff curve.
//
// The scenario mirrors the paper's motivation: a cluster where one machine
// spontaneously starts a coordination task and must elect a coordinator
// among n peers whose links have arbitrary (bounded) delays.
//
//	go run ./examples/asynccluster
package main

import (
	"fmt"
	"log"

	"cliquelect/internal/core"
	"cliquelect/internal/ids"
	"cliquelect/internal/simasync"
	"cliquelect/internal/stats"
	"cliquelect/internal/xrand"
)

func main() {
	const (
		n     = 2048
		seeds = 5
	)
	kMax := core.AsyncLinearK(n)

	fmt.Printf("asynchronous clique, n = %d, single adversarial wake-up, uniform delays\n", n)
	fmt.Printf("Theorem 5.1: k+8 time units and O(n^{1+1/k}) messages, k in [2, %d]\n\n", kMax)

	table := stats.NewTable("k", "bound k+8", "mean time", "mean msgs", "msgs/n")
	for k := 2; k <= kMax; k++ {
		var msgs, timeUnits float64
		rng := xrand.New(uint64(k))
		for s := 0; s < seeds; s++ {
			assign := ids.Random(ids.LogUniverse(n), n, rng)
			res, err := simasync.Run(simasync.Config{
				N:      n,
				IDs:    assign,
				Seed:   rng.Uint64(),
				Delays: simasync.UniformDelay{Lo: 0.25},
				Wake:   simasync.SubsetAtZero([]int{0}),
			}, core.NewAsyncTradeoff(k))
			if err != nil {
				log.Fatal(err)
			}
			if err := res.Validate(); err != nil {
				log.Fatalf("k=%d: %v", k, err)
			}
			msgs += float64(res.Messages)
			timeUnits += res.TimeUnits
		}
		msgs /= seeds
		timeUnits /= seeds
		table.AddRow(k, k+8, timeUnits, msgs, msgs/float64(n))
	}
	fmt.Print(table.String())
	fmt.Println("\nreading the curve: k=2 spends ~n^{3/2} messages in ~10 time units (matching")
	fmt.Println("the Theorem 4.2 floor for 2 time units), while k =", kMax, "reaches the near-linear")
	fmt.Println("corner — the first message/time tradeoff in the asynchronous clique.")
}
