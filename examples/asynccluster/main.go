// Asynccluster: run Algorithm 2 (Theorem 5.1) on an asynchronous clique
// under adversarial wake-up and sweep the tradeoff parameter k, printing
// the paper's headline message/time tradeoff curve. The per-k seeds fan out
// over a worker pool via elect.RunMany.
//
// The scenario mirrors the paper's motivation: a cluster where one machine
// spontaneously starts a coordination task and must elect a coordinator
// among n peers whose links have arbitrary (bounded) delays.
//
//	go run ./examples/asynccluster
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"cliquelect/elect"
	"cliquelect/internal/stats"
)

func main() {
	if err := run(2048, 5, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(n, seeds int, w io.Writer) error {
	kMax := elect.NearLinearK(n)

	spec, err := elect.Lookup("asynctradeoff")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "asynchronous clique, n = %d, single adversarial wake-up, uniform delays in [0.05, 1]\n", n)
	fmt.Fprintf(w, "Theorem 5.1: k+8 time units and O(n^{1+1/k}) messages, k in [2, %d]\n\n", kMax)

	table := stats.NewTable("k", "bound k+8", "mean time", "mean msgs", "msgs/n")
	for k := 2; k <= kMax; k++ {
		batch, err := elect.RunMany(spec, elect.Batch{
			Seeds: elect.Seeds(uint64(k)*1000, seeds),
			Ns:    []int{n},
			Options: []elect.Option{
				elect.WithParams(elect.Params{K: k}),
				elect.WithWake(1),
				elect.WithDelays(elect.DelayUniform),
			},
		})
		if err != nil {
			return err
		}
		agg := batch.Aggregates[0]
		if agg.Successes != agg.Runs {
			return fmt.Errorf("k=%d: only %d/%d runs elected a unique leader", k, agg.Successes, agg.Runs)
		}
		table.AddRow(k, k+8, agg.Time.Mean, agg.Messages.Mean, agg.Messages.Mean/float64(n))
	}
	fmt.Fprint(w, table.String())
	fmt.Fprintf(w, "\nreading the curve: k=2 spends ~n^{3/2} messages within its k+8 = 10 time-unit\n")
	fmt.Fprintf(w, "bound (matching the Theorem 4.2 floor for 2 time units), while k = %d reaches\n", kMax)
	fmt.Fprintf(w, "the near-linear corner — the first message/time tradeoff in the async clique.\n")
	return nil
}
