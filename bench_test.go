// Benchmarks: one per Table-1 row of the paper (E1..E13, matching the
// experiment index in DESIGN.md). Each benchmark executes complete
// elections (or complete adversary games) per iteration through the public
// elect API and reports the paper's complexity measures as custom metrics:
// msgs/op, rounds/op for synchronous rows, timeunits/op for asynchronous
// rows.
//
//	go test -bench=. -benchmem
package cliquelect_test

import (
	"fmt"
	"testing"

	"cliquelect/elect"
	"cliquelect/internal/lowerbound"
	"cliquelect/internal/resultcache"
)

// benchElect runs complete elections per iteration through elect.Run and
// reports the unified complexity metrics.
func benchElect(b *testing.B, algo string, n int, opts ...elect.Option) {
	b.Helper()
	spec, err := elect.Lookup(algo)
	if err != nil {
		b.Fatal(err)
	}
	var msgs, rounds, units float64
	var engine elect.Engine
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		all := append([]elect.Option{elect.WithN(n), elect.WithSeed(uint64(n) + uint64(i))}, opts...)
		res, err := elect.Run(spec, all...)
		if err != nil {
			b.Fatal(err)
		}
		engine = res.Engine
		msgs += float64(res.Messages)
		rounds += float64(res.Rounds)
		units += res.TimeUnits
	}
	b.ReportMetric(msgs/float64(b.N), "msgs/op")
	switch engine {
	case elect.EngineSync:
		b.ReportMetric(rounds/float64(b.N), "rounds/op")
	case elect.EngineAsync:
		b.ReportMetric(units/float64(b.N), "timeunits/op")
		// EngineLive measures no time; report only msgs/op.
	}
}

// BenchmarkE01ComponentGame plays the Theorem 3.8 / Lemma 3.9 adversary
// against the Theorem 3.10 algorithm.
func BenchmarkE01ComponentGame(b *testing.B) {
	var stalled float64
	for i := 0; i < b.N; i++ {
		res, err := lowerbound.ComponentGame(256, 8, lowerbound.TradeoffVictim(4), uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		stalled += float64(res.StalledRounds())
	}
	b.ReportMetric(stalled/float64(b.N), "stalledrounds/op")
}

// BenchmarkE02SingleSend runs the Lemma 3.12 transform of the Theorem 3.10
// algorithm (the Theorem 3.11 census substrate).
func BenchmarkE02SingleSend(b *testing.B) {
	var msgs float64
	for i := 0; i < b.N; i++ {
		m, err := lowerbound.RunSingleSend(64, lowerbound.TradeoffVictim(3), uint64(i)+2)
		if err != nil {
			b.Fatal(err)
		}
		msgs += float64(m)
	}
	b.ReportMetric(msgs/float64(b.N), "msgs/op")
}

// BenchmarkE03Tradeoff benchmarks Theorem 3.10 per round budget l.
func BenchmarkE03Tradeoff(b *testing.B) {
	for _, l := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("l=%d/n=1024", l), func(b *testing.B) {
			benchElect(b, "tradeoff", 1024, elect.WithParams(elect.Params{K: (l + 3) / 2}))
		})
	}
}

// BenchmarkE04SmallID benchmarks Algorithm 1 (Theorem 3.15).
func BenchmarkE04SmallID(b *testing.B) {
	const n = 1024
	for _, d := range []int{2, 32} {
		b.Run(fmt.Sprintf("d=%d/n=%d", d, n), func(b *testing.B) {
			benchElect(b, "smallid", n, elect.WithParams(elect.Params{D: d, G: 1}))
		})
	}
}

// BenchmarkE05LasVegasChecker runs the Theorem 3.16 audit.
func BenchmarkE05LasVegasChecker(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lowerbound.CheckLasVegas(64, 20, lowerbound.NewCheatingLasVegas(), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE06LasVegas benchmarks the Theorem 3.16 algorithm.
func BenchmarkE06LasVegas(b *testing.B) {
	benchElect(b, "lasvegas", 1024)
}

// BenchmarkE07Sublinear benchmarks the [16] Monte Carlo baseline.
func BenchmarkE07Sublinear(b *testing.B) {
	benchElect(b, "sublinear", 4096)
}

// BenchmarkE08AdvWake benchmarks Theorem 4.1 under a single adversarial
// wake-up.
func BenchmarkE08AdvWake(b *testing.B) {
	benchElect(b, "advwake", 1024,
		elect.WithParams(elect.Params{Eps: 1.0 / 16}),
		elect.WithWakeSet([]int{0}))
}

// BenchmarkE09WakeupGame runs the Theorem 4.2 sweep at one reliable point.
func BenchmarkE09WakeupGame(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lowerbound.WakeupGame(256, 5, []float64{2}, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10AsyncTradeoff benchmarks Algorithm 2 (Theorem 5.1) per k.
func BenchmarkE10AsyncTradeoff(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("k=%d/n=1024", k), func(b *testing.B) {
			benchElect(b, "asynctradeoff", 1024,
				elect.WithParams(elect.Params{K: k}),
				elect.WithWakeSet([]int{0}))
		})
	}
}

// BenchmarkE11AsyncLinear benchmarks the substituted near-linear baseline.
func BenchmarkE11AsyncLinear(b *testing.B) {
	benchElect(b, "asynclinear", 1024, elect.WithWakeSet([]int{0}))
}

// BenchmarkE12AsyncAfekGafni benchmarks the Theorem 5.14 deterministic
// algorithm under simultaneous wake-up.
func BenchmarkE12AsyncAfekGafni(b *testing.B) {
	benchElect(b, "asyncafekgafni", 1024)
}

// BenchmarkE13AfekGafni benchmarks the Afek-Gafni [1] baseline per k.
func BenchmarkE13AfekGafni(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("k=%d/n=1024", k), func(b *testing.B) {
			benchElect(b, "afekgafni", 1024, elect.WithParams(elect.Params{K: k}))
		})
	}
}

// BenchmarkEngineSyncBroadcast measures raw engine throughput with an
// n(n-1)-message broadcast (the engines' worst case per round).
func BenchmarkEngineSyncBroadcast(b *testing.B) {
	benchElect(b, "afekgafni", 512, elect.WithParams(elect.Params{K: 1}))
}

// BenchmarkEngineLive measures the goroutine-per-node runtime against the
// event-queue simulator on the same protocol and size.
func BenchmarkEngineLive(b *testing.B) {
	for _, eng := range []elect.Engine{elect.EngineAsync, elect.EngineLive} {
		b.Run(eng.String(), func(b *testing.B) {
			benchElect(b, "asynctradeoff", 256,
				elect.WithParams(elect.Params{K: 3}),
				elect.WithEngine(eng))
		})
	}
}

// BenchmarkRunMany measures batch fan-out throughput: 16 seeds of a
// 256-node election per iteration, on one worker vs. the full pool.
func BenchmarkRunMany(b *testing.B) {
	spec, err := elect.Lookup("tradeoff")
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 0} {
		name := "workers=max"
		if workers == 1 {
			name = "workers=1"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := elect.RunMany(spec, elect.Batch{
					Ns:      []int{256},
					Seeds:   elect.Seeds(uint64(i)*16, 16),
					Workers: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineLargeN is the acceptance workload for the engine hot-path
// overhaul: an 8-cell RunMany sweep (one size, eight seeds) of the paper's
// headline tradeoff algorithm at n=4096 through the full batch path. The
// wall-clock time of this benchmark and the allocation counts of
// BenchmarkRoundLoopAllocs are the before/after numbers PERFORMANCE.md
// records.
func BenchmarkEngineLargeN(b *testing.B) {
	spec, err := elect.Lookup("tradeoff")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := elect.RunMany(spec, elect.Batch{
			Ns:    []int{4096},
			Seeds: elect.Seeds(1, 8),
		})
		if err != nil {
			b.Fatal(err)
		}
		if got := out.Aggregates[0].SuccessRate; got != 1 {
			b.Fatalf("success rate = %v", got)
		}
	}
}

// BenchmarkRoundLoopAllocs tracks the allocation footprint of the simsync
// round loop on a mid-size tradeoff election (n=1024). Compare allocs/op
// across commits; TestRoundLoopAllocBudget in the simsync package enforces
// the hard budget in CI.
func BenchmarkRoundLoopAllocs(b *testing.B) {
	spec, err := elect.Lookup("tradeoff")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := elect.Run(spec, elect.WithN(1024), elect.WithSeed(uint64(i)))
		if err != nil || !res.OK {
			b.Fatalf("err=%v ok=%v", err, res.OK)
		}
	}
}

// BenchmarkCachedRun measures the serving layer's result cache against
// recomputation on the acceptance workload: a 1024-node run of the paper's
// headline tradeoff algorithm, same spec/params/seed every iteration. The
// cached path (content-hash fingerprint + stored-bytes decode) must be at
// least an order of magnitude faster than re-executing the election.
func BenchmarkCachedRun(b *testing.B) {
	spec, err := elect.Lookup("tradeoff")
	if err != nil {
		b.Fatal(err)
	}
	opts := []elect.Option{
		elect.WithN(1024), elect.WithSeed(7),
		elect.WithParams(elect.Params{K: 4}),
	}
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := elect.Run(spec, opts...)
			if err != nil || !res.OK {
				b.Fatalf("err=%v ok=%v", err, res.OK)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		cache := resultcache.New()
		if _, hit, err := elect.RunCached(cache, spec, opts...); err != nil || hit {
			b.Fatalf("warmup: err=%v hit=%v", err, hit)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, hit, err := elect.RunCached(cache, spec, opts...)
			if err != nil || !hit || !res.OK {
				b.Fatalf("err=%v hit=%v ok=%v", err, hit, res.OK)
			}
		}
	})
}

// BenchmarkAblationArrivalWiring quantifies the DESIGN.md ablation: the
// component game with and without adversarial arrival-port wiring (Lemma
// 3.3's both-endpoints control). Compare stalledrounds/op.
func BenchmarkAblationArrivalWiring(b *testing.B) {
	run := func(b *testing.B, opts ...lowerbound.GameOption) {
		var stalled float64
		for i := 0; i < b.N; i++ {
			res, err := lowerbound.ComponentGame(256, 3, lowerbound.TradeoffVictim(4), uint64(i), opts...)
			if err != nil {
				b.Fatal(err)
			}
			stalled += float64(res.StalledRounds())
		}
		b.ReportMetric(stalled/float64(b.N), "stalledrounds/op")
	}
	b.Run("lowport", func(b *testing.B) { run(b) })
	b.Run("uniform", func(b *testing.B) { run(b, lowerbound.WithUniformArrivals()) })
}

// BenchmarkFaultInjection measures the fault subsystem's hook overhead on
// the Theorem 3.10 algorithm: a plain run, a zero-cost active injector
// (rates so low nothing fires), and a lossy run. Compare msgs/op and ns/op
// against the "plain" baseline.
func BenchmarkFaultInjection(b *testing.B) {
	const n = 1024
	b.Run("plain", func(b *testing.B) {
		benchElect(b, "tradeoff", n)
	})
	b.Run("faults=armed", func(b *testing.B) {
		benchElect(b, "tradeoff", n,
			elect.WithFaults(elect.FaultPlan{DropRate: 1e-9}))
	})
	b.Run("faults=lossy", func(b *testing.B) {
		benchElect(b, "tradeoff", n,
			elect.WithFaults(elect.FaultPlan{CrashRate: 0.1, DropRate: 0.01}))
	})
}

// BenchmarkExplicitOverhead measures the +1 round / +n messages cost of the
// explicit-election wrapper (Section 2 / Section 3.5 transformation).
func BenchmarkExplicitOverhead(b *testing.B) {
	const n = 1024
	b.Run("implicit", func(b *testing.B) {
		benchElect(b, "tradeoff", n)
	})
	b.Run("explicit", func(b *testing.B) {
		benchElect(b, "tradeoff", n, elect.WithExplicit())
	})
}
