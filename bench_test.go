// Benchmarks: one per Table-1 row of the paper (E1..E13, matching the
// experiment index in DESIGN.md). Each benchmark executes complete
// elections (or complete adversary games) per iteration and reports the
// paper's complexity measures as custom metrics: msgs/op, rounds/op for
// synchronous rows, timeunits/op for asynchronous rows.
//
//	go test -bench=. -benchmem
package cliquelect_test

import (
	"fmt"
	"testing"

	"cliquelect/internal/core"
	"cliquelect/internal/ids"
	"cliquelect/internal/lowerbound"
	"cliquelect/internal/simasync"
	"cliquelect/internal/simsync"
	"cliquelect/internal/xrand"
)

// benchSync runs complete synchronous elections per iteration.
func benchSync(b *testing.B, n int, factory simsync.Factory,
	mkIDs func(*xrand.RNG) ids.Assignment, wake simsync.WakePolicy) {
	b.Helper()
	rng := xrand.New(uint64(n))
	var msgs, rounds float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := simsync.Run(simsync.Config{
			N: n, IDs: mkIDs(rng), Seed: rng.Uint64(), Wake: wake,
		}, factory)
		if err != nil {
			b.Fatal(err)
		}
		msgs += float64(res.Messages)
		rounds += float64(res.Rounds)
	}
	b.ReportMetric(msgs/float64(b.N), "msgs/op")
	b.ReportMetric(rounds/float64(b.N), "rounds/op")
}

// benchAsync runs complete asynchronous elections per iteration.
func benchAsync(b *testing.B, n int, factory simasync.Factory, wake simasync.WakeSchedule) {
	b.Helper()
	rng := xrand.New(uint64(n))
	var msgs, units float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign := ids.Random(ids.LogUniverse(n), n, rng)
		res, err := simasync.Run(simasync.Config{
			N: n, IDs: assign, Seed: rng.Uint64(), Wake: wake,
		}, factory)
		if err != nil {
			b.Fatal(err)
		}
		msgs += float64(res.Messages)
		units += float64(res.TimeUnits)
	}
	b.ReportMetric(msgs/float64(b.N), "msgs/op")
	b.ReportMetric(units/float64(b.N), "timeunits/op")
}

func logIDs(n int) func(*xrand.RNG) ids.Assignment {
	return func(rng *xrand.RNG) ids.Assignment {
		return ids.Random(ids.LogUniverse(n), n, rng)
	}
}

// BenchmarkE01ComponentGame plays the Theorem 3.8 / Lemma 3.9 adversary
// against the Theorem 3.10 algorithm.
func BenchmarkE01ComponentGame(b *testing.B) {
	var stalled float64
	for i := 0; i < b.N; i++ {
		res, err := lowerbound.ComponentGame(256, 8, core.NewTradeoff(4), uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		stalled += float64(res.StalledRounds())
	}
	b.ReportMetric(stalled/float64(b.N), "stalledrounds/op")
}

// BenchmarkE02SingleSend runs the Lemma 3.12 transform of the Theorem 3.10
// algorithm (the Theorem 3.11 census substrate).
func BenchmarkE02SingleSend(b *testing.B) {
	const n = 64
	rng := xrand.New(2)
	var msgs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := simsync.Run(simsync.Config{
			N: n, IDs: ids.Random(ids.LogUniverse(n), n, rng),
			Seed: rng.Uint64(), MaxRounds: 16 * n,
		}, lowerbound.NewSingleSend(core.NewTradeoff(3)))
		if err != nil {
			b.Fatal(err)
		}
		msgs += float64(res.Messages)
	}
	b.ReportMetric(msgs/float64(b.N), "msgs/op")
}

// BenchmarkE03Tradeoff benchmarks Theorem 3.10 per round budget l.
func BenchmarkE03Tradeoff(b *testing.B) {
	for _, l := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("l=%d/n=1024", l), func(b *testing.B) {
			benchSync(b, 1024, core.NewTradeoff((l+3)/2), logIDs(1024), nil)
		})
	}
}

// BenchmarkE04SmallID benchmarks Algorithm 1 (Theorem 3.15).
func BenchmarkE04SmallID(b *testing.B) {
	const n = 1024
	for _, d := range []int{2, 32} {
		b.Run(fmt.Sprintf("d=%d/n=%d", d, n), func(b *testing.B) {
			benchSync(b, n, core.NewSmallID(d, 1), func(rng *xrand.RNG) ids.Assignment {
				return ids.Random(ids.LinearUniverse(n, 1), n, rng)
			}, nil)
		})
	}
}

// BenchmarkE05LasVegasChecker runs the Theorem 3.16 audit.
func BenchmarkE05LasVegasChecker(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lowerbound.CheckLasVegas(64, 20, lowerbound.NewCheatingLasVegas(), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE06LasVegas benchmarks the Theorem 3.16 algorithm.
func BenchmarkE06LasVegas(b *testing.B) {
	benchSync(b, 1024, core.NewLasVegas(), logIDs(1024), nil)
}

// BenchmarkE07Sublinear benchmarks the [16] Monte Carlo baseline.
func BenchmarkE07Sublinear(b *testing.B) {
	benchSync(b, 4096, core.NewSublinear(), logIDs(4096), nil)
}

// BenchmarkE08AdvWake benchmarks Theorem 4.1 under a single adversarial
// wake-up.
func BenchmarkE08AdvWake(b *testing.B) {
	benchSync(b, 1024, core.NewAdvWake2Round(1.0/16), logIDs(1024),
		simsync.AdversarialSet{Nodes: []int{0}})
}

// BenchmarkE09WakeupGame runs the Theorem 4.2 sweep at one reliable point.
func BenchmarkE09WakeupGame(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lowerbound.WakeupGame(256, 5, []float64{2}, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10AsyncTradeoff benchmarks Algorithm 2 (Theorem 5.1) per k.
func BenchmarkE10AsyncTradeoff(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("k=%d/n=1024", k), func(b *testing.B) {
			benchAsync(b, 1024, core.NewAsyncTradeoff(k), simasync.SubsetAtZero([]int{0}))
		})
	}
}

// BenchmarkE11AsyncLinear benchmarks the substituted near-linear baseline.
func BenchmarkE11AsyncLinear(b *testing.B) {
	benchAsync(b, 1024, core.NewAsyncLinear(1024), simasync.SubsetAtZero([]int{0}))
}

// BenchmarkE12AsyncAfekGafni benchmarks the Theorem 5.14 deterministic
// algorithm under simultaneous wake-up.
func BenchmarkE12AsyncAfekGafni(b *testing.B) {
	benchAsync(b, 1024, core.NewAsyncAfekGafni(), simasync.AllAtZero(1024))
}

// BenchmarkE13AfekGafni benchmarks the Afek-Gafni [1] baseline per k.
func BenchmarkE13AfekGafni(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("k=%d/n=1024", k), func(b *testing.B) {
			benchSync(b, 1024, core.NewAfekGafni(k), logIDs(1024), nil)
		})
	}
}

// BenchmarkEngineSyncBroadcast measures raw engine throughput with an
// n(n-1)-message broadcast (the engines' worst case per round).
func BenchmarkEngineSyncBroadcast(b *testing.B) {
	const n = 512
	benchSync(b, n, core.NewAfekGafni(1), logIDs(n), nil)
}

// BenchmarkAblationArrivalWiring quantifies the DESIGN.md ablation: the
// component game with and without adversarial arrival-port wiring (Lemma
// 3.3's both-endpoints control). Compare stalledrounds/op.
func BenchmarkAblationArrivalWiring(b *testing.B) {
	run := func(b *testing.B, opts ...lowerbound.GameOption) {
		var stalled float64
		for i := 0; i < b.N; i++ {
			res, err := lowerbound.ComponentGame(256, 3, core.NewTradeoff(4), uint64(i), opts...)
			if err != nil {
				b.Fatal(err)
			}
			stalled += float64(res.StalledRounds())
		}
		b.ReportMetric(stalled/float64(b.N), "stalledrounds/op")
	}
	b.Run("lowport", func(b *testing.B) { run(b) })
	b.Run("uniform", func(b *testing.B) { run(b, lowerbound.WithUniformArrivals()) })
}

// BenchmarkExplicitOverhead measures the +1 round / +n messages cost of the
// explicit-election wrapper (Section 2 / Section 3.5 transformation).
func BenchmarkExplicitOverhead(b *testing.B) {
	const n = 1024
	b.Run("implicit", func(b *testing.B) {
		benchSync(b, n, core.NewTradeoff(3), logIDs(n), nil)
	})
	b.Run("explicit", func(b *testing.B) {
		benchSync(b, n, core.NewExplicit(core.NewTradeoff(3)), logIDs(n), nil)
	})
}
