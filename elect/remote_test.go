package elect

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// gridRunner is a test RemoteRunner: it computes every cell locally through
// RunRange (recording that it was consulted), or fails with a canned error.
type gridRunner struct {
	err    error
	called bool
}

func (g *gridRunner) RunGrid(spec Spec, ns []int, seeds []uint64, b *Batch) ([]Result, error) {
	g.called = true
	if g.err != nil {
		return nil, g.err
	}
	local := *b
	local.Remote = nil
	local.Ns, local.Seeds = ns, seeds
	return RunRange(spec, local, 0, len(ns)*len(seeds))
}

// TestRunRangeMatchesRunMany: any contiguous range of the grid returns
// exactly the corresponding slice of RunMany's Runs, byte-for-byte on the
// wire codec.
func TestRunRangeMatchesRunMany(t *testing.T) {
	spec, err := Lookup("tradeoff")
	if err != nil {
		t.Fatal(err)
	}
	b := Batch{Ns: []int{32, 64, 128}, Seeds: Seeds(1, 4), Workers: 3}
	full, err := RunMany(spec, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, rng := range [][2]int{{0, 12}, {0, 1}, {11, 1}, {3, 5}, {4, 8}} {
		start, count := rng[0], rng[1]
		part, err := RunRange(spec, b, start, count)
		if err != nil {
			t.Fatalf("RunRange(%d, %d): %v", start, count, err)
		}
		if len(part) != count {
			t.Fatalf("RunRange(%d, %d) returned %d results", start, count, len(part))
		}
		for i, got := range part {
			wb, _ := EncodeResult(full.Runs[start+i])
			gb, _ := EncodeResult(got)
			if !bytes.Equal(wb, gb) {
				t.Fatalf("range [%d,%d) cell %d differs from RunMany", start, start+count, i)
			}
		}
	}
}

func TestRunRangeValidation(t *testing.T) {
	spec, err := Lookup("tradeoff")
	if err != nil {
		t.Fatal(err)
	}
	b := Batch{Ns: []int{32}, Seeds: Seeds(1, 4)}
	for _, rng := range [][2]int{{-1, 2}, {0, 0}, {0, 5}, {4, 1}, {3, 2}} {
		if _, err := RunRange(spec, b, rng[0], rng[1]); err == nil {
			t.Errorf("range [%d, %d) accepted", rng[0], rng[0]+rng[1])
		}
	}
	// Empty Ns/Seeds default like RunMany: a 1-cell grid.
	out, err := RunRange(spec, Batch{}, 0, 1)
	if err != nil || len(out) != 1 || out[0].N != 64 || out[0].Seed != 1 {
		t.Fatalf("defaulted range: %v err=%v", out, err)
	}
}

// TestRunManyRemotePath: a working RemoteRunner supplies the runs (and the
// BatchResult is byte-identical to local execution); ErrNoWorkers falls
// back to local; any other error aborts; a short result slice is rejected.
func TestRunManyRemotePath(t *testing.T) {
	spec, err := Lookup("tradeoff")
	if err != nil {
		t.Fatal(err)
	}
	base := Batch{Ns: []int{32, 64}, Seeds: Seeds(5, 3)}
	local, err := RunMany(spec, base)
	if err != nil {
		t.Fatal(err)
	}
	localBytes, _ := EncodeBatchResult(local)

	remote := base
	ok := &gridRunner{}
	remote.Remote = ok
	got, err := RunMany(spec, remote)
	if err != nil || !ok.called {
		t.Fatalf("remote path: err=%v called=%v", err, ok.called)
	}
	gotBytes, _ := EncodeBatchResult(got)
	if !bytes.Equal(localBytes, gotBytes) {
		t.Fatal("remote grid not byte-identical to local RunMany")
	}

	down := base
	down.Remote = &gridRunner{err: fmt.Errorf("probe: %w", ErrNoWorkers)}
	got, err = RunMany(spec, down)
	if err != nil {
		t.Fatalf("no-workers fallback: %v", err)
	}
	gotBytes, _ = EncodeBatchResult(got)
	if !bytes.Equal(localBytes, gotBytes) {
		t.Fatal("fallback grid not byte-identical to local RunMany")
	}

	broken := base
	bang := errors.New("fleet exploded")
	broken.Remote = &gridRunner{err: bang}
	if _, err := RunMany(spec, broken); !errors.Is(err, bang) {
		t.Fatalf("remote error not surfaced: %v", err)
	}

	short := base
	short.Remote = shortRunner{}
	if _, err := RunMany(spec, short); err == nil {
		t.Fatal("short remote result slice accepted")
	}
}

type shortRunner struct{}

func (shortRunner) RunGrid(Spec, []int, []uint64, *Batch) ([]Result, error) {
	return make([]Result, 1), nil
}
