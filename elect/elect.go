// Package elect is the public entry point of cliquelect: one API over every
// leader-election protocol of "Improved Tradeoffs for Leader Election"
// (Kutten, Robinson, Tan, Zhu; PODC 2023) and over all three execution
// engines in this repository.
//
// The package exposes a registry of protocol Specs with capability metadata
// (timing model, determinism, ID-space requirements, parameter validation),
// a single Run entry point configured with functional options, and a
// worker-pool batch runner RunMany for multi-seed / multi-size sweeps.
// Callers never touch the engine packages directly:
//
//	spec, _ := elect.Lookup("tradeoff")
//	res, err := elect.Run(spec, elect.WithN(1024), elect.WithParams(elect.Params{K: 4}))
//
//	batch, err := elect.RunMany(spec, elect.Batch{
//		Ns:    []int{256, 512, 1024},
//		Seeds: elect.Seeds(1, 16),
//	})
//
// Engines: EngineSync is the deterministic lock-step simulator (synchronous
// protocols), EngineAsync is the deterministic event-queue simulator
// (asynchronous protocols), and EngineLive runs asynchronous protocols on a
// goroutine-per-node concurrent runtime with real (nondeterministic)
// interleavings. Given the same Spec, options and seed, EngineSync and
// EngineAsync reproduce byte-identical results.
package elect

import (
	"fmt"
	"sort"
	"strings"

	"cliquelect/internal/core"
	"cliquelect/internal/simasync"
	"cliquelect/internal/simsync"
)

// Model distinguishes the two network timing models of the paper.
type Model int

// Models.
const (
	Sync Model = iota + 1
	Async
)

func (m Model) String() string {
	if m == Async {
		return "async"
	}
	return "sync"
}

// Engine selects the execution substrate for a run.
type Engine int

// Engines.
const (
	// EngineAuto picks the natural engine for the spec's model: EngineSync
	// for synchronous protocols, EngineAsync for asynchronous ones.
	EngineAuto Engine = iota
	// EngineSync is the deterministic lock-step round simulator.
	EngineSync
	// EngineAsync is the deterministic event-queue simulator with
	// adversarial message delays.
	EngineAsync
	// EngineLive runs asynchronous protocols on one goroutine per node with
	// genuine concurrent interleavings. It is intentionally nondeterministic
	// and does not measure time.
	EngineLive
)

func (e Engine) String() string {
	switch e {
	case EngineSync:
		return "sync"
	case EngineAsync:
		return "async"
	case EngineLive:
		return "live"
	}
	return "auto"
}

// Params carries every tunable any registered protocol accepts; fields not
// used by a protocol are ignored by it.
type Params struct {
	K   int     `json:"k"`   // tradeoff parameter (tradeoff, afekgafni, spreadelect, asynctradeoff)
	D   int     `json:"d"`   // smallid window parameter
	G   int     `json:"g"`   // smallid universe slack g(n)
	Eps float64 `json:"eps"` // advwake failure budget
}

// DefaultParams returns sensible defaults: K=3, D=2, G=1, Eps=1/16.
func DefaultParams() Params {
	return Params{K: 3, D: 2, G: 1, Eps: 1.0 / 16}
}

// Spec describes one registered protocol: its identity, the paper result it
// implements, and its capability metadata. Specs are obtained from Registry
// or Lookup; the zero Spec is invalid.
type Spec struct {
	Name        string
	Model       Model
	Paper       string // which paper result it implements
	Description string
	// SmallIDSpace marks protocols that require IDs from the linear-size
	// universe {1..n·g} (Theorem 3.15); all others use the Θ(n log n)
	// universe of Theorem 3.8.
	SmallIDSpace bool
	// Deterministic marks protocols with no coin flips: same IDs and port
	// mapping always elect the same leader.
	Deterministic bool
	// FaultTolerant marks protocols qualified for fault injection
	// (WithFaults): under crash/drop/duplicate faults the implementation
	// keeps terminating within the engine caps and fails gracefully — the
	// election-success rate degrades with the fault rate instead of the run
	// wedging or panicking. Informational: Run does not enforce it, but
	// cmd/faultsweep's "all" selector sweeps exactly these specs.
	FaultTolerant bool
	// Topologies lists the non-clique topology families (internal/topo
	// generator names: "ring", "torus", "rreg", "power", "edges") the
	// protocol is correct on. Every spec runs on the clique; nil means
	// clique-only — the paper's protocols assume the complete graph and
	// Run rejects WithTopology for them.
	Topologies []string

	buildSync  func(p Params) (simsync.Factory, error)
	buildAsync func(n int, p Params) (simasync.Factory, error)
}

// Engines returns the engines this spec can run on.
func (s Spec) Engines() []Engine {
	if s.Model == Sync {
		return []Engine{EngineSync}
	}
	return []Engine{EngineAsync, EngineLive}
}

// SupportsTopology reports whether the spec can run over the given topology
// family; "" (the clique) is supported by every spec.
func (s Spec) SupportsTopology(family string) bool {
	if family == "" {
		return true
	}
	for _, f := range s.Topologies {
		if f == family {
			return true
		}
	}
	return false
}

// Supports reports whether the spec can run on the given engine.
// EngineAuto is supported by every valid spec.
func (s Spec) Supports(e Engine) bool {
	if e == EngineAuto {
		return s.Model != 0
	}
	for _, have := range s.Engines() {
		if have == e {
			return true
		}
	}
	return false
}

// Validate checks the parameters against the spec without running anything.
func (s Spec) Validate(p Params) error {
	switch {
	case s.Model == Sync && s.buildSync != nil:
		_, err := s.buildSync(p)
		return err
	case s.Model == Async && s.buildAsync != nil:
		_, err := s.buildAsync(2, p)
		return err
	}
	return fmt.Errorf("elect: spec %q was not obtained from the registry (use Lookup or Registry)", s.Name)
}

// registry is ordered for stable listings.
var registry = []Spec{
	{
		Name: "tradeoff", FaultTolerant: true, Model: Sync, Paper: "Theorem 3.10", Deterministic: true,
		Description: "improved deterministic tradeoff: 2k-3 rounds, O(k·n^{1+1/(k-1)}) msgs",
		buildSync: func(p Params) (simsync.Factory, error) {
			if err := core.ValidateTradeoffK(p.K); err != nil {
				return nil, err
			}
			return core.NewTradeoff(p.K), nil
		},
	},
	{
		Name: "afekgafni", FaultTolerant: true, Model: Sync, Paper: "Afek-Gafni [1] baseline", Deterministic: true,
		Description: "classic deterministic tradeoff: 2k rounds, O(k·n^{1+1/k}) msgs",
		buildSync: func(p Params) (simsync.Factory, error) {
			if err := core.ValidateAfekGafniK(p.K); err != nil {
				return nil, err
			}
			return core.NewAfekGafni(p.K), nil
		},
	},
	{
		Name: "smallid", FaultTolerant: true, Model: Sync, Paper: "Theorem 3.15 / Algorithm 1", Deterministic: true,
		SmallIDSpace: true,
		Description:  "small-ID-universe scan: ceil(n/d) rounds, <= n·d·g msgs",
		buildSync: func(p Params) (simsync.Factory, error) {
			if err := core.ValidateSmallID(p.D, p.G); err != nil {
				return nil, err
			}
			return core.NewSmallID(p.D, p.G), nil
		},
	},
	{
		// Not FaultTolerant: its nodes busy-wait for referee verdicts that a
		// single dropped or duplicated message can void, so faulted runs wedge
		// until the engine's round cap instead of failing gracefully.
		Name: "lasvegas", Model: Sync, Paper: "Theorem 3.16",
		Description: "Las Vegas: 3 rounds and O(n) msgs w.h.p., never wrong",
		buildSync: func(Params) (simsync.Factory, error) {
			return core.NewLasVegas(), nil
		},
	},
	{
		Name: "sublinear", FaultTolerant: true, Model: Sync, Paper: "Kutten et al. [16] baseline",
		Description: "Monte Carlo: 2 rounds, O(sqrt(n)·log^{3/2} n) msgs, fails with o(1) prob.",
		buildSync: func(Params) (simsync.Factory, error) {
			return core.NewSublinear(), nil
		},
	},
	{
		Name: "advwake", FaultTolerant: true, Model: Sync, Paper: "Theorem 4.1",
		Description: "adversarial wake-up: 2 rounds, O(n^{3/2}·log(1/eps)) msgs",
		buildSync: func(p Params) (simsync.Factory, error) {
			if err := core.ValidateEps(p.Eps); err != nil {
				return nil, err
			}
			return core.NewAdvWake2Round(p.Eps), nil
		},
	},
	{
		Name: "spreadelect", FaultTolerant: true, Model: Sync, Paper: "substituted [14]-style baseline",
		Description: "adversarial wake-up: k+5 rounds, O(n^{1+1/k}+n) msgs",
		buildSync: func(p Params) (simsync.Factory, error) {
			if err := core.ValidateSpreadK(p.K); err != nil {
				return nil, err
			}
			return core.NewSpreadElect(p.K), nil
		},
	},
	{
		// Not FaultTolerant: a dropped Echo leaves its wave's convergecast
		// pending forever, so faulted runs wedge until the round cap.
		Name: "kuttenmoses", Model: Sync, Paper: "Kutten-Moses Jr.-Pandurangan-Peleg (arXiv 2008.02782) profile",
		Deterministic: true,
		Topologies:    []string{"ring", "torus", "rreg", "power", "edges"},
		Description:   "general-graph extinction election: O(D) rounds, O(m log n) expected msgs",
		buildSync: func(Params) (simsync.Factory, error) {
			return core.NewKuttenMoses(), nil
		},
	},
	{
		Name: "kpprt", FaultTolerant: true, Model: Sync, Paper: "KPPRT (arXiv 1210.4822) generalized",
		Topologies:  []string{"ring", "torus", "rreg", "power", "edges"},
		Description: "sampled-candidacy election: 2 rounds on the clique, 2D+2 rounds and O(m log log n) msgs on graphs, Monte Carlo",
		buildSync: func(Params) (simsync.Factory, error) {
			return core.NewKPPRT(), nil
		},
	},
	{
		Name: "asynctradeoff", FaultTolerant: true, Model: Async, Paper: "Theorem 5.1 / Algorithm 2",
		Description: "async tradeoff: k+8 time units, O(n^{1+1/k}) msgs",
		buildAsync: func(_ int, p Params) (simasync.Factory, error) {
			if err := core.ValidateAsyncK(p.K); err != nil {
				return nil, err
			}
			return core.NewAsyncTradeoff(p.K), nil
		},
	},
	{
		Name: "asyncafekgafni", FaultTolerant: true, Model: Async, Paper: "Theorem 5.14 / Section 5.4", Deterministic: true,
		Description: "asynchronized Afek-Gafni: O(log n) time, O(n log n) msgs, simultaneous wake-up",
		buildAsync: func(int, Params) (simasync.Factory, error) {
			return core.NewAsyncAfekGafni(), nil
		},
	},
	{
		Name: "asynclinear", FaultTolerant: true, Model: Async, Paper: "substituted [14]-style async baseline",
		Description: "near-linear msgs at k=Theta(log n/log log n): O(n log n) msgs, O(log n) time",
		buildAsync: func(n int, _ Params) (simasync.Factory, error) {
			return core.NewAsyncLinear(n), nil
		},
	},
}

// Registry returns the registered protocol specs in registry order.
func Registry() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	return out
}

// Names returns all registered protocol names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for _, s := range registry {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

// Lookup finds a protocol by name.
func Lookup(name string) (Spec, error) {
	for _, s := range registry {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("elect: unknown algorithm %q (have: %s)", name, strings.Join(Names(), ", "))
}

// ParseEngine resolves an engine name (as used by CLI flags): "auto", "sync",
// "async" or "live"; the empty string means EngineAuto. It is the inverse of
// Engine.String.
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "", "auto":
		return EngineAuto, nil
	case "sync":
		return EngineSync, nil
	case "async":
		return EngineAsync, nil
	case "live":
		return EngineLive, nil
	}
	return EngineAuto, fmt.Errorf("elect: unknown engine %q (auto, sync, async, live)", name)
}

// NearLinearK returns the k = Θ(log n / log log n) parameter at which the
// asynchronous tradeoff of Theorem 5.1 reaches its near-linear-message
// extreme — the parameter the "asynclinear" spec derives internally.
func NearLinearK(n int) int { return core.AsyncLinearK(n) }
