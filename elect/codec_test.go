package elect

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// TestCodecGoldenWire pins the v1 wire form byte for byte: field names,
// field order and enum spellings. If this test breaks, the change is a wire
// format break — cached results and electd clients see it too.
func TestCodecGoldenWire(t *testing.T) {
	r := Result{
		Algorithm: "tradeoff", Model: Sync, Engine: EngineSync,
		N: 2, Seed: 7, IDs: []int64{5, 9},
		Leader: 1, LeaderID: 9, Messages: 3, Words: 4, Rounds: 2,
		PerRound:  []int64{0, 3},
		Decisions: []Decision{NonLeader, Leader},
		AllAwake:  true, OK: true,
	}
	data, err := EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"algorithm":"tradeoff","model":"sync","engine":"sync","n":2,"seed":7,` +
		`"ids":[5,9],"leader":1,"leader_id":9,"messages":3,"words":4,"rounds":2,` +
		`"per_round":[0,3],"time_units":0,"decisions":["non-leader","leader"],` +
		`"all_awake":true,"truncated":false,"timed_out":false,"dropped":0,` +
		`"duplicated":0,"ok":true}`
	if string(data) != want {
		t.Errorf("wire form drifted:\n got %s\nwant %s", data, want)
	}
}

// TestCodecRoundTrip round-trips real results from both deterministic
// engines, including trace and fault fields.
func TestCodecRoundTrip(t *testing.T) {
	cases := []struct {
		algo string
		opts []Option
	}{
		{"tradeoff", []Option{WithN(32), WithSeed(3), WithTrace()}},
		{"tradeoff", []Option{WithN(32), WithSeed(3), WithFaults(FaultPlan{DropRate: 0.1, CrashRate: 0.1})}},
		{"asynctradeoff", []Option{WithN(32), WithSeed(3), WithParams(Params{K: 2}), WithDelays(DelayUniform)}},
	}
	for _, tc := range cases {
		spec, err := Lookup(tc.algo)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(spec, tc.opts...)
		if err != nil {
			t.Fatal(err)
		}
		data, err := EncodeResult(res)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeResult(data)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, back) {
			t.Errorf("%s: round trip diverged:\n in  %+v\n out %+v", tc.algo, res, back)
		}
		again, err := EncodeResult(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again) {
			t.Errorf("%s: encoding is not canonical:\n %s\n %s", tc.algo, data, again)
		}
	}
}

func TestCodecBatchRoundTrip(t *testing.T) {
	spec, err := Lookup("tradeoff")
	if err != nil {
		t.Fatal(err)
	}
	batch, err := RunMany(spec, Batch{Ns: []int{16, 32}, Seeds: Seeds(1, 3)})
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeBatchResult(batch)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBatchResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch, back) {
		t.Errorf("batch round trip diverged")
	}
}

func TestCodecEnumErrors(t *testing.T) {
	for _, bad := range []string{`{"model":"turbo"}`, `{"engine":"warp"}`, `{"decisions":["maybe"]}`} {
		if _, err := DecodeResult([]byte(bad)); err == nil {
			t.Errorf("decoded %s without error", bad)
		}
	}
	var r Result // invalid zero Model
	if _, err := json.Marshal(r); err == nil {
		t.Error("marshaled a zero (invalid) Model without error")
	}
}
