package elect

import (
	"fmt"
	"os"
	"testing"
)

// goldenFingerprints pins the exact hex fingerprints of representative clique
// configurations as they were computed before the topology subsystem landed
// (PR 5 tree). Clique runs must keep these keys forever: the on-disk result
// cache and the committed BENCH artifacts are addressed by them, and a drift
// here silently invalidates both. If this test fails, the fingerprint
// preimage changed for clique runs — that is a cache-format break and needs
// a fingerprintVersion bump plus a BENCH regeneration, not a golden update.
//
// Regenerate (only after a deliberate, documented break) with:
//
//	FP_GOLDEN_PRINT=1 go test ./elect -run TestFingerprintGolden -v
var goldenFingerprints = []struct {
	name string
	spec string
	opts []Option
	want string
}{
	{
		name: "tradeoff-defaults",
		spec: "tradeoff",
		want: "6d30d310c74a5a04c2d6a89a3ce01cf178db42cecab5dc5af47626b0e029bd7e",
	},
	{
		name: "tradeoff-n256-seed7-k4",
		spec: "tradeoff",
		opts: []Option{WithN(256), WithSeed(7), WithParams(Params{K: 4, D: 2, G: 1, Eps: 1.0 / 16})},
		want: "ddcda382b1081545c6f234812f86c358188cf94465017ea9757c32b4b260a541",
	},
	{
		name: "sublinear-n128-seed3",
		spec: "sublinear",
		opts: []Option{WithN(128), WithSeed(3)},
		want: "24da18290678a79e8a74a81654c3dfcb7cf153c8bc6cb2b9ccf4243790b5eec0",
	},
	{
		name: "asynctradeoff-uniform-delays",
		spec: "asynctradeoff",
		opts: []Option{WithN(64), WithSeed(5), WithDelays(DelayUniform)},
		want: "39b98c2a338b5f544a5ff64ecc63c697366d67e5815a7f0aa8a5889af52b9bbe",
	},
	{
		name: "smallid-explicit",
		spec: "smallid",
		opts: []Option{WithN(100), WithSeed(2), WithExplicit()},
		want: "38cc29acf04db64f59aa42572d68baf69e2e17694adf559d5cf32ef26209e31f",
	},
	{
		name: "tradeoff-faults-wake-budget-trace",
		spec: "tradeoff",
		opts: []Option{
			WithN(96), WithSeed(11), WithWake(8), WithMessageBudget(100000), WithTrace(),
			WithFaults(FaultPlan{CrashRate: 0.1, CrashWindow: 0.5, DropRate: 0.05, DupRate: 0.01}),
		},
		want: "6a1237f9e09f891826a291aee9fbf5b2857f8fa6a56b9ebc1c31042b971cb360",
	},
}

func TestFingerprintGolden(t *testing.T) {
	print := os.Getenv("FP_GOLDEN_PRINT") != ""
	for _, tc := range goldenFingerprints {
		spec, err := Lookup(tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got, err := Fingerprint(spec, tc.opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if print {
			fmt.Printf("golden %-36s %s\n", tc.name, got)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: clique fingerprint drifted from its pre-topology value\n got  %s\n want %s",
				tc.name, got, tc.want)
		}
	}
}
