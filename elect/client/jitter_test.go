package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cliquelect/internal/xrand"
)

func TestJitterDelayWithinWindow(t *testing.T) {
	rng := xrand.New(7)
	base := DefaultRetryBase
	lo := time.Duration(float64(base) * (1 - RetryJitter))
	hi := time.Duration(float64(base) * (1 + RetryJitter))
	distinct := map[time.Duration]bool{}
	for i := 0; i < 1000; i++ {
		d := jitterDelay(base, rng)
		if d < lo || d > hi {
			t.Fatalf("jittered delay %v outside [%v, %v]", d, lo, hi)
		}
		distinct[d] = true
	}
	if len(distinct) < 100 {
		t.Fatalf("jitter produced only %d distinct delays in 1000 draws", len(distinct))
	}
}

func TestJitterDelayNeverExceedsCap(t *testing.T) {
	rng := xrand.New(1)
	for i := 0; i < 1000; i++ {
		if d := jitterDelay(maxRetryBackoff, rng); d > maxRetryBackoff {
			t.Fatalf("jittered delay %v exceeds the %v cap", d, maxRetryBackoff)
		}
	}
}

func TestJitterSeedDeterministic(t *testing.T) {
	// The same seed replays the same delay sequence; different seeds differ.
	draw := func(seed uint64, k int) []time.Duration {
		rng := xrand.New(seed)
		out := make([]time.Duration, k)
		for i := range out {
			out[i] = jitterDelay(DefaultRetryBase, rng)
		}
		return out
	}
	a, b := draw(42, 16), draw(42, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := draw(43, 16)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical delay sequences")
	}
}

// TestRetrySleepsAreJittered drives the real retry loop against an
// always-503 daemon and checks the observed inter-attempt gaps stay inside
// the jittered exponential schedule.
func TestRetrySleepsAreJittered(t *testing.T) {
	var stamps []time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		stamps = append(stamps, time.Now())
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	base := 20 * time.Millisecond
	c := New(srv.URL, WithRetry(3, base), WithRetryJitterSeed(5))
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("expected the retries to exhaust")
	}
	if len(stamps) != 3 {
		t.Fatalf("daemon saw %d attempts, want 3", len(stamps))
	}
	for i, nominal := range []time.Duration{base, 2 * base} {
		gap := stamps[i+1].Sub(stamps[i])
		lo := time.Duration(float64(nominal) * (1 - RetryJitter))
		// Generous upper slack: scheduling delay only ever lengthens a gap.
		hi := time.Duration(float64(nominal)*(1+RetryJitter)) + 250*time.Millisecond
		if gap < lo || gap > hi {
			t.Fatalf("gap %d = %v outside jitter window [%v, %v]", i, gap, lo, hi)
		}
	}
}
