package client

import (
	"fmt"
	"time"

	"cliquelect/elect"
	"cliquelect/internal/obs"
)

// This file defines the electd wire schema: the JSON request and response
// bodies spoken on both sides of the daemon's HTTP API. The daemon
// (internal/service) imports these types rather than redeclaring them, so
// client and server cannot drift. Like the elect result codec, the schema
// is stable v1: field renames and retypes are wire breaks, additions are
// fine.

// ParamSpec is the wire form of elect.Params with explicit presence: nil
// fields keep their elect.DefaultParams value, set fields override it. That
// way {"params":{"k":4}} means "K=4, everything else default" instead of
// zeroing the untouched parameters.
type ParamSpec struct {
	K   *int     `json:"k,omitempty"`
	D   *int     `json:"d,omitempty"`
	G   *int     `json:"g,omitempty"`
	Eps *float64 `json:"eps,omitempty"`
}

// merge applies the set fields over base.
func (p *ParamSpec) merge(base elect.Params) elect.Params {
	if p == nil {
		return base
	}
	if p.K != nil {
		base.K = *p.K
	}
	if p.D != nil {
		base.D = *p.D
	}
	if p.G != nil {
		base.G = *p.G
	}
	if p.Eps != nil {
		base.Eps = *p.Eps
	}
	return base
}

// Options carries the run knobs shared by single runs and batches; the
// zero value is "all defaults". Fields correspond one-to-one to elect's
// functional options.
type Options struct {
	// Engine pins the execution engine: "auto" (default), "sync", "async"
	// or "live". Live runs are nondeterministic and always bypass the
	// result cache.
	Engine string `json:"engine,omitempty"`
	// Params overrides protocol parameters field by field (see ParamSpec).
	Params *ParamSpec `json:"params,omitempty"`
	// Delays names the async delay profile: "unit" (default), "uniform",
	// "skew".
	Delays string `json:"delays,omitempty"`
	// Wake samples an adversarial wake-up set of this size; WakeSet names
	// the woken nodes explicitly and overrides Wake.
	Wake    int   `json:"wake,omitempty"`
	WakeSet []int `json:"wake_set,omitempty"`
	// IDs supplies an explicit ID assignment (single runs; the length must
	// equal n).
	IDs []int64 `json:"ids,omitempty"`
	// Budget aborts runs beyond this many messages.
	Budget int64 `json:"budget,omitempty"`
	// Explicit wraps synchronous protocols in the explicit-election
	// transformation.
	Explicit bool `json:"explicit,omitempty"`
	// Trace attaches the communication-graph summary (sync engine only).
	Trace bool `json:"trace,omitempty"`
	// RoundTrace attaches the per-round telemetry timeline (simulators
	// only; see elect.WithRoundTrace).
	RoundTrace bool `json:"round_trace,omitempty"`
	// Faults is a fault plan in elect.ParseFaults syntax, e.g.
	// "drop=0.1,crash=0.05". Plans with "adaptive=N" are uncacheable and
	// bypass the result cache.
	Faults string `json:"faults,omitempty"`
	// Topo is a topology spec in elect.WithTopology syntax, e.g. "ring" or
	// "rreg:d=8"; empty means the default clique. Batches sweeping several
	// topologies use the request's Topos axis instead.
	Topo string `json:"topo,omitempty"`
	// NoCache bypasses the daemon's result cache for this request.
	NoCache bool `json:"no_cache,omitempty"`
}

// resolve converts the wire knobs into elect functional options.
func (o Options) resolve(model elect.Model) ([]elect.Option, error) {
	opts := []elect.Option{elect.WithParams(o.Params.merge(elect.DefaultParams()))}
	if o.Engine != "" {
		eng, err := elect.ParseEngine(o.Engine)
		if err != nil {
			return nil, err
		}
		opts = append(opts, elect.WithEngine(eng))
	}
	if o.Delays != "" {
		// WithDelays errors on the sync engine even for the default profile,
		// so only forward it when it means something.
		profile, err := elect.ParseDelays(o.Delays)
		if err != nil {
			return nil, err
		}
		if model != elect.Async {
			return nil, fmt.Errorf("delays apply to asynchronous specs only")
		}
		opts = append(opts, elect.WithDelays(profile))
	}
	if o.WakeSet != nil {
		opts = append(opts, elect.WithWakeSet(o.WakeSet))
	} else if o.Wake > 0 {
		opts = append(opts, elect.WithWake(o.Wake))
	}
	if o.IDs != nil {
		opts = append(opts, elect.WithIDs(o.IDs))
	}
	if o.Budget > 0 {
		opts = append(opts, elect.WithMessageBudget(o.Budget))
	}
	if o.Explicit {
		opts = append(opts, elect.WithExplicit())
	}
	if o.Trace {
		opts = append(opts, elect.WithTrace())
	}
	if o.RoundTrace {
		opts = append(opts, elect.WithRoundTrace())
	}
	if o.Faults != "" {
		plan, err := elect.ParseFaults(o.Faults)
		if err != nil {
			return nil, err
		}
		opts = append(opts, elect.WithFaults(plan))
	}
	if o.Topo != "" {
		opts = append(opts, elect.WithTopology(o.Topo))
	}
	return opts, nil
}

// RunRequest is the body of POST /v1/run: one election.
type RunRequest struct {
	// Spec names the protocol (see GET /v1/specs).
	Spec string `json:"spec"`
	// N is the clique size; 0 means 64.
	N int `json:"n,omitempty"`
	// Seed drives everything reproducible about the run.
	Seed uint64 `json:"seed,omitempty"`
	Options
	// Async makes the daemon return a queued job immediately (HTTP 202)
	// instead of waiting for the result; poll or stream GET /v1/jobs/{id}.
	Async bool `json:"async,omitempty"`
}

// Resolve looks up the spec and converts the request into elect options.
func (r RunRequest) Resolve() (elect.Spec, []elect.Option, error) {
	spec, err := elect.Lookup(r.Spec)
	if err != nil {
		return elect.Spec{}, nil, err
	}
	opts, err := r.Options.resolve(spec.Model)
	if err != nil {
		return elect.Spec{}, nil, err
	}
	if r.N > 0 {
		opts = append(opts, elect.WithN(r.N))
	}
	opts = append(opts, elect.WithSeed(r.Seed))
	return spec, opts, nil
}

// BatchRequest is the body of POST /v1/batch: a multi-size, multi-seed
// sweep of one spec.
type BatchRequest struct {
	Spec string `json:"spec"`
	// Ns lists the network sizes; empty means {64}.
	Ns []int `json:"ns,omitempty"`
	// Seeds lists the seeds per size. The SeedBase/SeedCount pair is the
	// compact alternative (seeds base..base+count-1); setting both it and
	// Seeds is an error. All empty means {1}.
	Seeds     []uint64 `json:"seeds,omitempty"`
	SeedBase  uint64   `json:"seed_base,omitempty"`
	SeedCount int      `json:"seed_count,omitempty"`
	// Topos lists topology specs swept as the outermost grid axis; empty
	// means the single default clique (or Options.Topo when set).
	Topos []string `json:"topos,omitempty"`
	// Workers bounds the per-job worker pool; 0 means GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// Fleet asks the daemon to shard this batch across its HA fleet
	// (internal/distrib over the -peers list) instead of computing it
	// locally. Only the current coordinator accepts fleet batches; any
	// other daemon answers 409 with the coordinator's URL and epoch so the
	// client can resubmit there.
	Fleet bool `json:"fleet,omitempty"`
	Options
	// Async, as in RunRequest.
	Async bool `json:"async,omitempty"`
}

// Resolve converts the request into a spec and an elect.Batch.
func (r BatchRequest) Resolve() (elect.Spec, elect.Batch, error) {
	spec, err := elect.Lookup(r.Spec)
	if err != nil {
		return elect.Spec{}, elect.Batch{}, err
	}
	opts, err := r.Options.resolve(spec.Model)
	if err != nil {
		return elect.Spec{}, elect.Batch{}, err
	}
	seeds := r.Seeds
	if r.SeedBase != 0 || r.SeedCount != 0 {
		if len(seeds) > 0 {
			return elect.Spec{}, elect.Batch{}, fmt.Errorf("set either seeds or seed_base/seed_count, not both")
		}
		if r.SeedCount <= 0 {
			return elect.Spec{}, elect.Batch{}, fmt.Errorf("seed_base without a positive seed_count")
		}
		seeds = elect.Seeds(r.SeedBase, r.SeedCount)
	}
	return spec, elect.Batch{
		Ns: r.Ns, Seeds: seeds, Topos: r.Topos, Options: opts, Workers: r.Workers,
	}, nil
}

// ChunkRequest is the body of POST /v1/chunk: a contiguous cell range of a
// batch grid, executed synchronously. It is the worker-side wire form of
// distributed dispatch (internal/distrib shards a grid into these): Ns,
// Seeds and Topos describe the FULL grid in canonical topo-major,
// size-major, seed-minor order, and Start/Count select the cells this
// worker computes — so every worker sees the same grid and cell indexing,
// whatever subset it is handed.
type ChunkRequest struct {
	Spec string `json:"spec"`
	// Ns and Seeds are the full grid axes; empty means {64} and {1} as in
	// BatchRequest (the scheduler normally sends both explicitly). Topos is
	// the outermost axis; empty means the single default clique.
	Ns    []int    `json:"ns,omitempty"`
	Seeds []uint64 `json:"seeds,omitempty"`
	Topos []string `json:"topos,omitempty"`
	// Start/Count select cells [start, start+count) of the grid.
	Start int `json:"start"`
	Count int `json:"count"`
	// Workers caps the chunk's local parallelism; 0 defers to the daemon's
	// batch-workers cap.
	Workers int `json:"workers,omitempty"`
	// Fence is the dispatching coordinator's fencing token (its election
	// epoch, see internal/control). A fleet-managed daemon rejects chunks
	// whose token predates its current epoch with 409 — the split-brain
	// guard against deposed coordinators. 0 means an unfenced dispatcher
	// (a plain sweep CLI fleet), always accepted. Also sent as the
	// FenceHeader request header.
	Fence uint64 `json:"fence,omitempty"`
	Options
}

// Resolve converts the request into a spec, a batch and the cell range.
func (r ChunkRequest) Resolve() (elect.Spec, elect.Batch, error) {
	spec, err := elect.Lookup(r.Spec)
	if err != nil {
		return elect.Spec{}, elect.Batch{}, err
	}
	opts, err := r.Options.resolve(spec.Model)
	if err != nil {
		return elect.Spec{}, elect.Batch{}, err
	}
	return spec, elect.Batch{
		Ns: r.Ns, Seeds: r.Seeds, Topos: r.Topos, Options: opts, Workers: r.Workers,
	}, nil
}

// ChunkResponse is the body answering POST /v1/chunk: one Result per cell
// of the requested range, in cell order, on the stable result codec.
type ChunkResponse struct {
	Results []elect.Result `json:"results"`
	// Spans carries the worker-side spans of a traced chunk (the serving
	// root, queue wait and execution) so the coordinator can merge every
	// worker's view into one fleet trace. A trailing, omitted-when-empty
	// addition — not a wire break.
	Spans []obs.Span `json:"spans,omitempty"`
}

// JobStatus is the wire view of one job (see GET /v1/jobs/{id} and the SSE
// progress events).
type JobStatus struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"` // "run" or "batch"
	Spec  string `json:"spec"`
	State string `json:"state"` // queued, running, done, failed, canceled
	Error string `json:"error,omitempty"`
	// Done/Total are the progress counters: runs completed vs. runs in the
	// job (1/1 for single runs).
	Done  int `json:"done"`
	Total int `json:"total"`
	// CacheHit reports that a single run was served from the result cache.
	CacheHit bool      `json:"cache_hit,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
}

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool {
	return s.State == "done" || s.State == "failed" || s.State == "canceled"
}

// RunResponse is the body answering POST /v1/run and GET /v1/jobs/{id} for
// run jobs: the job view plus, once done, the result.
type RunResponse struct {
	Job      JobStatus     `json:"job"`
	Result   *elect.Result `json:"result,omitempty"`
	CacheHit bool          `json:"cache_hit"`
}

// BatchResponse is the batch counterpart of RunResponse.
type BatchResponse struct {
	Job    JobStatus          `json:"job"`
	Result *elect.BatchResult `json:"result,omitempty"`
}

// JobResponse is the body of GET /v1/jobs/{id}: the job plus whichever
// result shape it produced (when terminal).
type JobResponse struct {
	Job      JobStatus          `json:"job"`
	Result   *elect.Result      `json:"result,omitempty"`
	Batch    *elect.BatchResult `json:"batch,omitempty"`
	CacheHit bool               `json:"cache_hit"`
}

// JobsResponse is the body of GET /v1/jobs.
type JobsResponse struct {
	Jobs []JobStatus `json:"jobs"`
}

// SpecInfo describes one registered protocol (GET /v1/specs).
type SpecInfo struct {
	Name          string   `json:"name"`
	Model         string   `json:"model"`
	Paper         string   `json:"paper"`
	Description   string   `json:"description"`
	Engines       []string `json:"engines"`
	SmallIDSpace  bool     `json:"small_id_space"`
	Deterministic bool     `json:"deterministic"`
	FaultTolerant bool     `json:"fault_tolerant"`
	// Topologies lists the non-clique topology families the spec supports
	// (elect.Spec.Topologies); empty means clique-only.
	Topologies []string `json:"topologies,omitempty"`
}

// SpecsResponse is the body of GET /v1/specs.
type SpecsResponse struct {
	Specs []SpecInfo `json:"specs"`
}

// CacheStats mirrors the daemon cache counters in /healthz.
type CacheStats struct {
	Hits       int64 `json:"hits"`
	DiskHits   int64 `json:"disk_hits"`
	Misses     int64 `json:"misses"`
	Puts       int64 `json:"puts"`
	DiskErrors int64 `json:"disk_errors"`
	Evictions  int64 `json:"evictions"`
	Entries    int   `json:"entries"`
}

// Health is the body of GET /healthz. Beyond liveness it carries the load
// gauges a fleet scheduler (internal/distrib) balances on: how much work is
// waiting, how much is executing, and how parallel each job may run.
type Health struct {
	OK bool `json:"ok"`
	// Version is the daemon's service version (service.Version).
	Version       string         `json:"version,omitempty"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Jobs          map[string]int `json:"jobs"`
	// QueueDepth is the number of jobs (runs, batches, chunks) accepted but
	// not yet executing.
	QueueDepth int `json:"queue_depth"`
	// ActiveJobs is the number of jobs currently executing.
	ActiveJobs int `json:"active_jobs"`
	// BatchWorkers is the daemon's effective per-job sweep parallelism — the
	// -batch-workers cap, or GOMAXPROCS when uncapped — i.e. this worker's
	// per-chunk capacity.
	BatchWorkers int         `json:"batch_workers"`
	Cache        *CacheStats `json:"cache,omitempty"`
	// Role and Epoch surface the control plane (internal/control) on
	// fleet-managed daemons: "coordinator" or "worker", and the highest
	// election epoch the daemon has seen. Both empty/zero on standalone
	// daemons, so probes and the fleet footer can tell who is leading.
	Role  string `json:"role,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// TraceSummary is one entry of GET /v1/traces: a recent trace summarized
// by its root span (the earliest span whose parent the daemon doesn't hold)
// and its overall time window in microseconds.
type TraceSummary struct {
	ID      string `json:"id"`
	Root    string `json:"root"`
	Service string `json:"service"`
	Spans   int    `json:"spans"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}

// TracesResponse is the body of GET /v1/traces, newest trace first.
type TracesResponse struct {
	Traces []TraceSummary `json:"traces"`
}

// TraceResponse is the body of GET /v1/traces/{id}: every span the daemon
// holds for one trace, in insertion order.
type TraceResponse struct {
	ID    string     `json:"id"`
	Spans []obs.Span `json:"spans"`
}

// ErrorResponse is the body of every non-2xx API answer. Fencing
// rejections (409 on /v1/chunk and /v1/batch) additionally carry the
// daemon's current epoch and believed coordinator, so a deposed dispatcher
// can resynchronize instead of guessing.
type ErrorResponse struct {
	Error       string `json:"error"`
	Epoch       uint64 `json:"epoch,omitempty"`
	Coordinator string `json:"coordinator,omitempty"`
}

// LeaseRequest is the body of POST /v1/lease: a coordinator candidate (or
// incumbent) asking this daemon to grant — or renew — the lease for one
// election epoch. Grants are at-most-once per epoch per daemon; an equal
// epoch from the recorded holder is a renewal. See internal/control.
type LeaseRequest struct {
	// Epoch is the epoch being campaigned for (fresh grants need
	// Epoch > the grantor's current epoch) or renewed (Epoch equal, Holder
	// matching).
	Epoch uint64 `json:"epoch"`
	// Holder is the candidate's own URL as listed in the fleet's peer set.
	Holder string `json:"holder"`
}

// LeaseResponse answers POST /v1/lease: the verdict plus the grantor's
// current epoch and believed holder (on rejection these tell the
// campaigner which election it lost to).
type LeaseResponse struct {
	Granted bool   `json:"granted"`
	Epoch   uint64 `json:"epoch"`
	Holder  string `json:"holder,omitempty"`
}

// CoordinatorResponse is the body of GET /v1/coordinator: who this daemon
// believes leads the fleet, and its own role in it.
type CoordinatorResponse struct {
	// Self is this daemon's URL in the peer set; Role its current role
	// ("coordinator" or "worker").
	Self string `json:"self"`
	Role string `json:"role"`
	// Epoch is the highest election epoch this daemon has seen;
	// Coordinator the lease holder's URL while a lease is live (empty when
	// unknown or expired).
	Epoch       uint64 `json:"epoch"`
	Coordinator string `json:"coordinator,omitempty"`
}

// EventsResponse is the body of GET /v1/events: the daemon's recent journal
// entries, oldest first. ?since=SEQ returns only events newer than that
// sequence number (for tailing) and ?limit=N keeps only the newest N.
type EventsResponse struct {
	// Node is the daemon's instance name, stamped on its events.
	Node   string      `json:"node,omitempty"`
	Events []obs.Event `json:"events"`
}

// RouteStats is one route's request/latency digest inside a NodeStatus —
// what electtop's route table renders.
type RouteStats struct {
	Route    string `json:"route"`
	Requests int64  `json:"requests"`
	// Errors counts 5xx answers on this route.
	Errors int64 `json:"errors"`
	// P50Ms and P99Ms are latency quantiles in milliseconds, interpolated
	// from the daemon's request histogram.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// NodeStatus is one daemon's slice of GET /v1/fleetz: control-plane
// position, load, cache efficiency, SLO verdict, per-route latency and its
// most recent journal events. Unreachable peers appear with Reachable
// false and only URL/Err set — a fleet snapshot never omits a configured
// node.
type NodeStatus struct {
	URL       string `json:"url"`
	Reachable bool   `json:"reachable"`
	Err       string `json:"err,omitempty"`

	Role        string `json:"role,omitempty"`
	Epoch       uint64 `json:"epoch,omitempty"`
	Coordinator string `json:"coordinator,omitempty"`

	UptimeSeconds float64 `json:"uptime_seconds,omitempty"`
	QueueDepth    int     `json:"queue_depth"`
	ActiveJobs    int     `json:"active_jobs"`
	// CacheHitRatio is hits/(hits+misses) over the daemon's lifetime, -1
	// when the daemon runs without a cache.
	CacheHitRatio float64 `json:"cache_hit_ratio"`

	Goroutines int   `json:"goroutines,omitempty"`
	HeapBytes  int64 `json:"heap_bytes,omitempty"`
	// RSSBytes is the process resident set size (0 where unavailable).
	RSSBytes int64 `json:"rss_bytes,omitempty"`

	// SLO is the node's burn-rate verdict (nil on daemons predating it).
	SLO *obs.SLOStatus `json:"slo,omitempty"`
	// Routes is the per-route digest, busiest first.
	Routes []RouteStats `json:"routes,omitempty"`
	// Events is the node's recent journal tail, oldest first.
	Events []obs.Event `json:"events,omitempty"`
}

// FleetzResponse is the body of GET /v1/fleetz: the answering daemon's
// merged view of the whole fleet — every configured peer probed
// concurrently, plus fleet-level consensus and health roll-ups. On a
// standalone daemon it carries exactly one node.
type FleetzResponse struct {
	// Self is the answering daemon's URL (its instance name when it has no
	// peer set); TSUS the snapshot time in unix microseconds.
	Self string `json:"self"`
	TSUS int64  `json:"ts_us"`

	// Coordinator and Epoch are the answering daemon's view of the lease;
	// Coordinators counts nodes claiming the coordinator role (1 is
	// healthy; 0 means an election is due; >1 should be impossible);
	// EpochAgreement reports whether every reachable node sees the same
	// epoch.
	Coordinator    string `json:"coordinator,omitempty"`
	Epoch          uint64 `json:"epoch,omitempty"`
	Coordinators   int    `json:"coordinators"`
	EpochAgreement bool   `json:"epoch_agreement"`

	// Health is the fleet verdict: the worst node verdict, with
	// unreachable nodes counting as worst of all.
	Health string `json:"health"`

	// Nodes lists every configured daemon, sorted by URL; Events is the
	// fleet-wide journal merge, timestamp-ordered, newest window only.
	Nodes  []NodeStatus `json:"nodes"`
	Events []obs.Event  `json:"events,omitempty"`
}
