// Package client is the Go client for electd, the election-as-a-service
// daemon (cmd/electd), and the home of the daemon's wire schema (wire.go),
// which the server side imports too.
//
//	c := client.New("http://localhost:8090")
//	resp, err := c.Run(ctx, client.RunRequest{Spec: "tradeoff", N: 1024, Seed: 7})
//	fmt.Println(resp.Result.LeaderID, resp.CacheHit)
//
// Asynchronous jobs stream progress over SSE:
//
//	st, _ := c.SubmitBatch(ctx, client.BatchRequest{Spec: "tradeoff", Ns: []int{256, 512}, SeedCount: 32})
//	final, err := c.Stream(ctx, st.ID, func(s client.JobStatus) { fmt.Println(s.Done, "/", s.Total) })
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"cliquelect/internal/obs"
	"cliquelect/internal/xrand"
)

// Client talks to one electd base URL. The zero value is not usable;
// construct with New. Clients are safe for concurrent use.
type Client struct {
	base string
	http *http.Client

	// retry policy for transient failures (see WithRetry).
	retryAttempts int
	retryBase     time.Duration
	jitterSeed    uint64
	jitterCalls   atomic.Uint64

	// spans receives client-side request and attempt spans (see
	// WithSpanCollector); nil drops them, but a traced context still
	// propagates its traceparent to the daemon.
	spans *obs.SpanCollector

	// lifetime retry telemetry (see Stats).
	attempts     atomic.Int64
	retries      atomic.Int64
	backoffNanos atomic.Int64
}

// ClientStats is a client's lifetime retry telemetry: how many HTTP tries
// it made, how many of them were retries of a transient failure, and the
// total backoff it slept between tries. The distrib fleet aggregates every
// worker's stats into its sweep summary.
type ClientStats struct {
	Attempts int64
	Retries  int64
	Backoff  time.Duration
}

// Stats returns a point-in-time snapshot of the client's retry telemetry.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Attempts: c.attempts.Load(),
		Retries:  c.retries.Load(),
		Backoff:  time.Duration(c.backoffNanos.Load()),
	}
}

// Retry defaults: every request is tried up to 3 times, backing off
// exponentially from 100ms and never sleeping longer than 2s between tries.
// Each sleep is jittered by ±20% (RetryJitter) so a fleet of clients
// retrying against the same restarted daemon spreads out instead of
// hammering it in lockstep.
const (
	DefaultRetryAttempts = 3
	DefaultRetryBase     = 100 * time.Millisecond
	maxRetryBackoff      = 2 * time.Second
	// RetryJitter is the relative half-width of the backoff jitter window:
	// every sleep is scaled by a seeded uniform factor in [1-RetryJitter,
	// 1+RetryJitter].
	RetryJitter = 0.20
)

// ClientOption configures New.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(h *http.Client) ClientOption { return func(c *Client) { c.http = h } }

// WithRetry overrides the transient-failure retry policy: attempts is the
// total number of tries (1 disables retrying), base the first backoff
// delay. Only connection-level errors and 502/503/504 answers are retried —
// all electd requests are safe to repeat (runs are deterministic and
// content-addressed) — so a fleet client rides out worker restarts instead
// of failing the first sweep chunk it dispatches.
func WithRetry(attempts int, base time.Duration) ClientOption {
	return func(c *Client) {
		if attempts >= 1 {
			c.retryAttempts = attempts
		}
		if base > 0 {
			c.retryBase = base
		}
	}
}

// WithSpanCollector directs the client's request and per-attempt spans into
// col (typically shared with the process's other components, e.g. the
// distrib fleet coordinator). Independent of the collector, a request whose
// context carries an obs.SpanContext always sends a W3C traceparent header
// so the daemon joins the caller's trace; with a collector but no inbound
// context, each request roots a fresh trace.
func WithSpanCollector(col *obs.SpanCollector) ClientOption {
	return func(c *Client) { c.spans = col }
}

// WithRetryJitterSeed pins the seed of the backoff jitter stream, making
// retry delays reproducible (tests; debugging a fleet schedule). Clients
// default to a seed derived from the base URL, so distinct workers jitter
// differently but a given client is deterministic.
func WithRetryJitterSeed(seed uint64) ClientOption {
	return func(c *Client) { c.jitterSeed = seed }
}

// New builds a client for the daemon at base, e.g. "http://localhost:8090".
func New(base string, opts ...ClientOption) *Client {
	c := &Client{
		base:          strings.TrimRight(base, "/"),
		http:          &http.Client{},
		retryAttempts: DefaultRetryAttempts,
		retryBase:     DefaultRetryBase,
	}
	// FNV-1a over the base URL: a stable per-worker jitter seed, so two
	// clients of the same daemon sleep alike across runs but clients of
	// different workers decorrelate.
	seed := uint64(14695981039346656037)
	for i := 0; i < len(c.base); i++ {
		seed = (seed ^ uint64(c.base[i])) * 1099511628211
	}
	c.jitterSeed = seed
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx daemon answer. Fencing rejections (409) carry the
// daemon's current Epoch and believed Coordinator from the error body.
type APIError struct {
	StatusCode  int
	Message     string
	Epoch       uint64
	Coordinator string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("electd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// FenceHeader is the request header carrying a dispatched chunk's fencing
// token (the coordinator's election epoch), mirroring ChunkRequest.Fence.
const FenceHeader = "X-Elect-Epoch"

// Run executes one election synchronously and returns its result. The
// request's Async field is forced off; use Submit for fire-and-poll.
func (c *Client) Run(ctx context.Context, req RunRequest) (*RunResponse, error) {
	req.Async = false
	var out RunResponse
	if err := c.do(ctx, http.MethodPost, "/v1/run", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Submit enqueues one election and returns the queued job immediately.
func (c *Client) Submit(ctx context.Context, req RunRequest) (*JobStatus, error) {
	req.Async = true
	var out RunResponse
	if err := c.do(ctx, http.MethodPost, "/v1/run", req, &out); err != nil {
		return nil, err
	}
	return &out.Job, nil
}

// Batch executes a sweep synchronously and returns its aggregate result.
func (c *Client) Batch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	req.Async = false
	var out BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitBatch enqueues a sweep and returns the queued job immediately.
func (c *Client) SubmitBatch(ctx context.Context, req BatchRequest) (*JobStatus, error) {
	req.Async = true
	var out BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/batch", req, &out); err != nil {
		return nil, err
	}
	return &out.Job, nil
}

// Chunk executes a contiguous cell range of a batch grid synchronously and
// returns the per-cell results. This is the worker-side call of distributed
// dispatch (internal/distrib); the request names the full grid so every
// worker computes cells under identical indexing.
func (c *Client) Chunk(ctx context.Context, req ChunkRequest) (*ChunkResponse, error) {
	var hdr map[string]string
	if req.Fence > 0 {
		// The fencing token rides both the body and the header, so proxies
		// and request logs can see it without parsing JSON.
		hdr = map[string]string{FenceHeader: strconv.FormatUint(req.Fence, 10)}
	}
	var out ChunkResponse
	if err := c.doHdr(ctx, http.MethodPost, "/v1/chunk", hdr, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Lease delivers a control-plane lease request (grant or renewal) to the
// daemon. A non-granted verdict is a 200 with Granted false, not an error;
// see internal/control for the protocol.
func (c *Client) Lease(ctx context.Context, req LeaseRequest) (*LeaseResponse, error) {
	var out LeaseResponse
	if err := c.do(ctx, http.MethodPost, "/v1/lease", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Coordinator reports who the daemon believes leads its fleet (404 on
// daemons running without a control plane).
func (c *Client) Coordinator(ctx context.Context) (*CoordinatorResponse, error) {
	var out CoordinatorResponse
	if err := c.do(ctx, http.MethodGet, "/v1/coordinator", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job fetches one job, including its result once terminal.
func (c *Client) Job(ctx context.Context, id string) (*JobResponse, error) {
	var out JobResponse
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Jobs lists every job the daemon knows.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out JobsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
}

// Specs lists the registered protocols.
func (c *Client) Specs(ctx context.Context) ([]SpecInfo, error) {
	var out SpecsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/specs", nil, &out); err != nil {
		return nil, err
	}
	return out.Specs, nil
}

// Traces lists the daemon's recent request traces, newest first.
func (c *Client) Traces(ctx context.Context) ([]TraceSummary, error) {
	var out TracesResponse
	if err := c.do(ctx, http.MethodGet, "/v1/traces", nil, &out); err != nil {
		return nil, err
	}
	return out.Traces, nil
}

// Trace fetches every span the daemon holds for one trace id.
func (c *Client) Trace(ctx context.Context, id string) (*TraceResponse, error) {
	var out TraceResponse
	if err := c.do(ctx, http.MethodGet, "/v1/traces/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Events fetches the daemon's journal: events with sequence > since,
// oldest first, at most limit of the newest (0 means the server default).
func (c *Client) Events(ctx context.Context, since uint64, limit int) (*EventsResponse, error) {
	path := "/v1/events"
	q := url.Values{}
	if since > 0 {
		q.Set("since", strconv.FormatUint(since, 10))
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out EventsResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Fleetz fetches the daemon's merged fleet snapshot (every configured peer
// probed and rolled up) — what electtop renders.
func (c *Client) Fleetz(ctx context.Context) (*FleetzResponse, error) {
	var out FleetzResponse
	if err := c.do(ctx, http.MethodGet, "/v1/fleetz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// FleetzSelf fetches only the daemon's own NodeStatus (?self=1) — the
// probe daemons send each other while building a merged snapshot, kept
// recursion-free by construction.
func (c *Client) FleetzSelf(ctx context.Context) (*NodeStatus, error) {
	var out FleetzResponse
	if err := c.do(ctx, http.MethodGet, "/v1/fleetz?self=1", nil, &out); err != nil {
		return nil, err
	}
	if len(out.Nodes) != 1 {
		return nil, fmt.Errorf("client: fleetz?self=1 returned %d nodes, want 1", len(out.Nodes))
	}
	return &out.Nodes[0], nil
}

// Health fetches the daemon's health and counters.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var out Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Wait polls a job until it is terminal (or ctx expires) and returns the
// final JobResponse. poll <= 0 means 100ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*JobResponse, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		resp, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if resp.Job.Terminal() {
			return resp, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Stream consumes the job's SSE progress feed, invoking fn (if non-nil) for
// every status event, and returns the final JobResponse once the job is
// terminal. It needs no polling: the daemon pushes each progress change.
func (c *Client) Stream(ctx context.Context, id string, fn func(JobStatus)) (*JobResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data:") {
			continue // event: lines, comments, keep-alives, blank separators
		}
		var st JobStatus
		if err := json.Unmarshal([]byte(strings.TrimSpace(line[len("data:"):])), &st); err != nil {
			return nil, fmt.Errorf("electd: bad SSE payload: %w", err)
		}
		if fn != nil {
			fn(st)
		}
		if st.Terminal() {
			return c.Job(ctx, id)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("electd: SSE stream ended before job %s finished", id)
}

// do performs one JSON round trip, retrying transient failures —
// connection-level errors and 502/503/504 answers (a restarting or
// momentarily saturated daemon) — with capped, ±20%-jittered exponential
// backoff. Definite answers (2xx, 4xx, 422, …) are never retried, and a
// canceled context aborts the loop immediately.
//
// When the context carries an obs.SpanContext (or a collector is attached),
// the whole call becomes a client.request span, every try a client.attempt
// child tagged with its attempt number and preceding backoff, and each try's
// traceparent header carries that attempt's context — so a retried request
// shows up server-side as sibling subtrees of one attempt each.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.doHdr(ctx, method, path, nil, in, out)
}

// doHdr is do with extra request headers (the fencing token on /v1/chunk).
func (c *Client) doHdr(ctx context.Context, method, path string, hdr map[string]string, in, out any) error {
	var data []byte
	if in != nil {
		var err error
		if data, err = json.Marshal(in); err != nil {
			return err
		}
	}
	parent := obs.SpanFromContext(ctx)
	traced := parent.Valid() || c.spans != nil
	var reqSC obs.SpanContext
	tries := 0
	if traced {
		if parent.Valid() {
			reqSC = parent.Child()
		} else {
			reqSC = obs.NewSpanContext()
		}
		began := time.Now()
		defer func() {
			c.spans.Add(obs.Span{
				Trace: reqSC.Trace, ID: reqSC.Span, Parent: parent.Span,
				Name: "client.request", Service: "client",
				Start: began.UnixMicro(), Dur: time.Since(began).Microseconds(),
				Attrs: map[string]string{
					"method": method, "path": path, "attempts": strconv.Itoa(tries),
				},
			})
		}()
	}
	var lastErr error
	var jitter *xrand.RNG
	backoff := c.retryBase
	for attempt := 0; attempt < c.retryAttempts; attempt++ {
		var slept time.Duration
		if attempt > 0 {
			if jitter == nil {
				// One jitter stream per request that actually retries, advanced
				// by a client-wide counter so concurrent requests decorrelate.
				jitter = xrand.New(c.jitterSeed + c.jitterCalls.Add(1))
			}
			slept = jitterDelay(backoff, jitter)
			c.retries.Add(1)
			c.backoffNanos.Add(int64(slept))
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(slept):
			}
			backoff = min(2*backoff, maxRetryBackoff)
		}
		c.attempts.Add(1)
		tries++
		var body io.Reader
		if in != nil {
			body = bytes.NewReader(data)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
		if err != nil {
			return err
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		var attemptSC obs.SpanContext
		var tryBegan time.Time
		if traced {
			attemptSC = reqSC.Child()
			tryBegan = time.Now()
			req.Header.Set("traceparent", attemptSC.Traceparent())
		}
		resp, err := c.http.Do(req)
		if err != nil {
			c.attemptSpan(attemptSC, reqSC, tryBegan, attempt, slept, "error")
			if ctx.Err() != nil {
				return err
			}
			lastErr = err // connection refused/reset, DNS, ...: retryable
			continue
		}
		c.attemptSpan(attemptSC, reqSC, tryBegan, attempt, slept, strconv.Itoa(resp.StatusCode))
		if TransientStatus(resp.StatusCode) {
			lastErr = decodeError(resp)
			resp.Body.Close()
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			return decodeError(resp)
		}
		if out == nil {
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("electd: decoding %s %s response: %w", method, path, err)
		}
		return nil
	}
	return lastErr
}

// attemptSpan records one HTTP try as a child of the request span; a no-op
// for untraced requests (zero attempt context).
func (c *Client) attemptSpan(sc, parent obs.SpanContext, began time.Time, attempt int, backoff time.Duration, outcome string) {
	if !sc.Valid() {
		return
	}
	attrs := map[string]string{
		"attempt": strconv.Itoa(attempt + 1), "outcome": outcome,
	}
	if backoff > 0 {
		attrs["backoff"] = backoff.String()
	}
	c.spans.Add(obs.Span{
		Trace: sc.Trace, ID: sc.Span, Parent: parent.Span,
		Name: "client.attempt", Service: "client",
		Start: began.UnixMicro(), Dur: time.Since(began).Microseconds(),
		Attrs: attrs,
	})
}

// jitterDelay scales one backoff sleep by a uniform factor in
// [1-RetryJitter, 1+RetryJitter], capped at maxRetryBackoff: lockstep
// clients spread out while every delay stays within 20% of the nominal
// schedule (and under the cap), so retry budgets remain predictable.
func jitterDelay(backoff time.Duration, rng *xrand.RNG) time.Duration {
	factor := 1 - RetryJitter + 2*RetryJitter*rng.Float64()
	return min(time.Duration(float64(backoff)*factor), maxRetryBackoff)
}

// TransientStatus reports daemon answers worth repeating against the same
// or another worker: gateway failures and explicit back-pressure (electd's
// full queue is a 503 + Retry-After). It is the single authority on
// transience — the client's retry loop and the distrib fleet's
// abort-vs-failover decision both consult it, so the two cannot drift.
func TransientStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout
}

func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64*1024))
	var e ErrorResponse
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return &APIError{
			StatusCode: resp.StatusCode, Message: e.Error,
			Epoch: e.Epoch, Coordinator: e.Coordinator,
		}
	}
	return &APIError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(data))}
}
