package client

import (
	"encoding/json"
	"testing"

	"cliquelect/elect"
)

func intp(v int) *int           { return &v }
func floatp(v float64) *float64 { return &v }

// TestParamSpecMergesOverDefaults: fields absent from the wire keep their
// DefaultParams value instead of zeroing out.
func TestParamSpecMergesOverDefaults(t *testing.T) {
	var req RunRequest
	if err := json.Unmarshal([]byte(`{"spec":"smallid","params":{"d":4}}`), &req); err != nil {
		t.Fatal(err)
	}
	merged := req.Params.merge(elect.DefaultParams())
	def := elect.DefaultParams()
	if merged.D != 4 || merged.K != def.K || merged.G != def.G || merged.Eps != def.Eps {
		t.Fatalf("merged %+v (defaults %+v)", merged, def)
	}
	full := (&ParamSpec{K: intp(5), D: intp(6), G: intp(7), Eps: floatp(0.5)}).merge(def)
	if full != (elect.Params{K: 5, D: 6, G: 7, Eps: 0.5}) {
		t.Fatalf("full merge %+v", full)
	}
}

// TestRunRequestResolveMatchesDirectOptions: a wire request resolves to the
// same fingerprint as hand-built options, so daemon-side cache keys agree
// with library-side ones.
func TestRunRequestResolveMatchesDirectOptions(t *testing.T) {
	req := RunRequest{
		Spec: "tradeoff", N: 128, Seed: 9,
		Options: Options{Params: &ParamSpec{K: intp(4)}, Wake: 3},
	}
	spec, opts, err := req.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	wireKey, err := elect.Fingerprint(spec, opts...)
	if err != nil {
		t.Fatal(err)
	}
	p := elect.DefaultParams()
	p.K = 4
	directKey, err := elect.Fingerprint(spec,
		elect.WithN(128), elect.WithSeed(9), elect.WithParams(p), elect.WithWake(3))
	if err != nil {
		t.Fatal(err)
	}
	if wireKey != directKey {
		t.Fatalf("wire and direct fingerprints differ: %s vs %s", wireKey, directKey)
	}
}

func TestResolveErrors(t *testing.T) {
	bad := []RunRequest{
		{Spec: "bogus"},
		{Spec: "tradeoff", Options: Options{Engine: "warp"}},
		{Spec: "tradeoff", Options: Options{Delays: "unit"}}, // sync spec
		{Spec: "asynctradeoff", Options: Options{Delays: "bogus"}},
		{Spec: "tradeoff", Options: Options{Faults: "bogus=1"}},
	}
	for _, req := range bad {
		if _, _, err := req.Resolve(); err == nil {
			t.Errorf("request %+v resolved", req)
		}
	}
	if _, _, err := (BatchRequest{Spec: "tradeoff", Seeds: []uint64{1}, SeedBase: 2, SeedCount: 3}).Resolve(); err == nil {
		t.Error("conflicting seed fields resolved")
	}
	if _, _, err := (BatchRequest{Spec: "tradeoff", Seeds: []uint64{1}, SeedBase: 2}).Resolve(); err == nil {
		t.Error("seeds + seed_base resolved")
	}
	// seed_base alone would silently run the default seed; it must error.
	if _, _, err := (BatchRequest{Spec: "tradeoff", SeedBase: 5}).Resolve(); err == nil {
		t.Error("seed_base without seed_count resolved")
	}
}

// TestBatchRequestResolve covers the seed expansion and option passthrough.
func TestBatchRequestResolve(t *testing.T) {
	spec, batch, err := (BatchRequest{
		Spec: "asynctradeoff", Ns: []int{32, 64}, SeedBase: 5, SeedCount: 3,
		Workers: 2,
		Options: Options{Params: &ParamSpec{K: intp(2)}, Delays: "skew", Faults: "drop=0.05"},
	}).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "asynctradeoff" || len(batch.Seeds) != 3 || batch.Seeds[0] != 5 || batch.Workers != 2 {
		t.Fatalf("batch %+v", batch)
	}
	// The resolved batch must actually run.
	out, err := elect.RunMany(spec, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Runs) != 6 {
		t.Fatalf("got %d runs", len(out.Runs))
	}
	if out.Runs[0].Dropped == 0 && out.Runs[1].Dropped == 0 && out.Runs[2].Dropped == 0 {
		t.Error("fault plan did not reach the runs")
	}
}
