package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cliquelect/internal/obs"
)

// TestRetriesBecomeAttemptSpans pins the client side of the tracing
// contract: a request that retries twice records ONE client.request span
// and three sibling client.attempt children — numbered, tagged with their
// outcome and preceding backoff — and each try carries its own traceparent
// header (same trace, distinct span ids), so the server-side subtrees of a
// retried request stay distinguishable.
func TestRetriesBecomeAttemptSpans(t *testing.T) {
	var (
		mu      sync.Mutex
		parents []string
	)
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		parents = append(parents, r.Header.Get("traceparent"))
		calls++
		n := calls
		mu.Unlock()
		if n <= 2 {
			http.Error(w, `{"error":"transient"}`, http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(Health{OK: true})
	}))
	t.Cleanup(ts.Close)

	col := obs.NewSpanCollector(0)
	c := New(ts.URL, WithRetry(3, time.Millisecond), WithSpanCollector(col))
	if h, err := c.Health(context.Background()); err != nil || !h.OK {
		t.Fatalf("health after retries: %+v err=%v", h, err)
	}

	spans := col.Spans()
	var reqSpan obs.Span
	var attempts []obs.Span
	for _, sp := range spans {
		switch sp.Name {
		case "client.request":
			reqSpan = sp
		case "client.attempt":
			attempts = append(attempts, sp)
		default:
			t.Errorf("unexpected span %q", sp.Name)
		}
	}
	if reqSpan.Name == "" {
		t.Fatalf("no client.request span in %d spans", len(spans))
	}
	if got := reqSpan.Attrs["attempts"]; got != "3" {
		t.Fatalf("request attempts attr = %q, want 3", got)
	}
	if len(attempts) != 3 {
		t.Fatalf("%d attempt spans, want 3", len(attempts))
	}
	wantOutcome := map[string]string{"1": "503", "2": "503", "3": "200"}
	for _, sp := range attempts {
		if sp.Parent != reqSpan.ID {
			t.Errorf("attempt %s parent %s, want request span %s", sp.Attrs["attempt"], sp.Parent, reqSpan.ID)
		}
		n := sp.Attrs["attempt"]
		if sp.Attrs["outcome"] != wantOutcome[n] {
			t.Errorf("attempt %s outcome %q, want %q", n, sp.Attrs["outcome"], wantOutcome[n])
		}
		// The first try slept for nothing; every retry names its backoff.
		if _, slept := sp.Attrs["backoff"]; slept == (n == "1") {
			t.Errorf("attempt %s backoff attr presence wrong: %v", n, sp.Attrs)
		}
	}

	// Each try announced itself under its own span id on the shared trace.
	mu.Lock()
	defer mu.Unlock()
	seen := map[obs.SpanID]bool{}
	for i, tp := range parents {
		sc, ok := obs.ParseTraceparent(tp)
		if !ok {
			t.Fatalf("try %d sent unparsable traceparent %q", i+1, tp)
		}
		if sc.Trace != reqSpan.Trace {
			t.Errorf("try %d on trace %s, want %s", i+1, sc.Trace, reqSpan.Trace)
		}
		if seen[sc.Span] {
			t.Errorf("try %d reused span id %s", i+1, sc.Span)
		}
		seen[sc.Span] = true
	}
}

// TestUntracedClientSendsNoTraceparent pins the disabled path: without a
// collector or a context span, the wire carries no tracing headers at all.
func TestUntracedClientSendsNoTraceparent(t *testing.T) {
	var header string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		header = r.Header.Get("traceparent")
		json.NewEncoder(w).Encode(Health{OK: true})
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL)
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if header != "" {
		t.Fatalf("untraced client sent traceparent %q", header)
	}
}
