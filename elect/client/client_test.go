package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyServer answers the first fail requests with the given status, then
// serves a healthy /healthz body, counting every request it sees.
func flakyServer(t *testing.T, fail int, status int) (*Client, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(fail) {
			http.Error(w, `{"error":"transient"}`, status)
			return
		}
		json.NewEncoder(w).Encode(Health{OK: true})
	}))
	t.Cleanup(ts.Close)
	return New(ts.URL, WithRetry(3, time.Millisecond)), &calls
}

// TestRetryTransient5xx: 502/503/504 answers are retried with backoff until
// the daemon recovers, invisible to the caller.
func TestRetryTransient5xx(t *testing.T) {
	for _, status := range []int{http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout} {
		c, calls := flakyServer(t, 2, status)
		h, err := c.Health(context.Background())
		if err != nil || !h.OK {
			t.Fatalf("status %d: health after retries: %+v err=%v", status, h, err)
		}
		if got := calls.Load(); got != 3 {
			t.Fatalf("status %d: %d requests, want 3", status, got)
		}
	}
}

// TestRetryExhausted: a daemon that never recovers surfaces the last 503 —
// after exactly the configured number of tries.
func TestRetryExhausted(t *testing.T) {
	c, calls := flakyServer(t, 1000, http.StatusServiceUnavailable)
	_, err := c.Health(context.Background())
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("got %v, want APIError 503", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d requests, want 3", got)
	}
}

// TestNoRetryOnDefiniteAnswer: 4xx is a definite answer, never repeated.
func TestNoRetryOnDefiniteAnswer(t *testing.T) {
	c, calls := flakyServer(t, 1000, http.StatusBadRequest)
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("400 not surfaced")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d requests, want 1 (4xx must not be retried)", got)
	}
}

// TestRetryConnectionError: a dead listener (worker restarting) is retried;
// WithRetry(1, …) disables retrying entirely.
func TestRetryConnectionError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // nothing listens: every dial fails
	c := New(ts.URL, WithRetry(2, time.Millisecond))
	start := time.Now()
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("dead listener answered")
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("no backoff between connection retries")
	}

	single, calls := flakyServer(t, 1000, http.StatusServiceUnavailable)
	WithRetry(1, time.Millisecond)(single)
	if _, err := single.Health(context.Background()); err == nil {
		t.Fatal("503 not surfaced")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d requests, want 1 (retries disabled)", got)
	}
}

// TestRetryHonorsContext: a canceled context stops the backoff loop.
func TestRetryHonorsContext(t *testing.T) {
	c, _ := flakyServer(t, 1000, http.StatusServiceUnavailable)
	WithRetry(100, 50*time.Millisecond)(c)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Health(ctx); err == nil {
		t.Fatal("canceled request succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry loop ignored context for %v", elapsed)
	}
}
