package elect

import (
	"fmt"
	"strings"

	"cliquelect/internal/core"
	"cliquelect/internal/ids"
	"cliquelect/internal/livenet"
	"cliquelect/internal/obs"
	"cliquelect/internal/proto"
	"cliquelect/internal/simasync"
	"cliquelect/internal/simsync"
	"cliquelect/internal/topo"
	"cliquelect/internal/trace"
	"cliquelect/internal/xrand"
)

// Decision is a node's irrevocable leader-election output.
type Decision uint8

// Decisions.
const (
	Undecided Decision = iota
	Leader
	NonLeader
)

func (d Decision) String() string {
	switch d {
	case Leader:
		return "leader"
	case NonLeader:
		return "non-leader"
	}
	return "undecided"
}

// TraceSummary condenses the communication graph (Definition 3.1) of a
// traced run: the quantities the paper's lower-bound machinery reasons
// about.
type TraceSummary struct {
	// Edges is the number of distinct directed (sender, receiver) pairs.
	Edges int `json:"edges"`
	// MaxComponent is the size of the largest weakly connected component.
	MaxComponent int `json:"max_component"`
	// Components is the number of weakly connected components.
	Components int `json:"components"`
	// PortOpens is the total number of first-use port events (Lemma 3.13's
	// census quantity).
	PortOpens int `json:"port_opens"`
}

// RoundStat is one entry of a WithRoundTrace timeline: one synchronous
// round, or one unit-time window of the asynchronous simulator (window w
// covers event times [w, w+1) from the first wake-up). Quantities follow
// the Result conventions: Messages/Words count protocol sends (drops
// included, duplicates not), Deliveries counts delivered copies
// (duplicates included, drops not).
type RoundStat struct {
	// Round is the round number (sync; from 1) or window index (async;
	// from 0).
	Round int `json:"round"`
	// Messages and Words are this round's share of Result.Messages/Words.
	Messages int64 `json:"messages"`
	Words    int64 `json:"words"`
	// Deliveries counts message copies delivered this round.
	Deliveries int64 `json:"deliveries"`
	// Active is the number of distinct nodes that sent this round; Woke and
	// Decided count wake-ups and decision finalizations.
	Active  int `json:"active"`
	Woke    int `json:"woke"`
	Decided int `json:"decided"`
	// Kinds counts this round's sends by payload kind (keyed by the kind
	// byte rendered in decimal).
	Kinds map[uint8]int64 `json:"kinds,omitempty"`
}

// Result is the unified outcome of one Run, regardless of engine. Fields
// that a given engine does not measure stay zero: Rounds and PerRound are
// sync-only, TimeUnits is async-simulator-only, and the live engine reports
// neither time nor Words.
//
// The json tags define the stable v1 wire form used by EncodeResult, the
// result cache and the electd daemon; enums (Model, Engine, Decision)
// serialize as their string names. Renaming or retyping a tagged field is a
// wire-format break — add new fields instead.
type Result struct {
	Algorithm string `json:"algorithm"`
	Model     Model  `json:"model"`
	Engine    Engine `json:"engine"`
	N         int    `json:"n"`
	Seed      uint64 `json:"seed"`
	// IDs is the ID assignment the run used (node i had ID IDs[i]).
	IDs []int64 `json:"ids"`
	// Leader is the elected node index, or -1 if the run did not elect a
	// unique leader.
	Leader   int   `json:"leader"`
	LeaderID int64 `json:"leader_id"`
	// Messages is the paper's message complexity: total messages sent.
	Messages int64 `json:"messages"`
	// Words is the CONGEST payload volume in O(log n)-bit words (not
	// measured by the live engine).
	Words int64 `json:"words"`
	// Rounds is the synchronous time complexity (sync engine only).
	Rounds int `json:"rounds"`
	// PerRound[r] is the number of messages sent in round r (sync engine
	// only; index 0 unused).
	PerRound []int64 `json:"per_round,omitempty"`
	// TimeUnits is the asynchronous time complexity (async engine only).
	TimeUnits float64 `json:"time_units"`
	// Decisions holds each node's final output.
	Decisions []Decision `json:"decisions"`
	// AllAwake reports whether every node was activated during the run.
	AllAwake bool `json:"all_awake"`
	// Truncated reports that the run hit its message budget (or, on the live
	// engine, the message cap) before quiescence.
	Truncated bool `json:"truncated"`
	// TimedOut reports that the run hit the engine's runaway cap (rounds or
	// events) before quiescence.
	TimedOut bool `json:"timed_out"`
	// Crashed lists (sorted) the nodes that crash-stopped during the run
	// (WithFaults only).
	Crashed []int `json:"crashed,omitempty"`
	// Dropped counts messages the fault injector lost; Duplicated counts the
	// extra copies it delivered. Dropped messages are included in Messages
	// (they were sent); duplicates are not (the protocol sent one).
	Dropped    int64 `json:"dropped"`
	Duplicated int64 `json:"duplicated"`
	// OK reports a valid implicit election: exactly one leader, every awake
	// node decided, no truncation. Under WithFaults the guarantee is
	// restricted to surviving nodes — crashed nodes' outputs are void and
	// they owe no decision, so a run whose unique leader crashed is not OK.
	OK bool `json:"ok"`
	// Trace is the communication-graph summary when WithTrace was set.
	Trace *TraceSummary `json:"trace,omitempty"`
	// Topo is the canonical topology spec of a WithTopology run; empty for
	// the default clique (all three topology fields are omitted then, so
	// clique wire encodings are unchanged).
	Topo string `json:"topo,omitempty"`
	// Diameter is the topology's diameter estimate (double-sweep BFS).
	Diameter int `json:"diameter,omitempty"`
	// GraphEdges is the topology's undirected edge count m.
	GraphEdges int64 `json:"graph_edges,omitempty"`
	// RoundTrace is the per-round timeline when WithRoundTrace was set
	// (trailing omitempty field: untraced wire encodings are unchanged).
	RoundTrace []RoundStat `json:"round_trace,omitempty"`
}

// String renders a human-readable one-line-per-field summary.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "algorithm : %s (%s model, %s engine)\n", r.Algorithm, r.Model, r.Engine)
	fmt.Fprintf(&b, "nodes     : %d\n", r.N)
	if r.Topo != "" {
		fmt.Fprintf(&b, "topology  : %s (diameter %d, %d edges)\n", r.Topo, r.Diameter, r.GraphEdges)
	}
	if r.Leader >= 0 {
		fmt.Fprintf(&b, "leader    : node %d (ID %d)\n", r.Leader, r.LeaderID)
	} else {
		fmt.Fprintf(&b, "leader    : NONE (failed run)\n")
	}
	fmt.Fprintf(&b, "messages  : %d\n", r.Messages)
	switch r.Engine {
	case EngineSync:
		fmt.Fprintf(&b, "rounds    : %d\n", r.Rounds)
	case EngineAsync:
		fmt.Fprintf(&b, "time      : %.2f units\n", r.TimeUnits)
	}
	if len(r.Crashed) > 0 || r.Dropped > 0 || r.Duplicated > 0 {
		fmt.Fprintf(&b, "faults    : %d crashed %v, %d dropped, %d duplicated\n",
			len(r.Crashed), r.Crashed, r.Dropped, r.Duplicated)
	}
	fmt.Fprintf(&b, "all awake : %v\n", r.AllAwake)
	fmt.Fprintf(&b, "valid     : %v\n", r.OK)
	return b.String()
}

// Run executes one protocol under the given options and returns the unified
// result. Configuration errors (bad parameters, unsupported engine/option
// combinations) return a non-nil error; a run that merely fails to elect a
// unique leader returns OK=false.
func Run(spec Spec, opts ...Option) (Result, error) {
	cfg := defaultRunConfig()
	for _, o := range opts {
		o(&cfg)
	}

	res := Result{
		Algorithm: spec.Name, Model: spec.Model, N: cfg.n, Seed: cfg.seed, Leader: -1,
	}
	if cfg.n < 1 {
		return res, fmt.Errorf("elect: n = %d", cfg.n)
	}
	switch {
	case spec.Model == Sync && spec.buildSync != nil:
	case spec.Model == Async && spec.buildAsync != nil:
	default:
		return res, fmt.Errorf("elect: spec %q was not obtained from the registry (use Lookup or Registry)", spec.Name)
	}
	engine := cfg.resolveEngine(spec)
	res.Engine = engine
	if !spec.Supports(engine) {
		return res, fmt.Errorf("elect: %s runs on the %s model, not on the %s engine",
			spec.Name, spec.Model, engine)
	}
	if cfg.trace && engine != EngineSync {
		return res, fmt.Errorf("elect: WithTrace requires the sync engine (got %s)", engine)
	}
	if cfg.roundTrace && engine == EngineLive {
		return res, fmt.Errorf("elect: WithRoundTrace requires a deterministic simulator (got %s engine)", engine)
	}
	if cfg.delaysSet && engine == EngineSync {
		return res, fmt.Errorf("elect: WithDelays has no effect on the sync engine")
	}
	if cfg.explicit && spec.Model != Sync {
		return res, fmt.Errorf("elect: WithExplicit requires a synchronous spec (got %s)", spec.Name)
	}
	if !cfg.faults.IsZero() && engine == EngineLive {
		return res, fmt.Errorf("elect: WithFaults requires a deterministic simulator (got %s engine)", engine)
	}
	topoCanon, err := topo.Canonical(cfg.topo)
	if err != nil {
		return res, err
	}
	cfg.topo = topoCanon
	if topoCanon != "" {
		if engine == EngineLive {
			return res, fmt.Errorf("elect: WithTopology requires a deterministic simulator (got %s engine)", engine)
		}
		family, _ := topo.Family(topoCanon)
		if !spec.SupportsTopology(family) {
			return res, fmt.Errorf("elect: %s runs on the clique only (topologies: %s)",
				spec.Name, strings.Join(append([]string{"clique"}, spec.Topologies...), ", "))
		}
		res.Topo = topoCanon
	}

	rng := xrand.New(cfg.seed)
	assign, err := makeIDs(spec, cfg, rng)
	if err != nil {
		return res, err
	}
	res.IDs = append([]int64(nil), assign...)

	switch engine {
	case EngineSync:
		err = runSync(spec, cfg, assign, rng, &res)
	case EngineAsync:
		err = runAsync(spec, cfg, assign, rng, &res)
	case EngineLive:
		err = runLive(spec, cfg, assign, rng, &res)
	}
	if err != nil {
		return res, err
	}
	if res.Leader >= 0 {
		res.LeaderID = assign[res.Leader]
	}
	return res, nil
}

// makeIDs builds (or validates) the ID assignment the spec expects.
func makeIDs(spec Spec, cfg runConfig, rng *xrand.RNG) (ids.Assignment, error) {
	universe := ids.LogUniverse(cfg.n)
	if spec.SmallIDSpace {
		universe = ids.LinearUniverse(cfg.n, cfg.params.G)
	}
	if cfg.ids != nil {
		assign := make(ids.Assignment, len(cfg.ids))
		for i, id := range cfg.ids {
			assign[i] = id
		}
		if len(assign) != cfg.n {
			return nil, fmt.Errorf("elect: %d IDs for %d nodes", len(assign), cfg.n)
		}
		if err := assign.Validate(universe); err != nil {
			return nil, err
		}
		return assign, nil
	}
	return ids.Random(universe, cfg.n, rng), nil
}

// buildTopo constructs the run's explicit topology (nil for the clique) and
// records its shape on the result. Seeded generators draw their graph seed
// from rng — after the wake set, before the engine seed — so clique runs
// consume no extra randomness and stay byte-identical to pre-topology runs.
func buildTopo(cfg runConfig, rng *xrand.RNG, res *Result) (topo.Topology, error) {
	if cfg.topo == "" {
		return nil, nil
	}
	graph, err := topo.Build(cfg.topo, cfg.n, rng.Uint64())
	if err != nil {
		return nil, err
	}
	res.Diameter = graph.Diameter()
	res.GraphEdges = graph.M()
	return graph, nil
}

// wakeNodes resolves the adversarial wake set, or nil for simultaneous
// wake-up. It consumes rng only when sampling is needed.
func wakeNodes(cfg runConfig, rng *xrand.RNG) ([]int, error) {
	if cfg.wakeSet != nil {
		if len(cfg.wakeSet) == 0 {
			return nil, fmt.Errorf("elect: empty wake set")
		}
		for _, u := range cfg.wakeSet {
			if u < 0 || u >= cfg.n {
				return nil, fmt.Errorf("elect: wake set names invalid node %d", u)
			}
		}
		return cfg.wakeSet, nil
	}
	if cfg.wakeCount > 0 {
		return rng.Sample(cfg.n, min(cfg.wakeCount, cfg.n)), nil
	}
	return nil, nil
}

func runSync(spec Spec, cfg runConfig, assign ids.Assignment, rng *xrand.RNG, res *Result) error {
	factory, err := spec.buildSync(cfg.params)
	if err != nil {
		return err
	}
	if cfg.explicit {
		factory = core.NewExplicit(factory)
	}
	wset, err := wakeNodes(cfg, rng)
	if err != nil {
		return err
	}
	var wake simsync.WakePolicy = simsync.Simultaneous{}
	if wset != nil {
		wake = simsync.AdversarialSet{Nodes: wset}
	}
	var rec *trace.Recorder
	if cfg.trace {
		rec = trace.NewRecorder(cfg.n)
	}
	inj, err := cfg.injector()
	if err != nil {
		return err
	}
	graph, err := buildTopo(cfg, rng, res)
	if err != nil {
		return err
	}
	var rt *obs.RoundTrace
	if cfg.roundTrace {
		rt = obs.NewRoundTrace(cfg.n, 1)
	}
	out, err := simsync.Run(simsync.Config{
		N: cfg.n, IDs: assign, Seed: rng.Uint64(), Wake: wake, Topo: graph,
		MaxMessages: cfg.budget, Trace: rec, Faults: inj, Rounds: rt,
	}, factory)
	if err != nil {
		return err
	}
	res.Messages = out.Messages
	res.Words = out.Words
	res.Rounds = out.Rounds
	res.PerRound = out.PerRound
	res.Decisions = decisions(out.Decisions)
	res.AllAwake = out.AllAwake()
	res.Truncated = out.Truncated
	res.TimedOut = out.TimedOut
	res.Crashed = out.Crashed
	res.Dropped = out.Dropped
	res.Duplicated = out.Duplicated
	res.Leader = out.UniqueLeader()
	res.OK = out.Validate() == nil
	if rec != nil {
		res.Trace = &TraceSummary{
			Edges:        rec.TotalEdges(),
			MaxComponent: rec.MaxComponent(),
			Components:   rec.NumComponents(),
			PortOpens:    rec.TotalPortOpens(),
		}
	}
	res.RoundTrace = roundStats(rt)
	return nil
}

func runAsync(spec Spec, cfg runConfig, assign ids.Assignment, rng *xrand.RNG, res *Result) error {
	factory, err := spec.buildAsync(cfg.n, cfg.params)
	if err != nil {
		return err
	}
	policy, err := delayPolicy(cfg.delays)
	if err != nil {
		return err
	}
	wset, err := wakeNodes(cfg, rng)
	if err != nil {
		return err
	}
	wake := simasync.AllAtZero(cfg.n)
	if wset != nil {
		wake = simasync.SubsetAtZero(wset)
	}
	inj, err := cfg.injector()
	if err != nil {
		return err
	}
	graph, err := buildTopo(cfg, rng, res)
	if err != nil {
		return err
	}
	var rt *obs.RoundTrace
	if cfg.roundTrace {
		rt = obs.NewRoundTrace(cfg.n, 0)
	}
	out, err := simasync.Run(simasync.Config{
		N: cfg.n, IDs: assign, Seed: rng.Uint64(), Delays: policy, Wake: wake, Topo: graph,
		MaxMessages: cfg.budget, Faults: inj, Rounds: rt,
	}, factory)
	if err != nil {
		return err
	}
	res.Messages = out.Messages
	res.Words = out.Words
	res.TimeUnits = out.TimeUnits
	res.Decisions = decisions(out.Decisions)
	res.AllAwake = out.AllAwake()
	res.Truncated = out.Truncated
	res.TimedOut = out.TimedOut
	res.Crashed = out.Crashed
	res.Dropped = out.Dropped
	res.Duplicated = out.Duplicated
	res.Leader = out.UniqueLeader()
	res.OK = out.Validate() == nil
	res.RoundTrace = roundStats(rt)
	return nil
}

// roundStats converts a probe's timeline to the wire-tagged Result form.
func roundStats(rt *obs.RoundTrace) []RoundStat {
	if rt == nil {
		return nil
	}
	stats := rt.Stats()
	out := make([]RoundStat, len(stats))
	for i, s := range stats {
		out[i] = RoundStat{
			Round: s.Round, Messages: s.Messages, Words: s.Words,
			Deliveries: s.Deliveries, Active: s.Active, Woke: s.Woke,
			Decided: s.Decided, Kinds: s.Kinds,
		}
	}
	return out
}

func runLive(spec Spec, cfg runConfig, assign ids.Assignment, rng *xrand.RNG, res *Result) error {
	factory, err := spec.buildAsync(cfg.n, cfg.params)
	if err != nil {
		return err
	}
	wset, err := wakeNodes(cfg, rng)
	if err != nil {
		return err
	}
	if wset == nil {
		wset = make([]int, cfg.n)
		for i := range wset {
			wset[i] = i
		}
	}
	out, err := livenet.Run(livenet.Config{
		N: cfg.n, IDs: assign, Seed: rng.Uint64(), Wake: wset,
		MaxMessages: cfg.budget,
	}, factory)
	if err != nil {
		return err
	}
	res.Messages = out.Messages
	res.Decisions = decisions(out.Decisions)
	res.AllAwake = allTrue(out.Awake)
	res.Truncated = out.Truncated
	res.Leader = uniqueLeader(out.Decisions)
	res.OK = out.Validate() == nil
	return nil
}

func decisions(in []proto.Decision) []Decision {
	out := make([]Decision, len(in))
	for i, d := range in {
		out[i] = Decision(d)
	}
	return out
}

func uniqueLeader(in []proto.Decision) int {
	leader := -1
	for u, d := range in {
		if d == proto.Leader {
			if leader >= 0 {
				return -1
			}
			leader = u
		}
	}
	return leader
}

func allTrue(bs []bool) bool {
	for _, b := range bs {
		if !b {
			return false
		}
	}
	return true
}
