package elect

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// memCache is a minimal Cache for tests, with hit/miss accounting.
type memCache struct {
	mu     sync.Mutex
	m      map[string][]byte
	hits   int
	misses int
}

func newMemCache() *memCache { return &memCache{m: map[string][]byte{}} }

func (c *memCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

func (c *memCache) Put(key string, value []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = append([]byte(nil), value...)
}

func mustSpec(t *testing.T, name string) Spec {
	t.Helper()
	spec, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestFingerprintStableAcrossOptionOrder(t *testing.T) {
	spec := mustSpec(t, "tradeoff")
	a, err := Fingerprint(spec, WithN(128), WithSeed(9), WithParams(Params{K: 4}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fingerprint(spec, WithParams(Params{K: 4}), WithSeed(9), WithN(128))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("option order changed the key: %s vs %s", a, b)
	}
	if len(a) != 64 || strings.Trim(a, "0123456789abcdef") != "" {
		t.Errorf("key %q is not hex SHA-256", a)
	}
}

// TestFingerprintNeverCollides drives the satellite requirement directly:
// differing fault plans, params, seeds — or any other run-affecting knob —
// never share a key.
func TestFingerprintNeverCollides(t *testing.T) {
	tradeoff := mustSpec(t, "tradeoff")
	async := mustSpec(t, "asynctradeoff")
	variants := []struct {
		name string
		spec Spec
		opts []Option
	}{
		{"base", tradeoff, nil},
		{"other-spec", mustSpec(t, "afekgafni"), nil},
		{"n", tradeoff, []Option{WithN(65)}},
		{"seed", tradeoff, []Option{WithSeed(2)}},
		{"params-k", tradeoff, []Option{WithParams(Params{K: 4, D: 2, G: 1, Eps: 1.0 / 16})}},
		{"params-eps", tradeoff, []Option{WithParams(Params{K: 3, D: 2, G: 1, Eps: 0.25})}},
		{"faults-drop", tradeoff, []Option{WithFaults(FaultPlan{DropRate: 0.1})}},
		{"faults-drop2", tradeoff, []Option{WithFaults(FaultPlan{DropRate: 0.2})}},
		{"faults-crash", tradeoff, []Option{WithFaults(FaultPlan{CrashRate: 0.1})}},
		{"faults-window", tradeoff, []Option{WithFaults(FaultPlan{CrashRate: 0.1, CrashWindow: 4})}},
		{"faults-dropfirst", tradeoff, []Option{WithFaults(FaultPlan{DropFirst: 3})}},
		{"faults-dup", tradeoff, []Option{WithFaults(FaultPlan{DupRate: 0.1})}},
		{"faults-explicit-crash", tradeoff, []Option{WithFaults(FaultPlan{Crashes: []Crash{{Node: 1, At: 2}}})}},
		{"budget", tradeoff, []Option{WithMessageBudget(1 << 20)}},
		{"explicit", tradeoff, []Option{WithExplicit()}},
		{"trace", tradeoff, []Option{WithTrace()}},
		{"wake", tradeoff, []Option{WithWake(3)}},
		{"wakeset", tradeoff, []Option{WithWakeSet([]int{0, 1, 2})}},
		{"ids", tradeoff, []Option{WithN(2), WithIDs([]int64{5, 9})}},
		{"async-base", async, nil},
		{"async-delays", async, []Option{WithDelays(DelayUniform)}},
	}
	seen := map[string]string{}
	for _, v := range variants {
		key, err := Fingerprint(v.spec, v.opts...)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("variants %s and %s collide on %s", prev, v.name, key)
		}
		seen[key] = v.name
	}
}

func TestFingerprintUncacheable(t *testing.T) {
	async := mustSpec(t, "asynctradeoff")
	if _, err := Fingerprint(async, WithParams(Params{K: 2}), WithEngine(EngineLive)); err == nil {
		t.Error("live engine got a fingerprint")
	}
	tradeoff := mustSpec(t, "tradeoff")
	if _, err := Fingerprint(tradeoff, WithFaults(FaultPlan{NewAdversary: CrashLowestSender(1)})); err == nil {
		t.Error("adaptive adversary got a fingerprint")
	}
	if _, err := Fingerprint(Spec{Name: "handmade"}); err == nil {
		t.Error("non-registry spec got a fingerprint")
	}
}

func TestRunCachedHitIsByteIdentical(t *testing.T) {
	cache := newMemCache()
	spec := mustSpec(t, "tradeoff")
	opts := []Option{WithN(64), WithSeed(11), WithParams(Params{K: 4})}

	cold, hit, err := RunCached(cache, spec, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("cold run reported a cache hit")
	}
	warm, hit, err := RunCached(cache, spec, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("warm run missed the cache")
	}
	coldBytes, _ := EncodeResult(cold)
	warmBytes, _ := EncodeResult(warm)
	if !bytes.Equal(coldBytes, warmBytes) {
		t.Errorf("cached replay not byte-identical:\n %s\n %s", coldBytes, warmBytes)
	}

	// The live engine bypasses the cache entirely.
	async := mustSpec(t, "asynctradeoff")
	liveOpts := []Option{WithN(16), WithSeed(1), WithParams(Params{K: 2}), WithEngine(EngineLive)}
	if _, hit, err := RunCached(cache, async, liveOpts...); err != nil || hit {
		t.Fatalf("live run: hit=%v err=%v", hit, err)
	}
	if _, hit, err := RunCached(cache, async, liveOpts...); err != nil || hit {
		t.Fatalf("repeated live run: hit=%v err=%v, want bypass", hit, err)
	}
}

func TestRunCachedCorruptEntryRecovers(t *testing.T) {
	cache := newMemCache()
	spec := mustSpec(t, "tradeoff")
	opts := []Option{WithN(32), WithSeed(5)}
	key, err := Fingerprint(spec, opts...)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(key, []byte("not json"))
	res, hit, err := RunCached(cache, spec, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if hit || !res.OK {
		t.Fatalf("corrupt entry: hit=%v ok=%v, want recompute", hit, res.OK)
	}
	if _, hit, _ := RunCached(cache, spec, opts...); !hit {
		t.Error("recomputed entry was not stored back")
	}
}

// TestFingerprintRunVsRunMany proves the satellite property end to end: the
// same logical run reaches the same key whether it goes through Run or
// through RunMany's (n, seed) grid, so each side hits entries the other
// side stored.
func TestFingerprintRunVsRunMany(t *testing.T) {
	cache := newMemCache()
	spec := mustSpec(t, "tradeoff")
	shared := []Option{WithParams(Params{K: 4})}

	batch, err := RunMany(spec, Batch{
		Ns: []int{16, 32}, Seeds: Seeds(1, 2), Options: shared, Cache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cache.m) != 4 {
		t.Fatalf("batch stored %d entries, want 4", len(cache.m))
	}
	for i, n := range []int{16, 32} {
		for j, seed := range []uint64{1, 2} {
			opts := append([]Option{}, shared...)
			opts = append(opts, WithN(n), WithSeed(seed))
			key, err := Fingerprint(spec, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := cache.m[key]; !ok {
				t.Fatalf("single-run key for n=%d seed=%d not in batch-populated cache", n, seed)
			}
			res, hit, err := RunCached(cache, spec, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if !hit {
				t.Errorf("n=%d seed=%d: Run missed the RunMany-populated cache", n, seed)
			}
			if !reflect.DeepEqual(res, batch.Runs[i*2+j]) {
				t.Errorf("n=%d seed=%d: cached Run diverged from batch result", n, seed)
			}
		}
	}
}

func TestRunManyCacheReplayIdentical(t *testing.T) {
	spec := mustSpec(t, "tradeoff")
	b := Batch{Ns: []int{16, 32}, Seeds: Seeds(1, 3)}
	plain, err := RunMany(spec, b)
	if err != nil {
		t.Fatal(err)
	}
	cache := newMemCache()
	b.Cache = cache
	cold, err := RunMany(spec, b)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunMany(spec, b)
	if err != nil {
		t.Fatal(err)
	}
	plainBytes, _ := EncodeBatchResult(plain)
	coldBytes, _ := EncodeBatchResult(cold)
	warmBytes, _ := EncodeBatchResult(warm)
	if !bytes.Equal(plainBytes, coldBytes) || !bytes.Equal(coldBytes, warmBytes) {
		t.Error("cached batch replay diverged from uncached batch")
	}
	if cache.hits < 6 {
		t.Errorf("warm batch produced %d hits, want >= 6", cache.hits)
	}
}

func TestRunManyProgressAndCancel(t *testing.T) {
	spec := mustSpec(t, "tradeoff")
	var mu sync.Mutex
	var calls, maxDone, total int
	_, err := RunMany(spec, Batch{
		Ns: []int{16, 32}, Seeds: Seeds(1, 3),
		OnResult: func(done, tot int) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if done > maxDone {
				maxDone = done
			}
			total = tot
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 6 || maxDone != 6 || total != 6 {
		t.Errorf("progress: calls=%d maxDone=%d total=%d, want 6/6/6", calls, maxDone, total)
	}

	cancel := make(chan struct{})
	close(cancel)
	if _, err := RunMany(spec, Batch{
		Ns: []int{16, 32}, Seeds: Seeds(1, 8), Cancel: cancel,
	}); err != ErrCanceled {
		t.Errorf("pre-canceled batch returned %v, want ErrCanceled", err)
	}
}
