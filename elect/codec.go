package elect

import (
	"encoding/json"
	"fmt"
)

// This file is the stable JSON wire codec for Result and BatchResult: the
// byte format stored by the result cache, written by cmd/sweep -json
// consumers, and served by the electd daemon. The format is versioned by
// convention rather than by envelope: field names and enum spellings below
// are frozen (v1); additions are allowed, renames and retypes are not.
// Encoding is canonical — the same Result always encodes to the same bytes
// (encoding/json emits struct fields in declaration order) — which is what
// lets the cache promise byte-identical replays of deterministic runs.

// MarshalText encodes the model as its name ("sync" or "async").
func (m Model) MarshalText() ([]byte, error) {
	if m != Sync && m != Async {
		return nil, fmt.Errorf("elect: cannot encode invalid model %d", int(m))
	}
	return []byte(m.String()), nil
}

// UnmarshalText decodes a model name written by MarshalText.
func (m *Model) UnmarshalText(text []byte) error {
	switch string(text) {
	case "sync":
		*m = Sync
	case "async":
		*m = Async
	default:
		return fmt.Errorf("elect: unknown model %q (sync, async)", text)
	}
	return nil
}

// MarshalText encodes the engine as its name ("auto", "sync", "async",
// "live").
func (e Engine) MarshalText() ([]byte, error) {
	if e < EngineAuto || e > EngineLive {
		return nil, fmt.Errorf("elect: cannot encode invalid engine %d", int(e))
	}
	return []byte(e.String()), nil
}

// UnmarshalText decodes an engine name; it accepts exactly what ParseEngine
// accepts.
func (e *Engine) UnmarshalText(text []byte) error {
	v, err := ParseEngine(string(text))
	if err != nil {
		return err
	}
	*e = v
	return nil
}

// MarshalText encodes the decision as its name ("undecided", "leader",
// "non-leader").
func (d Decision) MarshalText() ([]byte, error) {
	if d > NonLeader {
		return nil, fmt.Errorf("elect: cannot encode invalid decision %d", int(d))
	}
	return []byte(d.String()), nil
}

// UnmarshalText decodes a decision name written by MarshalText.
func (d *Decision) UnmarshalText(text []byte) error {
	switch string(text) {
	case "undecided":
		*d = Undecided
	case "leader":
		*d = Leader
	case "non-leader":
		*d = NonLeader
	default:
		return fmt.Errorf("elect: unknown decision %q (undecided, leader, non-leader)", text)
	}
	return nil
}

// EncodeResult renders r in the stable v1 wire form. The encoding is
// canonical: equal Results produce identical bytes.
func EncodeResult(r Result) ([]byte, error) {
	return json.Marshal(r)
}

// DecodeResult parses wire bytes written by EncodeResult. Unknown fields are
// ignored, so older binaries can read results written by newer ones.
func DecodeResult(data []byte) (Result, error) {
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return Result{}, fmt.Errorf("elect: decoding result: %w", err)
	}
	return r, nil
}

// EncodeBatchResult renders b in the stable v1 wire form (canonical bytes,
// like EncodeResult).
func EncodeBatchResult(b *BatchResult) ([]byte, error) {
	return json.Marshal(b)
}

// DecodeBatchResult parses wire bytes written by EncodeBatchResult.
func DecodeBatchResult(data []byte) (*BatchResult, error) {
	var b BatchResult
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("elect: decoding batch result: %w", err)
	}
	return &b, nil
}
