package elect

import (
	"reflect"
	"strings"
	"testing"
)

// faultCases pairs one spec per simulator with a non-trivial plan, for the
// determinism guards below.
var faultCases = []struct {
	algo string
	plan FaultPlan
}{
	{"tradeoff", FaultPlan{CrashRate: 0.2, DropRate: 0.05, DupRate: 0.02}},
	{"asynctradeoff", FaultPlan{CrashRate: 0.2, DropRate: 0.01, DupRate: 0.02}},
}

// TestFaultDeterminism: same seed + same plan must reproduce byte-identical
// Results on both simulators.
func TestFaultDeterminism(t *testing.T) {
	for _, tc := range faultCases {
		spec, err := Lookup(tc.algo)
		if err != nil {
			t.Fatal(err)
		}
		opts := []Option{WithN(64), WithSeed(11), WithFaults(tc.plan)}
		first, err := Run(spec, opts...)
		if err != nil {
			t.Fatal(err)
		}
		second, err := Run(spec, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, second) {
			t.Errorf("%s: same seed + plan diverged:\nfirst  %+v\nsecond %+v",
				tc.algo, first, second)
		}
	}
}

// TestZeroFaultPlanIsPlainRun: a zero FaultPlan must leave the run
// byte-identical to one without WithFaults, on both simulators — the
// regression guard for the hook wiring.
func TestZeroFaultPlanIsPlainRun(t *testing.T) {
	for _, algo := range []string{"tradeoff", "asynctradeoff"} {
		spec, err := Lookup(algo)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Run(spec, WithN(64), WithSeed(11))
		if err != nil {
			t.Fatal(err)
		}
		faulted, err := Run(spec, WithN(64), WithSeed(11), WithFaults(FaultPlan{}))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, faulted) {
			t.Errorf("%s: zero plan diverged from plain run:\nplain   %+v\nfaulted %+v",
				algo, plain, faulted)
		}
	}
}

func TestFaultsRejectedOnLiveEngine(t *testing.T) {
	spec, err := Lookup("asynctradeoff")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(spec, WithN(16), WithEngine(EngineLive),
		WithFaults(FaultPlan{DropRate: 0.1}))
	if err == nil || !strings.Contains(err.Error(), "WithFaults") {
		t.Fatalf("live engine accepted faults (err = %v)", err)
	}
	// The same guard must hold when the run arrives through RunMany's grid.
	_, err = RunMany(spec, Batch{
		Ns: []int{16}, Seeds: Seeds(1, 2),
		Options: []Option{WithEngine(EngineLive), WithFaults(FaultPlan{DropRate: 0.1})},
	})
	if err == nil || !strings.Contains(err.Error(), "WithFaults") {
		t.Fatalf("RunMany on the live engine accepted faults (err = %v)", err)
	}
}

func TestFaultsBadPlanRejected(t *testing.T) {
	spec, err := Lookup("tradeoff")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, WithN(16), WithFaults(FaultPlan{DropRate: 2})); err == nil {
		t.Fatal("DropRate=2 accepted")
	}
	if _, err := Run(spec, WithN(16),
		WithFaults(FaultPlan{Crashes: []Crash{{Node: 99, At: 1}}})); err == nil {
		t.Fatal("out-of-range crash victim accepted")
	}
}

// TestCrashedLeaderSemantics: crashing the fault-free winner voids its
// output; the survivors either elect someone else (OK with a new leader) or
// fail. Crashing everybody must never be OK.
func TestCrashedLeaderSemantics(t *testing.T) {
	spec, err := Lookup("tradeoff")
	if err != nil {
		t.Fatal(err)
	}
	base := []Option{WithN(32), WithSeed(3)}
	plain, err := Run(spec, base...)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.OK {
		t.Fatalf("baseline run failed: %+v", plain)
	}
	regicide, err := Run(spec, append(base,
		WithFaults(FaultPlan{Crashes: []Crash{{Node: plain.Leader, At: 1}}}))...)
	if err != nil {
		t.Fatal(err)
	}
	if len(regicide.Crashed) != 1 || regicide.Crashed[0] != plain.Leader {
		t.Fatalf("Crashed = %v, want [%d]", regicide.Crashed, plain.Leader)
	}
	if regicide.OK && regicide.Leader == plain.Leader {
		t.Fatal("crashed node still counted as the elected leader")
	}
	massacre, err := Run(spec, append(base,
		WithFaults(FaultPlan{CrashRate: 1, CrashWindow: 0.5}))...)
	if err != nil {
		t.Fatal(err)
	}
	if massacre.OK {
		t.Fatal("run with every node crashed reported OK")
	}
	if len(massacre.Crashed) != 32 {
		t.Fatalf("Crashed lists %d nodes, want 32", len(massacre.Crashed))
	}
}

// TestRunManyFaultAggregates: the batch layer must surface success rates and
// mean fault counters.
func TestRunManyFaultAggregates(t *testing.T) {
	spec, err := Lookup("tradeoff")
	if err != nil {
		t.Fatal(err)
	}
	batch, err := RunMany(spec, Batch{
		Ns:    []int{32},
		Seeds: Seeds(1, 8),
		Options: []Option{
			WithFaults(FaultPlan{DropRate: 0.05}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	agg := batch.Aggregates[0]
	if agg.SuccessRate < 0 || agg.SuccessRate > 1 {
		t.Fatalf("SuccessRate = %v", agg.SuccessRate)
	}
	if got := float64(agg.Successes) / float64(agg.Runs); agg.SuccessRate != got {
		t.Fatalf("SuccessRate = %v, want %v", agg.SuccessRate, got)
	}
	if agg.MeanDropped <= 0 {
		t.Fatalf("MeanDropped = %v, want > 0 at DropRate 0.05", agg.MeanDropped)
	}
}

// TestAdaptiveAdversaryFreshPerRun: one plan driving a concurrent batch must
// give every run its own adversary instance — identical per-seed results
// whether the batch ran wide or serial.
func TestAdaptiveAdversaryFreshPerRun(t *testing.T) {
	spec, err := Lookup("tradeoff")
	if err != nil {
		t.Fatal(err)
	}
	b := Batch{
		Ns:    []int{32},
		Seeds: Seeds(1, 6),
		Options: []Option{
			WithFaults(FaultPlan{NewAdversary: CrashLowestSender(2)}),
		},
	}
	wide, err := RunMany(spec, b)
	if err != nil {
		t.Fatal(err)
	}
	b.Workers = 1
	serial, err := RunMany(spec, b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wide.Runs, serial.Runs) {
		t.Fatal("adaptive-adversary batch is worker-count dependent")
	}
	crashed := false
	for _, r := range wide.Runs {
		crashed = crashed || len(r.Crashed) > 0
	}
	if !crashed {
		t.Fatal("adaptive adversary crashed nobody across the batch")
	}
}

func TestParseFaults(t *testing.T) {
	p, err := ParseFaults("drop=0.1, crash=0.05, dup=0.01, dropfirst=4, window=6")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultPlan{DropRate: 0.1, CrashRate: 0.05, DupRate: 0.01, DropFirst: 4, CrashWindow: 6}
	if p.DropRate != want.DropRate || p.CrashRate != want.CrashRate ||
		p.DupRate != want.DupRate || p.DropFirst != want.DropFirst ||
		p.CrashWindow != want.CrashWindow || p.NewAdversary != nil {
		t.Fatalf("ParseFaults = %+v, want %+v", p, want)
	}
	if p, err := ParseFaults(""); err != nil || !p.IsZero() {
		t.Fatalf("empty spec: %+v, %v", p, err)
	}
	adaptive, err := ParseFaults("adaptive=2")
	if err != nil || adaptive.NewAdversary == nil {
		t.Fatalf("adaptive spec: %+v, %v", adaptive, err)
	}
	for _, bad := range []string{"drop", "bogus=1", "drop=x", "dropfirst=1.5", "adaptive=0", "adaptive=-3"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q) accepted", bad)
		}
	}
	if _, err := ParseFaults("bogus=1"); err == nil ||
		!strings.Contains(err.Error(), "crash") || !strings.Contains(err.Error(), "adaptive") {
		t.Fatalf("unknown-knob error does not list valid names: %v", err)
	}
}

// TestFaultToleranceFlags: the registry must qualify the specs the ISSUE's
// resilience sweep depends on and exclude lasvegas, whose faulted runs wedge
// at the round cap.
func TestFaultToleranceFlags(t *testing.T) {
	for _, name := range []string{"tradeoff", "asynctradeoff", "afekgafni", "sublinear"} {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if !spec.FaultTolerant {
			t.Errorf("%s not marked FaultTolerant", name)
		}
	}
	lv, err := Lookup("lasvegas")
	if err != nil {
		t.Fatal(err)
	}
	if lv.FaultTolerant {
		t.Error("lasvegas marked FaultTolerant despite wedging under faults")
	}
}
