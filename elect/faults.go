package elect

import (
	"fmt"
	"strconv"
	"strings"

	"cliquelect/internal/faults"
	"cliquelect/internal/xrand"
)

// Crash schedules one explicit crash-stop: node Node fails permanently at
// instant At — a round number on the sync engine, a time in delay units on
// the async simulator. At 0 the node fails before doing anything.
type Crash struct {
	Node int     `json:"node"`
	At   float64 `json:"at"`
}

// Adversary is an adaptive fault controller: the injector shows it every
// sent message (Observe) and asks it at every hook point — round boundaries
// on the sync engine, events on the async simulator — which nodes to
// crash-stop right now (Tick). The paper's Section 5 adversary is adaptive
// (it schedules after seeing the nodes' coins), so adaptive crashing is
// admissible in the same sense.
type Adversary interface {
	// Observe is called once per protocol send with the message's endpoints,
	// kind, payload words and the current instant.
	Observe(src, dst int, kind uint8, a, b int64, at float64)
	// Tick returns the nodes to crash-stop at instant at (may be nil or
	// name already-crashed nodes; the injector deduplicates).
	Tick(at float64) []int
}

// FaultPlan declares the faults injected into one run (see WithFaults). The
// zero plan injects nothing and leaves runs byte-identical to plain ones:
// all fault sampling draws from a private RNG stream salted off the run
// seed, never from the engine or protocol streams. Same seed + same plan
// reproduces the same faulted execution exactly.
type FaultPlan struct {
	// CrashRate makes each node independently crash-stop with this
	// probability, at an instant sampled uniformly from [0, CrashWindow).
	CrashRate float64
	// CrashWindow is the sampling horizon for CrashRate victims, in rounds
	// (sync) or time units (async); <= 0 means 8, which covers the makespan
	// of every registered protocol at its usual parameters.
	CrashWindow float64
	// Crashes schedules explicit crash-stops, in addition to sampled ones.
	Crashes []Crash
	// DropRate loses each message independently with this probability.
	DropRate float64
	// DropFirst loses the first DropFirst messages of the run outright — the
	// targeted variant that kills exactly the protocol's opening moves.
	DropFirst int
	// DupRate delivers each message twice with this probability.
	DupRate float64
	// NewAdversary, when non-nil, constructs the run's adaptive controller.
	// It is a factory, not an instance: every run builds a fresh controller,
	// so one plan can drive many concurrent RunMany runs safely.
	NewAdversary func() Adversary
}

// IsZero reports whether the plan injects no faults at all.
func (p FaultPlan) IsZero() bool {
	return p.CrashRate == 0 && len(p.Crashes) == 0 && p.DropRate == 0 &&
		p.DropFirst == 0 && p.DupRate == 0 && p.NewAdversary == nil
}

// internal converts the public plan to the engine-level one.
func (p FaultPlan) internal() faults.Plan {
	fp := faults.Plan{
		CrashRate:   p.CrashRate,
		CrashWindow: p.CrashWindow,
		DropRate:    p.DropRate,
		DropFirst:   p.DropFirst,
		DupRate:     p.DupRate,
	}
	for _, c := range p.Crashes {
		fp.Crashes = append(fp.Crashes, faults.Crash{Node: c.Node, At: c.At})
	}
	if p.NewAdversary != nil {
		mk := p.NewAdversary
		fp.NewAdversary = func() faults.Adversary { return mk() }
	}
	return fp
}

// faultSeedSalt decorrelates the injector's RNG stream from the run's master
// stream without consuming from it, so adding a zero plan (or removing a
// plan) never perturbs the underlying execution.
const faultSeedSalt = 0x5EEDFA17C0DED00D

// injector builds the run's fault injector, or nil for a zero plan.
func (c *runConfig) injector() (*faults.Injector, error) {
	if c.faults.IsZero() {
		return nil, nil
	}
	return faults.NewInjector(c.faults.internal(), c.n, xrand.New(c.seed^faultSeedSalt).Uint64())
}

// WithFaults injects the plan's crash-stop/drop/duplicate faults into the
// run. Only the two deterministic simulators support fault injection; it is
// an error on the live engine. Under a non-zero plan the Result's OK field
// keeps its meaning restricted to surviving nodes: exactly one surviving
// leader and every awake surviving node decided.
func WithFaults(p FaultPlan) Option {
	return func(c *runConfig) { c.faults = p }
}

// CrashLowestSender returns an adversary factory for FaultPlan.NewAdversary
// implementing the canonical adaptive attack: watch the first payload word
// of every message (the registered protocols put the sender's ID or rank
// there) and, at each hook point, crash the sender of the smallest value
// seen so far — "always kill the current front-runner" — up to budget
// victims in total.
func CrashLowestSender(budget int) func() Adversary {
	return func() Adversary { return faults.NewCrashLowestSender(budget) }
}

// ComposeAdversaries stacks several adversary factories into one: every
// controller observes every message, and their crash verdicts are unioned.
func ComposeAdversaries(mks ...func() Adversary) func() Adversary {
	return func() Adversary {
		advs := make([]faults.Adversary, len(mks))
		for i, mk := range mks {
			advs[i] = mk()
		}
		return faults.Compose(advs...)
	}
}

// faultKnobs is the registry of CLI-facing fault-plan fields, sharing the
// knobTable machinery (and error format) with the delay-profile registry:
// all adversarial knob parsing lives in these tables.
var faultKnobs = knobTable[func(*FaultPlan, string) error]{
	kind: "fault knob",
	entries: []knobEntry[func(*FaultPlan, string) error]{
		{"crash", setFaultFloat(func(p *FaultPlan, v float64) { p.CrashRate = v })},
		{"drop", setFaultFloat(func(p *FaultPlan, v float64) { p.DropRate = v })},
		{"dup", setFaultFloat(func(p *FaultPlan, v float64) { p.DupRate = v })},
		{"window", setFaultFloat(func(p *FaultPlan, v float64) { p.CrashWindow = v })},
		{"dropfirst", setFaultInt(func(p *FaultPlan, v int) { p.DropFirst = v })},
		{"adaptive", func(p *FaultPlan, s string) error {
			v, err := strconv.Atoi(s)
			if err != nil {
				return fmt.Errorf("elect: bad fault knob value %q: %w", s, err)
			}
			if v < 1 {
				return fmt.Errorf("elect: adaptive budget %d, want >= 1 (omit the knob to disable)", v)
			}
			p.NewAdversary = CrashLowestSender(v)
			return nil
		}},
	},
}

func setFaultFloat(set func(*FaultPlan, float64)) func(*FaultPlan, string) error {
	return func(p *FaultPlan, s string) error {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("elect: bad fault knob value %q: %w", s, err)
		}
		set(p, v)
		return nil
	}
}

func setFaultInt(set func(*FaultPlan, int)) func(*FaultPlan, string) error {
	return func(p *FaultPlan, s string) error {
		v, err := strconv.Atoi(s)
		if err != nil {
			return fmt.Errorf("elect: bad fault knob value %q: %w", s, err)
		}
		set(p, v)
		return nil
	}
}

// ParseFaults resolves the CLI fault-plan syntax: a comma-separated list of
// knob=value pairs, e.g. "drop=0.1,crash=0.05,dup=0.01,dropfirst=4,window=6"
// plus "adaptive=N" for a CrashLowestSender with budget N. The empty string
// is the zero plan. It is the fault-side counterpart of ParseDelays; both
// draw their names from the same knob registry.
func ParseFaults(s string) (FaultPlan, error) {
	var p FaultPlan
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return FaultPlan{}, fmt.Errorf("elect: bad fault knob %q, want name=value", strings.TrimSpace(part))
		}
		set, err := faultKnobs.lookup(strings.TrimSpace(kv[0]))
		if err != nil {
			return FaultPlan{}, err
		}
		if err := set(&p, strings.TrimSpace(kv[1])); err != nil {
			return FaultPlan{}, err
		}
	}
	return p, nil
}
