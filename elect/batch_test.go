package elect

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRunManyParallelMatchesSerial is the batch determinism contract: 8+
// seeds fanned across a worker pool produce byte-identical per-seed results
// to serial execution.
func TestRunManyParallelMatchesSerial(t *testing.T) {
	for _, name := range []string{"tradeoff", "lasvegas", "asynctradeoff"} {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		batch := Batch{
			Ns:    []int{32, 64},
			Seeds: Seeds(100, 8),
			Options: []Option{
				WithParams(DefaultParams()),
			},
		}
		serial := batch
		serial.Workers = 1
		parallel := batch
		parallel.Workers = 8

		a, err := RunMany(spec, serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunMany(spec, parallel)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Runs) != 16 || len(b.Runs) != 16 {
			t.Fatalf("%s: %d/%d runs, want 16", name, len(a.Runs), len(b.Runs))
		}
		for i := range a.Runs {
			if !reflect.DeepEqual(a.Runs[i], b.Runs[i]) {
				t.Fatalf("%s: run %d diverges between serial and parallel:\n%+v\nvs\n%+v",
					name, i, a.Runs[i], b.Runs[i])
			}
			if got, want := fmt.Sprintf("%#v", a.Runs[i]), fmt.Sprintf("%#v", b.Runs[i]); got != want {
				t.Fatalf("%s: run %d not byte-identical", name, i)
			}
		}
		if !reflect.DeepEqual(a.Aggregates, b.Aggregates) {
			t.Fatalf("%s: aggregates diverge", name)
		}
	}
}

func TestRunManyOrderingAndAggregates(t *testing.T) {
	spec, err := Lookup("tradeoff")
	if err != nil {
		t.Fatal(err)
	}
	ns := []int{16, 32, 64}
	seeds := Seeds(7, 8)
	out, err := RunMany(spec, Batch{Ns: ns, Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Runs) != len(ns)*len(seeds) {
		t.Fatalf("%d runs", len(out.Runs))
	}
	for i, n := range ns {
		for j, seed := range seeds {
			r := out.Runs[i*len(seeds)+j]
			if r.N != n || r.Seed != seed {
				t.Fatalf("run[%d,%d] is n=%d seed=%d, want n=%d seed=%d",
					i, j, r.N, r.Seed, n, seed)
			}
			if !r.OK {
				t.Fatalf("deterministic run n=%d seed=%d failed", n, seed)
			}
		}
	}
	if len(out.Aggregates) != len(ns) {
		t.Fatalf("%d aggregates", len(out.Aggregates))
	}
	prev := 0.0
	for i, agg := range out.Aggregates {
		if agg.N != ns[i] || agg.Runs != len(seeds) || agg.Successes != len(seeds) {
			t.Fatalf("aggregate %d: %+v", i, agg)
		}
		if agg.Messages.Mean <= prev {
			t.Fatalf("message mean not increasing with n: %v", out.Aggregates)
		}
		prev = agg.Messages.Mean
		if agg.Time.Mean != 3 { // tradeoff k=3: 2k-3 = 3 rounds exactly
			t.Fatalf("n=%d: mean rounds = %v, want 3", agg.N, agg.Time.Mean)
		}
		if agg.Messages.Min > agg.Messages.Median || agg.Messages.Median > agg.Messages.Max {
			t.Fatalf("summary ordering broken: %+v", agg.Messages)
		}
	}
}

func TestRunManyDefaultsAndErrors(t *testing.T) {
	spec, err := Lookup("tradeoff")
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunMany(spec, Batch{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Runs) != 1 || out.Runs[0].N != 64 || out.Runs[0].Seed != 1 {
		t.Fatalf("defaults: %+v", out.Runs)
	}
	// Batch options override-ability: the batch grid wins over WithN/WithSeed
	// in Options.
	out, err = RunMany(spec, Batch{
		Ns: []int{32}, Seeds: []uint64{9},
		Options: []Option{WithN(1000), WithSeed(1000)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Runs[0].N != 32 || out.Runs[0].Seed != 9 {
		t.Fatalf("grid did not override options: %+v", out.Runs[0])
	}
	// A bad parameter surfaces as an error naming the failing run.
	if _, err := RunMany(spec, Batch{Options: []Option{WithParams(Params{K: 1})}}); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestSeeds(t *testing.T) {
	got := Seeds(5, 3)
	if len(got) != 3 || got[0] != 5 || got[2] != 7 {
		t.Fatalf("Seeds(5,3) = %v", got)
	}
	if len(Seeds(0, 0)) != 0 {
		t.Fatal("Seeds(0,0) not empty")
	}
}
