package elect

import (
	"bytes"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestRunManyParallelMatchesSerial is the batch determinism contract the
// result cache's fingerprints depend on: the same grid fanned across the
// sharded work-stealing executor at any worker count must produce a
// BatchResult byte-identical (encoded wire form) to the serial path.
// Worker counts are chosen to exercise the shard shapes: even split, uneven
// split with stealing, and more workers than cells per shard.
func TestRunManyParallelMatchesSerial(t *testing.T) {
	for _, name := range []string{"tradeoff", "lasvegas", "asynctradeoff"} {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		batch := Batch{
			Ns:    []int{32, 64},
			Seeds: Seeds(100, 8),
			Options: []Option{
				WithParams(DefaultParams()),
			},
		}
		serial := batch
		serial.Workers = 1
		a, err := RunMany(spec, serial)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Runs) != 16 {
			t.Fatalf("%s: %d serial runs, want 16", name, len(a.Runs))
		}
		aBytes, err := EncodeBatchResult(a)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{3, 8, 16} {
			parallel := batch
			parallel.Workers = workers
			b, err := RunMany(spec, parallel)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a.Runs {
				if !reflect.DeepEqual(a.Runs[i], b.Runs[i]) {
					t.Fatalf("%s workers=%d: run %d diverges between serial and parallel:\n%+v\nvs\n%+v",
						name, workers, i, a.Runs[i], b.Runs[i])
				}
				if got, want := fmt.Sprintf("%#v", a.Runs[i]), fmt.Sprintf("%#v", b.Runs[i]); got != want {
					t.Fatalf("%s workers=%d: run %d not byte-identical", name, workers, i)
				}
			}
			if !reflect.DeepEqual(a.Aggregates, b.Aggregates) {
				t.Fatalf("%s workers=%d: aggregates diverge", name, workers)
			}
			bBytes, err := EncodeBatchResult(b)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(aBytes, bBytes) {
				t.Fatalf("%s workers=%d: encoded BatchResult differs from serial", name, workers)
			}
		}
	}
}

// TestRunShardedCoverage drives the executor directly: every cell must be
// claimed exactly once for shard shapes that force uneven splits, empty
// shards and stealing.
func TestRunShardedCoverage(t *testing.T) {
	for _, tc := range []struct{ total, workers int }{
		{1, 2}, {7, 3}, {16, 5}, {100, 7}, {8, 8},
	} {
		hits := make([]atomic.Int32, tc.total)
		claimed := runSharded(tc.total, tc.workers, func(idx int) {
			hits[idx].Add(1)
		}, func() bool { return false }, nil)
		if claimed != tc.total {
			t.Fatalf("total=%d workers=%d: claimed %d cells", tc.total, tc.workers, claimed)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("total=%d workers=%d: cell %d run %d times", tc.total, tc.workers, i, got)
			}
		}
	}
}

func TestRunManyOrderingAndAggregates(t *testing.T) {
	spec, err := Lookup("tradeoff")
	if err != nil {
		t.Fatal(err)
	}
	ns := []int{16, 32, 64}
	seeds := Seeds(7, 8)
	out, err := RunMany(spec, Batch{Ns: ns, Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Runs) != len(ns)*len(seeds) {
		t.Fatalf("%d runs", len(out.Runs))
	}
	for i, n := range ns {
		for j, seed := range seeds {
			r := out.Runs[i*len(seeds)+j]
			if r.N != n || r.Seed != seed {
				t.Fatalf("run[%d,%d] is n=%d seed=%d, want n=%d seed=%d",
					i, j, r.N, r.Seed, n, seed)
			}
			if !r.OK {
				t.Fatalf("deterministic run n=%d seed=%d failed", n, seed)
			}
		}
	}
	if len(out.Aggregates) != len(ns) {
		t.Fatalf("%d aggregates", len(out.Aggregates))
	}
	prev := 0.0
	for i, agg := range out.Aggregates {
		if agg.N != ns[i] || agg.Runs != len(seeds) || agg.Successes != len(seeds) {
			t.Fatalf("aggregate %d: %+v", i, agg)
		}
		if agg.Messages.Mean <= prev {
			t.Fatalf("message mean not increasing with n: %v", out.Aggregates)
		}
		prev = agg.Messages.Mean
		if agg.Time.Mean != 3 { // tradeoff k=3: 2k-3 = 3 rounds exactly
			t.Fatalf("n=%d: mean rounds = %v, want 3", agg.N, agg.Time.Mean)
		}
		if agg.Messages.Min > agg.Messages.Median || agg.Messages.Median > agg.Messages.Max {
			t.Fatalf("summary ordering broken: %+v", agg.Messages)
		}
	}
}

func TestRunManyDefaultsAndErrors(t *testing.T) {
	spec, err := Lookup("tradeoff")
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunMany(spec, Batch{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Runs) != 1 || out.Runs[0].N != 64 || out.Runs[0].Seed != 1 {
		t.Fatalf("defaults: %+v", out.Runs)
	}
	// Batch options override-ability: the batch grid wins over WithN/WithSeed
	// in Options.
	out, err = RunMany(spec, Batch{
		Ns: []int{32}, Seeds: []uint64{9},
		Options: []Option{WithN(1000), WithSeed(1000)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Runs[0].N != 32 || out.Runs[0].Seed != 9 {
		t.Fatalf("grid did not override options: %+v", out.Runs[0])
	}
	// A bad parameter surfaces as an error naming the failing run.
	if _, err := RunMany(spec, Batch{Options: []Option{WithParams(Params{K: 1})}}); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestSeeds(t *testing.T) {
	got := Seeds(5, 3)
	if len(got) != 3 || got[0] != 5 || got[2] != 7 {
		t.Fatalf("Seeds(5,3) = %v", got)
	}
	if len(Seeds(0, 0)) != 0 {
		t.Fatal("Seeds(0,0) not empty")
	}
}
