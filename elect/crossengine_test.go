package elect

import "testing"

// TestCrossEngineAgreement runs every asynchronous protocol on both the
// deterministic event-queue simulator and the goroutine-per-node live
// runtime with the same spec and seed, and checks that both engines elect a
// valid unique leader. Deterministic protocols must succeed on every seed on
// both engines; randomized ones get a small failure budget on the live
// engine (real interleavings can defeat a Monte Carlo run, exactly as the
// paper's probabilistic guarantees allow) but must still agree with the
// simulator on most seeds.
func TestCrossEngineAgreement(t *testing.T) {
	const seedCount = 5
	for _, spec := range Registry() {
		if spec.Model != Async {
			continue
		}
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			opts := []Option{WithN(48), WithParams(DefaultParams())}
			if spec.Name == "asynctradeoff" || spec.Name == "asynclinear" {
				opts = append(opts, WithWake(1)) // adversarial wake-up model
			}
			bothOK := 0
			for seed := uint64(1); seed <= seedCount; seed++ {
				sim, err := Run(spec, append(opts, WithSeed(seed), WithEngine(EngineAsync))...)
				if err != nil {
					t.Fatalf("seed %d sim: %v", seed, err)
				}
				live, err := Run(spec, append(opts, WithSeed(seed), WithEngine(EngineLive))...)
				if err != nil {
					t.Fatalf("seed %d live: %v", seed, err)
				}
				if sim.OK && sim.Leader < 0 || live.OK && live.Leader < 0 {
					t.Fatalf("seed %d: OK without a unique leader (sim %d, live %d)",
						seed, sim.Leader, live.Leader)
				}
				if spec.Deterministic {
					// No failure budget at all: both engines must elect, and
					// because both draw the same ID assignment from the seed
					// and flip no coins, engine choice must not change the
					// validity of the election.
					if !sim.OK {
						t.Fatalf("seed %d: deterministic simulator run failed: %+v", seed, sim)
					}
					if !live.OK {
						t.Fatalf("seed %d: deterministic live run failed: %+v", seed, live)
					}
				}
				if sim.OK && live.OK {
					bothOK++
				}
			}
			// Randomized protocols may lose an occasional live run to a hostile
			// interleaving; they may not lose most of them.
			if bothOK < seedCount-1 {
				t.Fatalf("only %d/%d seeds elected a valid unique leader on both engines",
					bothOK, seedCount)
			}
		})
	}
}
