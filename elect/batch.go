package elect

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cliquelect/internal/stats"
)

// ErrCanceled is returned by RunMany when its Batch.Cancel channel closes
// before every run was dispatched.
var ErrCanceled = errors.New("elect: batch canceled")

// ErrNoWorkers is returned by a RemoteRunner when no remote worker is
// available to take the grid; RunMany treats it as "execute locally
// instead". Implementations may wrap it.
var ErrNoWorkers = errors.New("elect: no remote workers available")

// RemoteRunner executes a whole batch grid somewhere other than this
// process; internal/distrib implements it over a fleet of electd workers.
// RunGrid receives the defaulted grid axes plus the batch (for Options,
// Topos, Cache, OnResult and Cancel) and must return one Result per cell in
// the canonical topo-major, size-major, seed-minor order — each
// byte-identical on the wire codec to what a local Run of that
// (topo, n, seed) cell would produce, which the determinism contract
// guarantees whatever machine computed it. Returning ErrNoWorkers makes
// RunMany fall back to local execution; a closed Batch.Cancel must surface
// as ErrCanceled; any other error aborts the batch.
type RemoteRunner interface {
	RunGrid(spec Spec, ns []int, seeds []uint64, b *Batch) ([]Result, error)
}

// Seeds returns count consecutive seeds starting at base — the usual seed
// list for a Batch.
func Seeds(base uint64, count int) []uint64 {
	out := make([]uint64, count)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}

// Batch describes a fan-out of one spec across topologies, network sizes
// and seeds. Every (topo, n, seed) cell becomes one independent Run.
type Batch struct {
	// Ns lists the network sizes to sweep; empty means {64}.
	Ns []int
	// Seeds lists the seeds run at every size; empty means {1}.
	Seeds []uint64
	// Topos lists topology specs (see WithTopology) swept as the outermost
	// grid axis; empty means the single default clique, which keeps the grid
	// — and every fingerprint in it — identical to a pre-topology batch.
	Topos []string
	// Options is the shared configuration applied to every run (parameters,
	// wake policy, delays, engine, budget). WithN and WithSeed values set
	// here are overridden by the batch's own Ns and Seeds.
	Options []Option
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
	// Cache, when non-nil, routes every run through RunCached: deterministic
	// (n, seed) cells that were computed before — by any Run, RunMany or
	// electd job sharing the cache — are replayed from their stored bytes
	// instead of re-executed. Uncacheable runs execute normally.
	Cache Cache
	// OnResult, when non-nil, is called once per completed run with the
	// number of runs finished so far and the batch total. Calls arrive from
	// the worker goroutines (at most one at a time per worker, but
	// concurrently across workers), so the callback must be cheap and
	// thread-safe; done is monotone across the calls taken together but
	// individual calls may arrive out of order.
	OnResult func(done, total int)
	// Cancel, when non-nil, aborts the batch as soon as the channel is
	// closed: in-flight runs finish, queued ones are never dispatched, and
	// RunMany returns ErrCanceled.
	Cancel <-chan struct{}
	// Remote, when non-nil, dispatches the grid through a remote runner (a
	// distrib fleet of electd workers) instead of the local executor; results
	// are byte-identical either way. When the runner reports ErrNoWorkers the
	// batch falls back to local execution, so a configured-but-unreachable
	// fleet degrades to a plain RunMany.
	Remote RemoteRunner
}

// Summary holds summary statistics of one measurement across a batch.
type Summary struct {
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Median float64 `json:"median"`
}

func newSummary(xs []float64) Summary {
	s := stats.Summarize(xs)
	return Summary{Mean: s.Mean, Std: s.Std, Min: s.Min, Max: s.Max, Median: s.Median}
}

// Aggregate summarizes all runs of one (topology, network size) pair.
type Aggregate struct {
	// Topo is the canonical topology spec of the aggregated cells; empty on
	// the default clique (so clique-only batches serialize exactly as before
	// the topology axis existed).
	Topo string `json:"topo,omitempty"`
	N    int    `json:"n"`
	// Runs is the number of seeds executed at this size.
	Runs int `json:"runs"`
	// Successes counts runs that elected a valid unique leader (OK; under
	// WithFaults, restricted to surviving nodes).
	Successes int `json:"successes"`
	// SuccessRate is Successes/Runs — the election-success rate, the headline
	// resilience measure under fault injection.
	SuccessRate float64 `json:"success_rate"`
	// Messages summarizes the message complexity across seeds.
	Messages Summary `json:"messages"`
	// Time summarizes the time complexity across seeds: rounds on the sync
	// engine, time units on the async simulator, zero on the live engine.
	Time Summary `json:"time"`
	// MeanCrashed, MeanDropped and MeanDuplicated are the mean fault-injection
	// counters per run (all zero without WithFaults).
	MeanCrashed    float64 `json:"mean_crashed"`
	MeanDropped    float64 `json:"mean_dropped"`
	MeanDuplicated float64 `json:"mean_duplicated"`
}

// BatchResult is the outcome of one RunMany. Like Result, its json tags are
// the stable v1 wire form (see EncodeBatchResult).
type BatchResult struct {
	// Runs holds every per-cell Result in deterministic order: topo-major,
	// size-major, seed-minor (Runs[(t*len(Ns)+i)*len(Seeds)+j] is topology
	// Topos[t] at size Ns[i] with seed Seeds[j]; without Topos the topology
	// axis has one implicit clique entry and the order is the historical
	// size-major, seed-minor one).
	Runs []Result `json:"runs"`
	// Aggregates holds one Aggregate per (topo, size), in grid order.
	Aggregates []Aggregate `json:"aggregates"`
}

// RunMany fans the batch's (size, seed) grid across a sharded parallel
// executor and returns every per-seed result plus per-size aggregates.
//
// The grid of cells is split into one contiguous shard per worker; each
// worker drains its own shard with a single atomic claim per cell and then
// steals from the other shards, so the executor stays busy under skewed
// per-cell cost (large sizes at the end of a sweep) without a dispatcher
// goroutine or channel handoff per cell. Each cell is an independent Run
// whose randomness derives entirely from its own (n, seed) pair — the
// per-shard claim order never feeds any RNG — so on the deterministic
// engines the results are byte-identical whatever the worker count:
// RunMany(…, Workers: 1) runs the plain serial loop and RunMany(…, Workers:
// 8) produces the very same BatchResult, and a warm Batch.Cache replays the
// very same bytes a cold one computes (the PR 3 cache fingerprints depend
// on this, and TestRunManyParallelMatchesSerial asserts it). The first run
// error aborts the batch.
func RunMany(spec Spec, b Batch) (*BatchResult, error) {
	ns, seeds := defaultAxes(b.Ns, b.Seeds)
	total := GridSize(ns, seeds, b.Topos)
	if b.Remote != nil {
		runs, err := b.Remote.RunGrid(spec, ns, seeds, &b)
		switch {
		case err == nil:
			if len(runs) != total {
				return nil, fmt.Errorf("elect: remote runner returned %d results for a %d-cell grid",
					len(runs), total)
			}
			return assembleBatch(ns, seeds, b.Topos, runs), nil
		case !errors.Is(err, ErrNoWorkers):
			return nil, err
		}
		// No fleet reachable: degrade to local execution.
	}
	runs, err := runCells(spec, b, ns, seeds, 0, total)
	if err != nil {
		return nil, err
	}
	return assembleBatch(ns, seeds, b.Topos, runs), nil
}

// defaultAxes applies the Batch axis defaults: {64} sizes, {1} seeds.
func defaultAxes(ns []int, seeds []uint64) ([]int, []uint64) {
	if len(ns) == 0 {
		ns = []int{64}
	}
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	return ns, seeds
}

// GridSize returns the number of cells in the canonical batch grid over the
// given (already defaulted) axes: len(topos)·len(ns)·len(seeds), with an
// empty topos axis counting as the single implicit clique. Distributed
// dispatch (internal/distrib, electd's range validation) sizes its
// partitions with this.
func GridSize(ns []int, seeds []uint64, topos []string) int {
	t := len(topos)
	if t == 0 {
		t = 1
	}
	return t * len(ns) * len(seeds)
}

// CellOptions returns the Run options for cell idx of the batch's canonical
// topo-major, size-major, seed-minor grid over the (already defaulted) ns
// and seeds axes: the batch's shared Options followed by the cell's WithN,
// WithSeed and — only when the batch sweeps topologies — WithTopology. It
// is exported so remote executors (internal/distrib) reproduce exactly the
// cells a local RunMany would run.
func CellOptions(b *Batch, ns []int, seeds []uint64, idx int) []Option {
	inner := len(ns) * len(seeds)
	opts := make([]Option, 0, len(b.Options)+3)
	opts = append(opts, b.Options...)
	opts = append(opts, WithN(ns[idx%inner/len(seeds)]), WithSeed(seeds[idx%len(seeds)]))
	if len(b.Topos) > 0 {
		opts = append(opts, WithTopology(b.Topos[idx/inner]))
	}
	return opts
}

// RunRange executes the contiguous cell range [start, start+count) of the
// batch's canonical grid — the same topo-major, size-major, seed-minor
// order RunMany uses — and returns the per-cell Results in range order. It
// is the worker-side half of distributed dispatch: a fleet scheduler
// partitions the grid into ranges, each electd worker executes its ranges
// with RunRange, and the merged grid is byte-identical to one local RunMany
// because every cell is a pure function of its own (topo, n, seed).
// Workers, Cache, OnResult and Cancel are honored as in RunMany (OnResult's
// done/total are relative to the range); Remote is ignored — ranges always
// execute locally.
func RunRange(spec Spec, b Batch, start, count int) ([]Result, error) {
	ns, seeds := defaultAxes(b.Ns, b.Seeds)
	total := GridSize(ns, seeds, b.Topos)
	if start < 0 || count < 1 || start+count > total {
		return nil, fmt.Errorf("elect: cell range [%d, %d) outside the %d-cell grid",
			start, start+count, total)
	}
	return runCells(spec, b, ns, seeds, start, count)
}

// runCells is the local executor shared by RunMany and RunRange: it runs
// cells [start, start+count) of the ns × seeds grid and returns their
// Results in cell order.
func runCells(spec Spec, b Batch, ns []int, seeds []uint64, start, count int) ([]Result, error) {
	workers := b.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > count {
		workers = count
	}

	runs := make([]Result, count)
	errs := make([]error, count)
	runCell := func(i int) {
		runs[i], _, errs[i] = RunCached(b.Cache, spec, CellOptions(&b, ns, seeds, start+i)...)
	}
	canceled := func() bool {
		select {
		case <-b.Cancel:
			return true
		default:
			return false
		}
	}

	var claimed int
	if workers == 1 {
		// Serial reference path: claim cells in grid order on the caller's
		// goroutine.
		for ; claimed < count; claimed++ {
			if canceled() {
				break
			}
			runCell(claimed)
			if b.OnResult != nil {
				b.OnResult(claimed+1, count)
			}
		}
	} else {
		claimed = runSharded(count, workers, runCell, canceled, b.OnResult)
	}
	if claimed < count {
		return nil, ErrCanceled
	}

	for i, err := range errs {
		if err != nil {
			idx := start + i
			inner := len(ns) * len(seeds)
			if len(b.Topos) > 0 {
				return nil, fmt.Errorf("elect: run topo=%q n=%d seed=%d: %w",
					b.Topos[idx/inner], ns[idx%inner/len(seeds)], seeds[idx%len(seeds)], err)
			}
			return nil, fmt.Errorf("elect: run n=%d seed=%d: %w",
				ns[idx/len(seeds)], seeds[idx%len(seeds)], err)
		}
	}
	return runs, nil
}

// runSharded is RunMany's parallel executor: cells [0, total) are split
// into one contiguous shard per worker, each worker drains its own shard
// via an atomic claim counter and then steals from the other shards in
// ring order. It returns the number of cells claimed — total unless the
// cancel probe fired while cells were still unclaimed.
func runSharded(total, workers int, runCell func(int), canceled func() bool, onResult func(done, total int)) int {
	// bounds[w] .. bounds[w+1] is shard w; claim[w] is its next free cell.
	bounds := make([]int64, workers+1)
	for w := 1; w <= workers; w++ {
		bounds[w] = int64(w * total / workers)
	}
	claim := make([]atomic.Int64, workers)
	for w := range claim {
		claim[w].Store(bounds[w])
	}
	var completed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < workers; s++ {
				shard := (w + s) % workers
				for {
					if canceled() {
						return
					}
					idx := claim[shard].Add(1) - 1
					if idx >= bounds[shard+1] {
						break // shard drained; move on to stealing
					}
					runCell(int(idx))
					if onResult != nil {
						onResult(int(completed.Add(1)), total)
					} else {
						completed.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	return int(completed.Load())
}

// assembleBatch computes the per-(topo, size) aggregates over the completed
// grid.
func assembleBatch(ns []int, seeds []uint64, topos []string, runs []Result) *BatchResult {
	tcount := len(topos)
	if tcount == 0 {
		tcount = 1
	}
	out := &BatchResult{Runs: runs, Aggregates: make([]Aggregate, 0, tcount*len(ns))}
	for g := 0; g < tcount*len(ns); g++ {
		n := ns[g%len(ns)]
		base := g * len(seeds)
		// Topo comes from the first run of the group: Run stores the canonical
		// spec there ("" on the clique), so the aggregate label is normalized
		// whatever alias the batch used.
		agg := Aggregate{Topo: runs[base].Topo, N: n, Runs: len(seeds)}
		msgs := make([]float64, 0, len(seeds))
		times := make([]float64, 0, len(seeds))
		for j := range seeds {
			r := runs[base+j]
			if r.OK {
				agg.Successes++
			}
			msgs = append(msgs, float64(r.Messages))
			if r.Engine == EngineSync {
				times = append(times, float64(r.Rounds))
			} else {
				times = append(times, r.TimeUnits)
			}
			agg.MeanCrashed += float64(len(r.Crashed))
			agg.MeanDropped += float64(r.Dropped)
			agg.MeanDuplicated += float64(r.Duplicated)
		}
		agg.SuccessRate = float64(agg.Successes) / float64(agg.Runs)
		agg.MeanCrashed /= float64(agg.Runs)
		agg.MeanDropped /= float64(agg.Runs)
		agg.MeanDuplicated /= float64(agg.Runs)
		agg.Messages = newSummary(msgs)
		agg.Time = newSummary(times)
		out.Aggregates = append(out.Aggregates, agg)
	}
	return out
}
