package elect

import (
	"fmt"
	"runtime"
	"sync"

	"cliquelect/internal/stats"
)

// Seeds returns count consecutive seeds starting at base — the usual seed
// list for a Batch.
func Seeds(base uint64, count int) []uint64 {
	out := make([]uint64, count)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}

// Batch describes a fan-out of one spec across network sizes and seeds.
// Every (n, seed) pair becomes one independent Run.
type Batch struct {
	// Ns lists the network sizes to sweep; empty means {64}.
	Ns []int
	// Seeds lists the seeds run at every size; empty means {1}.
	Seeds []uint64
	// Options is the shared configuration applied to every run (parameters,
	// wake policy, delays, engine, budget). WithN and WithSeed values set
	// here are overridden by the batch's own Ns and Seeds.
	Options []Option
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
}

// Summary holds summary statistics of one measurement across a batch.
type Summary struct {
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

func newSummary(xs []float64) Summary {
	s := stats.Summarize(xs)
	return Summary{Mean: s.Mean, Std: s.Std, Min: s.Min, Max: s.Max, Median: s.Median}
}

// Aggregate summarizes all runs of one network size.
type Aggregate struct {
	N int
	// Runs is the number of seeds executed at this size.
	Runs int
	// Successes counts runs that elected a valid unique leader (OK; under
	// WithFaults, restricted to surviving nodes).
	Successes int
	// SuccessRate is Successes/Runs — the election-success rate, the headline
	// resilience measure under fault injection.
	SuccessRate float64
	// Messages summarizes the message complexity across seeds.
	Messages Summary
	// Time summarizes the time complexity across seeds: rounds on the sync
	// engine, time units on the async simulator, zero on the live engine.
	Time Summary
	// MeanCrashed, MeanDropped and MeanDuplicated are the mean fault-injection
	// counters per run (all zero without WithFaults).
	MeanCrashed    float64
	MeanDropped    float64
	MeanDuplicated float64
}

// BatchResult is the outcome of one RunMany.
type BatchResult struct {
	// Runs holds every per-seed Result in deterministic order: size-major,
	// seed-minor (Runs[i*len(Seeds)+j] is size Ns[i] with seed Seeds[j]).
	Runs []Result
	// Aggregates holds one Aggregate per size, in Ns order.
	Aggregates []Aggregate
}

// RunMany fans the batch's (size, seed) grid across a worker pool and
// returns every per-seed result plus per-size aggregates. Each run is an
// independent Run call, so on the deterministic engines the results are
// byte-identical whatever the worker count — RunMany(…, Workers: 1) and
// RunMany(…, Workers: 8) agree. The first run error aborts the batch.
func RunMany(spec Spec, b Batch) (*BatchResult, error) {
	ns := b.Ns
	if len(ns) == 0 {
		ns = []int{64}
	}
	seeds := b.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	workers := b.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if total := len(ns) * len(seeds); workers > total {
		workers = total
	}

	type job struct {
		idx  int
		n    int
		seed uint64
	}
	jobs := make(chan job)
	runs := make([]Result, len(ns)*len(seeds))
	errs := make([]error, len(runs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				opts := make([]Option, 0, len(b.Options)+2)
				opts = append(opts, b.Options...)
				opts = append(opts, WithN(j.n), WithSeed(j.seed))
				runs[j.idx], errs[j.idx] = Run(spec, opts...)
			}
		}()
	}
	for i, n := range ns {
		for j, seed := range seeds {
			jobs <- job{idx: i*len(seeds) + j, n: n, seed: seed}
		}
	}
	close(jobs)
	wg.Wait()

	for idx, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("elect: run n=%d seed=%d: %w",
				ns[idx/len(seeds)], seeds[idx%len(seeds)], err)
		}
	}

	out := &BatchResult{Runs: runs, Aggregates: make([]Aggregate, 0, len(ns))}
	for i, n := range ns {
		agg := Aggregate{N: n, Runs: len(seeds)}
		msgs := make([]float64, 0, len(seeds))
		times := make([]float64, 0, len(seeds))
		for j := range seeds {
			r := runs[i*len(seeds)+j]
			if r.OK {
				agg.Successes++
			}
			msgs = append(msgs, float64(r.Messages))
			if r.Engine == EngineSync {
				times = append(times, float64(r.Rounds))
			} else {
				times = append(times, r.TimeUnits)
			}
			agg.MeanCrashed += float64(len(r.Crashed))
			agg.MeanDropped += float64(r.Dropped)
			agg.MeanDuplicated += float64(r.Duplicated)
		}
		agg.SuccessRate = float64(agg.Successes) / float64(agg.Runs)
		agg.MeanCrashed /= float64(agg.Runs)
		agg.MeanDropped /= float64(agg.Runs)
		agg.MeanDuplicated /= float64(agg.Runs)
		agg.Messages = newSummary(msgs)
		agg.Time = newSummary(times)
		out.Aggregates = append(out.Aggregates, agg)
	}
	return out, nil
}
