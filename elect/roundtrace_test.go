package elect

import (
	"reflect"
	"testing"
)

// TestRoundTraceTimeline runs traced and untraced executions of the same
// configuration on both engines and asserts (a) the timeline is internally
// consistent — per-round messages/words sum to the Result totals, rounds are
// contiguous — and (b) the probe is purely observational: every other Result
// field is identical to the untraced run's.
func TestRoundTraceTimeline(t *testing.T) {
	for _, tc := range []struct {
		spec string
		sync bool
	}{
		{"tradeoff", true},
		{"kuttenmoses", true},
		{"asynctradeoff", false},
	} {
		t.Run(tc.spec, func(t *testing.T) {
			spec := mustSpec(t, tc.spec)
			opts := []Option{WithN(48), WithSeed(7)}
			plain, err := Run(spec, opts...)
			if err != nil {
				t.Fatal(err)
			}
			traced, err := Run(spec, append(opts, WithRoundTrace())...)
			if err != nil {
				t.Fatal(err)
			}
			if len(traced.RoundTrace) == 0 {
				t.Fatal("traced run has empty RoundTrace")
			}

			var msgs, words, deliv int64
			first := 1
			if !tc.sync {
				first = 0
			}
			for i, s := range traced.RoundTrace {
				if s.Round != first+i {
					t.Errorf("RoundTrace[%d].Round = %d, want %d", i, s.Round, first+i)
				}
				msgs += s.Messages
				words += s.Words
				deliv += s.Deliveries
				var kindSum int64
				for _, c := range s.Kinds {
					kindSum += c
				}
				if kindSum != s.Messages {
					t.Errorf("round %d: kinds sum %d != messages %d", s.Round, kindSum, s.Messages)
				}
				if s.Active > traced.N || s.Woke > traced.N || s.Decided > traced.N {
					t.Errorf("round %d: counts exceed n: %+v", s.Round, s)
				}
			}
			if msgs != traced.Messages {
				t.Errorf("timeline messages = %d, Result.Messages = %d", msgs, traced.Messages)
			}
			if words != traced.Words {
				t.Errorf("timeline words = %d, Result.Words = %d", words, traced.Words)
			}
			if deliv == 0 {
				t.Error("timeline recorded no deliveries")
			}
			if tc.sync && len(traced.RoundTrace) != traced.Rounds {
				t.Errorf("timeline has %d rounds, Result.Rounds = %d",
					len(traced.RoundTrace), traced.Rounds)
			}

			// The probe must not perturb the execution.
			traced.RoundTrace = nil
			if !reflect.DeepEqual(plain, traced) {
				t.Errorf("probe perturbed the run:\nplain  = %+v\ntraced = %+v", plain, traced)
			}
		})
	}
}

// TestRoundTraceWireRoundTrip pins that the timeline survives the v1 codec.
func TestRoundTraceWireRoundTrip(t *testing.T) {
	res, err := Run(mustSpec(t, "tradeoff"), WithN(32), WithSeed(3), WithRoundTrace())
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.RoundTrace, back.RoundTrace) {
		t.Errorf("timeline did not round-trip:\nin  = %+v\nout = %+v", res.RoundTrace, back.RoundTrace)
	}
}

// TestRoundTraceLiveRejected pins the option/engine validation.
func TestRoundTraceLiveRejected(t *testing.T) {
	_, err := Run(mustSpec(t, "asynctradeoff"), WithN(8), WithEngine(EngineLive), WithRoundTrace())
	if err == nil {
		t.Fatal("WithRoundTrace on the live engine did not error")
	}
}

// TestRoundTraceFingerprint pins the cache-key contract: tracing changes the
// key (a traced Result carries bytes the untraced one lacks), while untraced
// keys are untouched by the feature's existence.
func TestRoundTraceFingerprint(t *testing.T) {
	spec := mustSpec(t, "tradeoff")
	plain, err := Fingerprint(spec, WithN(16), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Fingerprint(spec, WithN(16), WithSeed(1), WithRoundTrace())
	if err != nil {
		t.Fatal(err)
	}
	if plain == traced {
		t.Error("traced and untraced runs share a fingerprint")
	}
}
