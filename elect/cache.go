package elect

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"cliquelect/internal/topo"
)

// Cache is the byte-level store consulted by RunCached and Batch.Cache:
// values are EncodeResult wire bytes keyed by Fingerprint content hashes.
// Implementations must be safe for concurrent use (RunMany workers share
// one cache); internal/resultcache provides the standard in-memory +
// on-disk implementation. Put may drop entries (bounded caches evict), and
// Get may miss spuriously — the contract is only that a hit returns exactly
// the bytes that were Put under that key.
type Cache interface {
	Get(key string) ([]byte, bool)
	Put(key string, value []byte)
}

// fingerprintVersion is hashed into every key, so any change to the
// canonical payload below starts a fresh key space instead of aliasing
// entries written by older binaries.
const fingerprintVersion = "cliquelect-fp-v1"

// fingerprintPayload is the canonical encoding of everything that can
// influence a deterministic run's Result. Field order is frozen (the hash
// preimage is its JSON); adding a run-affecting option to the package means
// adding a field here and bumping fingerprintVersion.
type fingerprintPayload struct {
	Version   string       `json:"version"`
	Spec      string       `json:"spec"`
	Engine    string       `json:"engine"`
	N         int          `json:"n"`
	Seed      uint64       `json:"seed"`
	Params    Params       `json:"params"`
	IDs       []int64      `json:"ids"`
	WakeCount int          `json:"wake_count"`
	WakeSet   []int        `json:"wake_set"`
	Delays    DelayProfile `json:"delays"`
	Budget    int64        `json:"budget"`
	Explicit  bool         `json:"explicit"`
	Trace     bool         `json:"trace"`
	Faults    faultsKey    `json:"faults"`
	// Topo is the canonical topology spec; the clique canonicalizes to ""
	// and is omitted, so every clique key's preimage is byte-identical to
	// the pre-topology key space (pinned by TestFingerprintGolden).
	Topo string `json:"topo,omitempty"`
	// RoundTrace distinguishes traced runs — their Result carries a timeline
	// the untraced wire bytes lack. Trailing omitempty (like Topo): untraced
	// keys keep their exact pre-round-trace preimages.
	RoundTrace bool `json:"round_trace,omitempty"`
}

// faultsKey is FaultPlan minus NewAdversary, which has no canonical
// encoding (it is an opaque factory) and therefore makes a run uncacheable.
type faultsKey struct {
	CrashRate   float64 `json:"crash_rate"`
	CrashWindow float64 `json:"crash_window"`
	Crashes     []Crash `json:"crashes"`
	DropRate    float64 `json:"drop_rate"`
	DropFirst   int     `json:"drop_first"`
	DupRate     float64 `json:"dup_rate"`
}

// Fingerprint returns the content-address of the run that Run(spec, opts...)
// would execute: a hex SHA-256 over a canonical encoding of the spec name,
// resolved engine, n, seed, parameters, ID assignment, wake policy, delay
// profile, budget, explicit/trace flags and fault plan. Two option lists
// that resolve to the same configuration — whatever their order, and whether
// they reach Run directly or through RunMany's grid — produce the same key;
// configurations that can differ in any observable way never share one.
//
// Only deterministic executions have fingerprints: EngineLive runs and
// plans with a FaultPlan.NewAdversary factory return an error, which
// RunCached treats as "bypass the cache".
func Fingerprint(spec Spec, opts ...Option) (string, error) {
	cfg := defaultRunConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return cfg.fingerprint(spec)
}

func (c *runConfig) fingerprint(spec Spec) (string, error) {
	if spec.buildSync == nil && spec.buildAsync == nil {
		return "", fmt.Errorf("elect: spec %q was not obtained from the registry (use Lookup or Registry)", spec.Name)
	}
	engine := c.resolveEngine(spec)
	if engine == EngineLive {
		return "", fmt.Errorf("elect: %s engine runs are nondeterministic and have no fingerprint", engine)
	}
	if c.faults.NewAdversary != nil {
		return "", fmt.Errorf("elect: fault plans with a NewAdversary factory have no canonical encoding and no fingerprint")
	}
	topoCanon, err := topo.Canonical(c.topo)
	if err != nil {
		return "", err
	}
	payload := fingerprintPayload{
		Version:   fingerprintVersion,
		Spec:      spec.Name,
		Engine:    engine.String(),
		N:         c.n,
		Seed:      c.seed,
		Params:    c.params,
		IDs:       c.ids,
		WakeCount: c.wakeCount,
		WakeSet:   c.wakeSet,
		Delays:    c.delays,
		Budget:    c.budget,
		Explicit:  c.explicit,
		Trace:     c.trace,
		Faults: faultsKey{
			CrashRate:   c.faults.CrashRate,
			CrashWindow: c.faults.CrashWindow,
			Crashes:     c.faults.Crashes,
			DropRate:    c.faults.DropRate,
			DropFirst:   c.faults.DropFirst,
			DupRate:     c.faults.DupRate,
		},
		Topo:       topoCanon,
		RoundTrace: c.roundTrace,
	}
	data, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("elect: encoding fingerprint: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// RunCached is Run with a read-through result cache. On a hit it decodes
// and returns the stored Result without executing anything — byte-for-byte
// what the original run produced — and reports hit=true. On a miss it runs,
// stores the encoded Result, and reports hit=false.
//
// Uncacheable configurations (nil cache, EngineLive, adaptive adversaries)
// fall through to a plain Run with hit=false; configuration errors surface
// from that Run exactly as they would without a cache. A corrupted cache
// entry is treated as a miss and overwritten.
func RunCached(cache Cache, spec Spec, opts ...Option) (Result, bool, error) {
	if cache == nil {
		res, err := Run(spec, opts...)
		return res, false, err
	}
	key, err := Fingerprint(spec, opts...)
	if err != nil {
		res, err := Run(spec, opts...)
		return res, false, err
	}
	if data, ok := cache.Get(key); ok {
		if res, err := DecodeResult(data); err == nil {
			return res, true, nil
		}
	}
	res, err := Run(spec, opts...)
	if err != nil {
		return res, false, err
	}
	if data, err := EncodeResult(res); err == nil {
		cache.Put(key, data)
	}
	return res, false, nil
}
