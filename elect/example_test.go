package elect_test

import (
	"fmt"

	"cliquelect/elect"
	"cliquelect/internal/resultcache"
)

// ExampleRun elects a leader among 256 nodes with the paper's headline
// tradeoff algorithm (Theorem 3.10). Everything about a deterministic run —
// ID assignment, port wiring, protocol coins — derives from the seed, so
// the outcome below is reproducible on any machine.
func ExampleRun() {
	spec, err := elect.Lookup("tradeoff")
	if err != nil {
		panic(err)
	}
	res, err := elect.Run(spec,
		elect.WithN(256),
		elect.WithSeed(7),
		elect.WithParams(elect.Params{K: 4}),
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ok=%v leader=node %d rounds=%d messages=%d\n",
		res.OK, res.Leader, res.Rounds, res.Messages)
	// Output:
	// ok=true leader=node 98 rounds=5 messages=2704
}

// ExampleRunMany sweeps one spec across sizes and seeds. The grid fans out
// over the sharded parallel executor, and the per-seed results are
// byte-identical whatever the worker count — Workers only changes how fast
// the same BatchResult appears.
func ExampleRunMany() {
	spec, err := elect.Lookup("tradeoff")
	if err != nil {
		panic(err)
	}
	batch, err := elect.RunMany(spec, elect.Batch{
		Ns:    []int{64, 128},
		Seeds: elect.Seeds(1, 10), // seeds 1..10 at every size
	})
	if err != nil {
		panic(err)
	}
	for _, agg := range batch.Aggregates {
		fmt.Printf("n=%-4d runs=%d success=%.2f mean msgs=%.1f\n",
			agg.N, agg.Runs, agg.SuccessRate, agg.Messages.Mean)
	}
	// Output:
	// n=64   runs=10 success=1.00 mean msgs=676.8
	// n=128  runs=10 success=1.00 mean msgs=1803.7
}

// ExampleRunCached shows the serving layer's memoization: deterministic
// runs are content-addressed by elect.Fingerprint, so repeating one through
// a cache replays the stored bytes instead of re-executing the election.
func ExampleRunCached() {
	spec, err := elect.Lookup("tradeoff")
	if err != nil {
		panic(err)
	}
	cache := resultcache.New() // in-memory; WithDir adds a disk tier
	opts := []elect.Option{elect.WithN(128), elect.WithSeed(3)}

	first, hit1, err := elect.RunCached(cache, spec, opts...)
	if err != nil {
		panic(err)
	}
	again, hit2, err := elect.RunCached(cache, spec, opts...)
	if err != nil {
		panic(err)
	}
	fmt.Printf("first: hit=%v leader=%d\n", hit1, first.Leader)
	fmt.Printf("again: hit=%v leader=%d same=%v\n", hit2, again.Leader, first.Leader == again.Leader)
	// Output:
	// first: hit=false leader=108
	// again: hit=true leader=108 same=true
}

// ExampleWithFaults injects a deterministic fault plan: each node
// crash-stops with probability 0.05 and every message is dropped with
// probability 0.01, all driven by the run's seed. OK then means a unique
// *surviving* leader was elected — crashed nodes' outputs are void.
func ExampleWithFaults() {
	spec, err := elect.Lookup("tradeoff")
	if err != nil {
		panic(err)
	}
	res, err := elect.Run(spec,
		elect.WithN(128),
		elect.WithSeed(5),
		elect.WithFaults(elect.FaultPlan{CrashRate: 0.05, DropRate: 0.01}),
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ok=%v crashed=%d dropped=%d\n", res.OK, len(res.Crashed), res.Dropped)
	// Output:
	// ok=true crashed=1 dropped=13
}
