package elect

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestWithTopologyRuns drives the public API across every generated family:
// each run elects a leader, reports the graph shape, and reproduces
// byte-identically from the same seed.
func TestWithTopologyRuns(t *testing.T) {
	spec, err := Lookup("kuttenmoses")
	if err != nil {
		t.Fatal(err)
	}
	for _, topoSpec := range []string{"ring", "torus", "rreg:d=8", "power:m=4", "edges:0-1,1-2,2-3,3-0"} {
		n := 64
		if strings.HasPrefix(topoSpec, "edges:") {
			n = 4
		}
		run := func() Result {
			res, err := Run(spec, WithN(n), WithSeed(11), WithTopology(topoSpec))
			if err != nil {
				t.Fatalf("%s: %v", topoSpec, err)
			}
			return res
		}
		res := run()
		if !res.OK {
			t.Fatalf("%s: election failed: %+v", topoSpec, res)
		}
		if res.Topo == "" || res.Diameter <= 0 || res.GraphEdges <= 0 {
			t.Fatalf("%s: graph metadata missing: topo=%q diameter=%d edges=%d",
				topoSpec, res.Topo, res.Diameter, res.GraphEdges)
		}
		if again := run(); !reflect.DeepEqual(res, again) {
			t.Fatalf("%s: same seed produced different results", topoSpec)
		}
	}
}

func TestWithTopologyCliqueIsDefault(t *testing.T) {
	// "clique" and "" are the same configuration: identical results,
	// identical fingerprints, no graph metadata.
	spec, err := Lookup("tradeoff")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(spec, WithN(128), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	aliased, err := Run(spec, WithN(128), WithSeed(3), WithTopology("clique"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, aliased) {
		t.Fatal("WithTopology(\"clique\") changed the result")
	}
	if aliased.Topo != "" || aliased.Diameter != 0 || aliased.GraphEdges != 0 {
		t.Fatalf("clique run carries graph metadata: %+v", aliased)
	}
	fpPlain, err := Fingerprint(spec, WithN(128), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	fpAliased, err := Fingerprint(spec, WithN(128), WithSeed(3), WithTopology("clique"))
	if err != nil {
		t.Fatal(err)
	}
	if fpPlain != fpAliased {
		t.Fatalf("clique alias changed the fingerprint: %s vs %s", fpPlain, fpAliased)
	}
}

func TestWithTopologyErrors(t *testing.T) {
	kutten, err := Lookup("kuttenmoses")
	if err != nil {
		t.Fatal(err)
	}
	tradeoff, err := Lookup("tradeoff")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(tradeoff, WithN(64), WithTopology("ring")); err == nil {
		t.Fatal("clique-only spec accepted a ring")
	} else if !strings.Contains(err.Error(), "clique") {
		t.Fatalf("error should list supported topologies: %v", err)
	}
	if _, err := Run(kutten, WithN(64), WithTopology("lattice")); err == nil {
		t.Fatal("unknown topology spec accepted")
	}
	if _, err := Run(kutten, WithN(64), WithTopology("ring"), WithEngine(EngineLive)); err == nil {
		t.Fatal("live engine accepted a topology")
	}
}

// TestTopologyFingerprintsDistinct is the fingerprint-discipline satellite:
// across topologies, sizes and seeds, no two distinct configurations may
// share a cache key (a collision would replay the wrong run's bytes).
func TestTopologyFingerprintsDistinct(t *testing.T) {
	spec, err := Lookup("kpprt")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for _, topoSpec := range []string{"", "ring", "torus", "rreg:d=4", "rreg:d=8", "power:m=2"} {
		for _, n := range []int{32, 64} {
			for seed := uint64(1); seed <= 3; seed++ {
				opts := []Option{WithN(n), WithSeed(seed)}
				if topoSpec != "" {
					opts = append(opts, WithTopology(topoSpec))
				}
				fp, err := Fingerprint(spec, opts...)
				if err != nil {
					t.Fatal(err)
				}
				cfg := fmt.Sprintf("%s|n=%d|seed=%d", topoSpec, n, seed)
				if prev, dup := seen[fp]; dup {
					t.Fatalf("fingerprint collision: %q and %q both map to %s", prev, cfg, fp)
				}
				seen[fp] = cfg
			}
		}
	}
}

// TestBatchToposGrid pins the canonical topo-major, size-major, seed-minor
// grid: RunMany's Runs order, the per-(topo, n) aggregates, and RunRange
// slices of the same grid.
func TestBatchToposGrid(t *testing.T) {
	spec, err := Lookup("kuttenmoses")
	if err != nil {
		t.Fatal(err)
	}
	b := Batch{
		Ns:      []int{16, 32},
		Seeds:   []uint64{1, 2, 3},
		Topos:   []string{"ring", "torus"},
		Workers: 1,
	}
	batch, err := RunMany(spec, b)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(batch.Runs), GridSize(b.Ns, b.Seeds, b.Topos); got != want {
		t.Fatalf("grid has %d runs, want %d", got, want)
	}
	wantTopos := []string{"ring", "ring", "torus", "torus"}
	wantNs := []int{16, 32, 16, 32}
	if len(batch.Aggregates) != 4 {
		t.Fatalf("got %d aggregates, want 4", len(batch.Aggregates))
	}
	for g, agg := range batch.Aggregates {
		if agg.Topo != wantTopos[g] || agg.N != wantNs[g] || agg.Runs != 3 {
			t.Fatalf("aggregate %d = (%s, %d, %d runs), want (%s, %d, 3 runs)",
				g, agg.Topo, agg.N, agg.Runs, wantTopos[g], wantNs[g])
		}
	}
	for i, res := range batch.Runs {
		g := i / len(b.Seeds)
		if res.Topo != wantTopos[g] || res.N != wantNs[g] || res.Seed != b.Seeds[i%len(b.Seeds)] {
			t.Fatalf("run %d = (topo %s, n %d, seed %d), want (%s, %d, %d)",
				i, res.Topo, res.N, res.Seed, wantTopos[g], wantNs[g], b.Seeds[i%len(b.Seeds)])
		}
	}
	// RunRange over an arbitrary slice of the grid reproduces RunMany's cells.
	part, err := RunRange(spec, b, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range part {
		if !reflect.DeepEqual(res, batch.Runs[4+i]) {
			t.Fatalf("RunRange cell %d differs from RunMany", 4+i)
		}
	}
	if _, err := RunRange(spec, b, 11, 2); err == nil {
		t.Fatal("out-of-grid range accepted")
	}
}
