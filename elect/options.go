package elect

import "cliquelect/internal/simasync"

// DelayProfile names an adversarial delay scheduler for the asynchronous
// simulator. The live engine ignores delays: its schedule is whatever the Go
// runtime produces.
type DelayProfile string

// Delay profiles.
const (
	// DelayUnit delivers every message after exactly one time unit — the
	// synchronous-like worst case (the default).
	DelayUnit DelayProfile = "unit"
	// DelayUniform draws each delay uniformly from [0.05, 1].
	DelayUniform DelayProfile = "uniform"
	// DelaySkew makes every third sender slow (delay 1) and the rest fast.
	DelaySkew DelayProfile = "skew"
)

// delayDef couples a profile name with its scheduler constructor.
type delayDef struct {
	profile DelayProfile
	policy  func() simasync.DelayPolicy
}

// delayProfiles is the registry of delay schedulers: name resolution for
// ParseDelays/WithDelays and the policy construction for the async engine
// live in this one table (see knobTable).
var delayProfiles = knobTable[delayDef]{kind: "delay profile", entries: []knobEntry[delayDef]{
	{"", delayDef{DelayUnit, func() simasync.DelayPolicy { return simasync.UnitDelay{} }}},
	{"unit", delayDef{DelayUnit, func() simasync.DelayPolicy { return simasync.UnitDelay{} }}},
	{"uniform", delayDef{DelayUniform, func() simasync.DelayPolicy { return simasync.UniformDelay{Lo: 0.05} }}},
	{"skew", delayDef{DelaySkew, func() simasync.DelayPolicy { return simasync.SkewDelay{Fast: 0.05, Mod: 3} }}},
}}

// ParseDelays resolves a delay-profile name (as used by CLI flags). The
// empty string means DelayUnit.
func ParseDelays(name string) (DelayProfile, error) {
	def, err := delayProfiles.lookup(name)
	if err != nil {
		return "", err
	}
	return def.profile, nil
}

// delayPolicy builds the async engine's scheduler for a profile.
func delayPolicy(p DelayProfile) (simasync.DelayPolicy, error) {
	def, err := delayProfiles.lookup(string(p))
	if err != nil {
		return nil, err
	}
	return def.policy(), nil
}

// runConfig is the resolved option set of one Run.
type runConfig struct {
	n          int
	seed       uint64
	params     Params
	ids        []int64
	wakeCount  int
	wakeSet    []int
	delays     DelayProfile
	delaysSet  bool
	faults     FaultPlan
	engine     Engine
	trace      bool
	roundTrace bool
	budget     int64
	explicit   bool
	topo       string
}

// defaultRunConfig is the option baseline shared by Run, Fingerprint and
// RunCached — they must agree or cache keys would drift from executions.
func defaultRunConfig() runConfig {
	return runConfig{n: 64, engine: EngineAuto, delays: DelayUnit, params: DefaultParams()}
}

// resolveEngine maps EngineAuto to the spec model's natural simulator, the
// same way Run does.
func (c *runConfig) resolveEngine(spec Spec) Engine {
	if c.engine != EngineAuto {
		return c.engine
	}
	if spec.Model == Async {
		return EngineAsync
	}
	return EngineSync
}

// Option configures a Run (and, through Batch.Options, a RunMany).
type Option func(*runConfig)

// WithN sets the number of nodes. The default is 64.
func WithN(n int) Option { return func(c *runConfig) { c.n = n } }

// WithSeed sets the master seed that drives ID assignment, wake-set
// sampling, the engines' port mappings and every protocol coin flip. On the
// deterministic engines, identical seeds reproduce identical executions.
func WithSeed(seed uint64) Option { return func(c *runConfig) { c.seed = seed } }

// WithParams sets the protocol parameters (see DefaultParams).
func WithParams(p Params) Option { return func(c *runConfig) { c.params = p } }

// WithIDs supplies an explicit ID assignment (node i gets ids[i]) instead of
// the seed-derived random assignment from the spec's required universe. The
// assignment length must equal n and the IDs must be distinct.
func WithIDs(ids []int64) Option {
	return func(c *runConfig) { c.ids = append([]int64(nil), ids...) }
}

// WithWake makes the adversary wake only count random nodes (sampled from
// the seed) instead of all n; 0 restores simultaneous wake-up.
func WithWake(count int) Option { return func(c *runConfig) { c.wakeCount = count } }

// WithWakeSet makes the adversary wake exactly the given nodes. It overrides
// WithWake.
func WithWakeSet(nodes []int) Option {
	return func(c *runConfig) { c.wakeSet = append(make([]int, 0, len(nodes)), nodes...) }
}

// WithDelays selects the asynchronous simulator's delay scheduler. It is an
// error on the sync engine; the live engine ignores it.
func WithDelays(p DelayProfile) Option {
	return func(c *runConfig) { c.delays = p; c.delaysSet = true }
}

// WithEngine pins the execution engine; the default EngineAuto picks the
// spec model's natural simulator. It is an error to pin an engine the spec
// does not support (see Spec.Engines).
func WithEngine(e Engine) Option { return func(c *runConfig) { c.engine = e } }

// WithTrace records the run's communication graph (Definition 3.1) and
// attaches a TraceSummary to the Result. Only the sync engine supports
// tracing; it costs extra memory.
func WithTrace() Option { return func(c *runConfig) { c.trace = true } }

// WithRoundTrace records a per-round telemetry timeline (messages, words,
// payload kinds, active senders, wake-ups, decisions) and attaches it to
// Result.RoundTrace. On the sync engine one entry covers one round; on the
// async simulator one entry covers one unit-time window measured from the
// first wake-up. The probe is purely observational — it consumes no
// randomness, so a traced run's other Result fields are byte-identical to
// the untraced run's. The live engine does not support it.
func WithRoundTrace() Option { return func(c *runConfig) { c.roundTrace = true } }

// WithMessageBudget aborts the run once it has sent the given number of
// messages; a truncated run reports Truncated=true and OK=false. 0 means the
// engine's default runaway cap only. The synchronous engine checks the
// budget at round boundaries, so the final round may overshoot it — and a
// run that reaches quiescence inside that overshooting round completes
// normally (Truncated=false) even though Messages exceeds the budget.
func WithMessageBudget(messages int64) Option {
	return func(c *runConfig) { c.budget = messages }
}

// WithExplicit wraps a synchronous protocol in the explicit-election
// transformation (every node outputs the leader's ID; +1 round, +n-1
// messages). It is an error on asynchronous specs.
func WithExplicit() Option { return func(c *runConfig) { c.explicit = true } }

// WithTopology runs the protocol over an explicit graph topology instead of
// the default clique. The spec string names a generator family and its
// parameters — "ring", "torus", "rreg:d=8", "power:m=4",
// "edges:0-1,1-2,..." — see internal/topo for the grammar; "" and "clique"
// mean the default clique wiring. Seeded generators derive the graph
// deterministically from the run seed. It is an error to name a topology the
// spec does not support (Spec.Topologies) or to combine a non-clique
// topology with the live engine.
func WithTopology(spec string) Option { return func(c *runConfig) { c.topo = spec } }
