package elect

import (
	"fmt"
	"strings"
)

// knobTable is the one registry behind every CLI-facing parser of
// adversarial knobs (delay profiles, fault-plan fields): a named list of
// name → value entries with a uniform unknown-name error that enumerates
// the valid names. Adding an entry to a table is the whole registration —
// parsers, error messages and listings pick it up automatically.
type knobTable[T any] struct {
	kind    string // what the table parses, for error messages
	entries []knobEntry[T]
}

type knobEntry[T any] struct {
	name  string
	value T
}

// lookup resolves a name, returning the uniform unknown-name error on miss.
func (t knobTable[T]) lookup(name string) (T, error) {
	for _, e := range t.entries {
		if e.name == name {
			return e.value, nil
		}
	}
	var zero T
	return zero, fmt.Errorf("elect: unknown %s %q (have: %s)",
		t.kind, name, strings.Join(t.names(), ", "))
}

// names lists the registered names in table order, skipping the empty-string
// default alias.
func (t knobTable[T]) names() []string {
	out := make([]string, 0, len(t.entries))
	for _, e := range t.entries {
		if e.name != "" {
			out = append(out, e.name)
		}
	}
	return out
}
