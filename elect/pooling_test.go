package elect

import (
	"bytes"
	"testing"
)

// TestPooledReuseIdentity is the pooling contract of the engine overhaul:
// the engines recycle inbox arenas, port-map tables, event heaps and send
// buffers across runs, and none of that reuse may leak state between
// executions. For every registered spec on every deterministic engine it
// supports, a run repeated on warm pools must reproduce the cold run's
// encoded Result byte for byte — including the per-round and per-kind
// statistics, which are exactly the fields assembled from pooled scratch.
func TestPooledReuseIdentity(t *testing.T) {
	for _, spec := range Registry() {
		for _, engine := range spec.Engines() {
			if engine == EngineLive {
				continue // nondeterministic by design
			}
			opts := []Option{WithN(48), WithSeed(11), WithEngine(engine)}
			cold, err := Run(spec, opts...)
			if err != nil {
				t.Fatalf("%s/%s: %v", spec.Name, engine, err)
			}
			coldBytes, err := EncodeResult(cold)
			if err != nil {
				t.Fatal(err)
			}
			// Interleave other shapes so the pools are dirtied by runs of
			// different sizes before the repeat.
			if _, err := Run(spec, WithN(16), WithSeed(99), WithEngine(engine)); err != nil {
				t.Fatalf("%s/%s (dirtying run): %v", spec.Name, engine, err)
			}
			for i := 0; i < 3; i++ {
				warm, err := Run(spec, opts...)
				if err != nil {
					t.Fatalf("%s/%s warm #%d: %v", spec.Name, engine, i, err)
				}
				warmBytes, err := EncodeResult(warm)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(coldBytes, warmBytes) {
					t.Fatalf("%s/%s: warm run #%d diverges from cold run\ncold: %s\nwarm: %s",
						spec.Name, engine, i, coldBytes, warmBytes)
				}
			}
			// The per-round histogram must still account for every message
			// (sync engine; index 0 is unused by convention).
			if engine == EngineSync {
				var sum int64
				for _, c := range cold.PerRound {
					sum += c
				}
				if sum != cold.Messages {
					t.Fatalf("%s: PerRound sums to %d, Messages = %d", spec.Name, sum, cold.Messages)
				}
			}
		}
	}
}
