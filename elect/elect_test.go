package elect

import (
	"strings"
	"testing"
)

func TestLookupAllRegistered(t *testing.T) {
	for _, name := range Names() {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Name != name {
			t.Fatalf("lookup %q returned %q", name, spec.Name)
		}
		if spec.Model == Sync && spec.buildSync == nil {
			t.Fatalf("%s: sync spec without builder", name)
		}
		if spec.Model == Async && spec.buildAsync == nil {
			t.Fatalf("%s: async spec without builder", name)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if len(Registry()) != 12 {
		t.Fatalf("registry has %d entries", len(Registry()))
	}
}

// registryGolden pins the public listing: names in registry order with their
// capability metadata. A new protocol must be added here deliberately.
func TestRegistryGolden(t *testing.T) {
	want := []struct {
		name          string
		model         Model
		deterministic bool
		smallIDSpace  bool
	}{
		{"tradeoff", Sync, true, false},
		{"afekgafni", Sync, true, false},
		{"smallid", Sync, true, true},
		{"lasvegas", Sync, false, false},
		{"sublinear", Sync, false, false},
		{"advwake", Sync, false, false},
		{"spreadelect", Sync, false, false},
		{"kuttenmoses", Sync, true, false},
		{"kpprt", Sync, false, false},
		{"asynctradeoff", Async, false, false},
		{"asyncafekgafni", Async, true, false},
		{"asynclinear", Async, false, false},
	}
	got := Registry()
	if len(got) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(got), len(want))
	}
	for i, w := range want {
		s := got[i]
		if s.Name != w.name || s.Model != w.model ||
			s.Deterministic != w.deterministic || s.SmallIDSpace != w.smallIDSpace {
			t.Errorf("registry[%d] = {%s %s det=%v small=%v}, want {%s %s det=%v small=%v}",
				i, s.Name, s.Model, s.Deterministic, s.SmallIDSpace,
				w.name, w.model, w.deterministic, w.smallIDSpace)
		}
		if s.Paper == "" || s.Description == "" {
			t.Errorf("%s: missing paper/description metadata", s.Name)
		}
	}
}

func TestSpecEngines(t *testing.T) {
	for _, spec := range Registry() {
		engines := spec.Engines()
		if spec.Model == Sync {
			if len(engines) != 1 || engines[0] != EngineSync {
				t.Errorf("%s: engines = %v", spec.Name, engines)
			}
			if spec.Supports(EngineLive) || spec.Supports(EngineAsync) {
				t.Errorf("%s: claims async engine support", spec.Name)
			}
		} else {
			if len(engines) != 2 || !spec.Supports(EngineAsync) || !spec.Supports(EngineLive) {
				t.Errorf("%s: engines = %v", spec.Name, engines)
			}
			if spec.Supports(EngineSync) {
				t.Errorf("%s: claims sync engine support", spec.Name)
			}
		}
		if !spec.Supports(EngineAuto) {
			t.Errorf("%s: rejects EngineAuto", spec.Name)
		}
	}
}

func TestRunEveryAlgorithm(t *testing.T) {
	for _, spec := range Registry() {
		opts := []Option{WithN(64), WithSeed(7)}
		if spec.Name == "advwake" || spec.Name == "spreadelect" || spec.Name == "asynctradeoff" ||
			spec.Name == "asynclinear" {
			opts = append(opts, WithWake(3)) // adversarial wake-up models
		}
		res, err := Run(spec, opts...)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if !res.OK {
			// Randomized algorithms may fail occasionally; retry once with
			// another seed before declaring a problem.
			res, err = Run(spec, append(opts, WithSeed(99))...)
			if err != nil {
				t.Fatalf("%s: %v", spec.Name, err)
			}
			if !res.OK {
				t.Fatalf("%s failed twice: %+v", spec.Name, res)
			}
		}
		if res.Messages < 0 || res.Leader < 0 {
			t.Fatalf("%s: bad result %+v", spec.Name, res)
		}
		if res.LeaderID != res.IDs[res.Leader] {
			t.Fatalf("%s: LeaderID %d != IDs[%d] = %d",
				spec.Name, res.LeaderID, res.Leader, res.IDs[res.Leader])
		}
		if got := len(res.Decisions); got != 64 {
			t.Fatalf("%s: %d decisions", spec.Name, got)
		}
		if res.Decisions[res.Leader] != Leader {
			t.Fatalf("%s: leader's decision is %s", spec.Name, res.Decisions[res.Leader])
		}
		if out := res.String(); !strings.Contains(out, spec.Name) {
			t.Fatalf("%s: summary rendering: %s", spec.Name, out)
		}
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	for _, name := range []string{"tradeoff", "lasvegas", "asynctradeoff"} {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Run(spec, WithN(64), WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(spec, WithN(64), WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() || a.Messages != b.Messages || a.Leader != b.Leader {
			t.Fatalf("%s: same seed diverged: %+v vs %+v", name, a, b)
		}
	}
}

func TestRunParamValidation(t *testing.T) {
	spec, _ := Lookup("tradeoff")
	if _, err := Run(spec, WithN(16), WithParams(Params{K: 1})); err == nil {
		t.Fatal("bad K accepted")
	}
	if err := spec.Validate(Params{K: 1}); err == nil {
		t.Fatal("Validate accepted bad K")
	}
	if err := spec.Validate(DefaultParams()); err != nil {
		t.Fatalf("Validate rejected defaults: %v", err)
	}
	if _, err := Run(spec, WithN(0)); err == nil {
		t.Fatal("n=0 accepted")
	}
	aspec, _ := Lookup("asynctradeoff")
	if _, err := Run(aspec, WithN(16), WithDelays("bogus")); err == nil {
		t.Fatal("bad delay profile accepted")
	}
}

func TestRunOptionCompatibility(t *testing.T) {
	sync, _ := Lookup("tradeoff")
	async, _ := Lookup("asynctradeoff")
	if _, err := Run(sync, WithN(16), WithEngine(EngineAsync)); err == nil {
		t.Fatal("sync spec on async engine accepted")
	}
	if _, err := Run(async, WithN(16), WithEngine(EngineSync)); err == nil {
		t.Fatal("async spec on sync engine accepted")
	}
	if _, err := Run(async, WithN(16), WithTrace()); err == nil {
		t.Fatal("trace on async engine accepted")
	}
	if _, err := Run(async, WithN(16), WithExplicit()); err == nil {
		t.Fatal("explicit on async spec accepted")
	}
	if _, err := Run(sync, WithN(16), WithDelays(DelayUniform)); err == nil {
		t.Fatal("delays on sync engine accepted")
	}
	if _, err := Run(sync, WithN(16), WithWakeSet([]int{99})); err == nil {
		t.Fatal("out-of-range wake set accepted")
	}
	if _, err := Run(sync, WithN(16), WithWakeSet([]int{})); err == nil {
		t.Fatal("empty wake set accepted")
	}
	// A Spec not obtained from the registry has no builders; Run and
	// Validate must error, not panic.
	if _, err := Run(Spec{Name: "homemade", Model: Sync}, WithN(8)); err == nil {
		t.Fatal("builder-less sync spec accepted")
	}
	if _, err := Run(Spec{Name: "homemade", Model: Async}, WithN(8)); err == nil {
		t.Fatal("builder-less async spec accepted")
	}
	if err := (Spec{Name: "homemade", Model: Sync}).Validate(DefaultParams()); err == nil {
		t.Fatal("Validate accepted builder-less spec")
	}
}

func TestParseDelays(t *testing.T) {
	for _, name := range []string{"", "unit", "uniform", "skew"} {
		if _, err := ParseDelays(name); err != nil {
			t.Fatalf("%q: %v", name, err)
		}
	}
	if _, err := ParseDelays("bogus"); err == nil {
		t.Fatal("bad name accepted")
	}
}

func TestParseEngine(t *testing.T) {
	for name, want := range map[string]Engine{
		"": EngineAuto, "auto": EngineAuto, "sync": EngineSync,
		"async": EngineAsync, "live": EngineLive,
	} {
		got, err := ParseEngine(name)
		if err != nil || got != want {
			t.Fatalf("ParseEngine(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseEngine("bogus"); err == nil {
		t.Fatal("bad engine name accepted")
	}
	for _, e := range []Engine{EngineSync, EngineAsync, EngineLive} {
		if got, err := ParseEngine(e.String()); err != nil || got != e {
			t.Fatalf("ParseEngine(%q) = %v, %v — not inverse of String", e, got, err)
		}
	}
}

func TestRunExplicitMode(t *testing.T) {
	spec, _ := Lookup("tradeoff")
	plain, err := Run(spec, WithN(64), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Run(spec, WithN(64), WithSeed(3), WithExplicit())
	if err != nil {
		t.Fatal(err)
	}
	if !explicit.OK {
		t.Fatal("explicit run failed")
	}
	if explicit.Rounds != plain.Rounds+1 || explicit.Messages != plain.Messages+63 {
		t.Fatalf("explicit overhead wrong: %d/%d vs %d/%d",
			explicit.Rounds, explicit.Messages, plain.Rounds, plain.Messages)
	}
}

func TestRunWithIDs(t *testing.T) {
	spec, _ := Lookup("tradeoff")
	ids := make([]int64, 32)
	for i := range ids {
		ids[i] = int64(i + 1)
	}
	res, err := Run(spec, WithN(32), WithIDs(ids))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("run failed: %+v", res)
	}
	// The deterministic tradeoff elects the maximum ID, which we placed at
	// the last node.
	if res.Leader != 31 || res.LeaderID != 32 {
		t.Fatalf("leader = node %d (ID %d), want node 31 (ID 32)", res.Leader, res.LeaderID)
	}
	if _, err := Run(spec, WithN(16), WithIDs(ids)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Run(spec, WithN(2), WithIDs([]int64{1, 1})); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestRunMessageBudgetTruncates(t *testing.T) {
	spec, _ := Lookup("afekgafni")
	full, err := Run(spec, WithN(128), WithSeed(1), WithParams(Params{K: 1}))
	if err != nil {
		t.Fatal(err)
	}
	cut, err := Run(spec, WithN(128), WithSeed(1), WithParams(Params{K: 1}),
		WithMessageBudget(full.Messages/4))
	if err != nil {
		t.Fatal(err)
	}
	if !cut.Truncated {
		t.Fatalf("budget %d did not truncate a %d-message run", full.Messages/4, full.Messages)
	}
	if cut.OK {
		t.Fatal("truncated run reported OK")
	}

	aspec, _ := Lookup("asynctradeoff")
	afull, err := Run(aspec, WithN(64), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	acut, err := Run(aspec, WithN(64), WithSeed(1), WithMessageBudget(afull.Messages/4))
	if err != nil {
		t.Fatal(err)
	}
	if !acut.Truncated || acut.OK {
		t.Fatalf("async budget did not truncate: %+v", acut)
	}
	if acut.Messages > afull.Messages/4 {
		t.Fatalf("async run sent %d messages over budget %d", acut.Messages, afull.Messages/4)
	}
}

func TestRunWithTrace(t *testing.T) {
	spec, _ := Lookup("tradeoff")
	res, err := Run(spec, WithN(64), WithSeed(2), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no trace summary attached")
	}
	if res.Trace.Edges <= 0 || res.Trace.PortOpens <= 0 {
		t.Fatalf("empty trace: %+v", res.Trace)
	}
	// A successful election must weakly connect a majority (Corollary 3.7's
	// contrapositive); the deterministic tradeoff connects everyone who
	// competed with the eventual leader's announcements.
	if res.Trace.MaxComponent < 33 {
		t.Fatalf("max component %d < majority", res.Trace.MaxComponent)
	}
	plain, err := Run(spec, WithN(64), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatal("trace attached without WithTrace")
	}
	if plain.Messages != res.Messages || plain.Leader != res.Leader {
		t.Fatalf("tracing changed the run: %+v vs %+v", plain, res)
	}
}
