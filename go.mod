module cliquelect

go 1.24
