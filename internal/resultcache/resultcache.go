// Package resultcache is the standard implementation of elect.Cache: a
// content-addressed store for encoded election results, with a bounded
// in-memory LRU tier and an optional on-disk tier that persists across
// processes.
//
// Keys are elect.Fingerprint content hashes (lowercase hex SHA-256), values
// are elect.EncodeResult wire bytes. Because the deterministic engines are
// byte-reproducible — same spec, parameters, n, seed, engine and fault plan
// produce the identical Result — a hit replays exactly the bytes the
// original run produced; the cache never has to invalidate, only evict.
package resultcache

import (
	"container/list"
	"os"
	"path/filepath"
	"sync"

	"cliquelect/internal/obs"
)

// DefaultMaxEntries bounds the in-memory tier when WithMaxEntries is not
// given. At the typical few-KB-per-result entry size this caps memory in
// the tens of MB.
const DefaultMaxEntries = 4096

// Cache is a concurrency-safe content-addressed result store. The zero
// value is not usable; construct with New.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	max     int        // in-memory entry bound; <= 0 means unbounded
	dir     string     // on-disk tier root; "" disables it
	stats   Stats
	events  *obs.EventLog // nil means no journaling (Emit is a no-op)
}

type entry struct {
	key   string
	value []byte
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts Gets served from either tier; DiskHits is the subset that
	// had to read the disk tier (an eviction or another process wrote them).
	Hits     int64 `json:"hits"`
	DiskHits int64 `json:"disk_hits"`
	// Misses counts Gets served by neither tier.
	Misses int64 `json:"misses"`
	// Puts counts stores; DiskErrors counts best-effort disk writes or reads
	// that failed (the memory tier still works when the disk is sick).
	Puts       int64 `json:"puts"`
	DiskErrors int64 `json:"disk_errors"`
	// Evictions counts memory-tier LRU evictions.
	Evictions int64 `json:"evictions"`
	// Entries is the current memory-tier population.
	Entries int `json:"entries"`
}

// Option configures New.
type Option func(*Cache)

// WithMaxEntries bounds the in-memory tier to n entries, evicting least
// recently used beyond it; n <= 0 means unbounded. The default is
// DefaultMaxEntries.
func WithMaxEntries(n int) Option { return func(c *Cache) { c.max = n } }

// WithDir adds a persistent on-disk tier rooted at dir (created on first
// write): every Put also writes a file, and a memory miss falls back to a
// disk read. Evicted entries thus stay retrievable, and separate processes
// (or successive CLI invocations) share one cache.
func WithDir(dir string) Option { return func(c *Cache) { c.dir = dir } }

// New builds a cache; see WithMaxEntries and WithDir.
func New(opts ...Option) *Cache {
	c := &Cache{
		entries: make(map[string]*list.Element),
		order:   list.New(),
		max:     DefaultMaxEntries,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Get returns a copy of the bytes stored under key, consulting memory then
// disk. Disk finds are promoted back into the memory tier.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		v := clone(el.Value.(*entry).value)
		c.mu.Unlock()
		return v, true
	}
	c.mu.Unlock()

	if c.dir != "" && validKey(key) {
		data, err := os.ReadFile(c.path(key))
		if err == nil {
			c.mu.Lock()
			c.stats.Hits++
			c.stats.DiskHits++
			c.storeLocked(key, clone(data))
			c.mu.Unlock()
			return data, true
		}
		if !os.IsNotExist(err) {
			c.mu.Lock()
			c.stats.DiskErrors++
			c.mu.Unlock()
		}
	}

	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores value under key in both tiers. Keys that are not content
// hashes (see validKey) are rejected silently — the cache is content-
// addressed, nothing else belongs in it.
func (c *Cache) Put(key string, value []byte) {
	if !validKey(key) {
		return
	}
	v := clone(value)
	c.mu.Lock()
	c.stats.Puts++
	c.storeLocked(key, v)
	c.mu.Unlock()

	if c.dir != "" {
		if err := c.writeFile(key, value); err != nil {
			c.mu.Lock()
			c.stats.DiskErrors++
			c.mu.Unlock()
		}
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}

// storeLocked upserts an entry at the LRU front and evicts beyond the
// bound. It must tolerate keys that are already present — two Gets racing
// through the same disk promotion both land here, and a duplicate list
// element would desync the map from the LRU order. Caller holds c.mu.
func (c *Cache) storeLocked(key string, value []byte) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).value = value
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&entry{key: key, value: value})
	for c.max > 0 && c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
		c.stats.Evictions++
		c.events.Emit("cache.evict", "key", oldest.Value.(*entry).key)
	}
}

// SetEvents directs eviction events into log (the service layer wires the
// daemon's journal in). Call before concurrent use begins.
func (c *Cache) SetEvents(log *obs.EventLog) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = log
}

// path shards entries across 256 subdirectories by hash prefix so huge
// caches don't degrade into one giant directory.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// writeFile writes atomically (tmp + rename) so a concurrent reader never
// sees a torn entry.
func (c *Cache) writeFile(key string, value []byte) error {
	dir := filepath.Dir(c.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(value); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}

// validKey accepts exactly the lowercase-hex SHA-256 strings produced by
// elect.Fingerprint; anything else could escape the disk layout or collide
// with it.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		b := key[i]
		if (b < '0' || b > '9') && (b < 'a' || b > 'f') {
			return false
		}
	}
	return true
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }
