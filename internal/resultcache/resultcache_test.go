package resultcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// key derives a well-formed content hash for test payloads.
func key(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New()
	if _, ok := c.Get(key("a")); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key("a"), []byte("alpha"))
	got, ok := c.Get(key("a"))
	if !ok || string(got) != "alpha" {
		t.Fatalf("got %q ok=%v", got, ok)
	}
	// Mutating the returned slice must not corrupt the stored value.
	got[0] = 'X'
	again, _ := c.Get(key("a"))
	if string(again) != "alpha" {
		t.Fatalf("stored value corrupted: %q", again)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Puts != 1 || s.Entries != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestBadKeysRejected(t *testing.T) {
	c := New(WithDir(t.TempDir()))
	for _, bad := range []string{"", "short", "../../../../etc/passwd", key("x")[:63] + "Z"} {
		c.Put(bad, []byte("v"))
		if _, ok := c.Get(bad); ok {
			t.Errorf("bad key %q was stored", bad)
		}
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("bad keys populated the cache: %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(WithMaxEntries(2))
	c.Put(key("a"), []byte("a"))
	c.Put(key("b"), []byte("b"))
	c.Get(key("a")) // a is now most recent
	c.Put(key("c"), []byte("c"))
	if _, ok := c.Get(key("b")); ok {
		t.Error("least recently used entry survived eviction")
	}
	if _, ok := c.Get(key("a")); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := c.Get(key("c")); !ok {
		t.Error("new entry was evicted")
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDiskTierPersists(t *testing.T) {
	dir := t.TempDir()
	a := New(WithDir(dir))
	a.Put(key("a"), []byte("alpha"))

	// A fresh cache over the same dir serves the entry from disk.
	b := New(WithDir(dir))
	got, ok := b.Get(key("a"))
	if !ok || string(got) != "alpha" {
		t.Fatalf("disk read got %q ok=%v", got, ok)
	}
	if s := b.Stats(); s.DiskHits != 1 || s.Entries != 1 {
		t.Fatalf("stats %+v", s)
	}
	// ...and promotion means the second read is a memory hit.
	if _, ok := b.Get(key("a")); !ok {
		t.Fatal("promoted entry missing")
	}
	if s := b.Stats(); s.DiskHits != 1 || s.Hits != 2 {
		t.Fatalf("stats after promotion %+v", s)
	}

	// Evicted entries stay retrievable through the disk tier.
	small := New(WithDir(dir), WithMaxEntries(1))
	small.Put(key("a"), []byte("alpha"))
	small.Put(key("b"), []byte("beta"))
	if got, ok := small.Get(key("a")); !ok || string(got) != "alpha" {
		t.Fatalf("evicted entry lost: %q ok=%v", got, ok)
	}

	// The layout is sharded by hash prefix.
	k := key("a")
	if _, err := os.Stat(filepath.Join(dir, k[:2], k+".json")); err != nil {
		t.Fatalf("expected sharded layout: %v", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(WithMaxEntries(64), WithDir(t.TempDir()))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := key(fmt.Sprintf("%d", i%32))
				c.Put(k, []byte{byte(i)})
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if s := c.Stats(); s.Puts != 800 {
		t.Fatalf("stats %+v", s)
	}
}

// TestPromotionThenPutKeepsOneEntry: a disk promotion followed by a Put of
// the same key must upsert, not grow a duplicate LRU element.
func TestPromotionThenPutKeepsOneEntry(t *testing.T) {
	dir := t.TempDir()
	a := New(WithDir(dir))
	a.Put(key("a"), []byte("alpha"))

	b := New(WithDir(dir), WithMaxEntries(2))
	if _, ok := b.Get(key("a")); !ok { // promoted from disk
		t.Fatal("disk miss")
	}
	b.Put(key("a"), []byte("alpha2")) // upsert over the promoted entry
	if s := b.Stats(); s.Entries != 1 {
		t.Fatalf("entries %d after promotion+put, want 1", s.Entries)
	}
	// With the bound at 2, adding two more keys must evict exactly once —
	// a duplicate element for "a" would desync the count.
	b.Put(key("b"), []byte("beta"))
	b.Put(key("c"), []byte("gamma"))
	if s := b.Stats(); s.Entries != 2 || s.Evictions != 1 {
		t.Fatalf("stats %+v, want 2 entries / 1 eviction", s)
	}
	if got, ok := b.Get(key("c")); !ok || string(got) != "gamma" {
		t.Fatalf("hot entry lost: %q ok=%v", got, ok)
	}
}

func TestOverwriteRefreshes(t *testing.T) {
	c := New()
	c.Put(key("a"), []byte("one"))
	c.Put(key("a"), []byte("two"))
	got, ok := c.Get(key("a"))
	if !ok || !bytes.Equal(got, []byte("two")) {
		t.Fatalf("got %q ok=%v", got, ok)
	}
	if s := c.Stats(); s.Entries != 1 || s.Puts != 2 {
		t.Fatalf("stats %+v", s)
	}
}
