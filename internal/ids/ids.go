// Package ids constructs ID universes and ID assignments for clique networks.
//
// The paper ("Improved Tradeoffs for Leader Election", PODC 2023) is careful
// about the size of the ID universe U: Theorem 3.8 needs |U| >= 2n·log2(n)+n,
// Theorem 3.11 needs a much larger (super-polynomial) universe, and Theorem
// 3.15's algorithm only works when IDs come from the linear-size set
// {1..n·g(n)}. This package provides each of those regimes plus adversarial
// assignment patterns used by the lower-bound harnesses.
package ids

import (
	"fmt"
	"math"
	"sort"

	"cliquelect/internal/xrand"
)

// ID is a node identifier. The paper's ID universes are sets of integers;
// int64 comfortably holds every universe this repository instantiates.
type ID = int64

// Universe describes a set of candidate IDs {Lo..Hi} (inclusive) from which
// assignments are drawn.
type Universe struct {
	Lo, Hi ID
}

// Size returns |U|.
func (u Universe) Size() int64 { return int64(u.Hi - u.Lo + 1) }

// Contains reports whether x lies in the universe.
func (u Universe) Contains(x ID) bool { return x >= u.Lo && x <= u.Hi }

func (u Universe) String() string { return fmt.Sprintf("[%d..%d]", u.Lo, u.Hi) }

// LogUniverse returns the Θ(n log n)-sized universe {1..2n·ceil(log2 n)+n}
// required by Theorem 3.8. For n < 2 it degenerates to {1..n}.
func LogUniverse(n int) Universe {
	if n < 2 {
		return Universe{Lo: 1, Hi: ID(max(n, 1))}
	}
	l := int64(math.Ceil(math.Log2(float64(n))))
	return Universe{Lo: 1, Hi: 2*int64(n)*l + int64(n)}
}

// LinearUniverse returns the {1..n·g} universe of Theorem 3.15, where g is
// the g(n) >= 1 slack factor.
func LinearUniverse(n, g int) Universe {
	if g < 1 {
		g = 1
	}
	return Universe{Lo: 1, Hi: ID(n) * ID(g)}
}

// PolyUniverse returns a universe of size n^k, the "polynomial size" regime
// discussed for the CONGEST model.
func PolyUniverse(n, k int) Universe {
	hi := int64(1)
	for i := 0; i < k; i++ {
		hi *= int64(n)
	}
	return Universe{Lo: 1, Hi: hi}
}

// Assignment is an ordered list of distinct IDs; position i is the ID of
// node i. (The mapping of positions to ports is the port mapping's business,
// not the assignment's.)
type Assignment []ID

// Validate returns an error unless the assignment consists of n distinct IDs
// all contained in u.
func (a Assignment) Validate(u Universe) error {
	seen := make(map[ID]struct{}, len(a))
	for i, x := range a {
		if !u.Contains(x) {
			return fmt.Errorf("ids: node %d has ID %d outside universe %v", i, x, u)
		}
		if _, dup := seen[x]; dup {
			return fmt.Errorf("ids: duplicate ID %d", x)
		}
		seen[x] = struct{}{}
	}
	return nil
}

// Max returns the largest ID in the assignment. It panics on an empty
// assignment.
func (a Assignment) Max() ID {
	m := a[0]
	for _, x := range a[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the smallest ID in the assignment. It panics on an empty
// assignment.
func (a Assignment) Min() ID {
	m := a[0]
	for _, x := range a[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Random draws n distinct IDs uniformly from u without replacement.
func Random(u Universe, n int, rng *xrand.RNG) Assignment {
	if int64(n) > u.Size() {
		panic(fmt.Sprintf("ids: cannot draw %d distinct IDs from universe of size %d", n, u.Size()))
	}
	idx := rng.Sample(int(u.Size()), n)
	out := make(Assignment, n)
	for i, j := range idx {
		out[i] = u.Lo + ID(j)
	}
	return out
}

// Sequential assigns IDs u.Lo, u.Lo+1, ..., u.Lo+n-1 in node order. This is
// the easiest assignment for ID-guessing algorithms and the baseline for the
// small-ID-universe experiments.
func Sequential(u Universe, n int) Assignment {
	if int64(n) > u.Size() {
		panic(fmt.Sprintf("ids: universe %v too small for %d nodes", u, n))
	}
	out := make(Assignment, n)
	for i := range out {
		out[i] = u.Lo + ID(i)
	}
	return out
}

// Spread assigns maximally spread-out IDs across the universe: node i gets
// u.Lo + i*floor(|U|/n). With a linear universe this is the adversarial
// input for Algorithm 1 (Theorem 3.15): every probe window of d·g(n)
// consecutive IDs contains ~d·g(n)/g(n) = d senders, maximizing messages.
func Spread(u Universe, n int) Assignment {
	if int64(n) > u.Size() {
		panic(fmt.Sprintf("ids: universe %v too small for %d nodes", u, n))
	}
	step := u.Size() / int64(n)
	if step == 0 {
		step = 1
	}
	out := make(Assignment, n)
	for i := range out {
		out[i] = u.Lo + ID(int64(i)*step)
	}
	return out
}

// TopHeavy assigns the n largest IDs of the universe in descending node
// order, an adversarial pattern for max-ID election protocols (every node
// looks like a plausible winner to its referees).
func TopHeavy(u Universe, n int) Assignment {
	if int64(n) > u.Size() {
		panic(fmt.Sprintf("ids: universe %v too small for %d nodes", u, n))
	}
	out := make(Assignment, n)
	for i := range out {
		out[i] = u.Hi - ID(i)
	}
	return out
}

// Blocks partitions the universe into contiguous blocks of the given size
// and concatenates blockCount of them chosen uniformly at random (without
// replacement) into one assignment. The lower-bound harnesses (Lemma 3.6 and
// the LasVegasChecker) use block-structured assignments to compose isolated
// executions.
func Blocks(u Universe, blockSize, blockCount int, rng *xrand.RNG) Assignment {
	total := u.Size() / int64(blockSize)
	if int64(blockCount) > total {
		panic(fmt.Sprintf("ids: universe %v has only %d blocks of size %d", u, total, blockSize))
	}
	chosen := rng.Sample(int(total), blockCount)
	sort.Ints(chosen)
	out := make(Assignment, 0, blockSize*blockCount)
	for _, b := range chosen {
		base := u.Lo + ID(b)*ID(blockSize)
		for j := 0; j < blockSize; j++ {
			out = append(out, base+ID(j))
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
