package ids

import (
	"testing"
	"testing/quick"

	"cliquelect/internal/xrand"
)

func TestLogUniverseSize(t *testing.T) {
	cases := []struct {
		n    int
		want int64
	}{
		{2, 2*2*1 + 2},
		{4, 2*4*2 + 4},
		{8, 2*8*3 + 8},
		{1024, 2*1024*10 + 1024},
	}
	for _, c := range cases {
		if got := LogUniverse(c.n).Size(); got != c.want {
			t.Errorf("LogUniverse(%d).Size() = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestLogUniverseTiny(t *testing.T) {
	for _, n := range []int{0, 1} {
		u := LogUniverse(n)
		if u.Size() < 1 {
			t.Errorf("LogUniverse(%d) empty: %v", n, u)
		}
	}
}

func TestLinearUniverse(t *testing.T) {
	u := LinearUniverse(100, 3)
	if u.Lo != 1 || u.Hi != 300 {
		t.Fatalf("LinearUniverse(100,3) = %v", u)
	}
	if got := LinearUniverse(10, 0); got.Hi != 10 {
		t.Fatalf("g<1 should clamp to 1, got %v", got)
	}
}

func TestPolyUniverse(t *testing.T) {
	if got := PolyUniverse(10, 3).Size(); got != 1000 {
		t.Fatalf("PolyUniverse(10,3).Size() = %d", got)
	}
}

func TestRandomAssignmentValid(t *testing.T) {
	prop := func(seed uint64, sz uint8) bool {
		n := int(sz%64) + 2
		u := LogUniverse(n)
		a := Random(u, n, xrand.New(seed))
		return len(a) == n && a.Validate(u) == nil
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialAndSpread(t *testing.T) {
	u := LinearUniverse(8, 2) // [1..16]
	seq := Sequential(u, 8)
	if err := seq.Validate(u); err != nil {
		t.Fatal(err)
	}
	if seq[0] != 1 || seq[7] != 8 {
		t.Fatalf("Sequential = %v", seq)
	}
	sp := Spread(u, 8)
	if err := sp.Validate(u); err != nil {
		t.Fatal(err)
	}
	if sp[0] != 1 || sp[1] != 3 || sp[7] != 15 {
		t.Fatalf("Spread = %v", sp)
	}
}

func TestTopHeavy(t *testing.T) {
	u := Universe{Lo: 1, Hi: 100}
	a := TopHeavy(u, 5)
	want := Assignment{100, 99, 98, 97, 96}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("TopHeavy = %v, want %v", a, want)
		}
	}
	if err := a.Validate(u); err != nil {
		t.Fatal(err)
	}
}

func TestBlocksDisjointValid(t *testing.T) {
	u := Universe{Lo: 1, Hi: 1000}
	a := Blocks(u, 10, 6, xrand.New(5))
	if len(a) != 60 {
		t.Fatalf("len = %d", len(a))
	}
	if err := a.Validate(u); err != nil {
		t.Fatal(err)
	}
	// Each block must be 10 consecutive IDs.
	for b := 0; b < 6; b++ {
		base := a[b*10]
		for j := 0; j < 10; j++ {
			if a[b*10+j] != base+ID(j) {
				t.Fatalf("block %d not contiguous: %v", b, a[b*10:(b+1)*10])
			}
		}
	}
}

func TestValidateRejectsDuplicates(t *testing.T) {
	u := Universe{Lo: 1, Hi: 10}
	if err := (Assignment{1, 2, 2}).Validate(u); err == nil {
		t.Fatal("duplicate not rejected")
	}
	if err := (Assignment{1, 2, 11}).Validate(u); err == nil {
		t.Fatal("out-of-universe not rejected")
	}
}

func TestMinMax(t *testing.T) {
	a := Assignment{5, 1, 9, 3}
	if a.Min() != 1 || a.Max() != 9 {
		t.Fatalf("Min=%d Max=%d", a.Min(), a.Max())
	}
}

func TestRandomPanicsWhenTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Random(Universe{Lo: 1, Hi: 3}, 4, xrand.New(0))
}
