package service

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"cliquelect/elect/client"
	"cliquelect/internal/control/chaostest"
	"cliquelect/internal/distrib"
)

// TestControlPlaneHTTPSurface drives the split-brain regression through the
// real HTTP API: a fleet elects on virtual time (the chaostest harness
// supplies clock and fabric), the old coordinator is partitioned away, a
// new epoch is minted, and a LATE chunk dispatch still stamped with the old
// token is rejected with 409 + the new epoch — countable on /metrics.
func TestControlPlaneHTTPSurface(t *testing.T) {
	const ttl = 12 * time.Second
	cl, err := chaostest.New(3, ttl)
	if err != nil {
		t.Fatal(err)
	}
	cl.Step(ttl)
	oldCoord := cl.Coordinator()
	if oldCoord == "" {
		t.Fatal("no coordinator after bootstrap")
	}
	oldToken := cl.Node(oldCoord).Token()

	// Mount the real service over one of the WORKER nodes — the daemon that
	// will later receive the deposed coordinator's stale dispatch.
	var workerURL string
	for _, url := range cl.URLs() {
		if url != oldCoord {
			workerURL = url
			break
		}
	}
	node := cl.Node(workerURL)
	fleet, err := distrib.New(distrib.Config{Workers: []string{"http://peer-a", "http://peer-b"}})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Control: node, Fleet: fleet})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	c := client.New(ts.URL)

	// /healthz carries the control-plane role and epoch.
	h, err := c.Health(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if h.Role != "worker" || h.Epoch != oldToken {
		t.Fatalf("healthz role=%q epoch=%d, want worker/%d", h.Role, h.Epoch, oldToken)
	}

	// /v1/coordinator answers who leads.
	co, err := c.Coordinator(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if co.Self != workerURL || co.Role != "worker" || co.Coordinator != oldCoord {
		t.Fatalf("coordinator view %+v, want self=%s coordinator=%s", co, workerURL, oldCoord)
	}

	// /v1/lease over HTTP: a renewal from the standing holder is granted, a
	// stale campaigner is rejected with the standing vote, and malformed
	// requests are 400s.
	if resp, err := c.Lease(ctx(t), client.LeaseRequest{Epoch: oldToken, Holder: oldCoord}); err != nil || !resp.Granted {
		t.Fatalf("renewal over HTTP: %+v err=%v", resp, err)
	}
	if resp, err := c.Lease(ctx(t), client.LeaseRequest{Epoch: oldToken, Holder: "http://usurper"}); err != nil || resp.Granted {
		t.Fatalf("usurper granted: %+v err=%v", resp, err)
	} else if resp.Holder != oldCoord {
		t.Fatalf("rejection hides the standing holder: %+v", resp)
	}
	if _, err := c.Lease(ctx(t), client.LeaseRequest{Epoch: 99}); err == nil {
		t.Fatal("holderless lease accepted")
	}

	// Fleet batches are coordinator-only: this worker must redirect.
	_, err = c.Batch(ctx(t), client.BatchRequest{
		Spec: "tradeoff", Ns: []int{16}, Seeds: []uint64{1}, Fleet: true,
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
		t.Fatalf("fleet batch on a worker: %v, want 409", err)
	}
	if apiErr.Coordinator != oldCoord {
		t.Fatalf("409 names coordinator %q, want %q", apiErr.Coordinator, oldCoord)
	}

	// Depose: partition the old coordinator, let the majority elect anew.
	cl.Partition([]string{oldCoord})
	cl.Step(ttl)
	newEpoch := node.Token()
	if newEpoch <= oldToken {
		t.Fatalf("no new epoch after partition: %d", newEpoch)
	}

	// The deposed coordinator's LATE dispatch: a chunk still stamped with
	// the old token. The daemon answers 409 with the new epoch and the new
	// coordinator, both on the wire error.
	chunkReq := client.ChunkRequest{
		Spec: "tradeoff", Ns: []int{16}, Seeds: []uint64{1, 2}, Start: 0, Count: 2,
		Fence: oldToken,
	}
	_, err = c.Chunk(ctx(t), chunkReq)
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
		t.Fatalf("stale chunk: %v, want 409", err)
	}
	if apiErr.Epoch != newEpoch {
		t.Fatalf("409 carries epoch %d, want %d", apiErr.Epoch, newEpoch)
	}

	// A chunk stamped with the CURRENT token computes.
	chunkReq.Fence = newEpoch
	resp, err := c.Chunk(ctx(t), chunkReq)
	if err != nil || len(resp.Results) != 2 {
		t.Fatalf("current-token chunk: %v results=%d", err, len(resp.Results))
	}

	// The rejection is countable: /metrics exposes the fence-reject counter
	// and the advanced epoch.
	body := scrape(t, ts.URL)
	assertMetric(t, body, "electd_control_fence_rejects_total", "1")
	assertMetric(t, body, "electd_control_epoch", strconv.FormatUint(newEpoch, 10))
	// The majority elected one of the two survivors; the gauge tracks
	// whichever way it went.
	isCoord := "0"
	if node.IsCoordinator() {
		isCoord = "1"
	}
	assertMetric(t, body, "electd_control_is_coordinator", isCoord)

	// And /healthz moved with it.
	if h, err := c.Health(ctx(t)); err != nil || h.Epoch != newEpoch {
		t.Fatalf("healthz after deposition: %+v err=%v", h, err)
	}
}

// TestFleetBatchWithoutControl: daemons outside any fleet refuse fleet
// batches outright (400, not a redirect).
func TestFleetBatchWithoutControl(t *testing.T) {
	c, _ := newTestDaemon(t, Config{})
	_, err := c.Batch(ctx(t), client.BatchRequest{
		Spec: "tradeoff", Ns: []int{16}, Seeds: []uint64{1}, Fleet: true,
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("fleet batch on a standalone daemon: %v, want 400", err)
	}
	// The control routes are not mounted at all on standalone daemons.
	if _, err := c.Coordinator(ctx(t)); err == nil {
		t.Fatal("standalone daemon served /v1/coordinator")
	}
}

// TestChunkFenceHeaderFallback: the fencing token also rides the
// X-Elect-Epoch header, so body-less proxies can fence.
func TestChunkFenceHeaderFallback(t *testing.T) {
	const ttl = 12 * time.Second
	cl, err := chaostest.New(3, ttl)
	if err != nil {
		t.Fatal(err)
	}
	cl.Step(ttl)
	url := cl.URLs()[0]
	srv := New(Config{Control: cl.Node(url)})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	// Stale token in the header only; body carries no fence field.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/chunk",
		strings.NewReader(`{"spec":"tradeoff","ns":[16],"seeds":[1],"start":0,"count":1}`))
	req.Header.Set("Content-Type", "application/json")
	// Token 0 would be legacy-accepted, so mint a newer epoch by hand and
	// claim token 1 — genuinely stale regardless of the bootstrap epoch.
	cl.Node(url).HandleLease(client.LeaseRequest{Epoch: cl.Node(url).Token() + 1, Holder: "http://x"}, cl.Clock.Now())
	req.Header.Set(client.FenceHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("header-fenced stale chunk: %d, want 409", resp.StatusCode)
	}

	// A malformed fence header is a 400 — it must NOT degrade to token 0,
	// which would sail through fencing as an unfenced legacy dispatch.
	req, _ = http.NewRequest("POST", ts.URL+"/v1/chunk",
		strings.NewReader(`{"spec":"tradeoff","ns":[16],"seeds":[1],"start":0,"count":1}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(client.FenceHeader, "not-a-token")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed fence header: %d, want 400", resp.StatusCode)
	}
}

func assertMetric(t *testing.T, body, name, want string) {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			if got := strings.TrimSpace(strings.TrimPrefix(line, name)); got != want {
				t.Fatalf("%s = %s, want %s", name, got, want)
			}
			return
		}
	}
	t.Fatalf("metric %s not exposed", name)
}
