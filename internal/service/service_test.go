package service

import (
	"bytes"
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cliquelect/elect"
	"cliquelect/elect/client"
	"cliquelect/internal/resultcache"
)

// newTestDaemon mounts the service on an httptest server and returns a
// client against it.
func newTestDaemon(t *testing.T, cfg Config) (*client.Client, *Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return client.New(ts.URL), srv
}

func ctx(t *testing.T) context.Context {
	t.Helper()
	c, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return c
}

func TestSpecsEndpoint(t *testing.T) {
	c, _ := newTestDaemon(t, Config{})
	specs, err := c.Specs(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != len(elect.Registry()) {
		t.Fatalf("got %d specs, want %d", len(specs), len(elect.Registry()))
	}
	byName := map[string]client.SpecInfo{}
	for _, s := range specs {
		byName[s.Name] = s
	}
	tr, ok := byName["tradeoff"]
	if !ok || tr.Model != "sync" || !tr.Deterministic || len(tr.Engines) != 1 {
		t.Fatalf("tradeoff spec info %+v ok=%v", tr, ok)
	}
	if at := byName["asynctradeoff"]; len(at.Engines) != 2 {
		t.Fatalf("asynctradeoff engines %v", at.Engines)
	}
}

func TestSyncRunAndCacheSemantics(t *testing.T) {
	cache := resultcache.New()
	c, _ := newTestDaemon(t, Config{Cache: cache})
	req := client.RunRequest{Spec: "tradeoff", N: 128, Seed: 9,
		Options: client.Options{Params: &client.ParamSpec{K: intp(4)}}}

	cold, err := c.Run(ctx(t), req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit || cold.Result == nil || !cold.Result.OK || cold.Result.N != 128 {
		t.Fatalf("cold run %+v", cold)
	}
	// K=4 must have been merged over defaults (2k-3 = 5 rounds).
	if cold.Result.Rounds != 5 {
		t.Fatalf("params merge failed: rounds = %d, want 5", cold.Result.Rounds)
	}

	warm, err := c.Run(ctx(t), req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("repeat run missed the cache")
	}
	bypass := req
	bypass.NoCache = true
	direct, err := c.Run(ctx(t), bypass)
	if err != nil {
		t.Fatal(err)
	}
	if direct.CacheHit {
		t.Fatal("no_cache run reported a hit")
	}

	// All three must be byte-identical on the wire codec.
	cb, _ := elect.EncodeResult(*cold.Result)
	wb, _ := elect.EncodeResult(*warm.Result)
	db, _ := elect.EncodeResult(*direct.Result)
	if !bytes.Equal(cb, wb) || !bytes.Equal(wb, db) {
		t.Fatal("cached, warm and bypassed results differ")
	}

	h, err := c.Health(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Cache == nil || h.Cache.Hits < 1 || h.Cache.Puts < 1 {
		t.Fatalf("health %+v cache %+v", h, h.Cache)
	}
	if h.Jobs["done"] != 3 {
		t.Fatalf("job counts %+v", h.Jobs)
	}
}

func TestAsyncJobAndSSE(t *testing.T) {
	c, _ := newTestDaemon(t, Config{Cache: resultcache.New()})
	st, err := c.SubmitBatch(ctx(t), client.BatchRequest{
		Spec: "tradeoff", Ns: []int{32, 64}, SeedBase: 1, SeedCount: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Kind != "batch" || st.Total != 16 {
		t.Fatalf("submitted job %+v", st)
	}
	var mu sync.Mutex
	var events []client.JobStatus
	final, err := c.Stream(ctx(t), st.ID, func(s client.JobStatus) {
		mu.Lock()
		events = append(events, s)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Job.State != "done" || final.Job.Done != 16 {
		t.Fatalf("final %+v", final.Job)
	}
	if final.Batch == nil || len(final.Batch.Runs) != 16 || len(final.Batch.Aggregates) != 2 {
		t.Fatalf("batch result missing or wrong shape")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) == 0 || !events[len(events)-1].Terminal() {
		t.Fatalf("SSE events: %d, last terminal: %v", len(events), len(events) > 0 && events[len(events)-1].Terminal())
	}
}

func TestAsyncRunPollWithWait(t *testing.T) {
	c, _ := newTestDaemon(t, Config{})
	st, err := c.Submit(ctx(t), client.RunRequest{Spec: "lasvegas", N: 64, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Wait(ctx(t), st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Job.State != "done" || resp.Result == nil || !resp.Result.OK {
		t.Fatalf("polled job %+v result %v", resp.Job, resp.Result)
	}
	all, err := c.Jobs(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].ID != st.ID {
		t.Fatalf("job listing %+v", all)
	}
}

func TestRequestValidation(t *testing.T) {
	c, _ := newTestDaemon(t, Config{})
	cases := []client.RunRequest{
		{Spec: "bogus"},
		{Spec: "tradeoff", Options: client.Options{Engine: "warp"}},
		{Spec: "tradeoff", Options: client.Options{Delays: "unit"}}, // sync spec
		{Spec: "tradeoff", Options: client.Options{Faults: "bogus=1"}},
		{Spec: "asynctradeoff", Options: client.Options{Delays: "bogus"}},
	}
	for _, req := range cases {
		if _, err := c.Run(ctx(t), req); err == nil {
			t.Errorf("request %+v accepted", req)
		} else if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != 400 {
			t.Errorf("request %+v: got %v, want 400", req, err)
		}
	}
	// Execution-time failures surface as 422.
	if _, err := c.Run(ctx(t), client.RunRequest{Spec: "tradeoff",
		Options: client.Options{Params: &client.ParamSpec{K: intp(1)}}}); err == nil {
		t.Error("invalid K accepted")
	} else if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != 422 {
		t.Errorf("invalid K: got %v, want 422", err)
	}
	// Faults on the live engine are rejected at execution with a clear error.
	if _, err := c.Run(ctx(t), client.RunRequest{Spec: "asynctradeoff",
		Options: client.Options{Engine: "live", Params: &client.ParamSpec{K: intp(2)}, Faults: "drop=0.1"}}); err == nil {
		t.Error("live engine accepted faults")
	}
	// Unknown job is 404.
	if _, err := c.Job(ctx(t), "jdeadbeef0000"); err == nil {
		t.Error("unknown job returned 200")
	} else if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != 404 {
		t.Errorf("unknown job: got %v, want 404", err)
	}
	// seeds and seed_base/seed_count are mutually exclusive.
	if _, err := c.Batch(ctx(t), client.BatchRequest{Spec: "tradeoff",
		Seeds: []uint64{1}, SeedBase: 1, SeedCount: 2}); err == nil {
		t.Error("conflicting seed fields accepted")
	}
}

func TestCancelEndpoint(t *testing.T) {
	// Workers: 1 and a long batch first, so the second job stays queued.
	c, _ := newTestDaemon(t, Config{Workers: 1})
	blocker, err := c.SubmitBatch(ctx(t), client.BatchRequest{
		Spec: "tradeoff", Ns: []int{2048}, SeedCount: 64, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := c.Submit(ctx(t), client.RunRequest{Spec: "tradeoff"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(ctx(t), queued.ID); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Wait(ctx(t), queued.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Job.State != "canceled" {
		// The only legitimate escape is the blocker draining before the
		// cancel landed, freeing the worker to run the "queued" job.
		if b, berr := c.Job(ctx(t), blocker.ID); berr != nil || !b.Job.Terminal() {
			t.Fatalf("queued job state %q after cancel (blocker %+v, err %v)",
				resp.Job.State, b, berr)
		}
		t.Logf("blocker drained before cancel; skipping queued-cancel assertion")
	}
	if err := c.Cancel(ctx(t), blocker.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx(t), blocker.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Job.State != "canceled" && final.Job.State != "done" {
		t.Fatalf("blocker state %q after cancel", final.Job.State)
	}
}

func TestQueueFullIs503(t *testing.T) {
	c, _ := newTestDaemon(t, Config{Workers: 1, QueueDepth: 1})
	// The blocker must outlive the submission loop below by construction
	// (64 runs at n=4096 is seconds of work; the loop is milliseconds), so
	// the single worker stays busy and the depth-1 queue must overflow.
	blocker, err := c.SubmitBatch(ctx(t), client.BatchRequest{
		Spec: "tradeoff", Ns: []int{4096}, SeedCount: 64, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Cancel(ctx(t), blocker.ID)
	var saw503 bool
	for i := 0; i < 32; i++ {
		_, err := c.Submit(ctx(t), client.RunRequest{Spec: "tradeoff"})
		if apiErr, ok := err.(*client.APIError); ok && apiErr.StatusCode == 503 {
			saw503 = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !saw503 {
		t.Fatal("queue never reported 503")
	}
}

func intp(v int) *int { return &v }

// TestChunkEndpoint: POST /v1/chunk computes exactly the requested cell
// range, byte-identical to a local RunRange, reads through the daemon's
// cache, and rejects malformed ranges with 400.
func TestChunkEndpoint(t *testing.T) {
	cache := resultcache.New()
	c, _ := newTestDaemon(t, Config{Cache: cache})
	req := client.ChunkRequest{
		Spec: "tradeoff", Ns: []int{32, 64}, Seeds: []uint64{1, 2, 3},
		Start: 1, Count: 4,
		Options: client.Options{Params: &client.ParamSpec{K: intp(4)}},
	}
	resp, err := c.Chunk(ctx(t), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("%d results, want 4", len(resp.Results))
	}
	spec, _ := elect.Lookup("tradeoff")
	want, err := elect.RunRange(spec, elect.Batch{
		Ns: []int{32, 64}, Seeds: []uint64{1, 2, 3},
		Options: []elect.Option{elect.WithParams(elect.Params{K: 4, D: 2, G: 1, Eps: 1.0 / 16})},
	}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		wb, _ := elect.EncodeResult(want[i])
		gb, _ := elect.EncodeResult(resp.Results[i])
		if !bytes.Equal(wb, gb) {
			t.Fatalf("cell %d differs from local RunRange:\n %s\n %s", i, wb, gb)
		}
	}
	if cache.Stats().Puts != 4 {
		t.Fatalf("chunk cells not cached: %+v", cache.Stats())
	}
	// The same chunk again replays from the cache.
	if _, err := c.Chunk(ctx(t), req); err != nil {
		t.Fatal(err)
	}
	if cache.Stats().Hits < 4 {
		t.Fatalf("re-dispatched chunk missed the cache: %+v", cache.Stats())
	}

	// Malformed ranges and bad options are 400, execution failures 422.
	for _, bad := range []client.ChunkRequest{
		{Spec: "tradeoff", Ns: []int{32}, Seeds: []uint64{1}, Start: 0, Count: 2},
		{Spec: "tradeoff", Ns: []int{32}, Seeds: []uint64{1}, Start: -1, Count: 1},
		{Spec: "tradeoff", Ns: []int{32}, Seeds: []uint64{1}, Start: 0, Count: 0},
		{Spec: "bogus", Start: 0, Count: 1},
	} {
		if _, err := c.Chunk(ctx(t), bad); err == nil {
			t.Errorf("chunk %+v accepted", bad)
		} else if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != 400 {
			t.Errorf("chunk %+v: got %v, want 400", bad, err)
		}
	}
	if _, err := c.Chunk(ctx(t), client.ChunkRequest{
		Spec: "tradeoff", Ns: []int{32}, Seeds: []uint64{1}, Start: 0, Count: 1,
		Options: client.Options{Params: &client.ParamSpec{K: intp(1)}},
	}); err == nil {
		t.Error("invalid K accepted")
	} else if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != 422 {
		t.Errorf("invalid K: got %v, want 422", err)
	}
}

// TestHealthLoadGauges: /healthz exports the scheduler-facing gauges —
// batch_workers always, queue_depth/active_jobs tracking load.
func TestHealthLoadGauges(t *testing.T) {
	c, _ := newTestDaemon(t, Config{Workers: 1, BatchWorkers: 2})
	h, err := c.Health(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if h.BatchWorkers != 2 || h.QueueDepth != 0 || h.ActiveJobs != 0 {
		t.Fatalf("idle gauges %+v", h)
	}
	// A blocker on the single worker plus one queued job: active_jobs and
	// queue_depth must both read ≥ 1 while the blocker runs.
	blocker, err := c.SubmitBatch(ctx(t), client.BatchRequest{
		Spec: "tradeoff", Ns: []int{2048}, SeedCount: 64, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx(t), client.RunRequest{Spec: "tradeoff"}); err != nil {
		t.Fatal(err)
	}
	h, err = c.Health(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if h.ActiveJobs < 1 || h.QueueDepth < 1 {
		// Legitimate only if the blocker already drained.
		if b, berr := c.Job(ctx(t), blocker.ID); berr != nil || !b.Job.Terminal() {
			t.Fatalf("loaded gauges %+v (blocker %+v)", h, b)
		}
	}
	if err := c.Cancel(ctx(t), blocker.ID); err != nil {
		t.Fatal(err)
	}
	// Default BatchWorkers reports the effective value, never zero.
	c2, _ := newTestDaemon(t, Config{})
	if h, err := c2.Health(ctx(t)); err != nil || h.BatchWorkers < 1 {
		t.Fatalf("default batch_workers %+v err=%v", h, err)
	}
}
