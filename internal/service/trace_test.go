package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cliquelect/elect/client"
	"cliquelect/internal/jobs"
	"cliquelect/internal/obs"
)

// newTraceDaemon is newTestDaemon plus the raw base URL, for tests that
// need to set or read HTTP headers directly.
func newTraceDaemon(t *testing.T, cfg Config) (*client.Client, *Server, string) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return client.New(ts.URL), srv, ts.URL
}

// TestTraceEndToEnd drives one traced run through the API and asserts the
// contract the CI obs-smoke job greps: the response carries X-Trace-Id, and
// GET /v1/traces/{id} returns a span tree with the handler at the root and
// queue.wait/job.exec as its children.
func TestTraceEndToEnd(t *testing.T) {
	c, _, url := newTraceDaemon(t, Config{})
	sc := obs.NewSpanContext()

	body, _ := json.Marshal(client.RunRequest{Spec: "tradeoff", N: 64, Seed: 5})
	req, err := http.NewRequestWithContext(ctx(t), http.MethodPost, url+"/v1/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", sc.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/run: %s", resp.Status)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != sc.Trace.String() {
		t.Fatalf("X-Trace-Id = %q, want the caller's trace %q", got, sc.Trace)
	}

	tr, err := c.Trace(ctx(t), sc.Trace.String())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]obs.Span{}
	for _, sp := range tr.Spans {
		if sp.Trace.String() != sc.Trace.String() {
			t.Fatalf("span %s carries trace %s, want %s", sp.Name, sp.Trace, sc.Trace)
		}
		byName[sp.Name] = sp
	}
	handler, ok := byName["http.request"]
	if !ok {
		t.Fatalf("no http.request span in %v", names(tr.Spans))
	}
	if handler.Parent != sc.Span {
		t.Fatalf("handler parent %s, want the caller's span %s", handler.Parent, sc.Span)
	}
	if handler.Attrs["route"] != "/v1/run" || handler.Attrs["status"] != "200" {
		t.Fatalf("handler attrs %v", handler.Attrs)
	}
	for _, name := range []string{"queue.wait", "job.exec"} {
		sp, ok := byName[name]
		if !ok {
			t.Fatalf("no %s span in %v", name, names(tr.Spans))
		}
		if sp.Parent != handler.ID {
			t.Fatalf("%s parent %s, want handler span %s", name, sp.Parent, handler.ID)
		}
		if sp.Attrs["kind"] != "run" {
			t.Fatalf("%s attrs %v", name, sp.Attrs)
		}
	}

	// The trace listing includes it, newest-first, rooted at the handler.
	traces, err := c.Traces(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, s := range traces {
		if s.ID == sc.Trace.String() {
			found = true
			if s.Root != "http.request" || s.Spans < 3 {
				t.Fatalf("trace summary %+v", s)
			}
		}
	}
	if !found {
		t.Fatalf("trace %s missing from listing %+v", sc.Trace, traces)
	}
}

// TestChunkResponseCarriesSpans pins the coordinator-merge contract: a
// traced chunk answers with its worker-side serve/queue/exec spans, the
// serve span joined to the request's trace under the caller's span id.
func TestChunkResponseCarriesSpans(t *testing.T) {
	_, _, url := newTraceDaemon(t, Config{})
	sc := obs.NewSpanContext()

	body, _ := json.Marshal(client.ChunkRequest{
		Spec: "tradeoff", Ns: []int{32, 64}, Seeds: []uint64{1, 2}, Start: 1, Count: 2,
	})
	req, err := http.NewRequestWithContext(ctx(t), http.MethodPost, url+"/v1/chunk", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", sc.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/chunk: %s", resp.Status)
	}
	var out client.ChunkResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 {
		t.Fatalf("chunk returned %d results, want 2", len(out.Results))
	}
	if len(out.Spans) != 3 {
		t.Fatalf("chunk returned %d spans, want 3: %v", len(out.Spans), names(out.Spans))
	}
	got := map[string]obs.Span{}
	for _, sp := range out.Spans {
		if sp.Trace.String() != sc.Trace.String() {
			t.Fatalf("span %s carries trace %s, want %s", sp.Name, sp.Trace, sc.Trace)
		}
		got[sp.Name] = sp
	}
	serve, ok := got["chunk.serve"]
	if !ok {
		t.Fatalf("no chunk.serve span in %v", names(out.Spans))
	}
	if serve.Parent != sc.Span {
		t.Fatalf("chunk.serve parent %s, want caller span %s", serve.Parent, sc.Span)
	}
	for _, name := range []string{"queue.wait", "job.exec"} {
		sp, ok := got[name]
		if !ok {
			t.Fatalf("no %s span in %v", name, names(out.Spans))
		}
		if sp.Parent != serve.ID {
			t.Fatalf("%s parent %s, want chunk.serve id %s", name, sp.Parent, serve.ID)
		}
		if sp.Attrs["kind"] != string(jobs.KindChunk) {
			t.Fatalf("%s attrs %v", name, sp.Attrs)
		}
	}
}

// TestTracingDisabled pins the opt-out: with a negative TraceSpans budget
// there is no X-Trace-Id, no trace= log key, and the trace routes are empty.
func TestTracingDisabled(t *testing.T) {
	var lines []string
	c, srv, url := newTraceDaemon(t, Config{
		TraceSpans: -1,
		Logf: func(format string, args ...any) {
			lines = append(lines, fmt.Sprintf(format, args...))
		},
	})
	if srv.Spans() != nil {
		t.Fatal("disabled daemon still built a collector")
	}
	if _, err := c.Run(ctx(t), client.RunRequest{Spec: "tradeoff", N: 32}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "" {
		t.Fatalf("disabled daemon answered X-Trace-Id %q", got)
	}
	traces, err := c.Traces(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 0 {
		t.Fatalf("disabled daemon listed traces %+v", traces)
	}
	for _, l := range lines {
		if strings.Contains(l, "trace=") {
			t.Fatalf("disabled daemon logged %q", l)
		}
	}
}

// TestTraceNotFound covers the error paths of GET /v1/traces/{id}.
func TestTraceNotFound(t *testing.T) {
	c, _, _ := newTraceDaemon(t, Config{})
	if _, err := c.Trace(ctx(t), "4bf92f3577b34da6a3ce929d0e0e4736"); !isStatus(err, http.StatusNotFound) {
		t.Fatalf("unknown trace: %v", err)
	}
	if _, err := c.Trace(ctx(t), "nothex"); !isStatus(err, http.StatusBadRequest) {
		t.Fatalf("malformed trace id: %v", err)
	}
}

func isStatus(err error, code int) bool {
	api, ok := err.(*client.APIError)
	return ok && api.StatusCode == code
}

func names(spans []obs.Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}
