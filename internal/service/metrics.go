package service

import (
	"net/http"
	"runtime"
	"strconv"
	"time"

	"cliquelect/internal/jobs"
	"cliquelect/internal/obs"
)

// Version identifies the service build on /healthz and in the
// electd_build_info metric. Bump it when the API surface changes.
const Version = "0.9.0"

// metrics is the daemon's instrumentation: one obs.Registry populated by the
// request middleware, the jobs.Config.OnJobDone hook and a handful of
// GaugeFuncs sampled at scrape time. GET /metrics serves it in Prometheus
// text format.
type metrics struct {
	reg *obs.Registry

	requests *obs.CounterVec // route, method, code
	latency  *obs.HistogramVec
	jobsDone *obs.CounterVec // kind, state
	jobWait  *obs.HistogramVec
	jobExec  *obs.HistogramVec
	slo      *obs.SLOTracker
}

// sloSlowObjective is the latency objective feeding the SLO tracker:
// requests slower than this count against the error budget alongside 5xx
// answers. It is an exact obs.DefBuckets bound, so the CDF read
// (Histogram.CountLE) is exact, not interpolated.
const sloSlowObjective = 0.5

// jobBuckets spans queue waits and executions from sub-millisecond single
// runs to multi-minute sweeps.
var jobBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60, 300}

func newMetrics(s *Server) *metrics {
	r := obs.NewRegistry()
	m := &metrics{
		reg: r,
		requests: r.CounterVec("electd_requests_total",
			"API requests by route, method and status code.",
			"route", "method", "code"),
		latency: r.HistogramVec("electd_request_duration_seconds",
			"API request latency by route.", nil, "route"),
		jobsDone: r.CounterVec("electd_jobs_total",
			"Jobs reaching a terminal state, by kind and state.",
			"kind", "state"),
		jobWait: r.HistogramVec("electd_job_wait_seconds",
			"Queue wait from submission to execution, by job kind.",
			jobBuckets, "kind"),
		jobExec: r.HistogramVec("electd_job_exec_seconds",
			"Job execution time, by job kind.", jobBuckets, "kind"),
	}
	r.GaugeFunc("electd_queue_depth",
		"Jobs accepted but not yet executing.",
		func() float64 { return float64(s.mgr.QueueDepth()) })
	r.GaugeFunc("electd_jobs_active",
		"Jobs currently executing.",
		func() float64 { return float64(s.mgr.Counts()[jobs.Running]) })
	r.GaugeFunc("electd_uptime_seconds",
		"Seconds since the daemon started.",
		func() float64 { return time.Since(s.start).Seconds() })
	r.CounterVec("electd_build_info",
		"Constant 1, labeled with the service version.", "version").
		With(Version).Inc()
	// Go runtime health, sampled at scrape time. ReadMemStats briefly
	// stops the world, but only scrapes pay for it.
	r.GaugeFunc("go_goroutines",
		"Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	r.CounterFunc("go_gc_total",
		"Completed garbage-collection cycles.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
	r.GaugeFunc("process_uptime_seconds",
		"Seconds since the daemon process started.",
		func() float64 { return time.Since(s.start).Seconds() })
	r.GaugeFunc("process_rss_bytes",
		"Resident set size of the daemon process (0 where unavailable).",
		func() float64 { return float64(obs.ProcessRSSBytes()) })
	// SLO burn rate over the request metrics this registry already holds: a
	// request is "bad" when it answered 5xx or ran past the latency
	// objective. The tracker is passive — only scrapes and fleetz probes
	// advance its window.
	m.slo = obs.NewSLOTracker(func() obs.SLOSample {
		var smp obs.SLOSample
		m.requests.Each(func(labels []string, c *obs.Counter) {
			v := c.Value()
			smp.Requests += v
			if code, err := strconv.Atoi(labels[2]); err == nil && code >= 500 {
				smp.Errors += v
			}
		})
		m.latency.Each(func(_ []string, h *obs.Histogram) {
			smp.Slow += h.Count() - h.CountLE(sloSlowObjective)
		})
		return smp
	}, obs.DefaultSLOBudget, obs.DefaultSLOWindow)
	r.GaugeFunc("electd_slo_burn_rate",
		"Error-budget burn rate over the rolling SLO window (1 = on budget).",
		func() float64 { return m.slo.Status().BurnRate })
	r.GaugeFunc("electd_slo_bad_ratio",
		"Fraction of windowed requests that were 5xx or over the latency objective.",
		func() float64 { return m.slo.Status().BadRatio })
	r.GaugeFunc("electd_slo_status",
		"SLO verdict: 0 healthy, 1 degraded, 2 critical.",
		func() float64 { return float64(obs.VerdictRank(m.slo.Status().Verdict)) })
	if s.cfg.Cache != nil {
		cache := s.cfg.Cache
		r.CounterFunc("electd_cache_hits_total",
			"Result-cache memory hits.",
			func() float64 { return float64(cache.Stats().Hits) })
		r.CounterFunc("electd_cache_disk_hits_total",
			"Result-cache disk hits.",
			func() float64 { return float64(cache.Stats().DiskHits) })
		r.CounterFunc("electd_cache_misses_total",
			"Result-cache misses.",
			func() float64 { return float64(cache.Stats().Misses) })
		r.CounterFunc("electd_cache_puts_total",
			"Result-cache stores.",
			func() float64 { return float64(cache.Stats().Puts) })
		r.CounterFunc("electd_cache_evictions_total",
			"Result-cache evictions.",
			func() float64 { return float64(cache.Stats().Evictions) })
		r.GaugeFunc("electd_cache_entries",
			"Result-cache resident entries.",
			func() float64 { return float64(cache.Stats().Entries) })
	}
	if s.cfg.Control != nil {
		node := s.cfg.Control
		r.GaugeFunc("electd_control_epoch",
			"Highest election epoch this daemon has seen.",
			func() float64 { return float64(node.Status().Epoch) })
		r.GaugeFunc("electd_control_is_coordinator",
			"1 while this daemon holds the coordinator lease.",
			func() float64 {
				if node.IsCoordinator() {
					return 1
				}
				return 0
			})
		r.CounterFunc("electd_control_elections_total",
			"Campaigns this daemon won.",
			func() float64 { return float64(node.Status().Elections) })
		r.CounterFunc("electd_control_grants_total",
			"Fresh-epoch leases this daemon granted.",
			func() float64 { return float64(node.Status().Grants) })
		r.CounterFunc("electd_control_renewals_total",
			"Lease renewals this daemon granted.",
			func() float64 { return float64(node.Status().Renewals) })
		r.CounterFunc("electd_control_rejects_total",
			"Lease requests this daemon refused.",
			func() float64 { return float64(node.Status().Rejects) })
		r.CounterFunc("electd_control_stepdowns_total",
			"Leaderships this daemon lost or let expire.",
			func() float64 { return float64(node.Status().Stepdowns) })
		r.CounterFunc("electd_control_fence_rejects_total",
			"Chunk dispatches refused for carrying a stale fencing token.",
			func() float64 { return float64(node.Status().FenceRejects) })
	}
	return m
}

// onJobDone feeds the job-outcome metrics from the terminal snapshot. Queue
// wait is Started−Created — or Finished−Created for jobs canceled while
// still queued, whose Started stays zero — and execution is
// Finished−Started. It runs under the job lock, so it only touches
// lock-free atomics (vector lookups allocate at most once per label set).
func (m *metrics) onJobDone(snap jobs.Snapshot) {
	m.jobsDone.With(string(snap.Kind), string(snap.State)).Inc()
	wait := snap.Started.Sub(snap.Created)
	if snap.Started.IsZero() {
		wait = snap.Finished.Sub(snap.Created)
	}
	m.jobWait.With(string(snap.Kind)).Observe(wait.Seconds())
	if !snap.Started.IsZero() {
		m.jobExec.With(string(snap.Kind)).Observe(snap.Finished.Sub(snap.Started).Seconds())
	}
}

// statusWriter captures the response status for the request log and metrics.
// It forwards Flush so SSE streaming (GET /v1/jobs/{id}) keeps working
// behind the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
