// Package service implements the electd HTTP API over the jobs manager and
// the result cache; cmd/electd is a thin flag-parsing shell around it, and
// tests (plus examples/service) mount Handler on httptest servers.
//
// Routes:
//
//	POST /v1/run       — one election; waits by default, {"async":true} queues
//	POST /v1/batch     — a multi-size multi-seed sweep; same async contract
//	POST /v1/chunk     — a cell range of a batch grid, synchronous; the
//	                     worker-side call of distributed dispatch
//	GET  /v1/jobs      — list all jobs
//	GET  /v1/jobs/{id} — job status + result; Accept: text/event-stream
//	                     switches to SSE progress streaming
//	DELETE /v1/jobs/{id} — cancel
//	GET  /v1/specs     — the protocol registry
//	GET  /healthz      — liveness + job/cache counters
//	GET  /metrics      — Prometheus text exposition (internal/obs registry)
//	GET  /v1/traces    — recent request traces, newest first (?since=/?limit=)
//	GET  /v1/traces/{id} — every recorded span of one trace
//	GET  /v1/events    — the daemon's event journal (?since=SEQ/?limit=N)
//	GET  /v1/events/stream — live journal tail over SSE
//	GET  /v1/fleetz    — merged fleet snapshot: every peer probed, rolled up
//
// Every request is traced: the middleware honors an incoming W3C
// traceparent header (minting a fresh trace otherwise), stamps the trace id
// on the X-Trace-Id response header and the structured request log, and
// records handler, queue-wait and job-execution spans in a bounded
// in-memory obs.SpanCollector. Chunk responses additionally carry their
// worker-side spans back to the coordinator (see handleChunk), which is how
// a fleet sweep assembles one merged trace. Tracing is observational only —
// no engine or scheduling decision reads it.
//
// The wire schema lives in cliquelect/elect/client (shared with the Go
// client); results ride the stable elect JSON codec.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cliquelect/elect"
	"cliquelect/elect/client"
	"cliquelect/internal/control"
	"cliquelect/internal/distrib"
	"cliquelect/internal/jobs"
	"cliquelect/internal/obs"
	"cliquelect/internal/resultcache"
)

// Config assembles a Server.
type Config struct {
	// Workers and QueueDepth size the jobs manager (see jobs.Config).
	Workers    int
	QueueDepth int
	// BatchWorkers caps each batch job's sharded RunMany executor (see
	// jobs.Config.BatchWorkers); 0 leaves every job at GOMAXPROCS.
	BatchWorkers int
	// Cache, when non-nil, serves repeated deterministic runs from stored
	// bytes and reports its counters in /healthz.
	Cache *resultcache.Cache
	// Logf, when non-nil, receives one structured key=value line per API
	// request (method, route, status, duration, job id, trace id).
	Logf func(format string, args ...any)
	// TraceSpans caps the in-memory span collector behind /v1/traces; 0
	// means obs.DefaultSpanCapacity, negative disables tracing entirely
	// (no X-Trace-Id, no spans, no trace routes — each request then pays
	// one nil check).
	TraceSpans int
	// Instance names this daemon in span Service fields (e.g. its listen
	// address), so merged fleet traces tell workers apart. Empty means
	// plain "electd".
	Instance string
	// Control, when non-nil, is this daemon's control-plane node
	// (internal/control, built by cmd/electd from -peers): it serves
	// POST /v1/lease and GET /v1/coordinator, stamps role/epoch on
	// /healthz, fences /v1/chunk dispatches (409 on stale tokens, both at
	// submission and at execution start) and gates fleet batches on
	// coordinatorship.
	Control *control.Node
	// Fleet, when non-nil, dispatches fleet batches (BatchRequest.Fleet)
	// across the daemon's peers. Normally set alongside Control with the
	// node's Token as the fencing source; without it fleet batches are
	// rejected.
	Fleet *distrib.Fleet
	// Events caps the daemon's event journal behind /v1/events; 0 means
	// obs.DefaultEventCapacity, negative disables journaling entirely (the
	// event routes then 404 and every Emit in the stack pays one nil
	// check).
	Events int
}

// Server is the electd HTTP service.
type Server struct {
	cfg    Config
	mgr    *jobs.Manager
	mux    *http.ServeMux
	met    *metrics
	spans  *obs.SpanCollector
	events *obs.EventLog
	svc    string
	start  time.Time
}

// New builds the service and starts its worker pool.
func New(cfg Config) *Server {
	s := &Server{
		cfg:   cfg,
		svc:   "electd",
		start: time.Now(),
	}
	if cfg.Instance != "" {
		s.svc = "electd:" + cfg.Instance
	}
	if cfg.TraceSpans >= 0 {
		s.spans = obs.NewSpanCollector(cfg.TraceSpans)
	}
	if cfg.Events >= 0 {
		node := cfg.Instance
		if node == "" {
			node = "electd"
		}
		s.events = obs.NewEventLog(cfg.Events, node)
	}
	s.met = newMetrics(s)
	var cache elect.Cache
	if cfg.Cache != nil {
		cfg.Cache.SetEvents(s.events)
		cache = cfg.Cache
	}
	var checkFence func(uint64) error
	if cfg.Control != nil {
		checkFence = cfg.Control.CheckFence
	}
	s.mgr = jobs.NewManager(jobs.Config{
		Workers:      cfg.Workers,
		QueueDepth:   cfg.QueueDepth,
		BatchWorkers: cfg.BatchWorkers,
		Cache:        cache,
		OnJobStart:   s.onJobStart,
		OnJobDone:    s.onJobDone,
		OnJobEnqueue: s.onJobEnqueue,
		CheckFence:   checkFence,
	})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/chunk", s.handleChunk)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/specs", s.handleSpecs)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/traces/{id}", s.handleTrace)
	if s.events != nil {
		mux.HandleFunc("GET /v1/events", s.handleEvents)
		mux.HandleFunc("GET /v1/events/stream", s.handleEventsStream)
	}
	mux.HandleFunc("GET /v1/fleetz", s.handleFleetz)
	if cfg.Control != nil {
		mux.HandleFunc("POST /v1/lease", s.handleLease)
		mux.HandleFunc("GET /v1/coordinator", s.handleCoordinator)
	}
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", s.met.reg.Handler())
	s.mux = mux
	return s
}

// Metrics exposes the daemon's registry (cmd/electd's pprof mux and tests).
func (s *Server) Metrics() *obs.Registry { return s.met.reg }

// Spans exposes the daemon's span collector (nil when tracing is disabled).
func (s *Server) Spans() *obs.SpanCollector { return s.spans }

// Events exposes the daemon's event journal (nil when journaling is
// disabled) — cmd/electd wires it into the control node and the dispatch
// fleet.
func (s *Server) Events() *obs.EventLog { return s.events }

// Handler returns the API handler: the route mux behind the observation
// middleware that feeds the request metrics, the structured request log and
// the span collector. The middleware is also the trace boundary: it extracts
// the caller's W3C traceparent (or mints a fresh trace), answers with
// X-Trace-Id, and hands the server span context to the handlers through the
// request context so job submissions can propagate it.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		began := time.Now()
		var parent, sc obs.SpanContext
		if s.spans != nil {
			var ok bool
			if parent, ok = obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
				sc = parent.Child()
			} else {
				sc = obs.NewSpanContext()
			}
			w.Header().Set("X-Trace-Id", sc.Trace.String())
			r = r.WithContext(obs.ContextWithSpan(r.Context(), sc))
		}
		rw := &statusWriter{ResponseWriter: w}
		s.mux.ServeHTTP(rw, r)
		// ServeMux stamps the matched pattern on the request itself, so the
		// route label ("POST /v1/run" → "/v1/run") is read after dispatch.
		route := r.Pattern
		if i := strings.IndexByte(route, ' '); i >= 0 {
			route = route[i+1:]
		}
		if route == "" {
			route = "unmatched"
		}
		dur := time.Since(began)
		code := rw.status
		if code == 0 {
			code = http.StatusOK
		}
		s.met.requests.With(route, r.Method, strconv.Itoa(code)).Inc()
		s.met.latency.With(route).Observe(dur.Seconds())
		if s.spans != nil {
			s.spans.Add(obs.Span{
				Trace: sc.Trace, ID: sc.Span, Parent: parent.Span,
				Name: "http.request", Service: s.svc,
				Start: began.UnixMicro(), Dur: dur.Microseconds(),
				Attrs: map[string]string{
					"route": route, "method": r.Method, "status": strconv.Itoa(code),
				},
			})
		}
		if s.cfg.Logf != nil {
			line := fmt.Sprintf("method=%s route=%s path=%s status=%d dur=%s",
				r.Method, route, r.URL.Path, code, dur.Round(time.Microsecond))
			if id := rw.Header().Get("X-Job-Id"); id != "" {
				line += " job=" + id
			}
			if s.spans != nil {
				line += " trace=" + sc.Trace.String()
			}
			s.cfg.Logf("%s", line)
		}
	})
}

// Close drains the worker pool; queued jobs are canceled.
func (s *Server) Close() { s.mgr.Close() }

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req client.RunRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, opts, err := req.Resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.mgr.SubmitRun(spec, opts, submitOpts(r, req.NoCache)...)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	w.Header().Set("X-Job-Id", job.ID)
	if req.Async {
		writeJSON(w, http.StatusAccepted, client.RunResponse{Job: status(job)})
		return
	}
	if !s.await(w, r, job) {
		return
	}
	st := status(job)
	if st.State == string(jobs.Failed) {
		writeError(w, http.StatusUnprocessableEntity, errors.New(st.Error))
		return
	}
	resp := client.RunResponse{Job: st, CacheHit: st.CacheHit}
	if res, ok := job.Result(); ok {
		resp.Result = &res
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req client.BatchRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, batch, err := req.Resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Fleet {
		if s.cfg.Fleet == nil || s.cfg.Control == nil {
			writeError(w, http.StatusBadRequest,
				errors.New("fleet batches need a fleet-managed daemon (electd -peers)"))
			return
		}
		if !s.cfg.Control.IsCoordinator() {
			st := s.cfg.Control.Status()
			writeJSON(w, http.StatusConflict, client.ErrorResponse{
				Error:       "not the coordinator",
				Epoch:       st.Epoch,
				Coordinator: st.Coordinator,
			})
			return
		}
		batch.Remote = s.cfg.Fleet.Runner(req.Options)
	}
	job, err := s.mgr.SubmitBatch(spec, batch, submitOpts(r, req.NoCache)...)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	w.Header().Set("X-Job-Id", job.ID)
	if req.Async {
		writeJSON(w, http.StatusAccepted, client.BatchResponse{Job: status(job)})
		return
	}
	if !s.await(w, r, job) {
		return
	}
	st := status(job)
	if st.State == string(jobs.Failed) {
		writeError(w, http.StatusUnprocessableEntity, errors.New(st.Error))
		return
	}
	resp := client.BatchResponse{Job: st}
	if b, ok := job.BatchResult(); ok {
		resp.Result = b
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleChunk executes a cell range of a batch grid synchronously — the
// worker side of distributed dispatch. Chunks ride the normal job queue and
// worker pool, so they contend fairly with local jobs and show up in the
// /healthz load gauges a fleet scheduler balances on.
func (s *Server) handleChunk(w http.ResponseWriter, r *http.Request) {
	var req client.ChunkRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, batch, err := req.Resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := validRange(batch, req.Start, req.Count); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	fence := req.Fence
	if fence == 0 {
		// Header fallback so proxies (and curl reproductions) can fence
		// without touching the body. A malformed header is a 400, not an
		// unfenced dispatch: silently degrading to token 0 would turn a
		// mangled fencing header into an always-accepted chunk.
		if v := r.Header.Get(client.FenceHeader); v != "" {
			f, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest,
					fmt.Errorf("malformed %s header %q: %w", client.FenceHeader, v, err))
				return
			}
			fence = f
		}
	}
	if s.cfg.Control != nil {
		// Fast pre-check before the chunk consumes a queue slot; jobs
		// re-checks at execution start to close the queued-while-deposed
		// window.
		if err := s.cfg.Control.CheckFence(fence); err != nil {
			writeFenceError(w, err)
			return
		}
	}
	sopts := submitOpts(r, req.NoCache)
	if fence > 0 {
		sopts = append(sopts, jobs.WithFence(fence))
	}
	job, err := s.mgr.SubmitChunk(spec, batch, req.Start, req.Count, sopts...)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	w.Header().Set("X-Job-Id", job.ID)
	if !s.await(w, r, job) {
		return
	}
	if st := status(job); st.State != string(jobs.Done) {
		var stale *control.StaleTokenError
		if errors.As(job.Err(), &stale) {
			writeFenceError(w, stale)
			return
		}
		msg := st.Error
		if msg == "" {
			msg = "chunk " + st.State
		}
		writeError(w, http.StatusUnprocessableEntity, errors.New(msg))
		return
	}
	results, _ := job.ChunkResult()
	resp := client.ChunkResponse{Results: results}
	if sc := obs.SpanFromContext(r.Context()); sc.Valid() {
		resp.Spans = s.chunkSpans(r, sc, job.Snapshot())
	}
	writeJSON(w, http.StatusOK, resp)
}

// chunkSpans builds the worker-side span set a chunk response carries back
// to the coordinator: a serve-side root under the same span id as this
// request's http.request span (so the coordinator's tree connects through
// it without waiting for the middleware) plus the chunk's queue-wait and
// execution spans. The queue/exec spans are also recorded locally; the
// serve span is not, because the middleware records the authoritative
// http.request span under that id after the handler returns.
func (s *Server) chunkSpans(r *http.Request, sc obs.SpanContext, snap jobs.Snapshot) []obs.Span {
	parent, _ := obs.ParseTraceparent(r.Header.Get("traceparent"))
	serve := obs.Span{
		Trace: sc.Trace, ID: sc.Span, Parent: parent.Span,
		Name: "chunk.serve", Service: s.svc,
		Start: snap.Created.UnixMicro(),
		Dur:   snap.Finished.Sub(snap.Created).Microseconds(),
		Attrs: map[string]string{"job": snap.ID},
	}
	qw := queueWaitSpan(sc, s.svc, snap)
	ex := execSpan(sc, s.svc, snap)
	s.spans.Add(qw)
	s.spans.Add(ex)
	return []obs.Span{serve, qw, ex}
}

// validRange rejects malformed cell ranges before they consume a queue
// slot. elect.RunRange re-validates at execution.
func validRange(b elect.Batch, start, count int) error {
	ns, seeds := len(b.Ns), len(b.Seeds)
	if ns == 0 {
		ns = 1
	}
	if seeds == 0 {
		seeds = 1
	}
	total := ns * seeds
	if len(b.Topos) > 0 {
		total *= len(b.Topos)
	}
	if start < 0 || count < 1 || start+count > total {
		return fmt.Errorf("cell range [%d, %d) outside the %d-cell grid", start, start+count, total)
	}
	return nil
}

// submitOpts assembles the submit options a handler forwards to the jobs
// manager: the cache bypass, and the request's span context as an opaque
// traceparent so the job hooks can parent queue/exec spans correctly.
func submitOpts(r *http.Request, noCache bool) []jobs.SubmitOption {
	var sopts []jobs.SubmitOption
	if noCache {
		sopts = append(sopts, jobs.NoCache())
	}
	if sc := obs.SpanFromContext(r.Context()); sc.Valid() {
		sopts = append(sopts, jobs.WithTraceparent(sc.Traceparent()))
	}
	return sopts
}

// onJobStart is the jobs.Config.OnJobStart hook. The queued→running edge is
// when the queue wait becomes known, so the queue.wait span is emitted here.
// Chunk jobs are skipped: handleChunk rebuilds their spans after completion
// so the identical set can also ride back in the chunk response.
func (s *Server) onJobStart(snap jobs.Snapshot) {
	s.events.Emit("job.start", "job", snap.ID, "kind", string(snap.Kind))
	if snap.Kind == jobs.KindChunk {
		return
	}
	if parent, ok := obs.ParseTraceparent(snap.Trace); ok {
		s.spans.Add(queueWaitSpan(parent, s.svc, snap))
	}
}

// onJobEnqueue is the jobs.Config.OnJobEnqueue hook: one journal entry per
// accepted job.
func (s *Server) onJobEnqueue(snap jobs.Snapshot) {
	s.events.Emit("job.enqueue", "job", snap.ID, "kind", string(snap.Kind))
}

// onJobDone is the jobs.Config.OnJobDone hook: metrics for every job, plus
// the execution span for traced run/batch jobs. A job canceled while still
// queued never fired OnJobStart, so its whole lifetime is reported as queue
// wait instead.
func (s *Server) onJobDone(snap jobs.Snapshot) {
	s.met.onJobDone(snap)
	// One journal entry per terminal state; canceled covers queue-canceled
	// jobs too, so enqueue/done pairs always balance.
	s.events.Emit("job.done",
		"job", snap.ID, "kind", string(snap.Kind), "state", string(snap.State))
	if snap.Kind == jobs.KindChunk {
		return
	}
	parent, ok := obs.ParseTraceparent(snap.Trace)
	if !ok {
		return
	}
	if snap.Started.IsZero() {
		s.spans.Add(queueWaitSpan(parent, s.svc, snap))
		return
	}
	s.spans.Add(execSpan(parent, s.svc, snap))
}

// queueWaitSpan covers submission to execution start — or to the terminal
// state for jobs canceled in the queue, whose Started stays zero.
func queueWaitSpan(parent obs.SpanContext, svc string, snap jobs.Snapshot) obs.Span {
	end := snap.Started
	if end.IsZero() {
		end = snap.Finished
	}
	return obs.Span{
		Trace: parent.Trace, ID: parent.Child().Span, Parent: parent.Span,
		Name: "queue.wait", Service: svc,
		Start: snap.Created.UnixMicro(),
		Dur:   end.Sub(snap.Created).Microseconds(),
		Attrs: map[string]string{"job": snap.ID, "kind": string(snap.Kind)},
	}
}

// execSpan covers a job's running phase.
func execSpan(parent obs.SpanContext, svc string, snap jobs.Snapshot) obs.Span {
	return obs.Span{
		Trace: parent.Trace, ID: parent.Child().Span, Parent: parent.Span,
		Name: "job.exec", Service: svc,
		Start: snap.Started.UnixMicro(),
		Dur:   snap.Finished.Sub(snap.Started).Microseconds(),
		Attrs: map[string]string{
			"job": snap.ID, "kind": string(snap.Kind), "state": string(snap.State),
		},
	}
}

// await blocks until the job is terminal or the caller goes away (then the
// job is canceled — nobody is left to read the answer). Reports whether a
// response should still be written.
func (s *Server) await(w http.ResponseWriter, r *http.Request, job *jobs.Job) bool {
	select {
	case <-job.Done():
		return true
	case <-r.Context().Done():
		job.Cancel()
		return false
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	all := s.mgr.Jobs()
	resp := client.JobsResponse{Jobs: make([]client.JobStatus, 0, len(all))}
	for _, j := range all {
		resp.Jobs = append(resp.Jobs, status(j))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.streamJob(w, r, job)
		return
	}
	st := status(job)
	resp := client.JobResponse{Job: st, CacheHit: st.CacheHit}
	if res, ok := job.Result(); ok {
		resp.Result = &res
	}
	if b, ok := job.BatchResult(); ok {
		resp.Batch = b
	}
	writeJSON(w, http.StatusOK, resp)
}

// streamJob serves the SSE progress feed: one "progress" event per
// snapshot, a final "done" event carrying the terminal snapshot, then EOF.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, job *jobs.Job) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	sub, stop := job.Subscribe()
	defer stop()
	for {
		select {
		case snap, ok := <-sub:
			if !ok {
				return
			}
			st := snapshotStatus(snap)
			event := "progress"
			if st.Terminal() {
				event = "done"
			}
			data, err := json.Marshal(st)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
			flusher.Flush()
			if st.Terminal() {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, client.JobResponse{Job: status(job)})
}

func (s *Server) handleSpecs(w http.ResponseWriter, r *http.Request) {
	resp := client.SpecsResponse{}
	for _, spec := range elect.Registry() {
		engines := make([]string, 0, 2)
		for _, e := range spec.Engines() {
			engines = append(engines, e.String())
		}
		resp.Specs = append(resp.Specs, client.SpecInfo{
			Name:          spec.Name,
			Model:         spec.Model.String(),
			Paper:         spec.Paper,
			Description:   spec.Description,
			Engines:       engines,
			SmallIDSpace:  spec.SmallIDSpace,
			Deterministic: spec.Deterministic,
			FaultTolerant: spec.FaultTolerant,
			Topologies:    spec.Topologies,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTraces lists recent traces, newest first, capped at ?limit=
// (default 100); ?since=US keeps only traces starting after that unix
// microsecond, so pollers can page instead of re-reading the full window.
// Each entry summarizes the trace by its root span (the earliest span
// whose parent is unknown to this daemon) and the overall time window.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	since, limit, err := parsePage(r, 100)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := client.TracesResponse{Traces: []client.TraceSummary{}}
	for _, id := range s.spans.TraceIDs(limit) {
		spans := s.spans.Trace(id)
		if len(spans) == 0 {
			continue // evicted between TraceIDs and Trace
		}
		known := make(map[obs.SpanID]bool, len(spans))
		for _, sp := range spans {
			known[sp.ID] = true
		}
		root, first, last := spans[0], spans[0].Start, spans[0].End()
		for _, sp := range spans {
			if sp.Start < first {
				first = sp.Start
			}
			if sp.End() > last {
				last = sp.End()
			}
			orphan := sp.Parent.IsZero() || !known[sp.Parent]
			rootOrphan := root.Parent.IsZero() || !known[root.Parent]
			if orphan && (!rootOrphan || sp.Start < root.Start) {
				root = sp
			}
		}
		if since > 0 && first <= int64(since) {
			continue
		}
		resp.Traces = append(resp.Traces, client.TraceSummary{
			ID: id.String(), Root: root.Name, Service: root.Service,
			Spans: len(spans), StartUS: first, DurUS: last - first,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTrace returns every span this daemon holds for one trace, in
// insertion order.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, ok := obs.ParseTraceID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad trace id %q", r.PathValue("id")))
		return
	}
	spans := s.spans.Trace(id)
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown trace %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, client.TraceResponse{ID: id.String(), Spans: spans})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	counts := s.mgr.Counts()
	batchWorkers := s.cfg.BatchWorkers
	if batchWorkers <= 0 {
		batchWorkers = runtime.GOMAXPROCS(0)
	}
	h := client.Health{
		OK:            true,
		Version:       Version,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Jobs:          map[string]int{},
		QueueDepth:    s.mgr.QueueDepth(),
		ActiveJobs:    counts[jobs.Running],
		BatchWorkers:  batchWorkers,
	}
	for state, n := range counts {
		h.Jobs[string(state)] = n
	}
	if s.cfg.Cache != nil {
		cs := s.cfg.Cache.Stats()
		h.Cache = &client.CacheStats{
			Hits: cs.Hits, DiskHits: cs.DiskHits, Misses: cs.Misses,
			Puts: cs.Puts, DiskErrors: cs.DiskErrors, Evictions: cs.Evictions,
			Entries: cs.Entries,
		}
	}
	if s.cfg.Control != nil {
		st := s.cfg.Control.Status()
		h.Role = string(st.Role)
		h.Epoch = st.Epoch
	}
	writeJSON(w, http.StatusOK, h)
}

// handleLease is the grant side of the control plane: the body is a
// campaign or renewal request, and the verdict comes straight from the
// node's at-most-once-per-epoch rule. Timestamps use the control node's
// clock so the chaos harness can drive this handler on virtual time.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req client.LeaseRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Holder == "" || req.Epoch == 0 {
		writeError(w, http.StatusBadRequest, errors.New("lease needs a holder and a nonzero epoch"))
		return
	}
	resp := s.cfg.Control.HandleLease(req, s.cfg.Control.Now())
	writeJSON(w, http.StatusOK, resp)
}

// handleCoordinator answers who this daemon believes leads the fleet.
func (s *Server) handleCoordinator(w http.ResponseWriter, r *http.Request) {
	st := s.cfg.Control.Status()
	writeJSON(w, http.StatusOK, client.CoordinatorResponse{
		Self:        s.cfg.Control.Self(),
		Role:        string(st.Role),
		Epoch:       st.Epoch,
		Coordinator: st.Coordinator,
	})
}

// writeFenceError maps a stale fencing token to the 409 the dispatch
// fabric understands: the body carries the current epoch and believed
// coordinator so the deposed dispatcher can resynchronize.
func writeFenceError(w http.ResponseWriter, err error) {
	resp := client.ErrorResponse{Error: err.Error()}
	var stale *control.StaleTokenError
	if errors.As(err, &stale) {
		resp.Epoch = stale.Epoch
		resp.Coordinator = stale.Coordinator
	}
	writeJSON(w, http.StatusConflict, resp)
}

// status converts a live job to its wire view.
func status(j *jobs.Job) client.JobStatus { return snapshotStatus(j.Snapshot()) }

func snapshotStatus(s jobs.Snapshot) client.JobStatus {
	return client.JobStatus{
		ID: s.ID, Kind: string(s.Kind), Spec: s.Spec, State: string(s.State),
		Error: s.Err, Done: s.Done, Total: s.Total, CacheHit: s.CacheHit,
		Created: s.Created, Started: s.Started, Finished: s.Finished,
	}
}

func decodeBody(r *http.Request, out any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	if err := dec.Decode(out); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, client.ErrorResponse{Error: err.Error()})
}

// writeSubmitError maps queue conditions to HTTP: a full queue is 503 with
// Retry-After, a closed manager 503 too.
func writeSubmitError(w http.ResponseWriter, err error) {
	if errors.Is(err, jobs.ErrQueueFull) || errors.Is(err, jobs.ErrClosed) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeError(w, http.StatusBadRequest, err)
}
