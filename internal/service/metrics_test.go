package service

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"cliquelect/elect/client"
	"cliquelect/internal/resultcache"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts the value of the first sample line whose name+labels
// start with prefix, or 0 if absent.
func metricValue(t *testing.T, body, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "#") || !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		return v
	}
	return 0
}

// TestMetricsEndpoint drives a cached and an uncached run through the API
// and asserts the exposition carries every family the CI smoke job greps,
// with request/job/cache counters advancing monotonically.
func TestMetricsEndpoint(t *testing.T) {
	cache := resultcache.New()
	srv := New(Config{Cache: cache})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	c := client.New(ts.URL)

	before := scrape(t, ts.URL)
	req := client.RunRequest{Spec: "tradeoff", N: 64, Seed: 3}
	for i := 0; i < 2; i++ { // second submission is the cache hit
		if _, err := c.Run(ctx(t), req); err != nil {
			t.Fatal(err)
		}
	}
	after := scrape(t, ts.URL)

	for _, family := range []string{
		"electd_requests_total",
		"electd_request_duration_seconds",
		"electd_jobs_total",
		"electd_job_wait_seconds",
		"electd_job_exec_seconds",
		"electd_queue_depth",
		"electd_jobs_active",
		"electd_uptime_seconds",
		"electd_build_info",
		"electd_cache_hits_total",
		"electd_cache_misses_total",
		"electd_cache_entries",
	} {
		if !strings.Contains(after, "# TYPE "+family+" ") {
			t.Errorf("family %s missing from exposition", family)
		}
	}

	runLine := `electd_requests_total{route="/v1/run",method="POST",code="200"}`
	if got := metricValue(t, after, runLine); got != 2 {
		t.Errorf("%s = %v, want 2", runLine, got)
	}
	jobLine := `electd_jobs_total{kind="run",state="done"}`
	b, a := metricValue(t, before, jobLine), metricValue(t, after, jobLine)
	if a != b+2 {
		t.Errorf("%s went %v -> %v, want +2", jobLine, b, a)
	}
	if hits := metricValue(t, after, "electd_cache_hits_total"); hits < 1 {
		t.Errorf("cache hits = %v after a repeated run", hits)
	}
	if v := metricValue(t, after, fmt.Sprintf("electd_build_info{version=%q}", Version)); v != 1 {
		t.Errorf("build info sample = %v, want 1", v)
	}
	// /metrics observes itself on the next scrape.
	selfLine := `electd_requests_total{route="/metrics",method="GET",code="200"}`
	if got := metricValue(t, after, selfLine); got < 1 {
		t.Errorf("%s = %v, want >= 1", selfLine, got)
	}
}

// TestStructuredRequestLog pins the key=value request-log shape, including
// the job id tag on submissions.
func TestStructuredRequestLog(t *testing.T) {
	var mu struct {
		lines []string
	}
	srv := New(Config{Logf: func(format string, args ...any) {
		mu.lines = append(mu.lines, fmt.Sprintf(format, args...))
	}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	c := client.New(ts.URL)
	if _, err := c.Health(ctx(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ctx(t), client.RunRequest{Spec: "tradeoff", N: 32}); err != nil {
		t.Fatal(err)
	}

	want := []*regexp.Regexp{
		regexp.MustCompile(`^method=GET route=/healthz path=/healthz status=200 dur=\S+ trace=[0-9a-f]{32}$`),
		regexp.MustCompile(`^method=POST route=/v1/run path=/v1/run status=200 dur=\S+ job=j[0-9a-f]{12} trace=[0-9a-f]{32}$`),
	}
	if len(mu.lines) != len(want) {
		t.Fatalf("logged %d lines, want %d: %q", len(mu.lines), len(want), mu.lines)
	}
	for i, re := range want {
		if !re.MatchString(mu.lines[i]) {
			t.Errorf("log line %d = %q, want match for %s", i, mu.lines[i], re)
		}
	}
}

// TestRuntimeMetrics asserts the Go runtime families are exposed with sane
// values — a live process has goroutines and a heap.
func TestRuntimeMetrics(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	body := scrape(t, ts.URL)
	for _, family := range []string{
		"go_goroutines", "go_heap_alloc_bytes", "go_gc_total", "process_uptime_seconds",
	} {
		if !strings.Contains(body, "# TYPE "+family+" ") {
			t.Errorf("family %s missing from exposition", family)
		}
	}
	if v := metricValue(t, body, "go_goroutines"); v < 1 {
		t.Errorf("go_goroutines = %v, want >= 1", v)
	}
	if v := metricValue(t, body, "go_heap_alloc_bytes"); v <= 0 {
		t.Errorf("go_heap_alloc_bytes = %v, want > 0", v)
	}
	if v := metricValue(t, body, "process_uptime_seconds"); v < 0 {
		t.Errorf("process_uptime_seconds = %v, want >= 0", v)
	}
}
