package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"cliquelect/elect/client"
	"cliquelect/internal/resultcache"
)

// runOnce drives one synchronous election through the API so the journal
// and metrics have something to show.
func runOnce(t *testing.T, c *client.Client) {
	t.Helper()
	if _, err := c.Run(ctx(t), client.RunRequest{Spec: "tradeoff", N: 64, Seed: 7}); err != nil {
		t.Fatal(err)
	}
}

func TestEventsEndpoint(t *testing.T) {
	c, srv := newTestDaemon(t, Config{Instance: "n1"})
	runOnce(t, c)

	resp, err := c.Events(ctx(t), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Node != "n1" {
		t.Fatalf("node = %q, want n1", resp.Node)
	}
	kinds := map[string]bool{}
	for _, e := range resp.Events {
		kinds[e.Kind] = true
	}
	for _, want := range []string{"job.enqueue", "job.start", "job.done"} {
		if !kinds[want] {
			t.Fatalf("journal %v missing %q", kinds, want)
		}
	}

	// Paging: since the last seq → empty; limit=1 → exactly the newest.
	last := resp.Events[len(resp.Events)-1].Seq
	page, err := c.Events(ctx(t), last, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Events) != 0 {
		t.Fatalf("since=last returned %d events, want 0", len(page.Events))
	}
	one, err := c.Events(ctx(t), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Events) != 1 || one.Events[0].Seq != last {
		t.Fatalf("limit=1 = %+v, want the newest event", one.Events)
	}
	if srv.Events() == nil {
		t.Fatal("journal should be on by default")
	}
}

func TestEventsEndpointBadParamsAndDisabled(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	resp, err := http.Get(ts.URL + "/v1/events?since=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since = %s, want 400", resp.Status)
	}

	off := New(Config{Events: -1})
	tsOff := httptest.NewServer(off.Handler())
	t.Cleanup(func() { tsOff.Close(); off.Close() })
	if off.Events() != nil {
		t.Fatal("Events: negative capacity should disable the journal")
	}
	resp, err = http.Get(tsOff.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled journal route = %s, want 404", resp.Status)
	}
}

func TestEventsStream(t *testing.T) {
	srv := New(Config{Instance: "n1"})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	srv.Events().Emit("campaign.won", "epoch", "3")
	resp, err := http.Get(ts.URL + "/v1/events/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	// Replay delivers the pre-connection event; a live Emit follows it.
	srv.Events().Emit("lease.grant", "epoch", "3")
	sc := bufio.NewScanner(resp.Body)
	var seen []string
	deadline := time.After(5 * time.Second)
	lines := make(chan string)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	for len(seen) < 2 {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("stream closed after %v", seen)
			}
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var e struct {
				Kind string `json:"kind"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
				t.Fatalf("bad SSE payload %q: %v", line, err)
			}
			seen = append(seen, e.Kind)
		case <-deadline:
			t.Fatalf("timed out with %v", seen)
		}
	}
	if seen[0] != "campaign.won" || seen[1] != "lease.grant" {
		t.Fatalf("streamed kinds = %v", seen)
	}
}

func TestFleetzStandalone(t *testing.T) {
	cache := resultcache.New()
	c, _ := newTestDaemon(t, Config{Instance: "solo", Cache: cache})
	runOnce(t, c)

	fz, err := c.Fleetz(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(fz.Nodes) != 1 {
		t.Fatalf("standalone fleetz has %d nodes, want 1", len(fz.Nodes))
	}
	n := fz.Nodes[0]
	if !n.Reachable || n.URL != "solo" {
		t.Fatalf("self node = %+v", n)
	}
	if n.SLO == nil || n.SLO.Verdict != "healthy" {
		t.Fatalf("self SLO = %+v, want healthy", n.SLO)
	}
	if fz.Health != "healthy" {
		t.Fatalf("fleet health = %q, want healthy", fz.Health)
	}
	if fz.Coordinators != 0 || !fz.EpochAgreement {
		t.Fatalf("standalone roll-up = %+v", fz)
	}
	if n.CacheHitRatio < 0 {
		t.Fatalf("cache hit ratio = %v, want >= 0 with a cache attached", n.CacheHitRatio)
	}
	if len(n.Routes) == 0 {
		t.Fatal("no route stats after serving requests")
	}
	var sawRun bool
	for _, rt := range n.Routes {
		if rt.Route == "/v1/run" && rt.Requests >= 1 {
			sawRun = true
		}
	}
	if !sawRun {
		t.Fatalf("routes %+v missing /v1/run", n.Routes)
	}
	if len(fz.Events) == 0 {
		t.Fatal("fleet snapshot carries no events")
	}
	// FleetzSelf is the peer-probe form: one node, no recursion.
	self, err := c.FleetzSelf(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if self.URL != "solo" {
		t.Fatalf("fleetz?self=1 node = %+v", self)
	}
}

func TestUnmatchedRouteLabel(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	resp, err := http.Get(ts.URL + "/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path = %s, want 404", resp.Status)
	}
	body := scrape(t, ts.URL)
	if v := metricValue(t, body, `electd_requests_total{route="unmatched",method="GET",code="404"}`); v != 1 {
		t.Fatalf("unmatched route counter = %v, want 1", v)
	}
}

func TestTracesPaging(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	c := client.New(ts.URL)
	runOnce(t, c)
	runOnce(t, c)

	all, err := c.Traces(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Fatalf("have %d traces, want >= 2", len(all))
	}

	fetch := func(query string) (client.TracesResponse, int) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/traces" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out client.TracesResponse
		json.NewDecoder(resp.Body).Decode(&out)
		return out, resp.StatusCode
	}

	if out, code := fetch("?limit=1"); code != http.StatusOK || len(out.Traces) != 1 {
		t.Fatalf("limit=1: code %d, %d traces, want one", code, len(out.Traces))
	}
	// ?since= pages past everything at or before that microsecond: the
	// oldest trace's start excludes itself but keeps strictly newer ones.
	oldest := all[len(all)-1]
	out, code := fetch("?since=" + strconv.FormatInt(oldest.StartUS, 10))
	if code != http.StatusOK {
		t.Fatalf("since: code %d", code)
	}
	// Every remaining trace is strictly newer — the oldest one (and
	// anything at its instant) paged out. Listing requests mint traces of
	// their own, so only the bound is stable, not the count.
	for _, tr := range out.Traces {
		if tr.StartUS <= oldest.StartUS {
			t.Fatalf("trace %s at %d leaked through since=%d", tr.ID, tr.StartUS, oldest.StartUS)
		}
		if tr.ID == oldest.ID {
			t.Fatalf("trace %s did not page out", tr.ID)
		}
	}
	if _, code := fetch("?limit=-3"); code != http.StatusBadRequest {
		t.Fatalf("bad limit: code %d, want 400", code)
	}
}
