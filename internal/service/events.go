package service

// The fleet control room's server side: the event-journal routes
// (GET /v1/events, GET /v1/events/stream) and the federated fleet snapshot
// (GET /v1/fleetz). A fleetz request fans ?self=1 probes out to every
// configured peer concurrently and merges the answers — roles, epochs,
// health verdicts, per-route latency and recent events — into one
// timestamp-ordered view, which is exactly what cmd/electtop renders.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"cliquelect/elect/client"
	"cliquelect/internal/jobs"
	"cliquelect/internal/obs"
)

// parsePage reads the shared ?since=/?limit= paging parameters (events use
// a journal sequence, traces a unix-microsecond start). limit <= 0 falls
// back to defLimit.
func parsePage(r *http.Request, defLimit int) (since uint64, limit int, err error) {
	limit = defLimit
	q := r.URL.Query()
	if v := q.Get("since"); v != "" {
		since, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad since %q: %w", v, err)
		}
	}
	if v := q.Get("limit"); v != "" {
		n, aerr := strconv.Atoi(v)
		if aerr != nil || n < 0 {
			return 0, 0, fmt.Errorf("bad limit %q", v)
		}
		if n > 0 {
			limit = n
		}
	}
	return since, limit, nil
}

// handleEvents serves the journal: events with sequence > ?since=, oldest
// first, the newest ?limit= (default 256) of them.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	since, limit, err := parsePage(r, 256)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	events := s.events.Events(since, limit)
	if events == nil {
		events = []obs.Event{}
	}
	writeJSON(w, http.StatusOK, client.EventsResponse{Node: s.events.Node(), Events: events})
}

// handleEventsStream tails the journal over SSE: a replay of everything
// after ?since= (all held events by default), then one "event" message per
// Emit until the client goes away. Slow consumers lose events rather than
// block emitters — the journal is a control room feed, not a durable queue.
func (s *Server) handleEventsStream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	since, _, err := parsePage(r, 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	// Subscribe BEFORE the replay so no event can fall between them; the
	// seq guard below drops the overlap instead of double-sending.
	ch, stop := s.events.Subscribe()
	defer stop()
	last := since
	for _, e := range s.events.Events(since, 0) {
		writeSSEEvent(w, e)
		last = e.Seq
	}
	flusher.Flush()
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				return
			}
			if e.Seq <= last {
				continue
			}
			last = e.Seq
			writeSSEEvent(w, e)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSEEvent(w http.ResponseWriter, e obs.Event) {
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: event\ndata: %s\n\n", data)
}

// fleetzEventTail is how many recent journal events each node contributes
// to a fleet snapshot; the merged timeline is capped at fleetzEventMerge.
const (
	fleetzEventTail  = 20
	fleetzEventMerge = 100
	fleetzProbeTO    = 2 * time.Second
)

// handleFleetz serves the merged fleet snapshot. ?self=1 answers with only
// this daemon's own NodeStatus — the recursion-free probe daemons send each
// other; otherwise every configured peer is probed concurrently and the
// answers rolled up.
func (s *Server) handleFleetz(w http.ResponseWriter, r *http.Request) {
	self := s.selfStatus()
	resp := client.FleetzResponse{
		Self: self.URL,
		TSUS: time.Now().UnixMicro(),
	}
	if r.URL.Query().Get("self") != "" {
		resp.Nodes = []client.NodeStatus{self}
		mergeFleetz(&resp)
		writeJSON(w, http.StatusOK, resp)
		return
	}

	resp.Nodes = []client.NodeStatus{self}
	if s.cfg.Control != nil {
		peers := s.cfg.Control.Peers()
		statuses := make([]client.NodeStatus, len(peers))
		var wg sync.WaitGroup
		for i, p := range peers {
			if p == s.cfg.Control.Self() {
				statuses[i] = self
				continue
			}
			wg.Add(1)
			go func(i int, p string) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(r.Context(), fleetzProbeTO)
				defer cancel()
				st, err := client.New(p).FleetzSelf(ctx)
				if err != nil {
					statuses[i] = client.NodeStatus{URL: p, Err: err.Error()}
					return
				}
				st.URL = p // the peer names itself by instance; the fleet by URL
				statuses[i] = *st
			}(i, p)
		}
		wg.Wait()
		resp.Nodes = statuses
	}
	// Peers() is already sorted; keep the invariant explicit for the
	// standalone single-node path too.
	sort.Slice(resp.Nodes, func(i, j int) bool { return resp.Nodes[i].URL < resp.Nodes[j].URL })
	if s.cfg.Control != nil {
		st := s.cfg.Control.Status()
		resp.Coordinator = st.Coordinator
		resp.Epoch = st.Epoch
	}
	mergeFleetz(&resp)
	writeJSON(w, http.StatusOK, resp)
}

// mergeFleetz computes the fleet-level roll-ups from the node list:
// coordinator count, epoch agreement, the worst-of health verdict, and the
// timestamp-ordered merged event timeline.
func mergeFleetz(resp *client.FleetzResponse) {
	resp.Health = obs.HealthHealthy
	resp.EpochAgreement = true
	var epoch uint64
	sawEpoch := false
	var merged []obs.Event
	for _, n := range resp.Nodes {
		if !n.Reachable {
			// A configured daemon that cannot answer is the worst signal a
			// fleet snapshot can carry.
			resp.Health = obs.HealthCritical
			continue
		}
		if n.Role == "coordinator" {
			resp.Coordinators++
		}
		if n.Epoch > 0 {
			if sawEpoch && n.Epoch != epoch {
				resp.EpochAgreement = false
			}
			epoch = max(epoch, n.Epoch)
			sawEpoch = true
		}
		if n.SLO != nil {
			resp.Health = obs.WorseVerdict(resp.Health, n.SLO.Verdict)
		}
		merged = append(merged, n.Events...)
	}
	if sawEpoch && epoch > resp.Epoch {
		resp.Epoch = epoch
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].TS != merged[j].TS {
			return merged[i].TS < merged[j].TS
		}
		if merged[i].Node != merged[j].Node {
			return merged[i].Node < merged[j].Node
		}
		return merged[i].Seq < merged[j].Seq
	})
	if len(merged) > fleetzEventMerge {
		merged = merged[len(merged)-fleetzEventMerge:]
	}
	resp.Events = merged
}

// selfStatus assembles this daemon's own NodeStatus: control-plane
// position, load gauges, cache efficiency, runtime health, the SLO verdict,
// the per-route latency digest and the recent journal tail.
func (s *Server) selfStatus() client.NodeStatus {
	st := client.NodeStatus{
		Reachable:     true,
		UptimeSeconds: time.Since(s.start).Seconds(),
		QueueDepth:    s.mgr.QueueDepth(),
		CacheHitRatio: -1,
		Goroutines:    runtime.NumGoroutine(),
		RSSBytes:      obs.ProcessRSSBytes(),
		Routes:        s.routeStats(),
		Events:        s.events.Events(0, fleetzEventTail),
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st.HeapBytes = int64(ms.HeapAlloc)
	st.ActiveJobs = s.mgr.Counts()[jobs.Running]
	if s.cfg.Control != nil {
		cs := s.cfg.Control.Status()
		st.URL = s.cfg.Control.Self()
		st.Role = string(cs.Role)
		st.Epoch = cs.Epoch
		st.Coordinator = cs.Coordinator
	} else if s.cfg.Instance != "" {
		st.URL = s.cfg.Instance
	} else {
		st.URL = "electd"
	}
	if s.cfg.Cache != nil {
		cs := s.cfg.Cache.Stats()
		if lookups := cs.Hits + cs.DiskHits + cs.Misses; lookups > 0 {
			st.CacheHitRatio = float64(cs.Hits+cs.DiskHits) / float64(lookups)
		} else {
			st.CacheHitRatio = 0
		}
	}
	slo := s.met.slo.Status()
	st.SLO = &slo
	return st
}

// routeStats digests the request metrics per route — counts, 5xx counts and
// interpolated latency quantiles — busiest route first.
func (s *Server) routeStats() []client.RouteStats {
	agg := map[string]*client.RouteStats{}
	s.met.requests.Each(func(labels []string, c *obs.Counter) {
		rs := agg[labels[0]]
		if rs == nil {
			rs = &client.RouteStats{Route: labels[0]}
			agg[labels[0]] = rs
		}
		v := c.Value()
		rs.Requests += v
		if code, err := strconv.Atoi(labels[2]); err == nil && code >= 500 {
			rs.Errors += v
		}
	})
	s.met.latency.Each(func(labels []string, h *obs.Histogram) {
		rs := agg[labels[0]]
		if rs == nil {
			rs = &client.RouteStats{Route: labels[0]}
			agg[labels[0]] = rs
		}
		rs.P50Ms = h.Quantile(0.5) * 1000
		rs.P99Ms = h.Quantile(0.99) * 1000
	})
	out := make([]client.RouteStats, 0, len(agg))
	for _, rs := range agg {
		out = append(out, *rs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Requests != out[j].Requests {
			return out[i].Requests > out[j].Requests
		}
		return out[i].Route < out[j].Route
	})
	return out
}
