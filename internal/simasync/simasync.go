// Package simasync simulates the asynchronous clique of Section 5 of the
// paper: point-to-point links with adversarially chosen message delays,
// per-link FIFO delivery, an obliviously chosen port mapping, and
// adversarial wake-up.
//
// Following the paper's definition, the asynchronous time complexity of a
// run is the total number of time units from the first wake-up until the
// last message is received, where one unit of time is an upper bound on the
// transmission time of a message. The engine therefore constrains every
// delay policy to produce delays in (0, 1] and reports the makespan
// directly in those units. Node-local processing is instantaneous.
//
// The adversary model matches Section 5: the port mapping is fixed
// obliviously (before any node wakes, independent of the nodes' coins),
// while the schedule (delays) may be adaptive. Determinism: the event queue
// is a binary heap ordered by (time, sequence number), so identical seeds
// reproduce identical executions.
package simasync

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"cliquelect/internal/faults"
	"cliquelect/internal/flatmap"
	"cliquelect/internal/ids"
	"cliquelect/internal/obs"
	"cliquelect/internal/portmap"
	"cliquelect/internal/proto"
	"cliquelect/internal/topo"
	"cliquelect/internal/xrand"
)

// Protocol is the per-node logic of an asynchronous algorithm. Wake is
// called exactly once when the node is activated — by the adversary or by
// its first incoming message; in the latter case Receive is called for that
// message immediately after Wake. Receive is invoked once per delivered
// message, in delivery order. Both return the messages to send, which depart
// at the current instant. Nodes are expected to keep responding after
// deciding (Algorithm 2 requires referees to answer compete-messages even
// when decided), so there is no halt signal: a run ends at quiescence.
//
// The engine consumes the returned slice before calling the same instance
// again, so a protocol may return one reused backing buffer from every
// Wake/Receive call (see proto.SendBuf).
type Protocol interface {
	Wake(env proto.Env) []proto.Send
	Receive(d proto.Delivery) []proto.Send
	Decision() proto.Decision
}

// Factory constructs the protocol instance for a node.
type Factory func(node int) Protocol

// DelayPolicy is the adversary's scheduler: it assigns each message a
// transmission delay. Results are clamped to (0, 1] by the engine (one time
// unit is, by definition, the maximum transmission time).
type DelayPolicy interface {
	Delay(src, port int, now float64, rng *xrand.RNG) float64
}

// KindAwareDelayPolicy is an optional extension: a scheduler that inspects
// message kinds. Section 5's adversary is adaptive (it sees the nodes'
// random bits before scheduling), so content-aware scheduling is admissible;
// the stress tests use it to slow down exactly the messages whose late
// arrival exercises an algorithm's hardest code path (e.g. Algorithm 2's
// winner revocation).
type KindAwareDelayPolicy interface {
	DelayPolicy
	DelayKind(src, port int, kind uint8, now float64, rng *xrand.RNG) float64
}

// KindDelay slows messages of the designated kinds to a full time unit and
// delivers everything else after Fast.
type KindDelay struct {
	Slow []uint8
	Fast float64 // delay for all other kinds; <= 0 means 0.05
}

// Delay implements DelayPolicy (used when the engine has no kind, e.g. by
// other tooling); it returns the fast delay.
func (k KindDelay) Delay(int, int, float64, *xrand.RNG) float64 { return k.fast() }

// DelayKind implements KindAwareDelayPolicy.
func (k KindDelay) DelayKind(_, _ int, kind uint8, _ float64, _ *xrand.RNG) float64 {
	for _, s := range k.Slow {
		if s == kind {
			return 1
		}
	}
	return k.fast()
}

func (k KindDelay) fast() float64 {
	if k.Fast <= 0 {
		return 0.05
	}
	return k.Fast
}

// UnitDelay delivers every message after exactly one time unit — the
// synchronous-like worst case.
type UnitDelay struct{}

// Delay implements DelayPolicy.
func (UnitDelay) Delay(int, int, float64, *xrand.RNG) float64 { return 1 }

// UniformDelay draws each delay uniformly from [Lo, 1]. Lo <= 0 is treated
// as a small positive floor.
type UniformDelay struct {
	Lo float64
}

// Delay implements DelayPolicy.
func (u UniformDelay) Delay(_, _ int, _ float64, rng *xrand.RNG) float64 {
	lo := u.Lo
	if lo <= 0 {
		lo = 1e-6
	}
	if lo > 1 {
		lo = 1
	}
	return lo + (1-lo)*rng.Float64()
}

// SkewDelay makes a subset of senders slow (delay 1) and everyone else fast
// (delay Fast): a crude but effective adversary against algorithms that
// assume uniform progress, and the scheduler that exercises Algorithm 2's
// winner-revocation path (slow compete messages arrive after a referee has
// already crowned someone else).
type SkewDelay struct {
	Fast float64 // delay for fast senders, e.g. 0.05
	Mod  int     // senders with index % Mod == 0 are slow; Mod <= 1 = all slow
}

// Delay implements DelayPolicy.
func (s SkewDelay) Delay(src, _ int, _ float64, _ *xrand.RNG) float64 {
	if s.Mod <= 1 || src%s.Mod == 0 {
		return 1
	}
	f := s.Fast
	if f <= 0 {
		f = 0.05
	}
	return f
}

// WakeSchedule lists adversary-initiated wake-ups. Times must be >= 0; the
// engine normalizes the earliest to time 0 for the makespan measurement.
type WakeSchedule []WakeAt

// WakeAt wakes one node at one instant.
type WakeAt struct {
	Node int
	Time float64
}

// AllAtZero wakes every node at time zero (the simultaneous wake-up used by
// Section 5.4's deterministic algorithm).
func AllAtZero(n int) WakeSchedule {
	ws := make(WakeSchedule, n)
	for i := range ws {
		ws[i] = WakeAt{Node: i}
	}
	return ws
}

// SubsetAtZero wakes the given nodes at time zero (Section 5's adversarial
// wake-up, paper's simplifying assumption of round-1-only wake-ups).
func SubsetAtZero(nodes []int) WakeSchedule {
	ws := make(WakeSchedule, len(nodes))
	for i, u := range nodes {
		ws[i] = WakeAt{Node: u}
	}
	return ws
}

// Config describes one asynchronous execution.
type Config struct {
	// N is the number of nodes.
	N int
	// IDs assigns an ID per node; required, length N.
	IDs ids.Assignment
	// Ports is the oblivious port mapping; nil defaults to LazyRandom seeded
	// from Seed. Ignored when Topo is set.
	Ports portmap.Map
	// Topo, when non-nil, wires the nodes as an explicit general graph
	// instead of the default clique: node u owns Degree(u) ports and
	// messages travel only along edges (per-link FIFO still holds). The
	// topology's degree and diameter estimate are exposed to protocols
	// through proto.Env.
	Topo topo.Topology
	// Delays is the adversary's scheduler; nil defaults to UnitDelay.
	Delays DelayPolicy
	// Wake is the adversary's wake schedule; required, nonempty.
	Wake WakeSchedule
	// Seed drives engine randomness (port map, node RNGs, delay draws).
	Seed uint64
	// MaxEvents aborts runaway executions; 0 defaults to 64*N*N + 1<<16.
	MaxEvents int64
	// MaxMessages drops further sends once the message count reaches this
	// budget (the run continues to quiescence on the messages already in
	// flight); 0 means unlimited.
	MaxMessages int64
	// Faults, when non-nil, injects crash-stop/drop/duplicate faults. Crash
	// checks run at every event (instant = event time) and every send passes
	// through the injector. The injector's RNG is private, so a nil injector
	// leaves executions byte-identical to fault-free runs.
	Faults *faults.Injector
	// Rounds, when non-nil, collects a per-window telemetry timeline:
	// events are bucketed into unit-time windows measured from the first
	// wake-up (window w covers [w, w+1)), the async analogue of the sync
	// engine's rounds. Purely observational — no randomness is consumed and
	// a nil probe costs one branch per event.
	Rounds *obs.RoundTrace
}

// Result summarizes one asynchronous execution.
type Result struct {
	// TimeUnits is the asynchronous time complexity: latest event time minus
	// earliest wake time, in units of the maximum transmission delay.
	TimeUnits float64
	// Messages is the total number of messages sent.
	Messages int64
	// Words is the CONGEST payload volume.
	Words int64
	// PerKind counts messages by kind.
	PerKind map[uint8]int64
	// Decisions holds each node's final output.
	Decisions []proto.Decision
	// WakeTime[u] is when node u woke; -1 if it never woke.
	WakeTime []float64
	// TimedOut reports that MaxEvents was exhausted.
	TimedOut bool
	// Truncated reports that MaxMessages was reached and sends were dropped.
	Truncated bool
	// Crashed lists (sorted) the nodes that crash-stopped during the run
	// (fault injection only).
	Crashed []int
	// Dropped counts messages the fault injector lost; Duplicated counts the
	// extra copies it delivered. Both are included in/excluded from Messages
	// respectively: a dropped message was still sent, a duplicate was not.
	Dropped    int64
	Duplicated int64
}

// Leaders returns the indices of nodes that decided Leader, including nodes
// that crashed after deciding.
func (r *Result) Leaders() []int {
	var out []int
	for u, d := range r.Decisions {
		if d == proto.Leader {
			out = append(out, u)
		}
	}
	return out
}

// CrashedNode reports whether node u crash-stopped during the run.
func (r *Result) CrashedNode(u int) bool {
	for _, c := range r.Crashed {
		if c == u {
			return true
		}
	}
	return false
}

// survivingLeaders is Leaders restricted to nodes that did not crash.
func (r *Result) survivingLeaders() []int {
	var out []int
	for _, u := range r.Leaders() {
		if !r.CrashedNode(u) {
			out = append(out, u)
		}
	}
	return out
}

// UniqueLeader returns the elected node if exactly one surviving node
// decided Leader (a crashed node's output is void, per the usual crash-stop
// semantics), or -1 otherwise.
func (r *Result) UniqueLeader() int {
	ls := r.survivingLeaders()
	if len(ls) != 1 {
		return -1
	}
	return ls[0]
}

// AllAwake reports whether every node was activated.
func (r *Result) AllAwake() bool {
	for _, w := range r.WakeTime {
		if w < 0 {
			return false
		}
	}
	return true
}

// Validate checks implicit leader election restricted to surviving nodes:
// exactly one surviving leader and every awake surviving node decided
// (crashed nodes owe nothing, as usual under crash-stop faults).
func (r *Result) Validate() error {
	if r.TimedOut {
		return errors.New("simasync: execution exhausted its event budget")
	}
	if r.Truncated {
		return fmt.Errorf("simasync: run truncated at %d messages", r.Messages)
	}
	if got := len(r.survivingLeaders()); got != 1 {
		return fmt.Errorf("simasync: %d surviving leaders elected, want 1", got)
	}
	for u, d := range r.Decisions {
		if r.WakeTime[u] >= 0 && d == proto.Undecided && !r.CrashedNode(u) {
			return fmt.Errorf("simasync: awake node %d did not decide", u)
		}
	}
	return nil
}

type eventKind uint8

const (
	evWake eventKind = iota + 1
	evDeliver
)

type event struct {
	time float64
	seq  int64
	kind eventKind
	node int
	d    proto.Delivery
}

// eventHeap is a hand-rolled binary min-heap over (time, seq). It replaces
// container/heap on the event loop's hottest edge: the standard library's
// interface-based Push boxes every event into an allocation, which at one
// event per message dominated the simulator's allocation profile. (time,
// seq) is a total order — seq is unique — so the pop sequence is the sorted
// order regardless of heap internals, and executions are byte-identical to
// the container/heap implementation.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	for i := len(q) - 1; i > 0; {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	*h = q
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q.less(l, small) {
			small = l
		}
		if r < n && q.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	return top
}

// scratch is the pooled per-run state of the event loop: the heap's backing
// array and the FIFO clamp table, both of which reach O(messages) size and
// are reused across the runs of a sweep.
type scratch struct {
	h     eventHeap
	sched flatmap.U64Map // directed link -> last delivery time bits (FIFO clamp)
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch {
	s := scratchPool.Get().(*scratch)
	s.h = s.h[:0]
	s.sched.Reset()
	return s
}

// Run executes the configured asynchronous algorithm to quiescence.
func Run(cfg Config, factory Factory) (*Result, error) {
	n := cfg.N
	if n < 1 {
		return nil, fmt.Errorf("simasync: N = %d", n)
	}
	if len(cfg.IDs) != n {
		return nil, fmt.Errorf("simasync: %d IDs for %d nodes", len(cfg.IDs), n)
	}
	if len(cfg.Wake) == 0 {
		return nil, errors.New("simasync: empty wake schedule")
	}
	if cfg.Topo != nil && cfg.Topo.N() != n {
		return nil, fmt.Errorf("simasync: topology has %d nodes, config has %d", cfg.Topo.N(), n)
	}
	master := xrand.New(cfg.Seed)
	pm := cfg.Ports
	if cfg.Topo != nil {
		// Consume the wiring split even though the topology replaces the port
		// map, so node and delay RNG streams stay aligned with the default
		// path and topology-vs-clique comparisons differ only in the wiring.
		if n >= 2 {
			master.Split()
		}
	} else if pm == nil && n >= 2 {
		lr := portmap.NewLazyRandom(n, master.Split())
		defer lr.Release() // engine-owned: nothing retains the wiring
		pm = lr
	}
	delays := cfg.Delays
	if delays == nil {
		delays = UnitDelay{}
	}
	delayRNG := master.Split()
	maxEvents := cfg.MaxEvents
	if maxEvents == 0 {
		maxEvents = 64*int64(n)*int64(n) + 1<<16
	}

	nodes := make([]Protocol, n)
	envs := make([]proto.Env, n)
	// All node generators live in one flat slice; rngs must outlive the
	// event loop (protocols hold pointers into it), so it is per-run, not
	// pooled scratch.
	rngs := make([]xrand.RNG, n)
	diam := 0
	if cfg.Topo != nil {
		diam = cfg.Topo.Diameter()
	}
	for u := 0; u < n; u++ {
		nodes[u] = factory(u)
		master.SplitInto(&rngs[u])
		envs[u] = proto.Env{ID: int64(cfg.IDs[u]), N: n, RNG: &rngs[u]}
		if cfg.Topo != nil {
			envs[u].Deg = cfg.Topo.Degree(u)
			envs[u].Diam = diam
		}
	}

	res := &Result{
		Decisions: make([]proto.Decision, n),
		WakeTime:  make([]float64, n),
	}
	for u := range res.WakeTime {
		res.WakeTime[u] = -1
	}
	var kinds proto.KindCounts

	sc := getScratch()
	defer scratchPool.Put(sc)
	var seq int64
	push := func(e event) {
		e.seq = seq
		seq++
		sc.h.push(e)
	}
	firstWake := cfg.Wake[0].Time
	for _, w := range cfg.Wake {
		if w.Node < 0 || w.Node >= n {
			return nil, fmt.Errorf("simasync: wake schedule names invalid node %d", w.Node)
		}
		if w.Time < 0 {
			return nil, fmt.Errorf("simasync: negative wake time %v", w.Time)
		}
		if w.Time < firstWake {
			firstWake = w.Time
		}
		push(event{time: w.Time, kind: evWake, node: w.Node})
	}

	awake := make([]bool, n)
	linkKey := func(src, dst int) uint64 { return uint64(src)<<32 | uint64(uint32(dst)) }
	lastEvent := firstWake

	// Per-window probe: every event lands in unit-time window
	// int(t - firstWake) — well-defined because no event precedes the first
	// wake-up, and contiguous up to gaps the collector zero-fills.
	rt := cfg.Rounds
	window := func(at float64) int { return int(at - firstWake) }

	inj := cfg.Faults
	kindAware, _ := delays.(KindAwareDelayPolicy)
	// degOf and dest abstract over the two wirings: the implicit clique
	// (portmap) and an explicit topology.
	degOf := func(int) int { return n - 1 }
	dest := func(u, p int) (int, int) { return pm.Dest(u, p) }
	if cfg.Topo != nil {
		degOf = cfg.Topo.Degree
		dest = cfg.Topo.Dest
	}
	dispatch := func(u int, now float64, outs []proto.Send) error {
		for _, s := range outs {
			if s.Port < 0 || s.Port >= degOf(u) {
				return fmt.Errorf("simasync: node %d sent on invalid port %d (degree %d)", u, s.Port, degOf(u))
			}
			if cfg.MaxMessages > 0 && res.Messages >= cfg.MaxMessages {
				res.Truncated = true
				continue
			}
			v, q := dest(u, s.Port)
			res.Messages++
			res.Words += int64(s.Msg.Words())
			kinds.Add(s.Msg.Kind)
			if rt != nil {
				rt.Send(window(now), u, s.Msg.Kind, s.Msg.Words())
			}
			copies := 1
			if inj != nil {
				// Fault hook: per-delivery verdict. The message counts as
				// sent either way; only its delivery fate changes. A
				// duplicate gets its own delay draw, so the copies may arrive
				// arbitrarily far apart (FIFO per link still holds).
				switch inj.OnSend(u, v, s.Msg, now) {
				case faults.Drop:
					copies = 0
				case faults.Duplicate:
					copies = 2
				}
			}
			for c := 0; c < copies; c++ {
				var d float64
				if kindAware != nil {
					d = kindAware.DelayKind(u, s.Port, s.Msg.Kind, now, delayRNG)
				} else {
					d = delays.Delay(u, s.Port, now, delayRNG)
				}
				if d <= 0 {
					d = 1e-9
				}
				if d > 1 {
					d = 1
				}
				at := now + d
				lk := linkKey(u, v)
				if bits, ok := sc.sched.Get(lk); ok {
					if prev := math.Float64frombits(bits); at < prev {
						at = prev // FIFO: no overtaking on a link
					}
				}
				sc.sched.Put(lk, math.Float64bits(at))
				push(event{time: at, kind: evDeliver, node: v, d: proto.Delivery{Port: q, Msg: s.Msg}})
			}
		}
		return nil
	}

	var processed int64
	for len(sc.h) > 0 {
		if processed >= maxEvents {
			res.TimedOut = true
			break
		}
		processed++
		e := sc.h.pop()
		u := e.node
		if inj != nil {
			// Fault hook: adaptive adversary tick, then the crash check for
			// the event's node. A crashed node's events are lost — a sleeping
			// victim never wakes, an in-flight delivery to it vanishes — and
			// lost events do not extend the makespan.
			inj.Tick(e.time)
			if inj.CrashedAt(u, e.time) {
				continue
			}
		}
		if e.time > lastEvent {
			lastEvent = e.time
		}
		// wakeAndDispatch activates a sleeping node; the probe attributes the
		// wake-up (and any decision it finalizes) to the event's window.
		wakeAndDispatch := func() error {
			awake[u] = true
			res.WakeTime[u] = e.time
			if rt == nil {
				return dispatch(u, e.time, nodes[u].Wake(envs[u]))
			}
			rt.Woke(window(e.time))
			before := nodes[u].Decision()
			outs := nodes[u].Wake(envs[u])
			if nodes[u].Decision() != before {
				rt.Decided(window(e.time))
			}
			return dispatch(u, e.time, outs)
		}
		switch e.kind {
		case evWake:
			if awake[u] {
				continue
			}
			if err := wakeAndDispatch(); err != nil {
				return nil, err
			}
		case evDeliver:
			if !awake[u] {
				if err := wakeAndDispatch(); err != nil {
					return nil, err
				}
			}
			if rt == nil {
				if err := dispatch(u, e.time, nodes[u].Receive(e.d)); err != nil {
					return nil, err
				}
				continue
			}
			rt.Deliver(window(e.time), 1)
			before := nodes[u].Decision()
			outs := nodes[u].Receive(e.d)
			if nodes[u].Decision() != before {
				rt.Decided(window(e.time))
			}
			if err := dispatch(u, e.time, outs); err != nil {
				return nil, err
			}
		}
	}
	for u := 0; u < n; u++ {
		res.Decisions[u] = nodes[u].Decision()
	}
	res.PerKind = kinds.Map()
	res.TimeUnits = lastEvent - firstWake
	// Final crash sweep: record every crash that fell within the run's span
	// even if no event for the victim popped after its crash instant —
	// otherwise a quiet victim (e.g. a leader that crashed after its last
	// delivery) would still count as a survivor, diverging from the sync
	// engine's every-node-every-round check.
	if inj != nil {
		for u := 0; u < n; u++ {
			inj.CrashedAt(u, lastEvent)
		}
	}
	res.Crashed = inj.Crashed()
	res.Dropped = inj.Dropped()
	res.Duplicated = inj.Duplicated()
	return res, nil
}

// Interface compliance checks.
var (
	_ DelayPolicy = UnitDelay{}
	_ DelayPolicy = UniformDelay{}
	_ DelayPolicy = SkewDelay{}
)
