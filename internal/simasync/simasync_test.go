package simasync

import (
	"math"
	"reflect"
	"testing"

	"cliquelect/internal/faults"
	"cliquelect/internal/ids"
	"cliquelect/internal/proto"
	"cliquelect/internal/xrand"
)

// flooder relays a token once: on wake (adversary) it sends the token over
// port 0; every node that receives the token forwards it over ports 0..F-1
// the first time, then stays silent. Everyone decides NonLeader immediately
// so Validate-style checks don't apply; we use it to test mechanics.
type flooder struct {
	env   proto.Env
	fan   int
	sent  bool
	seen  int
	order []int64
	root  bool
}

func (f *flooder) Wake(env proto.Env) []proto.Send {
	f.env = env
	if f.root {
		f.sent = true
		return f.fanOut()
	}
	return nil
}

func (f *flooder) fanOut() []proto.Send {
	k := f.fan
	if k > f.env.Ports() {
		k = f.env.Ports()
	}
	out := make([]proto.Send, k)
	for i := range out {
		out[i] = proto.Send{Port: i, Msg: proto.Message{Kind: 1, A: f.env.ID}}
	}
	return out
}

func (f *flooder) Receive(d proto.Delivery) []proto.Send {
	f.seen++
	f.order = append(f.order, d.Msg.A)
	if !f.sent {
		f.sent = true
		return f.fanOut()
	}
	return nil
}

func (f *flooder) Decision() proto.Decision { return proto.NonLeader }

func TestChainMakespanUnitDelay(t *testing.T) {
	// fan=1 under unit delay: the token hops node to node; with a lazy
	// random map each hop goes to a fresh node until it revisits someone.
	// Every hop takes exactly 1 unit, so TimeUnits == Messages.
	const n = 16
	res, err := Run(Config{
		N: n, IDs: ids.Sequential(ids.LinearUniverse(n, 1), n),
		Wake: SubsetAtZero([]int{0}), Seed: 3,
	}, func(u int) Protocol { return &flooder{fan: 1, root: u == 0} })
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages == 0 {
		t.Fatal("no messages")
	}
	if math.Abs(res.TimeUnits-float64(res.Messages)) > 1e-9 {
		t.Fatalf("TimeUnits = %v, Messages = %d", res.TimeUnits, res.Messages)
	}
}

func TestFloodWakesEveryone(t *testing.T) {
	const n = 32
	res, err := Run(Config{
		N: n, IDs: ids.Sequential(ids.LinearUniverse(n, 1), n),
		Wake: SubsetAtZero([]int{5}), Seed: 7,
	}, func(u int) Protocol { return &flooder{fan: n - 1, root: u == 5} })
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAwake() {
		t.Fatal("flood did not wake everyone")
	}
	if res.WakeTime[5] != 0 {
		t.Fatalf("root woke at %v", res.WakeTime[5])
	}
	// Direct flood: everyone else wakes at exactly 1 unit.
	for u, w := range res.WakeTime {
		if u != 5 && math.Abs(w-1) > 1e-9 {
			t.Fatalf("node %d woke at %v", u, w)
		}
	}
}

// seqSender sends two messages over the same port, the first scheduled slow
// and the second fast; FIFO must prevent overtaking.
type seqSender struct{ env proto.Env }

func (s *seqSender) Wake(env proto.Env) []proto.Send {
	s.env = env
	return []proto.Send{
		{Port: 0, Msg: proto.Message{Kind: 1, A: 111}},
		{Port: 0, Msg: proto.Message{Kind: 1, A: 222}},
	}
}

func (s *seqSender) Receive(proto.Delivery) []proto.Send { return nil }
func (s *seqSender) Decision() proto.Decision            { return proto.NonLeader }

// recorder stores arrival order.
type recorder struct{ order []int64 }

func (r *recorder) Wake(proto.Env) []proto.Send { return nil }
func (r *recorder) Receive(d proto.Delivery) []proto.Send {
	r.order = append(r.order, d.Msg.A)
	return nil
}
func (r *recorder) Decision() proto.Decision { return proto.NonLeader }

// shrinkingDelay gives the i-th scheduled message a strictly smaller delay
// than the previous one, tempting the engine to reorder.
type shrinkingDelay struct{ next float64 }

func (s *shrinkingDelay) Delay(int, int, float64, *xrand.RNG) float64 {
	s.next /= 2
	return s.next
}

func TestFIFOPreventsOvertaking(t *testing.T) {
	const n = 2
	recs := make([]*recorder, n)
	res, err := Run(Config{
		N: n, IDs: ids.Assignment{1, 2},
		Wake:   SubsetAtZero([]int{0}),
		Delays: &shrinkingDelay{next: 1},
		Seed:   1,
	}, func(u int) Protocol {
		if u == 0 {
			return &seqSender{}
		}
		recs[u] = &recorder{}
		return recs[u]
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 2 {
		t.Fatalf("messages = %d", res.Messages)
	}
	// But wait: n=2 has 1 port; both messages went to node 1.
	got := recs[1].order
	if len(got) != 2 || got[0] != 111 || got[1] != 222 {
		t.Fatalf("delivery order = %v, want [111 222]", got)
	}
}

func TestDelayClamping(t *testing.T) {
	// Delay > 1 clamps to 1; delay <= 0 clamps to a positive epsilon.
	for _, d := range []float64{5, -3, 0} {
		d := d
		policy := delayFunc(func() float64 { return d })
		res, err := Run(Config{
			N: 2, IDs: ids.Assignment{1, 2},
			Wake:   SubsetAtZero([]int{0}),
			Delays: policy,
			Seed:   1,
		}, func(u int) Protocol {
			if u == 0 {
				return &seqSender{}
			}
			return &recorder{}
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.TimeUnits <= 0 || res.TimeUnits > 1+1e-9 {
			t.Fatalf("delay %v: TimeUnits = %v out of (0,1]", d, res.TimeUnits)
		}
	}
}

type delayFunc func() float64

func (f delayFunc) Delay(int, int, float64, *xrand.RNG) float64 { return f() }

func TestWakeBeforeReceive(t *testing.T) {
	// A message-woken node must see Wake before Receive of the waking
	// message.
	type wr struct {
		recorder
		wokeFirst bool
		woke      bool
	}
	nodes := make([]*wr, 2)
	mk := func(u int) Protocol {
		w := &wr{}
		nodes[u] = w
		return protoFuncs{
			wake: func(env proto.Env) []proto.Send {
				w.woke = true
				if u == 0 {
					return []proto.Send{{Port: 0, Msg: proto.Message{Kind: 9}}}
				}
				return nil
			},
			receive: func(d proto.Delivery) []proto.Send {
				if w.woke {
					w.wokeFirst = true
				}
				return nil
			},
		}
	}
	if _, err := Run(Config{
		N: 2, IDs: ids.Assignment{1, 2}, Wake: SubsetAtZero([]int{0}), Seed: 1,
	}, mk); err != nil {
		t.Fatal(err)
	}
	if !nodes[1].wokeFirst {
		t.Fatal("Receive ran before Wake on a message-woken node")
	}
}

// protoFuncs adapts closures to the Protocol interface.
type protoFuncs struct {
	wake    func(proto.Env) []proto.Send
	receive func(proto.Delivery) []proto.Send
}

func (p protoFuncs) Wake(env proto.Env) []proto.Send       { return p.wake(env) }
func (p protoFuncs) Receive(d proto.Delivery) []proto.Send { return p.receive(d) }
func (p protoFuncs) Decision() proto.Decision              { return proto.NonLeader }

// babbler sends forever (each received message triggers another), to test
// the event budget.
type babbler struct{ env proto.Env }

func (b *babbler) Wake(env proto.Env) []proto.Send {
	b.env = env
	return []proto.Send{{Port: 0, Msg: proto.Message{Kind: 1}}}
}

func (b *babbler) Receive(d proto.Delivery) []proto.Send {
	return []proto.Send{{Port: d.Port, Msg: proto.Message{Kind: 1}}}
}

func (b *babbler) Decision() proto.Decision { return proto.Undecided }

func TestMaxEventsGuard(t *testing.T) {
	res, err := Run(Config{
		N: 2, IDs: ids.Assignment{1, 2}, Wake: SubsetAtZero([]int{0}),
		MaxEvents: 100, Seed: 1,
	}, func(int) Protocol { return &babbler{} })
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("expected TimedOut")
	}
	if err := res.Validate(); err == nil {
		t.Fatal("Validate must fail after timeout")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	const n = 24
	assign := ids.Random(ids.LogUniverse(n), n, xrand.New(4))
	run := func() *Result {
		res, err := Run(Config{
			N: n, IDs: assign, Wake: SubsetAtZero([]int{0, 3, 9}),
			Delays: UniformDelay{Lo: 0.1}, Seed: 77,
		}, func(u int) Protocol { return &flooder{fan: 4, root: u == 0 || u == 3 || u == 9} })
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Messages != b.Messages || a.TimeUnits != b.TimeUnits {
		t.Fatalf("diverged: %d/%v vs %d/%v", a.Messages, a.TimeUnits, b.Messages, b.TimeUnits)
	}
	for u := range a.WakeTime {
		if a.WakeTime[u] != b.WakeTime[u] {
			t.Fatalf("wake times diverged at node %d", u)
		}
	}
}

func TestStaggeredWakeNormalization(t *testing.T) {
	// First wake at t=5; a single unit-delay message makes the makespan 1.
	res, err := Run(Config{
		N: 2, IDs: ids.Assignment{1, 2},
		Wake: WakeSchedule{{Node: 0, Time: 5}},
		Seed: 1,
	}, func(u int) Protocol {
		if u == 0 {
			return &seqSender{}
		}
		return &recorder{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TimeUnits-1) > 1e-9 {
		t.Fatalf("TimeUnits = %v, want 1", res.TimeUnits)
	}
}

func TestConfigErrors(t *testing.T) {
	mk := func(int) Protocol { return &recorder{} }
	if _, err := Run(Config{N: 0, Wake: SubsetAtZero([]int{0})}, mk); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := Run(Config{N: 2, IDs: ids.Assignment{1, 2}}, mk); err == nil {
		t.Fatal("empty wake schedule accepted")
	}
	if _, err := Run(Config{N: 2, IDs: ids.Assignment{1}, Wake: SubsetAtZero([]int{0})}, mk); err == nil {
		t.Fatal("ID mismatch accepted")
	}
	if _, err := Run(Config{N: 2, IDs: ids.Assignment{1, 2}, Wake: SubsetAtZero([]int{7})}, mk); err == nil {
		t.Fatal("invalid wake node accepted")
	}
	if _, err := Run(Config{
		N: 2, IDs: ids.Assignment{1, 2}, Wake: WakeSchedule{{Node: 0, Time: -1}},
	}, mk); err == nil {
		t.Fatal("negative wake time accepted")
	}
}

func TestDoubleWakeIgnored(t *testing.T) {
	// Waking the same node twice must call Wake only once.
	calls := 0
	_, err := Run(Config{
		N: 2, IDs: ids.Assignment{1, 2},
		Wake: WakeSchedule{{Node: 0, Time: 0}, {Node: 0, Time: 0.5}},
	}, func(u int) Protocol {
		return protoFuncs{
			wake: func(proto.Env) []proto.Send {
				if u == 0 {
					calls++
				}
				return nil
			},
			receive: func(proto.Delivery) []proto.Send { return nil },
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("Wake called %d times", calls)
	}
}

func TestSkewAndUniformPolicies(t *testing.T) {
	rng := xrand.New(1)
	u := UniformDelay{Lo: 0.25}
	for i := 0; i < 1000; i++ {
		d := u.Delay(0, 0, 0, rng)
		if d < 0.25 || d > 1 {
			t.Fatalf("UniformDelay out of range: %v", d)
		}
	}
	s := SkewDelay{Fast: 0.1, Mod: 2}
	if s.Delay(0, 0, 0, rng) != 1 || s.Delay(1, 0, 0, rng) != 0.1 {
		t.Fatal("SkewDelay routing wrong")
	}
	if (SkewDelay{}).Delay(5, 0, 0, rng) != 1 {
		t.Fatal("Mod<=1 should make everyone slow")
	}
}

func TestKindDelayPolicy(t *testing.T) {
	p := KindDelay{Slow: []uint8{7}, Fast: 0.1}
	rng := xrand.New(1)
	if got := p.DelayKind(0, 0, 7, 0, rng); got != 1 {
		t.Fatalf("slow kind delay = %v", got)
	}
	if got := p.DelayKind(0, 0, 8, 0, rng); got != 0.1 {
		t.Fatalf("fast kind delay = %v", got)
	}
	if got := (KindDelay{Slow: []uint8{7}}).DelayKind(0, 0, 8, 0, rng); got != 0.05 {
		t.Fatalf("default fast = %v", got)
	}
	if got := p.Delay(0, 0, 0, rng); got != 0.1 {
		t.Fatalf("plain Delay = %v", got)
	}
}

// --- fault injection hooks ---

func faultInjector(t *testing.T, plan faults.Plan, n int, seed uint64) *faults.Injector {
	t.Helper()
	inj, err := faults.NewInjector(plan, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// TestFaultsCrashedRootNeverWakes crashes the only adversarially woken node
// at time 0: the run must produce no messages and record the crash.
func TestFaultsCrashedRootNeverWakes(t *testing.T) {
	const n = 8
	res, err := Run(Config{
		N: n, IDs: ids.Sequential(ids.LinearUniverse(n, 1), n),
		Wake: SubsetAtZero([]int{0}), Seed: 3,
		Faults: faultInjector(t, faults.Plan{Crashes: []faults.Crash{{Node: 0, At: 0}}}, n, 9),
	}, func(u int) Protocol { return &flooder{fan: 1, root: u == 0} })
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 0 {
		t.Fatalf("Messages = %d, want 0", res.Messages)
	}
	if len(res.Crashed) != 1 || res.Crashed[0] != 0 {
		t.Fatalf("Crashed = %v, want [0]", res.Crashed)
	}
	if res.WakeTime[0] >= 0 {
		t.Fatalf("crashed root woke at %v", res.WakeTime[0])
	}
}

// TestFaultsDropFirstKillsOpeningMove drops exactly the first message: the
// token chain dies immediately but the send is still counted.
func TestFaultsDropFirstKillsOpeningMove(t *testing.T) {
	const n = 8
	res, err := Run(Config{
		N: n, IDs: ids.Sequential(ids.LinearUniverse(n, 1), n),
		Wake: SubsetAtZero([]int{0}), Seed: 3,
		Faults: faultInjector(t, faults.Plan{DropFirst: 1}, n, 9),
	}, func(u int) Protocol { return &flooder{fan: 1, root: u == 0} })
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 1 || res.Dropped != 1 {
		t.Fatalf("Messages = %d, Dropped = %d, want 1, 1", res.Messages, res.Dropped)
	}
	for u := 1; u < n; u++ {
		if res.WakeTime[u] >= 0 {
			t.Fatalf("node %d woke despite the dropped token", u)
		}
	}
}

// TestFaultsDuplicateCopies duplicates every message: the protocol sends the
// same count, the injector reports one extra copy per send, and receivers
// see doubled deliveries.
func TestFaultsDuplicateCopies(t *testing.T) {
	const n = 4
	res, err := Run(Config{
		N: n, IDs: ids.Sequential(ids.LinearUniverse(n, 1), n),
		Wake: SubsetAtZero([]int{0}), Seed: 3,
		Faults: faultInjector(t, faults.Plan{DupRate: 1}, n, 9),
	}, func(u int) Protocol { return &flooder{fan: 1, root: u == 0} })
	if err != nil {
		t.Fatal(err)
	}
	if res.Duplicated != res.Messages || res.Duplicated == 0 {
		t.Fatalf("Duplicated = %d, Messages = %d", res.Duplicated, res.Messages)
	}
}

// TestFaultsZeroPlanIdentical runs the same execution with no injector and a
// zero-plan injector: deeply identical results (no engine randomness used).
func TestFaultsZeroPlanIdentical(t *testing.T) {
	const n = 16
	assign := ids.Random(ids.LogUniverse(n), n, xrand.New(7))
	factory := func(u int) Protocol { return &flooder{fan: 3, root: u == 0} }
	cfg := Config{N: n, IDs: assign, Wake: SubsetAtZero([]int{0}), Seed: 42,
		Delays: UniformDelay{Lo: 0.05}}
	plain, err := Run(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = faultInjector(t, faults.Plan{}, n, 1234)
	faulted, err := Run(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, faulted) {
		t.Fatalf("zero-plan run diverged:\nplain   %+v\nfaulted %+v", plain, faulted)
	}
}

// TestFaultsQuietVictimStillRecorded: a crash that falls within the run's
// span must be recorded even if no event for the victim ever pops after it
// (final crash sweep), so a quietly crashed node never counts as a survivor.
// Node 1 here has no events at all: nodes 0 and 2 wake silently at times 0
// and 5, so only the sweep can observe node 1's crash at time 3.
func TestFaultsQuietVictimStillRecorded(t *testing.T) {
	const n = 3
	silent := func(u int) Protocol { return &flooder{fan: 0, root: u == 0} }
	cfg := Config{
		N: n, IDs: ids.Sequential(ids.LinearUniverse(n, 1), n),
		Wake: WakeSchedule{{Node: 0, Time: 0}, {Node: 2, Time: 5}}, Seed: 3,
	}
	cfg.Faults = faultInjector(t, faults.Plan{Crashes: []faults.Crash{{Node: 1, At: 3}}}, n, 9)
	res, err := Run(cfg, silent)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CrashedNode(1) {
		t.Fatalf("mid-span crash of an event-less node not recorded: %v", res.Crashed)
	}
	// Scheduled beyond the run's span (last event at time 5): not recorded.
	cfg.Faults = faultInjector(t, faults.Plan{Crashes: []faults.Crash{{Node: 1, At: 7}}}, n, 9)
	res, err = Run(cfg, silent)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashedNode(1) {
		t.Fatalf("crash beyond the run's span recorded: %v", res.Crashed)
	}
}
