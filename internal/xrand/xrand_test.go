package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first output")
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(0).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(13)
	const p, draws = 0.3, 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) empirical rate %v", p, got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	prop := func(seed uint64, sz uint8) bool {
		n := int(sz%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinctInRange(t *testing.T) {
	prop := func(seed uint64, a, b uint16) bool {
		n := int(a%1000) + 1
		k := int(b) % (n + 1)
		s := New(seed).Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleFull(t *testing.T) {
	s := New(17).Sample(10, 10)
	seen := make([]bool, 10)
	for _, v := range s {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("Sample(10,10) missing %d", i)
		}
	}
}

func TestSampleUniformFirstElement(t *testing.T) {
	r := New(23)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Sample(n, 1)[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("first-element bucket %d: got %d want ~%.0f", i, c, want)
		}
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(1,2) did not panic")
		}
	}()
	New(0).Sample(1, 2)
}

func TestBinomialMean(t *testing.T) {
	r := New(29)
	const n, p, draws = 50, 0.4, 20000
	sum := 0
	for i := 0; i < draws; i++ {
		sum += r.Binomial(n, p)
	}
	mean := float64(sum) / draws
	if math.Abs(mean-n*p) > 0.3 {
		t.Fatalf("Binomial(%d,%v) mean %v, want ~%v", n, p, mean, n*p)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		x, y, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkSample16(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Sample(1<<20, 16)
	}
}
