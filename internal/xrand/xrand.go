// Package xrand provides a small, deterministic pseudo-random number
// generator used by every randomized protocol and experiment in this
// repository.
//
// The generator is splitmix64 (Steele, Lea, Flood 2014): a 64-bit state
// advanced by a Weyl constant and finalized with a variant of the MurmurHash3
// mixer. It is not cryptographically secure; it is chosen because it is
// trivially seedable, fast, portable across Go versions (unlike math/rand's
// unexported algorithms), and makes every execution in this repository
// byte-for-byte reproducible from a single uint64 seed.
package xrand

// RNG is a deterministic pseudo-random number generator. The zero value is a
// valid generator seeded with 0; prefer New to make seeding explicit.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. Distinct seeds yield independent-
// looking streams.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives a new, independently-seeded generator from the current one.
// It is used to give every node in a simulated network its own private coin
// stream so that per-node randomness does not depend on scheduling order.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// SplitInto is Split without the allocation: it reseeds dst with the same
// stream Split would have returned. The engines use it to hold all n node
// generators in one flat slice instead of n heap objects.
func (r *RNG) SplitInto(dst *RNG) {
	dst.state = r.Uint64()
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Lemire's nearly-divisionless method with rejection to remove bias.
	hi, lo := mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = mul64(r.Uint64(), n)
		}
	}
	_ = lo
	return hi
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct values drawn uniformly without replacement from
// [0, n). It panics if k > n or k < 0. The result is in selection order, not
// sorted. It runs in O(k) time and space regardless of n, using a sparse
// partial Fisher-Yates shuffle, so sampling a handful of ports from a clique
// of millions of links is cheap.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("xrand: Sample with k out of range")
	}
	out := make([]int, 0, k)
	// swapped[i] records the value currently residing at virtual index i of
	// the implicitly shuffled array 0..n-1.
	swapped := make(map[int]int, 2*k)
	at := func(i int) int {
		if v, ok := swapped[i]; ok {
			return v
		}
		return i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		vi, vj := at(i), at(j)
		swapped[i], swapped[j] = vj, vi
		out = append(out, vj)
	}
	return out
}

// Binomial returns a sample from Binomial(n, p) by direct simulation for
// small n and a normal approximation is deliberately avoided: experiments
// need exact distributions at small scales and n here is never astronomically
// large on the hot path.
func (r *RNG) Binomial(n int, p float64) int {
	c := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			c++
		}
	}
	return c
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return hi, lo
}
