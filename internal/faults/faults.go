// Package faults is the deterministic fault-injection subsystem shared by
// both clique simulators. A Plan declares crash-stop, message-drop and
// message-duplication faults; an Injector samples the plan from a private
// seed and answers the engines' two hook questions — "is this node crashed
// at this instant?" and "what happens to this message?" — in a way that is
// byte-for-byte reproducible per (plan, n, seed).
//
// The injector owns its own RNG stream, separate from the protocol and
// engine streams, so a zero Plan (or a nil *Injector) leaves an execution
// identical to a fault-free run: the hooks never consume engine randomness.
//
// Instants are float64 and mean "round number" on the synchronous engine and
// "time in delay units" on the asynchronous one; a fault scheduled at instant
// t takes effect at the first hook whose instant is >= t. The paper's
// adversary controls wake-ups and delays; this package extends it with the
// crash/loss adversaries of the resilience literature (Kutten et al.,
// "Sublinear Bounds for Randomized Leader Election") so reproduction runs can
// ask at which fault rate each election guarantee breaks.
package faults

import (
	"fmt"
	"math"
	"sort"

	"cliquelect/internal/proto"
	"cliquelect/internal/xrand"
)

// Verdict is the injector's decision about one in-flight message.
type Verdict uint8

// Verdicts.
const (
	// Deliver passes the message through untouched.
	Deliver Verdict = iota
	// Drop loses the message: it counts as sent but is never delivered.
	Drop
	// Duplicate delivers the message twice (one extra copy).
	Duplicate
)

func (v Verdict) String() string {
	switch v {
	case Drop:
		return "drop"
	case Duplicate:
		return "duplicate"
	}
	return "deliver"
}

// Crash schedules one explicit crash-stop: node Node fails permanently at
// instant At (a round on the sync engine, a time on the async one). At 0 the
// node fails before doing anything.
type Crash struct {
	Node int
	At   float64
}

// DefaultCrashWindow is the horizon, in rounds/time units, over which sampled
// crash instants are drawn when Plan.CrashWindow is unset. It covers the
// makespan of every registered protocol at its usual parameters.
const DefaultCrashWindow = 8

// Adversary is an adaptive fault controller: the injector shows it every
// sent message (Observe) and asks it at every engine hook point — round
// boundaries on the sync engine, events on the async one — which nodes to
// crash-stop right now (Tick). Section 5's schedule adversary is adaptive,
// so an adaptive crash adversary is admissible in the same sense.
type Adversary interface {
	// Observe is called once per protocol send with the message's endpoints,
	// kind, payload words and the current instant.
	Observe(src, dst int, kind uint8, a, b int64, at float64)
	// Tick returns the nodes to crash-stop at instant at (may be nil or name
	// already-crashed nodes; the injector deduplicates).
	Tick(at float64) []int
}

// Plan declares the faults of one run. The zero Plan injects nothing.
type Plan struct {
	// CrashRate makes each node independently crash-stop with this
	// probability, at an instant sampled uniformly from [0, CrashWindow).
	CrashRate float64
	// CrashWindow is the sampling horizon for CrashRate victims; <= 0 means
	// DefaultCrashWindow.
	CrashWindow float64
	// Crashes schedules explicit crash-stops, in addition to sampled ones.
	Crashes []Crash
	// DropRate loses each message independently with this probability.
	DropRate float64
	// DropFirst loses the first DropFirst messages of the run outright — the
	// targeted variant that kills exactly the protocol's opening moves.
	DropFirst int
	// DupRate delivers each message twice with this probability.
	DupRate float64
	// NewAdversary, when non-nil, constructs the run's adaptive controller.
	// It is a factory, not an instance: every injector gets a fresh
	// controller, so one plan can drive many concurrent runs safely.
	NewAdversary func() Adversary
}

// IsZero reports whether the plan injects no faults at all.
func (p Plan) IsZero() bool {
	return p.CrashRate == 0 && len(p.Crashes) == 0 && p.DropRate == 0 &&
		p.DropFirst == 0 && p.DupRate == 0 && p.NewAdversary == nil
}

// Validate checks the plan against a network of n nodes.
func (p Plan) Validate(n int) error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"CrashRate", p.CrashRate}, {"DropRate", p.DropRate}, {"DupRate", p.DupRate}} {
		if f.v < 0 || f.v > 1 || math.IsNaN(f.v) {
			return fmt.Errorf("faults: %s = %v, want a probability in [0, 1]", f.name, f.v)
		}
	}
	if p.DropFirst < 0 {
		return fmt.Errorf("faults: DropFirst = %d", p.DropFirst)
	}
	for _, c := range p.Crashes {
		if c.Node < 0 || c.Node >= n {
			return fmt.Errorf("faults: crash schedule names invalid node %d (n = %d)", c.Node, n)
		}
		if c.At < 0 || math.IsNaN(c.At) {
			return fmt.Errorf("faults: crash of node %d at negative instant %v", c.Node, c.At)
		}
	}
	return nil
}

// Injector is one run's sampled fault state. A nil *Injector is valid and
// injects nothing, so engines call its hooks unconditionally.
type Injector struct {
	plan    Plan
	rng     *xrand.RNG
	adv     Adversary
	crashAt []float64 // per node; +Inf means never
	crashed []bool    // set when the crash is first observed by a hook
	seen    int64
	dropped int64
	duped   int64
}

// NewInjector samples the plan's fault state for a run of n nodes. The seed
// must be derived from the run's master seed without consuming the engine or
// protocol RNG streams (the elect layer salts the run seed).
func NewInjector(plan Plan, n int, seed uint64) (*Injector, error) {
	if err := plan.Validate(n); err != nil {
		return nil, err
	}
	in := &Injector{
		plan:    plan,
		rng:     xrand.New(seed),
		crashAt: make([]float64, n),
		crashed: make([]bool, n),
	}
	window := plan.CrashWindow
	if window <= 0 {
		window = DefaultCrashWindow
	}
	for u := range in.crashAt {
		in.crashAt[u] = math.Inf(1)
		if plan.CrashRate > 0 && in.rng.Bernoulli(plan.CrashRate) {
			in.crashAt[u] = window * in.rng.Float64()
		}
	}
	for _, c := range plan.Crashes {
		if c.At < in.crashAt[c.Node] {
			in.crashAt[c.Node] = c.At
		}
	}
	if plan.NewAdversary != nil {
		in.adv = plan.NewAdversary()
	}
	return in, nil
}

// Tick runs the adaptive adversary at instant at, scheduling its victims to
// crash immediately. Engines call it at every round boundary (sync) or event
// (async), before the crash checks for that instant.
func (in *Injector) Tick(at float64) {
	if in == nil || in.adv == nil {
		return
	}
	for _, u := range in.adv.Tick(at) {
		if u >= 0 && u < len(in.crashAt) && at < in.crashAt[u] {
			in.crashAt[u] = at
		}
	}
}

// CrashedAt reports whether node u is crash-stopped at instant at, recording
// the crash the first time it is observed. A crashed node neither sends nor
// receives, and a sleeping victim never wakes.
func (in *Injector) CrashedAt(u int, at float64) bool {
	if in == nil {
		return false
	}
	if in.crashed[u] {
		return true
	}
	if at >= in.crashAt[u] {
		in.crashed[u] = true
		return true
	}
	return false
}

// OnSend decides the fate of one protocol message from src to dst at instant
// at. The engine counts the message as sent regardless of the verdict; Drop
// suppresses its delivery and Duplicate delivers one extra copy.
func (in *Injector) OnSend(src, dst int, m proto.Message, at float64) Verdict {
	if in == nil {
		return Deliver
	}
	in.seen++
	if in.adv != nil {
		in.adv.Observe(src, dst, m.Kind, m.A, m.B, at)
	}
	if in.seen <= int64(in.plan.DropFirst) {
		in.dropped++
		return Drop
	}
	if in.plan.DropRate > 0 && in.rng.Bernoulli(in.plan.DropRate) {
		in.dropped++
		return Drop
	}
	if in.plan.DupRate > 0 && in.rng.Bernoulli(in.plan.DupRate) {
		in.duped++
		return Duplicate
	}
	return Deliver
}

// Crashed returns the sorted indices of nodes whose crash was observed
// during the run (victims scheduled past the run's end are not listed).
func (in *Injector) Crashed() []int {
	if in == nil {
		return nil
	}
	var out []int
	for u, c := range in.crashed {
		if c {
			out = append(out, u)
		}
	}
	sort.Ints(out)
	return out
}

// Dropped returns the number of messages the injector lost.
func (in *Injector) Dropped() int64 {
	if in == nil {
		return 0
	}
	return in.dropped
}

// Duplicated returns the number of extra message copies the injector
// delivered.
func (in *Injector) Duplicated() int64 {
	if in == nil {
		return 0
	}
	return in.duped
}

// CrashLowestSender is the canonical adaptive Adversary: it watches the
// first payload word of every message (the registered protocols put the
// sender's ID or rank there) and, at each tick, crash-stops the sender of
// the smallest value seen so far — "always kill the current front-runner".
// Use NewCrashLowestSender; the zero value crashes nobody.
type CrashLowestSender struct {
	budget int
	minVal map[int]int64 // node -> smallest first-word it ever sent
	killed map[int]bool
}

// NewCrashLowestSender returns a CrashLowestSender that crashes at most
// budget victims (budget < 1 is treated as 1).
func NewCrashLowestSender(budget int) *CrashLowestSender {
	if budget < 1 {
		budget = 1
	}
	return &CrashLowestSender{
		budget: budget,
		minVal: make(map[int]int64),
		killed: make(map[int]bool),
	}
}

// Observe implements Adversary.
func (a *CrashLowestSender) Observe(src, _ int, _ uint8, v, _ int64, _ float64) {
	if a.minVal == nil {
		return
	}
	if cur, ok := a.minVal[src]; !ok || v < cur {
		a.minVal[src] = v
	}
}

// Tick implements Adversary: it names the unkilled sender with the smallest
// observed value, one victim per tick, until the budget is spent.
func (a *CrashLowestSender) Tick(float64) []int {
	if a.budget <= 0 || len(a.minVal) == 0 {
		return nil
	}
	victim, best := -1, int64(0)
	for u, v := range a.minVal {
		if a.killed[u] {
			continue
		}
		if victim < 0 || v < best || (v == best && u < victim) {
			victim, best = u, v
		}
	}
	if victim < 0 {
		return nil
	}
	a.killed[victim] = true
	a.budget--
	return []int{victim}
}

// Compose fans the adversary hooks out to several controllers, so orthogonal
// adaptive strategies can be stacked in one plan.
func Compose(advs ...Adversary) Adversary { return composite(advs) }

type composite []Adversary

func (c composite) Observe(src, dst int, kind uint8, a, b int64, at float64) {
	for _, adv := range c {
		adv.Observe(src, dst, kind, a, b, at)
	}
}

func (c composite) Tick(at float64) []int {
	var out []int
	for _, adv := range c {
		out = append(out, adv.Tick(at)...)
	}
	return out
}

// Interface compliance checks.
var (
	_ Adversary = (*CrashLowestSender)(nil)
	_ Adversary = composite(nil)
)
