package faults

import (
	"reflect"
	"testing"

	"cliquelect/internal/proto"
)

func mustInjector(t *testing.T, plan Plan, n int, seed uint64) *Injector {
	t.Helper()
	in, err := NewInjector(plan, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{CrashRate: -0.1},
		{CrashRate: 1.5},
		{DropRate: 2},
		{DupRate: -1},
		{DropFirst: -1},
		{Crashes: []Crash{{Node: 8, At: 1}}},
		{Crashes: []Crash{{Node: -1, At: 1}}},
		{Crashes: []Crash{{Node: 0, At: -2}}},
	}
	for i, p := range bad {
		if err := p.Validate(8); err == nil {
			t.Errorf("plan %d (%+v) accepted", i, p)
		}
		if _, err := NewInjector(p, 8, 1); err == nil {
			t.Errorf("injector for plan %d (%+v) accepted", i, p)
		}
	}
	if err := (Plan{CrashRate: 0.5, DropRate: 1, DupRate: 0.25,
		Crashes: []Crash{{Node: 7, At: 3}}}).Validate(8); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestPlanIsZero(t *testing.T) {
	if !(Plan{}).IsZero() {
		t.Fatal("zero plan not zero")
	}
	nonzero := []Plan{
		{CrashRate: 0.1},
		{Crashes: []Crash{{Node: 0}}},
		{DropRate: 0.1},
		{DropFirst: 1},
		{DupRate: 0.1},
		{NewAdversary: func() Adversary { return NewCrashLowestSender(1) }},
	}
	for i, p := range nonzero {
		if p.IsZero() {
			t.Errorf("plan %d reported zero", i)
		}
	}
}

// TestNilInjector: every hook must be a safe no-op on a nil injector, so the
// engines can call them unconditionally.
func TestNilInjector(t *testing.T) {
	var in *Injector
	in.Tick(1)
	if in.CrashedAt(0, 99) {
		t.Fatal("nil injector crashed a node")
	}
	if v := in.OnSend(0, 1, proto.Message{}, 1); v != Deliver {
		t.Fatalf("nil injector verdict %v", v)
	}
	if in.Crashed() != nil || in.Dropped() != 0 || in.Duplicated() != 0 {
		t.Fatal("nil injector has non-zero counters")
	}
}

// TestDeterminism: identical (plan, n, seed) must reproduce the identical
// verdict sequence and crash schedule.
func TestDeterminism(t *testing.T) {
	plan := Plan{CrashRate: 0.3, DropRate: 0.2, DupRate: 0.1, DropFirst: 2}
	run := func() ([]Verdict, []int) {
		in := mustInjector(t, plan, 32, 77)
		var vs []Verdict
		for i := 0; i < 200; i++ {
			vs = append(vs, in.OnSend(i%32, (i+1)%32, proto.Message{A: int64(i)}, float64(i)/10))
		}
		for u := 0; u < 32; u++ {
			in.CrashedAt(u, DefaultCrashWindow)
		}
		return vs, in.Crashed()
	}
	v1, c1 := run()
	v2, c2 := run()
	if !reflect.DeepEqual(v1, v2) || !reflect.DeepEqual(c1, c2) {
		t.Fatal("same seed produced different fault schedules")
	}
	if len(c1) == 0 {
		t.Fatal("CrashRate=0.3 over 32 nodes crashed nobody (check sampling)")
	}
}

func TestDropFirstExact(t *testing.T) {
	in := mustInjector(t, Plan{DropFirst: 3}, 4, 1)
	for i := 0; i < 10; i++ {
		v := in.OnSend(0, 1, proto.Message{}, 0)
		want := Drop
		if i >= 3 {
			want = Deliver
		}
		if v != want {
			t.Fatalf("message %d: verdict %v, want %v", i, v, want)
		}
	}
	if in.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", in.Dropped())
	}
}

// TestCrashWindow: every CrashRate=1 victim must have crashed by the window
// end, and none before instant 0.
func TestCrashWindow(t *testing.T) {
	const n = 24
	in := mustInjector(t, Plan{CrashRate: 1, CrashWindow: 4}, n, 5)
	for u := 0; u < n; u++ {
		if !in.CrashedAt(u, 4) {
			t.Fatalf("node %d alive after the crash window", u)
		}
	}
	if got := len(in.Crashed()); got != n {
		t.Fatalf("Crashed lists %d nodes, want %d", got, n)
	}
}

// TestExplicitCrashWins: an explicit crash earlier than the sampled instant
// takes precedence.
func TestExplicitCrashWins(t *testing.T) {
	in := mustInjector(t, Plan{Crashes: []Crash{{Node: 2, At: 3}}}, 8, 5)
	if in.CrashedAt(2, 2.9) {
		t.Fatal("node 2 crashed before its scheduled instant")
	}
	if !in.CrashedAt(2, 3) {
		t.Fatal("node 2 alive at its scheduled instant")
	}
	if in.CrashedAt(3, 1e9) {
		t.Fatal("unscheduled node crashed")
	}
}

func TestCrashLowestSender(t *testing.T) {
	adv := NewCrashLowestSender(2)
	adv.Observe(4, 0, 1, 40, 0, 0)
	adv.Observe(7, 0, 1, 7, 0, 0)
	adv.Observe(9, 0, 1, 90, 0, 0)
	if got := adv.Tick(1); len(got) != 1 || got[0] != 7 {
		t.Fatalf("first victim %v, want [7]", got)
	}
	if got := adv.Tick(2); len(got) != 1 || got[0] != 4 {
		t.Fatalf("second victim %v, want [4]", got)
	}
	if got := adv.Tick(3); got != nil {
		t.Fatalf("budget exhausted but Tick returned %v", got)
	}
	if got := (&CrashLowestSender{}).Tick(1); got != nil {
		t.Fatalf("zero-value adversary returned %v", got)
	}
}

// TestAdversaryDrivesInjector: a Tick victim is crashed from that instant on.
func TestAdversaryDrivesInjector(t *testing.T) {
	plan := Plan{NewAdversary: func() Adversary { return NewCrashLowestSender(1) }}
	in := mustInjector(t, plan, 8, 1)
	in.OnSend(5, 1, proto.Message{A: 10}, 1)
	in.OnSend(3, 1, proto.Message{A: 99}, 1)
	in.Tick(2)
	if !in.CrashedAt(5, 2) {
		t.Fatal("lowest sender not crashed after Tick")
	}
	if in.CrashedAt(3, 2) {
		t.Fatal("wrong node crashed")
	}
	if got := in.Crashed(); !reflect.DeepEqual(got, []int{5}) {
		t.Fatalf("Crashed = %v, want [5]", got)
	}
}

func TestCompose(t *testing.T) {
	a := NewCrashLowestSender(1)
	b := NewCrashLowestSender(1)
	adv := Compose(a, b)
	adv.Observe(2, 0, 1, 20, 0, 0)
	adv.Observe(6, 0, 1, 60, 0, 0)
	got := adv.Tick(1)
	// Both components observed both messages, so both name node 2.
	if !reflect.DeepEqual(got, []int{2, 2}) {
		t.Fatalf("composed Tick = %v, want [2 2]", got)
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{Deliver: "deliver", Drop: "drop", Duplicate: "duplicate"} {
		if v.String() != want {
			t.Fatalf("Verdict(%d).String() = %q", v, v.String())
		}
	}
}
