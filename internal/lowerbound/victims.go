package lowerbound

import (
	"cliquelect/internal/core"
	"cliquelect/internal/ids"
	"cliquelect/internal/simsync"
	"cliquelect/internal/xrand"
)

// This file provides the victim-algorithm factories and run helpers the
// lower-bound CLIs and benchmarks need, so that callers outside internal/
// drive the adversary harnesses without importing the engine or protocol
// packages directly.

// TradeoffVictim returns the Theorem 3.10 algorithm with parameter k as a
// victim for the adversary games.
func TradeoffVictim(k int) simsync.Factory { return core.NewTradeoff(k) }

// HonestLasVegas returns the Theorem 3.16 Las Vegas algorithm, the honest
// subject of CheckLasVegas.
func HonestLasVegas() simsync.Factory { return core.NewLasVegas() }

// RunSingleSend runs the Lemma 3.12 single-send transform of the given
// victim on an n-node clique (IDs drawn from the Theorem 3.8 universe using
// seed) and returns the message count. The Theorem 3.11 census reasons about
// single-send executions; this helper produces them without exposing the
// engine.
func RunSingleSend(n int, victim simsync.Factory, seed uint64) (int64, error) {
	rng := xrand.New(seed)
	res, err := simsync.Run(simsync.Config{
		N: n, IDs: ids.Random(ids.LogUniverse(n), n, rng),
		Seed: rng.Uint64(), MaxRounds: 16 * n,
	}, NewSingleSend(victim))
	if err != nil {
		return 0, err
	}
	return res.Messages, nil
}
