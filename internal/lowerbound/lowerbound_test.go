package lowerbound

import (
	"math"
	"testing"

	"cliquelect/internal/core"
	"cliquelect/internal/ids"
	"cliquelect/internal/portmap"
	"cliquelect/internal/proto"
	"cliquelect/internal/simsync"
	"cliquelect/internal/xrand"
)

// --- ComponentGame (Theorem 3.8 / Lemma 3.9) ---

func TestComponentGameRejectsBadArgs(t *testing.T) {
	f := core.NewTradeoff(3)
	if _, err := ComponentGame(100, 2, f, 1); err == nil {
		t.Fatal("non-power-of-two n accepted")
	}
	if _, err := ComponentGame(64, 1, f, 1); err == nil {
		t.Fatal("f=1 accepted")
	}
}

func TestComponentGameStallsTradeoff(t *testing.T) {
	// Play the game at the algorithm's own budget: first measure its actual
	// f = messages/n, then verify the adversary keeps every component within
	// the Lemma 3.9 caps until the algorithm overspends some block's
	// allowance (which the full-fan-out final round always does).
	const n = 256
	for _, k := range []int{3, 4} {
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(uint64(k)))
		plain, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: 1}, core.NewTradeoff(k))
		if err != nil {
			t.Fatal(err)
		}
		f := float64(plain.Messages) / float64(n)
		res, err := ComponentGame(n, f, core.NewTradeoff(k), 42)
		if err != nil {
			t.Fatal(err)
		}
		if res.StalledRounds() < 1 {
			t.Fatalf("k=%d f=%.1f: adversary stalled 0 rounds (capViolated=%d budget=%d)",
				k, f, res.CapViolatedAt, res.BudgetExceededAt)
		}
		for _, cr := range res.Rounds[1:] {
			if res.BudgetExceededAt != 0 && cr.Round >= res.BudgetExceededAt {
				break // past budget: caps may legitimately break
			}
			if cr.MaxComponent > cr.Cap {
				t.Fatalf("k=%d round %d: component %d exceeds cap %d before budget was exceeded",
					k, cr.Round, cr.MaxComponent, cr.Cap)
			}
		}
	}
}

func TestComponentGameTheoremConsistency(t *testing.T) {
	// Theorem 3.8 consistency check on the real algorithm: with measured
	// message complexity n·f_actual, the round count must satisfy
	// T >= (log2(n)-1)/(log2(f_actual)+1) + 1 (up to the theorem's
	// power-of-two slack of one round).
	for _, k := range []int{3, 4, 5} {
		const n = 1024
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(uint64(k)))
		run, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: 5}, core.NewTradeoff(k))
		if err != nil {
			t.Fatal(err)
		}
		fActual := float64(run.Messages) / float64(n)
		if fActual <= 1 {
			t.Fatalf("k=%d: degenerate f", k)
		}
		game := &ComponentGameResult{}
		_ = game
		predicted := (log2(float64(n))-1)/(log2(fActual)+1) + 1
		if float64(run.Rounds)+1 < predicted {
			t.Fatalf("k=%d: rounds %d below theorem floor %.2f at f=%.1f",
				k, run.Rounds, predicted, fActual)
		}
	}
}

// profligate broadcasts to everyone in round 1: the budget check must trip
// immediately for small f.
func TestComponentGameFlagsOverspender(t *testing.T) {
	broadcast := func(int) simsync.Protocol { return &broadcastAll{} }
	res, err := ComponentGame(64, 2, broadcast, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.BudgetExceededAt != 1 {
		t.Fatalf("budget exceeded at %d, want 1", res.BudgetExceededAt)
	}
}

type broadcastAll struct {
	env    proto.Env
	dec    proto.Decision
	halted bool
}

func (b *broadcastAll) Init(env proto.Env) { b.env = env }

func (b *broadcastAll) Send(round int) []proto.Send {
	if round != 1 {
		return nil
	}
	out := make([]proto.Send, b.env.Ports())
	for p := range out {
		out[p] = proto.Send{Port: p, Msg: proto.Message{Kind: 1, A: b.env.ID}}
	}
	return out
}

func (b *broadcastAll) Deliver(round int, inbox []proto.Delivery) {
	best := b.env.ID
	for _, d := range inbox {
		if d.Msg.A > best {
			best = d.Msg.A
		}
	}
	if best == b.env.ID {
		b.dec = proto.Leader
	} else {
		b.dec = proto.NonLeader
	}
	b.halted = true
}

func (b *broadcastAll) Decision() proto.Decision { return b.dec }
func (b *broadcastAll) Halted() bool             { return b.halted }

func TestComponentGamePredictedRounds(t *testing.T) {
	res, err := ComponentGame(1024, 2, core.NewTradeoff(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	// (log2(1024)-1)/(log2(2)+1)+1 = 9/2+1 = 5.5.
	if res.PredictedRounds < 5.4 || res.PredictedRounds > 5.6 {
		t.Fatalf("predicted = %v", res.PredictedRounds)
	}
}

// --- SingleSend (Lemma 3.12) ---

func TestSingleSendEquivalence(t *testing.T) {
	// On a fixed (oblivious) port mapping, the transform must elect the
	// same leader with exactly the same message count, in <= n·T rounds.
	const n = 32
	assign := ids.Random(ids.LogUniverse(n), n, xrand.New(13))
	cases := map[string]simsync.Factory{
		"tradeoff-k3":  core.NewTradeoff(3),
		"tradeoff-k4":  core.NewTradeoff(4),
		"afekgafni-k2": core.NewAfekGafni(2),
		"smallid":      nil, // filled below with the right universe
	}
	smallAssign := ids.Random(ids.LinearUniverse(n, 2), n, xrand.New(14))
	cases["smallid"] = core.NewSmallID(4, 2)

	for name, factory := range cases {
		a := assign
		if name == "smallid" {
			a = smallAssign
		}
		direct, err := simsync.Run(simsync.Config{
			N: n, IDs: a, Ports: portmap.NewSharedPerm(n, xrand.New(99)), Seed: 1,
		}, factory)
		if err != nil {
			t.Fatalf("%s direct: %v", name, err)
		}
		wrapped, err := simsync.Run(simsync.Config{
			N: n, IDs: a, Ports: portmap.NewSharedPerm(n, xrand.New(99)), Seed: 1,
			MaxRounds: n * (direct.Rounds + 2),
		}, NewSingleSend(factory))
		if err != nil {
			t.Fatalf("%s wrapped: %v", name, err)
		}
		if wrapped.TimedOut {
			t.Fatalf("%s: wrapped run timed out", name)
		}
		if direct.UniqueLeader() != wrapped.UniqueLeader() {
			t.Fatalf("%s: leaders differ: %d vs %d", name, direct.UniqueLeader(), wrapped.UniqueLeader())
		}
		if direct.Messages != wrapped.Messages {
			t.Fatalf("%s: messages differ: %d vs %d", name, direct.Messages, wrapped.Messages)
		}
		if wrapped.Rounds > n*direct.Rounds {
			t.Fatalf("%s: wrapped rounds %d exceed n·T = %d", name, wrapped.Rounds, n*direct.Rounds)
		}
	}
}

func TestSingleSendIsSingleSend(t *testing.T) {
	// No node may send more than one message per engine round.
	const n = 16
	assign := ids.Random(ids.LogUniverse(n), n, xrand.New(3))
	perRound := make(map[int]map[int]int) // round -> node -> sends
	factory := core.NewTradeoff(3)
	counting := func(node int) simsync.Protocol {
		return &sendCounter{inner: NewSingleSend(factory)(node), node: node, perRound: perRound}
	}
	if _, err := simsync.Run(simsync.Config{
		N: n, IDs: assign, Ports: portmap.NewCanonical(n), Seed: 1,
		MaxRounds: 16 * n,
	}, counting); err != nil {
		t.Fatal(err)
	}
	for round, nodes := range perRound {
		for node, c := range nodes {
			if c > 1 {
				t.Fatalf("round %d node %d sent %d messages", round, node, c)
			}
		}
	}
}

type sendCounter struct {
	inner    simsync.Protocol
	node     int
	perRound map[int]map[int]int
}

func (sc *sendCounter) Init(env proto.Env) { sc.inner.Init(env) }

func (sc *sendCounter) Send(round int) []proto.Send {
	out := sc.inner.Send(round)
	if len(out) > 0 {
		if sc.perRound[round] == nil {
			sc.perRound[round] = make(map[int]int)
		}
		sc.perRound[round][sc.node] += len(out)
	}
	return out
}

func (sc *sendCounter) Deliver(round int, inbox []proto.Delivery) { sc.inner.Deliver(round, inbox) }
func (sc *sendCounter) Decision() proto.Decision                  { return sc.inner.Decision() }
func (sc *sendCounter) Halted() bool                              { return sc.inner.Halted() }

// --- CheckLasVegas (Theorem 3.16) ---

func TestCheckLasVegasCatchesCheater(t *testing.T) {
	rep, err := CheckLasVegas(64, 300, NewCheatingLasVegas(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatalf("cheating algorithm passed the audit: %+v", rep)
	}
	if rep.MeanMessages >= float64(rep.N) {
		t.Fatalf("cheater is supposed to be sublinear, sent %.1f", rep.MeanMessages)
	}
}

func TestCheckLasVegasPassesHonestAlgorithm(t *testing.T) {
	rep, err := CheckLasVegas(64, 120, core.NewLasVegas(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("honest Las Vegas flagged: %+v", rep)
	}
	if rep.ZeroLeader+rep.MultiLeader != 0 {
		t.Fatalf("honest Las Vegas failed %d+%d times", rep.ZeroLeader, rep.MultiLeader)
	}
	// The Omega(n) bound in action: the honest algorithm pays at least the
	// announcement, n-1 messages.
	if rep.MeanMessages < float64(rep.N-1) {
		t.Fatalf("honest Las Vegas sent only %.1f messages", rep.MeanMessages)
	}
}

func TestCheckLasVegasArgs(t *testing.T) {
	if _, err := CheckLasVegas(63, 10, core.NewLasVegas(), 1); err == nil {
		t.Fatal("odd n accepted")
	}
}

// --- WakeupGame (Theorem 4.2) ---

func TestWakeupGameTradeoffShape(t *testing.T) {
	res, err := WakeupGame(256, 40, []float64{0.25, 1, 3}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	lo, mid, hi := res.Points[0], res.Points[1], res.Points[2]
	if lo.WakeFailRate < 0.9 {
		t.Fatalf("tiny fan-out should fail to wake: rate %.2f", lo.WakeFailRate)
	}
	if hi.WakeFailRate > 0.2 {
		t.Fatalf("large fan-out should wake everyone: rate %.2f", hi.WakeFailRate)
	}
	if !(lo.MeanMessages < mid.MeanMessages && mid.MeanMessages < hi.MeanMessages) {
		t.Fatal("message counts not increasing in beta")
	}
	// Reliable wake-up costs a constant fraction of the n^{3/2} envelope.
	if hi.MeanMessages < res.Envelope/8 {
		t.Fatalf("reliable point spends %.0f, suspiciously below envelope %.0f",
			hi.MeanMessages, res.Envelope)
	}
}

func TestWakeupGameArgs(t *testing.T) {
	if _, err := WakeupGame(2, 1, []float64{1}, 1); err == nil {
		t.Fatal("tiny n accepted")
	}
	if _, err := WakeupGame(64, 0, []float64{1}, 1); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func log2(x float64) float64 { return math.Log2(x) }

// TestComponentGameArrivalAblation verifies the design choice documented in
// DESIGN.md: the adversary must control arrival ports (Lemma 3.3 gives it
// both endpoints). With uniform arrivals, a fan-out equal to blockSize-1
// cannot be contained and the caps break in round 1; with low-port arrivals
// the same configuration is contained.
func TestComponentGameArrivalAblation(t *testing.T) {
	// f=3 -> sigmaBase=3 -> round-2 blocks of 8; Tradeoff(4) at n=256 sends
	// ceil(256^{1/3}) = 7 = blockSize-1 messages per node in round 1.
	const n, f = 256, 3.0
	withChooser, err := ComponentGame(n, f, core.NewTradeoff(4), 5)
	if err != nil {
		t.Fatal(err)
	}
	without, err := ComponentGame(n, f, core.NewTradeoff(4), 5, WithUniformArrivals())
	if err != nil {
		t.Fatal(err)
	}
	if got := withChooser.Rounds[1].MaxComponent; got > 8 {
		t.Fatalf("low-port arrivals: round-1 component %d > 8", got)
	}
	if got := without.Rounds[1].MaxComponent; got <= 8 {
		t.Fatalf("uniform arrivals unexpectedly contained round 1 (component %d)", got)
	}
}
