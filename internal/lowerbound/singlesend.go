package lowerbound

import (
	"cliquelect/internal/proto"
	"cliquelect/internal/simsync"
)

// SingleSend wraps a multicast synchronous protocol into the single-send
// simulation of Lemma 3.12: each round r of the inner algorithm A is
// simulated by the block of engine rounds (r-1)·n+1 .. r·n. The wrapper
// releases A's round-r messages one per engine round (a node sends at most
// n-1 messages per round, so the block always suffices), buffers everything
// it receives during the block, and hands the buffer to A at the block's
// final round. Lemma 3.12: the transformed algorithm sends exactly the same
// messages, elects the same leader, and takes at most n·T(n) rounds.
//
// The Theorem 3.11 harness runs algorithms through this transform because
// the port-opening census of Lemma 3.13/3.14 is defined for single-send
// algorithms.
type SingleSend struct {
	n     int
	inner simsync.Protocol

	queue  []proto.Send     // inner sends awaiting release
	buffer []proto.Delivery // deliveries awaiting the block boundary
}

// NewSingleSend returns a simsync factory applying the Lemma 3.12 transform
// to every node of the given inner factory.
func NewSingleSend(inner simsync.Factory) simsync.Factory {
	return func(node int) simsync.Protocol {
		return &SingleSend{inner: inner(node)}
	}
}

// Init implements simsync.Protocol.
func (s *SingleSend) Init(env proto.Env) {
	s.n = env.N
	s.inner.Init(env)
}

// innerRound maps an engine round to the simulated round of A.
func (s *SingleSend) innerRound(engineRound int) (r, offset int) {
	r = (engineRound-1)/s.n + 1
	offset = (engineRound-1)%s.n + 1
	return r, offset
}

// Send implements simsync.Protocol.
func (s *SingleSend) Send(engineRound int) []proto.Send {
	if s.n == 1 {
		return s.inner.Send(engineRound)
	}
	r, offset := s.innerRound(engineRound)
	if offset == 1 && !s.inner.Halted() {
		// Block start: collect A's round-r multicast.
		s.queue = append(s.queue, s.inner.Send(r)...)
	}
	if len(s.queue) == 0 {
		return nil
	}
	head := s.queue[0]
	s.queue = s.queue[1:]
	return []proto.Send{head}
}

// Deliver implements simsync.Protocol.
func (s *SingleSend) Deliver(engineRound int, inbox []proto.Delivery) {
	if s.n == 1 {
		s.inner.Deliver(engineRound, inbox)
		return
	}
	s.buffer = append(s.buffer, inbox...)
	r, offset := s.innerRound(engineRound)
	if offset == s.n {
		// Block end: A processes the entire block's inbox as its round-r
		// receive phase.
		buf := s.buffer
		s.buffer = nil
		if !s.inner.Halted() {
			s.inner.Deliver(r, buf)
		}
	}
}

// Decision implements simsync.Protocol.
func (s *SingleSend) Decision() proto.Decision { return s.inner.Decision() }

// Halted implements simsync.Protocol: the wrapper only halts once the inner
// algorithm halted and all queued messages have been released.
func (s *SingleSend) Halted() bool {
	return s.inner.Halted() && len(s.queue) == 0 && len(s.buffer) == 0
}

var _ simsync.Protocol = (*SingleSend)(nil)
