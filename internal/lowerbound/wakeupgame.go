package lowerbound

import (
	"fmt"
	"math"

	"cliquelect/internal/ids"
	"cliquelect/internal/proto"
	"cliquelect/internal/simsync"
	"cliquelect/internal/xrand"
)

// WakeupPoint is one fan-out setting of the WakeupGame sweep.
type WakeupPoint struct {
	// Beta scales the root fan-out: roots send Beta·sqrt(n) wake-ups.
	Beta float64
	// Fanout is the concrete per-root message count used.
	Fanout int
	// MeanMessages is the observed expected message complexity.
	MeanMessages float64
	// WakeFailRate is the fraction of trials in which some node was never
	// woken within 2 rounds.
	WakeFailRate float64
}

// WakeupGameResult is the Theorem 4.2 message/success sweep.
type WakeupGameResult struct {
	N      int
	Trials int
	Points []WakeupPoint
	// Envelope is n^{3/2}, the Theorem 4.2 message floor for reliable
	// 2-round wake-up.
	Envelope float64
}

// WakeupGame measures the tradeoff behind Theorem 4.2: any 2-round
// algorithm that wakes all nodes with constant probability needs
// Omega(n^{3/2}) expected messages. It sweeps the root fan-out beta·sqrt(n)
// of the generic 2-round spread protocol (roots spread in round 1, every
// receiver relays beta·sqrt(n) more wake-ups in round 2) and records, per
// beta, expected messages and the wake-up failure rate: failures vanish
// just as the message count crosses the n^{3/2} envelope, from below.
//
// The adversary plays its strongest card from the proof: it wakes exactly
// one root (so the protocol cannot rely on many simultaneous spreaders).
func WakeupGame(n, trials int, betas []float64, seed uint64) (*WakeupGameResult, error) {
	if n < 4 {
		return nil, fmt.Errorf("lowerbound: n = %d too small", n)
	}
	if trials < 1 {
		return nil, fmt.Errorf("lowerbound: trials = %d", trials)
	}
	rng := xrand.New(seed)
	out := &WakeupGameResult{N: n, Trials: trials, Envelope: math.Pow(float64(n), 1.5)}
	for _, beta := range betas {
		fan := int(math.Round(beta * math.Sqrt(float64(n))))
		if fan < 1 {
			fan = 1
		}
		if fan > n-1 {
			fan = n - 1
		}
		var msgs int64
		fails := 0
		for i := 0; i < trials; i++ {
			assign := ids.Sequential(ids.LinearUniverse(n, 1), n)
			res, err := simsync.Run(simsync.Config{
				N: n, IDs: assign, Seed: rng.Uint64(),
				Wake:      simsync.AdversarialSet{Nodes: []int{int(rng.Uint64n(uint64(n)))}},
				MaxRounds: 8,
			}, func(int) simsync.Protocol { return &spread2{fan: fan} })
			if err != nil {
				return nil, err
			}
			msgs += res.Messages
			if !res.AllAwake() {
				fails++
			}
		}
		out.Points = append(out.Points, WakeupPoint{
			Beta:         beta,
			Fanout:       fan,
			MeanMessages: float64(msgs) / float64(trials),
			WakeFailRate: float64(fails) / float64(trials),
		})
	}
	return out, nil
}

// spread2 is the generic 2-round wake-up protocol of the Theorem 4.2
// discussion: roots spread `fan` wake-ups in round 1; nodes woken in round
// 1 relay `fan` wake-ups each in round 2; everyone halts after round 2.
type spread2 struct {
	fan     int
	env     proto.Env
	started bool
	root    bool
	relay   bool
	halted  bool
	dec     proto.Decision
}

func (s *spread2) Init(env proto.Env) { s.env = env }

func (s *spread2) Send(round int) []proto.Send {
	if !s.started {
		s.started = true
		s.root = true
	}
	var doSend bool
	switch round {
	case 1:
		doSend = s.root
	case 2:
		doSend = s.relay
	}
	if !doSend {
		return nil
	}
	fan := s.fan
	if fan > s.env.Ports() {
		fan = s.env.Ports()
	}
	ports := s.env.RNG.Sample(s.env.Ports(), fan)
	out := make([]proto.Send, len(ports))
	for i, p := range ports {
		out[i] = proto.Send{Port: p, Msg: proto.Message{Kind: 1}}
	}
	return out
}

func (s *spread2) Deliver(round int, inbox []proto.Delivery) {
	if !s.started {
		s.started = true
		if round == 1 {
			s.relay = true // woken in round 1: relays in round 2
		}
	}
	if round >= 2 {
		s.dec = proto.NonLeader
		s.halted = true
	}
}

func (s *spread2) Decision() proto.Decision { return s.dec }
func (s *spread2) Halted() bool             { return s.halted }

var _ simsync.Protocol = (*spread2)(nil)
