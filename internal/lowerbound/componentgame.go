// Package lowerbound turns the paper's lower-bound proofs into executable
// adversaries and checkers:
//
//   - ComponentGame plays the adaptive port-wiring adversary of Theorem 3.8
//     / Lemma 3.9 against a real deterministic algorithm and verifies the
//     per-round component-growth cap that forces the time/message tradeoff.
//   - SingleSend implements the Lemma 3.12 transform from multicast to
//     single-send algorithms, used by the Theorem 3.11 harness.
//   - CheatingLasVegas + CheckLasVegas exhibit the Theorem 3.16 argument:
//     any o(n)-message Las Vegas algorithm has silent node sets whose
//     composition breaks correctness.
//   - WakeupGame measures the message/success tradeoff behind Theorem 4.2's
//     Omega(n^{3/2}) bound for 2-round wake-up.
package lowerbound

import (
	"fmt"
	"math"

	"cliquelect/internal/ids"
	"cliquelect/internal/portmap"
	"cliquelect/internal/proto"
	"cliquelect/internal/simsync"
	"cliquelect/internal/trace"
	"cliquelect/internal/xrand"
)

// ComponentRound is one round's view of the communication graph under the
// adversarial wiring. MaxComponent is measured after the round's sends,
// i.e. on G_{r+1} in the paper's notation, whose Lemma 3.9 cap is
// 2^{sigma_{r+1}}.
type ComponentRound struct {
	Round        int
	Messages     int64
	NewEdges     int
	MaxComponent int
	Cap          int
}

// ComponentGameResult records one play of the Theorem 3.8 adversary game.
type ComponentGameResult struct {
	N int
	// F is the message budget parameter f(n): Theorem 3.8 concerns
	// algorithms sending at most n·f(n) messages.
	F float64
	// SigmaBase is ceil(log2 f)+1: block sizes grow as 2^{SigmaBase·(r-1)}.
	SigmaBase int
	// Rounds holds per-round observations (index 0 unused).
	Rounds []ComponentRound
	// PredictedRounds is Theorem 3.8's round lower bound for this budget:
	// (log2(n)-1)/(log2(f)+1) + 1.
	PredictedRounds float64
	// CapViolatedAt is the first round whose post-round max component
	// exceeded the Lemma 3.9 cap (0 = never). Under the adversary's wiring
	// this can only happen once some block overspends its per-round message
	// allowance (at which point the real Lemma 3.9 adversary would have
	// pruned the ID assignment, which a single execution cannot do).
	CapViolatedAt int
	// BudgetExceededAt is the first round in which the per-block message
	// load exceeded mu_{r+1} = 2^{sigma_r}·(2f-1) (0 = never).
	BudgetExceededAt int
	// Result holds the underlying execution's measurements.
	Result *simsync.Result
}

// StalledRounds returns the number of leading rounds in which the adversary
// kept every component at or below its cap — the empirical round lower
// bound exhibited by the game.
func (r *ComponentGameResult) StalledRounds() int {
	if r.CapViolatedAt == 0 {
		return len(r.Rounds) - 1
	}
	return r.CapViolatedAt - 1
}

// roundTap wraps a protocol to observe round boundaries: the adversary's
// chooser needs the current round, and the game snapshots component growth
// whenever a new round's send phase begins.
type roundTap struct {
	inner   simsync.Protocol
	onRound func(r int)
}

func (rt *roundTap) Init(env proto.Env) { rt.inner.Init(env) }

func (rt *roundTap) Send(round int) []proto.Send {
	rt.onRound(round)
	return rt.inner.Send(round)
}

func (rt *roundTap) Deliver(round int, inbox []proto.Delivery) {
	rt.inner.Deliver(round, inbox)
}

func (rt *roundTap) Decision() proto.Decision { return rt.inner.Decision() }
func (rt *roundTap) Halted() bool             { return rt.inner.Halted() }

var _ simsync.Protocol = (*roundTap)(nil)

// GameOption configures a ComponentGame (ablations).
type GameOption func(*gameOpts)

type gameOpts struct {
	uniformArrivals bool
}

// WithUniformArrivals disables the adversary's low-port arrival wiring —
// arrival ports are drawn uniformly instead, as a non-adaptive adversary
// would. This is the ablation of the Lemma 3.3 insight that the adversary
// controls *both* endpoints of an unused link: without it, a deterministic
// algorithm's low-port sends cannot reuse inbound links, blocks saturate,
// and the component caps break almost immediately.
func WithUniformArrivals() GameOption {
	return func(o *gameOpts) { o.uniformArrivals = true }
}

// ComponentGame plays the Lemma 3.9 adversary against a deterministic
// synchronous algorithm under simultaneous wake-up.
//
// The adversary maintains a decomposition of the nodes into contiguous
// blocks of size 2^{sigma_r}. Whenever a node opens an unused port in round
// r, the wiring strategy directs the message inside the node's round-(r+1)
// block (the group of round-r blocks being merged, exactly Lemma 3.9's
// redirection of newly opened ports into the sibling blocks); messages over
// used ports stay within the sender's component automatically. Components
// therefore cannot outgrow the blocks, and by Corollary 3.7's majority
// argument the algorithm cannot terminate while all components have size
// <= n/2: the game measures how many rounds the adversary provably stalls
// the algorithm for a given message budget n·f.
//
// n must be a power of two (as in Theorem 3.8) and f > 1.
func ComponentGame(n int, f float64, factory simsync.Factory, seed uint64, opts ...GameOption) (*ComponentGameResult, error) {
	var o gameOpts
	for _, opt := range opts {
		opt(&o)
	}
	if n < 4 || n&(n-1) != 0 {
		return nil, fmt.Errorf("lowerbound: n = %d must be a power of two >= 4", n)
	}
	if f <= 1 {
		return nil, fmt.Errorf("lowerbound: f = %v must exceed 1", f)
	}
	sigmaBase := int(math.Ceil(math.Log2(f-1e-12))) + 1
	rng := xrand.New(seed)

	// blockSize returns 2^{sigma_r} capped at n.
	blockSize := func(r int) int {
		if r < 1 {
			return 1
		}
		shift := sigmaBase * (r - 1)
		if shift > 62 || 1<<uint(shift) >= n {
			return n
		}
		return 1 << uint(shift)
	}

	rec := trace.NewRecorder(n)
	curRound := 1
	snaps := make(map[int]int) // round -> MaxComponent after that round

	var adaptive *portmap.Adaptive
	chooser := func(u, p int) int {
		bs := blockSize(curRound + 1)
		base := (u / bs) * bs
		// A few random probes for spread, then an exhaustive scan: the
		// adversary must never leak a wire out of the block while any
		// in-block target is feasible, or components would merge across
		// blocks prematurely.
		for try := 0; try < 8; try++ {
			v := base + rng.Intn(bs)
			if v != u && !adaptive.Connected(u, v) {
				return v
			}
		}
		start := rng.Intn(bs)
		for i := 0; i < bs; i++ {
			v := base + (start+i)%bs
			if v != u && !adaptive.Connected(u, v) {
				return v
			}
		}
		return -1 // block truly saturated: engine falls back globally
	}
	adaptive = portmap.NewAdaptive(n, chooser, rng.Split())
	if !o.uniformArrivals {
		// Arrival ports fill from the bottom: deterministic algorithms send
		// over their lowest ports first, so low-port arrivals make future
		// sends reuse the in-block links the adversary already built (Lemma
		// 3.3 gives the adversary both endpoints of every unused link).
		adaptive.SetArrivalChooser(func(v int) int {
			for q := 0; q < n-1; q++ {
				if !adaptive.Wired(v, q) {
					return q
				}
			}
			return -1
		})
	}

	onRound := func(r int) {
		for rr := curRound; rr < r; rr++ {
			snaps[rr] = rec.MaxComponent()
		}
		if r > curRound {
			curRound = r
		}
	}

	assign := ids.Random(ids.LogUniverse(n), n, rng.Split())
	res, err := simsync.Run(simsync.Config{
		N: n, IDs: assign, Ports: adaptive, Seed: rng.Uint64(),
		Trace: rec, Strict: true,
	}, func(node int) simsync.Protocol {
		return &roundTap{inner: factory(node), onRound: onRound}
	})
	if err != nil {
		return nil, err
	}
	for rr := curRound; rr <= res.Rounds; rr++ {
		snaps[rr] = rec.MaxComponent()
	}

	out := &ComponentGameResult{
		N:               n,
		F:               f,
		SigmaBase:       sigmaBase,
		PredictedRounds: (math.Log2(float64(n))-1)/(math.Log2(f)+1) + 1,
		Result:          res,
		Rounds:          []ComponentRound{{}},
	}
	for r := 1; r <= res.Rounds; r++ {
		cr := ComponentRound{
			Round:        r,
			Messages:     res.PerRound[r],
			NewEdges:     rec.RoundEdges(r),
			MaxComponent: snaps[r],
			Cap:          blockSize(r + 1),
		}
		out.Rounds = append(out.Rounds, cr)
		if cr.MaxComponent > cr.Cap && out.CapViolatedAt == 0 {
			out.CapViolatedAt = r
		}
		blocks := n / blockSize(r)
		if blocks > 0 {
			perBlock := float64(res.PerRound[r]) / float64(blocks)
			mu := float64(blockSize(r)) * (2*f - 1)
			if perBlock > mu && out.BudgetExceededAt == 0 {
				out.BudgetExceededAt = r
			}
		}
	}
	return out, nil
}
