package lowerbound

import (
	"fmt"

	"cliquelect/internal/ids"
	"cliquelect/internal/proto"
	"cliquelect/internal/simsync"
	"cliquelect/internal/xrand"
)

// CheatingLasVegas is a deliberately broken "Las Vegas" algorithm that
// tries to beat the Omega(n) bound of Theorem 3.16 by sending o(n)
// messages: each node independently decides, using only private coins, to
// participate with probability p = c/sqrt(n); participants broadcast a rank
// to sqrt(n) random ports and the highest rank heard (including one's own)
// wins among participants, while non-participants silently decide
// non-leader. Expected messages: c·sqrt(n)·sqrt(n) = c·n... tuned lower:
// participants p = 1/sqrt(n), fan-out sqrt(n)/2, i.e. ~n/2 messages — and
// with probability bounded away from zero, *zero* nodes participate or two
// "local maxima" both win: exactly the failure events Theorem 3.16's proof
// composes into 0-leader and 2-leader executions.
type CheatingLasVegas struct {
	env         proto.Env
	participant bool
	rank        int64
	best        int64
	dec         proto.Decision
	halted      bool
}

// NewCheatingLasVegas returns the broken algorithm's factory.
func NewCheatingLasVegas() simsync.Factory {
	return func(int) simsync.Protocol { return &CheatingLasVegas{} }
}

// Init implements simsync.Protocol.
func (c *CheatingLasVegas) Init(env proto.Env) {
	c.env = env
	if env.N == 1 {
		c.dec = proto.Leader
		c.halted = true
		return
	}
	// Participation probability tuned so the expected message count stays
	// sublinear while silence remains plausible on n/2-node subsets.
	p := 1.0 / float64(intSqrt(env.N))
	if env.RNG.Bernoulli(p) {
		c.participant = true
		c.rank = env.RNG.Int63()%int64(env.N*env.N*env.N) + 1
	}
}

// Send implements simsync.Protocol.
func (c *CheatingLasVegas) Send(round int) []proto.Send {
	if round != 1 || !c.participant {
		return nil
	}
	fan := intSqrt(c.env.N) / 2
	if fan < 1 {
		fan = 1
	}
	if fan > c.env.Ports() {
		fan = c.env.Ports()
	}
	ports := c.env.RNG.Sample(c.env.Ports(), fan)
	out := make([]proto.Send, len(ports))
	for i, p := range ports {
		out[i] = proto.Send{Port: p, Msg: proto.Message{Kind: 1, A: c.rank}}
	}
	return out
}

// Deliver implements simsync.Protocol.
func (c *CheatingLasVegas) Deliver(round int, inbox []proto.Delivery) {
	for _, d := range inbox {
		if d.Msg.A > c.best {
			c.best = d.Msg.A
		}
	}
	if round == 2 {
		if c.participant && c.rank > c.best {
			c.dec = proto.Leader
		} else {
			c.dec = proto.NonLeader
		}
		c.halted = true
	}
}

// Decision implements simsync.Protocol.
func (c *CheatingLasVegas) Decision() proto.Decision { return c.dec }

// Halted implements simsync.Protocol.
func (c *CheatingLasVegas) Halted() bool { return c.halted }

var _ simsync.Protocol = (*CheatingLasVegas)(nil)

// LasVegasReport summarizes a CheckLasVegas audit.
type LasVegasReport struct {
	N      int
	Trials int
	// ZeroLeader / MultiLeader count outright correctness failures.
	ZeroLeader, MultiLeader int
	// SilentHalf counts runs in which at least n/2 nodes neither sent nor
	// received any message — the raw material of Theorem 3.16's composition
	// argument: two such silent halves from disjoint ID sets can be glued
	// into a single execution whose leader count is wrong with positive
	// probability.
	SilentHalf int
	// MeanMessages is the observed average message complexity.
	MeanMessages float64
}

// Failed reports whether the audit found evidence against the Las Vegas
// claim (a wrong execution, or silent halves while sending o(n) messages).
func (r *LasVegasReport) Failed() bool {
	return r.ZeroLeader > 0 || r.MultiLeader > 0 ||
		(r.SilentHalf > 0 && r.MeanMessages < float64(r.N-1))
}

// CheckLasVegas audits an alleged Las Vegas leader-election algorithm per
// Theorem 3.16's argument: it runs the algorithm `trials` times on
// block-structured ID assignments, counting (a) outright failures and
// (b) "silent half" executions. A genuinely correct Las Vegas algorithm
// must never produce (a); and Theorem 3.16 shows it can only avoid
// composable silent halves by spending Omega(n) messages in expectation.
func CheckLasVegas(n, trials int, factory simsync.Factory, seed uint64) (*LasVegasReport, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("lowerbound: n = %d must be even and >= 2", n)
	}
	rng := xrand.New(seed)
	rep := &LasVegasReport{N: n, Trials: trials}
	var totalMsgs int64
	for i := 0; i < trials; i++ {
		// Disjoint ID blocks (Theorem 3.16 uses 3 mutually disjoint
		// assignments; block sampling gives fresh disjoint material each
		// trial).
		u := ids.Universe{Lo: 1, Hi: int64(8 * n * (i + 1))}
		assign := ids.Blocks(u, n/2, 2, rng)
		touched := newTouchCounter(n)
		res, err := simsync.Run(simsync.Config{
			N: n, IDs: assign, Seed: rng.Uint64(), Strict: true,
		}, func(node int) simsync.Protocol {
			return &touchTap{inner: factory(node), node: node, tc: touched}
		})
		if err != nil {
			return nil, err
		}
		totalMsgs += res.Messages
		switch len(res.Leaders()) {
		case 0:
			rep.ZeroLeader++
		case 1:
			// correct
		default:
			rep.MultiLeader++
		}
		if touched.silent() >= n/2 {
			rep.SilentHalf++
		}
	}
	if trials > 0 {
		rep.MeanMessages = float64(totalMsgs) / float64(trials)
	}
	return rep, nil
}

// touchCounter tracks which nodes sent or received any message.
type touchCounter struct {
	touched []bool
}

func newTouchCounter(n int) *touchCounter {
	return &touchCounter{touched: make([]bool, n)}
}

func (tc *touchCounter) silent() int {
	s := 0
	for _, t := range tc.touched {
		if !t {
			s++
		}
	}
	return s
}

// touchTap marks nodes as touched when they send or receive messages.
type touchTap struct {
	inner simsync.Protocol
	node  int
	tc    *touchCounter
}

func (tt *touchTap) Init(env proto.Env) { tt.inner.Init(env) }

func (tt *touchTap) Send(round int) []proto.Send {
	out := tt.inner.Send(round)
	if len(out) > 0 {
		tt.tc.touched[tt.node] = true
	}
	return out
}

func (tt *touchTap) Deliver(round int, inbox []proto.Delivery) {
	if len(inbox) > 0 {
		tt.tc.touched[tt.node] = true
	}
	tt.inner.Deliver(round, inbox)
}

func (tt *touchTap) Decision() proto.Decision { return tt.inner.Decision() }
func (tt *touchTap) Halted() bool             { return tt.inner.Halted() }

var _ simsync.Protocol = (*touchTap)(nil)

func intSqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}
