package portmap

import (
	"testing"
	"testing/quick"

	"cliquelect/internal/xrand"
)

// checkInvolution verifies p(p(u,i)) = (u,i) for all endpoints of an n-node
// map, that no port leads to its own node, and that each node's ports reach
// each other node exactly once.
func checkInvolution(t *testing.T, m Map) {
	t.Helper()
	n := m.N()
	for u := 0; u < n; u++ {
		seen := make(map[int]int, n-1)
		for p := 0; p < n-1; p++ {
			v, q := m.Dest(u, p)
			if v == u {
				t.Fatalf("port (%d,%d) loops back to its own node", u, p)
			}
			if prev, dup := seen[v]; dup {
				t.Fatalf("node %d reaches node %d via ports %d and %d", u, v, prev, p)
			}
			seen[v] = p
			ru, rp := m.Dest(v, q)
			if ru != u || rp != p {
				t.Fatalf("not an involution: (%d,%d)->(%d,%d)->(%d,%d)", u, p, v, q, ru, rp)
			}
		}
	}
}

func TestCanonicalInvolution(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 17, 64} {
		checkInvolution(t, NewCanonical(n))
	}
}

func TestSharedPermInvolution(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 17, 64} {
		checkInvolution(t, NewSharedPerm(n, xrand.New(uint64(n))))
	}
}

func TestLazyRandomInvolution(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 17, 33} {
		checkInvolution(t, NewLazyRandom(n, xrand.New(uint64(n))))
	}
}

func TestAdaptiveFallbackInvolution(t *testing.T) {
	// A chooser that always returns an infeasible value exercises the
	// uniform fallback path for every wiring decision.
	for _, n := range []int{2, 3, 8, 17} {
		m := NewAdaptive(n, func(u, p int) int { return -1 }, xrand.New(uint64(n)))
		checkInvolution(t, m)
	}
}

func TestAdaptiveHonorsChooser(t *testing.T) {
	const n = 10
	// Adversary wires everything from node 0 to nodes 5..8 in order.
	next := 5
	m := NewAdaptive(n, func(u, p int) int {
		v := next
		next++
		return v
	}, xrand.New(1))
	for p := 0; p < 4; p++ {
		v, _ := m.Dest(0, p)
		if v != 5+p {
			t.Fatalf("port %d wired to %d, want %d", p, v, 5+p)
		}
	}
	if !m.Connected(0, 5) || m.Connected(0, 9) {
		t.Fatal("Connected bookkeeping wrong")
	}
	if m.Degree(0) != 4 || m.Degree(5) != 1 {
		t.Fatalf("degrees: %d, %d", m.Degree(0), m.Degree(5))
	}
}

func TestAdaptiveRefusesDoubleLink(t *testing.T) {
	const n = 6
	// Chooser always says node 3: only the first wiring from node 0 may obey;
	// subsequent ones must fall back (a pair is linked at most once).
	m := NewAdaptive(n, func(u, p int) int { return 3 }, xrand.New(2))
	counts := make(map[int]int)
	for p := 0; p < n-1; p++ {
		v, _ := m.Dest(0, p)
		counts[v]++
	}
	for v, c := range counts {
		if c != 1 {
			t.Fatalf("node %d reached %d times", v, c)
		}
	}
}

func TestAdaptiveWired(t *testing.T) {
	m := NewAdaptive(5, func(u, p int) int { return -1 }, xrand.New(3))
	if m.Wired(0, 0) {
		t.Fatal("fresh port reported wired")
	}
	v, q := m.Dest(0, 0)
	if !m.Wired(0, 0) || !m.Wired(v, q) {
		t.Fatal("both endpoints should be wired after Dest")
	}
}

func TestLazyRandomStability(t *testing.T) {
	// Dest must return the same answer on repeated queries.
	m := NewLazyRandom(16, xrand.New(7))
	type pq struct{ v, q int }
	first := make(map[[2]int]pq)
	for u := 0; u < 16; u++ {
		for p := 0; p < 15; p++ {
			v, q := m.Dest(u, p)
			first[[2]int{u, p}] = pq{v, q}
		}
	}
	for u := 0; u < 16; u++ {
		for p := 0; p < 15; p++ {
			v, q := m.Dest(u, p)
			if got := first[[2]int{u, p}]; got.v != v || got.q != q {
				t.Fatalf("Dest(%d,%d) changed between calls", u, p)
			}
		}
	}
}

func TestLazyRandomUniformFirstHop(t *testing.T) {
	// The first port of node 0 should be (approximately) uniform over the
	// other nodes across seeds.
	const n, draws = 8, 7000
	counts := make([]int, n)
	for seed := 0; seed < draws; seed++ {
		m := NewLazyRandom(n, xrand.New(uint64(seed)))
		v, _ := m.Dest(0, 0)
		counts[v]++
	}
	if counts[0] != 0 {
		t.Fatal("port wired to own node")
	}
	want := float64(draws) / (n - 1)
	for v := 1; v < n; v++ {
		if f := float64(counts[v]); f < want*0.8 || f > want*1.2 {
			t.Errorf("node %d hit %d times, want ~%.0f", v, counts[v], want)
		}
	}
}

func TestSharedPermMatchesCanonicalStructure(t *testing.T) {
	// SharedPerm with any permutation must still be a valid involution where
	// each node reaches all others; quick-check over seeds and sizes.
	prop := func(seed uint64, sz uint8) bool {
		n := int(sz%30) + 2
		m := NewSharedPerm(n, xrand.New(seed))
		for u := 0; u < n; u++ {
			reached := make(map[int]bool)
			for p := 0; p < n-1; p++ {
				v, q := m.Dest(u, p)
				ru, rp := m.Dest(v, q)
				if ru != u || rp != p || v == u || reached[v] {
					return false
				}
				reached[v] = true
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	m := NewCanonical(4)
	for _, bad := range [][2]int{{-1, 0}, {4, 0}, {0, -1}, {0, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Dest(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			m.Dest(bad[0], bad[1])
		}()
	}
	for _, ctor := range []func(){
		func() { NewCanonical(1) },
		func() { NewSharedPerm(1, xrand.New(0)) },
		func() { NewLazyRandom(0, xrand.New(0)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("constructor with n<2 did not panic")
				}
			}()
			ctor()
		}()
	}
}
