// Package portmap implements the port mappings of the paper's clique model
// (Section 2): each of the n nodes has n-1 ports; a port mapping is a
// bijective pairing p((u,i)) = (v,j) with p((v,j)) = (u,i), assigning each
// unordered node pair exactly one link. Nodes do not know where their ports
// lead until a message crosses them.
//
// Four implementations cover the paper's needs:
//
//   - Canonical: the fixed algebraic involution v=(u+p+1) mod n. O(1) memory.
//   - SharedPerm: Canonical composed with a random offset permutation shared
//     by all nodes. O(n) memory; scrambles deterministic protocols' port
//     choices while remaining cheap at large n.
//   - LazyRandom: a uniformly random port mapping materialized lazily, port
//     by port, on first use. O(#used links) memory, so uniformly-random
//     wiring scales to cliques whose full mapping would not fit in memory.
//   - Adaptive: the lower-bound adversary's mapping (Lemma 3.3): unused
//     ports are wired at first use by a caller-supplied strategy, subject to
//     feasibility. This is admissible against deterministic algorithms
//     because they must work under every port mapping.
package portmap

import (
	"fmt"
	"sync"

	"cliquelect/internal/flatmap"
	"cliquelect/internal/xrand"
)

// Map resolves port endpoints. Implementations must behave as a fixed
// bijective involution: if Dest(u,p) = (v,q) then Dest(v,q) = (u,p), v != u,
// and distinct ports of u lead to distinct nodes. Dest may materialize the
// wiring lazily but must stay consistent across calls.
type Map interface {
	// N returns the number of nodes.
	N() int
	// Dest returns the node and arrival port on the far end of (u, p).
	Dest(u, p int) (v, q int)
}

// Canonical is the O(1)-memory involution: port p of node u (0-based)
// connects to node (u+p+1) mod n, arriving on port n-2-p.
type Canonical struct {
	n int
}

// NewCanonical returns the canonical mapping for n >= 2 nodes.
func NewCanonical(n int) *Canonical {
	if n < 2 {
		panic(fmt.Sprintf("portmap: need n >= 2, got %d", n))
	}
	return &Canonical{n: n}
}

// N implements Map.
func (c *Canonical) N() int { return c.n }

// Dest implements Map.
func (c *Canonical) Dest(u, p int) (int, int) {
	checkPort(c.n, u, p)
	offset := p + 1
	v := (u + offset) % c.n
	return v, c.n - 1 - offset
}

// SharedPerm composes the canonical map with one random permutation of the
// offsets {1..n-1} shared by all nodes: port p of node u leads to
// (u + perm[p]) mod n. All nodes see the same scrambled offset order, which
// is a legal (if correlated) random port mapping using only O(n) memory.
type SharedPerm struct {
	n    int
	perm []int // perm[p] = offset in 1..n-1
	inv  []int // inv[offset] = p
}

// NewSharedPerm builds a shared-permutation mapping from the given RNG.
func NewSharedPerm(n int, rng *xrand.RNG) *SharedPerm {
	if n < 2 {
		panic(fmt.Sprintf("portmap: need n >= 2, got %d", n))
	}
	base := rng.Perm(n - 1) // values 0..n-2
	perm := make([]int, n-1)
	inv := make([]int, n) // indexed by offset 1..n-1
	for p, b := range base {
		offset := b + 1
		perm[p] = offset
		inv[offset] = p
	}
	return &SharedPerm{n: n, perm: perm, inv: inv}
}

// N implements Map.
func (s *SharedPerm) N() int { return s.n }

// Dest implements Map.
func (s *SharedPerm) Dest(u, p int) (int, int) {
	checkPort(s.n, u, p)
	offset := s.perm[p]
	v := (u + offset) % s.n
	return v, s.inv[s.n-offset]
}

// endpoint encodes (node, port) into a single key.
func endpoint(u, p int) uint64 { return uint64(u)<<32 | uint64(uint32(p)) }

// link encodes an unordered node pair.
func link(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(uint32(v))
}

// lazyState is the shared machinery of LazyRandom and Adaptive: consistent
// lazy wiring with feasibility bookkeeping. The wiring lives in flatmap's
// open-addressing tables — the lazy mappings are the engines' single
// hottest data structure — but lazyState consumes randomness only through
// the membership questions the tables answer, so the RNG draw sequence
// (and hence every execution) is identical to the map-backed
// representation they replaced.
type lazyState struct {
	n     int
	rng   *xrand.RNG
	wired flatmap.U64Map // endpoint -> endpoint (both directions)
	links flatmap.U64Set // unordered pairs already wired
	deg   []int          // wired links per node
}

func (s *lazyState) init(n int, rng *xrand.RNG) {
	if n < 2 {
		panic(fmt.Sprintf("portmap: need n >= 2, got %d", n))
	}
	s.n = n
	s.rng = rng
	s.wired.Reset()
	s.links.Reset()
	if cap(s.deg) < n {
		s.deg = make([]int, n)
	} else {
		s.deg = s.deg[:n]
		clear(s.deg)
	}
}

// connected reports whether the link {u,v} is already wired.
func (s *lazyState) connected(u, v int) bool {
	return s.links.Has(link(u, v))
}

// freePort samples a uniformly random unwired port of v by rejection. v must
// have at least one free port.
func (s *lazyState) freePort(v int) int {
	if s.deg[v] >= s.n-1 {
		panic(fmt.Sprintf("portmap: node %d has no free ports", v))
	}
	for {
		q := s.rng.Intn(s.n - 1)
		if _, used := s.wired.Get(endpoint(v, q)); !used {
			return q
		}
	}
}

// wire connects (u,p) <-> (v,q).
func (s *lazyState) wire(u, p, v, q int) {
	s.wired.Put(endpoint(u, p), endpoint(v, q))
	s.wired.Put(endpoint(v, q), endpoint(u, p))
	s.links.Add(link(u, v))
	s.deg[u]++
	s.deg[v]++
}

// resolve returns the wired far end of (u,p) if present.
func (s *lazyState) resolve(u, p int) (int, int, bool) {
	e, ok := s.wired.Get(endpoint(u, p))
	if !ok {
		return 0, 0, false
	}
	return int(e >> 32), int(uint32(e)), true
}

// LazyRandom is a uniformly random port mapping, materialized lazily. Every
// unwired port of u leads to a uniformly random node not yet linked to u,
// arriving on a uniformly random free port of that node. This realizes the
// same distribution as drawing the full random mapping up front, restricted
// to the ports actually used.
type LazyRandom struct {
	s lazyState
}

// lazyPool recycles LazyRandom mappings between runs. The wiring tables of
// a large run reach megabytes; re-growing them from scratch for every cell
// of a sweep costs more than the wiring itself, so engines that construct
// the default mapping return it with Release when the run ends.
var lazyPool = sync.Pool{New: func() any { return new(LazyRandom) }}

// NewLazyRandom returns a lazy uniform mapping driven by the given RNG,
// reusing pooled table capacity from released mappings when available.
func NewLazyRandom(n int, rng *xrand.RNG) *LazyRandom {
	m := lazyPool.Get().(*LazyRandom)
	m.s.init(n, rng)
	return m
}

// Release returns the mapping's tables to the pool. Only the owner that
// constructed the mapping may call it, and must not use the mapping (or
// hand out its wiring) afterwards.
func (m *LazyRandom) Release() {
	m.s.rng = nil
	lazyPool.Put(m)
}

// N implements Map.
func (m *LazyRandom) N() int { return m.s.n }

// Dest implements Map.
func (m *LazyRandom) Dest(u, p int) (int, int) {
	checkPort(m.s.n, u, p)
	if v, q, ok := m.s.resolve(u, p); ok {
		return v, q
	}
	// Pick a uniformly random node not yet linked to u.
	var v int
	for {
		v = m.s.rng.Intn(m.s.n)
		if v != u && !m.s.connected(u, v) {
			break
		}
	}
	q := m.s.freePort(v)
	m.s.wire(u, p, v, q)
	return v, q
}

// Chooser is the adversary strategy for an Adaptive mapping. Given that node
// u is sending over previously-unwired port p, it returns the node the
// adversary wants to receive the message. Returning a node already linked to
// u, u itself, or a value outside [0,n) makes the mapping fall back to a
// uniformly random feasible choice.
type Chooser func(u, p int) int

// ArrivalChooser picks the arrival port on the destination side of a fresh
// wire. Lemma 3.3's adversary controls both endpoints of an unused link, and
// the component game exploits this: assigning arrivals to the destination's
// *lowest* unwired ports makes a deterministic algorithm's future low-port
// sends reuse existing in-block links instead of demanding fresh ones.
// Returning an already-wired or out-of-range port falls back to a uniformly
// random free port.
type ArrivalChooser func(v int) int

// Adaptive is the lower-bound adversary's port mapping (cf. Lemma 3.3 and
// the pruning argument of Lemma 3.9): wiring decisions are deferred until a
// port is first used and then made by the Chooser, subject to bijectivity.
type Adaptive struct {
	s             lazyState
	choose        Chooser
	chooseArrival ArrivalChooser
}

// NewAdaptive builds an adaptive mapping with the given strategy; rng breaks
// the adversary's ties and serves fallback choices.
func NewAdaptive(n int, choose Chooser, rng *xrand.RNG) *Adaptive {
	a := &Adaptive{choose: choose}
	a.s.init(n, rng)
	return a
}

// SetArrivalChooser installs an arrival-port strategy (nil reverts to
// uniformly random free ports).
func (m *Adaptive) SetArrivalChooser(f ArrivalChooser) { m.chooseArrival = f }

// N implements Map.
func (m *Adaptive) N() int { return m.s.n }

// Wired reports whether port p of node u has been wired yet. The component
// game uses this to distinguish port opens from reuse.
func (m *Adaptive) Wired(u, p int) bool {
	_, _, ok := m.s.resolve(u, p)
	return ok
}

// Connected reports whether nodes u and v are already joined by a wired
// link.
func (m *Adaptive) Connected(u, v int) bool { return m.s.connected(u, v) }

// Degree returns the number of wired links at node u.
func (m *Adaptive) Degree(u int) int { return m.s.deg[u] }

// Dest implements Map.
func (m *Adaptive) Dest(u, p int) (int, int) {
	checkPort(m.s.n, u, p)
	if v, q, ok := m.s.resolve(u, p); ok {
		return v, q
	}
	v := m.choose(u, p)
	if v < 0 || v >= m.s.n || v == u || m.s.connected(u, v) {
		// Infeasible adversary choice: fall back to uniform.
		for {
			v = m.s.rng.Intn(m.s.n)
			if v != u && !m.s.connected(u, v) {
				break
			}
		}
	}
	q := -1
	if m.chooseArrival != nil {
		if c := m.chooseArrival(v); c >= 0 && c < m.s.n-1 {
			if _, used := m.s.wired.Get(endpoint(v, c)); !used {
				q = c
			}
		}
	}
	if q < 0 {
		q = m.s.freePort(v)
	}
	m.s.wire(u, p, v, q)
	return v, q
}

func checkPort(n, u, p int) {
	if u < 0 || u >= n {
		panic(fmt.Sprintf("portmap: node %d out of range [0,%d)", u, n))
	}
	if p < 0 || p >= n-1 {
		panic(fmt.Sprintf("portmap: port %d out of range [0,%d)", p, n-1))
	}
}

// Interface compliance checks.
var (
	_ Map = (*Canonical)(nil)
	_ Map = (*SharedPerm)(nil)
	_ Map = (*LazyRandom)(nil)
	_ Map = (*Adaptive)(nil)
)
