// Package cliutil holds the comma-separated list parsers shared by the
// sweep CLIs (cmd/sweep, cmd/faultsweep), so flag parsing for value lists
// lives in one place.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseInts parses a comma-separated integer list, tolerating whitespace.
func ParseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseWorkers interprets the sweep CLIs' -workers flag, which is
// dual-mode: a bare integer is local parallelism (0 = GOMAXPROCS), while
// anything else is a comma-separated list of electd worker hosts/URLs for
// distributed fleet dispatch ("host1:8090,host2:8090"). Exactly one of the
// two returns is meaningful: fleet is nil in integer mode, local is 0 in
// fleet mode. List mode rejects duplicate hosts (dispatching twice to one
// daemon silently halves a fleet) and bare-integer entries (a mistyped
// count like "4,8" must not become a hostname).
func ParseWorkers(s string) (local int, fleet []string, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil, nil
	}
	if v, aerr := strconv.Atoi(s); aerr == nil {
		if v < 0 {
			return 0, nil, fmt.Errorf("bad worker count %d", v)
		}
		return v, nil, nil
	}
	seen := make(map[string]bool)
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			return 0, nil, fmt.Errorf("bad worker list %q: empty entry", s)
		}
		if _, aerr := strconv.Atoi(p); aerr == nil {
			return 0, nil, fmt.Errorf("bad worker list %q: %q is a number, not a host (worker counts don't mix with host lists)", s, p)
		}
		if seen[p] {
			return 0, nil, fmt.Errorf("bad worker list %q: duplicate host %q", s, p)
		}
		seen[p] = true
		fleet = append(fleet, p)
	}
	return 0, fleet, nil
}

// ParseFloats parses a comma-separated float list, tolerating whitespace.
func ParseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}
