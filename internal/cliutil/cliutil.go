// Package cliutil holds the comma-separated list parsers shared by the
// sweep CLIs (cmd/sweep, cmd/faultsweep), so flag parsing for value lists
// lives in one place.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseInts parses a comma-separated integer list, tolerating whitespace.
func ParseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseFloats parses a comma-separated float list, tolerating whitespace.
func ParseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}
