package cliutil

import "testing"

func TestParseInts(t *testing.T) {
	got, err := ParseInts(" 1, 2,3 ")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := ParseInts("1,x"); err == nil {
		t.Fatal("bad list accepted")
	}
}

func TestParseFloats(t *testing.T) {
	got, err := ParseFloats("0, 0.5 ,1")
	if err != nil || len(got) != 3 || got[1] != 0.5 {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := ParseFloats("0,y"); err == nil {
		t.Fatal("bad list accepted")
	}
}

func TestParseWorkers(t *testing.T) {
	for _, tc := range []struct {
		in    string
		local int
		fleet []string
		ok    bool
	}{
		{"", 0, nil, true},
		{"0", 0, nil, true},
		{"8", 8, nil, true},
		{" 4 ", 4, nil, true},
		{"-1", 0, nil, false},
		{"host1:8090", 0, []string{"host1:8090"}, true},
		{"h1:1, h2:2 ,h3:3", 0, []string{"h1:1", "h2:2", "h3:3"}, true},
		{"http://h1:8090,https://h2", 0, []string{"http://h1:8090", "https://h2"}, true},
		{"h1,,h2", 0, nil, false},
		{",", 0, nil, false},
		// Duplicate hosts: dispatching twice to one daemon halves the fleet.
		{"h1:1,h2:2,h1:1", 0, nil, false},
		{"h1:1,h1:1", 0, nil, false},
		// Bare integers mixed into a host list: almost certainly a mistyped
		// worker count, never a hostname.
		{"4,8", 0, nil, false},
		{"h1:1,16", 0, nil, false},
		{" 16 ,h1:1", 0, nil, false},
		// Same host on different ports is two daemons, not a duplicate.
		{"h1:1,h1:2", 0, []string{"h1:1", "h1:2"}, true},
	} {
		local, fleet, err := ParseWorkers(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseWorkers(%q) err = %v, ok = %v", tc.in, err, tc.ok)
			continue
		}
		if !tc.ok {
			continue
		}
		if local != tc.local || len(fleet) != len(tc.fleet) {
			t.Errorf("ParseWorkers(%q) = %d, %v", tc.in, local, fleet)
			continue
		}
		for i := range fleet {
			if fleet[i] != tc.fleet[i] {
				t.Errorf("ParseWorkers(%q)[%d] = %q, want %q", tc.in, i, fleet[i], tc.fleet[i])
			}
		}
	}
}
