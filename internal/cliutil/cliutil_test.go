package cliutil

import "testing"

func TestParseInts(t *testing.T) {
	got, err := ParseInts(" 1, 2,3 ")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := ParseInts("1,x"); err == nil {
		t.Fatal("bad list accepted")
	}
}

func TestParseFloats(t *testing.T) {
	got, err := ParseFloats("0, 0.5 ,1")
	if err != nil || len(got) != 3 || got[1] != 0.5 {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := ParseFloats("0,y"); err == nil {
		t.Fatal("bad list accepted")
	}
}
