package core

import (
	"fmt"

	"cliquelect/internal/proto"
	"cliquelect/internal/simsync"
)

// SmallID is Algorithm 1 of the paper (Theorem 3.15): a deterministic
// algorithm for the synchronous clique under simultaneous wake-up whose IDs
// are known to come from the linear-size universe {1 .. n·g}. It shows the
// large-ID-space hypothesis of the Omega(n log n) bound (Theorem 3.11) is
// necessary: with g = O(1) and d = o(log n) it elects a leader in sublinear
// time with o(n log n) messages.
//
// Round i scans the ID window [(i-1)·d·g + 1, i·d·g]: every node whose ID
// falls in the window broadcasts its ID to all. The first round in which any
// node broadcasts, every node receives the same nonempty ID set, selects its
// minimum as the leader, and terminates. Time <= ceil(n/d) rounds; messages
// <= d·g·(n-1) (at most d·g nodes share a window).
type SmallID struct {
	d, g int
	env  proto.Env

	myWindow int // round in which this node broadcasts
	sent     bool

	dec    proto.Decision
	halted bool
}

// NewSmallID returns a simsync factory for Algorithm 1 with window parameter
// d in [1, n] and universe slack g >= 1 (IDs must lie in {1..n·g}). It
// panics on invalid parameters; use ValidateSmallID to check first.
func NewSmallID(d, g int) simsync.Factory {
	if err := ValidateSmallID(d, g); err != nil {
		panic(err)
	}
	return func(int) simsync.Protocol { return &SmallID{d: d, g: g} }
}

// ValidateSmallID checks Algorithm 1's parameters.
func ValidateSmallID(d, g int) error {
	if d < 1 {
		return fmt.Errorf("core: smallid window d = %d, need d >= 1", d)
	}
	if g < 1 {
		return fmt.Errorf("core: smallid slack g = %d, need g >= 1", g)
	}
	return nil
}

// MaxRounds returns the worst-case round bound ceil(n/d).
func (s *SmallID) MaxRounds(n int) int { return CeilDiv(n, s.d) }

// Init implements simsync.Protocol.
func (s *SmallID) Init(env proto.Env) {
	s.env = env
	if env.N == 1 {
		s.dec = proto.Leader
		s.halted = true
		return
	}
	// ID id broadcasts in round ceil(id / (d·g)).
	window := int64(s.d) * int64(s.g)
	s.myWindow = int((env.ID + window - 1) / window)
}

// Send implements simsync.Protocol.
func (s *SmallID) Send(round int) []proto.Send {
	if round != s.myWindow {
		return nil
	}
	s.sent = true
	out := make([]proto.Send, s.env.Ports())
	for p := range out {
		out[p] = proto.Send{Port: p, Msg: proto.Message{Kind: KindIDClaim, A: s.env.ID}}
	}
	return out
}

// Deliver implements simsync.Protocol.
func (s *SmallID) Deliver(round int, inbox []proto.Delivery) {
	best := int64(0)
	if s.sent && round == s.myWindow {
		best = s.env.ID
	}
	for _, d := range inbox {
		if d.Msg.Kind != KindIDClaim {
			continue
		}
		if best == 0 || d.Msg.A < best {
			best = d.Msg.A
		}
	}
	if best == 0 {
		return // silent round: nobody's window fired yet
	}
	if best == s.env.ID {
		s.dec = proto.Leader
	} else {
		s.dec = proto.NonLeader
	}
	s.halted = true
}

// Decision implements simsync.Protocol.
func (s *SmallID) Decision() proto.Decision { return s.dec }

// Halted implements simsync.Protocol.
func (s *SmallID) Halted() bool { return s.halted }

var _ simsync.Protocol = (*SmallID)(nil)
