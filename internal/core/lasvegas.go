package core

import (
	"cliquelect/internal/proto"
	"cliquelect/internal/simsync"
)

// LasVegas is the upper-bound side of Theorem 3.16: a Las Vegas explicit
// leader-election algorithm for the synchronous clique under simultaneous
// wake-up that terminates in 3 rounds and sends O(n) messages with high
// probability — and is *never* wrong, matching the Omega(n) Las Vegas lower
// bound of the same theorem up to constants.
//
// It is the transformation described in Section 3.5: run the 2-round Monte
// Carlo algorithm of [16] (see Sublinear), then spend a third round on a
// leader announcement; a node that does not observe exactly one announcement
// restarts the algorithm with fresh coins. Announcements go to every node,
// so all nodes see the same announcement count and restart in lockstep —
// the algorithm can never terminate with zero or two leaders:
//
//   - Rounds 3t+1, 3t+2 (attempt t): the [16] candidate/referee rounds.
//   - Round 3t+3: every candidate that collected all acks announces its ID
//     to all n-1 others. A node that receives exactly one announcement (or
//     is the unique announcer) decides and halts; otherwise attempt t+1
//     starts at round 3t+4.
//
// Expected attempts are 1 + o(1), so the w.h.p. complexity is 3 rounds and
// O(n) messages (the announcement dominates: n-1 messages; the MC rounds
// cost O(sqrt(n)·log^{3/2} n) = o(n)).
type LasVegas struct {
	env proto.Env

	attempt int // 0-based attempt index

	candidate bool
	rank      int64
	referees  []int

	bestBidPort int
	bestBidRank int64
	haveBid     bool

	acks      int
	announcer bool

	dec    proto.Decision
	halted bool
}

// NewLasVegas returns a simsync factory for the Theorem 3.16 Las Vegas
// algorithm.
func NewLasVegas() simsync.Factory {
	return func(int) simsync.Protocol { return &LasVegas{} }
}

// Init implements simsync.Protocol.
func (l *LasVegas) Init(env proto.Env) {
	l.env = env
	if env.N == 1 {
		l.dec = proto.Leader
		l.halted = true
		return
	}
	l.reset()
}

// reset re-rolls the per-attempt coins.
func (l *LasVegas) reset() {
	l.candidate = false
	l.referees = nil
	l.haveBid = false
	l.acks = 0
	l.announcer = false
	if l.env.RNG.Bernoulli(SublinearCandidateProb(l.env.N)) {
		l.candidate = true
		l.rank = drawRank(l.env.N, l.env.RNG)
		l.referees = l.env.RNG.Sample(l.env.Ports(), SublinearRefCount(l.env.N))
	}
}

// phase maps the global round to the attempt-local round 1..3.
func (l *LasVegas) phase(round int) int { return (round-1)%3 + 1 }

// Send implements simsync.Protocol.
func (l *LasVegas) Send(round int) []proto.Send {
	switch l.phase(round) {
	case 1:
		if !l.candidate {
			return nil
		}
		out := make([]proto.Send, len(l.referees))
		for i, p := range l.referees {
			out[i] = proto.Send{Port: p, Msg: proto.Message{Kind: KindRank, A: l.rank}}
		}
		return out
	case 2:
		// As in Sublinear: a candidate referee acks only bids beating its
		// own rank, which breaks the n=2 mutual-ack cycle (and its infinite
		// restart loop).
		if !l.haveBid || (l.candidate && l.bestBidRank <= l.rank) {
			return nil
		}
		return []proto.Send{{Port: l.bestBidPort, Msg: proto.Message{Kind: KindAck}}}
	default:
		if !l.announcer {
			return nil
		}
		out := make([]proto.Send, l.env.Ports())
		for p := range out {
			out[p] = proto.Send{Port: p, Msg: proto.Message{Kind: KindAnnounce, A: l.env.ID}}
		}
		return out
	}
}

// Deliver implements simsync.Protocol.
func (l *LasVegas) Deliver(round int, inbox []proto.Delivery) {
	switch l.phase(round) {
	case 1:
		for _, d := range inbox {
			if d.Msg.Kind != KindRank {
				continue
			}
			if !l.haveBid || d.Msg.A > l.bestBidRank {
				l.haveBid = true
				l.bestBidRank = d.Msg.A
				l.bestBidPort = d.Port
			}
		}
	case 2:
		for _, d := range inbox {
			if d.Msg.Kind == KindAck {
				l.acks++
			}
		}
		l.announcer = l.candidate && l.acks == len(l.referees)
	default:
		// Count announcements; the announcer's own announcement counts for
		// itself (it does not receive it).
		count := 0
		if l.announcer {
			count++
		}
		for _, d := range inbox {
			if d.Msg.Kind == KindAnnounce {
				count++
			}
		}
		if count == 1 {
			if l.announcer {
				l.dec = proto.Leader
			} else {
				l.dec = proto.NonLeader
			}
			l.halted = true
			return
		}
		// Zero or multiple announcements: everyone observed the same count
		// (announcements are broadcast), so the whole network restarts.
		l.attempt++
		l.reset()
	}
}

// Decision implements simsync.Protocol.
func (l *LasVegas) Decision() proto.Decision { return l.dec }

// Halted implements simsync.Protocol.
func (l *LasVegas) Halted() bool { return l.halted }

// Attempts returns the number of completed (restarted) attempts; 0 means the
// first attempt succeeded.
func (l *LasVegas) Attempts() int { return l.attempt }

var _ simsync.Protocol = (*LasVegas)(nil)
