package core

import (
	"cliquelect/internal/proto"
	"cliquelect/internal/simsync"
)

// Tradeoff is the paper's improved deterministic algorithm (Theorem 3.10,
// Section 3.3) for the synchronous clique under simultaneous wake-up.
//
// For a parameter k >= 3 it runs k-2 two-round iterations followed by one
// final broadcast round, terminating in l = 2k-3 rounds with
// O(l · n^{1+2/(l+1)}) messages:
//
//   - Round 1 of iteration i: every survivor sends its ID to
//     ceil(n^{i/(k-1)}) referees (its first ports, in port order — the
//     algorithm is deterministic and oblivious to the port mapping).
//   - Round 2 of iteration i: every referee responds to the highest ID it
//     received this iteration and discards the rest. A survivor stays alive
//     iff every one of its referees responded.
//   - Final round: all remaining survivors broadcast their ID to everyone;
//     a survivor terminates as leader iff its own ID exceeds all IDs it
//     received; every other node terminates as non-leader.
//
// The node with the globally maximal ID is never eliminated (every referee
// it contacts prefers it), so at least one survivor always reaches the final
// round, and the final round keeps exactly the maximum.
type Tradeoff struct {
	k   int
	env proto.Env

	survivor   bool
	eliminated bool // decided NonLeader but still referees

	// Referee state for the current iteration: best bid seen in the
	// iteration's first round.
	bestBidPort int
	bestBidID   int64
	haveBid     bool

	// Survivor state: acks received vs expected in the current iteration.
	acks     int
	expected int

	finalBest int64 // max ID seen in the final broadcast round

	sbuf proto.SendBuf // reused across rounds; consumed by the engine per call

	dec    proto.Decision
	halted bool
}

// NewTradeoff returns a simsync factory for Theorem 3.10's algorithm with
// parameter k >= 3 (round count l = 2k-3). It panics on invalid k; use
// ValidateTradeoffK to check first.
func NewTradeoff(k int) simsync.Factory {
	if err := ValidateTradeoffK(k); err != nil {
		panic(err)
	}
	return func(int) simsync.Protocol { return &Tradeoff{k: k} }
}

// Rounds returns the running time l = 2k-3 of the algorithm for n > 1.
func (t *Tradeoff) Rounds() int { return 2*t.k - 3 }

// Init implements simsync.Protocol.
func (t *Tradeoff) Init(env proto.Env) {
	t.env = env
	t.survivor = true
	if env.N == 1 {
		t.dec = proto.Leader
		t.halted = true
	}
}

// lastRound is the final broadcast round 2(k-2)+1.
func (t *Tradeoff) lastRound() int { return 2*t.k - 3 }

// iteration maps a global round to (iteration, phase) where phase 1 is the
// bid round and phase 2 the response round. The final broadcast round maps
// to (k-1, 1).
func (t *Tradeoff) iteration(round int) (it, phase int) {
	return (round-1)/2 + 1, (round-1)%2 + 1
}

// Send implements simsync.Protocol.
func (t *Tradeoff) Send(round int) []proto.Send {
	if round > t.lastRound() {
		return nil
	}
	it, phase := t.iteration(round)
	switch {
	case round == t.lastRound():
		// Final round: survivors broadcast to everyone.
		if !t.survivor {
			return nil
		}
		out := t.sbuf.Take(t.env.Ports())
		for p := range out {
			out[p] = proto.Send{Port: p, Msg: proto.Message{Kind: KindCompete, A: t.env.ID}}
		}
		return out
	case phase == 1:
		// Bid round of iteration it: survivors contact their referees.
		if !t.survivor {
			return nil
		}
		t.expected = Fanout(t.env.N, it, t.k-1)
		t.acks = 0
		out := t.sbuf.Take(t.expected)
		for p := range out {
			out[p] = proto.Send{Port: p, Msg: proto.Message{Kind: KindCompete, A: t.env.ID}}
		}
		return out
	default:
		// Response round: referees answer their best bidder.
		if !t.haveBid {
			return nil
		}
		t.haveBid = false
		out := t.sbuf.Take(1)
		out[0] = proto.Send{Port: t.bestBidPort, Msg: proto.Message{Kind: KindAck}}
		return out
	}
}

// Deliver implements simsync.Protocol.
func (t *Tradeoff) Deliver(round int, inbox []proto.Delivery) {
	if round > t.lastRound() {
		t.halted = true
		return
	}
	_, phase := t.iteration(round)
	switch {
	case round == t.lastRound():
		// Everyone decides at the end of the final round.
		t.finalBest = 0
		for _, d := range inbox {
			if d.Msg.Kind == KindCompete && d.Msg.A > t.finalBest {
				t.finalBest = d.Msg.A
			}
		}
		if t.survivor && t.env.ID > t.finalBest {
			t.dec = proto.Leader
		} else if t.dec == proto.Undecided {
			t.dec = proto.NonLeader
		}
		t.halted = true
	case phase == 1:
		// Record the iteration's best bid for the response round.
		for _, d := range inbox {
			if d.Msg.Kind != KindCompete {
				continue
			}
			if !t.haveBid || d.Msg.A > t.bestBidID {
				t.haveBid = true
				t.bestBidID = d.Msg.A
				t.bestBidPort = d.Port
			}
		}
	default:
		// Count acks; survivors missing any ack are eliminated.
		if !t.survivor {
			return
		}
		for _, d := range inbox {
			if d.Msg.Kind == KindAck {
				t.acks++
			}
		}
		if t.acks < t.expected {
			t.survivor = false
			if !t.eliminated {
				t.eliminated = true
				t.dec = proto.NonLeader // implicit election: losers may decide early
			}
		}
	}
}

// Decision implements simsync.Protocol.
func (t *Tradeoff) Decision() proto.Decision { return t.dec }

// Halted implements simsync.Protocol.
func (t *Tradeoff) Halted() bool { return t.halted }

var _ simsync.Protocol = (*Tradeoff)(nil)
