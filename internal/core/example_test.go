package core_test

import (
	"fmt"

	"cliquelect/internal/core"
	"cliquelect/internal/ids"
	"cliquelect/internal/simasync"
	"cliquelect/internal/simsync"
	"cliquelect/internal/xrand"
)

// ExampleNewTradeoff elects a leader with the paper's improved deterministic
// tradeoff (Theorem 3.10) on a 64-node synchronous clique.
func ExampleNewTradeoff() {
	const n, k = 64, 4
	assign := ids.Sequential(ids.LinearUniverse(n, 1), n) // IDs 1..64
	res, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: 1}, core.NewTradeoff(k))
	if err != nil {
		panic(err)
	}
	fmt.Printf("leader ID: %d, rounds: %d\n", assign[res.UniqueLeader()], res.Rounds)
	// Output:
	// leader ID: 64, rounds: 5
}

// ExampleNewSmallID shows Algorithm 1 (Theorem 3.15) finishing in one round
// when the minimal ID falls in the first scan window.
func ExampleNewSmallID() {
	const n, d, g = 32, 4, 1
	assign := ids.Sequential(ids.LinearUniverse(n, g), n)
	res, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: 1}, core.NewSmallID(d, g))
	if err != nil {
		panic(err)
	}
	fmt.Printf("leader ID: %d (the minimum), rounds: %d, messages <= n*d*g: %v\n",
		assign[res.UniqueLeader()], res.Rounds, res.Messages <= n*d*g)
	// Output:
	// leader ID: 1 (the minimum), rounds: 1, messages <= n*d*g: true
}

// ExampleNewAsyncAfekGafni runs the deterministic asynchronous levels
// algorithm (Theorem 5.14) under skewed adversarial delays.
func ExampleNewAsyncAfekGafni() {
	const n = 32
	assign := ids.Random(ids.LogUniverse(n), n, xrand.New(5))
	res, err := simasync.Run(simasync.Config{
		N: n, IDs: assign, Seed: 2,
		Delays: simasync.SkewDelay{Fast: 0.1, Mod: 2},
		Wake:   simasync.AllAtZero(n),
	}, core.NewAsyncAfekGafni())
	if err != nil {
		panic(err)
	}
	fmt.Printf("unique leader elected: %v\n", res.UniqueLeader() >= 0)
	// Output:
	// unique leader elected: true
}
