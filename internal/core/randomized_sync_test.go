package core

import (
	"math"
	"testing"

	"cliquelect/internal/ids"
	"cliquelect/internal/proto"
	"cliquelect/internal/simsync"
	"cliquelect/internal/xrand"
)

// --- Sublinear ([16] Monte Carlo baseline) ---

func TestSublinearSuccessRate(t *testing.T) {
	const n, trials = 256, 120
	fails := 0
	for seed := uint64(0); seed < trials; seed++ {
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed+5000))
		res, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: seed, Strict: true}, NewSublinear())
		if err != nil {
			t.Fatal(err)
		}
		if res.UniqueLeader() < 0 {
			fails++
		}
		if res.Rounds > 2 {
			t.Fatalf("seed %d: rounds = %d > 2", seed, res.Rounds)
		}
	}
	// w.h.p. success: allow a small handful of failures out of 120.
	if fails > 6 {
		t.Fatalf("%d/%d runs failed to elect a unique leader", fails, trials)
	}
}

func TestSublinearMessageBound(t *testing.T) {
	// O(sqrt(n) · log^{3/2} n) with a generous constant.
	for _, n := range []int{256, 1024, 4096} {
		var worst int64
		for seed := uint64(0); seed < 10; seed++ {
			assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed))
			res, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: seed}, NewSublinear())
			if err != nil {
				t.Fatal(err)
			}
			if res.Messages > worst {
				worst = res.Messages
			}
		}
		bound := 40 * math.Sqrt(float64(n)) * math.Pow(math.Log(float64(n)), 1.5)
		if float64(worst) > bound {
			t.Fatalf("n=%d: worst %d messages exceed bound %.0f", n, worst, bound)
		}
	}
}

func TestSublinearIsActuallySublinear(t *testing.T) {
	// The defining property vs Las Vegas: messages = o(n). The polylog
	// factors dominate at small n, so check at n = 2^16 where the
	// asymptotics have kicked in.
	const n = 1 << 16
	assign := ids.Random(ids.LogUniverse(n), n, xrand.New(1))
	res, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: 2}, NewSublinear())
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages >= int64(n) {
		t.Fatalf("messages %d >= n = %d", res.Messages, n)
	}
}

// --- LasVegas (Theorem 3.16) ---

func TestLasVegasNeverWrong(t *testing.T) {
	// The defining Las Vegas property: over many seeds and sizes, the
	// algorithm always terminates with exactly one leader and all nodes in
	// agreement.
	for _, n := range []int{2, 3, 16, 64, 256} {
		for seed := uint64(0); seed < 40; seed++ {
			assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed+uint64(n)))
			res, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: seed, Strict: true}, NewLasVegas())
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Validate(); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestLasVegasRoundsMostlyThree(t *testing.T) {
	const n, trials = 256, 100
	restarts := 0
	for seed := uint64(0); seed < trials; seed++ {
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed+900))
		res, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: seed}, NewLasVegas())
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds%3 != 0 {
			t.Fatalf("seed %d: rounds = %d, want multiple of 3", seed, res.Rounds)
		}
		if res.Rounds > 3 {
			restarts++
		}
	}
	if restarts > 10 {
		t.Fatalf("%d/%d runs needed restarts", restarts, trials)
	}
}

func TestLasVegasLinearMessages(t *testing.T) {
	// Theorem 3.16: O(n) messages w.h.p. — and at least n-1 (the
	// announcement), which is the Omega(n) lower-bound side made concrete.
	for _, n := range []int{256, 1024, 4096} {
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(uint64(n)))
		res, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: uint64(n), Strict: true}, NewLasVegas())
		if err != nil {
			t.Fatal(err)
		}
		if res.Messages < int64(n-1) {
			t.Fatalf("n=%d: %d messages below the announcement floor", n, res.Messages)
		}
		if res.Messages > int64(6*n) {
			t.Fatalf("n=%d: %d messages not O(n)", n, res.Messages)
		}
	}
}

// --- AdvWake2Round (Theorem 4.1) ---

func TestAdvWakeSuccessAcrossWakeSets(t *testing.T) {
	const n = 256
	rng := xrand.New(123)
	wakeSizes := []int{1, 16, n / 2, n}
	for _, w := range wakeSizes {
		fails := 0
		const trials = 60
		for seed := uint64(0); seed < trials; seed++ {
			assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed+7777))
			res, err := simsync.Run(simsync.Config{
				N: n, IDs: assign, Seed: seed, Strict: true,
				Wake: simsync.RandomWakeSet(n, w, rng),
			}, NewAdvWake2Round(1.0/16))
			if err != nil {
				t.Fatal(err)
			}
			if res.Rounds > 2 {
				t.Fatalf("w=%d seed=%d: rounds = %d > 2", w, seed, res.Rounds)
			}
			if res.UniqueLeader() < 0 || !res.AllAwake() {
				fails++
			}
		}
		// Success prob >= 1 - eps - 1/n with eps = 1/16: expect ~4 fails in
		// 60 at most; allow generous slack.
		if fails > 10 {
			t.Fatalf("wake=%d: %d/%d failures", w, fails, trials)
		}
	}
}

func TestAdvWakeMessageBound(t *testing.T) {
	// O(n^{3/2} log(1/eps)) with slack; also at least one full broadcast
	// when successful.
	const eps = 0.25
	for _, n := range []int{256, 1024} {
		var worst int64
		for seed := uint64(0); seed < 8; seed++ {
			assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed))
			res, err := simsync.Run(simsync.Config{
				N: n, IDs: assign, Seed: seed,
				Wake: simsync.Simultaneous{}, // worst case: everyone is a root
			}, NewAdvWake2Round(eps))
			if err != nil {
				t.Fatal(err)
			}
			if res.Messages > worst {
				worst = res.Messages
			}
		}
		bound := 20 * math.Pow(float64(n), 1.5) * math.Log(1/eps) / math.Log(2)
		if float64(worst) > bound {
			t.Fatalf("n=%d: worst %d messages exceed %.0f", n, worst, bound)
		}
	}
}

func TestAdvWakeSingleRootWakesEveryone(t *testing.T) {
	// Theorem 4.1 doubles as a wake-up algorithm: from a single root, all
	// nodes must be awake by round 2 (when a candidate emerges).
	const n = 256
	ok := 0
	const trials = 30
	for seed := uint64(0); seed < trials; seed++ {
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed+31))
		res, err := simsync.Run(simsync.Config{
			N: n, IDs: assign, Seed: seed,
			Wake: simsync.AdversarialSet{Nodes: []int{0}},
		}, NewAdvWake2Round(1.0/16))
		if err != nil {
			t.Fatal(err)
		}
		if res.AllAwake() {
			ok++
		}
	}
	if ok < trials-5 {
		t.Fatalf("only %d/%d runs woke everyone", ok, trials)
	}
}

func TestValidateEps(t *testing.T) {
	for _, bad := range []float64{0, 1, -0.5, 2} {
		if err := ValidateEps(bad); err == nil {
			t.Fatalf("eps=%v accepted", bad)
		}
	}
	if err := ValidateEps(0.1); err != nil {
		t.Fatal(err)
	}
}

// --- SpreadElect (substituted [14]-style baseline) ---

func TestSpreadElectCorrectness(t *testing.T) {
	const n = 256
	rng := xrand.New(55)
	for _, k := range []int{2, 4, 9} {
		fails := 0
		const trials = 30
		for seed := uint64(0); seed < trials; seed++ {
			assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed+101))
			res, err := simsync.Run(simsync.Config{
				N: n, IDs: assign, Seed: seed, Strict: true,
				Wake: simsync.RandomWakeSet(n, 1+int(rng.Uint64n(4)), rng),
			}, NewSpreadElect(k))
			if err != nil {
				t.Fatal(err)
			}
			if res.Rounds > k+5 {
				t.Fatalf("k=%d: rounds %d > %d", k, res.Rounds, k+5)
			}
			if res.UniqueLeader() < 0 {
				fails++
			}
		}
		if fails > 3 {
			t.Fatalf("k=%d: %d/%d failures", k, fails, trials)
		}
	}
}

func TestSpreadElectNearLinearMessages(t *testing.T) {
	// At k = 9 the spreading costs O(n^{10/9}) and the election O(n log n):
	// messages should be well below the n^{3/2} of the 2-round algorithm.
	const n, k = 4096, 9
	assign := ids.Random(ids.LogUniverse(n), n, xrand.New(3))
	res, err := simsync.Run(simsync.Config{
		N: n, IDs: assign, Seed: 4,
		Wake: simsync.AdversarialSet{Nodes: []int{0}},
	}, NewSpreadElect(k))
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.Messages) > 8*float64(n)*math.Log2(float64(n)) {
		t.Fatalf("messages %d not near-linear", res.Messages)
	}
	if float64(res.Messages) > math.Pow(float64(n), 1.5)/4 {
		t.Fatalf("messages %d should be far below n^1.5", res.Messages)
	}
}

func TestSpreadElectAwakeNodesDecide(t *testing.T) {
	const n, k = 128, 3
	assign := ids.Random(ids.LogUniverse(n), n, xrand.New(21))
	res, err := simsync.Run(simsync.Config{
		N: n, IDs: assign, Seed: 9, Strict: true,
		Wake: simsync.AdversarialSet{Nodes: []int{7}},
	}, NewSpreadElect(k))
	if err != nil {
		t.Fatal(err)
	}
	for u, d := range res.Decisions {
		if res.WakeRound[u] != 0 && d == proto.Undecided {
			t.Fatalf("awake node %d undecided", u)
		}
	}
}

func TestValidateSpreadK(t *testing.T) {
	if err := ValidateSpreadK(1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if err := ValidateSpreadK(2); err != nil {
		t.Fatal(err)
	}
}

func TestRankSpaceAndProbHelpers(t *testing.T) {
	if RankSpace(10) != 10000 {
		t.Fatalf("RankSpace(10) = %d", RankSpace(10))
	}
	if p := SublinearCandidateProb(2); p <= 0 || p > 1 {
		t.Fatalf("prob = %v", p)
	}
	if SublinearRefCount(2) != 1 {
		t.Fatalf("refcount(2) = %d", SublinearRefCount(2))
	}
	if RootFanout(100) != 10 {
		t.Fatalf("RootFanout(100) = %d", RootFanout(100))
	}
	if CandidateProb(100, 0.5) <= 0 {
		t.Fatal("CandidateProb must be positive")
	}
	if AsyncLinearK(2) != 2 {
		t.Fatal("AsyncLinearK(2) != 2")
	}
	if k := AsyncLinearK(1 << 20); k < 3 || k > 8 {
		t.Fatalf("AsyncLinearK(2^20) = %d out of plausible range", k)
	}
}
