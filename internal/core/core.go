// Package core implements every leader-election protocol of the paper
// "Improved Tradeoffs for Leader Election" (Kutten, Robinson, Tan, Zhu;
// PODC 2023), plus the baselines its Table 1 compares against.
//
// Synchronous protocols implement simsync.Protocol and run on the
// synchronous clique engine; asynchronous protocols implement
// simasync.Protocol (and run unmodified on the goroutine-based livenet
// runtime). Every protocol observes the KT0 clean-network model: it
// addresses ports, never node identities, and initially knows only its own
// ID and n.
//
// The protocols (constructor -> paper result):
//
//   - NewTradeoff(k): Theorem 3.10, the paper's improved deterministic
//     tradeoff — 2k-3 rounds, O(k·n^{1+1/(k-1)}) messages.
//   - NewAfekGafni(k): the Afek-Gafni [1] baseline — 2k rounds,
//     O(k·n^{1+1/k}) messages.
//   - NewSmallID(d, g): Algorithm 1 / Theorem 3.15 — ceil(n/d) rounds and
//     <= n·d·g messages when IDs come from {1..n·g}.
//   - NewSublinear(): Kutten et al. [16] baseline — 2 rounds,
//     O(sqrt(n)·log^{3/2} n) messages, Monte Carlo.
//   - NewLasVegas(): Theorem 3.16 — Las Vegas, 3 rounds and O(n) messages
//     with high probability, never wrong.
//   - NewAdvWake2Round(eps): Theorem 4.1 — 2 rounds under adversarial
//     wake-up, O(n^{3/2}·log(1/eps)) messages, success >= 1-eps-1/n.
//   - NewSpreadElect(k): substituted [14]-style baseline — k+O(1) rounds,
//     O(n^{1+1/k} + n log n) messages under adversarial wake-up.
//   - NewAsyncTradeoff(k): Theorem 5.1 / Algorithm 2 — asynchronous, k+8
//     time units, O(n^{1+1/k}) messages.
//   - NewAsyncAfekGafni(): Theorem 5.14 / Section 5.4 — asynchronous
//     deterministic levels algorithm, O(log n) time from simultaneous
//     wake-up, O(n log n) messages.
//   - NewAsyncLinear(): substituted [14]-style asynchronous baseline:
//     NewAsyncTradeoff at k = Theta(log n / log log n).
package core

import (
	"fmt"
	"math"
)

// Message kinds, globally unique across protocols so traces stay readable.
const (
	// Shared by the survivor/referee family (Tradeoff, AfekGafni).
	KindCompete  uint8 = 1 // survivor's ID bid to a referee
	KindAck      uint8 = 2 // referee's response to its best bid
	KindAnnounce uint8 = 3 // leader announcement carrying the leader ID

	// SmallID.
	KindIDClaim uint8 = 4 // Algorithm 1 window broadcast

	// Randomized sync family (Sublinear, LasVegas, AdvWake2Round,
	// SpreadElect).
	KindWakeup uint8 = 5 // wake-up message under adversarial wake-up
	KindRank   uint8 = 6 // candidate rank bid

	// Asynchronous tradeoff (Algorithm 2).
	KindCompeteAsync uint8 = 7  // <rank, compete>
	KindYouWin       uint8 = 8  // referee verdict
	KindYouLose      uint8 = 9  // referee verdict
	KindConsult      uint8 = 10 // referee asks stored winner "already leader?"
	KindConsultReply uint8 = 11 // A=1 already leader, A=0 dropped out

	// Asynchronous Afek-Gafni (Section 5.4).
	KindRequest      uint8 = 12 // <id, level>
	KindLevelAck     uint8 = 13 // ack for a level-i request
	KindCancel       uint8 = 14 // conditional cancel <challengerID, challengerLevel>
	KindCancelGrant  uint8 = 15 // previous owner dropped out
	KindCancelRefuse uint8 = 16 // previous owner is at a higher level
	KindKill         uint8 = 17 // requester is rejected and stops competing

	// General-graph extinction + echo (KuttenMoses).
	KindCand uint8 = 18 // best-rank wave flood <rank>
	KindEcho uint8 = 19 // convergecast: sender's subtree is fully absorbed
	KindSame uint8 = 20 // non-tree reply closing a redundant wave edge
	KindHalt uint8 = 21 // leader's termination flood

	// Sampled-candidacy horizon election (KPPRT-style).
	KindProbe uint8 = 22 // candidate rank bid (direct on the clique, relayed flood on graphs)
	KindWin   uint8 = 23 // clique-mode referee ack for its best bid
)

// RankSpace is the size of the rank domain used by randomized protocols:
// ranks are sampled from [1, n^4], which makes all ranks distinct with
// probability >= 1 - 1/n^2 (union bound, as in Theorem 4.1's proof). The
// domain is capped at 2^62 to avoid int64 overflow for n >= 2^16; the
// collision guarantee only improves.
func RankSpace(n int) int64 {
	const cap62 = int64(1) << 62
	f := int64(n)
	out := int64(1)
	for i := 0; i < 4; i++ {
		if out > cap62/f {
			return cap62
		}
		out *= f
	}
	return out
}

// drawRank samples a rank uniformly from [1, n^4]. Int63 draws lie in
// [0, 2^63); a bare modulo would over-weight the low residues whenever the
// rank space does not divide 2^63, so draws from the incomplete final block
// are rejected and retried. The rejection probability is below
// RankSpace(n)/2^63, so the loop terminates almost immediately; when the
// space divides 2^63 exactly (the 2^62 cap for n >= 2^16) nothing is
// rejected. Computed in uint64 because 2^63 overflows int64.
func drawRank(n int, rng interface{ Int63() int64 }) int64 {
	space := uint64(RankSpace(n))
	limit := (uint64(1) << 63) - (uint64(1)<<63)%space // largest multiple of space <= 2^63
	for {
		v := uint64(rng.Int63())
		if v < limit {
			return int64(v%space) + 1
		}
	}
}

// Fanout returns ceil(n^(num/den)) clamped to [1, n-1]: the referee-set
// sizes used by the deterministic tradeoff algorithms. Computed in floating
// point with an integer correction so that exact powers are not off by one.
func Fanout(n, num, den int) int {
	if n <= 1 {
		return 1
	}
	x := math.Pow(float64(n), float64(num)/float64(den))
	f := int(math.Ceil(x - 1e-9))
	if f < 1 {
		f = 1
	}
	if f > n-1 {
		f = n - 1
	}
	return f
}

// CeilLog2 returns ceil(log2(n)) for n >= 1.
func CeilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	l := 0
	for v := n - 1; v > 0; v >>= 1 {
		l++
	}
	return l
}

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b int) int { return (a + b - 1) / b }

// ValidateTradeoffK checks the parameter of NewTradeoff: k >= 3 gives the
// odd round count l = 2k-3 >= 3 of Theorem 3.10.
func ValidateTradeoffK(k int) error {
	if k < 3 {
		return fmt.Errorf("core: tradeoff parameter k = %d, need k >= 3", k)
	}
	return nil
}

// ValidateAfekGafniK checks the parameter of NewAfekGafni: k >= 1 gives
// l = 2k rounds.
func ValidateAfekGafniK(k int) error {
	if k < 1 {
		return fmt.Errorf("core: afek-gafni parameter k = %d, need k >= 1", k)
	}
	return nil
}

// AsyncLinearK returns the k = Theta(log n / log log n) parameter at which
// the asynchronous tradeoff of Theorem 5.1 reaches its near-linear-message
// extreme (O(n log n) messages, O(log n) time).
func AsyncLinearK(n int) int {
	if n < 4 {
		return 2
	}
	ln := math.Log(float64(n))
	lln := math.Log(ln)
	if lln < 1 {
		lln = 1
	}
	k := int(math.Round(ln / lln))
	if k < 2 {
		k = 2
	}
	return k
}
