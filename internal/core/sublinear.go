package core

import (
	"math"

	"cliquelect/internal/proto"
	"cliquelect/internal/simsync"
	"cliquelect/internal/xrand"
)

// Sublinear is the Monte Carlo baseline of Kutten, Pandurangan, Peleg,
// Robinson and Trehan [16] that Table 1 and Section 3.5 compare against: a
// 2-round randomized algorithm for the synchronous clique under simultaneous
// wake-up that elects a unique leader with high probability while sending
// only O(sqrt(n) · log^{3/2} n) messages.
//
//   - Round 1: every node independently becomes a candidate with probability
//     min(1, 8·ln(n)/n) — Theta(log n) candidates w.h.p., at least one
//     w.h.p. A candidate draws a rank from [n^4] and sends it to
//     ceil(2·sqrt(n·ln n)) referees over uniformly random ports (without
//     replacement); any two candidates then share a referee w.h.p.
//   - Round 2: every referee acks only the highest-ranked bid it received;
//     a candidate that collects acks from all of its referees becomes
//     leader. Everyone else becomes non-leader.
//
// Shared referees ack at most one of any two candidates, so two leaders
// coexist only if some candidate pair shares no referee (or ranks tie) —
// both o(1) events. With zero candidates no leader is elected; also o(1).
// Section 3.5 contrasts this with Las Vegas algorithms, which provably
// cannot go below Omega(n) messages.
type Sublinear struct {
	env proto.Env

	candidate bool
	rank      int64
	referees  []int // ports

	bestBidPort int
	bestBidRank int64
	haveBid     bool

	acks int

	dec    proto.Decision
	halted bool
}

// NewSublinear returns a simsync factory for the [16] baseline.
func NewSublinear() simsync.Factory {
	return func(int) simsync.Protocol { return &Sublinear{} }
}

// SublinearCandidateProb returns the candidacy probability 2·ln(n)/n:
// Theta(log n) candidates in expectation, at least one with probability
// 1 - n^{-2}.
func SublinearCandidateProb(n int) float64 {
	if n <= 1 {
		return 1
	}
	return math.Min(1, 2*math.Log(float64(n))/float64(n))
}

// SublinearRefCount returns the per-candidate referee count
// ceil(sqrt(1.5·n·ln n)): any two candidates share a referee with
// probability 1 - n^{-1.5}.
func SublinearRefCount(n int) int {
	if n <= 2 {
		return n - 1
	}
	r := int(math.Ceil(math.Sqrt(1.5 * float64(n) * math.Log(float64(n)))))
	if r > n-1 {
		r = n - 1
	}
	return r
}

// Init implements simsync.Protocol.
func (s *Sublinear) Init(env proto.Env) {
	s.env = env
	if env.N == 1 {
		s.dec = proto.Leader
		s.halted = true
		return
	}
	if env.RNG.Bernoulli(SublinearCandidateProb(env.N)) {
		s.candidate = true
		s.rank = drawRank(env.N, env.RNG)
		s.referees = env.RNG.Sample(env.Ports(), SublinearRefCount(env.N))
	}
}

// Init draws candidacy from the node's private RNG; interface compliance:
var _ interface{ Int63() int64 } = (*xrand.RNG)(nil)

// Send implements simsync.Protocol.
func (s *Sublinear) Send(round int) []proto.Send {
	switch round {
	case 1:
		if !s.candidate {
			return nil
		}
		out := make([]proto.Send, len(s.referees))
		for i, p := range s.referees {
			out[i] = proto.Send{Port: p, Msg: proto.Message{Kind: KindRank, A: s.rank}}
		}
		return out
	case 2:
		// Ack the best received bid — but a candidate referee backs its own
		// bid first: it acks only bids that beat its own rank. (Without
		// this, two candidates that are each other's only referees — always
		// the case at n=2 — ack each other and both win.)
		if !s.haveBid || (s.candidate && s.bestBidRank <= s.rank) {
			return nil
		}
		return []proto.Send{{Port: s.bestBidPort, Msg: proto.Message{Kind: KindAck}}}
	}
	return nil
}

// Deliver implements simsync.Protocol.
func (s *Sublinear) Deliver(round int, inbox []proto.Delivery) {
	switch round {
	case 1:
		for _, d := range inbox {
			if d.Msg.Kind != KindRank {
				continue
			}
			if !s.haveBid || d.Msg.A > s.bestBidRank {
				s.haveBid = true
				s.bestBidRank = d.Msg.A
				s.bestBidPort = d.Port
			}
		}
	case 2:
		for _, d := range inbox {
			if d.Msg.Kind == KindAck {
				s.acks++
			}
		}
		if s.candidate && s.acks == len(s.referees) {
			s.dec = proto.Leader
		} else {
			s.dec = proto.NonLeader
		}
		s.halted = true
	}
}

// Decision implements simsync.Protocol.
func (s *Sublinear) Decision() proto.Decision { return s.dec }

// Halted implements simsync.Protocol.
func (s *Sublinear) Halted() bool { return s.halted }

var _ simsync.Protocol = (*Sublinear)(nil)
