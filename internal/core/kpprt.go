package core

import (
	"math"

	"cliquelect/internal/proto"
	"cliquelect/internal/simsync"
)

// KPPRT is the sampled-candidacy horizon election in the style of Kutten,
// Pandurangan, Peleg, Robinson and Trehan ("Sublinear bounds for randomized
// leader election", arXiv 1210.4822), generalized from the clique to any
// connected topology the engines can wire. Its signature is the KPPRT
// candidacy lottery: only Theta(log n) nodes in expectation compete, every
// competitor draws a rank from [n^4], and referees keep only the best bid
// they see — the protocol trades a small failure probability for a message
// bill far below the deterministic extinction of KuttenMoses.
//
// Two modes, chosen by the wiring:
//
//   - Clique (Env.Deg == 0): the classic 2-round algorithm. Each candidate
//     bids to ceil(sqrt(1.5·n·ln n)) referees over uniformly random ports;
//     any two candidates share a referee w.h.p. A referee acks (Win) only
//     its best round-1 bid, and a candidate that collects an ack from every
//     referee leads. O(sqrt(n)·log^{3/2} n) messages, 2 rounds.
//   - General graph (Env.Deg > 0): direct referee sampling is impossible
//     under KT0 — a node can only address its incident ports — so every
//     node acts as a referee for the bids that reach it: candidates flood
//     their rank, relays forward only improvements (one message per port
//     per round, so concurrent bids never contend for a link), and at the
//     horizon round 2·Diam+2 every node decides by the best rank it holds.
//     The engine's diameter estimate (double-sweep BFS) is at least half
//     the true diameter, so the horizon covers a full flood; the unique
//     maximum-rank candidate is the leader. Expected O(m·log log n)
//     messages (each node forwards only record-breaking ranks among
//     Theta(log n) random bids) and exactly 2·Diam+2 rounds — the timed
//     counterpart to KuttenMoses's echo termination, trading the echo's
//     message bill for reliance on the diameter estimate.
//
// Monte Carlo failure modes (all reported as OK=false runs, never a wrong
// unique answer): no node wins the candidacy lottery — probability
// (n+1)^{-2} under simultaneous wake-up, larger when the adversary wakes
// only a small set; two top candidates draw equal ranks (<= n^{-2}); on the
// clique, two candidates sharing no referee (o(1)).
type KPPRT struct {
	env proto.Env
	deg int

	sawEvent bool // candidacy = first event is Send, not Deliver
	cand     bool
	rank     int64

	// Clique mode.
	referees    []int
	bestBidPort int
	bestBidRank int64
	haveBid     bool
	wins        int

	// Graph mode.
	best    int64 // best rank seen (the node's referee verdict)
	horizon int
	relay   bool // an improvement arrived; forward next Send
	relayEx int  // ...on every port except this one (-1 = all, candidacy bid)

	buf    proto.SendBuf
	dec    proto.Decision
	halted bool
}

// NewKPPRT returns a simsync factory for the sampled-candidacy election.
func NewKPPRT() simsync.Factory {
	return func(int) simsync.Protocol { return &KPPRT{} }
}

// KPPRTCandidateProb returns the candidacy probability min(1, 2·ln(n+1)/n):
// Theta(log n) candidates in expectation, at least one with probability
// 1 - (n+1)^{-2} under simultaneous wake-up.
func KPPRTCandidateProb(n int) float64 {
	if n <= 1 {
		return 1
	}
	return math.Min(1, 2*math.Log(float64(n+1))/float64(n))
}

// clique reports whether the node is wired into the default clique.
func (k *KPPRT) clique() bool { return k.env.Deg == 0 }

// Init implements simsync.Protocol.
func (k *KPPRT) Init(env proto.Env) {
	k.env = env
	k.deg = env.Ports()
	if env.N == 1 {
		k.dec = proto.Leader
		k.halted = true
		return
	}
	// Graph mode decides at round 2·Diam+2: the flood certainly completed
	// (the estimate is >= D/2) and one extra round absorbs the send/deliver
	// phase offset.
	k.horizon = 2*env.Diam + 2
}

// Send implements simsync.Protocol.
func (k *KPPRT) Send(round int) []proto.Send {
	if !k.sawEvent {
		// First event is a Send: the node was initially awake and enters the
		// candidacy lottery.
		k.sawEvent = true
		if k.env.RNG.Bernoulli(KPPRTCandidateProb(k.env.N)) {
			k.cand = true
			k.rank = drawRank(k.env.N, k.env.RNG)
			if k.clique() {
				k.referees = k.env.RNG.Sample(k.deg, SublinearRefCount(k.env.N))
			} else {
				k.best = k.rank
				k.relay = true
				k.relayEx = -1
			}
		}
	}
	if k.clique() {
		switch round {
		case 1:
			if !k.cand {
				return nil
			}
			out := k.buf.Take(len(k.referees))[:0]
			for _, p := range k.referees {
				out = append(out, proto.Send{Port: p, Msg: proto.Message{Kind: KindProbe, A: k.rank}})
			}
			return out
		case 2:
			// Referee ack for the best bid; a candidate referee backs its own
			// rank first (cf. Sublinear: mutual referees must not both win).
			if !k.haveBid || (k.cand && k.bestBidRank <= k.rank) {
				return nil
			}
			return []proto.Send{{Port: k.bestBidPort, Msg: proto.Message{Kind: KindWin}}}
		}
		return nil
	}
	// Graph mode: forward the latest improvement everywhere it has not been.
	if !k.relay {
		return nil
	}
	k.relay = false
	out := k.buf.Take(k.deg)[:0]
	for p := 0; p < k.deg; p++ {
		if p != k.relayEx {
			out = append(out, proto.Send{Port: p, Msg: proto.Message{Kind: KindProbe, A: k.best}})
		}
	}
	return out
}

// Deliver implements simsync.Protocol.
func (k *KPPRT) Deliver(round int, inbox []proto.Delivery) {
	k.sawEvent = true
	if k.clique() {
		switch round {
		case 1:
			for _, d := range inbox {
				if d.Msg.Kind != KindProbe {
					continue
				}
				if !k.haveBid || d.Msg.A > k.bestBidRank {
					k.haveBid = true
					k.bestBidRank = d.Msg.A
					k.bestBidPort = d.Port
				}
			}
		case 2:
			for _, d := range inbox {
				if d.Msg.Kind == KindWin {
					k.wins++
				}
			}
			if k.cand && k.wins == len(k.referees) {
				k.dec = proto.Leader
			} else {
				k.dec = proto.NonLeader
			}
			k.halted = true
		}
		return
	}
	// Graph mode: referee filtering — keep only the best rank, forward
	// improvements once (extinction keeps the link load at one message per
	// port per round).
	bestNew := int64(0)
	bestPort := -1
	for _, d := range inbox {
		if d.Msg.Kind == KindProbe && d.Msg.A > bestNew {
			bestNew = d.Msg.A
			bestPort = d.Port
		}
	}
	if bestNew > k.best {
		k.best = bestNew
		k.relay = true
		k.relayEx = bestPort
	}
	if round >= k.horizon {
		if k.cand && k.best == k.rank {
			k.dec = proto.Leader
		} else {
			k.dec = proto.NonLeader
		}
		k.halted = true
	}
}

// Decision implements simsync.Protocol.
func (k *KPPRT) Decision() proto.Decision { return k.dec }

// Halted implements simsync.Protocol.
func (k *KPPRT) Halted() bool { return k.halted }

var _ simsync.Protocol = (*KPPRT)(nil)
