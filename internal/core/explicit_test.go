package core

import (
	"testing"
	"testing/quick"

	"cliquelect/internal/ids"
	"cliquelect/internal/proto"
	"cliquelect/internal/simsync"
	"cliquelect/internal/xrand"
)

func TestExplicitWrapsDeterministicAlgorithms(t *testing.T) {
	cases := map[string]struct {
		factory simsync.Factory
		mkIDs   func(n int, rng *xrand.RNG) ids.Assignment
	}{
		"tradeoff": {NewTradeoff(3), func(n int, rng *xrand.RNG) ids.Assignment {
			return ids.Random(ids.LogUniverse(n), n, rng)
		}},
		"afekgafni": {NewAfekGafni(2), func(n int, rng *xrand.RNG) ids.Assignment {
			return ids.Random(ids.LogUniverse(n), n, rng)
		}},
		"smallid": {NewSmallID(4, 1), func(n int, rng *xrand.RNG) ids.Assignment {
			return ids.Random(ids.LinearUniverse(n, 1), n, rng)
		}},
	}
	for name, c := range cases {
		for _, n := range []int{2, 5, 16, 64} {
			rng := xrand.New(uint64(n))
			assign := c.mkIDs(n, rng)
			leaderID, res, err := RunExplicit(simsync.Config{
				N: n, IDs: assign, Seed: 9, Strict: true,
			}, c.factory)
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			if leaderID != int64(assign[res.UniqueLeader()]) {
				t.Fatalf("%s n=%d: agreed ID %d, leader has %d", name, n, leaderID,
					assign[res.UniqueLeader()])
			}
		}
	}
}

func TestExplicitCostsOneRoundAndNMessages(t *testing.T) {
	const n = 64
	assign := ids.Random(ids.LogUniverse(n), n, xrand.New(3))
	inner, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: 4}, NewTradeoff(3))
	if err != nil {
		t.Fatal(err)
	}
	_, wrapped, err := RunExplicit(simsync.Config{N: n, IDs: assign, Seed: 4}, NewTradeoff(3))
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.Rounds != inner.Rounds+1 {
		t.Fatalf("rounds: %d vs inner %d (+1 expected)", wrapped.Rounds, inner.Rounds)
	}
	if wrapped.Messages != inner.Messages+int64(n-1) {
		t.Fatalf("messages: %d vs inner %d (+n-1 expected)", wrapped.Messages, inner.Messages)
	}
}

func TestExplicitRandomizedLasVegas(t *testing.T) {
	// Explicit + Las Vegas: agreement must hold on every run.
	for seed := uint64(0); seed < 20; seed++ {
		const n = 64
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed+60))
		if _, _, err := RunExplicit(simsync.Config{
			N: n, IDs: assign, Seed: seed, Strict: true,
		}, NewLasVegas()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestExplicitAdversarialWake(t *testing.T) {
	// Under adversarial wake-up the announcement reaches (and wakes)
	// everyone, so all nodes output the leader ID.
	const n = 32
	assign := ids.Random(ids.LogUniverse(n), n, xrand.New(8))
	leaderID, res, err := RunExplicit(simsync.Config{
		N: n, IDs: assign, Seed: 2, Strict: true,
		Wake: simsync.AdversarialSet{Nodes: []int{4, 9}},
	}, NewAfekGafni(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAwake() {
		t.Fatal("announcement should wake everyone")
	}
	wantMax := assign[4]
	if assign[9] > wantMax {
		wantMax = assign[9]
	}
	if leaderID != int64(wantMax) {
		t.Fatalf("leader ID %d, want max root %d", leaderID, wantMax)
	}
}

func TestExplicitGivesUpWithoutLeader(t *testing.T) {
	// A degenerate inner protocol that never elects anyone: the wrapper must
	// still quiesce (bounded wait), with Output 0 everywhere.
	res, err := simsync.Run(simsync.Config{
		N: 8, IDs: ids.Sequential(ids.LinearUniverse(8, 1), 8), Seed: 1,
	}, NewExplicit(func(int) simsync.Protocol { return &allNonLeader{} }))
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("wrapper failed to quiesce")
	}
	if len(res.Leaders()) != 0 {
		t.Fatal("phantom leader")
	}
}

// allNonLeader instantly decides non-leader (a degenerate "election").
type allNonLeader struct{ halted bool }

func (p *allNonLeader) Init(proto.Env)           {}
func (p *allNonLeader) Send(int) []proto.Send    { return nil }
func (p *allNonLeader) Decision() proto.Decision { return proto.NonLeader }
func (p *allNonLeader) Halted() bool             { return p.halted }

func (p *allNonLeader) Deliver(round int, _ []proto.Delivery) {
	p.halted = true
}

// TestExplicitPropertyUniqueAgreement quick-checks agreement over random
// sizes and seeds.
func TestExplicitPropertyUniqueAgreement(t *testing.T) {
	prop := func(seed uint64, sz uint8) bool {
		n := int(sz%30) + 2
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed))
		_, _, err := RunExplicit(simsync.Config{N: n, IDs: assign, Seed: seed}, NewTradeoff(3))
		return err == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
