package core

import (
	"cliquelect/internal/proto"
	"cliquelect/internal/simasync"
)

// AsyncAfekGafni is the deterministic asynchronous algorithm of Section 5.4
// (Theorem 5.14): the Afek-Gafni tradeoff algorithm translated to the
// asynchronous clique under simultaneous wake-up, using O(log n) time
// (counted from the last spontaneous wake-up) and O(n log n) messages.
//
// Every node starts as a candidate at level 0 and simultaneously acts as a
// supporter. A candidate at level i requests support from its first 2^i
// neighbors, itself being neighbor number one (so 2^i - 1 request messages
// over ports 0..2^i-2, each carrying <id, level>); when all of them ack, it
// climbs to level i+1, and it terminates as leader once its batch covers
// the whole clique (2^i >= n), announcing itself to everyone.
//
// A supporter backs at most one candidate at a time — initially itself.
// When a request arrives from a challenger w while it backs owner u, the
// supporter relays a conditional cancel to u; u refuses iff it is still
// live and lexicographically ahead of the challenger ((level, id) order),
// in which case the supporter kills w; otherwise u drops out and the
// supporter switches its ack to w. Concurrent requests at one supporter are
// serialized through a FIFO queue.
//
// Two deliberate deviations from the paper's prose, both documented here
// because the prose leaves the cases open:
//
//  1. The paper only describes switching toward challengers with *larger*
//     IDs. If a supporter's owner has already been killed elsewhere, a
//     smaller-ID challenger would then wait forever; we instead consult the
//     owner in both directions and let the owner's (level, id) vs.
//     (challenger level, challenger id) comparison decide. The paper's
//     progress argument (Lemma 5.11) survives: the lexicographically
//     maximal live candidate can never be refused, so it climbs until it
//     wins — deterministic termination, no high-probability caveat.
//  2. A node's own candidacy occupies its own supporter slot (it "acks
//     itself" at level 0). This makes the supporter-exclusivity counting of
//     Lemma 5.12 exact: every node backs at most one candidacy, so at most
//     n/2^i candidates ever reach level i.
type AsyncAfekGafni struct {
	env proto.Env

	// Candidate state.
	live        bool
	level       int
	pendingAcks int
	fullBatch   bool // current batch covers all n-1 ports: winning it elects
	leader      bool

	// Supporter state: the single candidacy this node currently backs.
	ownerSelf bool
	ownerPort int
	ownerID   int64

	// Switch serialization.
	switching bool
	inFlight  reqEntry
	queue     []reqEntry

	dec proto.Decision
	out []proto.Send
}

type reqEntry struct {
	port  int
	id    int64
	level int64
}

// NewAsyncAfekGafni returns a simasync factory for Theorem 5.14's
// deterministic algorithm. Run it under simultaneous wake-up
// (simasync.AllAtZero); under adversarial wake-up its time complexity is
// counted from the last spontaneous wake-up, per the theorem statement.
func NewAsyncAfekGafni() simasync.Factory {
	return func(int) simasync.Protocol { return &AsyncAfekGafni{} }
}

// Wake implements simasync.Protocol.
func (g *AsyncAfekGafni) Wake(env proto.Env) []proto.Send {
	g.env = env
	g.live = true
	g.ownerSelf = true
	g.ownerID = env.ID
	g.climb()
	return g.flush()
}

// climb advances the candidacy as far as its current acks allow: it either
// wins (batch covers the clique) or emits the next level's request batch.
func (g *AsyncAfekGafni) climb() {
	if !g.live || g.leader {
		return
	}
	for {
		if g.env.N == 1 {
			g.win()
			return
		}
		batch := 1<<uint(g.level) - 1 // external requests; self is neighbor #1
		if batch > g.env.Ports() {
			batch = g.env.Ports()
		}
		if batch == 0 {
			g.level++ // level 0 needs only the node's own (implicit) support
			continue
		}
		g.pendingAcks = batch
		g.fullBatch = batch == g.env.Ports()
		for p := 0; p < batch; p++ {
			g.send(p, proto.Message{Kind: KindRequest, A: g.env.ID, B: int64(g.level)})
		}
		return
	}
}

// win declares this node the leader and announces it to the clique.
func (g *AsyncAfekGafni) win() {
	g.leader = true
	g.dec = proto.Leader
	for p := 0; p < g.env.Ports(); p++ {
		g.send(p, proto.Message{Kind: KindAnnounce, A: g.env.ID})
	}
}

// Receive implements simasync.Protocol.
func (g *AsyncAfekGafni) Receive(d proto.Delivery) []proto.Send {
	switch d.Msg.Kind {
	case KindRequest:
		req := reqEntry{port: d.Port, id: d.Msg.A, level: d.Msg.B}
		if g.switching {
			g.queue = append(g.queue, req)
		} else {
			g.handleRequest(req)
		}
	case KindLevelAck:
		g.onAck(int(d.Msg.B))
	case KindCancel:
		g.onCancel(d.Port, d.Msg.A, d.Msg.B)
	case KindCancelGrant:
		g.onSwitchResolved(true)
	case KindCancelRefuse:
		g.onSwitchResolved(false)
	case KindKill:
		g.die()
	case KindAnnounce:
		if !g.leader && g.dec == proto.Undecided {
			g.dec = proto.NonLeader
		}
	}
	return g.flush()
}

// handleRequest processes one support request outside of any in-flight
// switch.
func (g *AsyncAfekGafni) handleRequest(req reqEntry) {
	switch {
	case !g.ownerSelf && req.id == g.ownerID:
		// Re-request from the candidate this node already backs (it climbed
		// a level): re-ack.
		g.send(req.port, proto.Message{Kind: KindLevelAck, B: req.level})
	case g.ownerSelf && req.id == g.env.ID:
		// Cannot happen: nodes do not send requests to themselves.
		g.send(req.port, proto.Message{Kind: KindLevelAck, B: req.level})
	case g.ownerSelf:
		// The owner is this node's own candidacy: resolve the cancel
		// locally. An elected leader always refuses.
		if g.leader || (g.live && g.lexAhead(req)) {
			g.send(req.port, proto.Message{Kind: KindKill})
			return
		}
		g.die()
		g.ownerSelf = false
		g.ownerPort = req.port
		g.ownerID = req.id
		g.send(req.port, proto.Message{Kind: KindLevelAck, B: req.level})
	default:
		// Consult the external owner with a conditional cancel.
		g.switching = true
		g.inFlight = req
		g.send(g.ownerPort, proto.Message{Kind: KindCancel, A: req.id, B: req.level})
	}
}

// lexAhead reports whether this node's live candidacy is strictly ahead of
// the challenger in (level, id) order.
func (g *AsyncAfekGafni) lexAhead(req reqEntry) bool {
	if int64(g.level) != req.level {
		return int64(g.level) > req.level
	}
	return g.env.ID > req.id
}

// onCancel is the owner side of the conditional cancel: refuse iff still
// live and lexicographically ahead; otherwise drop out and grant.
func (g *AsyncAfekGafni) onCancel(port int, challID, challLevel int64) {
	if g.leader || (g.live && g.lexAhead(reqEntry{id: challID, level: challLevel})) {
		g.send(port, proto.Message{Kind: KindCancelRefuse})
		return
	}
	g.die()
	g.send(port, proto.Message{Kind: KindCancelGrant})
}

// onSwitchResolved finishes the in-flight switch and drains the queue.
func (g *AsyncAfekGafni) onSwitchResolved(granted bool) {
	if !g.switching {
		return
	}
	g.switching = false
	req := g.inFlight
	if granted {
		g.ownerSelf = false
		g.ownerPort = req.port
		g.ownerID = req.id
		g.send(req.port, proto.Message{Kind: KindLevelAck, B: req.level})
	} else {
		g.send(req.port, proto.Message{Kind: KindKill})
	}
	for !g.switching && len(g.queue) > 0 {
		next := g.queue[0]
		g.queue = g.queue[1:]
		g.handleRequest(next)
	}
}

// onAck counts acks for the current level batch.
func (g *AsyncAfekGafni) onAck(level int) {
	if !g.live || g.leader || level != g.level || g.pendingAcks == 0 {
		return
	}
	g.pendingAcks--
	if g.pendingAcks == 0 {
		if g.fullBatch {
			g.win() // acked by the entire clique: elected
			return
		}
		g.level++
		g.climb()
	}
}

// die removes this node's candidacy from the race (its supporter role
// continues).
func (g *AsyncAfekGafni) die() {
	if !g.live || g.leader {
		return
	}
	g.live = false
	if g.dec == proto.Undecided {
		g.dec = proto.NonLeader
	}
}

// Decision implements simasync.Protocol.
func (g *AsyncAfekGafni) Decision() proto.Decision { return g.dec }

func (g *AsyncAfekGafni) send(port int, m proto.Message) {
	g.out = append(g.out, proto.Send{Port: port, Msg: m})
}

func (g *AsyncAfekGafni) flush() []proto.Send {
	out := g.out
	g.out = nil
	return out
}

var _ simasync.Protocol = (*AsyncAfekGafni)(nil)
