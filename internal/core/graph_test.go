package core

import (
	"math"
	"testing"

	"cliquelect/internal/ids"
	"cliquelect/internal/simsync"
	"cliquelect/internal/topo"
	"cliquelect/internal/xrand"
)

// buildTopo constructs a test topology, failing the test on error.
func buildTopo(t *testing.T, spec string, n int, seed uint64) topo.Topology {
	t.Helper()
	g, err := topo.Build(spec, n, seed)
	if err != nil {
		t.Fatalf("topo.Build(%s, %d): %v", spec, n, err)
	}
	return g
}

func TestKuttenMosesElectsMaxIDOnEveryTopology(t *testing.T) {
	for _, spec := range []string{"ring", "torus", "rreg:d=4", "power:m=2", "clique"} {
		for _, n := range []int{2, 3, 8, 17, 64} {
			if spec == "rreg:d=4" && n < 8 {
				continue
			}
			g := buildTopo(t, spec, n, uint64(n))
			assign := ids.Random(ids.LogUniverse(n), n, xrand.New(uint64(n)+7))
			res, err := simsync.Run(simsync.Config{
				N: n, IDs: assign, Seed: uint64(n), Topo: g, Strict: true,
			}, NewKuttenMoses())
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Validate(); err != nil {
				t.Fatalf("%s n=%d: %v", spec, n, err)
			}
			if leader := res.UniqueLeader(); assign[leader] != assign.Max() {
				t.Fatalf("%s n=%d: leader ID %d, want max %d", spec, n, assign[leader], assign.Max())
			}
		}
	}
}

func TestKuttenMosesSingleNode(t *testing.T) {
	res, err := simsync.Run(simsync.Config{
		N: 1, IDs: ids.Assignment{5}, Seed: 1, Topo: buildTopo(t, "ring", 1, 1), Strict: true,
	}, NewKuttenMoses())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKuttenMosesSubsetWake(t *testing.T) {
	// Under adversarial wake-up the flood must wake everyone and the winner
	// is the maximum ID among the initially-awake candidates.
	const n = 48
	for seed := uint64(1); seed <= 5; seed++ {
		g := buildTopo(t, "ring", n, seed)
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed))
		wake := xrand.New(seed+100).Sample(n, 3)
		res, err := simsync.Run(simsync.Config{
			N: n, IDs: assign, Seed: seed, Topo: g, Strict: true,
			Wake: simsync.AdversarialSet{Nodes: wake},
		}, NewKuttenMoses())
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.AllAwake() {
			t.Fatalf("seed %d: flood left nodes asleep", seed)
		}
		var wantID int64
		for _, u := range wake {
			if assign[u] > wantID {
				wantID = assign[u]
			}
		}
		if leader := res.UniqueLeader(); assign[leader] != wantID {
			t.Fatalf("seed %d: leader ID %d, want best awake candidate %d", seed, assign[leader], wantID)
		}
	}
}

func TestKuttenMosesRingProfile(t *testing.T) {
	// The singular-optimality profile on the ring: messages near-linear in
	// m = n (extinction forwards only expected O(log n) record ranks per
	// node), rounds bounded by a small multiple of the diameter n/2.
	for _, n := range []int{64, 256, 1024} {
		g := buildTopo(t, "ring", n, uint64(n))
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(uint64(n)))
		res, err := simsync.Run(simsync.Config{
			N: n, IDs: assign, Seed: 9, Topo: g, MaxRounds: 8 * n,
		}, NewKuttenMoses())
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		m := float64(g.M())
		msgBound := 8 * m * math.Log(float64(n))
		if float64(res.Messages) > msgBound {
			t.Fatalf("n=%d: %d messages exceed O(m log n) bound %.0f", n, res.Messages, msgBound)
		}
		d := g.Diameter()
		if res.Rounds > 4*d+8 {
			t.Fatalf("n=%d: %d rounds exceed diameter bound %d", n, res.Rounds, 4*d+8)
		}
	}
}

func TestKPPRTOnGraphs(t *testing.T) {
	// Monte Carlo: count failures over seeds instead of demanding perfection.
	for _, spec := range []string{"ring", "torus", "rreg:d=4", "power:m=2"} {
		const n = 64
		fail := 0
		for seed := uint64(1); seed <= 20; seed++ {
			g := buildTopo(t, spec, n, seed)
			assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed))
			res, err := simsync.Run(simsync.Config{
				N: n, IDs: assign, Seed: seed, Topo: g, Strict: true,
			}, NewKPPRT())
			if err != nil {
				t.Fatal(err)
			}
			if res.TimedOut {
				t.Fatalf("%s seed %d: timed out (horizon halting is broken)", spec, seed)
			}
			if res.Validate() != nil {
				fail++
				continue
			}
			// The horizon is exact: 2·diam + 2.
			if want := 2*g.Diameter() + 2; res.Rounds != want {
				t.Fatalf("%s seed %d: decided at round %d, want horizon %d", spec, seed, res.Rounds, want)
			}
		}
		if fail > 4 {
			t.Fatalf("%s: %d/20 failed elections", spec, fail)
		}
	}
}

func TestKPPRTCliqueModeMatchesSublinearShape(t *testing.T) {
	// On the default clique wiring KPPRT is the classic 2-round referee
	// algorithm with a sublinear message bill.
	const n = 256
	fail := 0
	for seed := uint64(1); seed <= 20; seed++ {
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed))
		res, err := simsync.Run(simsync.Config{
			N: n, IDs: assign, Seed: seed, Strict: true,
		}, NewKPPRT())
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds > 2 {
			t.Fatalf("seed %d: %d rounds on the clique, want <= 2", seed, res.Rounds)
		}
		bound := 64 * math.Sqrt(float64(n)) * math.Pow(math.Log(float64(n)), 1.5)
		if float64(res.Messages) > bound {
			t.Fatalf("seed %d: %d messages exceed sublinear bound %.0f", seed, res.Messages, bound)
		}
		if res.Validate() != nil {
			fail++
		}
	}
	if fail > 4 {
		t.Fatalf("%d/20 failed elections on the clique", fail)
	}
}

func TestKPPRTSingleNode(t *testing.T) {
	for _, g := range []topo.Topology{nil, buildTopo(t, "ring", 1, 1)} {
		res, err := simsync.Run(simsync.Config{
			N: 1, IDs: ids.Assignment{3}, Seed: 1, Topo: g, Strict: true,
		}, NewKPPRT())
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
