package core

import (
	"math"
	"testing"

	"cliquelect/internal/ids"
	"cliquelect/internal/proto"
	"cliquelect/internal/simsync"
	"cliquelect/internal/xrand"
)

func TestAfekGafniSimultaneousElectsMaxID(t *testing.T) {
	for _, n := range []int{2, 3, 8, 17, 64, 100} {
		for _, k := range []int{1, 2, 3, 4} {
			assign := ids.Random(ids.LogUniverse(n), n, xrand.New(uint64(n+k)))
			res, err := simsync.Run(simsync.Config{
				N: n, IDs: assign, Seed: uint64(k), Strict: true,
			}, NewAfekGafni(k))
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Validate(); err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
			leader := res.UniqueLeader()
			if assign[leader] != assign.Max() {
				t.Fatalf("n=%d k=%d: leader ID %d, want %d", n, k, assign[leader], assign.Max())
			}
		}
	}
}

func TestAfekGafniRoundBudget(t *testing.T) {
	// l = 2k rounds: all message activity ends by round 2k.
	for _, k := range []int{1, 2, 3} {
		const n = 64
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(uint64(k)))
		res, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: 7}, NewAfekGafni(k))
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds > 2*k {
			t.Fatalf("k=%d: rounds = %d > %d", k, res.Rounds, 2*k)
		}
	}
}

func TestAfekGafniMessageBound(t *testing.T) {
	// O(k · n^{1+1/k}) with a generous constant.
	for _, n := range []int{64, 256, 1024} {
		for _, k := range []int{1, 2, 3, 4} {
			assign := ids.Random(ids.LogUniverse(n), n, xrand.New(uint64(n+k)))
			res, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: 3}, NewAfekGafni(k))
			if err != nil {
				t.Fatal(err)
			}
			bound := 8 * float64(k) * math.Pow(float64(n), 1+1/float64(k))
			if float64(res.Messages) > bound {
				t.Fatalf("n=%d k=%d: %d messages exceed %.0f", n, k, res.Messages, bound)
			}
		}
	}
}

func TestAfekGafniAdversarialWake(t *testing.T) {
	// Under adversarial wake-up only round-1-awake nodes compete; the
	// winner is the max-ID root. Sleeping nodes woken by bids must still
	// decide (non-leader).
	const n, k = 40, 3
	assign := ids.Random(ids.LogUniverse(n), n, xrand.New(11))
	for _, wake := range [][]int{{0}, {5, 17}, {0, 1, 2, 3, 4, 5, 6, 7}} {
		res, err := simsync.Run(simsync.Config{
			N: n, IDs: assign, Seed: 2, Strict: true,
			Wake: simsync.AdversarialSet{Nodes: wake},
		}, NewAfekGafni(k))
		if err != nil {
			t.Fatal(err)
		}
		leader := res.UniqueLeader()
		if leader < 0 {
			t.Fatalf("wake=%v: no unique leader", wake)
		}
		var maxRoot ids.ID
		for _, u := range wake {
			if assign[u] > maxRoot {
				maxRoot = assign[u]
			}
		}
		if assign[leader] != maxRoot {
			t.Fatalf("wake=%v: leader ID %d, want max root %d", wake, assign[leader], maxRoot)
		}
		// The final full-fan-out iteration wakes everyone.
		if !res.AllAwake() {
			t.Fatalf("wake=%v: not all nodes woke", wake)
		}
		for u, d := range res.Decisions {
			if d == proto.Undecided {
				t.Fatalf("wake=%v: node %d undecided", wake, u)
			}
		}
	}
}

func TestAfekGafniSingleRootWins(t *testing.T) {
	// A single awake node must become leader even though it is the only
	// competitor.
	const n, k = 16, 2
	assign := ids.Sequential(ids.LinearUniverse(n, 1), n)
	res, err := simsync.Run(simsync.Config{
		N: n, IDs: assign, Seed: 5, Strict: true,
		Wake: simsync.AdversarialSet{Nodes: []int{3}},
	}, NewAfekGafni(k))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.UniqueLeader(); got != 3 {
		t.Fatalf("leader = %d, want 3", got)
	}
}

func TestAfekGafniSoloNode(t *testing.T) {
	res, err := simsync.Run(simsync.Config{N: 1, IDs: ids.Assignment{1}}, NewAfekGafni(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueLeader() != 0 {
		t.Fatal("solo node must lead")
	}
}

func TestValidateAfekGafniK(t *testing.T) {
	if err := ValidateAfekGafniK(0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if err := ValidateAfekGafniK(1); err != nil {
		t.Fatal(err)
	}
}
