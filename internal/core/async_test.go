package core

import (
	"math"
	"testing"

	"cliquelect/internal/ids"
	"cliquelect/internal/simasync"
	"cliquelect/internal/xrand"
)

// asyncPolicies are the adversarial schedulers every asynchronous algorithm
// is exercised under.
func asyncPolicies() map[string]simasync.DelayPolicy {
	return map[string]simasync.DelayPolicy{
		"unit":    simasync.UnitDelay{},
		"uniform": simasync.UniformDelay{Lo: 0.05},
		"skew":    simasync.SkewDelay{Fast: 0.05, Mod: 3},
	}
}

// --- AsyncTradeoff (Algorithm 2 / Theorem 5.1) ---

func TestAsyncTradeoffElectsUniqueLeader(t *testing.T) {
	const n = 128
	for name, policy := range asyncPolicies() {
		for _, k := range []int{2, 3, 4} {
			fails := 0
			const trials = 25
			for seed := uint64(0); seed < trials; seed++ {
				assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed+404))
				res, err := simasync.Run(simasync.Config{
					N: n, IDs: assign, Seed: seed, Delays: policy,
					Wake: simasync.SubsetAtZero([]int{0}),
				}, NewAsyncTradeoff(k))
				if err != nil {
					t.Fatal(err)
				}
				if res.Validate() != nil {
					fails++
				}
			}
			if fails > 2 {
				t.Fatalf("%s k=%d: %d/%d failures", name, k, fails, trials)
			}
		}
	}
}

func TestAsyncTradeoffWakesEveryone(t *testing.T) {
	const n = 256
	for _, k := range []int{2, 3} {
		ok := 0
		const trials = 20
		for seed := uint64(0); seed < trials; seed++ {
			assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed+11))
			res, err := simasync.Run(simasync.Config{
				N: n, IDs: assign, Seed: seed,
				Wake: simasync.SubsetAtZero([]int{int(seed) % n}),
			}, NewAsyncTradeoff(k))
			if err != nil {
				t.Fatal(err)
			}
			if res.AllAwake() {
				ok++
			}
		}
		if ok < trials-1 {
			t.Fatalf("k=%d: only %d/%d runs woke everyone", k, ok, trials)
		}
	}
}

func TestAsyncTradeoffTimeBound(t *testing.T) {
	// Theorem 5.1: k+8 time units. The paper's accounting is asymptotic; we
	// allow 2 extra units of slack (the final announcement hop and the
	// sub-unit skews of the uniform scheduler).
	const n = 256
	for _, k := range []int{2, 3, 5} {
		for seed := uint64(0); seed < 10; seed++ {
			assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed+77))
			res, err := simasync.Run(simasync.Config{
				N: n, IDs: assign, Seed: seed, Delays: simasync.UnitDelay{},
				Wake: simasync.SubsetAtZero([]int{0}),
			}, NewAsyncTradeoff(k))
			if err != nil {
				t.Fatal(err)
			}
			if res.TimeUnits > float64(k)+10 {
				t.Fatalf("k=%d seed=%d: time %.2f > k+10", k, seed, res.TimeUnits)
			}
		}
	}
}

func TestAsyncTradeoffMessageBound(t *testing.T) {
	// O(n^{1+1/k}): generous constant, worst over seeds.
	for _, n := range []int{256, 1024} {
		for _, k := range []int{2, 3} {
			var worst int64
			for seed := uint64(0); seed < 5; seed++ {
				assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed))
				res, err := simasync.Run(simasync.Config{
					N: n, IDs: assign, Seed: seed,
					Wake: simasync.SubsetAtZero([]int{0}),
				}, NewAsyncTradeoff(k))
				if err != nil {
					t.Fatal(err)
				}
				if res.Messages > worst {
					worst = res.Messages
				}
			}
			bound := 24 * math.Pow(float64(n), 1+1/float64(k))
			if float64(worst) > bound {
				t.Fatalf("n=%d k=%d: worst %d messages exceed %.0f", n, k, worst, bound)
			}
		}
	}
}

func TestAsyncTradeoffManyRoots(t *testing.T) {
	// Adversary wakes everyone at once: still a unique leader.
	const n, k = 128, 2
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	fails := 0
	for seed := uint64(0); seed < 20; seed++ {
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed+3))
		res, err := simasync.Run(simasync.Config{
			N: n, IDs: assign, Seed: seed,
			Wake: simasync.SubsetAtZero(all),
		}, NewAsyncTradeoff(k))
		if err != nil {
			t.Fatal(err)
		}
		if res.Validate() != nil {
			fails++
		}
	}
	if fails > 2 {
		t.Fatalf("%d/20 failures", fails)
	}
}

func TestAsyncTradeoffStaggeredWake(t *testing.T) {
	// Roots woken at different instants exercise the winner-revocation path
	// (late high-rank competes arrive at referees that already crowned).
	const n, k = 96, 3
	fails := 0
	for seed := uint64(0); seed < 20; seed++ {
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed+8))
		res, err := simasync.Run(simasync.Config{
			N: n, IDs: assign, Seed: seed,
			Delays: simasync.SkewDelay{Fast: 0.02, Mod: 2},
			Wake: simasync.WakeSchedule{
				{Node: 0, Time: 0}, {Node: 1, Time: 0.5}, {Node: 2, Time: 0.9},
			},
		}, NewAsyncTradeoff(k))
		if err != nil {
			t.Fatal(err)
		}
		if res.Validate() != nil {
			fails++
		}
	}
	if fails > 2 {
		t.Fatalf("%d/20 failures under staggered wake", fails)
	}
}

func TestAsyncTradeoffSoloNode(t *testing.T) {
	res, err := simasync.Run(simasync.Config{
		N: 1, IDs: ids.Assignment{5}, Wake: simasync.SubsetAtZero([]int{0}),
	}, NewAsyncTradeoff(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueLeader() != 0 {
		t.Fatal("solo node must lead")
	}
}

func TestValidateAsyncK(t *testing.T) {
	if err := ValidateAsyncK(1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if err := ValidateAsyncK(2); err != nil {
		t.Fatal(err)
	}
}

// --- AsyncAfekGafni (Theorem 5.14) ---

func TestAsyncAfekGafniDeterministicUniqueLeader(t *testing.T) {
	// Deterministic algorithm: must elect exactly one leader under every
	// scheduler, every port mapping, every ID assignment — no probability.
	for _, n := range []int{1, 2, 3, 4, 7, 16, 33, 64, 128} {
		for name, policy := range asyncPolicies() {
			for seed := uint64(0); seed < 5; seed++ {
				assign := ids.Random(ids.LogUniverse(max(n, 2)), n, xrand.New(seed+uint64(n)))
				res, err := simasync.Run(simasync.Config{
					N: n, IDs: assign, Seed: seed, Delays: policy,
					Wake: simasync.AllAtZero(n),
				}, NewAsyncAfekGafni())
				if err != nil {
					t.Fatal(err)
				}
				if err := res.Validate(); err != nil {
					t.Fatalf("n=%d %s seed=%d: %v", n, name, seed, err)
				}
			}
		}
	}
}

func TestAsyncAfekGafniMessageBound(t *testing.T) {
	// Theorem 5.14: O(n log n) messages.
	for _, n := range []int{64, 256, 1024} {
		var worst int64
		for seed := uint64(0); seed < 5; seed++ {
			assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed))
			res, err := simasync.Run(simasync.Config{
				N: n, IDs: assign, Seed: seed,
				Delays: simasync.UniformDelay{Lo: 0.1},
				Wake:   simasync.AllAtZero(n),
			}, NewAsyncAfekGafni())
			if err != nil {
				t.Fatal(err)
			}
			if res.Messages > worst {
				worst = res.Messages
			}
		}
		bound := 16 * float64(n) * math.Log2(float64(n))
		if float64(worst) > bound {
			t.Fatalf("n=%d: worst %d messages exceed %.0f", n, worst, bound)
		}
	}
}

func TestAsyncAfekGafniTimeBound(t *testing.T) {
	// O(log n) time from simultaneous wake-up: allow a constant per level.
	for _, n := range []int{64, 256, 1024} {
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(uint64(n)))
		res, err := simasync.Run(simasync.Config{
			N: n, IDs: assign, Seed: 3, Delays: simasync.UnitDelay{},
			Wake: simasync.AllAtZero(n),
		}, NewAsyncAfekGafni())
		if err != nil {
			t.Fatal(err)
		}
		if res.TimeUnits > 8*float64(CeilLog2(n))+8 {
			t.Fatalf("n=%d: time %.1f not O(log n)", n, res.TimeUnits)
		}
	}
}

func TestAsyncAfekGafniAdversarialWakeStillUnique(t *testing.T) {
	// Theorem 5.14 counts time from the last spontaneous wake-up; with
	// adversarial wake-up correctness (unique leader among woken nodes'
	// reachable set) must still hold. All nodes are eventually woken by
	// level batches, so everyone decides.
	const n = 64
	fails := 0
	for seed := uint64(0); seed < 10; seed++ {
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed+500))
		res, err := simasync.Run(simasync.Config{
			N: n, IDs: assign, Seed: seed,
			Delays: simasync.UniformDelay{Lo: 0.2},
			Wake:   simasync.SubsetAtZero([]int{0, 5}),
		}, NewAsyncAfekGafni())
		if err != nil {
			t.Fatal(err)
		}
		if got := len(res.Leaders()); got != 1 {
			fails++
		}
	}
	if fails != 0 {
		t.Fatalf("%d/10 adversarial-wake runs failed uniqueness", fails)
	}
}

func TestAsyncLinearBaseline(t *testing.T) {
	// The substituted [14] baseline: near-linear messages, polylog time.
	const n = 1024
	assign := ids.Random(ids.LogUniverse(n), n, xrand.New(9))
	res, err := simasync.Run(simasync.Config{
		N: n, IDs: assign, Seed: 10,
		Wake: simasync.SubsetAtZero([]int{0}),
	}, NewAsyncLinear(n))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if float64(res.Messages) > 24*float64(n)*math.Log2(float64(n)) {
		t.Fatalf("messages %d not near-linear", res.Messages)
	}
	if res.TimeUnits > 4*math.Log2(float64(n)) {
		t.Fatalf("time %.1f not polylog", res.TimeUnits)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestAsyncTradeoffUnderTargetedScheduler stresses Algorithm 2's winner
// revocation: compete messages crawl (full time unit) while everything else
// flies, so referees crown early low-rank candidates and must later consult
// and revoke them when the slow high-rank competes trickle in.
func TestAsyncTradeoffUnderTargetedScheduler(t *testing.T) {
	const n, k = 128, 3
	fails := 0
	const trials = 20
	for seed := uint64(0); seed < trials; seed++ {
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed+640))
		res, err := simasync.Run(simasync.Config{
			N: n, IDs: assign, Seed: seed,
			Delays: simasync.KindDelay{Slow: []uint8{KindCompeteAsync, KindConsult}},
			Wake:   simasync.SubsetAtZero([]int{0, 1}),
		}, NewAsyncTradeoff(k))
		if err != nil {
			t.Fatal(err)
		}
		if res.Validate() != nil {
			fails++
		}
	}
	if fails > 2 {
		t.Fatalf("%d/%d failures under the targeted scheduler", fails, trials)
	}
}

// TestAsyncAfekGafniUnderTargetedScheduler slows the cancel/grant traffic,
// stressing the serialization of supporter switches.
func TestAsyncAfekGafniUnderTargetedScheduler(t *testing.T) {
	const n = 64
	for seed := uint64(0); seed < 10; seed++ {
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed+17))
		res, err := simasync.Run(simasync.Config{
			N: n, IDs: assign, Seed: seed,
			Delays: simasync.KindDelay{Slow: []uint8{KindCancel, KindCancelGrant, KindCancelRefuse}},
			Wake:   simasync.AllAtZero(n),
		}, NewAsyncAfekGafni())
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("seed %d: %v (deterministic algorithm must not fail)", seed, err)
		}
	}
}
