package core

import (
	"cliquelect/internal/proto"
	"cliquelect/internal/simsync"
)

// AfekGafni is the deterministic tradeoff baseline of Afek and Gafni [1]
// that Theorem 3.10 improves on: for a parameter k >= 1 it runs k two-round
// survivor/referee iterations with referee counts ceil(n^{i/k}), taking
// l = 2k rounds and O(k · n^{1+1/k}) = O(l · n^{1+2/l}) messages.
//
// Unlike the paper's improved variant, the final iteration still pays the
// full bid/ack round trip, which is exactly the inefficiency Section 3.3
// removes: in iteration k a survivor contacts all n-1 nodes and becomes
// leader iff every single node acks it (at most one node can collect n-1
// acks because a referee acks at most one bid per iteration).
//
// The algorithm also runs under adversarial wake-up — its home model in [1]:
// nodes woken in round 1 by the adversary compete as survivors; nodes woken
// later by messages only referee, and decide non-leader immediately.
type AfekGafni struct {
	k   int
	env proto.Env

	started  bool // first callback seen (wake-kind detection)
	survivor bool

	bestBidPort int
	bestBidID   int64
	haveBid     bool

	acks     int
	expected int

	// finalMaxBid is the highest competing bid received during the final
	// iteration's bid round. A survivor wins only if it collected all acks
	// AND saw no final-iteration bid above its own ID; the second condition
	// is vacuous for n >= 3 (any two full-fan-out survivors share a referee
	// who acks at most one of them) but breaks the mutual-ack symmetry of
	// n = 2, where each node is the other's only referee.
	finalMaxBid int64

	sbuf proto.SendBuf // reused across rounds; consumed by the engine per call

	dec      proto.Decision
	halted   bool
	deadline int // wake-relative halt round
}

// NewAfekGafni returns a simsync factory for the Afek-Gafni baseline with
// parameter k >= 1 (round count l = 2k). It panics on invalid k; use
// ValidateAfekGafniK to check first.
func NewAfekGafni(k int) simsync.Factory {
	if err := ValidateAfekGafniK(k); err != nil {
		panic(err)
	}
	return func(int) simsync.Protocol { return &AfekGafni{k: k} }
}

// Rounds returns the running time l = 2k for n > 1.
func (a *AfekGafni) Rounds() int { return 2 * a.k }

// Init implements simsync.Protocol.
func (a *AfekGafni) Init(env proto.Env) {
	a.env = env
	if env.N == 1 {
		a.dec = proto.Leader
		a.halted = true
	}
}

func (a *AfekGafni) lastRound() int { return 2 * a.k }

// Send implements simsync.Protocol.
func (a *AfekGafni) Send(round int) []proto.Send {
	if !a.started {
		// First callback is Send: this node was woken by the adversary in
		// round 1 and competes. (Message-woken nodes see Deliver first.)
		a.started = true
		a.survivor = true
		a.deadline = round + a.lastRound()
	}
	if round > a.lastRound() {
		return nil
	}
	it, phase := (round-1)/2+1, (round-1)%2+1
	if phase == 1 {
		if !a.survivor {
			return nil
		}
		a.expected = Fanout(a.env.N, it, a.k)
		a.acks = 0
		out := a.sbuf.Take(a.expected)
		for p := range out {
			out[p] = proto.Send{Port: p, Msg: proto.Message{Kind: KindCompete, A: a.env.ID}}
		}
		return out
	}
	if !a.haveBid {
		return nil
	}
	a.haveBid = false
	out := a.sbuf.Take(1)
	out[0] = proto.Send{Port: a.bestBidPort, Msg: proto.Message{Kind: KindAck}}
	return out
}

// Deliver implements simsync.Protocol.
func (a *AfekGafni) Deliver(round int, inbox []proto.Delivery) {
	if !a.started {
		// First callback is Deliver: message-woken; referee only. A node
		// that never competed can decide non-leader right away (implicit
		// election) while continuing to referee until its deadline.
		a.started = true
		a.survivor = false
		a.dec = proto.NonLeader
		a.deadline = round + a.lastRound()
	}
	phase := (round-1)%2 + 1
	if phase == 1 {
		for _, d := range inbox {
			if d.Msg.Kind != KindCompete {
				continue
			}
			if round == a.lastRound()-1 && d.Msg.A > a.finalMaxBid {
				a.finalMaxBid = d.Msg.A
			}
			if !a.haveBid || d.Msg.A > a.bestBidID {
				a.haveBid = true
				a.bestBidID = d.Msg.A
				a.bestBidPort = d.Port
			}
		}
	} else if a.survivor {
		for _, d := range inbox {
			if d.Msg.Kind == KindAck {
				a.acks++
			}
		}
		if a.acks < a.expected {
			a.survivor = false
			a.dec = proto.NonLeader
		} else if round == a.lastRound() && a.expected == a.env.Ports() &&
			a.env.ID > a.finalMaxBid {
			// Survived the full-fan-out final iteration: leader.
			a.dec = proto.Leader
		}
	}
	if round >= a.deadline || (round >= a.lastRound() && a.dec != proto.Undecided) {
		if a.dec == proto.Undecided {
			a.dec = proto.NonLeader
		}
		a.halted = true
	}
}

// Decision implements simsync.Protocol.
func (a *AfekGafni) Decision() proto.Decision { return a.dec }

// Halted implements simsync.Protocol.
func (a *AfekGafni) Halted() bool { return a.halted }

var _ simsync.Protocol = (*AfekGafni)(nil)
