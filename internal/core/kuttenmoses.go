package core

import (
	"cliquelect/internal/proto"
	"cliquelect/internal/simsync"
)

// KuttenMoses is the general-graph extinction election in the lineage of
// "Singularly Optimal Randomized Leader Election" (Kutten, Moses Jr.,
// Pandurangan, Peleg; arXiv 2008.02782): a KT0 CONGEST algorithm whose
// message bill scales with the edge count m and whose running time scales
// with the diameter D, on any connected topology the engines can wire
// (internal/topo) — clique included, where it degenerates to a one-hop
// shout-out.
//
// The algorithm is wave extinction with echo termination:
//
//   - Every initially-awake node is a candidate and floods a wave carrying
//     its ID as rank. A node always follows the best (highest) rank it has
//     seen: adopting a wave records the arrival port as the wave parent and
//     re-floods the rank on every other port; a wave with a lower rank than
//     the current one is simply ignored (extinction), and a wave meeting
//     itself is closed with a Same reply.
//   - Echo (PIF) convergecast: a node whose every non-parent edge has been
//     answered — by a child's Echo, a Same, or a crossing Cand of the same
//     rank — reports Echo to its parent. The maximum-rank wave is never
//     invaded, so its echo completes; every other wave is absorbed before
//     its echo can finish.
//   - The candidate whose own wave echoes back clean is the unique leader;
//     it floods Halt, on which every node decides and halts.
//
// One message per port per round, by construction: extinction forwards only
// the current best rank, so concurrent waves never contend for a link. The
// wave flood reaches every node within D rounds of the first wake-up, the
// echo returns within another D, and Halt takes a final D: O(D) rounds
// total. Each node re-floods once per adoption, and under the random ID
// assignments the engines use a node expects O(log n) adoptions (record
// values of a random sequence), for O(m log n) messages in expectation —
// the singular-optimality profile, up to the log factor, on every topology.
//
// Determinism: no coins; identical IDs, wiring and wake set reproduce the
// run exactly, and the awake node with the maximum ID always wins.
type KuttenMoses struct {
	env proto.Env
	deg int

	sawEvent bool // candidacy = first event is Send, not Deliver
	cand     bool

	best    int64  // rank of the wave the node follows (0 = none)
	parent  int    // wave parent port; -1 while rooting an own wave
	waiting []bool // per-port: flood sent, reply outstanding
	pend    int    // count of true entries in waiting
	echoed  bool   // echo for the current wave already queued

	outMsg []proto.Message // per-port queued message for the next Send
	outSet []bool
	buf    proto.SendBuf

	haltAfterSend bool // queued messages are the node's last (Halt flood)
	dec           proto.Decision
	halted        bool
}

// NewKuttenMoses returns a simsync factory for the extinction election.
func NewKuttenMoses() simsync.Factory {
	return func(int) simsync.Protocol { return &KuttenMoses{} }
}

// Init implements simsync.Protocol.
func (k *KuttenMoses) Init(env proto.Env) {
	k.env = env
	k.deg = env.Ports()
	if env.N == 1 {
		k.dec = proto.Leader
		k.halted = true
		return
	}
	k.parent = -1
	k.waiting = make([]bool, k.deg)
	k.outMsg = make([]proto.Message, k.deg)
	k.outSet = make([]bool, k.deg)
}

// queue schedules msg on port p for the next Send, replacing anything
// already queued there (later obligations supersede dead-wave traffic).
func (k *KuttenMoses) queue(p int, msg proto.Message) {
	k.outMsg[p] = msg
	k.outSet[p] = true
}

// Send implements simsync.Protocol.
func (k *KuttenMoses) Send(round int) []proto.Send {
	if !k.sawEvent {
		// First event is a Send: the node was initially awake, so it is a
		// candidate and roots a wave ranked by its own ID.
		k.sawEvent = true
		k.cand = true
		k.best = k.env.ID
		for p := 0; p < k.deg; p++ {
			k.queue(p, proto.Message{Kind: KindCand, A: k.best})
			k.waiting[p] = true
		}
		k.pend = k.deg
	}
	out := k.buf.Take(k.deg)[:0]
	for p := 0; p < k.deg; p++ {
		if k.outSet[p] {
			out = append(out, proto.Send{Port: p, Msg: k.outMsg[p]})
			k.outSet[p] = false
		}
	}
	if k.haltAfterSend {
		k.halted = true
	}
	return out
}

// adopt switches the node to a better wave arriving on port from.
func (k *KuttenMoses) adopt(rank int64, from int) {
	k.best = rank
	k.parent = from
	k.echoed = false
	k.pend = 0
	for p := 0; p < k.deg; p++ {
		k.waiting[p] = false
		k.outSet[p] = false // dead-wave traffic is obsolete
		if p != from {
			k.queue(p, proto.Message{Kind: KindCand, A: rank})
			k.waiting[p] = true
			k.pend++
		}
	}
}

// settle closes the waiting edge on port p (a reply or crossing wave for the
// current rank arrived there).
func (k *KuttenMoses) settle(p int) {
	if k.waiting[p] {
		k.waiting[p] = false
		k.pend--
	}
}

// Deliver implements simsync.Protocol.
func (k *KuttenMoses) Deliver(round int, inbox []proto.Delivery) {
	k.sawEvent = true
	// Halt dominates everything: decide, relay once, stop.
	halt := false
	for _, d := range inbox {
		if d.Msg.Kind == KindHalt {
			halt = true
			break
		}
	}
	if halt {
		if k.dec == proto.Undecided {
			k.dec = proto.NonLeader
		}
		for p := 0; p < k.deg; p++ {
			k.outSet[p] = false
			k.queue(p, proto.Message{Kind: KindHalt})
		}
		for _, d := range inbox {
			if d.Msg.Kind == KindHalt {
				k.outSet[d.Port] = false // the sender is already halting
			}
		}
		k.haltAfterSend = true
		return
	}

	// Extinction: find the best wave offered this round.
	bestNew := int64(0)
	bestPort := -1
	for _, d := range inbox {
		if d.Msg.Kind == KindCand && d.Msg.A > bestNew {
			bestNew = d.Msg.A
			bestPort = d.Port
		}
	}
	if bestNew > k.best {
		k.adopt(bestNew, bestPort)
	}
	for _, d := range inbox {
		switch d.Msg.Kind {
		case KindCand:
			if d.Msg.A != k.best || d.Port == k.parent {
				continue // extinct wave, or the adoption edge itself
			}
			// Same wave over a non-parent edge: if our flood is outstanding
			// (or just queued) on that port, the crossing Cand answers it and
			// ours will answer theirs; otherwise close their edge explicitly.
			if k.waiting[d.Port] {
				k.waiting[d.Port] = false
				k.pend--
				if k.outSet[d.Port] && k.outMsg[d.Port].Kind == KindCand {
					// Adopted this very round from another port: replace the
					// not-yet-sent flood with the closing reply.
					k.queue(d.Port, proto.Message{Kind: KindSame, A: k.best})
				}
			} else {
				k.queue(d.Port, proto.Message{Kind: KindSame, A: k.best})
			}
		case KindEcho, KindSame:
			if d.Msg.A == k.best {
				k.settle(d.Port)
			}
		}
	}
	// Echo when every non-parent edge is answered. The root whose own wave
	// completes is the unique survivor: it leads and floods Halt.
	if k.best > 0 && k.pend == 0 && !k.echoed {
		k.echoed = true
		if k.parent >= 0 {
			k.queue(k.parent, proto.Message{Kind: KindEcho, A: k.best})
			return
		}
		k.dec = proto.Leader
		for p := 0; p < k.deg; p++ {
			k.queue(p, proto.Message{Kind: KindHalt})
		}
		k.haltAfterSend = true
	}
}

// Decision implements simsync.Protocol.
func (k *KuttenMoses) Decision() proto.Decision { return k.dec }

// Halted implements simsync.Protocol.
func (k *KuttenMoses) Halted() bool { return k.halted }

var _ simsync.Protocol = (*KuttenMoses)(nil)
