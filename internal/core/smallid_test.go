package core

import (
	"testing"

	"cliquelect/internal/ids"
	"cliquelect/internal/simsync"
	"cliquelect/internal/xrand"
)

func runSmallID(t *testing.T, n, d, g int, assign ids.Assignment, seed uint64) *simsync.Result {
	t.Helper()
	res, err := simsync.Run(simsync.Config{
		N: n, IDs: assign, Seed: seed, Strict: true,
	}, NewSmallID(d, g))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSmallIDElectsMinID(t *testing.T) {
	for _, n := range []int{2, 5, 16, 64, 100} {
		for _, g := range []int{1, 2, 4} {
			for _, d := range []int{1, 4, n} {
				u := ids.LinearUniverse(n, g)
				assign := ids.Random(u, n, xrand.New(uint64(n+g+d)))
				res := runSmallID(t, n, d, g, assign, 7)
				if err := res.Validate(); err != nil {
					t.Fatalf("n=%d d=%d g=%d: %v", n, d, g, err)
				}
				leader := res.UniqueLeader()
				if assign[leader] != assign.Min() {
					t.Fatalf("n=%d d=%d g=%d: leader ID %d, want min %d",
						n, d, g, assign[leader], assign.Min())
				}
			}
		}
	}
}

func TestSmallIDRoundAndMessageBounds(t *testing.T) {
	// Theorem 3.15: <= ceil(n/d) rounds and <= n·d·g messages.
	for _, n := range []int{64, 256} {
		for _, d := range []int{2, 8, 16} {
			for _, g := range []int{1, 3} {
				u := ids.LinearUniverse(n, g)
				assign := ids.Spread(u, n) // adversarial: every window is full
				res := runSmallID(t, n, d, g, assign, 1)
				if res.Rounds > CeilDiv(n, d) {
					t.Fatalf("n=%d d=%d g=%d: rounds %d > %d", n, d, g, res.Rounds, CeilDiv(n, d))
				}
				if res.Messages > int64(n)*int64(d)*int64(g) {
					t.Fatalf("n=%d d=%d g=%d: %d messages > n·d·g = %d",
						n, d, g, res.Messages, n*d*g)
				}
			}
		}
	}
}

func TestSmallIDFirstWindowShortCircuit(t *testing.T) {
	// With the minimum ID in window 1, the run ends in round 1 regardless
	// of d.
	const n = 32
	u := ids.LinearUniverse(n, 1)
	assign := ids.Sequential(u, n) // ID 1 present
	res := runSmallID(t, n, 4, 1, assign, 3)
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
}

func TestSmallIDLateWindow(t *testing.T) {
	// All IDs packed at the top of the universe: the algorithm must stay
	// silent until the last window, then finish.
	const n, g, d = 16, 2, 2
	assign := make(ids.Assignment, n) // inside LinearUniverse(16, 2) = {1..32}
	for i := range assign {
		assign[i] = ids.ID(17 + i) // IDs 17..32: first window at round ceil(17/4)=5
	}
	res := runSmallID(t, n, d, g, assign, 9)
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if want := CeilDiv(17, d*g); res.Rounds != want {
		t.Fatalf("rounds = %d, want %d", res.Rounds, want)
	}
	leader := res.UniqueLeader()
	if assign[leader] != 17 {
		t.Fatalf("leader ID = %d, want 17", assign[leader])
	}
}

func TestSmallIDSublinearRegime(t *testing.T) {
	// Theorem 3.15's punchline: g = O(1) and d = o(log n) gives o(n log n)
	// messages in sublinear (n/d) time. Verify messages < n·log2(n) for a
	// concrete instance with d = 2, g = 1.
	const n, d, g = 1024, 2, 1
	u := ids.LinearUniverse(n, g)
	assign := ids.Random(u, n, xrand.New(77))
	res := runSmallID(t, n, d, g, assign, 8)
	nlogn := int64(n) * int64(CeilLog2(n))
	if res.Messages >= nlogn {
		t.Fatalf("messages %d not below n·log n = %d", res.Messages, nlogn)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSmallIDSoloNode(t *testing.T) {
	res, err := simsync.Run(simsync.Config{N: 1, IDs: ids.Assignment{1}}, NewSmallID(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueLeader() != 0 {
		t.Fatal("solo node must lead")
	}
}

func TestValidateSmallID(t *testing.T) {
	if err := ValidateSmallID(0, 1); err == nil {
		t.Fatal("d=0 accepted")
	}
	if err := ValidateSmallID(1, 0); err == nil {
		t.Fatal("g=0 accepted")
	}
	if err := ValidateSmallID(1, 1); err != nil {
		t.Fatal(err)
	}
}
