package core

import (
	"math"
	"testing"

	"cliquelect/internal/ids"
	"cliquelect/internal/portmap"
	"cliquelect/internal/proto"
	"cliquelect/internal/simsync"
	"cliquelect/internal/xrand"
)

// runTradeoff executes Theorem 3.10's algorithm on one configuration.
func runTradeoff(t *testing.T, n, k int, seed uint64, pm portmap.Map) (*simsync.Result, ids.Assignment) {
	t.Helper()
	assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed+1000))
	res, err := simsync.Run(simsync.Config{
		N: n, IDs: assign, Seed: seed, Ports: pm, Strict: true,
	}, NewTradeoff(k))
	if err != nil {
		t.Fatal(err)
	}
	return res, assign
}

func TestTradeoffElectsMaxID(t *testing.T) {
	for _, n := range []int{2, 3, 7, 16, 33, 64, 100, 128} {
		for _, k := range []int{3, 4, 5} {
			res, assign := runTradeoff(t, n, k, uint64(n*10+k), nil)
			if err := res.Validate(); err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
			leader := res.UniqueLeader()
			if assign[leader] != assign.Max() {
				t.Fatalf("n=%d k=%d: leader ID %d, want %d", n, k, assign[leader], assign.Max())
			}
		}
	}
}

func TestTradeoffExactRoundCount(t *testing.T) {
	// Theorem 3.10: l = 2k-3 rounds, exactly (the final broadcast happens in
	// round 2k-3 and decisions land the same round).
	for _, k := range []int{3, 4, 5, 6} {
		res, _ := runTradeoff(t, 64, k, uint64(k), nil)
		if want := 2*k - 3; res.Rounds != want {
			t.Fatalf("k=%d: rounds = %d, want %d", k, res.Rounds, want)
		}
	}
}

func TestTradeoffMessageBound(t *testing.T) {
	// O(k · n^{1+1/(k-1)}) with a generous constant; also sanity lower
	// bound: the final broadcast alone costs >= n-1.
	for _, n := range []int{64, 256, 512} {
		for _, k := range []int{3, 4, 5} {
			res, _ := runTradeoff(t, n, k, uint64(n+k), nil)
			bound := 8 * float64(k) * math.Pow(float64(n), 1+1/float64(k-1))
			if float64(res.Messages) > bound {
				t.Fatalf("n=%d k=%d: %d messages exceed bound %.0f", n, k, res.Messages, bound)
			}
			if res.Messages < int64(n-1) {
				t.Fatalf("n=%d k=%d: only %d messages", n, k, res.Messages)
			}
		}
	}
}

func TestTradeoffAllPortMaps(t *testing.T) {
	// Deterministic algorithms must elect the max ID under every port
	// mapping.
	const n, k = 48, 4
	for seed := uint64(0); seed < 5; seed++ {
		maps := []portmap.Map{
			portmap.NewCanonical(n),
			portmap.NewSharedPerm(n, xrand.New(seed)),
			portmap.NewLazyRandom(n, xrand.New(seed)),
		}
		for mi, pm := range maps {
			res, assign := runTradeoff(t, n, k, seed, pm)
			leader := res.UniqueLeader()
			if leader < 0 || assign[leader] != assign.Max() {
				t.Fatalf("map %d seed %d: wrong leader", mi, seed)
			}
		}
	}
}

func TestTradeoffSoloNode(t *testing.T) {
	res, err := simsync.Run(simsync.Config{N: 1, IDs: ids.Assignment{7}}, NewTradeoff(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueLeader() != 0 || res.Messages != 0 {
		t.Fatalf("solo node: %+v", res)
	}
}

func TestTradeoffEliminatedKeepRefereeing(t *testing.T) {
	// Losers decide NonLeader but the run must still finish with everyone
	// decided, which requires eliminated nodes to keep acking.
	res, _ := runTradeoff(t, 64, 5, 3, nil)
	for u, d := range res.Decisions {
		if d == proto.Undecided {
			t.Fatalf("node %d undecided", u)
		}
	}
}

func TestTradeoffBeatsAfekGafniAtEqualRounds(t *testing.T) {
	// The headline comparison (Section 3.3): at an equal round budget the
	// improved algorithm sends asymptotically fewer messages. Compare
	// Tradeoff with k (rounds 2k-3) against AfekGafni with round budget
	// ceil((2k-3)/2) iterations (rounds 2k-2 >= 2k-3, i.e. AG even gets one
	// round MORE) on a large clique.
	const n = 4096
	for _, k := range []int{3, 4} {
		agIters := k - 1 // 2k-2 rounds for AG vs 2k-3 for ours
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(9))
		ours, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: 1}, NewTradeoff(k))
		if err != nil {
			t.Fatal(err)
		}
		ag, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: 1}, NewAfekGafni(agIters))
		if err != nil {
			t.Fatal(err)
		}
		if ours.Messages >= ag.Messages {
			t.Fatalf("k=%d: tradeoff %d msgs not better than afek-gafni %d msgs",
				k, ours.Messages, ag.Messages)
		}
	}
}

func TestValidateTradeoffK(t *testing.T) {
	if err := ValidateTradeoffK(2); err == nil {
		t.Fatal("k=2 accepted")
	}
	if err := ValidateTradeoffK(3); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewTradeoff(1) did not panic")
		}
	}()
	NewTradeoff(1)
}

func TestFanout(t *testing.T) {
	cases := []struct {
		n, num, den, want int
	}{
		{16, 1, 2, 4},    // 16^(1/2)
		{16, 1, 4, 2},    // 16^(1/4)
		{27, 1, 3, 3},    // 27^(1/3)
		{100, 1, 2, 10},  // exact square root
		{100, 3, 2, 99},  // clamped to n-1
		{5, 1, 2, 3},     // ceil(sqrt 5)
		{1, 1, 1, 1},     // degenerate
		{1024, 2, 5, 16}, // 1024^(2/5) = 2^4
		{1024, 1, 10, 2}, // 1024^(1/10)
	}
	for _, c := range cases {
		if got := Fanout(c.n, c.num, c.den); got != c.want {
			t.Errorf("Fanout(%d,%d,%d) = %d, want %d", c.n, c.num, c.den, got, c.want)
		}
	}
}

func TestCeilHelpers(t *testing.T) {
	if CeilLog2(1) != 0 || CeilLog2(2) != 1 || CeilLog2(3) != 2 || CeilLog2(1024) != 10 || CeilLog2(1025) != 11 {
		t.Fatal("CeilLog2 wrong")
	}
	if CeilDiv(10, 3) != 4 || CeilDiv(9, 3) != 3 {
		t.Fatal("CeilDiv wrong")
	}
}
