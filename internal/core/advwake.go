package core

import (
	"fmt"
	"math"

	"cliquelect/internal/proto"
	"cliquelect/internal/simsync"
)

// AdvWake2Round is the algorithm of Theorem 4.1: a 2-round randomized
// leader-election (and wake-up) algorithm for the synchronous clique under
// adversarial wake-up that succeeds with probability at least 1 - eps - 1/n
// and sends O(n^{3/2} · log(1/eps)) messages in expectation — tightly
// matching the Omega(n^{3/2}) lower bound of Theorem 4.2:
//
//   - Round 1: every adversary-woken node (root) sends a wake-up message
//     over ceil(sqrt(n)) uniformly random ports (without replacement).
//   - Round 2: every node that received a round-1 message becomes a
//     candidate with probability ln(1/eps)/ceil(sqrt(n)). A candidate draws
//     a rank from [n^4] and broadcasts it to all n-1 others. At the end of
//     round 2, a candidate becomes leader iff every rank it received is
//     strictly lower than its own; every other node becomes non-leader.
//
// Since some root sends ceil(sqrt(n)) wake-ups to distinct nodes, at least
// ceil(sqrt(n)) nodes attempt candidacy, so a candidate exists with
// probability >= 1 - eps; all ranks are distinct with probability >= 1-1/n.
// The candidate broadcasts additionally solve wake-up: every node is awake
// by the end of round 2 whenever a candidate exists.
//
// (The paper's prose restricts candidacy to nodes "awoken by the receipt of
// a round-1 message, i.e., not by the adversary"; we let every receiver of a
// round-1 message attempt candidacy regardless of how it first woke, which
// is what the proof of Theorem 4.1 actually uses — with the literal reading,
// an adversary waking all n nodes would leave no candidates at all.)
type AdvWake2Round struct {
	eps float64
	env proto.Env

	started  bool
	root     bool
	eligible bool // received a round-1 message

	candidate bool
	rank      int64

	bestSeen int64

	dec    proto.Decision
	halted bool
}

// NewAdvWake2Round returns a simsync factory for Theorem 4.1's algorithm
// with failure parameter eps in (0, 1). It panics on invalid eps; use
// ValidateEps to check first.
func NewAdvWake2Round(eps float64) simsync.Factory {
	if err := ValidateEps(eps); err != nil {
		panic(err)
	}
	return func(int) simsync.Protocol { return &AdvWake2Round{eps: eps} }
}

// ValidateEps checks Theorem 4.1's failure parameter.
func ValidateEps(eps float64) error {
	if !(eps > 0 && eps < 1) {
		return fmt.Errorf("core: eps = %v, need 0 < eps < 1", eps)
	}
	return nil
}

// RootFanout returns ceil(sqrt(n)) clamped to n-1.
func RootFanout(n int) int {
	f := int(math.Ceil(math.Sqrt(float64(n))))
	if f > n-1 {
		f = n - 1
	}
	if f < 1 {
		f = 1
	}
	return f
}

// CandidateProb returns ln(1/eps)/ceil(sqrt(n)), clamped to [0, 1].
func CandidateProb(n int, eps float64) float64 {
	p := math.Log(1/eps) / float64(RootFanout(n))
	return math.Min(1, p)
}

// Init implements simsync.Protocol.
func (a *AdvWake2Round) Init(env proto.Env) {
	a.env = env
	if env.N == 1 {
		a.dec = proto.Leader
		a.halted = true
	}
}

// Send implements simsync.Protocol.
func (a *AdvWake2Round) Send(round int) []proto.Send {
	if !a.started {
		a.started = true
		a.root = true // first callback is Send: adversary-woken
	}
	switch round {
	case 1:
		if !a.root {
			return nil
		}
		ports := a.env.RNG.Sample(a.env.Ports(), RootFanout(a.env.N))
		out := make([]proto.Send, len(ports))
		for i, p := range ports {
			out[i] = proto.Send{Port: p, Msg: proto.Message{Kind: KindWakeup}}
		}
		return out
	case 2:
		if !a.eligible {
			return nil
		}
		if a.env.RNG.Bernoulli(CandidateProb(a.env.N, a.eps)) {
			a.candidate = true
			a.rank = drawRank(a.env.N, a.env.RNG)
			out := make([]proto.Send, a.env.Ports())
			for p := range out {
				out[p] = proto.Send{Port: p, Msg: proto.Message{Kind: KindRank, A: a.rank}}
			}
			return out
		}
	}
	return nil
}

// Deliver implements simsync.Protocol.
func (a *AdvWake2Round) Deliver(round int, inbox []proto.Delivery) {
	if !a.started {
		a.started = true // first callback is Deliver: message-woken
	}
	switch round {
	case 1:
		for _, d := range inbox {
			if d.Msg.Kind == KindWakeup {
				a.eligible = true
				break
			}
		}
	case 2:
		for _, d := range inbox {
			if d.Msg.Kind == KindRank && d.Msg.A > a.bestSeen {
				a.bestSeen = d.Msg.A
			}
		}
		if a.candidate && a.rank > a.bestSeen {
			a.dec = proto.Leader
		} else {
			a.dec = proto.NonLeader
		}
		a.halted = true
	}
}

// Decision implements simsync.Protocol.
func (a *AdvWake2Round) Decision() proto.Decision { return a.dec }

// Halted implements simsync.Protocol.
func (a *AdvWake2Round) Halted() bool { return a.halted }

var _ simsync.Protocol = (*AdvWake2Round)(nil)
