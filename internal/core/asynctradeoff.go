package core

import (
	"fmt"
	"math"

	"cliquelect/internal/proto"
	"cliquelect/internal/simasync"
)

// AsyncTradeoff is Algorithm 2 of the paper (Theorem 5.1): the first
// message/time tradeoff for leader election in the asynchronous clique under
// adversarial wake-up. For a parameter k in [2, O(log n / log log n)] it
// elects a unique leader w.h.p. within k+8 time units using O(n^{1+1/k})
// messages:
//
//   - On wake-up (adversarial or first message), a node sends <wake up!>
//     over ceil(4·n^{1/k}) uniformly random ports; by the cover-tree
//     argument of Lemma 5.2 every node is awake within k+4 time units.
//   - It then becomes a candidate with probability 4·ln(n)/n; a candidate
//     draws a rank from [n^4] and sends <rank, compete> to
//     ceil(4·sqrt(n·ln n)) random referees.
//   - A referee keeps the best rank it has seen in rho_winner. The first
//     compete wins immediately ("you win!"); a lower-or-equal rank loses
//     immediately; a higher rank forces the referee to consult the stored
//     winner: if that node has not yet become leader it drops out and the
//     newcomer is crowned, otherwise the newcomer loses. Concurrent
//     competes at one referee are serialized through a FIFO queue.
//   - A candidate that collects "you win!" from all its referees while
//     still undecided becomes leader and informs all nodes (who become
//     non-leaders).
//
// Lemma 5.9's argument gives uniqueness: two all-win candidates would share
// a referee w.h.p., and a shared referee crowns a second candidate only
// after verifying the first has not become leader — at which point the
// first is out of the race for good.
type AsyncTradeoff struct {
	k   int
	env proto.Env

	candidate bool
	rank      int64
	refPorts  []int
	wins      int
	dropped   bool
	leader    bool

	// Referee state.
	winnerRank int64 // 0 = empty
	winnerPort int   // port leading to the stored winner; meaningless if self
	winnerSelf bool

	// Consult serialization: head of pending is in flight iff consulting.
	pending    []pendingCompete
	consulting bool

	dec proto.Decision

	// Per-callback send accumulator. The engine consumes the slice flush
	// returns before the next callback on this instance, so the backing
	// array is reused across calls.
	out []proto.Send
}

type pendingCompete struct {
	port int
	rank int64
}

// NewAsyncTradeoff returns a simasync factory for Algorithm 2 with tradeoff
// parameter k >= 2. It panics on invalid k; use ValidateAsyncK to check
// first.
func NewAsyncTradeoff(k int) simasync.Factory {
	if err := ValidateAsyncK(k); err != nil {
		panic(err)
	}
	return func(int) simasync.Protocol { return &AsyncTradeoff{k: k} }
}

// NewAsyncLinear returns the substituted [14]-style near-linear baseline:
// Algorithm 2 run at its k = Theta(log n / log log n) extreme, where it
// sends O(n log n) messages and finishes in O(log n / log log n) + 8 time.
// See DESIGN.md, "Substitutions".
func NewAsyncLinear(n int) simasync.Factory {
	return NewAsyncTradeoff(AsyncLinearK(n))
}

// ValidateAsyncK checks Algorithm 2's tradeoff parameter.
func ValidateAsyncK(k int) error {
	if k < 2 {
		return fmt.Errorf("core: async tradeoff parameter k = %d, need k >= 2", k)
	}
	return nil
}

// WakeFanout returns ceil(4·n^{1/k}) clamped to [1, n-1] — the gamma·n^{1/k}
// wake-up fan-out of Lemma 5.2.
func WakeFanout(n, k int) int {
	f := int(math.Ceil(4 * math.Pow(float64(n), 1/float64(k))))
	if f > n-1 {
		f = n - 1
	}
	if f < 1 {
		f = 1
	}
	return f
}

// AsyncCandidateProb returns min(1, 4·ln(n)/n) (line 5 of Algorithm 2).
func AsyncCandidateProb(n int) float64 {
	if n <= 1 {
		return 1
	}
	return math.Min(1, 4*math.Log(float64(n))/float64(n))
}

// AsyncRefCount returns ceil(4·sqrt(n·ln n)) clamped to n-1 (line 8 of
// Algorithm 2).
func AsyncRefCount(n int) int {
	if n <= 2 {
		return n - 1
	}
	r := int(math.Ceil(4 * math.Sqrt(float64(n)*math.Log(float64(n)))))
	if r > n-1 {
		r = n - 1
	}
	return r
}

// Wake implements simasync.Protocol (lines 3-9 of Algorithm 2).
func (a *AsyncTradeoff) Wake(env proto.Env) []proto.Send {
	a.env = env
	if env.N == 1 {
		a.leader = true
		a.dec = proto.Leader
		return nil
	}
	for _, p := range env.RNG.Sample(env.Ports(), WakeFanout(env.N, a.k)) {
		a.send(p, proto.Message{Kind: KindWakeup})
	}
	if env.RNG.Bernoulli(AsyncCandidateProb(env.N)) {
		a.candidate = true
		a.rank = drawRank(env.N, env.RNG)
		a.winnerRank = a.rank // line 7: store own rank in rho_winner
		a.winnerSelf = true
		a.refPorts = env.RNG.Sample(env.Ports(), AsyncRefCount(env.N))
		for _, p := range a.refPorts {
			a.send(p, proto.Message{Kind: KindCompeteAsync, A: a.rank})
		}
	}
	return a.flush()
}

// Receive implements simasync.Protocol.
func (a *AsyncTradeoff) Receive(d proto.Delivery) []proto.Send {
	switch d.Msg.Kind {
	case KindWakeup:
		// Wake-up handled by the engine's Wake callback; nothing more.
	case KindCompeteAsync:
		a.onCompete(d.Port, d.Msg.A)
	case KindYouWin:
		a.onWin()
	case KindYouLose:
		a.dropOut()
	case KindConsult:
		// Line 23/27: report whether this node already became leader; if
		// not, it drops out of the competition by being asked.
		if a.leader {
			a.send(d.Port, proto.Message{Kind: KindConsultReply, A: 1})
		} else {
			a.dropOut()
			a.send(d.Port, proto.Message{Kind: KindConsultReply, A: 0})
		}
	case KindConsultReply:
		a.onConsultReply(d.Msg.A == 1)
	case KindAnnounce:
		if !a.leader && a.dec == proto.Undecided {
			a.dec = proto.NonLeader
		}
	}
	return a.flush()
}

// onCompete handles <rank, compete> (lines 15-29).
func (a *AsyncTradeoff) onCompete(port int, rank int64) {
	switch {
	case a.winnerRank == 0:
		// Line 16-17: first compete ever seen: crown immediately.
		a.winnerRank = rank
		a.winnerPort = port
		a.winnerSelf = false
		a.send(port, proto.Message{Kind: KindYouWin})
		if a.dec == proto.Undecided && !a.candidate {
			a.dec = proto.NonLeader
		}
	case rank <= a.winnerRank:
		// Line 18-19.
		a.send(port, proto.Message{Kind: KindYouLose})
	default:
		// Line 20-29, serialized through the pending queue.
		a.pending = append(a.pending, pendingCompete{port: port, rank: rank})
		a.advanceQueue()
	}
}

// advanceQueue resolves queued competes. Competes no higher than the stored
// winner lose immediately; the rest wait for one consult of the stored
// winner. Batching keeps Lemma 5.10's constant decision time: a single
// consult round trip revokes the stored winner and crowns the best queued
// compete, rejecting the others, instead of paying one round trip per
// queued compete. The uniqueness invariant is untouched — a referee never
// crowns a newcomer before the previously crowned candidate has been
// revoked (or found to be the leader).
func (a *AsyncTradeoff) advanceQueue() {
	if a.consulting {
		return
	}
	for len(a.pending) > 0 {
		a.prunePending()
		if len(a.pending) == 0 {
			return
		}
		if !a.winnerSelf {
			a.consulting = true
			a.send(a.winnerPort, proto.Message{Kind: KindConsult})
			return
		}
		// Consulting itself (line 21's "w may be v itself"): resolve
		// locally without messages.
		if a.leader {
			a.rejectPending()
			return
		}
		a.dropOut()
		a.crownBestPending()
	}
}

// prunePending rejects queued competes that no longer beat the stored
// winner.
func (a *AsyncTradeoff) prunePending() {
	kept := a.pending[:0]
	for _, pc := range a.pending {
		if pc.rank <= a.winnerRank {
			a.send(pc.port, proto.Message{Kind: KindYouLose})
		} else {
			kept = append(kept, pc)
		}
	}
	a.pending = kept
}

// rejectPending sends you-lose to everything queued.
func (a *AsyncTradeoff) rejectPending() {
	for _, pc := range a.pending {
		a.send(pc.port, proto.Message{Kind: KindYouLose})
	}
	a.pending = a.pending[:0]
}

// crownBestPending crowns the highest queued compete and rejects the rest.
func (a *AsyncTradeoff) crownBestPending() {
	best := 0
	for i, pc := range a.pending {
		if pc.rank > a.pending[best].rank {
			best = i
		}
	}
	for i, pc := range a.pending {
		if i == best {
			continue
		}
		a.send(pc.port, proto.Message{Kind: KindYouLose})
	}
	winner := a.pending[best]
	a.pending = a.pending[:0]
	a.winnerRank = winner.rank
	a.winnerPort = winner.port
	a.winnerSelf = false
	a.send(winner.port, proto.Message{Kind: KindYouWin})
}

// onConsultReply resolves the in-flight consult (lines 23-29).
func (a *AsyncTradeoff) onConsultReply(isLeader bool) {
	if !a.consulting {
		return // stale reply; cannot happen with serialized consults
	}
	a.consulting = false
	a.prunePending()
	if len(a.pending) == 0 {
		return
	}
	if isLeader {
		// The stored winner is the elected leader: everything queued loses.
		a.rejectPending()
		return
	}
	a.crownBestPending()
	a.advanceQueue()
}

// onWin counts referee verdicts (lines 10-11).
func (a *AsyncTradeoff) onWin() {
	if !a.candidate || a.dropped || a.leader {
		return
	}
	a.wins++
	if a.wins == len(a.refPorts) {
		a.leader = true
		a.dec = proto.Leader
		for p := 0; p < a.env.Ports(); p++ {
			a.send(p, proto.Message{Kind: KindAnnounce, A: a.env.ID})
		}
	}
}

// dropOut takes this node out of the competition (it can still referee).
func (a *AsyncTradeoff) dropOut() {
	if a.leader {
		return
	}
	a.dropped = true
	if a.dec == proto.Undecided {
		a.dec = proto.NonLeader
	}
}

// Decision implements simasync.Protocol.
func (a *AsyncTradeoff) Decision() proto.Decision { return a.dec }

func (a *AsyncTradeoff) send(port int, m proto.Message) {
	a.out = append(a.out, proto.Send{Port: port, Msg: m})
}

func (a *AsyncTradeoff) flush() []proto.Send {
	out := a.out
	a.out = a.out[:0]
	return out
}

var _ simasync.Protocol = (*AsyncTradeoff)(nil)
