package core

// Cross-cutting property-based tests (testing/quick) over the protocol
// suite: the invariants the paper's correctness arguments promise must hold
// for arbitrary sizes, seeds, port mappings and ID assignments.

import (
	"testing"
	"testing/quick"

	"cliquelect/internal/ids"
	"cliquelect/internal/portmap"
	"cliquelect/internal/simasync"
	"cliquelect/internal/simsync"
	"cliquelect/internal/xrand"
)

// pickMap derives one of the three oblivious port mappings from a selector.
func pickMap(sel uint8, n int, rng *xrand.RNG) portmap.Map {
	switch sel % 3 {
	case 0:
		return portmap.NewCanonical(n)
	case 1:
		return portmap.NewSharedPerm(n, rng)
	default:
		return portmap.NewLazyRandom(n, rng)
	}
}

// TestPropertyTradeoffMaxIDWins: Theorem 3.10's algorithm elects the
// maximum ID on every size, seed, and port mapping.
func TestPropertyTradeoffMaxIDWins(t *testing.T) {
	prop := func(seed uint64, sz, ksel, msel uint8) bool {
		n := int(sz%100) + 2
		k := int(ksel%4) + 3
		rng := xrand.New(seed)
		assign := ids.Random(ids.LogUniverse(n), n, rng)
		res, err := simsync.Run(simsync.Config{
			N: n, IDs: assign, Seed: rng.Uint64(), Ports: pickMap(msel, n, rng), Strict: true,
		}, NewTradeoff(k))
		if err != nil || res.Validate() != nil {
			return false
		}
		return assign[res.UniqueLeader()] == assign.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAfekGafniMaxRootWins: under adversarial wake-up the
// Afek-Gafni baseline elects the maximum-ID root, for arbitrary wake sets.
func TestPropertyAfekGafniMaxRootWins(t *testing.T) {
	prop := func(seed uint64, sz, ksel, wsel uint8) bool {
		n := int(sz%60) + 2
		k := int(ksel%3) + 1
		rng := xrand.New(seed)
		assign := ids.Random(ids.LogUniverse(n), n, rng)
		wakeCount := int(wsel)%n + 1
		wake := simsync.RandomWakeSet(n, wakeCount, rng)
		res, err := simsync.Run(simsync.Config{
			N: n, IDs: assign, Seed: rng.Uint64(), Wake: wake, Strict: true,
		}, NewAfekGafni(k))
		if err != nil {
			return false
		}
		leader := res.UniqueLeader()
		if leader < 0 {
			return false
		}
		var maxRoot ids.ID
		for _, u := range wake.Nodes {
			if assign[u] > maxRoot {
				maxRoot = assign[u]
			}
		}
		return assign[leader] == maxRoot
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySmallIDMinWins: Algorithm 1 elects the minimum ID for any
// (d, g) and any assignment from the linear universe.
func TestPropertySmallIDMinWins(t *testing.T) {
	prop := func(seed uint64, sz, dsel, gsel uint8) bool {
		n := int(sz%100) + 2
		d := int(dsel)%n + 1
		g := int(gsel%4) + 1
		rng := xrand.New(seed)
		assign := ids.Random(ids.LinearUniverse(n, g), n, rng)
		res, err := simsync.Run(simsync.Config{
			N: n, IDs: assign, Seed: rng.Uint64(), Strict: true,
		}, NewSmallID(d, g))
		if err != nil || res.Validate() != nil {
			return false
		}
		return assign[res.UniqueLeader()] == assign.Min() &&
			res.Rounds <= CeilDiv(n, d) &&
			res.Messages <= int64(n)*int64(d)*int64(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLasVegasNeverWrong: the Theorem 3.16 algorithm terminates
// with exactly one leader on every input — the Las Vegas property itself.
func TestPropertyLasVegasNeverWrong(t *testing.T) {
	prop := func(seed uint64, sz uint8) bool {
		n := int(sz%80) + 2
		rng := xrand.New(seed)
		assign := ids.Random(ids.LogUniverse(n), n, rng)
		res, err := simsync.Run(simsync.Config{
			N: n, IDs: assign, Seed: rng.Uint64(), Strict: true,
		}, NewLasVegas())
		return err == nil && res.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAsyncAfekGafniDeterministic: the Section 5.4 algorithm elects
// exactly one leader under arbitrary schedulers — with no failure
// probability at all.
func TestPropertyAsyncAfekGafniDeterministic(t *testing.T) {
	prop := func(seed uint64, sz, psel uint8) bool {
		n := int(sz%48) + 1
		rng := xrand.New(seed)
		assign := ids.Random(ids.LogUniverse(max(2, n)), n, rng)
		var policy simasync.DelayPolicy
		switch psel % 3 {
		case 0:
			policy = simasync.UnitDelay{}
		case 1:
			policy = simasync.UniformDelay{Lo: 0.01}
		default:
			policy = simasync.SkewDelay{Fast: 0.02, Mod: 2}
		}
		res, err := simasync.Run(simasync.Config{
			N: n, IDs: assign, Seed: rng.Uint64(), Delays: policy,
			Wake: simasync.AllAtZero(n),
		}, NewAsyncAfekGafni())
		return err == nil && res.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySeedReproducibility: identical seeds reproduce identical
// measurements for the randomized protocols on both engines.
func TestPropertySeedReproducibility(t *testing.T) {
	prop := func(seed uint64, sz uint8) bool {
		n := int(sz%60) + 4
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed))
		runSync := func() (int64, int) {
			res, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: seed}, NewSublinear())
			if err != nil {
				return -1, -1
			}
			return res.Messages, res.Rounds
		}
		m1, r1 := runSync()
		m2, r2 := runSync()
		if m1 != m2 || r1 != r2 || m1 < 0 {
			return false
		}
		runAsync := func() (int64, float64) {
			res, err := simasync.Run(simasync.Config{
				N: n, IDs: assign, Seed: seed,
				Delays: simasync.UniformDelay{Lo: 0.1},
				Wake:   simasync.SubsetAtZero([]int{0}),
			}, NewAsyncTradeoff(2))
			if err != nil {
				return -1, -1
			}
			return res.Messages, res.TimeUnits
		}
		am1, at1 := runAsync()
		am2, at2 := runAsync()
		return am1 == am2 && at1 == at2 && am1 >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestAdversarialAssignments: deterministic algorithms keep their
// guarantees on the adversarial assignment patterns from internal/ids.
func TestAdversarialAssignments(t *testing.T) {
	const n = 64
	assignments := map[string]ids.Assignment{
		"topheavy": ids.TopHeavy(ids.LogUniverse(n), n),
		"spread":   ids.Spread(ids.LogUniverse(n), n),
		"blocks":   ids.Blocks(ids.LogUniverse(n), 8, 8, xrand.New(9)),
	}
	for name, assign := range assignments {
		for _, tc := range []struct {
			algo    string
			factory simsync.Factory
		}{
			{"tradeoff", NewTradeoff(4)},
			{"afekgafni", NewAfekGafni(2)},
		} {
			res, err := simsync.Run(simsync.Config{
				N: n, IDs: assign, Seed: 3, Strict: true,
			}, tc.factory)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.algo, name, err)
			}
			if err := res.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", tc.algo, name, err)
			}
			if got := assign[res.UniqueLeader()]; got != assign.Max() {
				t.Fatalf("%s/%s: leader ID %d, want %d", tc.algo, name, got, assign.Max())
			}
		}
	}
}

// TestCongestWords: every engine run accounts exactly 3 words per message —
// the CONGEST-by-construction property.
func TestCongestWords(t *testing.T) {
	const n = 32
	assign := ids.Random(ids.LogUniverse(n), n, xrand.New(4))
	res, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: 5}, NewTradeoff(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Words != 3*res.Messages {
		t.Fatalf("words = %d, messages = %d", res.Words, res.Messages)
	}
}
