package core

import (
	"fmt"

	"cliquelect/internal/proto"
	"cliquelect/internal/simsync"
)

// KindExplicitAnnounce is reserved for the Explicit wrapper's announcement.
const KindExplicitAnnounce uint8 = 255

// Explicit upgrades any implicit synchronous leader-election protocol to
// explicit leader election (Section 2 of the paper: every node must output
// the *ID* of the leader, not just a bit). The transformation is the
// standard one the paper uses in Section 3.5: once the inner protocol's
// leader has decided, it broadcasts its ID in one extra round; everyone
// else adopts the announced ID as its output.
//
// Cost: +1 round and +(n-1) messages on top of the inner protocol — which
// is why Theorem 3.16's Omega(n) bound makes explicit Las Vegas election
// cost Theta(n) even though implicit Monte Carlo election is Õ(sqrt(n)).
//
// If the inner protocol fails to elect a leader, wrapper nodes give up
// waitRounds rounds after the inner protocol halts, outputting 0.
type Explicit struct {
	inner simsync.Protocol
	env   proto.Env

	announced  bool  // this node broadcast its ID
	output     int64 // the leader ID this node reports (0 = unknown)
	sinceInner int   // rounds since the inner protocol halted
	halted     bool
}

// explicitWaitRounds bounds how long non-leaders wait for an announcement
// after their inner protocol halts. All the repository's synchronous
// protocols halt every node in the same round, so 4 is generous.
const explicitWaitRounds = 4

// NewExplicit wraps an implicit protocol factory.
func NewExplicit(inner simsync.Factory) simsync.Factory {
	return func(node int) simsync.Protocol {
		return &Explicit{inner: inner(node)}
	}
}

// Init implements simsync.Protocol.
func (e *Explicit) Init(env proto.Env) {
	e.env = env
	e.inner.Init(env)
	if env.N == 1 && e.inner.Decision() == proto.Leader {
		e.output = env.ID
		e.halted = true
	}
}

// Send implements simsync.Protocol.
func (e *Explicit) Send(round int) []proto.Send {
	// The inner protocol runs unmodified until it halts.
	if !e.inner.Halted() {
		return e.inner.Send(round)
	}
	if e.inner.Decision() == proto.Leader && !e.announced {
		e.announced = true
		e.output = e.env.ID
		out := make([]proto.Send, e.env.Ports())
		for p := range out {
			out[p] = proto.Send{Port: p, Msg: proto.Message{Kind: KindExplicitAnnounce, A: e.env.ID}}
		}
		return out
	}
	return nil
}

// Deliver implements simsync.Protocol.
func (e *Explicit) Deliver(round int, inbox []proto.Delivery) {
	// Forward everything except announcements to the inner protocol while
	// it is still running.
	if !e.inner.Halted() {
		forward := inbox[:0:0]
		for _, d := range inbox {
			if d.Msg.Kind != KindExplicitAnnounce {
				forward = append(forward, d)
			}
		}
		e.inner.Deliver(round, forward)
	}
	for _, d := range inbox {
		if d.Msg.Kind == KindExplicitAnnounce {
			e.output = d.Msg.A
			e.halted = true
			return
		}
	}
	if e.announced {
		e.halted = true
		return
	}
	if e.inner.Halted() {
		e.sinceInner++
		if e.sinceInner > explicitWaitRounds {
			e.halted = true // inner run produced no leader: give up
		}
	}
}

// Decision implements simsync.Protocol (the inner bit is passed through).
func (e *Explicit) Decision() proto.Decision { return e.inner.Decision() }

// Halted implements simsync.Protocol.
func (e *Explicit) Halted() bool { return e.halted }

// Output returns the leader ID this node learned (0 if the run failed).
func (e *Explicit) Output() int64 { return e.output }

var _ simsync.Protocol = (*Explicit)(nil)

// RunExplicit executes an explicit election and checks agreement: every
// node must output the same leader ID, which must be the unique leader's.
// It returns the agreed leader ID.
func RunExplicit(cfg simsync.Config, inner simsync.Factory) (int64, *simsync.Result, error) {
	wrappers := make([]*Explicit, cfg.N)
	res, err := simsync.Run(cfg, func(node int) simsync.Protocol {
		w := NewExplicit(inner)(node).(*Explicit)
		wrappers[node] = w
		return w
	})
	if err != nil {
		return 0, nil, err
	}
	if err := res.Validate(); err != nil {
		return 0, res, err
	}
	leader := res.UniqueLeader()
	want := int64(cfg.IDs[leader])
	for u, w := range wrappers {
		if res.WakeRound[u] == 0 {
			continue // never woke: exempt (cannot output anything)
		}
		if w.Output() != want {
			return 0, res, fmt.Errorf("core: node %d output %d, want leader ID %d", u, w.Output(), want)
		}
	}
	return want, res, nil
}
