package core

import (
	"fmt"
	"math"

	"cliquelect/internal/proto"
	"cliquelect/internal/simsync"
)

// SpreadElect is the substituted stand-in for the synchronous O(n)-message
// constant-round baseline of Kutten et al. [14] that Table 1 lists ("9
// rounds, O(n) messages, w.h.p."). The original construction is not
// described in the reproduced paper; this baseline occupies the same corner
// of the tradeoff space — near-linear messages at small round counts —
// which is the only property the comparison rows use. See DESIGN.md,
// "Substitutions".
//
// Structure (parameter k >= 2, default 9 to mirror the cited row):
//
//   - Rounds 1..k+2 (spreading): every node, in the round after it wakes,
//     sends wake-up messages over ceil(4·n^{1/k}) uniformly random ports
//     (no spreading after round k+2 — by then every node is awake w.h.p.,
//     by the synchronous analogue of Lemma 5.2).
//   - Round k+3: every awake node becomes a candidate with probability
//     2·ln(n)/n; candidates draw ranks from [n^4] and bid to
//     ceil(sqrt(1.5·n·ln n)) random referees.
//   - Round k+4: referees ack the best bid they received (candidate
//     referees only ack bids above their own rank).
//   - Round k+5: fully-acked candidates announce their rank to everyone;
//     every node takes the maximum announced rank as the leader and
//     decides. The announcement also wakes any node the spreading missed.
//
// Total: k+5 rounds and O(n^{1+1/k} + n) messages w.h.p. Like the
// substituted asynchronous baseline, it assumes nodes can read the global
// round number (synchronized clocks); the genuine [14] construction avoids
// this at significant additional machinery.
type SpreadElect struct {
	k   int
	env proto.Env

	started  bool
	spreadAt int // round in which to send wake-ups; 0 = none pending

	candidate bool
	rank      int64
	referees  []int

	bestBidPort int
	bestBidRank int64
	haveBid     bool
	acks        int

	dec    proto.Decision
	halted bool
}

// NewSpreadElect returns a simsync factory with spreading parameter k >= 2.
// It panics on invalid k; use ValidateSpreadK to check first.
func NewSpreadElect(k int) simsync.Factory {
	if err := ValidateSpreadK(k); err != nil {
		panic(err)
	}
	return func(int) simsync.Protocol { return &SpreadElect{k: k} }
}

// ValidateSpreadK checks the spreading parameter.
func ValidateSpreadK(k int) error {
	if k < 2 {
		return fmt.Errorf("core: spread parameter k = %d, need k >= 2", k)
	}
	return nil
}

// SpreadFanout returns ceil(4·n^{1/k}) clamped to [1, n-1].
func SpreadFanout(n, k int) int {
	f := int(math.Ceil(4 * math.Pow(float64(n), 1/float64(k))))
	if f > n-1 {
		f = n - 1
	}
	if f < 1 {
		f = 1
	}
	return f
}

// Rounds returns the worst-case round count k+5.
func (s *SpreadElect) Rounds() int { return s.k + 5 }

// Init implements simsync.Protocol.
func (s *SpreadElect) Init(env proto.Env) {
	s.env = env
	if env.N == 1 {
		s.dec = proto.Leader
		s.halted = true
	}
}

// Send implements simsync.Protocol.
func (s *SpreadElect) Send(round int) []proto.Send {
	if !s.started {
		s.started = true
		s.spreadAt = round // adversary-woken: spread immediately
	}
	switch {
	case s.spreadAt == round && round <= s.k+2:
		s.spreadAt = 0
		ports := s.env.RNG.Sample(s.env.Ports(), SpreadFanout(s.env.N, s.k))
		out := make([]proto.Send, len(ports))
		for i, p := range ports {
			out[i] = proto.Send{Port: p, Msg: proto.Message{Kind: KindWakeup}}
		}
		return out
	case round == s.k+3:
		if !s.env.RNG.Bernoulli(SublinearCandidateProb(s.env.N)) {
			return nil
		}
		s.candidate = true
		s.rank = drawRank(s.env.N, s.env.RNG)
		s.referees = s.env.RNG.Sample(s.env.Ports(), SublinearRefCount(s.env.N))
		out := make([]proto.Send, len(s.referees))
		for i, p := range s.referees {
			out[i] = proto.Send{Port: p, Msg: proto.Message{Kind: KindRank, A: s.rank}}
		}
		return out
	case round == s.k+4:
		if !s.haveBid || (s.candidate && s.bestBidRank <= s.rank) {
			return nil
		}
		return []proto.Send{{Port: s.bestBidPort, Msg: proto.Message{Kind: KindAck}}}
	case round == s.k+5:
		if !s.candidate || s.acks < len(s.referees) {
			return nil
		}
		out := make([]proto.Send, s.env.Ports())
		for p := range out {
			out[p] = proto.Send{Port: p, Msg: proto.Message{Kind: KindAnnounce, A: s.rank}}
		}
		return out
	}
	return nil
}

// Deliver implements simsync.Protocol.
func (s *SpreadElect) Deliver(round int, inbox []proto.Delivery) {
	if !s.started {
		// Message-woken at the end of this round; spread in the next round
		// if still inside the spreading window.
		s.started = true
		if round+1 <= s.k+2 {
			s.spreadAt = round + 1
		}
	}
	switch {
	case round == s.k+3:
		for _, d := range inbox {
			if d.Msg.Kind != KindRank {
				continue
			}
			if !s.haveBid || d.Msg.A > s.bestBidRank {
				s.haveBid = true
				s.bestBidRank = d.Msg.A
				s.bestBidPort = d.Port
			}
		}
	case round == s.k+4:
		for _, d := range inbox {
			if d.Msg.Kind == KindAck {
				s.acks++
			}
		}
	case round >= s.k+5:
		// Decide on the maximum announced rank; the announcer's own rank
		// counts for itself.
		best := int64(0)
		if s.candidate && s.acks >= len(s.referees) {
			best = s.rank
		}
		for _, d := range inbox {
			if d.Msg.Kind == KindAnnounce && d.Msg.A > best {
				best = d.Msg.A
			}
		}
		if best != 0 && s.candidate && best == s.rank {
			s.dec = proto.Leader
		} else {
			s.dec = proto.NonLeader
		}
		s.halted = true
	}
}

// Decision implements simsync.Protocol.
func (s *SpreadElect) Decision() proto.Decision { return s.dec }

// Halted implements simsync.Protocol.
func (s *SpreadElect) Halted() bool { return s.halted }

var _ simsync.Protocol = (*SpreadElect)(nil)
