// Package distrib is the distributed dispatch fabric: it shards a batch
// grid into deterministic cell chunks and farms them out to a fleet of
// remote electd workers over the /v1/chunk wire call, merging the results
// into exactly the grid a local elect.RunMany would produce.
//
// A Fleet is a registry of workers with health probes and in-flight
// tracking. Runner binds a Fleet to the wire-form options of one sweep
// configuration and yields an elect.RemoteRunner, so dispatch plugs into
// the public API as Batch.Remote:
//
//	fleet, _ := distrib.New(distrib.Config{Workers: hosts})
//	b.Remote = fleet.Runner(client.Options{Params: &client.ParamSpec{K: &k}})
//	batch, err := elect.RunMany(spec, b) // remote, byte-identical to local
//
// The determinism contract (ARCHITECTURE.md) is what makes the fabric
// sound: every cell's Result is a pure function of its own (topo, n, seed), so
// chunk placement, failover, straggler duplicates and merge order cannot
// change a single result byte. A sweep run on 8 daemons is byte-identical
// to the same sweep run on 1 local core — including when a worker dies
// mid-sweep and its chunks fail over to the survivors (or, with no
// survivor left, to local execution). The merger reuses the fingerprint
// cache: cells already cached are never dispatched, merged results are
// stored back, and so re-dispatched or re-run cells are free.
package distrib

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cliquelect/elect"
	"cliquelect/elect/client"
	"cliquelect/internal/obs"
)

// Config assembles a Fleet.
type Config struct {
	// Workers lists the electd base URLs; a bare "host:port" is given the
	// http scheme. At least one is required.
	Workers []string
	// ChunkSize overrides the deterministic per-grid chunk size; 0 means
	// DefaultChunkSize(total). Must not depend on fleet size (the
	// partitioner contract).
	ChunkSize int
	// MaxInflight bounds the chunks concurrently in flight per worker, so a
	// fast worker pipelines while a saturated one is left alone; 0 means 2.
	MaxInflight int
	// ProbeTimeout bounds each health probe; 0 means 2s.
	ProbeTimeout time.Duration
	// StragglerAfter is how long a chunk may be in flight before an idle
	// worker is given a duplicate copy (first answer wins); 0 means 30s.
	StragglerAfter time.Duration
	// Logf, when non-nil, receives one line per fleet event (probe results,
	// failovers, straggler re-dispatches).
	Logf func(format string, args ...any)
	// ClientOptions are applied to every worker's client (retry tuning,
	// test transports).
	ClientOptions []client.ClientOption
	// Spans, when non-nil, collects the coordinator-side trace: one grid
	// span per RunGrid, one chunk.dispatch span per dispatch attempt, and
	// the worker-side spans returned in chunk responses. Worker clients are
	// wired into the same collector. Purely observational — scheduling
	// decisions never read it.
	Spans *obs.SpanCollector
	// Root, when valid, parents every grid span, so a multi-grid sweep
	// (cmd/sweep's parameter loop) forms one trace; otherwise each RunGrid
	// roots its own.
	Root obs.SpanContext
	// Fence, when non-nil, supplies the dispatcher's fencing token (the
	// control plane's election epoch — see internal/control; electd wires
	// control.Node.Token here). The token is captured once per grid and
	// stamped on every chunk; a worker holding a newer epoch rejects the
	// chunk with 409, and a token change observed mid-grid aborts the grid
	// with ErrFenced — both mean this dispatcher was deposed. Nil means
	// unfenced dispatch (the plain sweep CLI).
	Fence func() uint64
	// Events, when non-nil, journals fleet scheduling events (worker
	// liveness transitions, chunk failovers, straggler duplicates) into the
	// daemon's event log. Settable later via SetEvents.
	Events *obs.EventLog
}

// ErrFenced means the dispatcher was deposed mid-grid: either a worker
// rejected a chunk's fencing token as stale (409), or the local token
// advanced past the one the grid started with. The grid's results are
// abandoned — the new coordinator owns the work now.
var ErrFenced = errors.New("distrib: dispatcher fenced off (coordinator deposed)")

// Fleet is a registry of electd workers plus the chunk scheduler. All
// methods are safe for concurrent use, and one Fleet may serve many grids
// (cmd/sweep reuses it across its parameter loop).
type Fleet struct {
	cfg     Config
	workers []*worker
	events  atomic.Pointer[obs.EventLog] // swappable journal; nil Load is a no-op Emit

	retried     atomic.Int64 // chunks re-dispatched (failover + stragglers)
	localCells  atomic.Int64 // cells executed locally because no worker was alive
	cachedCells atomic.Int64 // cells resolved from the fingerprint cache, never dispatched
}

// worker is one registered electd daemon and its live accounting.
type worker struct {
	url string
	c   *client.Client

	mu         sync.Mutex
	alive      bool
	queueDepth int    // from the last probe: jobs waiting on the daemon
	capacity   int    // from the last probe: the daemon's batch_workers
	role       string // from the last probe: control-plane role ("" standalone)
	epoch      uint64 // from the last probe: highest election epoch seen
	inflight   int    // chunks currently dispatched to this worker

	cells  int64
	chunks int64
	busy   time.Duration

	// dispatch telemetry: every attempt (successful or not), failed
	// attempts, straggler duplicates, and the chunk-latency envelope of the
	// successful ones.
	dispatches int64
	failures   int64
	stragglers int64
	minLat     time.Duration
	maxLat     time.Duration
}

// noteDispatch records one dispatch attempt landing on this worker; dup
// marks a straggler duplicate of a chunk already in flight elsewhere.
func (w *worker) noteDispatch(dup bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.dispatches++
	if dup {
		w.stragglers++
	}
}

// New builds a Fleet over the given worker URLs. No probing happens here;
// the first RunGrid (or an explicit Probe) discovers who is alive.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("distrib: no workers configured")
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 2
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.StragglerAfter <= 0 {
		cfg.StragglerAfter = 30 * time.Second
	}
	copts := cfg.ClientOptions
	if cfg.Spans != nil {
		// Worker clients share the coordinator's collector, so their
		// request/attempt spans land in the same trace store as the
		// dispatch spans.
		copts = append(copts[:len(copts):len(copts)], client.WithSpanCollector(cfg.Spans))
	}
	f := &Fleet{cfg: cfg}
	if cfg.Events != nil {
		f.events.Store(cfg.Events)
	}
	for _, raw := range cfg.Workers {
		url := NormalizeURL(raw)
		if url == "" {
			return nil, fmt.Errorf("distrib: empty worker URL in %v", cfg.Workers)
		}
		f.workers = append(f.workers, &worker{url: url, c: client.New(url, copts...)})
	}
	return f, nil
}

// NormalizeURL turns a worker flag value into a base URL: whitespace is
// trimmed and a bare host:port gets the http scheme.
func NormalizeURL(s string) string {
	s = strings.TrimSpace(s)
	if s == "" {
		return ""
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return strings.TrimRight(s, "/")
}

// SetEvents directs fleet scheduling events into log (cmd/electd wires the
// service's journal in after constructing both). Safe to call while grids
// are in flight.
func (f *Fleet) SetEvents(log *obs.EventLog) { f.events.Store(log) }

// ev is the current journal — nil when journaling is off, which makes every
// Emit a single-branch no-op.
func (f *Fleet) ev() *obs.EventLog { return f.events.Load() }

// Probe health-checks every worker in parallel, refreshing liveness and the
// load gauges the scheduler balances on, and returns how many are alive. A
// worker marked dead by an earlier failure gets a fresh chance here.
func (f *Fleet) Probe(ctx context.Context) int {
	var wg sync.WaitGroup
	for _, w := range f.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, f.cfg.ProbeTimeout)
			defer cancel()
			h, err := w.c.Health(pctx)
			w.mu.Lock()
			was := w.alive
			w.alive = err == nil && h.OK
			if w.alive {
				w.queueDepth = h.QueueDepth
				w.capacity = h.BatchWorkers
				w.role = h.Role
				w.epoch = h.Epoch
			}
			now := w.alive
			w.mu.Unlock()
			switch {
			case now && !was:
				f.ev().Emit("worker.up", "url", w.url)
			case !now && was:
				f.ev().Emit("worker.down", "url", w.url, "reason", "probe")
			}
			if !now && f.cfg.Logf != nil {
				f.cfg.Logf("distrib: worker %s unreachable: %v", w.url, err)
			}
		}(w)
	}
	wg.Wait()
	alive := 0
	for _, w := range f.workers {
		w.mu.Lock()
		if w.alive {
			alive++
		}
		w.mu.Unlock()
	}
	return alive
}

// Runner binds the fleet to one sweep configuration's wire options and
// returns the elect.RemoteRunner to put in Batch.Remote. The wire options
// must describe the same configuration as the batch's elect options — the
// CLIs build both from the same flags.
func (f *Fleet) Runner(opts client.Options) elect.RemoteRunner {
	return &runner{f: f, opts: opts}
}

type runner struct {
	f    *Fleet
	opts client.Options
}

func (r *runner) RunGrid(spec elect.Spec, ns []int, seeds []uint64, b *elect.Batch) ([]elect.Result, error) {
	return r.f.runGrid(spec, ns, seeds, b, r.opts)
}

// chunkState is the scheduler's view of one chunk.
type chunkState struct {
	done     bool
	inflight int                  // concurrent dispatch attempts (straggler dups)
	since    time.Time            // first dispatch, for straggler detection
	on       map[*worker]struct{} // workers this chunk is currently running on
}

// completion is one dispatch attempt's outcome, delivered to the scheduler.
type completion struct {
	ci      int
	w       *worker
	results []elect.Result
	dur     time.Duration
	err     error
}

// runGrid is the scheduler: partition, probe, dispatch, failover, merge.
func (f *Fleet) runGrid(spec elect.Spec, ns []int, seeds []uint64, b *elect.Batch, wopts client.Options) (results []elect.Result, err error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Trace the grid when a collector or an inherited root is configured.
	// The grid span context also parents every chunk.dispatch and, through
	// the traced worker clients, the whole remote subtree.
	var gridSC obs.SpanContext
	if traced := f.cfg.Spans != nil || f.cfg.Root.Valid(); traced {
		if f.cfg.Root.Valid() {
			gridSC = f.cfg.Root.Child()
		} else {
			gridSC = obs.NewSpanContext()
		}
		gridStart := time.Now()
		defer func() {
			attrs := map[string]string{
				"spec":  spec.Name,
				"cells": strconv.Itoa(elect.GridSize(ns, seeds, b.Topos)),
			}
			if err != nil {
				attrs["error"] = err.Error()
			}
			f.cfg.Spans.Add(obs.Span{
				Trace: gridSC.Trace, ID: gridSC.Span, Parent: f.cfg.Root.Span,
				Name: "grid", Service: "sweep",
				Start: gridStart.UnixMicro(), Dur: time.Since(gridStart).Microseconds(),
				Attrs: attrs,
			})
		}()
	}
	if b.Cancel != nil {
		go func() {
			select {
			case <-b.Cancel:
				cancel()
			case <-ctx.Done():
			}
		}()
	}
	if f.Probe(ctx) == 0 {
		return nil, fmt.Errorf("distrib: none of %d workers alive: %w", len(f.workers), elect.ErrNoWorkers)
	}
	// The fencing token is captured once per grid: every chunk of this grid
	// carries the same token, and the scheduler aborts if the local token
	// moves on mid-grid (this dispatcher was deposed).
	var fence uint64
	if f.cfg.Fence != nil {
		fence = f.cfg.Fence()
	}

	total := elect.GridSize(ns, seeds, b.Topos)
	chunks := Partition(total, f.cfg.ChunkSize)
	runs := make([]elect.Result, total)
	keys := f.fingerprints(spec, ns, seeds, b)

	// localBatch executes chunks in-process: the failover of last resort
	// (and the cache probe path). Remote/OnResult are cleared — progress is
	// reported per merged cell by the scheduler itself.
	localBatch := *b
	localBatch.Ns, localBatch.Seeds = ns, seeds
	localBatch.Remote, localBatch.OnResult = nil, nil

	states := make([]chunkState, len(chunks))
	var merged int64 // cells merged, for OnResult
	doneChunks := 0
	// store is true only for remotely computed cells: cache-resolved chunks
	// were just read from the cache, and local-fallback cells were already
	// stored by RunCached — re-Putting either would rewrite disk entries
	// with the bytes they already hold.
	finish := func(ci int, results []elect.Result, store bool) {
		states[ci].done = true
		doneChunks++
		for i, res := range results {
			idx := chunks[ci].Start + i
			runs[idx] = res
			if store && keys != nil && keys[idx] != "" && b.Cache != nil {
				if data, err := elect.EncodeResult(res); err == nil {
					b.Cache.Put(keys[idx], data)
				}
			}
			merged++
			if b.OnResult != nil {
				b.OnResult(int(merged), total)
			}
		}
	}

	compCh := make(chan completion)
	outstanding := 0
	dispatch := func(ci int) bool {
		w := f.pickWorker(states[ci].on)
		if w == nil {
			return false
		}
		st := &states[ci]
		if st.on == nil {
			st.on = make(map[*worker]struct{}, 2)
		}
		st.on[w] = struct{}{}
		dup := st.inflight > 0
		w.noteDispatch(dup)
		st.inflight++
		if st.since.IsZero() {
			st.since = time.Now()
		}
		outstanding++
		ch := chunks[ci]
		go func() {
			start := time.Now()
			cctx := ctx
			var dispSC obs.SpanContext
			if gridSC.Valid() {
				// One dispatch span per attempt; the worker client reads the
				// context and parents its request/attempt spans (and, via the
				// traceparent header, the worker daemon's subtree) under it.
				dispSC = gridSC.Child()
				cctx = obs.ContextWithSpan(ctx, dispSC)
			}
			resp, err := w.c.Chunk(cctx, client.ChunkRequest{
				Spec: spec.Name, Ns: ns, Seeds: seeds, Topos: b.Topos,
				Start: ch.Start, Count: ch.Count, Fence: fence, Options: wopts,
			})
			comp := completion{ci: ci, w: w, dur: time.Since(start), err: err}
			if err == nil {
				if len(resp.Results) != ch.Count {
					comp.err = fmt.Errorf("distrib: worker %s returned %d results for a %d-cell chunk",
						w.url, len(resp.Results), ch.Count)
				} else {
					comp.results = resp.Results
				}
			}
			if dispSC.Valid() {
				attrs := map[string]string{
					"worker": w.url,
					"start":  strconv.Itoa(ch.Start),
					"count":  strconv.Itoa(ch.Count),
				}
				if dup {
					attrs["dup"] = "true"
				}
				if comp.err != nil {
					attrs["error"] = comp.err.Error()
				}
				f.cfg.Spans.Add(obs.Span{
					Trace: dispSC.Trace, ID: dispSC.Span, Parent: gridSC.Span,
					Name: "chunk.dispatch", Service: "sweep",
					Start: start.UnixMicro(), Dur: comp.dur.Microseconds(),
					Attrs: attrs,
				})
				if err == nil {
					// Merge the worker-side view (serve/queue/exec) into the
					// coordinator's trace.
					f.cfg.Spans.AddAll(resp.Spans)
				}
			}
			// Settle the worker's accounting here, not in the scheduler: when
			// runGrid exits with this dispatch still in flight (straggler race
			// won elsewhere, abort, cancel) the completion below is dropped,
			// and a reusable Fleet must not leak the in-flight slot.
			if w.endChunk(comp.err == nil, ch.Count, comp.dur) {
				f.ev().Emit("worker.down", "url", w.url, "reason", "chunk")
			}
			select {
			case compCh <- comp:
			case <-ctx.Done():
			}
		}()
		return true
	}

	pending := make([]int, 0, len(chunks))
	for ci := range chunks {
		pending = append(pending, ci)
	}
	stragglerTick := max(f.cfg.StragglerAfter/4, 10*time.Millisecond)

	for doneChunks < len(chunks) {
		if f.cfg.Fence != nil {
			if now := f.cfg.Fence(); now != fence {
				return nil, fmt.Errorf("distrib: fencing token advanced %d → %d mid-grid: %w",
					fence, now, ErrFenced)
			}
		}
		// Dispatch everything dispatchable; cache-satisfied chunks are merged
		// without touching the network (this is also what makes re-enqueued
		// chunks free when their cells got merged meanwhile).
		still := pending[:0]
		for _, ci := range pending {
			if states[ci].done {
				continue
			}
			if results, ok := f.fromCache(b.Cache, keys, chunks[ci]); ok {
				f.cachedCells.Add(int64(chunks[ci].Count))
				finish(ci, results, false)
				continue
			}
			if !dispatch(ci) {
				still = append(still, ci)
			}
		}
		pending = still
		if doneChunks == len(chunks) {
			break
		}

		if outstanding == 0 {
			if len(pending) == 0 {
				break
			}
			// Every worker is dead (or saturated to zero): fail the next
			// chunk over to local execution so the sweep still completes.
			ci := pending[0]
			pending = pending[1:]
			if f.cfg.Logf != nil {
				f.cfg.Logf("distrib: no worker alive, running chunk [%d, %d) locally",
					chunks[ci].Start, chunks[ci].End())
			}
			results, err := elect.RunRange(spec, localBatch, chunks[ci].Start, chunks[ci].Count)
			if err != nil {
				return nil, err
			}
			f.localCells.Add(int64(chunks[ci].Count))
			finish(ci, results, false)
			continue
		}

		select {
		case <-ctx.Done():
			return nil, elect.ErrCanceled
		case comp := <-compCh:
			outstanding--
			st := &states[comp.ci]
			st.inflight--
			delete(st.on, comp.w)
			switch {
			case comp.err != nil && fencedStatus(comp.err):
				// A worker holds a newer epoch than this grid's token: we were
				// deposed, and the new coordinator owns the remaining work.
				return nil, fmt.Errorf("distrib: chunk [%d, %d) on %s rejected (%v): %w",
					chunks[comp.ci].Start, chunks[comp.ci].End(), comp.w.url, comp.err, ErrFenced)
			case comp.err != nil && definite(comp.err):
				// The daemon answered: this configuration fails everywhere.
				return nil, fmt.Errorf("distrib: chunk [%d, %d) on %s: %w",
					chunks[comp.ci].Start, chunks[comp.ci].End(), comp.w.url, comp.err)
			case comp.err != nil:
				if f.cfg.Logf != nil {
					f.cfg.Logf("distrib: worker %s failed chunk [%d, %d): %v",
						comp.w.url, chunks[comp.ci].Start, chunks[comp.ci].End(), comp.err)
				}
				if !st.done && st.inflight == 0 {
					f.retried.Add(1)
					f.ev().Emit("chunk.failover",
						"worker", comp.w.url,
						"start", strconv.Itoa(chunks[comp.ci].Start),
						"count", strconv.Itoa(chunks[comp.ci].Count))
					pending = append(pending, comp.ci)
				}
			case st.done:
				// A straggler's duplicate finished too; first answer won.
			default:
				finish(comp.ci, comp.results, true)
			}
		case <-time.After(stragglerTick):
			for ci := range states {
				st := &states[ci]
				if st.done || st.inflight != 1 || time.Since(st.since) < f.cfg.StragglerAfter {
					continue
				}
				if dispatch(ci) {
					f.retried.Add(1)
					f.ev().Emit("chunk.straggler",
						"start", strconv.Itoa(chunks[ci].Start),
						"count", strconv.Itoa(chunks[ci].Count),
						"inflight", time.Since(st.since).Round(time.Millisecond).String())
					if f.cfg.Logf != nil {
						f.cfg.Logf("distrib: chunk [%d, %d) straggling %v, re-dispatched",
							chunks[ci].Start, chunks[ci].End(), time.Since(st.since).Round(time.Millisecond))
					}
				}
			}
		}
	}
	return runs, nil
}

// fingerprints computes every cell's cache key, or nil when the batch has
// no cache. Uncacheable configurations (adaptive adversaries) leave empty
// keys and always dispatch.
func (f *Fleet) fingerprints(spec elect.Spec, ns []int, seeds []uint64, b *elect.Batch) []string {
	if b.Cache == nil {
		return nil
	}
	keys := make([]string, elect.GridSize(ns, seeds, b.Topos))
	for idx := range keys {
		if key, err := elect.Fingerprint(spec, elect.CellOptions(b, ns, seeds, idx)...); err == nil {
			keys[idx] = key
		}
	}
	return keys
}

// fromCache resolves a whole chunk from the fingerprint cache, or reports
// false without side effects (partial hits still dispatch: the worker's own
// cache covers its cells).
func (f *Fleet) fromCache(cache elect.Cache, keys []string, ch Chunk) ([]elect.Result, bool) {
	if cache == nil || keys == nil {
		return nil, false
	}
	results := make([]elect.Result, ch.Count)
	for i := 0; i < ch.Count; i++ {
		key := keys[ch.Start+i]
		if key == "" {
			return nil, false
		}
		data, ok := cache.Get(key)
		if !ok {
			return nil, false
		}
		res, err := elect.DecodeResult(data)
		if err != nil {
			return nil, false
		}
		results[i] = res
	}
	return results, true
}

// definite reports errors a different worker cannot fix: the daemon
// answered with a non-transient status (bad request, failed execution), so
// the configuration itself is at fault and the grid must abort — exactly
// like the first run error aborting a local RunMany. Transience is decided
// by client.TransientStatus, the same predicate the retry loop uses.
func definite(err error) bool {
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		return false
	}
	return !client.TransientStatus(apiErr.StatusCode)
}

// fencedStatus reports a worker's 409: the chunk's fencing token is stale
// because a newer election epoch is live.
func fencedStatus(err error) bool {
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.StatusCode == 409
}

// pickWorker chooses the dispatch target: the alive worker with the fewest
// chunks in flight (below the per-worker bound), ties broken by the lighter
// probe-time queue, skipping workers in exclude (a straggler's duplicate
// must go somewhere new). Returns nil when nobody qualifies.
func (f *Fleet) pickWorker(exclude map[*worker]struct{}) *worker {
	var best *worker
	bestInflight, bestQueue := 0, 0
	for _, w := range f.workers {
		if _, dup := exclude[w]; dup {
			continue
		}
		w.mu.Lock()
		alive, inflight, queue := w.alive, w.inflight, w.queueDepth
		w.mu.Unlock()
		if !alive || inflight >= f.cfg.MaxInflight {
			continue
		}
		if best == nil || inflight < bestInflight ||
			(inflight == bestInflight && queue < bestQueue) {
			best, bestInflight, bestQueue = w, inflight, queue
		}
	}
	if best != nil {
		best.mu.Lock()
		best.inflight++
		best.mu.Unlock()
	}
	return best
}

// endChunk settles a dispatch attempt: accounting on success, death on
// failure (the next Probe revives a restarted daemon). Reports whether this
// failure is what killed the worker, so the caller can journal exactly one
// worker.down per death.
func (w *worker) endChunk(ok bool, cells int, dur time.Duration) (died bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.inflight--
	if ok {
		w.cells += int64(cells)
		w.chunks++
		w.busy += dur
		if w.minLat == 0 || dur < w.minLat {
			w.minLat = dur
		}
		if dur > w.maxLat {
			w.maxLat = dur
		}
	} else {
		w.failures++
		died = w.alive
		w.alive = false
	}
	return died
}

// WorkerStats is one worker's accounting across the fleet's lifetime.
type WorkerStats struct {
	URL   string
	Alive bool
	// Role and Epoch are the worker's control-plane position from the last
	// probe ("" / 0 on standalone daemons) — the fleet footer's "who leads"
	// column.
	Role  string
	Epoch uint64
	// Chunks and Cells count successfully completed dispatches; Busy is the
	// wall time those chunks spent in flight.
	Chunks int64
	Cells  int64
	Busy   time.Duration
	// Dispatches counts every attempt landed on this worker, Failures the
	// attempts that errored, Stragglers the duplicate copies of chunks
	// already in flight elsewhere.
	Dispatches int64
	Failures   int64
	Stragglers int64
	// MinLat and MaxLat bound the successful chunk latencies (0 before any
	// chunk completes).
	MinLat time.Duration
	MaxLat time.Duration
	// Client is the worker client's lifetime retry telemetry.
	Client client.ClientStats
}

// CellsPerSec is the worker's observed throughput (0 before any chunk).
func (s WorkerStats) CellsPerSec() float64 {
	if s.Busy <= 0 {
		return 0
	}
	return float64(s.Cells) / s.Busy.Seconds()
}

// Stats is the fleet-wide accounting the sweep CLIs print.
type Stats struct {
	Workers []WorkerStats
	// ChunksRetried counts re-dispatches: failovers off dead workers plus
	// straggler duplicates.
	ChunksRetried int64
	// LocalCells counts cells executed in-process because no worker was
	// alive; CachedCells counts cells resolved from the fingerprint cache
	// without any dispatch.
	LocalCells  int64
	CachedCells int64
	// HTTPAttempts, HTTPRetries and RetryBackoff aggregate every worker
	// client's retry telemetry: total HTTP tries, how many were retries of
	// transient failures, and the backoff slept between tries.
	HTTPAttempts int64
	HTTPRetries  int64
	RetryBackoff time.Duration
}

// String renders the breakdown the sweep CLIs print at end of run: the
// retry/local/cache counters plus one cells/s line per worker, in "# "
// comment form matching their other footers.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# fleet: %d chunks retried, %d cells run locally, %d cells from cache\n",
		s.ChunksRetried, s.LocalCells, s.CachedCells)
	fmt.Fprintf(&b, "# fleet: %d http attempts, %d retries, %s total backoff\n",
		s.HTTPAttempts, s.HTTPRetries, s.RetryBackoff.Round(time.Millisecond))
	for _, w := range s.Workers {
		status := "alive"
		if !w.Alive {
			status = "dead"
		}
		if w.Role != "" {
			status += " " + w.Role + " epoch=" + strconv.FormatUint(w.Epoch, 10)
		}
		fmt.Fprintf(&b, "# worker %s [%s]: %d cells in %d chunks (%.0f cells/s), %d dispatches (%d failed, %d straggler dups), latency %s..%s\n",
			w.URL, status, w.Cells, w.Chunks, w.CellsPerSec(),
			w.Dispatches, w.Failures, w.Stragglers,
			w.MinLat.Round(time.Millisecond), w.MaxLat.Round(time.Millisecond))
	}
	return b.String()
}

// Stats snapshots the fleet accounting.
func (f *Fleet) Stats() Stats {
	out := Stats{
		ChunksRetried: f.retried.Load(),
		LocalCells:    f.localCells.Load(),
		CachedCells:   f.cachedCells.Load(),
	}
	for _, w := range f.workers {
		cs := w.c.Stats()
		w.mu.Lock()
		out.Workers = append(out.Workers, WorkerStats{
			URL: w.url, Alive: w.alive, Role: w.role, Epoch: w.epoch,
			Chunks: w.chunks, Cells: w.cells, Busy: w.busy,
			Dispatches: w.dispatches, Failures: w.failures, Stragglers: w.stragglers,
			MinLat: w.minLat, MaxLat: w.maxLat, Client: cs,
		})
		w.mu.Unlock()
		out.HTTPAttempts += cs.Attempts
		out.HTTPRetries += cs.Retries
		out.RetryBackoff += cs.Backoff
	}
	return out
}
