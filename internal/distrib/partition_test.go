package distrib_test

import (
	"testing"

	"cliquelect/elect"

	. "cliquelect/internal/distrib"
)

// TestPartitionEdgeCases is the degenerate-grid table: empty and single-cell
// grids, hostile sizes, and the smallest real topology grids must neither
// panic nor produce a chunk outside [0, total).
func TestPartitionEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name        string
		total, size int
		chunks      int
	}{
		{"empty grid", 0, 5, 0},
		{"empty grid default size", 0, 0, 0},
		{"negative total", -3, 4, 0},
		{"single cell", 1, 0, 1},
		{"single cell huge size", 1, 1 << 20, 1},
		{"negative size means default", 10, -1, 10},
		{"size one", 5, 1, 5},
		{"remainder chunk", 10, 4, 3},
		{"exact multiple", 12, 4, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := Partition(tc.total, tc.size)
			if len(got) != tc.chunks {
				t.Fatalf("Partition(%d, %d) = %d chunks, want %d", tc.total, tc.size, len(got), tc.chunks)
			}
			next := 0
			for _, c := range got {
				if c.Start != next || c.Count < 1 {
					t.Fatalf("bad chunk %+v at offset %d", c, next)
				}
				next = c.End()
			}
			if tc.total > 0 && next != tc.total {
				t.Fatalf("chunks cover %d of %d cells", next, tc.total)
			}
		})
	}
}

// TestPartitionTopoGrids pins the partitioner against real topology-swept
// grid sizes: the chunking is a pure function of GridSize, so adding a
// topology axis must shard exactly like any other grid of the same total.
func TestPartitionTopoGrids(t *testing.T) {
	ns := []int{64, 128}
	seeds := []uint64{1, 2, 3}
	for _, topos := range [][]string{nil, {"ring"}, {"ring", "torus", "rreg:d=4"}} {
		total := elect.GridSize(ns, seeds, topos)
		want := max(len(topos), 1) * len(ns) * len(seeds)
		if total != want {
			t.Fatalf("GridSize(%v) = %d, want %d", topos, total, want)
		}
		chunks := Partition(total, 4)
		covered := 0
		for _, c := range chunks {
			covered += c.Count
		}
		if covered != total {
			t.Fatalf("topos=%v: chunks cover %d of %d cells", topos, covered, total)
		}
	}
}
