package distrib_test

import (
	"strings"
	"testing"

	"cliquelect/elect"

	. "cliquelect/internal/distrib"
	"cliquelect/internal/obs"
)

// TestFleetTraceSingleTraceID is the end-to-end tracing contract: a grid
// dispatched to two workers produces ONE trace — grid, chunk.dispatch,
// client request/attempt, and the worker-side serve/queue/exec spans all
// share the root's trace id, and the tree is fully connected.
func TestFleetTraceSingleTraceID(t *testing.T) {
	b, wire := testGrid()
	spec := mustSpec(t, "tradeoff")

	col := obs.NewSpanCollector(0)
	root := obs.NewSpanContext()
	w1, w2 := newHarness(t), newHarness(t)
	fleet := newFleet(t, Config{ChunkSize: 3, Spans: col, Root: root}, w1, w2)
	remote := b
	remote.Remote = fleet.Runner(wire)
	if _, err := elect.RunMany(spec, remote); err != nil {
		t.Fatal(err)
	}

	spans := col.Trace(root.Trace)
	if len(spans) == 0 {
		t.Fatalf("no spans under root trace %s; collector holds %d spans", root.Trace, col.Len())
	}
	byID := map[obs.SpanID]obs.Span{}
	count := map[string]int{}
	for _, sp := range spans {
		if sp.Trace != root.Trace {
			t.Fatalf("span %s escaped the trace: %s", sp.Name, sp.Trace)
		}
		byID[sp.ID] = sp
		count[sp.Name]++
	}
	for _, name := range []string{
		"grid", "chunk.dispatch", "client.request", "client.attempt",
		"chunk.serve", "queue.wait", "job.exec",
	} {
		if count[name] == 0 {
			t.Errorf("no %s span in trace (have %v)", name, count)
		}
	}
	// 16 cells at chunk size 3 → 6 chunks, each with a dispatch span and a
	// worker-side subtree.
	if count["chunk.dispatch"] < 6 || count["chunk.serve"] < 6 {
		t.Errorf("span counts %v, want >= 6 dispatches and serves", count)
	}
	// Connectivity: every span's parent is either the external root span or
	// another span in the trace.
	for _, sp := range spans {
		if sp.Parent == root.Span {
			continue
		}
		if _, ok := byID[sp.Parent]; !ok {
			t.Errorf("span %s (%s) has unknown parent %s", sp.Name, sp.ID, sp.Parent)
		}
	}
	// Both workers appear in the dispatch attrs.
	workers := map[string]bool{}
	for _, sp := range spans {
		if sp.Name == "chunk.dispatch" {
			workers[sp.Attrs["worker"]] = true
		}
	}
	if len(workers) != 2 {
		t.Errorf("dispatch spans name %d workers, want 2: %v", len(workers), workers)
	}
	// The merged set renders as valid Chrome trace-event JSON.
	var out strings.Builder
	if err := obs.WriteChromeTrace(&out, spans); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"displayTimeUnit":"ms"`, `"name":"chunk.dispatch"`, `"name":"job.exec"`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("chrome export missing %s", want)
		}
	}
}

// TestFleetUntracedByDefault pins the disabled path: without a collector or
// root, dispatch sends no traceparent and records nothing.
func TestFleetUntracedByDefault(t *testing.T) {
	b, wire := testGrid()
	spec := mustSpec(t, "tradeoff")
	w1 := newHarness(t)
	fleet := newFleet(t, Config{ChunkSize: 4}, w1)
	remote := b
	remote.Remote = fleet.Runner(wire)
	if _, err := elect.RunMany(spec, remote); err != nil {
		t.Fatal(err)
	}
	// The worker daemon roots its own handler traces either way; what must
	// NOT happen is coordinator-side span creation.
	if fleet.ConfiguredSpans().Len() != 0 {
		t.Fatal("untraced fleet recorded spans")
	}
}
