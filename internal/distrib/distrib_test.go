package distrib_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cliquelect/elect"

	"cliquelect/elect/client"
	. "cliquelect/internal/distrib"
	"cliquelect/internal/resultcache"
	"cliquelect/internal/service"
)

// harness is one electd worker under test: the real service handler behind
// a wrapper that records every chunk request, can inject latency, and can
// start refusing chunks after a set number of requests (a worker killed
// mid-sweep).
type harness struct {
	ts  *httptest.Server
	srv *service.Server

	mu     sync.Mutex
	chunks []Chunk

	delay     atomic.Int64 // ns slept before serving a chunk
	failAfter atomic.Int64 // chunk requests served before dying; <0 = never
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	h := &harness{srv: service.New(service.Config{})}
	h.failAfter.Store(-1)
	inner := h.srv.Handler()
	h.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/chunk" {
			body, _ := io.ReadAll(r.Body)
			r.Body = io.NopCloser(bytes.NewReader(body))
			var req client.ChunkRequest
			if json.Unmarshal(body, &req) == nil {
				h.mu.Lock()
				h.chunks = append(h.chunks, Chunk{Start: req.Start, Count: req.Count})
				seen := int64(len(h.chunks))
				h.mu.Unlock()
				if fail := h.failAfter.Load(); fail >= 0 && seen > fail {
					panic(http.ErrAbortHandler) // hang up mid-request, like a killed daemon
				}
			}
			if d := h.delay.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		h.ts.Close()
		h.srv.Close()
	})
	return h
}

func (h *harness) served() []Chunk {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Chunk(nil), h.chunks...)
}

// newFleet builds a fleet over the harnesses with test-friendly timings.
func newFleet(t *testing.T, cfg Config, hs ...*harness) *Fleet {
	t.Helper()
	for _, h := range hs {
		cfg.Workers = append(cfg.Workers, h.ts.URL)
	}
	if cfg.ClientOptions == nil {
		cfg.ClientOptions = []client.ClientOption{client.WithRetry(2, time.Millisecond)}
	}
	if cfg.StragglerAfter == 0 {
		cfg.StragglerAfter = time.Hour // off unless a test wants it
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func mustSpec(t *testing.T, name string) elect.Spec {
	t.Helper()
	spec, err := elect.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// testGrid is the reference configuration every dispatch test sweeps: the
// elect options and the wire options describe the same thing, as the CLIs
// guarantee.
func testGrid() (elect.Batch, client.Options) {
	k := 4
	b := elect.Batch{
		Ns:    []int{16, 32},
		Seeds: elect.Seeds(1, 8),
		Options: []elect.Option{
			elect.WithParams(elect.Params{K: 4, D: 2, G: 1, Eps: 1.0 / 16}),
		},
	}
	wire := client.Options{Params: &client.ParamSpec{K: &k}}
	return b, wire
}

func encodeBatch(t *testing.T, b *elect.BatchResult) []byte {
	t.Helper()
	data, err := elect.EncodeBatchResult(b)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPartition(t *testing.T) {
	for _, tc := range []struct{ total, size, chunks int }{
		{16, 3, 6}, {16, 16, 1}, {16, 100, 1}, {1, 0, 1}, {0, 5, 0},
		{64, 0, 64},        // default size for 64 cells is 1
		{64 * 1024, 0, 64}, // ceil(65536/64) = 1024 = cap
	} {
		got := Partition(tc.total, tc.size)
		if len(got) != tc.chunks {
			t.Fatalf("Partition(%d, %d) = %d chunks, want %d", tc.total, tc.size, len(got), tc.chunks)
		}
		// Chunks cover [0, total) exactly once, in order.
		next := 0
		for _, c := range got {
			if c.Start != next || c.Count < 1 {
				t.Fatalf("Partition(%d, %d): bad chunk %+v at offset %d", tc.total, tc.size, c, next)
			}
			next = c.End()
		}
		if next != tc.total {
			t.Fatalf("Partition(%d, %d) covers %d cells", tc.total, tc.size, next)
		}
	}
	// Determinism: repeated calls agree exactly.
	for _, total := range []int{1, 7, 64, 1000, 1 << 20} {
		a, b := Partition(total, 0), Partition(total, 0)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("Partition(%d) not deterministic at chunk %d", total, i)
			}
		}
	}
	if DefaultChunkSize(1<<30) != MaxChunkCells {
		t.Fatal("huge grids must clamp to MaxChunkCells")
	}
}

// TestFleetMatchesLocal is the heart of the fabric: a grid dispatched to
// two workers merges byte-identically to the same grid run locally.
func TestFleetMatchesLocal(t *testing.T) {
	b, wire := testGrid()
	spec := mustSpec(t, "tradeoff")
	local, err := elect.RunMany(spec, b)
	if err != nil {
		t.Fatal(err)
	}

	w1, w2 := newHarness(t), newHarness(t)
	fleet := newFleet(t, Config{ChunkSize: 3}, w1, w2)
	remote := b
	remote.Remote = fleet.Runner(wire)
	var progress atomic.Int64
	remote.OnResult = func(done, total int) { progress.Store(int64(done)) }
	got, err := elect.RunMany(spec, remote)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeBatch(t, local), encodeBatch(t, got)) {
		t.Fatal("fleet-dispatched grid differs from local RunMany")
	}
	if progress.Load() != 16 {
		t.Fatalf("OnResult reached %d, want 16", progress.Load())
	}
	// Both workers actually participated and the union of served chunks is
	// exactly the partition.
	c1, c2 := w1.served(), w2.served()
	if len(c1) == 0 || len(c2) == 0 {
		t.Fatalf("load not balanced: %d vs %d chunks", len(c1), len(c2))
	}
	assertChunkSet(t, append(c1, c2...), Partition(16, 3))
	stats := fleet.Stats()
	if stats.ChunksRetried != 0 || stats.LocalCells != 0 {
		t.Fatalf("healthy fleet reported retries/local cells: %+v", stats)
	}
	var cells, dispatches int64
	for _, ws := range stats.Workers {
		if !ws.Alive {
			t.Fatalf("worker %s reported dead", ws.URL)
		}
		cells += ws.Cells
		dispatches += ws.Dispatches
		if ws.Failures != 0 || ws.Stragglers != 0 {
			t.Fatalf("healthy worker %s reported failures/stragglers: %+v", ws.URL, ws)
		}
		if ws.Chunks > 0 && (ws.MinLat <= 0 || ws.MaxLat < ws.MinLat) {
			t.Fatalf("worker %s latency envelope %v..%v", ws.URL, ws.MinLat, ws.MaxLat)
		}
	}
	if cells != 16 {
		t.Fatalf("worker cells sum to %d, want 16", cells)
	}
	if want := int64(len(Partition(16, 3))); dispatches != want {
		t.Fatalf("dispatch attempts sum to %d, want %d", dispatches, want)
	}
	if stats.HTTPAttempts == 0 || stats.HTTPRetries != 0 {
		t.Fatalf("healthy fleet retry telemetry: %+v", stats)
	}
}

// assertChunkSet verifies got is exactly want as a set (order-free).
func assertChunkSet(t *testing.T, got, want []Chunk) {
	t.Helper()
	sortChunks := func(cs []Chunk) {
		sort.Slice(cs, func(i, j int) bool { return cs[i].Start < cs[j].Start })
	}
	got = append([]Chunk(nil), got...)
	sortChunks(got)
	sortChunks(want)
	if len(got) != len(want) {
		t.Fatalf("served %d chunks, want %d: %v vs %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("chunk %d: served %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestChunkAssignmentFleetSizeIndependent: the satellite determinism
// property — the same batch shards into the same chunks whether the fleet
// has one worker or three.
func TestChunkAssignmentFleetSizeIndependent(t *testing.T) {
	b, wire := testGrid()
	spec := mustSpec(t, "tradeoff")

	runWith := func(n int) []Chunk {
		hs := make([]*harness, n)
		for i := range hs {
			hs[i] = newHarness(t)
		}
		fleet := newFleet(t, Config{}, hs...)
		remote := b
		remote.Remote = fleet.Runner(wire)
		if _, err := elect.RunMany(spec, remote); err != nil {
			t.Fatal(err)
		}
		var all []Chunk
		for _, h := range hs {
			all = append(all, h.served()...)
		}
		return all
	}
	one, three := runWith(1), runWith(3)
	assertChunkSet(t, one, Partition(16, 0))
	assertChunkSet(t, three, Partition(16, 0))
}

// TestFleetFailover: a worker killed mid-sweep loses its remaining chunks
// to the survivor, and the merged grid stays byte-identical to local.
func TestFleetFailover(t *testing.T) {
	b, wire := testGrid()
	spec := mustSpec(t, "tradeoff")
	local, err := elect.RunMany(spec, b)
	if err != nil {
		t.Fatal(err)
	}

	survivor, victim := newHarness(t), newHarness(t)
	victim.failAfter.Store(1) // one chunk completes, then the daemon "dies"
	fleet := newFleet(t, Config{ChunkSize: 2}, survivor, victim)
	remote := b
	remote.Remote = fleet.Runner(wire)
	got, err := elect.RunMany(spec, remote)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeBatch(t, local), encodeBatch(t, got)) {
		t.Fatal("failover grid differs from local RunMany")
	}
	stats := fleet.Stats()
	if stats.ChunksRetried < 1 {
		t.Fatalf("no chunk retried despite a dead worker: %+v", stats)
	}
	for _, ws := range stats.Workers {
		switch ws.URL {
		case NormalizeURL(survivor.ts.URL):
			if !ws.Alive || ws.Cells < 1 {
				t.Fatalf("survivor stats %+v", ws)
			}
		case NormalizeURL(victim.ts.URL):
			if ws.Alive {
				t.Fatalf("victim still marked alive: %+v", ws)
			}
		}
	}
}

// TestFleetAllDeadFallsBackLocally: when every worker dies mid-sweep the
// leftover chunks run in-process and the grid still matches local bytes.
func TestFleetAllDeadFallsBackLocally(t *testing.T) {
	b, wire := testGrid()
	spec := mustSpec(t, "tradeoff")
	local, err := elect.RunMany(spec, b)
	if err != nil {
		t.Fatal(err)
	}

	only := newHarness(t)
	only.failAfter.Store(2)
	fleet := newFleet(t, Config{ChunkSize: 2}, only)
	remote := b
	remote.Remote = fleet.Runner(wire)
	got, err := elect.RunMany(spec, remote)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeBatch(t, local), encodeBatch(t, got)) {
		t.Fatal("local-fallback grid differs from local RunMany")
	}
	if stats := fleet.Stats(); stats.LocalCells < 1 {
		t.Fatalf("no cells ran locally: %+v", stats)
	}
}

// TestFleetUnreachableFallsBackToRunMany: a configured but entirely dead
// fleet makes RunMany degrade to plain local execution via ErrNoWorkers.
func TestFleetUnreachableFallsBackToRunMany(t *testing.T) {
	dead := newHarness(t)
	deadURL := dead.ts.URL
	dead.ts.Close() // nothing listens anymore

	b, wire := testGrid()
	spec := mustSpec(t, "tradeoff")
	local, err := elect.RunMany(spec, b)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := New(Config{
		Workers:       []string{deadURL},
		ProbeTimeout:  100 * time.Millisecond,
		ClientOptions: []client.ClientOption{client.WithRetry(1, time.Millisecond)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Direct RunGrid reports ErrNoWorkers...
	if _, err := fleet.Runner(wire).RunGrid(spec, b.Ns, b.Seeds, &b); !errorsIsNoWorkers(err) {
		t.Fatalf("dead fleet: %v, want ErrNoWorkers", err)
	}
	// ...which RunMany turns into a silent local fallback.
	remote := b
	remote.Remote = fleet.Runner(wire)
	got, err := elect.RunMany(spec, remote)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeBatch(t, local), encodeBatch(t, got)) {
		t.Fatal("fallback grid differs from local RunMany")
	}
}

func errorsIsNoWorkers(err error) bool {
	for e := err; e != nil; {
		if e == elect.ErrNoWorkers {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// TestFleetCacheReuse: the merger reads and writes the fingerprint cache —
// a warm sweep dispatches nothing at all.
func TestFleetCacheReuse(t *testing.T) {
	b, wire := testGrid()
	b.Cache = resultcache.New()
	spec := mustSpec(t, "tradeoff")

	w := newHarness(t)
	fleet := newFleet(t, Config{ChunkSize: 4}, w)
	remote := b
	remote.Remote = fleet.Runner(wire)
	cold, err := elect.RunMany(spec, remote)
	if err != nil {
		t.Fatal(err)
	}
	dispatched := len(w.served())
	if dispatched == 0 {
		t.Fatal("cold sweep dispatched nothing")
	}
	warm, err := elect.RunMany(spec, remote)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(w.served()); got != dispatched {
		t.Fatalf("warm sweep dispatched %d extra chunks", got-dispatched)
	}
	if stats := fleet.Stats(); stats.CachedCells != 16 {
		t.Fatalf("cached cells %d, want 16", stats.CachedCells)
	}
	if !bytes.Equal(encodeBatch(t, cold), encodeBatch(t, warm)) {
		t.Fatal("cache replay differs from dispatched sweep")
	}
}

// TestStragglerRedispatch: a chunk stuck on a slow worker is duplicated
// onto an idle one; the first answer wins and the result is unchanged.
func TestStragglerRedispatch(t *testing.T) {
	b, wire := testGrid()
	b.Ns, b.Seeds = []int{16}, elect.Seeds(1, 2) // one 2-cell chunk
	spec := mustSpec(t, "tradeoff")
	local, err := elect.RunMany(spec, b)
	if err != nil {
		t.Fatal(err)
	}

	slow, fast := newHarness(t), newHarness(t)
	const stall = 600 * time.Millisecond
	slow.delay.Store(int64(stall))
	fleet := newFleet(t, Config{ChunkSize: 2, StragglerAfter: 50 * time.Millisecond}, slow, fast)
	remote := b
	remote.Remote = fleet.Runner(wire)
	start := time.Now()
	got, err := elect.RunMany(spec, remote)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed >= stall {
		t.Fatalf("sweep waited out the straggler (%v); re-dispatch did not happen", elapsed)
	}
	if !bytes.Equal(encodeBatch(t, local), encodeBatch(t, got)) {
		t.Fatal("straggler re-dispatch changed the grid")
	}
	if stats := fleet.Stats(); stats.ChunksRetried < 1 {
		t.Fatalf("straggler not counted as retried: %+v", stats)
	}

	// Regression: the abandoned duplicate must release its in-flight slot
	// once its request drains, or a reused Fleet slowly loses the worker.
	// Run a second straggler grid, drain, recover the slow worker, and it
	// must take chunks again.
	if _, err := elect.RunMany(spec, remote); err != nil {
		t.Fatal(err)
	}
	time.Sleep(stall + 100*time.Millisecond) // let the abandoned requests finish
	slow.delay.Store(0)
	before := fleet.Stats()
	var slowBefore int64
	for _, ws := range before.Workers {
		if ws.URL == NormalizeURL(slow.ts.URL) {
			slowBefore = ws.Chunks
		}
	}
	if _, err := elect.RunMany(spec, remote); err != nil {
		t.Fatal(err)
	}
	for _, ws := range fleet.Stats().Workers {
		if ws.URL == NormalizeURL(slow.ts.URL) && ws.Chunks <= slowBefore {
			t.Fatalf("recovered worker took no chunks (in-flight slots leaked): %+v", ws)
		}
	}
}

// TestFleetCancel: a closed Batch.Cancel aborts the dispatch loop with
// ErrCanceled, like the local executor.
func TestFleetCancel(t *testing.T) {
	b, wire := testGrid()
	cancel := make(chan struct{})
	close(cancel)
	b.Cancel = cancel
	spec := mustSpec(t, "tradeoff")

	w := newHarness(t)
	fleet := newFleet(t, Config{}, w)
	remote := b
	remote.Remote = fleet.Runner(wire)
	if _, err := elect.RunMany(spec, remote); err != elect.ErrCanceled {
		t.Fatalf("canceled fleet sweep: %v, want ErrCanceled", err)
	}
}

// TestFleetDefiniteErrorAborts: a configuration the daemon rejects (bad
// parameters) aborts the grid instead of failing over forever.
func TestFleetDefiniteErrorAborts(t *testing.T) {
	k := 1 // invalid for tradeoff
	b := elect.Batch{Ns: []int{16}, Seeds: elect.Seeds(1, 2),
		Options: []elect.Option{elect.WithParams(elect.Params{K: 1, D: 2, G: 1, Eps: 1.0 / 16})}}
	spec := mustSpec(t, "tradeoff")
	w1, w2 := newHarness(t), newHarness(t)
	fleet := newFleet(t, Config{}, w1, w2)
	remote := b
	remote.Remote = fleet.Runner(client.Options{Params: &client.ParamSpec{K: &k}})
	if _, err := elect.RunMany(spec, remote); err == nil {
		t.Fatal("invalid configuration dispatched successfully")
	}
	if stats := fleet.Stats(); stats.ChunksRetried != 0 {
		t.Fatalf("definite error was retried: %+v", stats)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty worker list accepted")
	}
	if _, err := New(Config{Workers: []string{"  "}}); err == nil {
		t.Fatal("blank worker URL accepted")
	}
	if got := NormalizeURL(" host:8090/ "); got != "http://host:8090" {
		t.Fatalf("NormalizeURL = %q", got)
	}
	if got := NormalizeURL("https://h"); got != "https://h" {
		t.Fatalf("NormalizeURL kept scheme: %q", got)
	}
}

// Probe must be bounded by ProbeTimeout even against a black-hole address.
func TestProbeTimeout(t *testing.T) {
	f, err := New(Config{
		Workers:       []string{"http://192.0.2.1:1"}, // TEST-NET, never routes
		ProbeTimeout:  50 * time.Millisecond,
		ClientOptions: []client.ClientOption{client.WithRetry(1, time.Millisecond)},
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if alive := f.Probe(context.Background()); alive != 0 {
		t.Fatalf("black hole alive: %d", alive)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("probe took %v", elapsed)
	}
}
