package distrib

// Chunk is one contiguous cell range [Start, Start+Count) of a batch grid,
// in elect's canonical size-major, seed-minor cell order.
type Chunk struct {
	Start, Count int
}

// End returns the first cell index past the chunk.
func (c Chunk) End() int { return c.Start + c.Count }

// Partitioning is a pure function of the grid — never of the fleet. The
// same batch always shards into the same chunks whether 1 or 100 workers
// are alive, so failover and straggler re-dispatch move whole chunks
// between workers without ever changing what any request asks for, and a
// re-dispatched chunk is content-identical to the original (same cells,
// same fingerprints, free on a warm cache).
const (
	// targetChunks is how many chunks a grid is aimed to shard into: enough
	// granularity that losing a worker forfeits a small slice of the sweep
	// and stragglers can be re-dispatched piecemeal.
	targetChunks = 64
	// maxChunkCells caps chunk size so very large grids still shard finely
	// enough for load balancing.
	maxChunkCells = 1024
)

// DefaultChunkSize returns the chunk size for a grid of total cells:
// ceil(total/targetChunks), clamped to [1, maxChunkCells]. Pure in total.
func DefaultChunkSize(total int) int {
	size := (total + targetChunks - 1) / targetChunks
	if size < 1 {
		size = 1
	}
	if size > maxChunkCells {
		size = maxChunkCells
	}
	return size
}

// Partition splits a grid of total cells into contiguous chunks of the
// given size (the last chunk keeps the remainder). size <= 0 means
// DefaultChunkSize(total). The result covers [0, total) exactly once, in
// order.
func Partition(total, size int) []Chunk {
	if total <= 0 {
		return nil
	}
	if size <= 0 {
		size = DefaultChunkSize(total)
	}
	chunks := make([]Chunk, 0, (total+size-1)/size)
	for start := 0; start < total; start += size {
		count := size
		if start+count > total {
			count = total - start
		}
		chunks = append(chunks, Chunk{Start: start, Count: count})
	}
	return chunks
}
