package distrib

import "cliquelect/internal/obs"

// MaxChunkCells exposes the partitioner's chunk-size clamp to the external
// test package (the tests moved out of package distrib when the service
// layer started importing distrib for in-daemon fleet dispatch).
const MaxChunkCells = maxChunkCells

// ConfiguredSpans exposes the fleet's span collector for the untraced-path
// assertion.
func (f *Fleet) ConfiguredSpans() *obs.SpanCollector { return f.cfg.Spans }
