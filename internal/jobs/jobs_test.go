package jobs

import (
	"testing"
	"time"

	"cliquelect/elect"
	"cliquelect/internal/resultcache"
)

func mustSpec(t *testing.T, name string) elect.Spec {
	t.Helper()
	spec, err := elect.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func wait(t *testing.T, j *Job) Snapshot {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish: %+v", j.ID, j.Snapshot())
	}
	return j.Snapshot()
}

func TestRunJobLifecycle(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	defer m.Close()

	j, err := m.SubmitRun(mustSpec(t, "tradeoff"), []elect.Option{elect.WithN(64), elect.WithSeed(3)})
	if err != nil {
		t.Fatal(err)
	}
	s := wait(t, j)
	if s.State != Done || s.Done != 1 || s.Total != 1 || s.Err != "" {
		t.Fatalf("snapshot %+v", s)
	}
	res, ok := j.Result()
	if !ok || !res.OK || res.N != 64 {
		t.Fatalf("result %+v ok=%v", res, ok)
	}
	if s.Started.Before(s.Created) || s.Finished.Before(s.Started) {
		t.Fatalf("timestamps out of order: %+v", s)
	}
	if got, found := m.Get(j.ID); !found || got != j {
		t.Fatal("Get lost the job")
	}
}

// TestJobHooksAndTraceparent covers the observation plumbing the service
// layer's tracing rides on: OnJobStart fires at the queued→running
// transition, OnJobDone with the terminal snapshot, and the traceparent
// attached at submission surfaces in both.
func TestJobHooksAndTraceparent(t *testing.T) {
	starts := make(chan Snapshot, 1)
	dones := make(chan Snapshot, 1)
	m := NewManager(Config{
		Workers:    1,
		OnJobStart: func(s Snapshot) { starts <- s },
		OnJobDone:  func(s Snapshot) { dones <- s },
	})
	defer m.Close()

	const tp = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	j, err := m.SubmitRun(mustSpec(t, "tradeoff"),
		[]elect.Option{elect.WithN(64), elect.WithSeed(3)}, WithTraceparent(tp))
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j)

	started := <-starts
	if started.State != Running || started.Trace != tp || started.Started.IsZero() {
		t.Fatalf("OnJobStart snapshot %+v", started)
	}
	done := <-dones
	if done.State != Done || done.Trace != tp || done.Kind != KindRun {
		t.Fatalf("OnJobDone snapshot %+v", done)
	}
	if done.Finished.Before(done.Started) || done.Started.Before(done.Created) {
		t.Fatalf("hook timestamps out of order: %+v", done)
	}
	if snap := j.Snapshot(); snap.Trace != tp {
		t.Fatalf("Snapshot.Trace = %q, want %q", snap.Trace, tp)
	}
}

// TestQueueCanceledJobSkipsStartHook pins that a job canceled while queued
// reaches OnJobDone (with zero Started) without ever firing OnJobStart.
func TestQueueCanceledJobSkipsStartHook(t *testing.T) {
	starts := make(chan Snapshot, 4)
	dones := make(chan Snapshot, 4)
	m := NewManager(Config{
		Workers:    1,
		OnJobStart: func(s Snapshot) { starts <- s },
		OnJobDone:  func(s Snapshot) { dones <- s },
	})
	defer m.Close()

	// Occupy the single worker, then cancel a queued job behind it.
	blocker, err := m.SubmitBatch(mustSpec(t, "tradeoff"),
		elect.Batch{Ns: []int{256}, Seeds: elect.Seeds(1, 8)})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.SubmitRun(mustSpec(t, "tradeoff"), []elect.Option{elect.WithN(64)})
	if err != nil {
		t.Fatal(err)
	}
	queued.Cancel()
	if s := wait(t, queued); s.State != Canceled {
		t.Fatalf("queued job state %v", s.State)
	}
	wait(t, blocker)
	var sawCanceled bool
	for len(dones) > 0 {
		if s := <-dones; s.ID == queued.ID {
			sawCanceled = true
			if !s.Started.IsZero() {
				t.Fatalf("canceled-in-queue job has Started %v", s.Started)
			}
		}
	}
	if !sawCanceled {
		t.Fatal("OnJobDone never saw the canceled job")
	}
	for len(starts) > 0 {
		if s := <-starts; s.ID == queued.ID {
			t.Fatal("OnJobStart fired for a job canceled in the queue")
		}
	}
}

func TestRunJobFailure(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	// K=1 is invalid for the tradeoff spec.
	j, err := m.SubmitRun(mustSpec(t, "tradeoff"), []elect.Option{elect.WithParams(elect.Params{K: 1})})
	if err != nil {
		t.Fatal(err)
	}
	s := wait(t, j)
	if s.State != Failed || s.Err == "" {
		t.Fatalf("snapshot %+v", s)
	}
	if j.Err() == nil {
		t.Fatal("Err() nil on failed job")
	}
}

func TestBatchJobProgress(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	defer m.Close()
	j, err := m.SubmitBatch(mustSpec(t, "tradeoff"), elect.Batch{
		Ns: []int{16, 32}, Seeds: elect.Seeds(1, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	sub, stop := j.Subscribe()
	defer stop()
	s := wait(t, j)
	if s.State != Done || s.Done != 8 || s.Total != 8 {
		t.Fatalf("snapshot %+v", s)
	}
	if b, ok := j.BatchResult(); !ok || len(b.Runs) != 8 {
		t.Fatalf("batch result missing")
	}
	// The subscription must deliver a terminal snapshot and then close.
	var last Snapshot
	for snap := range sub {
		last = snap
	}
	if last.State != Done || last.Done != 8 {
		t.Fatalf("last streamed snapshot %+v", last)
	}
}

// TestBatchWorkersCap: a manager with a per-job parallelism cap clamps each
// batch's executor, and the capped batch produces results identical to an
// uncapped direct RunMany (the determinism contract is worker-count
// independent).
func TestBatchWorkersCap(t *testing.T) {
	m := NewManager(Config{Workers: 1, BatchWorkers: 1})
	defer m.Close()
	batch := elect.Batch{Ns: []int{16, 32}, Seeds: elect.Seeds(5, 3), Workers: 64}
	j, err := m.SubmitBatch(mustSpec(t, "tradeoff"), batch)
	if err != nil {
		t.Fatal(err)
	}
	if s := wait(t, j); s.State != Done {
		t.Fatalf("snapshot %+v", s)
	}
	got, ok := j.BatchResult()
	if !ok {
		t.Fatal("batch result missing")
	}
	want, err := elect.RunMany(mustSpec(t, "tradeoff"),
		elect.Batch{Ns: []int{16, 32}, Seeds: elect.Seeds(5, 3)})
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := elect.EncodeBatchResult(got)
	wb, _ := elect.EncodeBatchResult(want)
	if string(gb) != string(wb) {
		t.Fatal("capped batch diverged from direct RunMany")
	}
}

func TestCacheReadThrough(t *testing.T) {
	cache := resultcache.New()
	m := NewManager(Config{Workers: 1, Cache: cache})
	defer m.Close()
	opts := []elect.Option{elect.WithN(64), elect.WithSeed(5)}
	spec := mustSpec(t, "tradeoff")

	first, err := m.SubmitRun(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s := wait(t, first); s.CacheHit {
		t.Fatal("cold job reported a cache hit")
	}
	second, err := m.SubmitRun(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s := wait(t, second); !s.CacheHit {
		t.Fatal("repeated job missed the cache")
	}
	third, err := m.SubmitRun(spec, opts, NoCache())
	if err != nil {
		t.Fatal(err)
	}
	if s := wait(t, third); s.CacheHit {
		t.Fatal("NoCache job reported a cache hit")
	}
	r1, _ := first.Result()
	r2, _ := second.Result()
	r3, _ := third.Result()
	b1, _ := elect.EncodeResult(r1)
	b2, _ := elect.EncodeResult(r2)
	b3, _ := elect.EncodeResult(r3)
	if string(b1) != string(b2) || string(b2) != string(b3) {
		t.Fatal("cached, uncached and bypassed runs disagree")
	}
}

func TestQueueBoundAndCancel(t *testing.T) {
	// One worker, depth 1: occupy the worker with a slow-ish batch, then
	// fill the queue, then overflow it.
	m := NewManager(Config{Workers: 1, QueueDepth: 1})
	defer m.Close()
	spec := mustSpec(t, "tradeoff")
	blocker, err := m.SubmitBatch(spec, elect.Batch{Ns: []int{256}, Seeds: elect.Seeds(1, 64), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var queued *Job
	var overflowed bool
	for i := 0; i < 64; i++ {
		j, err := m.SubmitRun(spec, nil)
		if err == ErrQueueFull {
			overflowed = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		queued = j
	}
	if !overflowed {
		t.Fatal("queue never filled")
	}
	// Cancel the queued job: it must go terminal without running.
	if queued != nil {
		queued.Cancel()
		if s := queued.Snapshot(); s.State != Canceled && s.State != Running && s.State != Done {
			// Normally Canceled; Running/Done only if the worker got to it
			// in the race window before Cancel.
			t.Fatalf("queued job state %s", s.State)
		}
	}
	// Cancel the running batch: RunMany aborts with ErrCanceled.
	blocker.Cancel()
	if s := wait(t, blocker); s.State != Canceled && s.State != Done {
		t.Fatalf("blocker state %s", s.State)
	}
}

func TestSubscribeAfterTerminal(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	j, err := m.SubmitRun(mustSpec(t, "tradeoff"), []elect.Option{elect.WithN(16)})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, j)
	sub, stop := j.Subscribe()
	defer stop()
	snap, ok := <-sub
	if !ok || snap.State != Done {
		t.Fatalf("late subscriber got %+v ok=%v", snap, ok)
	}
	if _, ok := <-sub; ok {
		t.Fatal("late subscription not closed after terminal snapshot")
	}
}

// TestJobRetentionBound: a long-lived manager forgets its oldest terminal
// jobs past MaxJobs instead of accumulating every result it ever served.
func TestJobRetentionBound(t *testing.T) {
	m := NewManager(Config{Workers: 1, MaxJobs: 4})
	defer m.Close()
	spec := mustSpec(t, "tradeoff")
	var all []*Job
	for i := 0; i < 12; i++ {
		j, err := m.SubmitRun(spec, []elect.Option{elect.WithN(16), elect.WithSeed(uint64(i))})
		if err != nil {
			t.Fatal(err)
		}
		wait(t, j)
		all = append(all, j)
	}
	if got := len(m.Jobs()); got > 5 {
		t.Fatalf("job table holds %d jobs, want <= 5 (MaxJobs 4 + in-flight slack)", got)
	}
	if _, ok := m.Get(all[0].ID); ok {
		t.Error("oldest terminal job survived pruning")
	}
	if _, ok := m.Get(all[len(all)-1].ID); !ok {
		t.Error("newest job was pruned")
	}
}

func TestManagerClose(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	j, err := m.SubmitRun(mustSpec(t, "tradeoff"), []elect.Option{elect.WithN(16)})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if !j.Snapshot().State.Terminal() {
		t.Fatalf("job not terminal after Close: %+v", j.Snapshot())
	}
	if _, err := m.SubmitRun(mustSpec(t, "tradeoff"), nil); err != ErrClosed {
		t.Fatalf("submit after close: %v", err)
	}
	m.Close() // idempotent
}

// TestChunkJob: a KindChunk job executes exactly its cell range, its
// results match a direct elect.RunRange of the same range byte-for-byte,
// and progress counts the range (not the whole grid).
func TestChunkJob(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	defer m.Close()
	spec := mustSpec(t, "tradeoff")
	batch := elect.Batch{Ns: []int{32, 64}, Seeds: elect.Seeds(1, 3)}

	j, err := m.SubmitChunk(spec, batch, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := wait(t, j)
	if s.State != Done || s.Kind != KindChunk || s.Done != 3 || s.Total != 3 {
		t.Fatalf("snapshot %+v", s)
	}
	got, ok := j.ChunkResult()
	if !ok || len(got) != 3 {
		t.Fatalf("chunk result %d ok=%v", len(got), ok)
	}
	want, err := elect.RunRange(spec, batch, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		wb, _ := elect.EncodeResult(want[i])
		gb, _ := elect.EncodeResult(got[i])
		if string(wb) != string(gb) {
			t.Fatalf("cell %d differs from direct RunRange", i)
		}
	}

	// A chunk over an out-of-grid range fails cleanly.
	bad, err := m.SubmitChunk(spec, batch, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s := wait(t, bad); s.State != Failed {
		t.Fatalf("out-of-range chunk: %+v", s)
	}
	// A zero-cell chunk is rejected at submission.
	if _, err := m.SubmitChunk(spec, batch, 0, 0); err == nil {
		t.Fatal("empty chunk accepted")
	}
}

// TestChunkJobUsesCache: chunk cells read through the manager's cache, so a
// re-dispatched chunk replays instead of recomputing.
func TestChunkJobUsesCache(t *testing.T) {
	cache := resultcache.New()
	m := NewManager(Config{Workers: 1, Cache: cache})
	defer m.Close()
	spec := mustSpec(t, "tradeoff")
	batch := elect.Batch{Ns: []int{32}, Seeds: elect.Seeds(1, 4)}

	first, err := m.SubmitChunk(spec, batch, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	wait(t, first)
	misses := cache.Stats().Misses
	if misses != 4 || cache.Stats().Puts != 4 {
		t.Fatalf("cold chunk stats %+v", cache.Stats())
	}
	second, err := m.SubmitChunk(spec, batch, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	wait(t, second)
	st := cache.Stats()
	if st.Misses != misses || st.Hits != 4 {
		t.Fatalf("re-dispatched chunk recomputed: %+v", st)
	}
	a, _ := first.ChunkResult()
	b, _ := second.ChunkResult()
	for i := range a {
		ab, _ := elect.EncodeResult(a[i])
		bb, _ := elect.EncodeResult(b[i])
		if string(ab) != string(bb) {
			t.Fatalf("cached replay of cell %d differs", i)
		}
	}
}

func TestQueueDepthGauge(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	if d := m.QueueDepth(); d != 0 {
		t.Fatalf("idle queue depth %d", d)
	}
	// One long blocker occupies the worker; everything behind it queues.
	blocker, err := m.SubmitBatch(mustSpec(t, "tradeoff"), elect.Batch{
		Ns: []int{2048}, Seeds: elect.Seeds(1, 64), Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer blocker.Cancel()
	queued, err := m.SubmitRun(mustSpec(t, "tradeoff"), []elect.Option{elect.WithN(16)})
	if err != nil {
		t.Fatal(err)
	}
	if d := m.QueueDepth(); d < 1 {
		// The blocker may have drained before the gauge was read; only then
		// is an empty queue legitimate.
		if !blocker.Snapshot().State.Terminal() {
			t.Fatalf("queue depth %d with a queued job", d)
		}
	}
	blocker.Cancel()
	wait(t, queued)
}
