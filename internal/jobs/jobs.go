// Package jobs is the serving layer's execution core: a bounded job queue
// feeding a worker pool that drives elect.Run / elect.RunMany, with job
// states, cancellation, per-job progress counters and a subscription hook
// for streaming progress (the electd daemon's SSE endpoint sits directly on
// Subscribe).
//
// Every job optionally reads through an elect.Cache, so repeated
// deterministic work — the dominant shape of sweep traffic — is served from
// stored bytes instead of recomputed.
package jobs

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"cliquelect/elect"
)

// State is a job's lifecycle phase.
type State string

// States. Queued and Running are transient; Done, Failed and Canceled are
// terminal.
const (
	Queued   State = "queued"
	Running  State = "running"
	Done     State = "done"
	Failed   State = "failed"
	Canceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Canceled }

// Kind distinguishes single runs from batches.
type Kind string

// Kinds.
const (
	KindRun   Kind = "run"
	KindBatch Kind = "batch"
	// KindChunk is a contiguous cell range of a batch grid, dispatched to
	// this daemon by a fleet scheduler (see internal/distrib). Chunks run
	// through the same queue and worker pool as everything else, so
	// /healthz's queue gauges reflect fleet load too.
	KindChunk Kind = "chunk"
)

// Errors returned by Submit*.
var (
	ErrQueueFull = errors.New("jobs: queue full")
	ErrClosed    = errors.New("jobs: manager closed")
)

// Config sizes a Manager.
type Config struct {
	// Workers is the pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds how many jobs may wait beyond the ones running;
	// submissions past the bound fail fast with ErrQueueFull (the daemon
	// turns that into 503). 0 means 256.
	QueueDepth int
	// Cache, when non-nil, is consulted by every job (see elect.RunCached);
	// jobs submitted with NoCache opt out individually.
	Cache elect.Cache
	// BatchWorkers caps the sharded RunMany executor of each batch job.
	// Without a cap, every concurrent batch job spins up GOMAXPROCS workers
	// of its own and the daemon oversubscribes the machine Workers-fold; a
	// deployment that sizes Workers for concurrency should size
	// BatchWorkers so Workers*BatchWorkers matches the cores available.
	// 0 means uncapped (each job defaults to GOMAXPROCS).
	BatchWorkers int
	// MaxJobs bounds the job table: once it grows past the bound, the
	// oldest terminal jobs (and their retained results) are forgotten, so a
	// long-lived daemon under sustained traffic does not accumulate every
	// Result it ever served. Queued and running jobs are never evicted.
	// 0 means 1024.
	MaxJobs int
	// OnJobStart, when non-nil, observes every job beginning execution (the
	// queued → running transition; jobs canceled in the queue never fire
	// it). Called synchronously with the job lock held — implementations
	// must be fast, non-blocking, and must not call back into the job or
	// manager. The service layer emits its queue-wait trace span here.
	OnJobStart func(s Snapshot)
	// CheckFence, when non-nil, re-validates a chunk job's fencing token
	// (WithFence) at the moment it begins executing: a non-nil error fails
	// the job with that error instead of running it. The service layer
	// wires the control plane's epoch check in here, so a chunk that was
	// queued under one coordinator and would execute after that
	// coordinator was deposed is rejected rather than computed — the
	// execution-time half of the split-brain fence (the HTTP handler
	// pre-checks at submission for a fast 409). The same calling
	// discipline as the hooks applies: fast, non-blocking, no calls back
	// into the manager.
	CheckFence func(fence uint64) error
	// OnJobDone, when non-nil, observes every job reaching a terminal state
	// with its final snapshot: queue wait is Started-Created (or
	// Finished-Created for jobs canceled in the queue, whose Started stays
	// zero) and execution time Finished-Started. The same calling
	// discipline as OnJobStart applies. The service layer feeds its metrics
	// registry and span collector through these hooks, keeping jobs free of
	// any obs dependency.
	OnJobDone func(s Snapshot)
	// OnJobEnqueue, when non-nil, observes every job accepted into the
	// queue (jobs rejected by ErrQueueFull or ErrClosed never fire it).
	// The same calling discipline as OnJobStart applies. The service layer
	// journals its job.enqueue event here.
	OnJobEnqueue func(s Snapshot)
}

// Manager owns the queue, the workers and the job table.
type Manager struct {
	cache        elect.Cache
	maxJobs      int
	batchWorkers int
	checkFence   func(uint64) error
	onJobStart   func(Snapshot)
	onJobDone    func(Snapshot)
	onJobEnqueue func(Snapshot)
	queue        chan *Job
	wg           sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // insertion order, for stable listings
	closed bool
}

// NewManager starts the worker pool.
func NewManager(cfg Config) *Manager {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 256
	}
	maxJobs := cfg.MaxJobs
	if maxJobs <= 0 {
		maxJobs = 1024
	}
	m := &Manager{
		cache:        cfg.Cache,
		maxJobs:      maxJobs,
		batchWorkers: cfg.BatchWorkers,
		checkFence:   cfg.CheckFence,
		onJobStart:   cfg.OnJobStart,
		onJobDone:    cfg.OnJobDone,
		onJobEnqueue: cfg.OnJobEnqueue,
		queue:        make(chan *Job, depth),
		jobs:         make(map[string]*Job),
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Close stops accepting jobs, cancels everything still queued, and waits
// for in-flight jobs to finish.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	for _, j := range m.jobs {
		j.Cancel()
	}
	close(m.queue)
	m.mu.Unlock()
	m.wg.Wait()
}

// SubmitOption tweaks one submission.
type SubmitOption func(*Job)

// NoCache makes the job bypass the manager's result cache in both
// directions (no lookup, no store).
func NoCache() SubmitOption { return func(j *Job) { j.noCache = true } }

// WithTraceparent attaches the submitting request's W3C traceparent header
// value to the job. Jobs treat it as an opaque string surfaced back through
// Snapshot.Trace — the service layer parses it to parent the queue-wait and
// exec spans it emits from the OnJobStart/OnJobDone hooks, so this package
// carries trace context without importing the tracing layer.
func WithTraceparent(tp string) SubmitOption { return func(j *Job) { j.trace = tp } }

// WithFence attaches a dispatching coordinator's fencing token (its
// election epoch) to a chunk job. The manager's CheckFence hook re-checks
// it when the job starts executing; 0 (the default) marks an unfenced
// dispatcher and always passes.
func WithFence(token uint64) SubmitOption { return func(j *Job) { j.fence = token } }

// SubmitRun enqueues a single election run.
func (m *Manager) SubmitRun(spec elect.Spec, opts []elect.Option, sopts ...SubmitOption) (*Job, error) {
	j := newJob(KindRun, spec, 1)
	j.opts = opts
	return m.submit(j, sopts)
}

// SubmitBatch enqueues a RunMany grid. The batch's Cache, OnResult and
// Cancel fields are owned by the job machinery and overwritten.
func (m *Manager) SubmitBatch(spec elect.Spec, batch elect.Batch, sopts ...SubmitOption) (*Job, error) {
	ns, seeds := len(batch.Ns), len(batch.Seeds)
	if ns == 0 {
		ns = 1 // RunMany defaults empty Ns to {64}
	}
	if seeds == 0 {
		seeds = 1 // ... and empty Seeds to {1}
	}
	j := newJob(KindBatch, spec, ns*seeds)
	j.batch = batch
	return m.submit(j, sopts)
}

// SubmitChunk enqueues cells [start, start+count) of the batch's canonical
// grid (elect.RunRange). Range validation happens at execution; the batch's
// Cache, OnResult and Cancel fields are owned by the job machinery.
func (m *Manager) SubmitChunk(spec elect.Spec, batch elect.Batch, start, count int, sopts ...SubmitOption) (*Job, error) {
	if count < 1 {
		return nil, fmt.Errorf("jobs: chunk of %d cells", count)
	}
	j := newJob(KindChunk, spec, count)
	j.batch = batch
	j.start, j.count = start, count
	return m.submit(j, sopts)
}

// QueueDepth is the number of accepted jobs not yet picked up by a worker —
// the back-pressure gauge /healthz exports for fleet schedulers.
func (m *Manager) QueueDepth() int { return len(m.queue) }

func (m *Manager) submit(j *Job, sopts []SubmitOption) (*Job, error) {
	for _, o := range sopts {
		o(j)
	}
	j.onStart = m.onJobStart
	j.onDone = m.onJobDone
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	select {
	case m.queue <- j:
		m.jobs[j.ID] = j
		m.order = append(m.order, j.ID)
		m.pruneLocked()
		m.mu.Unlock()
		if m.onJobEnqueue != nil {
			m.onJobEnqueue(j.Snapshot())
		}
		return j, nil
	default:
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
}

// pruneLocked forgets the oldest terminal jobs once the table exceeds the
// bound. Non-terminal jobs are kept regardless, so the table can exceed
// maxJobs only by the number of live jobs. Caller holds m.mu.
func (m *Manager) pruneLocked() {
	if len(m.order) <= m.maxJobs {
		return
	}
	kept := m.order[:0]
	excess := len(m.order) - m.maxJobs
	for _, id := range m.order {
		if excess > 0 && m.jobs[id].Snapshot().State.Terminal() {
			delete(m.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// Get finds a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs lists every known job in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Counts tallies jobs by state — the daemon's /healthz summary.
func (m *Manager) Counts() map[State]int {
	out := make(map[State]int, 5)
	for _, j := range m.Jobs() {
		out[j.Snapshot().State]++
	}
	return out
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		cache := m.cache
		if j.noCache {
			cache = nil
		}
		j.execute(cache, m.batchWorkers, m.checkFence)
	}
}

// Job is one queued or executing unit of election work. All exported
// methods are safe for concurrent use.
type Job struct {
	ID   string
	Kind Kind

	spec         elect.Spec
	opts         []elect.Option // KindRun
	batch        elect.Batch    // KindBatch, KindChunk
	start, count int            // KindChunk cell range
	noCache      bool
	fence        uint64 // KindChunk fencing token (WithFence)
	trace        string // opaque traceparent (WithTraceparent)

	onStart func(Snapshot)
	onDone  func(Snapshot)

	cancel     chan struct{}
	cancelOnce sync.Once
	doneCh     chan struct{}

	mu       sync.Mutex
	state    State
	err      error
	created  time.Time
	started  time.Time
	finished time.Time
	done     int
	total    int
	cacheHit bool
	result   *elect.Result
	batchRes *elect.BatchResult
	chunkRes []elect.Result
	subs     map[int]chan Snapshot
	nextSub  int
}

// Snapshot is a point-in-time, data-only view of a job, safe to hold after
// the job moves on.
type Snapshot struct {
	ID       string
	Kind     Kind
	Spec     string
	State    State
	Err      string
	Done     int
	Total    int
	CacheHit bool
	Created  time.Time
	Started  time.Time
	Finished time.Time
	// Trace is the opaque traceparent attached at submission (empty for
	// untraced jobs).
	Trace string
}

func newJob(kind Kind, spec elect.Spec, total int) *Job {
	return &Job{
		ID:      newID(),
		Kind:    kind,
		spec:    spec,
		cancel:  make(chan struct{}),
		doneCh:  make(chan struct{}),
		state:   Queued,
		created: time.Now(),
		total:   total,
		subs:    make(map[int]chan Snapshot),
	}
}

// newID returns a 12-hex-char random job ID ("j" prefix).
func newID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to timestamp
		// uniqueness rather than crashing the daemon.
		return fmt.Sprintf("j%012x", time.Now().UnixNano()&0xffffffffffff)
	}
	return "j" + hex.EncodeToString(b[:])
}

// Snapshot returns the job's current view.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

func (j *Job) snapshotLocked() Snapshot {
	s := Snapshot{
		ID: j.ID, Kind: j.Kind, Spec: j.spec.Name, State: j.state,
		Done: j.done, Total: j.total, CacheHit: j.cacheHit,
		Created: j.created, Started: j.started, Finished: j.finished,
		Trace: j.trace,
	}
	if j.err != nil {
		s.Err = j.err.Error()
	}
	return s
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// Err returns the failure cause of a Failed job (nil otherwise).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Result returns the run outcome of a Done KindRun job.
func (j *Job) Result() (elect.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result == nil {
		return elect.Result{}, false
	}
	return *j.result, true
}

// BatchResult returns the batch outcome of a Done KindBatch job.
func (j *Job) BatchResult() (*elect.BatchResult, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.batchRes, j.batchRes != nil
}

// ChunkResult returns the per-cell outcomes of a Done KindChunk job, in
// cell order.
func (j *Job) ChunkResult() ([]elect.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.chunkRes, j.chunkRes != nil
}

// Cancel requests cancellation: a queued job is canceled immediately (the
// worker skips it), a running batch stops dispatching and cancels, and a
// running single election — they take microseconds to milliseconds — is
// allowed to finish. Canceling a terminal job is a no-op.
func (j *Job) Cancel() {
	j.cancelOnce.Do(func() { close(j.cancel) })
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == Queued {
		j.finishLocked(Canceled, nil)
	}
}

// Subscribe registers for progress snapshots: the current one immediately,
// one per subsequent transition or completed batch run, and the terminal
// one last, after which the channel closes. Slow consumers lose
// intermediate snapshots, never the terminal one. The returned stop
// function unregisters (idempotent).
func (j *Job) Subscribe() (<-chan Snapshot, func()) {
	ch := make(chan Snapshot, 16)
	j.mu.Lock()
	ch <- j.snapshotLocked()
	if j.state.Terminal() {
		close(ch)
		j.mu.Unlock()
		return ch, func() {}
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if c, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(c)
		}
	}
}

// notifyLocked fans the current snapshot out to subscribers, dropping
// updates on full channels unless the state is terminal (then the buffer is
// drained first so the terminal snapshot always lands). Draining must be
// non-blocking: a subscriber may race us for its own buffered elements, and
// a blocking receive here would deadlock the job (we hold j.mu). Caller
// holds j.mu.
func (j *Job) notifyLocked() {
	s := j.snapshotLocked()
	for _, ch := range j.subs {
		if s.State.Terminal() {
		drain:
			for {
				select {
				case <-ch:
				default:
					break drain
				}
			}
		}
		select {
		case ch <- s:
		default:
		}
	}
}

// finishLocked moves the job to a terminal state, closes Done and releases
// subscribers. Caller holds j.mu.
func (j *Job) finishLocked(state State, err error) {
	j.state = state
	j.err = err
	j.finished = time.Now()
	if j.onDone != nil {
		j.onDone(j.snapshotLocked())
	}
	j.notifyLocked()
	for id, ch := range j.subs {
		delete(j.subs, id)
		close(ch)
	}
	close(j.doneCh)
}

// execute runs the job on a worker goroutine. batchWorkers, when positive,
// caps the parallelism of a batch job's RunMany executor. checkFence, when
// non-nil, re-validates a chunk's fencing token at execution start — the
// queued→running edge is where a token stamped by a since-deposed
// coordinator must be caught.
func (j *Job) execute(cache elect.Cache, batchWorkers int, checkFence func(uint64) error) {
	j.mu.Lock()
	if j.state != Queued { // canceled while waiting
		j.mu.Unlock()
		return
	}
	j.state = Running
	j.started = time.Now()
	if j.onStart != nil {
		j.onStart(j.snapshotLocked())
	}
	j.notifyLocked()
	j.mu.Unlock()

	if j.Kind == KindChunk && checkFence != nil {
		if err := checkFence(j.fence); err != nil {
			j.mu.Lock()
			j.finishLocked(Failed, err)
			j.mu.Unlock()
			return
		}
	}

	switch j.Kind {
	case KindRun:
		res, hit, err := elect.RunCached(cache, j.spec, j.opts...)
		j.mu.Lock()
		defer j.mu.Unlock()
		if err != nil {
			j.finishLocked(Failed, err)
			return
		}
		j.result = &res
		j.cacheHit = hit
		j.done = 1
		j.finishLocked(Done, nil)

	case KindBatch, KindChunk:
		b := j.batch
		b.Cache = cache
		b.Cancel = j.cancel
		if batchWorkers > 0 && (b.Workers <= 0 || b.Workers > batchWorkers) {
			b.Workers = batchWorkers
		}
		b.OnResult = func(done, total int) {
			j.mu.Lock()
			if done > j.done {
				j.done = done
			}
			j.total = total
			j.notifyLocked()
			j.mu.Unlock()
		}
		var (
			batchOut *elect.BatchResult
			chunkOut []elect.Result
			err      error
		)
		if j.Kind == KindChunk {
			chunkOut, err = elect.RunRange(j.spec, b, j.start, j.count)
		} else {
			batchOut, err = elect.RunMany(j.spec, b)
		}
		j.mu.Lock()
		defer j.mu.Unlock()
		switch {
		case errors.Is(err, elect.ErrCanceled):
			j.finishLocked(Canceled, nil)
		case err != nil:
			j.finishLocked(Failed, err)
		default:
			j.batchRes = batchOut
			j.chunkRes = chunkOut
			j.done = j.total
			j.finishLocked(Done, nil)
		}
	}
}
