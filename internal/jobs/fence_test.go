package jobs

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cliquelect/elect"
)

// fenceGate is what the service layer wires as Config.CheckFence, modeled
// without importing internal/control (jobs must stay control-free): an
// atomic epoch standing in for the node's election state, revoked by
// bumping it.
type fenceGate struct {
	epoch   atomic.Uint64
	rejects atomic.Int64
}

var errStale = errors.New("stale fencing token")

func (g *fenceGate) check(fence uint64) error {
	if fence == 0 || fence >= g.epoch.Load() {
		return nil
	}
	g.rejects.Add(1)
	return fmt.Errorf("%w: token %d", errStale, fence)
}

// TestChunkFenceRejectedAtExecution pins the split-brain window the
// execution-time re-check exists for: the chunk is ACCEPTED while its
// token is current, the lease is revoked while it sits in the queue, and
// execution must then refuse to run it.
func TestChunkFenceRejectedAtExecution(t *testing.T) {
	gate := &fenceGate{}
	gate.epoch.Store(1)

	// One worker pinned by a slow job, so the fenced chunk queues behind it.
	block := make(chan struct{})
	m := NewManager(Config{
		Workers:    1,
		CheckFence: gate.check,
		OnJobStart: func(Snapshot) { <-block },
	})
	defer m.Close()

	spec := mustSpec(t, "tradeoff")
	batch := elect.Batch{Ns: []int{16}, Seeds: elect.Seeds(1, 4)}
	j, err := m.SubmitChunk(spec, batch, 0, 2, WithFence(1))
	if err != nil {
		t.Fatal(err)
	}
	// Revoke while queued (a new coordinator was elected), then release.
	gate.epoch.Store(2)
	close(block)

	s := wait(t, j)
	if s.State != Failed {
		t.Fatalf("stale-fenced chunk finished %s, want failed", s.State)
	}
	if !errors.Is(j.Err(), errStale) {
		t.Fatalf("job error %v does not unwrap to the fence error", j.Err())
	}
	if gate.rejects.Load() != 1 {
		t.Fatalf("gate counted %d rejects, want 1", gate.rejects.Load())
	}
}

// TestChunkFenceCurrentAndLegacyAccepted: tokens at (or above) the epoch
// run, and token 0 — an unfenced legacy dispatcher — always runs.
func TestChunkFenceCurrentAndLegacyAccepted(t *testing.T) {
	gate := &fenceGate{}
	gate.epoch.Store(3)
	m := NewManager(Config{Workers: 2, CheckFence: gate.check})
	defer m.Close()

	spec := mustSpec(t, "tradeoff")
	batch := elect.Batch{Ns: []int{16}, Seeds: elect.Seeds(1, 4)}
	for _, fence := range []uint64{0, 3, 9} {
		var opts []SubmitOption
		if fence > 0 {
			opts = append(opts, WithFence(fence))
		}
		j, err := m.SubmitChunk(spec, batch, 0, 2, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if s := wait(t, j); s.State != Done {
			t.Fatalf("fence %d: chunk %s (%s), want done", fence, s.State, s.Err)
		}
	}
	if gate.rejects.Load() != 0 {
		t.Fatalf("accepted tokens counted as rejects: %d", gate.rejects.Load())
	}
}

// TestJobsFenceHammer is the -race stress of the whole submit/cancel/hook
// surface under concurrent lease revocation: submitters race chunk and run
// jobs against an epoch bumper and a canceler, and at the end every job
// must be terminal, every terminal hook fired exactly once, and every
// fence-failed job must carry the gate's error.
func TestJobsFenceHammer(t *testing.T) {
	const (
		submitters   = 4
		jobsPerSub   = 20
		epochBumps   = 40
		cancelEvery  = 5
		totalSubmits = submitters * jobsPerSub
	)
	gate := &fenceGate{}
	gate.epoch.Store(1)

	var doneHooks atomic.Int64
	m := NewManager(Config{
		Workers:    4,
		QueueDepth: totalSubmits,
		CheckFence: gate.check,
		OnJobDone:  func(Snapshot) { doneHooks.Add(1) },
	})
	defer m.Close()

	spec := mustSpec(t, "tradeoff")
	batch := elect.Batch{Ns: []int{16}, Seeds: elect.Seeds(1, 8)}

	// Lease revocation: the epoch marches forward while jobs are in flight.
	stopBump := make(chan struct{})
	var bumper sync.WaitGroup
	bumper.Add(1)
	go func() {
		defer bumper.Done()
		for i := 0; i < epochBumps; i++ {
			select {
			case <-stopBump:
				return
			default:
			}
			gate.epoch.Add(1)
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	jobs := make(chan *Job, totalSubmits)
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < jobsPerSub; i++ {
				var (
					j   *Job
					err error
				)
				if i%2 == 0 {
					// Chunks stamped with the CURRENT epoch: some will go
					// stale in the queue as the bumper advances it.
					j, err = m.SubmitChunk(spec, batch, 0, 4, WithFence(gate.epoch.Load()))
				} else {
					j, err = m.SubmitRun(spec, []elect.Option{elect.WithN(16), elect.WithSeed(uint64(s*100 + i))})
				}
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if i%cancelEvery == 0 {
					j.Cancel()
				}
				jobs <- j
			}
		}(s)
	}
	wg.Wait()
	close(jobs)
	close(stopBump)
	bumper.Wait()

	var all []*Job
	for j := range jobs {
		all = append(all, j)
	}
	if len(all) != totalSubmits {
		t.Fatalf("submitted %d jobs, want %d", len(all), totalSubmits)
	}
	states := map[State]int{}
	for _, j := range all {
		s := wait(t, j)
		states[s.State]++
		switch s.State {
		case Done, Canceled:
		case Failed:
			if !errors.Is(j.Err(), errStale) {
				t.Fatalf("job %s failed with %v, want the fence error", j.ID, j.Err())
			}
		default:
			t.Fatalf("job %s not terminal: %s", j.ID, s.State)
		}
	}
	// Every job fired its terminal hook exactly once.
	deadline := time.Now().Add(30 * time.Second)
	for doneHooks.Load() < int64(totalSubmits) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := doneHooks.Load(); got != int64(totalSubmits) {
		t.Fatalf("OnJobDone fired %d times for %d jobs", got, totalSubmits)
	}
	// The bumper moved ~40 epochs while fences were stamped at submit time,
	// so SOME chunks must have been fenced — a hammer that never exercises
	// the rejection path proves nothing.
	if states[Failed] == 0 {
		t.Log("warning: no chunk went stale this run (timing); rejection path covered by TestChunkFenceRejectedAtExecution")
	}
	if gate.rejects.Load() < int64(states[Failed]) {
		t.Fatalf("gate rejects %d < failed jobs %d", gate.rejects.Load(), states[Failed])
	}
}
