package experiments

import (
	"fmt"
	"math"

	"cliquelect/internal/core"
	"cliquelect/internal/ids"
	"cliquelect/internal/lowerbound"
	"cliquelect/internal/simsync"
	"cliquelect/internal/stats"
	"cliquelect/internal/trace"
	"cliquelect/internal/xrand"
)

// meanMessages runs a sync factory `seeds` times and returns mean messages,
// mean rounds, and the success (unique-leader) count.
func meanMessages(n, seeds int, seed uint64, factory simsync.Factory,
	mkIDs func(*xrand.RNG) ids.Assignment, wake simsync.WakePolicy) (msgs, rounds float64, successes int, err error) {
	rng := xrand.New(seed)
	var totalMsgs, totalRounds float64
	for s := 0; s < seeds; s++ {
		assign := mkIDs(rng)
		res, rerr := simsync.Run(simsync.Config{
			N: n, IDs: assign, Seed: rng.Uint64(), Wake: wake,
		}, factory)
		if rerr != nil {
			return 0, 0, 0, rerr
		}
		totalMsgs += float64(res.Messages)
		totalRounds += float64(res.Rounds)
		if res.UniqueLeader() >= 0 {
			successes++
		}
	}
	return totalMsgs / float64(seeds), totalRounds / float64(seeds), successes, nil
}

func logIDs(n int) func(*xrand.RNG) ids.Assignment {
	return func(rng *xrand.RNG) ids.Assignment {
		return ids.Random(ids.LogUniverse(n), n, rng)
	}
}

// E3Tradeoff reproduces the Theorem 3.10 row: l rounds and
// O(l·n^{1+2/(l+1)}) messages for the paper's improved deterministic
// algorithm.
func E3Tradeoff(cfg Config) (*Report, error) {
	rep := &Report{
		ID:         "E3",
		Title:      "Improved deterministic tradeoff (Theorem 3.10)",
		PaperClaim: "for any odd l >= 3: l rounds, O(l·n^{1+2/(l+1)}) messages",
		Table:      stats.NewTable("l", "n", "mean msgs", "rounds", "n^(1+2/(l+1))"),
	}
	ns := cfg.nsFor([]int{256, 512, 1024, 2048, 4096}, []int{128, 256, 512})
	for _, l := range []int{3, 5, 7} {
		k := (l + 3) / 2
		var xs, ys []float64
		roundsOK := true
		for _, n := range ns {
			msgs, rounds, succ, err := meanMessages(n, cfg.seeds(), cfg.Seed+uint64(l), core.NewTradeoff(k), logIDs(n), nil)
			if err != nil {
				return nil, err
			}
			if succ != cfg.seeds() {
				return nil, fmt.Errorf("E3: deterministic run failed at n=%d l=%d", n, l)
			}
			if int(rounds) != l {
				roundsOK = false
			}
			xs = append(xs, float64(n))
			ys = append(ys, msgs)
			rep.Table.AddRow(l, n, msgs, rounds, math.Pow(float64(n), 1+2/float64(l+1)))
		}
		want := 1 + 2/float64(l+1)
		fit, err := stats.FitPower(xs, ys)
		if err != nil {
			return nil, err
		}
		rep.check(fmt.Sprintf("rounds==l (l=%d)", l), roundsOK, "every run finished in exactly %d rounds", l)
		rep.check(fmt.Sprintf("msg exponent (l=%d)", l), math.Abs(fit.Alpha-want) < 0.16,
			"fitted %.3f vs paper %.3f (R²=%.3f)", fit.Alpha, want, fit.R2)
	}
	return rep, nil
}

// E13AfekGafni reproduces the Afek-Gafni [1] baseline row (2k rounds,
// O(k·n^{1+1/k}) messages) and the paper's headline crossover: at an equal
// round budget the Theorem 3.10 algorithm is polynomially cheaper.
func E13AfekGafni(cfg Config) (*Report, error) {
	rep := &Report{
		ID:         "E13",
		Title:      "Afek-Gafni deterministic baseline [1]",
		PaperClaim: "for any l = 2k >= 2: l rounds, O(l·n^{1+2/l}) messages; Theorem 3.10 beats it at equal rounds",
		Table:      stats.NewTable("k", "n", "mean msgs", "rounds", "n^(1+1/k)"),
	}
	// Larger n for the fit: AG's ceil(n^{i/k}) fan-outs have strong rounding
	// effects at small n that flatten the apparent exponent.
	ns := cfg.nsFor([]int{512, 1024, 2048, 4096, 8192}, []int{256, 1024, 4096})
	for _, k := range []int{2, 3, 4} {
		var xs, ys []float64
		roundsOK := true
		for _, n := range ns {
			msgs, rounds, succ, err := meanMessages(n, cfg.seeds(), cfg.Seed+uint64(k), core.NewAfekGafni(k), logIDs(n), nil)
			if err != nil {
				return nil, err
			}
			if succ != cfg.seeds() {
				return nil, fmt.Errorf("E13: failed at n=%d k=%d", n, k)
			}
			if int(rounds) > 2*k {
				roundsOK = false
			}
			xs = append(xs, float64(n))
			ys = append(ys, msgs)
			rep.Table.AddRow(k, n, msgs, rounds, math.Pow(float64(n), 1+1/float64(k)))
		}
		want := 1 + 1/float64(k)
		fit, err := stats.FitPower(xs, ys)
		if err != nil {
			return nil, err
		}
		rep.check(fmt.Sprintf("rounds<=2k (k=%d)", k), roundsOK, "every run within %d rounds", 2*k)
		rep.check(fmt.Sprintf("msg exponent (k=%d)", k), math.Abs(fit.Alpha-want) < 0.2,
			"fitted %.3f vs paper %.3f (R²=%.3f)", fit.Alpha, want, fit.R2)
	}
	// Crossover: Tradeoff with k rounds 2k-3 vs AfekGafni with k-1
	// iterations (2k-2 rounds, one MORE than ours).
	nBig := ns[len(ns)-1]
	for _, k := range []int{3, 4} {
		ours, _, _, err := meanMessages(nBig, cfg.seeds(), cfg.Seed, core.NewTradeoff(k), logIDs(nBig), nil)
		if err != nil {
			return nil, err
		}
		ag, _, _, err := meanMessages(nBig, cfg.seeds(), cfg.Seed, core.NewAfekGafni(k-1), logIDs(nBig), nil)
		if err != nil {
			return nil, err
		}
		rep.check(fmt.Sprintf("crossover k=%d (n=%d)", k, nBig), ours < ag,
			"Tradeoff %.0f msgs in %d rounds vs Afek-Gafni %.0f msgs in %d rounds",
			ours, 2*k-3, ag, 2*k-2)
	}
	return rep, nil
}

// E1ComponentGame reproduces the Theorem 3.8 lower-bound row by playing the
// Lemma 3.9 adversary against the Theorem 3.10 algorithm.
func E1ComponentGame(cfg Config) (*Report, error) {
	rep := &Report{
		ID:         "E1",
		Title:      "Tradeoff lower bound via the component game (Theorem 3.8 / Lemma 3.9)",
		PaperClaim: "any deterministic algorithm sending <= n·f messages needs > (log2(n)-1)/(log2(f)+1) + 1 rounds",
		Table:      stats.NewTable("n", "f", "predicted rounds", "stalled", "budget exceeded@", "cap violated@", "msgs"),
	}
	ns := cfg.nsFor([]int{256, 1024}, []int{256})
	for _, n := range ns {
		// Measure the algorithm's own budget, then play at that budget plus
		// a couple of tighter ones.
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(cfg.Seed))
		plain, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: 1}, core.NewTradeoff(4))
		if err != nil {
			return nil, err
		}
		fActual := float64(plain.Messages) / float64(n)
		for _, f := range []float64{2, fActual / 4, fActual} {
			if f <= 1 {
				continue
			}
			game, err := lowerbound.ComponentGame(n, f, core.NewTradeoff(4), cfg.Seed+7)
			if err != nil {
				return nil, err
			}
			rep.Table.AddRow(n, f, game.PredictedRounds, game.StalledRounds(),
				game.BudgetExceededAt, game.CapViolatedAt, game.Result.Messages)
			ok := true
			for _, cr := range game.Rounds[1:] {
				if game.BudgetExceededAt != 0 && cr.Round >= game.BudgetExceededAt {
					break
				}
				if cr.MaxComponent > cr.Cap {
					ok = false
				}
			}
			rep.check(fmt.Sprintf("caps hold pre-budget n=%d f=%.1f", n, f), ok,
				"components stayed within 2^sigma_r until the budget broke")
			if f == fActual {
				rep.check(fmt.Sprintf("theorem consistency n=%d", n),
					float64(plain.Rounds)+1 >= game.PredictedRounds,
					"measured %d rounds vs predicted floor %.2f at the algorithm's own f=%.1f",
					plain.Rounds, game.PredictedRounds, fActual)
				rep.check(fmt.Sprintf("adversary stalls n=%d", n), game.StalledRounds() >= 1,
					"adversary contained components for %d round(s)", game.StalledRounds())
			}
		}
	}
	rep.Notes = append(rep.Notes,
		"The single-execution game cannot re-choose ID assignments the way Lemma 3.9's pruning does; "+
			"instead it reports the first round at which some block overspends its allowance mu_r — after "+
			"which cap violations are expected and legitimate.")
	return rep, nil
}

// E2PortOpenCensus reproduces the Theorem 3.11 / Theorem 3.15 pair: with a
// large ID space, time-bounded deterministic algorithms open Omega(n log n)
// ports; with a linear ID space, Algorithm 1 beats n·log n — the ID-space
// hypothesis is necessary.
func E2PortOpenCensus(cfg Config) (*Report, error) {
	rep := &Report{
		ID:         "E2",
		Title:      "Omega(n log n) port-open census vs the small-ID escape (Theorems 3.11 & 3.15)",
		PaperClaim: "time-bounded algorithms on large ID spaces send Omega(n log n) messages; linear ID spaces allow o(n log n)",
		Table:      stats.NewTable("n", "alg", "ID space", "port opens", "opens/(n·log2 n)"),
	}
	ns := cfg.nsFor([]int{256, 512, 1024}, []int{128, 256})
	var tradeoffRatios, smallIDRatios []float64
	for _, n := range ns {
		// (a) The Theorem 3.10 algorithm at its message-lean extreme
		// k-1 = log2(n) (fan-outs double per iteration), large ID space.
		k := core.CeilLog2(n) + 1
		rec := trace.NewRecorder(n)
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(cfg.Seed+uint64(n)))
		if _, err := simsync.Run(simsync.Config{
			N: n, IDs: assign, Seed: 2, Trace: rec,
		}, core.NewTradeoff(k)); err != nil {
			return nil, err
		}
		nlogn := float64(n) * float64(core.CeilLog2(n))
		r1 := float64(rec.TotalPortOpens()) / nlogn
		tradeoffRatios = append(tradeoffRatios, r1)
		rep.Table.AddRow(n, "tradeoff k=log2(n)+1", "Theta(n log n)", rec.TotalPortOpens(), r1)

		// (b) Algorithm 1 with d=2, g=1 on the linear ID space.
		rec2 := trace.NewRecorder(n)
		assign2 := ids.Random(ids.LinearUniverse(n, 1), n, xrand.New(cfg.Seed+uint64(n)+1))
		if _, err := simsync.Run(simsync.Config{
			N: n, IDs: assign2, Seed: 3, Trace: rec2,
		}, core.NewSmallID(2, 1)); err != nil {
			return nil, err
		}
		r2 := float64(rec2.TotalPortOpens()) / nlogn
		smallIDRatios = append(smallIDRatios, r2)
		rep.Table.AddRow(n, "smallid d=2 g=1", "{1..n}", rec2.TotalPortOpens(), r2)
	}
	minTr := tradeoffRatios[0]
	for _, r := range tradeoffRatios {
		if r < minTr {
			minTr = r
		}
	}
	rep.check("large-ID opens ~ n log n", minTr > 0.25,
		"opens/(n·log2 n) stayed >= %.2f across n (Omega(n log n) shape)", minTr)
	decreasing := true
	for i := 1; i < len(smallIDRatios); i++ {
		if smallIDRatios[i] >= smallIDRatios[i-1] {
			decreasing = false
		}
	}
	rep.check("small-ID opens = o(n log n)", decreasing && smallIDRatios[len(smallIDRatios)-1] < minTr,
		"ratio decreasing to %.3f, below the large-ID floor %.2f", smallIDRatios[len(smallIDRatios)-1], minTr)

	// Lemma 3.12 spot check: the single-send transform preserves leader and
	// message count (the census is defined over single-send algorithms).
	n := ns[0]
	assign := ids.Random(ids.LogUniverse(n), n, xrand.New(cfg.Seed+99))
	pm := func() *xrand.RNG { return xrand.New(123) }
	direct, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: 4,
		Ports: portmapShared(n, pm())}, core.NewTradeoff(3))
	if err != nil {
		return nil, err
	}
	wrapped, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: 4,
		Ports: portmapShared(n, pm()), MaxRounds: n * (direct.Rounds + 2)},
		lowerbound.NewSingleSend(core.NewTradeoff(3)))
	if err != nil {
		return nil, err
	}
	rep.check("single-send equivalence (Lemma 3.12)",
		direct.UniqueLeader() == wrapped.UniqueLeader() && direct.Messages == wrapped.Messages,
		"leader %d/%d, msgs %d/%d, rounds %d vs %d (<= n·T = %d)",
		direct.UniqueLeader(), wrapped.UniqueLeader(), direct.Messages, wrapped.Messages,
		direct.Rounds, wrapped.Rounds, n*direct.Rounds)
	rep.Notes = append(rep.Notes,
		"Theorem 3.11's full hypothesis needs an ID universe of size n·log²n·T^{log n-1}, beyond honest "+
			"instantiation; the census instantiates the mechanism on the Theta(n log n) universe that "+
			"Theorem 3.8 covers. See DESIGN.md, Substitutions.")
	return rep, nil
}

// E4SmallID reproduces the Theorem 3.15 row.
func E4SmallID(cfg Config) (*Report, error) {
	rep := &Report{
		ID:         "E4",
		Title:      "Small-ID-universe algorithm (Algorithm 1 / Theorem 3.15)",
		PaperClaim: "IDs from {1..n·g}: ceil(n/d) rounds, <= n·d·g messages; sublinear time with o(n log n) messages for g=O(1)",
		Table:      stats.NewTable("n", "d", "g", "mean msgs", "bound n·d·g", "mean rounds", "bound ceil(n/d)"),
	}
	n := 1024
	if cfg.Quick {
		n = 256
	}
	type pg struct{ d, g int }
	configs := []pg{{2, 1}, {4, 2}, {intSqrt(n), 1}, {n / core.CeilLog2(n), 1}}
	for _, c := range configs {
		var worstMsgs, worstRounds float64
		rng := xrand.New(cfg.Seed + uint64(c.d))
		for s := 0; s < cfg.seeds(); s++ {
			// Spread assignment: adversarially dense windows.
			assign := ids.Spread(ids.LinearUniverse(n, c.g), n)
			if s%2 == 1 {
				assign = ids.Random(ids.LinearUniverse(n, c.g), n, rng)
			}
			res, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: rng.Uint64()}, core.NewSmallID(c.d, c.g))
			if err != nil {
				return nil, err
			}
			if err := res.Validate(); err != nil {
				return nil, fmt.Errorf("E4: %w", err)
			}
			if m := float64(res.Messages); m > worstMsgs {
				worstMsgs = m
			}
			if r := float64(res.Rounds); r > worstRounds {
				worstRounds = r
			}
		}
		msgBound := float64(n) * float64(c.d) * float64(c.g)
		roundBound := float64(core.CeilDiv(n, c.d))
		rep.Table.AddRow(n, c.d, c.g, worstMsgs, msgBound, worstRounds, roundBound)
		rep.check(fmt.Sprintf("bounds d=%d g=%d", c.d, c.g),
			worstMsgs <= msgBound && worstRounds <= roundBound,
			"worst msgs %.0f <= %.0f, worst rounds %.0f <= %.0f", worstMsgs, msgBound, worstRounds, roundBound)
	}
	// Sublinear-time o(n log n) witness: d=2, g=1.
	rng := xrand.New(cfg.Seed)
	assign := ids.Random(ids.LinearUniverse(n, 1), n, rng)
	res, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: rng.Uint64()}, core.NewSmallID(2, 1))
	if err != nil {
		return nil, err
	}
	nlogn := float64(n) * float64(core.CeilLog2(n))
	rep.check("o(n log n) with sublinear time", float64(res.Messages) < nlogn && res.Rounds <= n/2,
		"%d msgs < n·log2 n = %.0f in %d rounds (<= n/2)", res.Messages, nlogn, res.Rounds)
	return rep, nil
}

func intSqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}
