package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every Table-1 experiment in quick mode and
// requires all self-checks to pass — this is the repository's end-to-end
// reproduction gate.
func TestAllExperimentsQuick(t *testing.T) {
	reps, err := RunAll(Config{Quick: true, Seed: 12345})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(Registry) {
		t.Fatalf("ran %d of %d experiments", len(reps), len(Registry))
	}
	for _, rep := range reps {
		if len(rep.Checks) == 0 {
			t.Errorf("%s: no checks", rep.ID)
		}
		for _, c := range rep.Checks {
			if !c.Pass {
				t.Errorf("%s check %q failed: %s", rep.ID, c.Name, c.Detail)
			}
		}
	}
}

func TestIDsOrdered(t *testing.T) {
	ids := IDs()
	if len(ids) != 13 {
		t.Fatalf("got %d experiments", len(ids))
	}
	if ids[0] != "E1" || ids[12] != "E13" {
		t.Fatalf("order wrong: %v", ids)
	}
}

func TestReportRendering(t *testing.T) {
	rep, err := E4SmallID(Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "E4") || !strings.Contains(s, "PASS") {
		t.Fatalf("plain rendering wrong:\n%s", s)
	}
	md := rep.Markdown()
	if !strings.Contains(md, "## E4") || !strings.Contains(md, "| n |") {
		t.Fatalf("markdown rendering wrong:\n%s", md)
	}
	if !rep.Passed() {
		t.Fatal("E4 quick run failed checks")
	}
}

func TestConfigDefaults(t *testing.T) {
	if (Config{}).seeds() != 10 {
		t.Fatal("default seeds")
	}
	if (Config{Quick: true}).seeds() != 4 {
		t.Fatal("quick seeds")
	}
	if (Config{Seeds: 7}).seeds() != 7 {
		t.Fatal("explicit seeds")
	}
	full := []int{1, 2, 3}
	quick := []int{1}
	if got := (Config{Quick: true}).nsFor(full, quick); len(got) != 1 {
		t.Fatal("quick ns")
	}
	if got := (Config{}).nsFor(full, quick); len(got) != 3 {
		t.Fatal("full ns")
	}
}
