package experiments

import (
	"fmt"
	"math"

	"cliquelect/internal/core"
	"cliquelect/internal/ids"
	"cliquelect/internal/simasync"
	"cliquelect/internal/stats"
	"cliquelect/internal/xrand"
)

// asyncPoint is one averaged async measurement.
type asyncPoint struct {
	msgs      float64 // total messages
	wakeMsgs  float64 // wake-up messages only (the n^{1+1/k} component)
	timeUnits float64
	successes int
}

// measureAsync runs an async factory `seeds` times and averages.
func measureAsync(n, seeds int, seed uint64, factory simasync.Factory,
	delays simasync.DelayPolicy, wake simasync.WakeSchedule) (asyncPoint, error) {
	rng := xrand.New(seed)
	var pt asyncPoint
	for s := 0; s < seeds; s++ {
		assign := ids.Random(ids.LogUniverse(n), n, rng)
		res, err := simasync.Run(simasync.Config{
			N: n, IDs: assign, Seed: rng.Uint64(), Delays: delays, Wake: wake,
		}, factory)
		if err != nil {
			return pt, err
		}
		pt.msgs += float64(res.Messages)
		pt.wakeMsgs += float64(res.PerKind[core.KindWakeup])
		pt.timeUnits += float64(res.TimeUnits)
		if res.Validate() == nil {
			pt.successes++
		}
	}
	f := float64(seeds)
	pt.msgs /= f
	pt.wakeMsgs /= f
	pt.timeUnits /= f
	return pt, nil
}

// E10AsyncTradeoff reproduces the headline Theorem 5.1 row: the first
// message/time tradeoff in the asynchronous clique.
func E10AsyncTradeoff(cfg Config) (*Report, error) {
	rep := &Report{
		ID:         "E10",
		Title:      "Asynchronous tradeoff (Algorithm 2 / Theorem 5.1)",
		PaperClaim: "for k in [2, O(log n / log log n)]: k+8 time units, O(n^{1+1/k}) messages, w.h.p.",
		Table:      stats.NewTable("k", "n", "mean msgs", "n^(1+1/k)", "mean time", "k+8", "success"),
	}
	ns := cfg.nsFor([]int{256, 512, 1024, 2048}, []int{128, 256, 512})
	for _, k := range []int{2, 3, 4} {
		var xs, wakeYs []float64
		for _, n := range ns {
			pt, err := measureAsync(n, cfg.seeds(), cfg.Seed+uint64(k),
				core.NewAsyncTradeoff(k), simasync.UnitDelay{}, simasync.SubsetAtZero([]int{0}))
			if err != nil {
				return nil, err
			}
			xs = append(xs, float64(n))
			wakeYs = append(wakeYs, pt.wakeMsgs)
			rep.Table.AddRow(k, n, pt.msgs, math.Pow(float64(n), 1+1/float64(k)), pt.timeUnits, k+8,
				fmt.Sprintf("%d/%d", pt.successes, cfg.seeds()))
			rep.check(fmt.Sprintf("success k=%d n=%d", k, n), pt.successes >= cfg.seeds()-1,
				"%d/%d unique-leader runs", pt.successes, cfg.seeds())
			// The paper's k+8 is asymptotic; consult serialization at one
			// referee adds a vanishing O(polylog/sqrt(n)) term at small n.
			rep.check(fmt.Sprintf("time k=%d n=%d", k, n), pt.timeUnits <= float64(k)+11,
				"mean %.2f time units vs paper k+8 = %d", pt.timeUnits, k+8)
			// The election term on top of the spreading is o(n): Theta(log n)
			// candidates each contacting Theta(sqrt(n log n)) referees.
			election := pt.msgs - pt.wakeMsgs
			electionBound := 40*math.Sqrt(float64(n))*math.Pow(math.Log(float64(n)), 1.5) + 4*float64(n)
			rep.check(fmt.Sprintf("election o(n^{1+1/k}) k=%d n=%d", k, n), election <= electionBound,
				"election overhead %.0f <= %.0f", election, electionBound)
		}
		// Fit the exponent on the wake-up component, which carries the
		// theorem's n^{1+1/k}; the election term is additively separate and
		// verified above.
		want := 1 + 1/float64(k)
		fit, err := stats.FitPower(xs, wakeYs)
		if err != nil {
			return nil, err
		}
		rep.check(fmt.Sprintf("msg exponent k=%d", k), math.Abs(fit.Alpha-want) < 0.1,
			"fitted %.3f on wake-up messages vs paper %.3f (R²=%.3f)", fit.Alpha, want, fit.R2)
	}
	return rep, nil
}

// E11AsyncLinear reproduces the [14] asynchronous baseline row and the
// crossover against the tradeoff curve.
func E11AsyncLinear(cfg Config) (*Report, error) {
	rep := &Report{
		ID:         "E11",
		Title:      "Near-linear asynchronous baseline (substituted [14]-style)",
		PaperClaim: "[14]: O(n) messages, O(log² n) time; substituted baseline: O(n log n) messages, O(log n) time at k=Theta(log n/log log n)",
		Table:      stats.NewTable("n", "k", "mean msgs", "msgs/(n·log2 n)", "mean time", "success"),
	}
	ns := cfg.nsFor([]int{256, 512, 1024, 2048}, []int{128, 256, 512})
	for _, n := range ns {
		k := core.AsyncLinearK(n)
		pt, err := measureAsync(n, cfg.seeds(), cfg.Seed+uint64(n),
			core.NewAsyncLinear(n), simasync.UnitDelay{}, simasync.SubsetAtZero([]int{0}))
		if err != nil {
			return nil, err
		}
		nlogn := float64(n) * math.Log2(float64(n))
		rep.Table.AddRow(n, k, pt.msgs, pt.msgs/nlogn, pt.timeUnits,
			fmt.Sprintf("%d/%d", pt.successes, cfg.seeds()))
		rep.check(fmt.Sprintf("near-linear n=%d", n), pt.msgs <= 24*nlogn,
			"%.0f msgs <= 24·n·log2 n", pt.msgs)
		rep.check(fmt.Sprintf("polylog time n=%d", n), pt.timeUnits <= 4*math.Log2(float64(n)),
			"%.1f time units <= 4·log2 n = %.1f", pt.timeUnits, 4*math.Log2(float64(n)))
	}
	// Crossover at fixed n: sweep k and verify messages decrease while time
	// increases, meeting the near-linear corner at k_max.
	n := ns[len(ns)-1]
	kMax := core.AsyncLinearK(n)
	var prevMsgs float64
	monotoneMsgs := true
	var k2Msgs, kMaxMsgs float64
	for k := 2; k <= kMax; k++ {
		pt, err := measureAsync(n, cfg.seeds(), cfg.Seed+uint64(100+k),
			core.NewAsyncTradeoff(k), simasync.UnitDelay{}, simasync.SubsetAtZero([]int{0}))
		if err != nil {
			return nil, err
		}
		if k > 2 && pt.msgs > prevMsgs*1.05 {
			monotoneMsgs = false
		}
		prevMsgs = pt.msgs
		if k == 2 {
			k2Msgs = pt.msgs
		}
		if k == kMax {
			kMaxMsgs = pt.msgs
		}
	}
	rep.check("tradeoff curve monotone", monotoneMsgs,
		"messages decrease in k at n=%d (within 5%% noise)", n)
	rep.check("crossover magnitude", k2Msgs > 2*kMaxMsgs,
		"k=2 spends %.0f vs k=%d spending %.0f: the curve meets the near-linear corner", k2Msgs, kMax, kMaxMsgs)
	rep.Notes = append(rep.Notes,
		"The genuine [14] construction reaches O(n) messages with O(log² n) time; the substituted baseline "+
			"reaches the same corner of the tradeoff space up to a log factor. See DESIGN.md, Substitutions.")
	return rep, nil
}

// E12AsyncAfekGafni reproduces the Theorem 5.14 row.
func E12AsyncAfekGafni(cfg Config) (*Report, error) {
	rep := &Report{
		ID:         "E12",
		Title:      "Asynchronized Afek-Gafni (Section 5.4 / Theorem 5.14)",
		PaperClaim: "deterministic, O(log n) time from simultaneous wake-up, O(n log n) messages, under arbitrary message delays",
		Table:      stats.NewTable("n", "scheduler", "mean msgs", "msgs/(n·log2 n)", "mean time", "time/log2 n", "success"),
	}
	ns := cfg.nsFor([]int{256, 1024}, []int{128, 256})
	policies := []struct {
		name   string
		policy simasync.DelayPolicy
	}{
		{"unit", simasync.UnitDelay{}},
		{"uniform", simasync.UniformDelay{Lo: 0.05}},
		{"skew", simasync.SkewDelay{Fast: 0.05, Mod: 3}},
	}
	for _, n := range ns {
		for _, pol := range policies {
			pt, err := measureAsync(n, cfg.seeds(), cfg.Seed+uint64(n),
				core.NewAsyncAfekGafni(), pol.policy, simasync.AllAtZero(n))
			if err != nil {
				return nil, err
			}
			nlogn := float64(n) * math.Log2(float64(n))
			rep.Table.AddRow(n, pol.name, pt.msgs, pt.msgs/nlogn, pt.timeUnits,
				pt.timeUnits/math.Log2(float64(n)), fmt.Sprintf("%d/%d", pt.successes, cfg.seeds()))
			rep.check(fmt.Sprintf("deterministic success n=%d %s", n, pol.name), pt.successes == cfg.seeds(),
				"%d/%d runs elected exactly one leader (no probability)", pt.successes, cfg.seeds())
			rep.check(fmt.Sprintf("O(n log n) msgs n=%d %s", n, pol.name), pt.msgs <= 16*nlogn,
				"%.0f <= 16·n·log2 n = %.0f", pt.msgs, 16*nlogn)
			rep.check(fmt.Sprintf("O(log n) time n=%d %s", n, pol.name),
				pt.timeUnits <= 8*math.Log2(float64(n))+8,
				"%.1f time units <= 8·log2 n + 8", pt.timeUnits)
		}
	}
	rep.Notes = append(rep.Notes,
		"Answers (the simultaneous-wake-up half of) Afek and Gafni's open problem: the synchronous tradeoff "+
			"algorithm survives arbitrary message delays at unchanged asymptotic cost.")
	return rep, nil
}
