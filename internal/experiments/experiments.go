// Package experiments reproduces Table 1 of the paper: every row is an
// experiment E1..E13 that measures the corresponding algorithm or plays the
// corresponding lower-bound game, renders the measurements as a table, and
// self-checks the paper's shape claims (round counts, fitted message
// exponents, crossovers). cmd/experiments runs them all and emits
// EXPERIMENTS.md; bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"cliquelect/internal/stats"
)

// Config controls an experiment's scale.
type Config struct {
	// Quick shrinks sweeps for unit tests and CI.
	Quick bool
	// Seed is the master seed; every experiment derives all randomness
	// from it.
	Seed uint64
	// Seeds is the number of repetitions per configuration (default 10,
	// quick 4).
	Seeds int
}

func (c Config) seeds() int {
	if c.Seeds > 0 {
		return c.Seeds
	}
	if c.Quick {
		return 4
	}
	return 10
}

// nsFor returns the n sweep for an experiment, shrunk under Quick.
func (c Config) nsFor(full []int, quick []int) []int {
	if c.Quick {
		return quick
	}
	return full
}

// Check is one named pass/fail verification of a paper claim.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Report is the outcome of one experiment.
type Report struct {
	ID         string
	Title      string
	PaperClaim string
	Table      *stats.Table
	Checks     []Check
	// Notes carries substitution caveats and measurement commentary.
	Notes []string
}

// Passed reports whether all checks passed.
func (r *Report) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// check appends a pass/fail check.
func (r *Report) check(name string, pass bool, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
}

// String renders the report as plain text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	fmt.Fprintf(&b, "paper: %s\n\n", r.PaperClaim)
	if r.Table != nil {
		b.WriteString(r.Table.String())
		b.WriteByte('\n')
	}
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %-28s %s\n", mark, c.Name, c.Detail)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the report as a markdown section for EXPERIMENTS.md.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", r.ID, r.Title)
	fmt.Fprintf(&b, "**Paper claim.** %s\n\n", r.PaperClaim)
	if r.Table != nil {
		b.WriteString(r.Table.Markdown())
		b.WriteByte('\n')
	}
	b.WriteString("**Checks.**\n\n")
	for _, c := range r.Checks {
		mark := "✅"
		if !c.Pass {
			mark = "❌"
		}
		fmt.Fprintf(&b, "- %s `%s` — %s\n", mark, c.Name, c.Detail)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	b.WriteByte('\n')
	return b.String()
}

// Runner executes one experiment.
type Runner func(Config) (*Report, error)

// Registry maps experiment IDs to runners.
var Registry = map[string]Runner{
	"E1":  E1ComponentGame,
	"E2":  E2PortOpenCensus,
	"E3":  E3Tradeoff,
	"E4":  E4SmallID,
	"E5":  E5LasVegasLB,
	"E6":  E6LasVegas,
	"E7":  E7Sublinear,
	"E8":  E8AdvWake,
	"E9":  E9WakeupGame,
	"E10": E10AsyncTradeoff,
	"E11": E11AsyncLinear,
	"E12": E12AsyncAfekGafni,
	"E13": E13AfekGafni,
}

// IDs returns the experiment identifiers in order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// RunAll executes every experiment in ID order.
func RunAll(cfg Config) ([]*Report, error) {
	var out []*Report
	for _, id := range IDs() {
		rep, err := Registry[id](cfg)
		if err != nil {
			return out, fmt.Errorf("%s: %w", id, err)
		}
		out = append(out, rep)
	}
	return out, nil
}
