package experiments

import (
	"fmt"
	"math"

	"cliquelect/internal/core"
	"cliquelect/internal/ids"
	"cliquelect/internal/lowerbound"
	"cliquelect/internal/portmap"
	"cliquelect/internal/simsync"
	"cliquelect/internal/stats"
	"cliquelect/internal/xrand"
)

// portmapShared builds a SharedPerm mapping (used where an experiment needs
// an identical oblivious wiring across two runs).
func portmapShared(n int, rng *xrand.RNG) portmap.Map {
	return portmap.NewSharedPerm(n, rng)
}

// E5LasVegasLB reproduces the Theorem 3.16 lower-bound row: the silent-set
// audit passes the honest O(n) Las Vegas algorithm and catches a sublinear
// cheater.
func E5LasVegasLB(cfg Config) (*Report, error) {
	rep := &Report{
		ID:         "E5",
		Title:      "Las Vegas Omega(n) lower bound (Theorem 3.16, audit form)",
		PaperClaim: "any Las Vegas algorithm needs Omega(n) messages in expectation; o(n) implies composable silent halves",
		Table:      stats.NewTable("algorithm", "trials", "0-leader", ">1-leader", "silent-half runs", "mean msgs", "verdict"),
	}
	n, trials := 64, 300
	if cfg.Quick {
		trials = 150
	}
	cheater, err := lowerbound.CheckLasVegas(n, trials, lowerbound.NewCheatingLasVegas(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	verdict := func(failed bool) string {
		if failed {
			return "REFUTED"
		}
		return "consistent"
	}
	rep.Table.AddRow("cheating o(n) LV", cheater.Trials, cheater.ZeroLeader, cheater.MultiLeader,
		cheater.SilentHalf, cheater.MeanMessages, verdict(cheater.Failed()))
	honest, err := lowerbound.CheckLasVegas(n, trials/2, core.NewLasVegas(), cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	rep.Table.AddRow("Theorem 3.16 LV", honest.Trials, honest.ZeroLeader, honest.MultiLeader,
		honest.SilentHalf, honest.MeanMessages, verdict(honest.Failed()))
	rep.check("cheater refuted", cheater.Failed(),
		"sublinear LV candidate produced %d zero-leader and %d multi-leader runs",
		cheater.ZeroLeader, cheater.MultiLeader)
	rep.check("honest algorithm clean", !honest.Failed() && honest.ZeroLeader+honest.MultiLeader == 0,
		"no incorrect execution in %d trials", honest.Trials)
	rep.check("honest pays Omega(n)", honest.MeanMessages >= float64(n-1),
		"mean %.1f messages >= n-1 = %d", honest.MeanMessages, n-1)
	return rep, nil
}

// E6LasVegas reproduces the Theorem 3.16 upper-bound row.
func E6LasVegas(cfg Config) (*Report, error) {
	rep := &Report{
		ID:         "E6",
		Title:      "Las Vegas algorithm (Theorem 3.16)",
		PaperClaim: "3 rounds (w.h.p.), O(n) messages (w.h.p.), never wrong",
		Table:      stats.NewTable("n", "mean msgs", "msgs/n", "3-round rate", "correct"),
	}
	ns := cfg.nsFor([]int{256, 1024, 4096}, []int{128, 512})
	for _, n := range ns {
		rng := xrand.New(cfg.Seed + uint64(n))
		var msgs float64
		three, correct := 0, 0
		for s := 0; s < cfg.seeds(); s++ {
			assign := ids.Random(ids.LogUniverse(n), n, rng)
			res, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: rng.Uint64()}, core.NewLasVegas())
			if err != nil {
				return nil, err
			}
			msgs += float64(res.Messages)
			if res.Rounds == 3 {
				three++
			}
			if res.Validate() == nil {
				correct++
			}
		}
		msgs /= float64(cfg.seeds())
		ratio := msgs / float64(n)
		rep.Table.AddRow(n, msgs, ratio,
			float64(three)/float64(cfg.seeds()), fmt.Sprintf("%d/%d", correct, cfg.seeds()))
		rep.check(fmt.Sprintf("never wrong n=%d", n), correct == cfg.seeds(),
			"%d/%d runs elected exactly one leader", correct, cfg.seeds())
		// O(n) with the Omega(n) floor: the ratio msgs/n must sit in a
		// constant band (>= the announcement, <= a small constant, since
		// the MC rounds cost o(n)).
		rep.check(fmt.Sprintf("Theta(n) messages n=%d", n), ratio >= 0.9 && ratio <= 8,
			"msgs/n = %.2f in [0.9, 8]", ratio)
	}
	return rep, nil
}

// E7Sublinear reproduces the Kutten et al. [16] Monte Carlo row.
func E7Sublinear(cfg Config) (*Report, error) {
	rep := &Report{
		ID:         "E7",
		Title:      "Sublinear Monte Carlo baseline (Kutten et al. [16])",
		PaperClaim: "2 rounds, O(sqrt(n)·log^{3/2} n) messages, succeeds w.h.p. — a polynomial gap below the Las Vegas Omega(n)",
		Table:      stats.NewTable("n", "mean msgs", "msgs/(sqrt(n)·ln^1.5 n)", "success rate", "msgs/n"),
	}
	ns := cfg.nsFor([]int{1024, 4096, 16384, 65536}, []int{1024, 4096})
	var xs, ys []float64
	for _, n := range ns {
		rng := xrand.New(cfg.Seed + uint64(n))
		var msgs float64
		succ := 0
		for s := 0; s < cfg.seeds(); s++ {
			assign := ids.Random(ids.LogUniverse(n), n, rng)
			res, err := simsync.Run(simsync.Config{N: n, IDs: assign, Seed: rng.Uint64()}, core.NewSublinear())
			if err != nil {
				return nil, err
			}
			msgs += float64(res.Messages)
			if res.UniqueLeader() >= 0 {
				succ++
			}
		}
		msgs /= float64(cfg.seeds())
		norm := math.Sqrt(float64(n)) * math.Pow(math.Log(float64(n)), 1.5)
		xs = append(xs, float64(n))
		ys = append(ys, msgs/math.Pow(math.Log(float64(n)), 1.5))
		rep.Table.AddRow(n, msgs, msgs/norm, float64(succ)/float64(cfg.seeds()), msgs/float64(n))
		rep.check(fmt.Sprintf("success w.h.p. n=%d", n), succ >= cfg.seeds()-1,
			"%d/%d unique-leader runs", succ, cfg.seeds())
	}
	fit, err := stats.FitPower(xs, ys)
	if err != nil {
		return nil, err
	}
	rep.check("sqrt(n) exponent", math.Abs(fit.Alpha-0.5) < 0.15,
		"fitted exponent of msgs/ln^{1.5} n: %.3f vs paper 0.5 (R²=%.3f)", fit.Alpha, fit.R2)
	if len(ns) > 0 && ns[len(ns)-1] >= 16384 {
		// The gap statement of Theorem 3.16: Monte Carlo beats the Las Vegas
		// floor of n-1 messages (the announcement alone), and the ratio
		// widens polynomially with n.
		last := len(ns) - 1
		msgsLast := ys[last] * math.Pow(math.Log(float64(ns[last])), 1.5)
		firstRatio := ys[0] * math.Pow(math.Log(float64(ns[0])), 1.5) / float64(ns[0])
		lastRatio := msgsLast / float64(ns[last])
		rep.check("polynomial gap vs Las Vegas", msgsLast < float64(ns[last]-1) && lastRatio < firstRatio,
			"at n=%d: %.0f msgs below the Las Vegas floor n-1=%d; msgs/n ratio shrinking %.2f -> %.2f",
			ns[last], msgsLast, ns[last]-1, firstRatio, lastRatio)
	}
	return rep, nil
}

// E8AdvWake reproduces the Theorem 4.1 row.
func E8AdvWake(cfg Config) (*Report, error) {
	rep := &Report{
		ID:         "E8",
		Title:      "2-round algorithm under adversarial wake-up (Theorem 4.1)",
		PaperClaim: "2 rounds, O(n^{3/2}·log(1/eps)) expected messages, success >= 1-eps-1/n",
		Table:      stats.NewTable("n", "wake set", "mean msgs", "msgs/n^1.5", "success rate"),
	}
	const eps = 1.0 / 16
	ns := cfg.nsFor([]int{256, 1024, 4096}, []int{256, 1024})
	var xs, ys []float64
	for _, n := range ns {
		rng := xrand.New(cfg.Seed + uint64(n))
		for _, wakeAll := range []bool{false, true} {
			var msgs float64
			succ := 0
			trials := cfg.seeds() * 2
			if trials < 24 {
				trials = 24 // the success check is Bernoulli; small samples are too noisy
			}
			for s := 0; s < trials; s++ {
				assign := ids.Random(ids.LogUniverse(n), n, rng)
				var wake simsync.WakePolicy = simsync.Simultaneous{}
				label := "all"
				if !wakeAll {
					wake = simsync.AdversarialSet{Nodes: []int{int(rng.Uint64n(uint64(n)))}}
					label = "single"
				}
				_ = label
				res, err := simsync.Run(simsync.Config{
					N: n, IDs: assign, Seed: rng.Uint64(), Wake: wake,
				}, core.NewAdvWake2Round(eps))
				if err != nil {
					return nil, err
				}
				msgs += float64(res.Messages)
				if res.UniqueLeader() >= 0 && res.AllAwake() {
					succ++
				}
			}
			msgs /= float64(trials)
			label := "single root"
			if wakeAll {
				label = "all roots"
				xs = append(xs, float64(n))
				ys = append(ys, msgs)
			}
			rate := float64(succ) / float64(trials)
			rep.Table.AddRow(n, label, msgs, msgs/math.Pow(float64(n), 1.5), rate)
			rep.check(fmt.Sprintf("success n=%d %s", n, label), rate >= 0.78,
				"rate %.2f vs paper floor %.2f (finite-sample slack)", rate, 1-eps-1.0/float64(n))
		}
	}
	fit, err := stats.FitPower(xs, ys)
	if err != nil {
		return nil, err
	}
	rep.check("n^{3/2} exponent", math.Abs(fit.Alpha-1.5) < 0.12,
		"fitted %.3f vs paper 1.5 (R²=%.3f)", fit.Alpha, fit.R2)
	return rep, nil
}

// E9WakeupGame reproduces the Theorem 4.2 lower-bound row.
func E9WakeupGame(cfg Config) (*Report, error) {
	rep := &Report{
		ID:         "E9",
		Title:      "Omega(n^{3/2}) wake-up lower bound (Theorem 4.2, sweep form)",
		PaperClaim: "2-round wake-up with constant success needs Omega(n^{3/2}) expected messages",
		Table:      stats.NewTable("beta", "fan-out", "mean msgs", "msgs/n^1.5", "wake-fail rate"),
	}
	n, trials := 1024, 30
	if cfg.Quick {
		n, trials = 256, 15
	}
	betas := []float64{0.125, 0.25, 0.5, 1, 2, 4}
	res, err := lowerbound.WakeupGame(n, trials, betas, cfg.Seed)
	if err != nil {
		return nil, err
	}
	for _, p := range res.Points {
		rep.Table.AddRow(p.Beta, p.Fanout, p.MeanMessages, p.MeanMessages/res.Envelope, p.WakeFailRate)
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	rep.check("cheap protocols fail", first.WakeFailRate >= 0.9,
		"beta=%.3f fails to wake everyone in %.0f%% of runs", first.Beta, 100*first.WakeFailRate)
	rep.check("reliable wake-up achieved", last.WakeFailRate <= 0.15,
		"beta=%.1f fail rate %.2f", last.Beta, last.WakeFailRate)
	rep.check("reliability costs ~n^{3/2}", last.MeanMessages >= res.Envelope/16,
		"reliable point spends %.0f vs envelope %.0f", last.MeanMessages, res.Envelope)
	monotone := true
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].MeanMessages < res.Points[i-1].MeanMessages {
			monotone = false
		}
	}
	rep.check("cost monotone in beta", monotone, "message cost increases with fan-out")
	rep.Notes = append(rep.Notes,
		"Theorem 4.1's algorithm (E8) sits on this envelope from above; the sweep shows wake-up failures "+
			"appear exactly when spending drops below it — the two sides of the tight bound.")
	return rep, nil
}
