//go:build race

package simsync

// raceEnabled reports whether the race detector is instrumenting this
// build. Race instrumentation changes sync.Pool caching and allocates on
// its own, so the allocation-budget test is meaningless under it.
const raceEnabled = true
