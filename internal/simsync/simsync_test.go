package simsync

import (
	"reflect"
	"testing"

	"cliquelect/internal/faults"
	"cliquelect/internal/ids"
	"cliquelect/internal/portmap"
	"cliquelect/internal/proto"
	"cliquelect/internal/trace"
	"cliquelect/internal/xrand"
)

// maxBroadcast is a one-round test protocol: broadcast own ID, the node that
// sees no larger ID becomes leader.
type maxBroadcast struct {
	env    proto.Env
	dec    proto.Decision
	halted bool
}

func (p *maxBroadcast) Init(env proto.Env) { p.env = env }

func (p *maxBroadcast) Send(round int) []proto.Send {
	if round != 1 {
		return nil
	}
	out := make([]proto.Send, p.env.Ports())
	for i := range out {
		out[i] = proto.Send{Port: i, Msg: proto.Message{Kind: 1, A: p.env.ID}}
	}
	return out
}

func (p *maxBroadcast) Deliver(round int, inbox []proto.Delivery) {
	if round != 1 {
		return
	}
	best := p.env.ID
	for _, d := range inbox {
		if d.Msg.A > best {
			best = d.Msg.A
		}
	}
	if best == p.env.ID {
		p.dec = proto.Leader
	} else {
		p.dec = proto.NonLeader
	}
	p.halted = true
}

func (p *maxBroadcast) Decision() proto.Decision { return p.dec }
func (p *maxBroadcast) Halted() bool             { return p.halted }

func TestMaxBroadcastElectsMaxID(t *testing.T) {
	for _, n := range []int{2, 3, 5, 16, 64} {
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(uint64(n)))
		res, err := Run(Config{N: n, IDs: assign, Seed: 42, Strict: true},
			func(int) Protocol { return &maxBroadcast{} })
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			t.Fatal(err)
		}
		leader := res.UniqueLeader()
		if assign[leader] != assign.Max() {
			t.Fatalf("n=%d: leader ID %d, want max %d", n, assign[leader], assign.Max())
		}
		if res.Rounds != 1 {
			t.Fatalf("n=%d: rounds = %d, want 1", n, res.Rounds)
		}
		if want := int64(n * (n - 1)); res.Messages != want {
			t.Fatalf("n=%d: messages = %d, want %d", n, res.Messages, want)
		}
		if res.Words != res.Messages*3 {
			t.Fatalf("words = %d", res.Words)
		}
		if res.PerKind[1] != res.Messages {
			t.Fatalf("per-kind = %v", res.PerKind)
		}
		if res.PerRound[1] != res.Messages {
			t.Fatalf("per-round = %v", res.PerRound)
		}
	}
}

func TestMaxBroadcastAllPortMaps(t *testing.T) {
	const n = 12
	assign := ids.Sequential(ids.LinearUniverse(n, 1), n)
	maps := map[string]portmap.Map{
		"canonical":  portmap.NewCanonical(n),
		"sharedperm": portmap.NewSharedPerm(n, xrand.New(1)),
		"lazyrandom": portmap.NewLazyRandom(n, xrand.New(2)),
	}
	for name, pm := range maps {
		res, err := Run(Config{N: n, IDs: assign, Ports: pm, Strict: true},
			func(int) Protocol { return &maxBroadcast{} })
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := res.UniqueLeader(); got != n-1 {
			t.Fatalf("%s: leader %d, want %d", name, got, n-1)
		}
	}
}

// pingPong checks that replying on the arrival port routes back to the
// original sender: the min-ID node pings over port 0, the receiver pongs
// back, and only the initiator must see the pong.
type pingPong struct {
	env      proto.Env
	initiate bool
	pongPort int // arrival port to answer on; -1 if none
	gotPong  bool
	dec      proto.Decision
	halted   bool
}

func (p *pingPong) Init(env proto.Env) {
	p.env = env
	p.initiate = env.ID == 1 // min ID in a sequential assignment
	p.pongPort = -1
}

func (p *pingPong) Send(round int) []proto.Send {
	switch {
	case round == 1 && p.initiate:
		return []proto.Send{{Port: 0, Msg: proto.Message{Kind: 1, A: p.env.ID}}}
	case round == 2 && p.pongPort >= 0:
		return []proto.Send{{Port: p.pongPort, Msg: proto.Message{Kind: 2, A: p.env.ID}}}
	}
	return nil
}

func (p *pingPong) Deliver(round int, inbox []proto.Delivery) {
	for _, d := range inbox {
		switch d.Msg.Kind {
		case 1:
			p.pongPort = d.Port
		case 2:
			p.gotPong = true
		}
	}
	if round == 2 {
		if p.initiate && p.gotPong {
			p.dec = proto.Leader
		} else {
			p.dec = proto.NonLeader
		}
		p.halted = true
	}
}

func (p *pingPong) Decision() proto.Decision { return p.dec }
func (p *pingPong) Halted() bool             { return p.halted }

func TestReplyPortRoutesBack(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		const n = 9
		assign := ids.Sequential(ids.LinearUniverse(n, 1), n)
		res, err := Run(Config{N: n, IDs: assign, Seed: seed, Strict: true},
			func(int) Protocol { return &pingPong{} })
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			t.Fatal(err)
		}
		if got := res.UniqueLeader(); assign[got] != 1 {
			t.Fatalf("seed %d: pong went to node with ID %d", seed, assign[got])
		}
		if res.Messages != 2 || res.Rounds != 2 {
			t.Fatalf("msgs=%d rounds=%d", res.Messages, res.Rounds)
		}
	}
}

// wakeChain tests adversarial wake-up semantics: the root (adversary-woken)
// sends one message in round 1; the woken child broadcasts in the round
// after it wakes; everyone decides on hearing the broadcast.
type wakeChain struct {
	env       proto.Env
	isRoot    bool
	sawSend   bool
	wokeRound int // round this node was message-woken, 0 for root
	dec       proto.Decision
	halted    bool
}

func (p *wakeChain) Init(env proto.Env) { p.env = env }

func (p *wakeChain) Send(round int) []proto.Send {
	if !p.sawSend {
		p.sawSend = true
		if p.wokeRound == 0 {
			p.isRoot = true // first callback was Send: adversary-woken
		}
	}
	if p.isRoot && round == 1 {
		return []proto.Send{{Port: 0, Msg: proto.Message{Kind: 1}}}
	}
	if !p.isRoot && round == p.wokeRound+1 {
		out := make([]proto.Send, p.env.Ports())
		for i := range out {
			out[i] = proto.Send{Port: i, Msg: proto.Message{Kind: 2, A: p.env.ID}}
		}
		return out
	}
	return nil
}

func (p *wakeChain) Deliver(round int, inbox []proto.Delivery) {
	if !p.sawSend && p.wokeRound == 0 {
		p.wokeRound = round // first callback was Deliver: message-woken
	}
	for _, d := range inbox {
		if d.Msg.Kind == 2 {
			if p.env.ID == d.Msg.A {
				p.dec = proto.Leader
			} else {
				p.dec = proto.NonLeader
			}
			p.halted = true
			return
		}
	}
	// The broadcaster itself never hears its own broadcast; it halts one
	// round after broadcasting.
	if !p.isRoot && p.wokeRound > 0 && round == p.wokeRound+1 {
		p.dec = proto.Leader
		p.halted = true
	}
}

func (p *wakeChain) Decision() proto.Decision { return p.dec }
func (p *wakeChain) Halted() bool             { return p.halted }

func TestAdversarialWakeSemantics(t *testing.T) {
	const n = 8
	assign := ids.Sequential(ids.LinearUniverse(n, 1), n)
	res, err := Run(Config{
		N: n, IDs: assign, Seed: 5, Strict: true,
		Wake: AdversarialSet{Nodes: []int{3}},
	}, func(int) Protocol { return &wakeChain{} })
	if err != nil {
		t.Fatal(err)
	}
	if res.WakeRound[3] != 1 {
		t.Fatalf("root wake round = %d", res.WakeRound[3])
	}
	// The child woken in round 1 broadcasts in round 2, waking all others.
	woken1, woken2 := 0, 0
	for u, w := range res.WakeRound {
		switch w {
		case 1:
			woken1++
		case 2:
			woken2++
		default:
			t.Fatalf("node %d woke in round %d", u, w)
		}
	}
	if woken1 != 2 || woken2 != n-2 {
		t.Fatalf("wake profile: round1=%d round2=%d", woken1, woken2)
	}
	if !res.AllAwake() {
		t.Fatal("not all awake")
	}
	if res.Messages != int64(1+n-1) {
		t.Fatalf("messages = %d", res.Messages)
	}
	if got := len(res.Leaders()); got != 1 {
		t.Fatalf("leaders = %d", got)
	}
}

// silentCountdown never sends; it decides at round 3 purely from the
// per-round Deliver tick.
type silentCountdown struct {
	dec    proto.Decision
	halted bool
}

func (p *silentCountdown) Init(proto.Env)           {}
func (p *silentCountdown) Send(int) []proto.Send    { return nil }
func (p *silentCountdown) Decision() proto.Decision { return p.dec }
func (p *silentCountdown) Halted() bool             { return p.halted }

func (p *silentCountdown) Deliver(round int, _ []proto.Delivery) {
	if round == 3 {
		p.dec = proto.NonLeader
		p.halted = true
	}
}

func TestSilentRoundTick(t *testing.T) {
	const n = 4
	res, err := Run(Config{N: n, IDs: ids.Sequential(ids.LinearUniverse(n, 1), n), Strict: true},
		func(int) Protocol { return &silentCountdown{} })
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 0 {
		t.Fatalf("messages = %d", res.Messages)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3 (decision round)", res.Rounds)
	}
	for _, d := range res.Decisions {
		if d != proto.NonLeader {
			t.Fatalf("decisions = %v", res.Decisions)
		}
	}
}

// doubleSender violates the one-message-per-port-per-round rule.
type doubleSender struct{ maxBroadcast }

func (p *doubleSender) Send(round int) []proto.Send {
	if round != 1 {
		return nil
	}
	return []proto.Send{
		{Port: 0, Msg: proto.Message{Kind: 1}},
		{Port: 0, Msg: proto.Message{Kind: 1}},
	}
}

func TestStrictCatchesDuplicatePort(t *testing.T) {
	const n = 4
	_, err := Run(Config{N: n, IDs: ids.Sequential(ids.LinearUniverse(n, 1), n), Strict: true},
		func(int) Protocol { return &doubleSender{} })
	if err == nil {
		t.Fatal("duplicate port send not caught")
	}
}

// badPort sends on an out-of-range port.
type badPort struct{ maxBroadcast }

func (p *badPort) Send(round int) []proto.Send {
	return []proto.Send{{Port: 1 << 20, Msg: proto.Message{}}}
}

func TestInvalidPortRejected(t *testing.T) {
	const n = 4
	_, err := Run(Config{N: n, IDs: ids.Sequential(ids.LinearUniverse(n, 1), n)},
		func(int) Protocol { return &badPort{} })
	if err == nil {
		t.Fatal("invalid port not caught")
	}
}

// neverHalts runs forever.
type neverHalts struct{ maxBroadcast }

func (p *neverHalts) Deliver(int, []proto.Delivery) {}
func (p *neverHalts) Halted() bool                  { return false }

func TestTimeout(t *testing.T) {
	const n = 4
	res, err := Run(Config{
		N: n, IDs: ids.Sequential(ids.LinearUniverse(n, 1), n), MaxRounds: 10,
	}, func(int) Protocol { return &neverHalts{} })
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("expected timeout")
	}
	if err := res.Validate(); err == nil {
		t.Fatal("Validate must fail on timeout")
	}
}

// coinBroadcast is a randomized protocol used to verify determinism: each
// node broadcasts with probability 1/2 and leaders are nodes that sent and
// saw no higher sender ID.
type coinBroadcast struct {
	env    proto.Env
	sends  bool
	dec    proto.Decision
	halted bool
}

func (p *coinBroadcast) Init(env proto.Env) {
	p.env = env
	p.sends = env.RNG.Bernoulli(0.5)
}

func (p *coinBroadcast) Send(round int) []proto.Send {
	if round != 1 || !p.sends {
		return nil
	}
	out := make([]proto.Send, p.env.Ports())
	for i := range out {
		out[i] = proto.Send{Port: i, Msg: proto.Message{Kind: 1, A: p.env.ID}}
	}
	return out
}

func (p *coinBroadcast) Deliver(round int, inbox []proto.Delivery) {
	best := int64(-1)
	if p.sends {
		best = p.env.ID
	}
	for _, d := range inbox {
		if d.Msg.A > best {
			best = d.Msg.A
		}
	}
	if p.sends && best == p.env.ID {
		p.dec = proto.Leader
	} else {
		p.dec = proto.NonLeader
	}
	p.halted = true
}

func (p *coinBroadcast) Decision() proto.Decision { return p.dec }
func (p *coinBroadcast) Halted() bool             { return p.halted }

func TestSeedDeterminism(t *testing.T) {
	const n = 32
	assign := ids.Random(ids.LogUniverse(n), n, xrand.New(7))
	run := func() *Result {
		res, err := Run(Config{N: n, IDs: assign, Seed: 99},
			func(int) Protocol { return &coinBroadcast{} })
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Messages != b.Messages || a.Rounds != b.Rounds {
		t.Fatalf("runs diverged: %d/%d vs %d/%d", a.Messages, a.Rounds, b.Messages, b.Rounds)
	}
	for u := range a.Decisions {
		if a.Decisions[u] != b.Decisions[u] {
			t.Fatalf("node %d decisions diverged", u)
		}
	}
}

func TestTraceRecordsGraph(t *testing.T) {
	const n = 8
	rec := trace.NewRecorder(n)
	_, err := Run(Config{
		N: n, IDs: ids.Sequential(ids.LinearUniverse(n, 1), n), Trace: rec, Strict: true,
	}, func(int) Protocol { return &maxBroadcast{} })
	if err != nil {
		t.Fatal(err)
	}
	if rec.MaxComponent() != n {
		t.Fatalf("max component = %d, want %d", rec.MaxComponent(), n)
	}
	// Every node broadcast to all n-1 others, but a port is "opened" only on
	// its first use in either direction, so opens = number of directed first
	// uses = n(n-1) minus the reverse uses = n(n-1)/2 ... each unordered link
	// carries two sends; only the first counts as an open per endpoint pair.
	// With simultaneous broadcast all sends happen in round 1; within the
	// round, sends are processed in node order, so exactly one direction of
	// each link is an "open".
	if got, want := rec.TotalPortOpens(), n*(n-1)/2; got != want {
		t.Fatalf("port opens = %d, want %d", got, want)
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := Run(Config{N: 0}, func(int) Protocol { return &maxBroadcast{} }); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := Run(Config{N: 3, IDs: ids.Assignment{1}}, func(int) Protocol { return &maxBroadcast{} }); err == nil {
		t.Fatal("ID length mismatch accepted")
	}
	if _, err := Run(Config{
		N: 3, IDs: ids.Assignment{1, 2, 3}, Wake: AdversarialSet{},
	}, func(int) Protocol { return &maxBroadcast{} }); err == nil {
		t.Fatal("empty wake set accepted")
	}
	if _, err := Run(Config{
		N: 3, IDs: ids.Assignment{1, 2, 3}, Wake: AdversarialSet{Nodes: []int{9}},
	}, func(int) Protocol { return &maxBroadcast{} }); err == nil {
		t.Fatal("invalid wake node accepted")
	}
}

// --- fault injection hooks ---

func faultInjector(t *testing.T, plan faults.Plan, n int, seed uint64) *faults.Injector {
	t.Helper()
	inj, err := faults.NewInjector(plan, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// TestFaultsCrashVictimExcluded crashes the would-be winner at round 1: it
// must send nothing, the survivors elect the runner-up, and Validate accepts
// the election restricted to survivors.
func TestFaultsCrashVictimExcluded(t *testing.T) {
	const n = 8
	assign := ids.Sequential(ids.LinearUniverse(n, 1), n)
	victim := n - 1 // sequential IDs: the max-ID node
	res, err := Run(Config{
		N: n, IDs: assign, Seed: 5, Strict: true,
		Faults: faultInjector(t, faults.Plan{Crashes: []faults.Crash{{Node: victim, At: 1}}}, n, 9),
	}, func(int) Protocol { return &maxBroadcast{} })
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Crashed; len(got) != 1 || got[0] != victim {
		t.Fatalf("Crashed = %v, want [%d]", got, victim)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := res.UniqueLeader(); got != victim-1 {
		t.Fatalf("leader = %d, want runner-up %d", got, victim-1)
	}
	if res.Decisions[victim] != proto.Undecided {
		t.Fatalf("crashed node decided %v", res.Decisions[victim])
	}
}

// TestFaultsDropAll loses every message: each node sees only itself, so all
// claim leadership and validation fails with n surviving leaders.
func TestFaultsDropAll(t *testing.T) {
	const n = 6
	assign := ids.Sequential(ids.LinearUniverse(n, 1), n)
	res, err := Run(Config{
		N: n, IDs: assign, Seed: 5,
		Faults: faultInjector(t, faults.Plan{DropRate: 1}, n, 9),
	}, func(int) Protocol { return &maxBroadcast{} })
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != res.Messages || res.Dropped == 0 {
		t.Fatalf("Dropped = %d, Messages = %d", res.Dropped, res.Messages)
	}
	if got := len(res.Leaders()); got != n {
		t.Fatalf("%d leaders, want %d", got, n)
	}
	if err := res.Validate(); err == nil {
		t.Fatal("Validate accepted an n-leader run")
	}
}

// TestFaultsDuplicateIdempotent duplicates every delivery; maxBroadcast is
// idempotent, so the election still succeeds and the counter matches.
func TestFaultsDuplicateIdempotent(t *testing.T) {
	const n = 6
	assign := ids.Sequential(ids.LinearUniverse(n, 1), n)
	res, err := Run(Config{
		N: n, IDs: assign, Seed: 5,
		Faults: faultInjector(t, faults.Plan{DupRate: 1}, n, 9),
	}, func(int) Protocol { return &maxBroadcast{} })
	if err != nil {
		t.Fatal(err)
	}
	if res.Duplicated != res.Messages {
		t.Fatalf("Duplicated = %d, want %d", res.Duplicated, res.Messages)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestFaultsZeroPlanIdentical runs the same execution with no injector and
// with a zero-plan injector: the results must be deeply identical (the
// injector consumes no engine randomness).
func TestFaultsZeroPlanIdentical(t *testing.T) {
	const n = 16
	assign := ids.Random(ids.LogUniverse(n), n, xrand.New(7))
	factory := func(int) Protocol { return &maxBroadcast{} }
	plain, err := Run(Config{N: n, IDs: assign, Seed: 42}, factory)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := Run(Config{
		N: n, IDs: assign, Seed: 42,
		Faults: faultInjector(t, faults.Plan{}, n, 1234),
	}, factory)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, faulted) {
		t.Fatalf("zero-plan run diverged:\nplain   %+v\nfaulted %+v", plain, faulted)
	}
}
