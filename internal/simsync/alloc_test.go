package simsync

import (
	"reflect"
	"testing"

	"cliquelect/internal/ids"
	"cliquelect/internal/obs"
	"cliquelect/internal/proto"
	"cliquelect/internal/xrand"
)

// chatty is a multi-round stress protocol for the reuse machinery: every
// node fans out to a window of ports each round for several rounds, so each
// round refills every inbox. It draws its sends from a proto.SendBuf, the
// hot-path idiom the engine contract permits.
type chatty struct {
	env    proto.Env
	rounds int
	sbuf   proto.SendBuf
	dec    proto.Decision
	halted bool
}

func (p *chatty) Init(env proto.Env) { p.env = env }

func (p *chatty) Send(round int) []proto.Send {
	if round > p.rounds {
		return nil
	}
	fan := min(8, p.env.Ports())
	out := p.sbuf.Take(fan)
	for i := range out {
		out[i] = proto.Send{Port: (round + i) % p.env.Ports(), Msg: proto.Message{Kind: uint8(round), A: p.env.ID}}
	}
	return out
}

func (p *chatty) Deliver(round int, inbox []proto.Delivery) {
	if round >= p.rounds {
		p.dec = proto.NonLeader
		if p.env.ID == int64(p.env.N) { // sequential IDs: max decides leader
			p.dec = proto.Leader
		}
		p.halted = true
	}
}

func (p *chatty) Decision() proto.Decision { return p.dec }
func (p *chatty) Halted() bool             { return p.halted }

// TestRoundLoopAllocBudget is the engine overhaul's regression tripwire: a
// warm-pool synchronous run must stay within a fixed allocation budget.
// The budget covers the per-run cost that legitimately scales with n
// (protocol instances, Result slices) plus slack for pool misses; it is far
// below the cost of re-growing inboxes every round (rounds × n extra
// allocations), so reintroducing per-round allocation trips it immediately.
//
// Config.Rounds is nil here, so this also pins the disabled round-trace
// probe's cost at zero allocations: its nil guards must stay branches, never
// interface conversions or closures that escape.
//
// The closure also probes a nil *obs.SpanCollector once per simulated round,
// mirroring what a caller with request tracing disabled pays: Add on a nil
// collector must stay a single branch, never an allocation — so the tracing
// subsystem rides inside the same budget the round loop is held to.
func TestRoundLoopAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; budget is enforced in the non-race build")
	}
	const n = 256
	assign := ids.Sequential(ids.LinearUniverse(n, 1), n)
	cfg := Config{N: n, IDs: assign, Seed: 9}
	factory := func(int) Protocol { return &chatty{rounds: 12} }
	// Warm every pool (arena, port-map tables).
	if _, err := Run(cfg, factory); err != nil {
		t.Fatal(err)
	}
	var disabled *obs.SpanCollector // tracing off: every probe is one nil check
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Run(cfg, factory); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 12; r++ {
			disabled.Add(obs.Span{Name: "round"})
		}
	})
	// Setup costs ~2n+20 allocations (n protocol instances, each growing
	// its SendBuf once, plus Result and engine slices); the round loop
	// itself must add none. 2.5*n leaves headroom for pool misses under GC
	// pressure while still catching any per-round regression (12 rounds ×
	// 256 inboxes ≈ 3000+ extra allocations).
	if budget := 2.5 * n; allocs > budget {
		t.Fatalf("Run allocated %.0f times per run, budget %.0f", allocs, budget)
	}
}

// TestStatsIdenticalUnderReuse pins the per-round statistics against the
// pooling machinery: the same configuration run on cold and warm pools —
// with a differently-shaped run in between to dirty the buffers — must
// produce deeply equal Results, including PerRound and PerKind, which are
// assembled from reused scratch.
func TestStatsIdenticalUnderReuse(t *testing.T) {
	const n = 64
	assign := ids.Random(ids.LogUniverse(n), n, xrand.New(5))
	cfg := Config{N: n, IDs: assign, Seed: 77}
	factory := func(int) Protocol { return &chatty{rounds: 6} }
	cold, err := Run(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the pools with a different shape.
	small := ids.Sequential(ids.LinearUniverse(8, 1), 8)
	if _, err := Run(Config{N: 8, IDs: small, Seed: 1}, func(int) Protocol { return &chatty{rounds: 2} }); err != nil {
		t.Fatal(err)
	}
	warm, err := Run(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("results diverge under pool reuse:\ncold: %+v\nwarm: %+v", cold, warm)
	}
	if len(cold.PerRound) == 0 || len(cold.PerKind) == 0 {
		t.Fatalf("stress run produced empty stats: %+v", cold)
	}
}
