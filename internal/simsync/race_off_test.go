//go:build !race

package simsync

// raceEnabled reports whether the race detector is instrumenting this
// build.
const raceEnabled = false
