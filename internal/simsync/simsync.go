// Package simsync simulates the synchronous clique of the paper (Section 2):
// n nodes connected by point-to-point links, communicating in lock-step
// rounds under the KT0 clean-network model. Setting Config.Topo replaces the
// clique wiring with an explicit general graph (internal/topo): ports then
// number 0..Degree(u)-1 and messages travel only along edges, with identical
// round semantics.
//
// Round semantics follow the standard synchronous model the paper uses: in
// round r every awake node first sends messages (over ports), then receives
// every message sent to it in round r, then updates its state. Hence a
// referee contacted in round 1 can answer in round 2, and an algorithm that
// broadcasts in its final round ends in that round (decisions are made in
// the receive phase).
//
// Wake-up follows Section 3 (simultaneous: every node starts in round 1) or
// Section 4 (adversarial: the adversary picks a nonempty subset awake in
// round 1; every other node sleeps until it receives a message, waking at
// the end of that round and acting from the next round on).
package simsync

import (
	"errors"
	"fmt"

	"cliquelect/internal/faults"
	"cliquelect/internal/ids"
	"cliquelect/internal/obs"
	"cliquelect/internal/portmap"
	"cliquelect/internal/proto"
	"cliquelect/internal/topo"
	"cliquelect/internal/trace"
	"cliquelect/internal/xrand"
)

// Protocol is the per-node logic of a synchronous algorithm.
//
// The engine calls Init exactly once when the node wakes. Then, for every
// round r in which the node is awake and not halted, it calls Send(r) at the
// start of the round and Deliver(r, inbox) at the end of the round, where
// inbox holds the messages sent to the node in round r (possibly empty; the
// slice is only valid during the call). A node woken by a message in round r
// receives Init followed by Deliver(r, inbox) and makes its first sends in
// round r+1, matching the paper's wake-at-end-of-round semantics.
//
// The engine consumes the slice returned by Send before calling the same
// instance again, so a protocol may return one reused backing buffer from
// every Send call (see proto.SendBuf) — the hot-path idiom that keeps the
// round loop allocation-free. Symmetrically, the inbox passed to Deliver is
// engine-owned scratch, valid only during the call.
//
// Once Halted returns true the engine stops invoking the node; messages
// addressed to it are still counted but dropped. Decision must be
// irrevocable once it leaves Undecided.
type Protocol interface {
	Init(env proto.Env)
	Send(round int) []proto.Send
	Deliver(round int, inbox []proto.Delivery)
	Decision() proto.Decision
	Halted() bool
}

// Factory constructs the protocol instance for a node. It is called once per
// node, in node order, before the run starts.
type Factory func(node int) Protocol

// WakePolicy chooses the set of nodes the adversary wakes at the start of
// round 1 (the paper's simplifying assumption: all adversarial wake-ups
// happen in round 1).
type WakePolicy interface {
	AwakeAtStart(n int) []int
}

// Simultaneous wakes every node in round 1 (Section 3's model).
type Simultaneous struct{}

// AwakeAtStart implements WakePolicy.
func (Simultaneous) AwakeAtStart(n int) []int {
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return all
}

// AdversarialSet wakes exactly the given nodes in round 1 (Section 4's
// model). The set must be nonempty.
type AdversarialSet struct {
	Nodes []int
}

// AwakeAtStart implements WakePolicy.
func (a AdversarialSet) AwakeAtStart(int) []int { return a.Nodes }

// RandomWakeSet returns an AdversarialSet of k distinct random nodes.
func RandomWakeSet(n, k int, rng *xrand.RNG) AdversarialSet {
	return AdversarialSet{Nodes: rng.Sample(n, k)}
}

// Config describes one synchronous execution.
type Config struct {
	// N is the number of nodes.
	N int
	// IDs assigns an ID to each node. Required, length N.
	IDs ids.Assignment
	// Ports is the port mapping; nil defaults to a LazyRandom mapping seeded
	// from Seed. Ignored when Topo is set.
	Ports portmap.Map
	// Topo, when non-nil, wires the nodes as an explicit general graph
	// instead of the default clique: node u owns Degree(u) ports and
	// messages travel only along edges. The topology's degree and diameter
	// estimate are exposed to protocols through proto.Env.
	Topo topo.Topology
	// Wake is the wake-up policy; nil defaults to Simultaneous.
	Wake WakePolicy
	// Seed drives all engine-owned randomness (default port map, node RNGs).
	Seed uint64
	// MaxRounds aborts runaway executions; 0 defaults to 4*N+64.
	MaxRounds int
	// MaxMessages aborts the run once the message count reaches this budget
	// (checked at round boundaries, so the final round may overshoot); 0
	// means unlimited.
	MaxMessages int64
	// Trace, when non-nil, records the communication graph of the run
	// (needed by the lower-bound harnesses; costs extra memory).
	Trace *trace.Recorder
	// Rounds, when non-nil, collects a per-round telemetry timeline
	// (messages, kinds, active senders, deliveries, wake-ups, decisions).
	// Purely observational: it consumes no randomness, so traced and
	// untraced executions are byte-identical in every other Result field,
	// and a nil probe costs one branch per event on the hot path.
	Rounds *obs.RoundTrace
	// Faults, when non-nil, injects crash-stop/drop/duplicate faults. Crash
	// checks run at every round boundary (instant = round number) and every
	// send passes through the injector. The injector's RNG is private, so a
	// nil injector leaves executions byte-identical to fault-free runs.
	Faults *faults.Injector
	// Strict enables protocol-violation detection (duplicate sends on one
	// port within a round). Tests enable it; large benchmark runs leave it
	// off to keep the hot path allocation-free.
	Strict bool
}

// Result summarizes one synchronous execution.
type Result struct {
	// Rounds is the paper's time complexity: the last round in which any
	// message was sent or any node woke or decided.
	Rounds int
	// Messages is the total number of messages sent (the paper's message
	// complexity).
	Messages int64
	// Words is the total CONGEST payload volume in O(log n)-bit words.
	Words int64
	// PerRound[r] is the number of messages sent in round r (index 0 unused).
	PerRound []int64
	// PerKind counts messages by payload kind.
	PerKind map[uint8]int64
	// Decisions holds each node's final output.
	Decisions []proto.Decision
	// WakeRound[u] is the round node u woke (1 for initially-awake nodes, 0
	// if it never woke).
	WakeRound []int
	// TimedOut reports that MaxRounds elapsed before quiescence.
	TimedOut bool
	// Truncated reports that MaxMessages was exhausted before quiescence.
	Truncated bool
	// Crashed lists (sorted) the nodes that crash-stopped during the run
	// (fault injection only).
	Crashed []int
	// Dropped counts messages the fault injector lost; Duplicated counts the
	// extra copies it delivered. Both are included in/excluded from Messages
	// respectively: a dropped message was still sent, a duplicate was not.
	Dropped    int64
	Duplicated int64
}

// Leaders returns the indices of nodes that decided Leader, including nodes
// that crashed after deciding.
func (r *Result) Leaders() []int {
	var out []int
	for u, d := range r.Decisions {
		if d == proto.Leader {
			out = append(out, u)
		}
	}
	return out
}

// CrashedNode reports whether node u crash-stopped during the run.
func (r *Result) CrashedNode(u int) bool {
	for _, c := range r.Crashed {
		if c == u {
			return true
		}
	}
	return false
}

// survivingLeaders is Leaders restricted to nodes that did not crash.
func (r *Result) survivingLeaders() []int {
	var out []int
	for _, u := range r.Leaders() {
		if !r.CrashedNode(u) {
			out = append(out, u)
		}
	}
	return out
}

// UniqueLeader returns the elected node index if exactly one surviving node
// decided Leader (a crashed node's output is void, per the usual crash-stop
// semantics), and -1 otherwise.
func (r *Result) UniqueLeader() int {
	ls := r.survivingLeaders()
	if len(ls) != 1 {
		return -1
	}
	return ls[0]
}

// AllAwake reports whether every node woke up during the run (the wake-up
// problem of Theorem 4.2).
func (r *Result) AllAwake() bool {
	for _, w := range r.WakeRound {
		if w == 0 {
			return false
		}
	}
	return true
}

// Validate checks implicit leader election restricted to surviving nodes:
// exactly one surviving leader, and every awake surviving node decided
// (crashed nodes owe nothing, as usual under crash-stop faults). It returns
// nil on success.
func (r *Result) Validate() error {
	if r.TimedOut {
		return errors.New("simsync: execution timed out")
	}
	if r.Truncated {
		return fmt.Errorf("simsync: run truncated at %d messages", r.Messages)
	}
	if got := len(r.survivingLeaders()); got != 1 {
		return fmt.Errorf("simsync: %d surviving leaders elected, want 1", got)
	}
	for u, d := range r.Decisions {
		if r.WakeRound[u] != 0 && d == proto.Undecided && !r.CrashedNode(u) {
			return fmt.Errorf("simsync: awake node %d did not decide", u)
		}
	}
	return nil
}

// Run executes the configured synchronous algorithm to quiescence and
// returns its measurements. It returns an error for malformed configurations
// or (under Strict) protocol violations.
func Run(cfg Config, factory Factory) (*Result, error) {
	n := cfg.N
	if n < 1 {
		return nil, fmt.Errorf("simsync: N = %d", n)
	}
	if len(cfg.IDs) != n {
		return nil, fmt.Errorf("simsync: %d IDs for %d nodes", len(cfg.IDs), n)
	}
	if cfg.Topo != nil && cfg.Topo.N() != n {
		return nil, fmt.Errorf("simsync: topology has %d nodes, config has %d", cfg.Topo.N(), n)
	}
	master := xrand.New(cfg.Seed)
	portRNG := master.Split()
	pm := cfg.Ports
	if pm == nil && cfg.Topo == nil && n >= 2 {
		lr := portmap.NewLazyRandom(n, portRNG)
		defer lr.Release() // engine-owned: nothing retains the wiring
		pm = lr
	}
	wake := cfg.Wake
	if wake == nil {
		wake = Simultaneous{}
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 4*n + 64
	}

	nodes := make([]Protocol, n)
	for u := 0; u < n; u++ {
		nodes[u] = factory(u)
	}
	res := &Result{
		PerRound:  make([]int64, 1, 64),
		Decisions: make([]proto.Decision, n),
		WakeRound: make([]int, n),
	}
	var kinds proto.KindCounts

	awake := make([]bool, n)
	envs := make([]proto.Env, n)
	// All node generators live in one flat slice; rngs must outlive the
	// round loop (protocols hold pointers into it), so it is per-run, not
	// arena scratch.
	rngs := make([]xrand.RNG, n)
	diam := 0
	if cfg.Topo != nil {
		diam = cfg.Topo.Diameter()
	}
	for u := 0; u < n; u++ {
		master.SplitInto(&rngs[u])
		envs[u] = proto.Env{ID: int64(cfg.IDs[u]), N: n, RNG: &rngs[u]}
		if cfg.Topo != nil {
			envs[u].Deg = cfg.Topo.Degree(u)
			envs[u].Diam = diam
		}
	}
	rt := cfg.Rounds
	initial := wake.AwakeAtStart(n)
	if len(initial) == 0 {
		return nil, errors.New("simsync: wake policy woke no nodes")
	}
	for _, u := range initial {
		if u < 0 || u >= n {
			return nil, fmt.Errorf("simsync: wake policy woke invalid node %d", u)
		}
		if !awake[u] {
			awake[u] = true
			res.WakeRound[u] = 1
			nodes[u].Init(envs[u])
			if rt != nil {
				rt.Woke(1)
			}
		}
	}

	// degOf and dest abstract over the two wirings: the implicit clique
	// (portmap) and an explicit topology. The closures stay out of the inner
	// loop's allocation profile; dest is never called on an invalid port.
	degOf := func(int) int { return n - 1 }
	dest := func(u, p int) (int, int) { return pm.Dest(u, p) }
	if cfg.Topo != nil {
		degOf = cfg.Topo.Degree
		dest = cfg.Topo.Dest
	}

	epKey := func(u, p int) uint64 { return uint64(u)<<32 | uint64(uint32(p)) }
	// The per-node inboxes come from the pooled arena: their capacity
	// survives both the per-round reset and the run itself, so a steady
	// sweep of same-shape runs delivers every message without allocating.
	arena := proto.GetArena(n)
	defer arena.Release()
	inbox := arena.Inboxes()
	var usedPort map[uint64]struct{} // ports that carried traffic (Trace only)
	if cfg.Trace != nil {
		usedPort = make(map[uint64]struct{})
	}
	var seenPort map[uint64]int // Strict only: port -> last round sent
	if cfg.Strict {
		seenPort = make(map[uint64]int)
	}
	lastActivity := 1

	inj := cfg.Faults
	var dead []bool // crash-stopped nodes (fault injection only)
	if inj != nil {
		dead = make([]bool, n)
	}

	for r := 1; ; r++ {
		if r > maxRounds {
			res.TimedOut = true
			break
		}
		if cfg.MaxMessages > 0 && res.Messages >= cfg.MaxMessages {
			res.Truncated = true
			break
		}
		// Fault hook: adaptive adversary tick, then crash checks, at the
		// round boundary. A node crashed at round r sends and receives
		// nothing from round r on; a sleeping victim never wakes.
		if inj != nil {
			inj.Tick(float64(r))
			for u := 0; u < n; u++ {
				if !dead[u] && inj.CrashedAt(u, float64(r)) {
					dead[u] = true
				}
			}
		}
		// Send phase.
		res.PerRound = append(res.PerRound, 0)
		for u := 0; u < n; u++ {
			if !awake[u] || nodes[u].Halted() || (dead != nil && dead[u]) {
				continue
			}
			for _, s := range nodes[u].Send(r) {
				if s.Port < 0 || s.Port >= degOf(u) {
					return nil, fmt.Errorf("simsync: node %d round %d sent on invalid port %d (degree %d)", u, r, s.Port, degOf(u))
				}
				k := epKey(u, s.Port)
				if cfg.Strict {
					if last, dup := seenPort[k]; dup && last == r {
						return nil, fmt.Errorf("simsync: node %d round %d sent twice on port %d", u, r, s.Port)
					}
					seenPort[k] = r
				}
				v, q := dest(u, s.Port)
				if cfg.Trace != nil {
					_, used := usedPort[k]
					cfg.Trace.RecordSend(r, u, v, !used)
					usedPort[k] = struct{}{}
					usedPort[epKey(v, q)] = struct{}{}
				}
				res.Messages++
				res.Words += int64(s.Msg.Words())
				res.PerRound[r]++
				kinds.Add(s.Msg.Kind)
				if rt != nil {
					rt.Send(r, u, s.Msg.Kind, s.Msg.Words())
				}
				copies := 1
				if inj != nil {
					// Fault hook: per-delivery verdict. The message counts as
					// sent either way; only its delivery fate changes.
					switch inj.OnSend(u, v, s.Msg, float64(r)) {
					case faults.Drop:
						copies = 0
					case faults.Duplicate:
						copies = 2
					}
				}
				for c := 0; c < copies; c++ {
					inbox[v] = append(inbox[v], proto.Delivery{Port: q, Msg: s.Msg})
				}
				if rt != nil && copies > 0 {
					rt.Deliver(r, copies)
				}
			}
		}
		if res.PerRound[r] > 0 {
			lastActivity = r
		}
		// Receive phase: wake sleepers, deliver, tick every awake node. The
		// inbox is reset to length zero, not dropped: next round's deliveries
		// reuse its capacity.
		for v := 0; v < n; v++ {
			box := inbox[v]
			inbox[v] = box[:0]
			if dead != nil && dead[v] {
				continue // a crashed node's inbox is lost with it
			}
			if len(box) > 0 && !awake[v] {
				awake[v] = true
				res.WakeRound[v] = r
				nodes[v].Init(envs[v])
				lastActivity = r
				if rt != nil {
					rt.Woke(r)
				}
			}
			if !awake[v] || nodes[v].Halted() {
				continue
			}
			before := nodes[v].Decision()
			nodes[v].Deliver(r, box)
			if nodes[v].Decision() != before {
				lastActivity = r
				if rt != nil {
					rt.Decided(r)
				}
			}
		}
		// Quiescence: every awake node halted or crashed. (Synchronous
		// delivery is same-round, so nothing is in flight, and a sleeping
		// node can never wake once all potential senders have halted.)
		done := true
		for u := 0; u < n; u++ {
			if awake[u] && !nodes[u].Halted() && (dead == nil || !dead[u]) {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	for u := 0; u < n; u++ {
		res.Decisions[u] = nodes[u].Decision()
	}
	res.Rounds = lastActivity
	res.PerKind = kinds.Map()
	res.Crashed = inj.Crashed()
	res.Dropped = inj.Dropped()
	res.Duplicated = inj.Duplicated()
	return res, nil
}

// Interface compliance checks.
var (
	_ WakePolicy = Simultaneous{}
	_ WakePolicy = AdversarialSet{}
)
