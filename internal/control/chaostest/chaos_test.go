package chaostest

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cliquelect/elect/client"
	"cliquelect/internal/control"
	"cliquelect/internal/xrand"
)

const ttl = 12 * time.Second // divisible by 12, so Step increments are exact

// TestBootstrapElectsOneCoordinator: a cold three-node fleet converges on
// exactly one quorum-confirmed coordinator within one TTL, every node
// agrees who it is, and the safety invariants hold.
func TestBootstrapElectsOneCoordinator(t *testing.T) {
	c, err := New(3, ttl)
	if err != nil {
		t.Fatal(err)
	}
	c.Step(ttl)
	coord := c.Coordinator()
	if coord == "" {
		t.Fatal("no coordinator after one TTL of cold start")
	}
	for _, url := range c.URLs() {
		st := c.Node(url).Status()
		if st.Coordinator != coord {
			t.Fatalf("%s believes coordinator is %q, want %q", url, st.Coordinator, coord)
		}
		if st.Epoch == 0 {
			t.Fatalf("%s still at epoch 0", url)
		}
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestKillCoordinatorReelectsWithinTTL is the headline liveness bound: the
// coordinator dies and a different node holds a newer epoch within ONE
// lease TTL — the follower probe loop (TTL/3 cadence, two strikes) beats
// lease expiry, it does not wait for it.
func TestKillCoordinatorReelectsWithinTTL(t *testing.T) {
	c, err := New(3, ttl)
	if err != nil {
		t.Fatal(err)
	}
	c.Step(ttl)
	old := c.Coordinator()
	if old == "" {
		t.Fatal("no coordinator after bootstrap")
	}
	oldEpoch := c.Node(old).Status().Epoch

	c.Kill(old)
	c.Step(ttl) // the bound under test: exactly one TTL

	var coord string
	for _, url := range c.URLs() {
		if url != old && c.Node(url).IsCoordinator() {
			coord = url
		}
	}
	if coord == "" {
		t.Fatalf("no surviving coordinator within one TTL of killing %s", old)
	}
	if epoch := c.Node(coord).Status().Epoch; epoch <= oldEpoch {
		t.Fatalf("new coordinator %s at epoch %d, want > %d", coord, epoch, oldEpoch)
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestSplitBrainFencing: the coordinator is partitioned away, the majority
// elects a successor at a newer epoch, and when the deposed side comes
// back its dispatches — stamped with the old token — are rejected, counted
// and carry the new coordinator in the error. Split-brain exists as an
// overlap window; fencing is what makes it harmless.
func TestSplitBrainFencing(t *testing.T) {
	c, err := New(3, ttl)
	if err != nil {
		t.Fatal(err)
	}
	c.Step(ttl)
	old := c.Coordinator()
	if old == "" {
		t.Fatal("no coordinator after bootstrap")
	}
	oldToken := c.Node(old).Token()

	c.Partition([]string{old}) // old alone; the other two stay connected
	c.Step(ttl)

	var successor string
	for _, url := range c.URLs() {
		if url != old && c.Node(url).IsCoordinator() {
			successor = url
		}
	}
	if successor == "" {
		t.Fatal("majority side elected nobody during the partition")
	}
	newEpoch := c.Node(successor).Status().Epoch
	if newEpoch <= oldToken {
		t.Fatalf("successor epoch %d not newer than deposed token %d", newEpoch, oldToken)
	}

	// Heal and let the deposed coordinator dispatch IMMEDIATELY, before any
	// tick lets it adopt the new epoch — the classic stale-leader race.
	c.Heal()
	err = c.DispatchChunk(old, successor)
	var stale *control.StaleTokenError
	if !errors.As(err, &stale) {
		t.Fatalf("stale dispatch accepted (err=%v), want StaleTokenError", err)
	}
	if stale.Epoch != newEpoch || stale.Coordinator != successor {
		t.Fatalf("rejection carries epoch %d coordinator %q, want %d %q",
			stale.Epoch, stale.Coordinator, newEpoch, successor)
	}
	if got := c.Node(successor).Status().FenceRejects; got != 1 {
		t.Fatalf("successor counted %d fence rejects, want 1", got)
	}

	// A fresh dispatch from the CURRENT coordinator is accepted.
	if err := c.DispatchChunk(successor, old); err != nil {
		t.Fatalf("current coordinator's dispatch rejected: %v", err)
	}

	// After the heal settles, the fleet converges on one coordinator again.
	c.Step(2 * ttl)
	if coord := c.Coordinator(); coord == "" {
		t.Fatal("no coordinator after heal")
	}
	for _, url := range c.URLs() {
		if st := c.Node(url).Status(); st.Epoch < newEpoch {
			t.Fatalf("%s stuck at epoch %d after heal, want >= %d", url, st.Epoch, newEpoch)
		}
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestQuorumLossBlocksElection: with a majority dead no epoch can be won —
// the survivor steps nobody up, and its dispatch token goes stale only
// when a real quorum mints a newer epoch, not by timeout.
func TestQuorumLossBlocksElection(t *testing.T) {
	c, err := New(3, ttl)
	if err != nil {
		t.Fatal(err)
	}
	c.Step(ttl)
	urls := c.URLs()
	coord := c.Coordinator()
	if coord == "" {
		t.Fatal("no coordinator after bootstrap")
	}
	epochs := len(c.HoldersByEpoch())

	var survivor string
	for _, url := range urls {
		if url != coord {
			c.Kill(url)
		} else {
			survivor = url
		}
	}
	c.Step(3 * ttl)
	if c.Coordinator() != "" {
		t.Fatalf("%s coordinates without a quorum", c.Coordinator())
	}
	if got := len(c.HoldersByEpoch()); got != epochs {
		t.Fatalf("new epochs minted without a quorum: %d -> %d", epochs, got)
	}
	_ = survivor

	// Revive one peer: quorum returns, somebody wins a fresh epoch.
	for _, url := range urls {
		if url != coord {
			c.Revive(url)
			break
		}
	}
	c.Step(2 * ttl)
	if c.Coordinator() == "" {
		t.Fatal("no coordinator after quorum restored")
	}
	if got := len(c.HoldersByEpoch()); got <= epochs {
		t.Fatal("quorum restored but no new epoch won")
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestRestartRemembersVotes is the rolling-restart regression: a majority
// of the fleet crash-reboots INSIDE the live lease window, and because the
// rebuilt nodes reload their vote records from the durable store, the held
// epoch can never be granted a second time — the incumbent simply keeps
// its lease.
func TestRestartRemembersVotes(t *testing.T) {
	c, err := New(3, ttl)
	if err != nil {
		t.Fatal(err)
	}
	c.Step(ttl)
	coord := c.Coordinator()
	if coord == "" {
		t.Fatal("no coordinator after bootstrap")
	}
	epoch := c.Node(coord).Status().Epoch

	// kill -9 + reboot both followers mid-lease (the coordinator keeps its
	// in-memory held-epoch log, so Check still has the evidence).
	var followers []string
	for _, url := range c.URLs() {
		if url != coord {
			followers = append(followers, url)
			if err := c.Restart(url); err != nil {
				t.Fatal(err)
			}
		}
	}

	// A restarted follower still refuses to grant the held epoch away: the
	// vote came back from the store, not from memory.
	rival := client.LeaseRequest{Epoch: epoch, Holder: "http://rival"}
	if resp := c.Node(followers[0]).HandleLease(rival, c.Clock.Now()); resp.Granted {
		t.Fatalf("restarted follower granted epoch %d away to a rival", epoch)
	}

	// The fleet settles with the SAME coordinator at the SAME epoch — a
	// rolling restart of followers must not force a re-election.
	c.Step(2 * ttl)
	if got := c.Coordinator(); got != coord {
		t.Fatalf("coordinator churned across follower restarts: %q -> %q", coord, got)
	}
	if got := c.Node(coord).Status().Epoch; got != epoch {
		t.Fatalf("epoch churned across follower restarts: %d -> %d", epoch, got)
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestAmnesiaRestartStaysSafe: both followers reboot with their durable
// state WIPED inside the lease window — the restart split-brain scenario.
// They come back at epoch 0 with empty vote records, so only the amnesia
// grace period stands between the fleet and a second quorum for the held
// epoch. At every instant there must be at most one quorum-confirmed
// coordinator and no epoch may ever acquire a second holder, and once the
// grace passes the fleet must elect again.
//
// (Cluster.Check's quorum-evidence clause does not apply here: wiping the
// stores destroys the vote *evidence*, not the safety, so the test asserts
// the holder invariants directly.)
func TestAmnesiaRestartStaysSafe(t *testing.T) {
	c, err := New(3, ttl)
	if err != nil {
		t.Fatal(err)
	}
	c.Step(ttl)
	old := c.Coordinator()
	if old == "" {
		t.Fatal("no coordinator after bootstrap")
	}
	oldEpoch := c.Node(old).Status().Epoch

	for _, url := range c.URLs() {
		if url != old {
			if err := c.RestartAmnesia(url); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Walk four TTLs in fine steps, checking the safety invariants after
	// every increment — the window where the amnesiacs' empty vote records
	// could re-elect the held epoch is only a fraction of a TTL wide.
	for i := 0; i < 48; i++ {
		c.Step(ttl / 12)
		if coords := c.Coordinators(); len(coords) > 1 {
			t.Fatalf("step %d: two quorum-confirmed coordinators %v", i, coords)
		}
		for epoch, holders := range c.HoldersByEpoch() {
			if len(holders) > 1 {
				t.Fatalf("step %d: epoch %d held by %v", i, epoch, holders)
			}
		}
	}

	// Liveness after the grace: somebody leads again, at an epoch strictly
	// beyond the pre-restart one.
	coord := c.Coordinator()
	if coord == "" {
		t.Fatal("no coordinator after the amnesia restarts settled")
	}
	if got := c.Node(coord).Status().Epoch; got <= oldEpoch {
		t.Fatalf("post-amnesia coordinator %s at epoch %d, want > %d", coord, got, oldEpoch)
	}
}

// TestChaosScriptDeterministic: the same scripted scenario on two fresh
// clusters produces byte-identical election histories — the property that
// makes every other test in this package replayable.
func TestChaosScriptDeterministic(t *testing.T) {
	script := func() (map[uint64][]string, error) {
		c, err := New(5, ttl)
		if err != nil {
			return nil, err
		}
		c.Step(ttl)
		c.Kill(c.Coordinator())
		c.Step(ttl)
		c.Partition([]string{c.URLs()[0], c.URLs()[1]})
		c.Step(2 * ttl)
		c.Heal()
		c.Step(ttl)
		if err := c.Check(); err != nil {
			return nil, err
		}
		return c.HoldersByEpoch(), nil
	}
	a, err := script()
	if err != nil {
		t.Fatal(err)
	}
	b, err := script()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same script, different histories:\n%v\n%v", a, b)
	}
}

// TestSeededRandomChaos: a seeded storm of kills, revives, partitions and
// heals. After every event the safety invariants must hold — one holder
// per epoch, consistent votes — and once the storm ends and a majority is
// back, the fleet must elect again and fence every stale token.
func TestSeededRandomChaos(t *testing.T) {
	const nodes = 5
	c, err := New(nodes, ttl)
	if err != nil {
		t.Fatal(err)
	}
	urls := c.URLs()
	rng := xrand.New(0xC4A05)
	down := map[string]bool{}

	c.Step(ttl)
	for event := 0; event < 40; event++ {
		switch rng.Intn(5) {
		case 0: // kill someone, but never below quorum
			if len(down) < nodes/2 {
				url := urls[rng.Intn(nodes)]
				if !down[url] {
					down[url] = true
					c.Kill(url)
				}
			}
		case 1: // revive someone
			for url := range down {
				delete(down, url)
				c.Revive(url)
				break
			}
		case 2: // partition a random minority off
			c.Partition([]string{urls[rng.Intn(nodes)], urls[rng.Intn(nodes)]})
		case 3:
			c.Heal()
		case 4: // dispatch between two random live nodes; stale must bounce
			from, to := urls[rng.Intn(nodes)], urls[rng.Intn(nodes)]
			if err := c.DispatchChunk(from, to); err != nil {
				var stale *control.StaleTokenError
				if !errors.As(err, &stale) && c.reachable(from, to) {
					t.Fatalf("event %d: dispatch %s->%s failed oddly: %v", event, from, to, err)
				}
			}
		}
		c.Step(ttl / 2)
		if err := c.Check(); err != nil {
			t.Fatalf("event %d: %v", event, err)
		}
	}

	// Storm over: everyone back, fabric healed, one coordinator expected.
	for url := range down {
		c.Revive(url)
	}
	c.Heal()
	c.Step(2 * ttl)
	coord := c.Coordinator()
	if coord == "" {
		t.Fatal("no coordinator after the storm")
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	// Every stale node's dispatch bounces; the coordinator's is accepted.
	for _, url := range urls {
		if c.Node(url).Token() < c.Node(coord).Token() {
			if err := c.DispatchChunk(url, coord); err == nil {
				t.Fatalf("stale dispatch from %s accepted", url)
			}
		}
	}
	if err := c.DispatchChunk(coord, urls[0]); err != nil {
		t.Fatalf("coordinator dispatch rejected: %v", err)
	}
}
