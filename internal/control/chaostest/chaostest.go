// Package chaostest is the deterministic chaos harness for the control
// plane: a fleet of real control.Nodes driven entirely on virtual time over
// a scriptable in-memory network. Tests kill daemons, partition the fabric
// and heal it at exact instants, then assert the invariants that make
// lease-based coordination sound:
//
//   - exactly one holder per epoch (the quorum at-most-once-per-epoch rule),
//   - no chunk carrying a stale fencing token is ever accepted,
//   - a dead coordinator is replaced within one lease TTL.
//
// Nothing here sleeps and nothing reads the wall clock: Cluster.Step
// advances a virtual clock in fixed increments and ticks every live node in
// sorted URL order, and lease RPCs are synchronous function calls, so a
// scenario replays identically on every run and under -race. The dogfooded
// elect.Run inside each campaign is the real protocol on the deterministic
// async simulator engine — a pure function of (n, seed), which is exactly
// why the control plane can use it (on EngineLive, goroutine scheduling
// picks message order, and two candidates running the same election could
// crown different leaders).
//
// Each node carries an in-memory Store that outlives its Node object, the
// harness's stand-in for a daemon's -state-file: Kill/Revive pause a node
// with its memory intact, Restart crash-reboots it from the store alone,
// and RestartAmnesia reboots it with the store wiped — the rolling-restart
// scenario the amnesia grace period exists for.
package chaostest

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"cliquelect/elect/client"
	"cliquelect/internal/control"
)

// Clock is the harness's virtual time source (a control.Clock). The zero
// value starts at a fixed, arbitrary instant; only differences matter.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock starts virtual time at a fixed epoch.
func NewClock() *Clock {
	return &Clock{now: time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)}
}

// Now is the current virtual instant.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves virtual time forward.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// memStore is the harness's durable store: in-memory control.State that
// outlives the Node object it serves, so Restart can rebuild a node from
// exactly what a real daemon's -state-file would hold.
type memStore struct {
	mu sync.Mutex
	st control.State
}

func (s *memStore) Load() (control.State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return copyState(s.st), nil
}

func (s *memStore) Save(st control.State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st = copyState(st)
	return nil
}

func copyState(st control.State) control.State {
	out := control.State{Epoch: st.Epoch, Holder: st.Holder,
		Granted: make(map[uint64]string, len(st.Granted))}
	for e, h := range st.Granted {
		out.Granted[e] = h
	}
	return out
}

// Cluster is a virtual fleet: one control.Node per URL, all sharing one
// virtual clock, wired through a scriptable network.
type Cluster struct {
	TTL   time.Duration
	Clock *Clock
	urls  []string
	nodes map[string]*control.Node

	// stores holds each node's durable vote state; a nil entry marks a node
	// whose "disk" was lost to RestartAmnesia, running storeless ever since.
	stores map[string]*memStore

	mu     sync.Mutex
	down   map[string]bool
	groups map[string]int // partition id per URL; nil = fully connected
}

// New builds a cluster of n nodes named node-0 .. node-(n-1), with the
// given lease TTL. Every node gets a durable (in-memory) store, so there is
// no startup amnesia grace and elections start immediately.
func New(n int, ttl time.Duration) (*Cluster, error) {
	c := &Cluster{
		TTL:    ttl,
		Clock:  NewClock(),
		nodes:  make(map[string]*control.Node, n),
		stores: make(map[string]*memStore, n),
		down:   make(map[string]bool, n),
	}
	for i := 0; i < n; i++ {
		c.urls = append(c.urls, fmt.Sprintf("http://node-%d", i))
	}
	sort.Strings(c.urls)
	for _, url := range c.urls {
		c.stores[url] = &memStore{}
		node, err := c.build(url)
		if err != nil {
			return nil, err
		}
		c.nodes[url] = node
	}
	return c, nil
}

// build constructs a fresh control.Node for url over the cluster fabric,
// loading whatever its store currently holds (nil store = storeless, so the
// node observes control's amnesia grace period).
func (c *Cluster) build(url string) (*control.Node, error) {
	cfg := control.Config{
		Self:      url,
		Peers:     c.urls,
		LeaseTTL:  c.TTL,
		Transport: link{c: c, from: url},
		Clock:     c.Clock,
	}
	if s := c.stores[url]; s != nil {
		cfg.Store = s
	}
	return control.New(cfg)
}

// URLs is the sorted node list.
func (c *Cluster) URLs() []string { return append([]string(nil), c.urls...) }

// Node returns one node by URL.
func (c *Cluster) Node(url string) *control.Node { return c.nodes[url] }

// Kill takes a node off the network and stops ticking it. Its in-memory
// state (lease copy, epoch, token) survives for Revive, so the pair models
// a process that is wedged but alive — a SIGSTOP, a long GC pause, a hung
// event loop — NOT a kill -9. For crash-and-reboot semantics, where memory
// is lost and only the durable store remains, use Restart.
func (c *Cluster) Kill(url string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.down[url] = true
}

// Revive resumes a Killed node exactly where it stopped.
func (c *Cluster) Revive(url string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.down, url)
}

// Restart crash-reboots a node — real kill -9 semantics: the old Node
// object is discarded with ALL in-memory state (lease copy, held-epoch log,
// counters) and a fresh one is rebuilt from the durable store alone,
// exactly like a daemon rebooting with its -state-file. The node returns to
// the network if it was Killed.
func (c *Cluster) Restart(url string) error {
	node, err := c.build(url)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes[url] = node
	delete(c.down, url)
	return nil
}

// RestartAmnesia crash-reboots a node with its durable store LOST — the
// disk is gone, and the node runs storeless from here on, protected only by
// control's amnesia grace period (no votes, no campaigns for one TTL after
// each reboot). This is the rolling-restart scenario that would otherwise
// mint a second quorum for an already-held epoch.
func (c *Cluster) RestartAmnesia(url string) error {
	c.stores[url] = nil
	return c.Restart(url)
}

// Partition splits the network into the given groups: nodes in different
// groups cannot reach each other. Unlisted nodes form one implicit extra
// group together. Heal undoes it.
func (c *Cluster) Partition(groups ...[]string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.groups = make(map[string]int, len(c.urls))
	for id, g := range groups {
		for _, url := range g {
			c.groups[url] = id + 1
		}
	}
}

// Heal reconnects everything.
func (c *Cluster) Heal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.groups = nil
}

// reachable reports whether from can currently deliver to to.
func (c *Cluster) reachable(from, to string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down[from] || c.down[to] {
		return false
	}
	if c.groups == nil {
		return true
	}
	return c.groups[from] == c.groups[to]
}

func (c *Cluster) alive(url string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.down[url]
}

// Step advances virtual time by d in TTL/12 increments, ticking every live
// node in sorted URL order after each increment — fine enough that no
// node's TTL/6 campaign throttle can skip a whole interval.
func (c *Cluster) Step(d time.Duration) {
	inc := c.TTL / 12
	if inc <= 0 {
		inc = time.Millisecond
	}
	for elapsed := time.Duration(0); elapsed < d; elapsed += inc {
		c.Clock.Advance(inc)
		now := c.Clock.Now()
		for _, url := range c.urls {
			if c.alive(url) {
				c.nodes[url].Tick(now)
			}
		}
	}
}

// Coordinator returns the URL of the node currently holding a
// quorum-confirmed lease, or "" when nobody leads. Dead nodes still count:
// a killed coordinator's in-memory lease is exactly the overlap window the
// fencing invariant exists for.
func (c *Cluster) Coordinator() string {
	if coords := c.Coordinators(); len(coords) > 0 {
		return coords[0]
	}
	return ""
}

// Coordinators returns every node currently holding a quorum-confirmed
// lease. The safety theorem is that this never has two entries; the
// restart tests assert it at every instant.
func (c *Cluster) Coordinators() []string {
	var out []string
	for _, url := range c.urls {
		if c.nodes[url].IsCoordinator() {
			out = append(out, url)
		}
	}
	return out
}

// DispatchChunk simulates the coordinator-side dispatch path: from stamps
// its current fencing token on a chunk and to fences it, exactly as
// distrib stamps ChunkRequest.Fence and the service's CheckFence decides
// the 409. The returned error is to's verdict (nil = accepted).
func (c *Cluster) DispatchChunk(from, to string) error {
	if !c.reachable(from, to) {
		return fmt.Errorf("chaostest: %s cannot reach %s", from, to)
	}
	return c.nodes[to].CheckFence(c.nodes[from].Token())
}

// HoldersByEpoch merges every node's quorum-held epochs into epoch →
// holders. The one-holder-per-epoch invariant is that every value has
// length 1; Check verifies it.
func (c *Cluster) HoldersByEpoch() map[uint64][]string {
	held := make(map[uint64][]string)
	for _, url := range c.urls {
		for _, epoch := range c.nodes[url].Held() {
			held[epoch] = append(held[epoch], url)
		}
	}
	return held
}

// Check asserts the cluster-wide safety invariants and returns the first
// violation (nil = all hold):
//
//   - at most one holder per epoch, across every node's Held log,
//   - quorum evidence: every held epoch's holder gathered a majority of the
//     fleet's votes for that epoch (losing candidates' own votes are normal
//     and don't count against it).
func (c *Cluster) Check() error {
	held := c.HoldersByEpoch()
	for epoch, holders := range held {
		if len(holders) != 1 {
			return fmt.Errorf("epoch %d held by %d nodes: %v", epoch, len(holders), holders)
		}
	}
	quorum := len(c.urls)/2 + 1
	for epoch, holders := range held {
		votes := 0
		for _, url := range c.urls {
			if c.nodes[url].Grants()[epoch] == holders[0] {
				votes++
			}
		}
		if votes < quorum {
			return fmt.Errorf("epoch %d held by %s on %d/%d votes, quorum is %d",
				epoch, holders[0], votes, len(c.urls), quorum)
		}
	}
	return nil
}

// link is one node's view of the cluster network: a control.Transport
// whose RPCs are synchronous in-memory calls gated on the kill/partition
// script. Contexts are ignored — virtual time has no timeouts.
type link struct {
	c    *Cluster
	from string
}

func (l link) Probe(ctx context.Context, peer string) error {
	if !l.c.reachable(l.from, peer) {
		return fmt.Errorf("chaostest: %s cannot reach %s", l.from, peer)
	}
	return nil
}

func (l link) Lease(ctx context.Context, peer string, req client.LeaseRequest) (*client.LeaseResponse, error) {
	if !l.c.reachable(l.from, peer) {
		return nil, fmt.Errorf("chaostest: %s cannot reach %s", l.from, peer)
	}
	resp := l.c.nodes[peer].HandleLease(req, l.c.Clock.Now())
	return &resp, nil
}
