package control

import (
	"context"
	"fmt"
	"sync"

	"cliquelect/elect/client"
)

// httpTransport is the production Transport: probes are GET /healthz and
// lease RPCs POST /v1/lease, through the same elect/client the dispatch
// fabric uses (retry policy included — lease requests are idempotent, a
// repeated grant of the same epoch to the same holder is a renewal).
type httpTransport struct {
	opts []client.ClientOption

	mu      sync.Mutex
	clients map[string]*client.Client
}

// NewHTTPTransport builds the production transport. opts apply to every
// peer client (test transports, retry tuning).
func NewHTTPTransport(opts ...client.ClientOption) Transport {
	return &httpTransport{opts: opts, clients: make(map[string]*client.Client)}
}

func (t *httpTransport) client(peer string) *client.Client {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.clients[peer]
	if !ok {
		c = client.New(peer, t.opts...)
		t.clients[peer] = c
	}
	return c
}

func (t *httpTransport) Probe(ctx context.Context, peer string) error {
	h, err := t.client(peer).Health(ctx)
	if err != nil {
		return err
	}
	if !h.OK {
		return fmt.Errorf("control: peer %s reports not ok", peer)
	}
	return nil
}

func (t *httpTransport) Lease(ctx context.Context, peer string, req client.LeaseRequest) (*client.LeaseResponse, error) {
	return t.client(peer).Lease(ctx, req)
}
