package control

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"cliquelect/elect/client"
)

// nopTransport satisfies Transport for state-machine unit tests that never
// tick; every RPC fails, which a Node must tolerate anyway.
type nopTransport struct{}

func (nopTransport) Probe(ctx context.Context, peer string) error { return errors.New("nop") }
func (nopTransport) Lease(ctx context.Context, peer string, req client.LeaseRequest) (*client.LeaseResponse, error) {
	return nil, errors.New("nop")
}

// fixedClock pins Now for lease-expiry arithmetic.
type fixedClock struct{ t time.Time }

func (c *fixedClock) Now() time.Time { return c.t }

func newTestNode(t *testing.T, self string, peers ...string) (*Node, *fixedClock) {
	t.Helper()
	clock := &fixedClock{t: time.Unix(1000, 0)}
	n, err := New(Config{Self: self, Peers: peers, Transport: nopTransport{}, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	// Storeless nodes observe the amnesia grace period — no votes for one
	// TTL after startup. These are steady-state tests, so start past it.
	clock.t = clock.t.Add(n.ttl)
	return n, clock
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Transport: nopTransport{}}); err == nil {
		t.Fatal("missing Self accepted")
	}
	if _, err := New(Config{Self: "a"}); err == nil {
		t.Fatal("missing Transport accepted")
	}
	if _, err := New(Config{Self: "a", Transport: nopTransport{}, Spec: "no-such-spec"}); err == nil {
		t.Fatal("unknown spec accepted")
	}
	if _, err := New(Config{Self: "a", Peers: []string{"b", ""}, Transport: nopTransport{}}); err == nil {
		t.Fatal("empty peer URL accepted")
	}
}

func TestPeerNormalization(t *testing.T) {
	n, _ := newTestNode(t, "http://b", "http://c", "http://a", "http://c", "http://b")
	want := []string{"http://a", "http://b", "http://c"}
	got := n.Peers()
	if !sort.StringsAreSorted(got) || len(got) != len(want) {
		t.Fatalf("peers = %v, want sorted %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("peers = %v, want %v", got, want)
		}
	}
	if q := n.quorum(); q != 2 {
		t.Fatalf("quorum of 3 = %d, want 2", q)
	}
}

func TestHandleLeaseGrantRenewReject(t *testing.T) {
	n, clock := newTestNode(t, "http://a", "http://b", "http://c")
	now := clock.Now()

	// Fresh grant for a newer epoch.
	resp := n.HandleLease(client.LeaseRequest{Epoch: 1, Holder: "http://b"}, now)
	if !resp.Granted || resp.Epoch != 1 || resp.Holder != "http://b" {
		t.Fatalf("fresh grant: %+v", resp)
	}
	// Renewal: same epoch, same holder.
	resp = n.HandleLease(client.LeaseRequest{Epoch: 1, Holder: "http://b"}, now.Add(time.Second))
	if !resp.Granted {
		t.Fatalf("renewal rejected: %+v", resp)
	}
	// Same epoch, different holder: rejected — the at-most-once rule.
	resp = n.HandleLease(client.LeaseRequest{Epoch: 1, Holder: "http://c"}, now)
	if resp.Granted {
		t.Fatal("second holder granted the same epoch")
	}
	if resp.Epoch != 1 || resp.Holder != "http://b" {
		t.Fatalf("rejection must report the standing vote, got %+v", resp)
	}
	// Older epoch: rejected.
	if resp := n.HandleLease(client.LeaseRequest{Epoch: 0, Holder: "http://c"}, now); resp.Granted {
		t.Fatal("stale epoch granted")
	}
	// Empty holder: rejected even for a newer epoch.
	if resp := n.HandleLease(client.LeaseRequest{Epoch: 9}, now); resp.Granted {
		t.Fatal("empty holder granted")
	}
	// Newer epoch from another candidate: granted, vote moves on.
	if resp := n.HandleLease(client.LeaseRequest{Epoch: 2, Holder: "http://c"}, now); !resp.Granted {
		t.Fatalf("newer epoch rejected: %+v", resp)
	}
	st := n.Status()
	if st.Grants != 2 || st.Renewals != 1 || st.Rejects != 3 {
		t.Fatalf("counters grants=%d renewals=%d rejects=%d, want 2/1/3",
			st.Grants, st.Renewals, st.Rejects)
	}
	votes := n.Grants()
	if votes[1] != "http://b" || votes[2] != "http://c" {
		t.Fatalf("vote record %v", votes)
	}
}

func TestGrantingAwayDeposesCoordinator(t *testing.T) {
	n, clock := newTestNode(t, "http://a", "http://b", "http://c")
	now := clock.Now()
	// Make a the coordinator by hand: self-vote then quorum-confirm.
	if resp := n.HandleLease(client.LeaseRequest{Epoch: 1, Holder: "http://a"}, now); !resp.Granted {
		t.Fatal("self vote rejected")
	}
	n.mu.Lock()
	n.leading = true
	n.expires = now.Add(n.ttl)
	n.mu.Unlock()
	if !n.IsCoordinator() {
		t.Fatal("not coordinator after quorum")
	}
	// A newer epoch granted to someone else deposes us immediately.
	if resp := n.HandleLease(client.LeaseRequest{Epoch: 2, Holder: "http://b"}, now); !resp.Granted {
		t.Fatal("newer epoch rejected")
	}
	if n.IsCoordinator() {
		t.Fatal("still coordinator after granting a newer epoch away")
	}
	if st := n.Status(); st.Stepdowns != 1 {
		t.Fatalf("stepdowns = %d, want 1", st.Stepdowns)
	}
}

func TestCheckFence(t *testing.T) {
	n, clock := newTestNode(t, "http://a", "http://b", "http://c")
	now := clock.Now()
	n.HandleLease(client.LeaseRequest{Epoch: 5, Holder: "http://b"}, now)

	if err := n.CheckFence(0); err != nil {
		t.Fatalf("legacy token 0 rejected: %v", err)
	}
	if err := n.CheckFence(5); err != nil {
		t.Fatalf("current token rejected: %v", err)
	}
	if err := n.CheckFence(7); err != nil {
		t.Fatalf("future token rejected: %v", err)
	}
	err := n.CheckFence(4)
	var stale *StaleTokenError
	if !errors.As(err, &stale) {
		t.Fatalf("stale token accepted: %v", err)
	}
	if stale.Token != 4 || stale.Epoch != 5 || stale.Coordinator != "http://b" {
		t.Fatalf("stale error fields %+v", stale)
	}
	if st := n.Status(); st.FenceRejects != 1 {
		t.Fatalf("fenceRejects = %d, want 1", st.FenceRejects)
	}
}

func TestLeaseExpiryDemotes(t *testing.T) {
	n, clock := newTestNode(t, "http://a", "http://b", "http://c")
	now := clock.Now()
	n.HandleLease(client.LeaseRequest{Epoch: 1, Holder: "http://a"}, now)
	n.mu.Lock()
	n.leading = true
	n.expires = now.Add(n.ttl)
	n.mu.Unlock()

	st := n.Status()
	if st.Role != RoleCoordinator || st.Coordinator != "http://a" {
		t.Fatalf("status before expiry: %+v", st)
	}
	clock.t = now.Add(n.ttl + time.Second)
	if n.IsCoordinator() {
		t.Fatal("coordinator past expiry")
	}
	st = n.Status()
	if st.Role != RoleWorker || st.Coordinator != "" {
		t.Fatalf("status after expiry: %+v", st)
	}
}

func TestElectWinnerDeterministicAndLiveBound(t *testing.T) {
	n, _ := newTestNode(t, "http://a", "http://b", "http://c")
	live := []string{"http://c", "http://a", "http://b"}
	first := n.electWinner(append([]string(nil), live...), 3)
	for i := 0; i < 5; i++ {
		if w := n.electWinner(append([]string(nil), live...), 3); w != first {
			t.Fatalf("winner flapped: %q then %q", first, w)
		}
	}
	found := false
	for _, url := range live {
		if url == first {
			found = true
		}
	}
	if !found {
		t.Fatalf("winner %q not in the live set %v", first, live)
	}
	// A lone candidate always wins its own view.
	if w := n.electWinner([]string{"http://a"}, 9); w != "http://a" {
		t.Fatalf("singleton view winner %q", w)
	}
}

// memStore is an in-memory Store for restart tests: state survives node
// rebuilds, and Save can be forced to fail to exercise the
// persist-before-grant rule.
type memStore struct {
	st   State
	fail bool
}

func (s *memStore) Load() (State, error) { return copyState(s.st), nil }

func (s *memStore) Save(st State) error {
	if s.fail {
		return errors.New("disk full")
	}
	s.st = copyState(st)
	return nil
}

func copyState(st State) State {
	out := State{Epoch: st.Epoch, Holder: st.Holder, Granted: make(map[uint64]string, len(st.Granted))}
	for e, h := range st.Granted {
		out.Granted[e] = h
	}
	return out
}

// TestVotesSurviveRestart is the rolling-restart split-brain regression: a
// node rebuilt from its Store must refuse to grant an epoch it already
// voted away before the crash.
func TestVotesSurviveRestart(t *testing.T) {
	clock := &fixedClock{t: time.Unix(1000, 0)}
	store := &memStore{}
	cfg := Config{Self: "http://a", Peers: []string{"http://b", "http://c"},
		Transport: nopTransport{}, Clock: clock, Store: store}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !n.HandleLease(client.LeaseRequest{Epoch: 1, Holder: "http://b"}, clock.Now()).Granted {
		t.Fatal("fresh grant rejected")
	}
	if !n.HandleLease(client.LeaseRequest{Epoch: 2, Holder: "http://c"}, clock.Now()).Granted {
		t.Fatal("newer grant rejected")
	}

	// kill -9 + reboot: a brand-new Node over the same Store.
	n, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := n.Status(); st.Epoch != 2 || st.Coordinator != "http://c" {
		t.Fatalf("restarted node forgot its state: %+v", st)
	}
	if votes := n.Grants(); votes[1] != "http://b" || votes[2] != "http://c" {
		t.Fatalf("restarted node forgot its votes: %v", votes)
	}
	// The exact split-brain seed: re-granting a pre-crash epoch to a rival.
	if n.HandleLease(client.LeaseRequest{Epoch: 2, Holder: "http://rival"}, clock.Now()).Granted {
		t.Fatal("restarted node granted an already-voted epoch to a rival")
	}
	// With a Store there is no amnesia grace: a genuinely newer epoch is
	// granted immediately after the restart.
	if !n.HandleLease(client.LeaseRequest{Epoch: 3, Holder: "http://b"}, clock.Now()).Granted {
		t.Fatal("restarted node refused a newer epoch")
	}
}

// TestPersistFailureRefusesGrant: a vote that cannot be made durable is not
// cast — the grant is refused and local state stays untouched.
func TestPersistFailureRefusesGrant(t *testing.T) {
	clock := &fixedClock{t: time.Unix(1000, 0)}
	store := &memStore{fail: true}
	n, err := New(Config{Self: "http://a", Peers: []string{"http://b", "http://c"},
		Transport: nopTransport{}, Clock: clock, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if n.HandleLease(client.LeaseRequest{Epoch: 1, Holder: "http://b"}, clock.Now()).Granted {
		t.Fatal("grant acknowledged without durable vote")
	}
	if st := n.Status(); st.Epoch != 0 || st.Grants != 0 || st.Rejects != 1 {
		t.Fatalf("state mutated by refused grant: %+v", st)
	}
	store.fail = false
	if !n.HandleLease(client.LeaseRequest{Epoch: 1, Holder: "http://b"}, clock.Now()).Granted {
		t.Fatal("grant refused after store recovered")
	}
}

// TestAmnesiaGraceRefusesVotes: a storeless node casts no votes and runs no
// campaigns for one full TTL after startup — the degraded-mode guard
// against forgetting pre-restart votes.
func TestAmnesiaGraceRefusesVotes(t *testing.T) {
	clock := &fixedClock{t: time.Unix(1000, 0)}
	n, err := New(Config{Self: "http://a", Transport: nopTransport{}, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if n.HandleLease(client.LeaseRequest{Epoch: 1, Holder: "http://b"}, clock.Now()).Granted {
		t.Fatal("vote cast inside the amnesia grace period")
	}
	// A single-node fleet would win its own campaign instantly — but not
	// during the grace.
	n.campaign(clock.Now())
	if n.IsCoordinator() || n.Token() != 0 {
		t.Fatal("campaign won inside the amnesia grace period")
	}
	clock.t = clock.t.Add(n.ttl)
	n.campaign(clock.Now())
	if !n.IsCoordinator() || n.Token() != 1 {
		t.Fatalf("campaign after grace: coordinator=%v token=%d, want true/1",
			n.IsCoordinator(), n.Token())
	}
}

// probeOnlyTransport reaches every peer but fails every lease RPC — a
// campaigner under it wins the pre-vote and the election, then collects
// zero grants.
type probeOnlyTransport struct{}

func (probeOnlyTransport) Probe(ctx context.Context, peer string) error { return nil }
func (probeOnlyTransport) Lease(ctx context.Context, peer string, req client.LeaseRequest) (*client.LeaseResponse, error) {
	return nil, errors.New("lease RPCs down")
}

// TestFailedCampaignKeepsStatusClean: a campaign that cannot assemble a
// quorum must leave Status/Token reporting the OLD lease — the staged
// self-vote must not surface this node as coordinator to /v1/coordinator
// or the 409 redirects while leading is false.
func TestFailedCampaignKeepsStatusClean(t *testing.T) {
	peers := []string{"http://a", "http://b", "http://c"}
	clock := &fixedClock{t: time.Unix(1000, 0)}
	// The election winner for this live view is deterministic; BE that node,
	// so the campaign passes the winner gate and reaches the doomed round.
	scout, err := New(Config{Self: peers[0], Peers: peers, Transport: probeOnlyTransport{}, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	winner := scout.electWinner(append([]string(nil), peers...), 1)
	n, err := New(Config{Self: winner, Peers: peers, Transport: probeOnlyTransport{}, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	clock.t = clock.t.Add(n.ttl) // past the storeless grace

	n.campaign(clock.Now())
	if st := n.Status(); st.Role != RoleWorker || st.Coordinator != "" || st.Epoch != 0 {
		t.Fatalf("failed campaign leaked into status: %+v", st)
	}
	if n.Token() != 0 {
		t.Fatalf("failed campaign inflated the fencing token to %d", n.Token())
	}
	// The staged vote itself stands: epoch 1 is promised to this node.
	if n.HandleLease(client.LeaseRequest{Epoch: 1, Holder: "http://rival"}, clock.Now()).Granted {
		t.Fatal("staged epoch granted away to a rival")
	}
	if votes := n.Grants(); votes[1] != winner {
		t.Fatalf("staged vote record %v, want epoch 1 → %s", votes, winner)
	}
}

func TestElectIDsIsPermutation(t *testing.T) {
	ids := electIDs(8, 42)
	seen := make(map[int64]bool, 8)
	for _, id := range ids {
		if id < 1 || id > 8 || seen[id] {
			t.Fatalf("electIDs not a permutation of 1..8: %v", ids)
		}
		seen[id] = true
	}
	again := electIDs(8, 42)
	for i := range ids {
		if ids[i] != again[i] {
			t.Fatalf("electIDs not deterministic: %v vs %v", ids, again)
		}
	}
}
