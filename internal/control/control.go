// Package control is the electd fleet's self-electing control plane: the
// daemons that serve leader elections use the public elect API to elect
// their own dispatch coordinator, so the serving system is kept alive by
// the very algorithms it serves.
//
// Each daemon runs a Node over a static peer list. Membership liveness
// rides the existing /healthz probes; when the coordinator dies (or was
// never chosen), the live peers run a real election — elect.Run of the
// asyncafekgafni protocol on the deterministic simulator engine, whose
// outcome is a pure function of (n, seed) — and the computed winner
// campaigns for an epoch-numbered lease. A lease is held only with a quorum of grants
// (majority of the configured peer set, the campaigner's own vote
// included), and each node votes each epoch to at most one holder, so at
// most one node can ever hold a given epoch: split-brain cannot mint two
// coordinators at the same epoch.
//
// That rule is only as durable as the votes: a node that forgets its vote
// record across a restart could grant an already-held epoch a second time.
// So votes are persisted through Config.Store (Raft-style, before the grant
// is acknowledged) and reloaded on startup; a node running without a Store
// compensates with an amnesia grace period — it casts no votes and runs no
// campaigns for one full LeaseTTL after startup, long enough for any lease
// its previous incarnation may have granted to expire, which keeps two
// quorum-confirmed coordinators from ever being live at once.
//
// The epoch doubles as a monotonic fencing token, stamped on every chunk a
// coordinator dispatches (internal/distrib) and checked by every worker
// (CheckFence, wired through internal/jobs and internal/service): a deposed
// coordinator that wakes up from a partition and keeps dispatching is
// rejected with 409 + the current epoch, the split-brain discipline of the
// ZooKeeper/etcd lineage. Overlap windows are expected — an old lease may
// still be ticking down while a new epoch is already live — and fencing,
// not clock trust, is what makes them harmless.
//
// Nodes are explicitly tickable state machines: production wraps Tick in
// the Run loop on a wall-clock ticker, while the deterministic chaos
// harness (internal/control/chaostest) drives Tick from a virtual clock
// over a scriptable in-memory transport, replaying kills and partitions at
// exact instants.
package control

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"cliquelect/elect"
	"cliquelect/elect/client"
	"cliquelect/internal/obs"
	"cliquelect/internal/xrand"
)

// Role is a node's current position in the fleet.
type Role string

// Roles. A node is a coordinator only while it holds a quorum-confirmed,
// unexpired lease; everything else is a worker.
const (
	RoleWorker      Role = "worker"
	RoleCoordinator Role = "coordinator"
)

// Defaults.
const (
	// DefaultLeaseTTL is the lease lifetime when Config.LeaseTTL is zero.
	// Renewals go out every TTL/3 and two consecutive failed holder probes
	// (also TTL/3 apart) trigger re-election, so a dead coordinator is
	// replaced within one TTL.
	DefaultLeaseTTL = 10 * time.Second
	// DefaultSpec is the election protocol used to pick campaign winners:
	// asynchronous, fault-tolerant, and deterministic in (n, seed) on the
	// simulator engine, so every candidate with the same live view computes
	// the same winner.
	DefaultSpec = "asyncafekgafni"
	// suspectThreshold is how many consecutive failed holder probes a
	// follower tolerates before treating the coordinator as dead.
	suspectThreshold = 2
)

// Clock abstracts time for the chaos harness; nil Config.Clock means wall
// time.
type Clock interface{ Now() time.Time }

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Transport is the control plane's view of the network: liveness probes
// and lease RPCs. Production uses NewHTTPTransport (the /healthz and
// POST /v1/lease endpoints); the chaos harness substitutes a scriptable
// in-memory fabric.
type Transport interface {
	// Probe reports nil when the peer is reachable and serving.
	Probe(ctx context.Context, peer string) error
	// Lease delivers a lease request to the peer and returns its verdict.
	Lease(ctx context.Context, peer string, req client.LeaseRequest) (*client.LeaseResponse, error)
}

// Config assembles a Node.
type Config struct {
	// Self is this daemon's URL as the peers know it. Added to Peers if
	// absent. Required.
	Self string
	// Peers lists every daemon in the fleet, self included. Quorum is a
	// majority of this set, so it must be the same list on every daemon.
	Peers []string
	// LeaseTTL is the lease lifetime; 0 means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Transport carries probes and lease RPCs. Required.
	Transport Transport
	// Clock supplies the node's time; nil means wall time. The chaos
	// harness injects a virtual clock here.
	Clock Clock
	// Store persists the vote record (epoch + per-epoch grants) before any
	// grant is acknowledged, so the at-most-once-per-epoch rule survives
	// kill -9. Nil means in-memory only; the node then refuses to vote or
	// campaign for one full LeaseTTL after startup (the amnesia grace
	// period), trading bootstrap latency for restart safety.
	Store Store
	// Spec names the election protocol deciding campaign winners; empty
	// means DefaultSpec. It must be registered, deterministic, and support
	// the simulator engine the winner computation runs on.
	Spec string
	// Logf, when non-nil, receives one line per control-plane event
	// (elections, grants, depositions, fence rejections).
	Logf func(format string, args ...any)
	// Spans, when non-nil, collects control.* spans (campaigns and the
	// dogfooded elect runs). Settable later via SetSpans, before Run.
	Spans *obs.SpanCollector
	// Events, when non-nil, journals control-plane transitions (campaigns,
	// grants, renewals, step-downs, fence rejections) into the daemon's
	// event log. Settable later via SetEvents, before Run.
	Events *obs.EventLog
}

// Stats is a point-in-time view of a node's control-plane state and
// counters (the service layer's electd_control_* metrics read it).
type Stats struct {
	// Role and Epoch are the /healthz role/epoch fields; Coordinator is the
	// lease holder's URL while a lease is live ("" when unknown or expired).
	Role        Role
	Epoch       uint64
	Coordinator string
	// Elections counts campaigns this node won; Grants fresh-epoch leases
	// granted; Renewals lease extensions granted; Rejects refused lease
	// requests; Stepdowns lost or expired leaderships; FenceRejects chunk
	// dispatches refused for carrying a stale token.
	Elections    int64
	Grants       int64
	Renewals     int64
	Rejects      int64
	Stepdowns    int64
	FenceRejects int64
}

// StaleTokenError is a chunk dispatch rejected by fencing: the token is
// older than the epoch this node has granted. It carries the current epoch
// and believed coordinator so the deposed dispatcher can resynchronize.
type StaleTokenError struct {
	Token       uint64
	Epoch       uint64
	Coordinator string
}

func (e *StaleTokenError) Error() string {
	return fmt.Sprintf("control: fencing token %d is stale (current epoch %d, coordinator %s)",
		e.Token, e.Epoch, e.Coordinator)
}

// Node is one daemon's control-plane state machine. All exported methods
// are safe for concurrent use; Tick performs its RPCs without holding the
// node lock, so HandleLease and CheckFence stay responsive mid-campaign.
type Node struct {
	cfg   Config
	clock Clock
	ttl   time.Duration
	peers []string // sorted, self included
	spec  elect.Spec

	mu         sync.Mutex
	epoch      uint64    // highest epoch this node voted on or adopted
	holder     string    // who the epoch vote went to (or adopted holder)
	expires    time.Time // lease expiry as last heard
	leading    bool      // this node holds a quorum-confirmed lease
	graceUntil time.Time // storeless amnesia guard: no votes or campaigns before this
	graceHeld  bool      // grace.hold journaled once per process life

	suspect      int       // consecutive failed probes of the holder
	lastProbe    time.Time // follower: last holder probe
	lastRenew    time.Time // coordinator: last renewal round
	lastCampaign time.Time

	granted map[uint64]string // epoch → holder this node voted for (at most one each)
	held    []uint64          // epochs this node won with quorum

	elections, grants, renewals, rejects, stepdowns, fenceRejects int64
}

// New builds a Node. The peer set is normalized (sorted, deduplicated,
// self included); the election spec is resolved from the registry.
func New(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, errors.New("control: Config.Self required")
	}
	if cfg.Transport == nil {
		return nil, errors.New("control: Config.Transport required")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	specName := cfg.Spec
	if specName == "" {
		specName = DefaultSpec
	}
	spec, err := elect.Lookup(specName)
	if err != nil {
		return nil, fmt.Errorf("control: election spec: %w", err)
	}
	if !spec.Supports(elect.EngineAsync) {
		return nil, fmt.Errorf("control: spec %q does not run on the async simulator engine", specName)
	}
	if !spec.Deterministic {
		return nil, fmt.Errorf("control: spec %q is not deterministic; candidates could not agree on a winner", specName)
	}
	seen := map[string]bool{cfg.Self: true}
	peers := []string{cfg.Self}
	for _, p := range cfg.Peers {
		if p == "" {
			return nil, fmt.Errorf("control: empty peer URL in %v", cfg.Peers)
		}
		if !seen[p] {
			seen[p] = true
			peers = append(peers, p)
		}
	}
	sort.Strings(peers)
	clock := cfg.Clock
	if clock == nil {
		clock = realClock{}
	}
	n := &Node{
		cfg:     cfg,
		clock:   clock,
		ttl:     cfg.LeaseTTL,
		peers:   peers,
		spec:    spec,
		granted: make(map[uint64]string),
	}
	if cfg.Store != nil {
		st, err := cfg.Store.Load()
		if err != nil {
			return nil, fmt.Errorf("control: %w", err)
		}
		n.epoch = st.Epoch
		n.holder = st.Holder
		for e, h := range st.Granted {
			n.granted[e] = h
		}
		if st.Holder != "" {
			// Assume the incumbent's lease is live: worst case this node
			// waits one TTL before campaigning, instead of deposing a
			// healthy coordinator on every reboot.
			n.expires = clock.Now().Add(cfg.LeaseTTL)
		}
	} else {
		// No durable vote record: sit out one full TTL so every lease the
		// previous incarnation of this process could have granted has
		// expired before this one votes or campaigns again.
		n.graceUntil = clock.Now().Add(cfg.LeaseTTL)
	}
	return n, nil
}

// Self is this node's URL in the peer set.
func (n *Node) Self() string { return n.cfg.Self }

// Peers is the normalized peer set (sorted, self included).
func (n *Node) Peers() []string { return append([]string(nil), n.peers...) }

// Now is the node's clock (virtual under the chaos harness) — the service
// layer timestamps inbound lease requests with it.
func (n *Node) Now() time.Time { return n.clock.Now() }

// LeaseTTL is the effective lease lifetime.
func (n *Node) LeaseTTL() time.Duration { return n.ttl }

// SetSpans directs control.* spans into col. Call before Run (cmd/electd
// wires the service's collector in after constructing both).
func (n *Node) SetSpans(col *obs.SpanCollector) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.Spans = col
}

// SetEvents directs control-plane events into log. Call before Run
// (cmd/electd wires the service's journal in after constructing both).
func (n *Node) SetEvents(log *obs.EventLog) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.Events = log
}

// quorum is the majority of the configured peer set.
func (n *Node) quorum() int { return len(n.peers)/2 + 1 }

// Token is the fencing token a coordinator stamps on dispatched chunks:
// the highest epoch this node knows. distrib.Config.Fence points here.
func (n *Node) Token() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// IsCoordinator reports whether this node currently holds a
// quorum-confirmed, unexpired lease.
func (n *Node) IsCoordinator() bool {
	now := n.clock.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leading && now.Before(n.expires)
}

// Status snapshots the node's role, epoch, believed coordinator and
// counters.
func (n *Node) Status() Stats {
	now := n.clock.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	st := Stats{
		Role:         RoleWorker,
		Epoch:        n.epoch,
		Elections:    n.elections,
		Grants:       n.grants,
		Renewals:     n.renewals,
		Rejects:      n.rejects,
		Stepdowns:    n.stepdowns,
		FenceRejects: n.fenceRejects,
	}
	if now.Before(n.expires) {
		st.Coordinator = n.holder
		if n.leading {
			st.Role = RoleCoordinator
		}
	}
	return st
}

// Held returns the epochs this node won with quorum, in order — the chaos
// harness's exactly-one-holder-per-epoch evidence.
func (n *Node) Held() []uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]uint64(nil), n.held...)
}

// Grants returns a copy of this node's vote record: epoch → the one holder
// it granted that epoch to.
func (n *Node) Grants() map[uint64]string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[uint64]string, len(n.granted))
	for e, h := range n.granted {
		out[e] = h
	}
	return out
}

// HandleLease is the grant decision — the server side of POST /v1/lease,
// gated by the same vote record a campaigner's staged self-vote uses, so
// self-votes and peer votes share one at-most-once-per-epoch rule:
//
//   - a request for a NEWER epoch this node has not voted away is granted —
//     persisted as this node's single vote for that epoch BEFORE the reply,
//     so the vote survives kill -9 (a coordinator granting away is deposed),
//   - a request matching the current epoch AND holder is a renewal,
//   - everything else — stale epochs, conflicting votes, any new vote
//     inside the startup amnesia grace — is rejected, answering the current
//     epoch and holder so stale campaigners resynchronize.
func (n *Node) HandleLease(req client.LeaseRequest, now time.Time) client.LeaseResponse {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch {
	case req.Epoch > n.epoch && req.Holder != "" && n.voteFreeLocked(req.Epoch, req.Holder) && !now.Before(n.graceUntil):
		if err := n.saveLocked(req.Epoch, req.Holder, req.Epoch, req.Holder); err != nil {
			// An unpersisted vote is an uncast vote: reject rather than
			// acknowledge a grant a restart could forget.
			n.rejects++
			n.logf("control: refusing epoch %d to %s: persist failed: %v", req.Epoch, req.Holder, err)
			return client.LeaseResponse{Granted: false, Epoch: n.epoch, Holder: n.holder}
		}
		deposed := n.leading && req.Holder != n.cfg.Self
		n.epoch = req.Epoch
		n.holder = req.Holder
		n.expires = now.Add(n.ttl)
		n.suspect = 0
		n.granted[req.Epoch] = req.Holder
		n.grants++
		n.cfg.Events.Emit("lease.grant",
			"epoch", strconv.FormatUint(req.Epoch, 10), "holder", req.Holder)
		if deposed {
			n.leading = false
			n.stepdowns++
			n.cfg.Events.Emit("lease.stepdown",
				"epoch", strconv.FormatUint(req.Epoch, 10), "reason", "deposed", "by", req.Holder)
			n.logf("control: deposed by %s (epoch %d)", req.Holder, req.Epoch)
		} else if req.Holder != n.cfg.Self {
			n.logf("control: granted epoch %d to %s", req.Epoch, req.Holder)
		}
		return client.LeaseResponse{Granted: true, Epoch: n.epoch, Holder: n.holder}
	case req.Epoch == n.epoch && req.Holder != "" && req.Holder == n.holder:
		n.expires = now.Add(n.ttl)
		n.suspect = 0
		n.renewals++
		n.cfg.Events.Emit("lease.renew",
			"epoch", strconv.FormatUint(req.Epoch, 10), "holder", req.Holder)
		return client.LeaseResponse{Granted: true, Epoch: n.epoch, Holder: n.holder}
	default:
		n.rejects++
		return client.LeaseResponse{Granted: false, Epoch: n.epoch, Holder: n.holder}
	}
}

// voteFreeLocked reports whether this node can still vote epoch to holder:
// either no vote for that epoch exists, or the standing vote already names
// the same holder (grants are idempotent per (epoch, holder)).
func (n *Node) voteFreeLocked(epoch uint64, holder string) bool {
	v, ok := n.granted[epoch]
	return !ok || v == holder
}

// saveLocked persists the prospective durable state — current vote record
// plus the pending (voteEpoch → voteHolder) vote under the prospective
// epoch/holder — through the Store, before the caller acts on it. Nil Store
// means nothing to do. Called with n.mu held.
func (n *Node) saveLocked(epoch uint64, holder string, voteEpoch uint64, voteHolder string) error {
	if n.cfg.Store == nil {
		return nil
	}
	st := State{Epoch: epoch, Holder: holder, Granted: make(map[uint64]string, len(n.granted)+1)}
	for e, h := range n.granted {
		st.Granted[e] = h
	}
	if voteEpoch != 0 {
		st.Granted[voteEpoch] = voteHolder
	}
	return n.cfg.Store.Save(st)
}

// CheckFence accepts or rejects a dispatched chunk's fencing token: tokens
// below this node's epoch come from a deposed coordinator and are refused
// with a StaleTokenError (the daemon's 409). Token 0 is an unfenced legacy
// dispatcher (a plain sweep CLI fleet) and is always accepted; tokens from
// the future are accepted too — the dispatcher simply knows a newer
// election than we do.
func (n *Node) CheckFence(token uint64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if token == 0 || token >= n.epoch {
		return nil
	}
	n.fenceRejects++
	err := &StaleTokenError{Token: token, Epoch: n.epoch, Coordinator: n.holder}
	n.cfg.Events.Emit("fence.reject",
		"token", strconv.FormatUint(token, 10), "epoch", strconv.FormatUint(n.epoch, 10))
	n.logf("control: rejected stale chunk dispatch: %v", err)
	return err
}

// Run ticks the node on a wall-clock cadence (TTL/6) until stop closes —
// the production driver around the explicitly-tickable state machine.
func (n *Node) Run(stop <-chan struct{}) {
	t := time.NewTicker(n.ttl / 6)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			n.Tick(n.clock.Now())
		}
	}
}

// Tick advances the state machine one step at the given instant:
// coordinators renew, followers watch the holder, and everyone else
// (expired lease, dead holder, cold start) campaigns. RPCs run without the
// node lock.
func (n *Node) Tick(now time.Time) {
	n.mu.Lock()
	if n.leading && !now.Before(n.expires) {
		// Our own lease ran out without a quorum of renewals: stop acting
		// as coordinator before anyone else needs to fence us off.
		n.leading = false
		n.stepdowns++
		n.cfg.Events.Emit("lease.stepdown",
			"epoch", strconv.FormatUint(n.epoch, 10), "reason", "expired")
		n.logf("control: lease for epoch %d expired without quorum, stepping down", n.epoch)
	}
	leading := n.leading
	holder, expires := n.holder, n.expires
	epoch := n.epoch
	n.mu.Unlock()

	switch {
	case leading:
		n.renew(now, epoch)
	case holder != "" && holder != n.cfg.Self && now.Before(expires):
		n.watch(now, holder)
	default:
		n.campaign(now)
	}
}

// rpcCtx bounds one probe or lease RPC well inside a tick interval.
func (n *Node) rpcCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), min(n.ttl/3, 2*time.Second))
}

// renew extends the lease: one round of renewal RPCs every TTL/3. Quorum
// (own vote included) pushes expiry out; a response revealing a newer
// epoch means this node was deposed and adopts the new coordinator.
func (n *Node) renew(now time.Time, epoch uint64) {
	n.mu.Lock()
	if now.Sub(n.lastRenew) < n.ttl/3 {
		n.mu.Unlock()
		return
	}
	n.lastRenew = now
	n.mu.Unlock()

	// Own standing vote plus one concurrent fan-out round: the round costs
	// one RPC timeout no matter how many peers are unreachable, so renewal
	// always lands well inside the TTL/3 cadence.
	granted := 1 + n.fanLease(now, client.LeaseRequest{Epoch: epoch, Holder: n.cfg.Self})
	if granted >= n.quorum() {
		n.mu.Lock()
		if n.leading && n.epoch == epoch {
			n.expires = now.Add(n.ttl)
		}
		n.mu.Unlock()
	}
}

// fanLease delivers req to every peer but self concurrently — one slow or
// dead peer no longer stretches a round by a whole RPC timeout — then
// applies the responses in sorted peer order, so the chaos harness replays
// identically: grants are tallied, rejections revealing a newer epoch
// adopted. Returns the number of peer grants (own vote excluded).
func (n *Node) fanLease(now time.Time, req client.LeaseRequest) int {
	resps := make([]*client.LeaseResponse, len(n.peers))
	var wg sync.WaitGroup
	for i, p := range n.peers {
		if p == n.cfg.Self {
			continue
		}
		wg.Add(1)
		go func(i int, p string) {
			defer wg.Done()
			ctx, cancel := n.rpcCtx()
			resp, err := n.cfg.Transport.Lease(ctx, p, req)
			cancel()
			if err == nil {
				resps[i] = resp
			}
		}(i, p)
	}
	wg.Wait()
	granted := 0
	for _, resp := range resps {
		if resp == nil {
			continue
		}
		if resp.Granted {
			granted++
		} else {
			n.adopt(now, resp)
		}
	}
	return granted
}

// probeLive probes every peer concurrently and returns the live view, self
// included, in sorted order.
func (n *Node) probeLive() []string {
	up := make([]bool, len(n.peers))
	var wg sync.WaitGroup
	for i, p := range n.peers {
		if p == n.cfg.Self {
			continue
		}
		wg.Add(1)
		go func(i int, p string) {
			defer wg.Done()
			ctx, cancel := n.rpcCtx()
			up[i] = n.cfg.Transport.Probe(ctx, p) == nil
			cancel()
		}(i, p)
	}
	wg.Wait()
	live := []string{n.cfg.Self}
	for i, p := range n.peers {
		if p != n.cfg.Self && up[i] {
			live = append(live, p)
		}
	}
	sort.Strings(live)
	return live
}

// watch is the follower's fast failure detector: probe the lease holder
// every TTL/3 and campaign after suspectThreshold consecutive failures —
// without waiting for the local lease copy to run out, which is what keeps
// re-election within one TTL of the coordinator's death.
func (n *Node) watch(now time.Time, holder string) {
	n.mu.Lock()
	if now.Sub(n.lastProbe) < n.ttl/3 {
		n.mu.Unlock()
		return
	}
	n.lastProbe = now
	n.mu.Unlock()

	ctx, cancel := n.rpcCtx()
	err := n.cfg.Transport.Probe(ctx, holder)
	cancel()

	n.mu.Lock()
	if err == nil {
		n.suspect = 0
		n.mu.Unlock()
		return
	}
	n.suspect++
	dead := n.suspect >= suspectThreshold
	n.mu.Unlock()
	if dead {
		n.logf("control: coordinator %s unreachable %d probes running, campaigning", holder, suspectThreshold)
		n.campaign(now)
	}
}

// campaign runs one leadership attempt: probe the fleet, let the elect
// protocol pick the winner among the live peers, and — only if this node
// IS the winner — stage a vote for itself and collect a quorum of grants
// for the next epoch. Losing candidates simply stand down; they will be
// granted to by the winner's campaign or retry next tick.
func (n *Node) campaign(now time.Time) {
	n.mu.Lock()
	if now.Before(n.graceUntil) {
		// Amnesia guard (no Config.Store): a pre-restart incarnation of this
		// process may have votes outstanding that this one cannot remember.
		if !n.graceHeld {
			n.graceHeld = true
			n.cfg.Events.Emit("grace.hold",
				"until", n.graceUntil.Format(time.RFC3339))
		}
		n.mu.Unlock()
		return
	}
	if now.Sub(n.lastCampaign) < n.ttl/6 {
		n.mu.Unlock()
		return
	}
	n.lastCampaign = now
	next := n.epoch + 1
	n.mu.Unlock()

	live := n.probeLive()
	// Pre-vote gate: with fewer than a quorum reachable no campaign can
	// win, and self-voting anyway would inflate this node's epoch in
	// isolation — a minority partition would then surface tokens NEWER than
	// the majority's real epoch, sailing through fencing. Don't burn the
	// epoch (or an election run) until victory is possible.
	if len(live) < n.quorum() {
		return
	}

	winner := n.electWinner(live, next)
	if winner != n.cfg.Self {
		return
	}

	// Stage our own vote through the same at-most-once record peers use,
	// WITHOUT adopting ourselves as epoch/holder: until a quorum confirms,
	// Status and Token must keep reporting the old lease, or /v1/coordinator
	// and the 409 redirects would point clients at a campaigner that will
	// itself 409 them. If a request for an epoch >= next already landed
	// here, the vote fails and the campaign is over.
	n.mu.Lock()
	if next <= n.epoch || !n.voteFreeLocked(next, n.cfg.Self) {
		n.mu.Unlock()
		return
	}
	if err := n.saveLocked(n.epoch, n.holder, next, n.cfg.Self); err != nil {
		n.mu.Unlock()
		n.logf("control: abandoning campaign for epoch %d: persist failed: %v", next, err)
		return
	}
	n.granted[next] = n.cfg.Self
	n.grants++
	n.cfg.Events.Emit("campaign.start",
		"epoch", strconv.FormatUint(next, 10), "live", strconv.Itoa(len(live)))
	n.mu.Unlock()

	granted := 1 + n.fanLease(now, client.LeaseRequest{Epoch: next, Holder: n.cfg.Self})

	n.mu.Lock()
	defer n.mu.Unlock()
	// Commit only if nothing newer was adopted while the round ran; the
	// staged vote itself stands either way (it was promised to peers' view
	// of epoch `next` the moment it was persisted).
	if granted >= n.quorum() && next > n.epoch && n.granted[next] == n.cfg.Self {
		n.epoch = next
		n.holder = n.cfg.Self
		n.leading = true
		n.expires = now.Add(n.ttl)
		n.suspect = 0
		n.lastRenew = now
		n.elections++
		n.held = append(n.held, next)
		if err := n.saveLocked(n.epoch, n.holder, 0, ""); err != nil {
			n.logf("control: persisting epoch %d win failed: %v", next, err)
		}
		n.cfg.Events.Emit("campaign.won",
			"epoch", strconv.FormatUint(next, 10),
			"grants", strconv.Itoa(granted), "peers", strconv.Itoa(len(n.peers)))
		n.logf("control: won epoch %d with %d/%d grants (%d live peers)",
			next, granted, len(n.peers), len(live))
	} else {
		n.cfg.Events.Emit("campaign.lost",
			"epoch", strconv.FormatUint(next, 10), "grants", strconv.Itoa(granted))
	}
}

// adopt fast-forwards to a newer epoch learned from a lease rejection, so
// a deposed or lagging node converges on the current coordinator instead
// of campaigning against it.
func (n *Node) adopt(now time.Time, resp *client.LeaseResponse) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if resp.Epoch <= n.epoch {
		return
	}
	if err := n.saveLocked(resp.Epoch, resp.Holder, 0, ""); err != nil {
		// Staying behind is safe (rejections will keep arriving); adopting
		// an epoch a restart would forget is not.
		n.logf("control: not adopting epoch %d: persist failed: %v", resp.Epoch, err)
		return
	}
	if n.leading {
		n.leading = false
		n.stepdowns++
		n.cfg.Events.Emit("lease.stepdown",
			"epoch", strconv.FormatUint(resp.Epoch, 10), "reason", "deposed", "by", resp.Holder)
		n.logf("control: deposed, adopting epoch %d held by %s", resp.Epoch, resp.Holder)
	}
	n.epoch = resp.Epoch
	n.holder = resp.Holder
	n.expires = now.Add(n.ttl)
	n.suspect = 0
}

// electWinner dogfoods the public elect API to pick the campaign winner
// among the live peers: the sorted live URLs become nodes 1..k of a real
// EngineLive election whose protocol outcome is deterministic in (k, seed),
// with the seed and ID permutation derived from the live membership view
// itself — so every candidate sharing a live view computes the same winner
// without any extra coordination, even when their epoch counters have
// drifted apart (seeding by the candidate's own target epoch would let two
// drifted candidates each compute the OTHER as winner and livelock).
// Divergent views are arbitrated by the lease quorum, not here. If the run
// misbehaves (it should not: the spec is registered as deterministic), the
// lexicographically largest live URL wins, keeping the control plane alive.
func (n *Node) electWinner(live []string, epoch uint64) string {
	sort.Strings(live)
	if len(live) == 1 {
		return live[0]
	}
	k := len(live)
	// FNV-1a over the sorted live view, SplitMix64-finalized: a shared,
	// deterministic seed every candidate with this view derives identically.
	seed := uint64(0xCBF29CE484222325)
	for _, url := range live {
		for i := 0; i < len(url); i++ {
			seed ^= uint64(url[i])
			seed *= 0x100000001B3
		}
		seed ^= ','
		seed *= 0x100000001B3
	}
	seed = (seed + 0x9E3779B97F4A7C15) * 0xBF58476D1CE4E5B9
	// The deterministic simulator engine, NOT EngineLive: agreement without
	// coordination needs the winner to be a pure function of (k, seed), and
	// on the live engine goroutine scheduling decides message order — two
	// candidates running the identical election there can crown different
	// leaders. The simulator runs the same protocol code under deterministic
	// delivery, which is exactly the property the control plane is built on.
	began := time.Now()
	res, err := elect.Run(n.spec,
		elect.WithEngine(elect.EngineAsync),
		elect.WithN(k),
		elect.WithSeed(seed),
		elect.WithIDs(electIDs(k, seed)),
	)
	winner := live[k-1]
	if err != nil || res.Leader < 0 || res.Leader >= k {
		n.logf("control: election run failed (%v), falling back to max URL", err)
	} else {
		winner = live[res.Leader]
	}
	if n.spans() != nil {
		sc := obs.NewSpanContext()
		n.spans().Add(obs.Span{
			Trace: sc.Trace, ID: sc.Span,
			Name: "control.elect", Service: "control",
			Start: began.UnixMicro(), Dur: time.Since(began).Microseconds(),
			Attrs: map[string]string{
				"spec":   n.spec.Name,
				"epoch":  strconv.FormatUint(epoch, 10),
				"n":      strconv.Itoa(k),
				"winner": winner,
				"msgs":   strconv.FormatInt(res.Messages, 10),
			},
		})
	}
	return winner
}

// electIDs deals a seeded permutation of 1..k — always a valid assignment
// in the elect ID universe — so the winning index varies with the epoch
// rather than always favoring one list position.
func electIDs(k int, seed uint64) []int64 {
	ids := make([]int64, k)
	for i := range ids {
		ids[i] = int64(i + 1)
	}
	rng := xrand.New(seed ^ 0xD1B54A32D192ED03)
	rng.Shuffle(k, func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	return ids
}

func (n *Node) spans() *obs.SpanCollector {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cfg.Spans
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}
