package control

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// State is the durable slice of a node's control plane: the vote record
// that makes the at-most-once-per-epoch rule survive a crash. Everything
// else on a Node (lease expiry, counters, the held-epoch log) is soft state
// a reboot may lose; losing a cast vote is what mints two coordinators for
// one epoch, so votes go to the Store before they are acknowledged.
type State struct {
	// Epoch is the highest epoch this node voted on or adopted.
	Epoch uint64 `json:"epoch"`
	// Holder is who Epoch belongs to, as last heard. Soft in principle, but
	// persisting it lets a rebooted node wait out the incumbent's lease
	// instead of campaigning against a healthy coordinator.
	Holder string `json:"holder,omitempty"`
	// Granted maps epoch → the one holder this node granted it to.
	Granted map[uint64]string `json:"granted,omitempty"`
}

// Store persists a node's vote record across restarts. Save must make the
// state durable before returning: HandleLease writes the prospective vote
// through Save BEFORE acknowledging a grant, Raft-style, so a kill -9
// between the two can lose an unacknowledged vote (harmless) but never an
// acknowledged one (the split-brain seed).
type Store interface {
	// Load returns the last saved state, or a zero State when none exists.
	Load() (State, error)
	// Save persists st durably before returning.
	Save(st State) error
}

// FileStore is the production Store: one JSON file, replaced atomically
// (temp file + fsync + rename) so a crash mid-save leaves the previous
// state intact. cmd/electd wires it under -state-file.
type FileStore struct {
	mu   sync.Mutex
	path string
}

// NewFileStore builds a FileStore at path. The file and its directory are
// created on first Save.
func NewFileStore(path string) *FileStore { return &FileStore{path: path} }

// Load reads the state file; a missing file is a zero State, a corrupt one
// an error (refusing to start beats silently forgetting votes).
func (s *FileStore) Load() (State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := os.ReadFile(s.path)
	if errors.Is(err, os.ErrNotExist) {
		return State{}, nil
	}
	if err != nil {
		return State{}, err
	}
	var st State
	if err := json.Unmarshal(b, &st); err != nil {
		return State{}, fmt.Errorf("control: state file %s corrupt: %w", s.path, err)
	}
	return st, nil
}

// Save writes st durably: temp file in the same directory, fsync, rename.
func (s *FileStore) Save(st State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(s.path), 0o755); err != nil {
		return err
	}
	tmp := s.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, s.path)
}
