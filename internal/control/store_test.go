package control

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nested", "state.json")
	s := NewFileStore(path)

	// Missing file is a clean zero state, not an error.
	st, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 0 || st.Holder != "" || len(st.Granted) != 0 {
		t.Fatalf("zero load = %+v", st)
	}

	want := State{Epoch: 7, Holder: "http://b", Granted: map[uint64]string{6: "http://a", 7: "http://b"}}
	if err := s.Save(want); err != nil {
		t.Fatal(err)
	}
	// A fresh store over the same path sees the saved state.
	got, err := NewFileStore(path).Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != want.Epoch || got.Holder != want.Holder ||
		got.Granted[6] != "http://a" || got.Granted[7] != "http://b" {
		t.Fatalf("round trip = %+v, want %+v", got, want)
	}
	// No temp-file droppings after a successful save.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestFileStoreCorruptIsError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileStore(path).Load(); err == nil {
		t.Fatal("corrupt state file loaded silently")
	}
	// And New refuses to build a node over it: starting with forgotten
	// votes is the split-brain seed.
	if _, err := New(Config{Self: "http://a", Transport: nopTransport{},
		Store: NewFileStore(path)}); err == nil {
		t.Fatal("node built over a corrupt state file")
	}
}
