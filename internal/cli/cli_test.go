package cli

import (
	"strings"
	"testing"
)

func TestLookupAllRegistered(t *testing.T) {
	for _, name := range Names() {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Name != name {
			t.Fatalf("lookup %q returned %q", name, spec.Name)
		}
		if spec.Model == Sync && spec.BuildSync == nil {
			t.Fatalf("%s: sync spec without builder", name)
		}
		if spec.Model == Async && spec.BuildAsync == nil {
			t.Fatalf("%s: async spec without builder", name)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if len(Algorithms()) != 10 {
		t.Fatalf("registry has %d entries", len(Algorithms()))
	}
}

func TestRunEveryAlgorithm(t *testing.T) {
	for _, spec := range Algorithms() {
		opts := RunOpts{N: 64, Seed: 7, Params: DefaultParams()}
		if spec.Name == "advwake" || spec.Name == "spreadelect" || spec.Name == "asynctradeoff" ||
			spec.Name == "asynclinear" {
			opts.WakeCount = 3 // adversarial wake-up models
		}
		sum, err := Run(spec, opts)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if !sum.OK {
			// Randomized algorithms may fail occasionally; retry once with
			// another seed before declaring a problem.
			opts.Seed = 99
			sum, err = Run(spec, opts)
			if err != nil {
				t.Fatalf("%s: %v", spec.Name, err)
			}
			if !sum.OK {
				t.Fatalf("%s failed twice: %+v", spec.Name, sum)
			}
		}
		if sum.Messages < 0 || sum.Leader < 0 {
			t.Fatalf("%s: bad summary %+v", spec.Name, sum)
		}
		if out := sum.String(); !strings.Contains(out, spec.Name) {
			t.Fatalf("%s: summary rendering: %s", spec.Name, out)
		}
	}
}

func TestRunParamValidation(t *testing.T) {
	spec, _ := Lookup("tradeoff")
	if _, err := Run(spec, RunOpts{N: 16, Params: Params{K: 1}}); err == nil {
		t.Fatal("bad K accepted")
	}
	if _, err := Run(spec, RunOpts{N: 0, Params: DefaultParams()}); err == nil {
		t.Fatal("n=0 accepted")
	}
	aspec, _ := Lookup("asynctradeoff")
	if _, err := Run(aspec, RunOpts{N: 16, Params: DefaultParams(), Policy: "bogus"}); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestDelayPolicyNames(t *testing.T) {
	for _, name := range []string{"", "unit", "uniform", "skew"} {
		if _, err := DelayPolicy(name); err != nil {
			t.Fatalf("%q: %v", name, err)
		}
	}
}

func TestDeterministicFlagging(t *testing.T) {
	want := map[string]bool{
		"tradeoff": true, "afekgafni": true, "smallid": true, "asyncafekgafni": true,
		"lasvegas": false, "sublinear": false, "advwake": false,
		"spreadelect": false, "asynctradeoff": false, "asynclinear": false,
	}
	for _, spec := range Algorithms() {
		if spec.Deterministic != want[spec.Name] {
			t.Errorf("%s: deterministic = %v", spec.Name, spec.Deterministic)
		}
	}
}

func TestRunExplicitMode(t *testing.T) {
	spec, _ := Lookup("tradeoff")
	plain, err := Run(spec, RunOpts{N: 64, Seed: 3, Params: DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Run(spec, RunOpts{N: 64, Seed: 3, Params: DefaultParams(), Explicit: true})
	if err != nil {
		t.Fatal(err)
	}
	if !explicit.OK {
		t.Fatal("explicit run failed")
	}
	if explicit.Rounds != plain.Rounds+1 || explicit.Messages != plain.Messages+63 {
		t.Fatalf("explicit overhead wrong: %d/%d vs %d/%d",
			explicit.Rounds, explicit.Messages, plain.Rounds, plain.Messages)
	}
}
