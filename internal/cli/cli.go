// Package cli provides the algorithm registry and run helpers shared by the
// command-line tools (cmd/elect, cmd/sweep, cmd/experiments,
// cmd/lowerbound) and the examples.
package cli

import (
	"fmt"
	"sort"
	"strings"

	"cliquelect/internal/core"
	"cliquelect/internal/ids"
	"cliquelect/internal/simasync"
	"cliquelect/internal/simsync"
	"cliquelect/internal/xrand"
)

// Model distinguishes the two network timing models.
type Model int

// Models.
const (
	Sync Model = iota + 1
	Async
)

func (m Model) String() string {
	if m == Async {
		return "async"
	}
	return "sync"
}

// Params carries every tunable any algorithm accepts; unused fields are
// ignored by algorithms that do not take them.
type Params struct {
	K   int     // tradeoff parameter (Tradeoff, AfekGafni, SpreadElect, AsyncTradeoff)
	D   int     // SmallID window parameter
	G   int     // SmallID universe slack g(n)
	Eps float64 // AdvWake2Round failure budget
}

// DefaultParams returns sensible defaults: K=3, D=2, G=1, Eps=1/16.
func DefaultParams() Params {
	return Params{K: 3, D: 2, G: 1, Eps: 1.0 / 16}
}

// Spec describes one registered algorithm.
type Spec struct {
	Name        string
	Model       Model
	Paper       string // which paper result it implements
	Description string
	// SmallIDSpace marks algorithms that require the {1..n·g} universe.
	SmallIDSpace bool
	// Deterministic marks algorithms with no coin flips.
	Deterministic bool
	// BuildSync is set for synchronous algorithms.
	BuildSync func(p Params) (simsync.Factory, error)
	// BuildAsync is set for asynchronous algorithms; it receives n because
	// some constructions (asynclinear) derive their parameter from it.
	BuildAsync func(n int, p Params) (simasync.Factory, error)
}

// registry is ordered for stable --list output.
var registry = []Spec{
	{
		Name: "tradeoff", Model: Sync, Paper: "Theorem 3.10", Deterministic: true,
		Description: "improved deterministic tradeoff: 2k-3 rounds, O(k·n^{1+1/(k-1)}) msgs",
		BuildSync: func(p Params) (simsync.Factory, error) {
			if err := core.ValidateTradeoffK(p.K); err != nil {
				return nil, err
			}
			return core.NewTradeoff(p.K), nil
		},
	},
	{
		Name: "afekgafni", Model: Sync, Paper: "Afek-Gafni [1] baseline", Deterministic: true,
		Description: "classic deterministic tradeoff: 2k rounds, O(k·n^{1+1/k}) msgs",
		BuildSync: func(p Params) (simsync.Factory, error) {
			if err := core.ValidateAfekGafniK(p.K); err != nil {
				return nil, err
			}
			return core.NewAfekGafni(p.K), nil
		},
	},
	{
		Name: "smallid", Model: Sync, Paper: "Theorem 3.15 / Algorithm 1", Deterministic: true,
		SmallIDSpace: true,
		Description:  "small-ID-universe scan: ceil(n/d) rounds, <= n·d·g msgs",
		BuildSync: func(p Params) (simsync.Factory, error) {
			if err := core.ValidateSmallID(p.D, p.G); err != nil {
				return nil, err
			}
			return core.NewSmallID(p.D, p.G), nil
		},
	},
	{
		Name: "lasvegas", Model: Sync, Paper: "Theorem 3.16",
		Description: "Las Vegas: 3 rounds and O(n) msgs w.h.p., never wrong",
		BuildSync: func(Params) (simsync.Factory, error) {
			return core.NewLasVegas(), nil
		},
	},
	{
		Name: "sublinear", Model: Sync, Paper: "Kutten et al. [16] baseline",
		Description: "Monte Carlo: 2 rounds, O(sqrt(n)·log^{3/2} n) msgs, fails with o(1) prob.",
		BuildSync: func(Params) (simsync.Factory, error) {
			return core.NewSublinear(), nil
		},
	},
	{
		Name: "advwake", Model: Sync, Paper: "Theorem 4.1",
		Description: "adversarial wake-up: 2 rounds, O(n^{3/2}·log(1/eps)) msgs",
		BuildSync: func(p Params) (simsync.Factory, error) {
			if err := core.ValidateEps(p.Eps); err != nil {
				return nil, err
			}
			return core.NewAdvWake2Round(p.Eps), nil
		},
	},
	{
		Name: "spreadelect", Model: Sync, Paper: "substituted [14]-style baseline",
		Description: "adversarial wake-up: k+5 rounds, O(n^{1+1/k}+n) msgs",
		BuildSync: func(p Params) (simsync.Factory, error) {
			if err := core.ValidateSpreadK(p.K); err != nil {
				return nil, err
			}
			return core.NewSpreadElect(p.K), nil
		},
	},
	{
		Name: "asynctradeoff", Model: Async, Paper: "Theorem 5.1 / Algorithm 2",
		Description: "async tradeoff: k+8 time units, O(n^{1+1/k}) msgs",
		BuildAsync: func(_ int, p Params) (simasync.Factory, error) {
			if err := core.ValidateAsyncK(p.K); err != nil {
				return nil, err
			}
			return core.NewAsyncTradeoff(p.K), nil
		},
	},
	{
		Name: "asyncafekgafni", Model: Async, Paper: "Theorem 5.14 / Section 5.4", Deterministic: true,
		Description: "asynchronized Afek-Gafni: O(log n) time, O(n log n) msgs, simultaneous wake-up",
		BuildAsync: func(int, Params) (simasync.Factory, error) {
			return core.NewAsyncAfekGafni(), nil
		},
	},
	{
		Name: "asynclinear", Model: Async, Paper: "substituted [14]-style async baseline",
		Description: "near-linear msgs at k=Theta(log n/log log n): O(n log n) msgs, O(log n) time",
		BuildAsync: func(n int, _ Params) (simasync.Factory, error) {
			return core.NewAsyncLinear(n), nil
		},
	},
}

// Algorithms returns the registered algorithm specs in registry order.
func Algorithms() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	return out
}

// Names returns all registered algorithm names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for _, s := range registry {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

// Lookup finds an algorithm by name.
func Lookup(name string) (Spec, error) {
	for _, s := range registry {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("cli: unknown algorithm %q (have: %s)", name, strings.Join(Names(), ", "))
}

// Summary is the model-independent outcome of one run.
type Summary struct {
	Algorithm string
	Model     Model
	N         int
	Leader    int // node index, -1 if not unique
	LeaderID  int64
	Messages  int64
	Rounds    int     // sync only
	TimeUnits float64 // async only
	AllAwake  bool
	OK        bool
}

// String renders a human-readable one-line-per-field summary.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "algorithm : %s (%s)\n", s.Algorithm, s.Model)
	fmt.Fprintf(&b, "nodes     : %d\n", s.N)
	if s.Leader >= 0 {
		fmt.Fprintf(&b, "leader    : node %d (ID %d)\n", s.Leader, s.LeaderID)
	} else {
		fmt.Fprintf(&b, "leader    : NONE (failed run)\n")
	}
	fmt.Fprintf(&b, "messages  : %d\n", s.Messages)
	if s.Model == Sync {
		fmt.Fprintf(&b, "rounds    : %d\n", s.Rounds)
	} else {
		fmt.Fprintf(&b, "time      : %.2f units\n", s.TimeUnits)
	}
	fmt.Fprintf(&b, "all awake : %v\n", s.AllAwake)
	fmt.Fprintf(&b, "valid     : %v\n", s.OK)
	return b.String()
}

// RunOpts configures a single Run.
type RunOpts struct {
	N      int
	Seed   uint64
	Params Params
	// WakeCount: 0 = simultaneous wake-up; otherwise the adversary wakes
	// that many random nodes.
	WakeCount int
	// Policy names the async delay policy: unit (default), uniform, skew.
	Policy string
	// Explicit wraps synchronous algorithms in the explicit-election
	// transformation (every node outputs the leader's ID; +1 round, +n-1
	// messages).
	Explicit bool
}

// MakeIDs builds the ID assignment an algorithm expects.
func MakeIDs(spec Spec, n int, p Params, rng *xrand.RNG) ids.Assignment {
	if spec.SmallIDSpace {
		return ids.Random(ids.LinearUniverse(n, p.G), n, rng)
	}
	return ids.Random(ids.LogUniverse(n), n, rng)
}

// DelayPolicy resolves a policy name.
func DelayPolicy(name string) (simasync.DelayPolicy, error) {
	switch name {
	case "", "unit":
		return simasync.UnitDelay{}, nil
	case "uniform":
		return simasync.UniformDelay{Lo: 0.05}, nil
	case "skew":
		return simasync.SkewDelay{Fast: 0.05, Mod: 3}, nil
	}
	return nil, fmt.Errorf("cli: unknown delay policy %q (unit, uniform, skew)", name)
}

// Run executes one algorithm under the given options.
func Run(spec Spec, opts RunOpts) (Summary, error) {
	sum := Summary{Algorithm: spec.Name, Model: spec.Model, N: opts.N, Leader: -1}
	if opts.N < 1 {
		return sum, fmt.Errorf("cli: n = %d", opts.N)
	}
	rng := xrand.New(opts.Seed)
	assign := MakeIDs(spec, opts.N, opts.Params, rng)

	switch spec.Model {
	case Sync:
		factory, err := spec.BuildSync(opts.Params)
		if err != nil {
			return sum, err
		}
		if opts.Explicit {
			factory = core.NewExplicit(factory)
		}
		var wake simsync.WakePolicy = simsync.Simultaneous{}
		if opts.WakeCount > 0 {
			wake = simsync.RandomWakeSet(opts.N, min(opts.WakeCount, opts.N), rng)
		}
		res, err := simsync.Run(simsync.Config{
			N: opts.N, IDs: assign, Seed: rng.Uint64(), Wake: wake,
		}, factory)
		if err != nil {
			return sum, err
		}
		sum.Messages = res.Messages
		sum.Rounds = res.Rounds
		sum.AllAwake = res.AllAwake()
		sum.Leader = res.UniqueLeader()
		sum.OK = res.Validate() == nil
	case Async:
		factory, err := spec.BuildAsync(opts.N, opts.Params)
		if err != nil {
			return sum, err
		}
		policy, err := DelayPolicy(opts.Policy)
		if err != nil {
			return sum, err
		}
		wake := simasync.AllAtZero(opts.N)
		if opts.WakeCount > 0 {
			wake = simasync.SubsetAtZero(rng.Sample(opts.N, min(opts.WakeCount, opts.N)))
		}
		res, err := simasync.Run(simasync.Config{
			N: opts.N, IDs: assign, Seed: rng.Uint64(), Delays: policy, Wake: wake,
		}, factory)
		if err != nil {
			return sum, err
		}
		sum.Messages = res.Messages
		sum.TimeUnits = res.TimeUnits
		sum.AllAwake = res.AllAwake()
		sum.Leader = res.UniqueLeader()
		sum.OK = res.Validate() == nil
	default:
		return sum, fmt.Errorf("cli: spec %q has no model", spec.Name)
	}
	if sum.Leader >= 0 {
		sum.LeaderID = int64(assign[sum.Leader])
	}
	return sum, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
