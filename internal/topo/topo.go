// Package topo provides the general-graph topology layer under the network
// engines: a Topology is the wiring of a simulated network — node count,
// per-node degrees, and the port-to-port involution messages travel over.
//
// The paper's clique model (internal/portmap) is the degenerate case where
// every node has n-1 ports; this package generalizes the wiring to arbitrary
// connected graphs so the engines can execute the general-graph protocols in
// the paper's lineage (Kutten–Moses Jr. et al., arXiv 2008.02782; KPPRT,
// arXiv 1210.4822) on rings, tori, random-regular and power-law graphs.
//
// Explicit graphs are stored in compact CSR adjacency — flat []uint32 offset
// and edge tables in the arena/flatmap style of the engine hot paths — so
// million-node sparse graphs cost a few machine words per edge and zero
// per-node allocations. The clique keeps its O(1)-memory implicit form
// (Clique) and is never materialized.
//
// Determinism: every generator is a pure function of (n, parameters, seed).
// The same spec string and seed produce the identical graph — edge order,
// port numbering and diameter estimate included — on every platform, which
// is what lets topology-axis sweeps share the content-addressed result
// cache.
package topo

import (
	"fmt"
	"slices"
)

// Topology is a fixed wiring of n nodes. Ports are 0-based and per-node:
// node u owns ports 0..Degree(u)-1. Dest must behave as a bijective
// involution, exactly like portmap.Map: if Dest(u,p) = (v,q) then
// Dest(v,q) = (u,p) and v != u. Implementations are immutable after
// construction and safe for concurrent readers.
type Topology interface {
	// N returns the number of nodes.
	N() int
	// M returns the number of undirected edges.
	M() int64
	// Degree returns the number of ports of node u.
	Degree(u int) int
	// Neighbor returns the node on the far end of port p of u.
	Neighbor(u, p int) int
	// Dest returns the node and arrival port on the far end of (u, p).
	Dest(u, p int) (v, q int)
	// Diameter returns the graph's diameter estimate: the double-sweep BFS
	// lower bound, which is exact on the symmetric generators here (ring,
	// torus, clique) and within a factor 2 of the truth on any graph.
	// Protocols use it as a safe hop-count horizon.
	Diameter() int
	// Name returns the canonical spec string of the topology (see Parse).
	Name() string
}

// Graph is a CSR-encoded explicit topology: off[u]..off[u+1] indexes u's row
// in adj (neighbors, ascending) and back (the arrival port on each
// neighbor). Two flat []uint32 tables per direction, nothing per node.
type Graph struct {
	name string
	n    int
	off  []uint32
	adj  []uint32
	back []uint32
	diam int
}

// maxNodes bounds explicit graphs so CSR indices fit in uint32.
const maxNodes = 1 << 31

// N implements Topology.
func (g *Graph) N() int { return g.n }

// M implements Topology.
func (g *Graph) M() int64 { return int64(len(g.adj)) / 2 }

// Degree implements Topology.
func (g *Graph) Degree(u int) int { return int(g.off[u+1] - g.off[u]) }

// Neighbor implements Topology.
func (g *Graph) Neighbor(u, p int) int { return int(g.adj[g.off[u]+uint32(p)]) }

// Dest implements Topology.
func (g *Graph) Dest(u, p int) (int, int) {
	k := g.off[u] + uint32(p)
	return int(g.adj[k]), int(g.back[k])
}

// Diameter implements Topology.
func (g *Graph) Diameter() int { return g.diam }

// Name implements Topology.
func (g *Graph) Name() string { return g.name }

// newGraph builds the CSR tables from an undirected edge list. It rejects
// self-loops, duplicate edges, out-of-range endpoints and disconnected
// graphs — every Topology handed to an engine is a simple connected graph.
func newGraph(name string, n int, edges [][2]int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topo: n = %d", n)
	}
	if n > maxNodes {
		return nil, fmt.Errorf("topo: n = %d exceeds the %d-node CSR limit", n, maxNodes)
	}
	g := &Graph{name: name, n: n, off: make([]uint32, n+1)}
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("topo: edge (%d, %d) outside [0, %d)", u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("topo: self-loop at node %d", u)
		}
		g.off[u+1]++
		g.off[v+1]++
	}
	for u := 0; u < n; u++ {
		g.off[u+1] += g.off[u]
	}
	g.adj = make([]uint32, 2*len(edges))
	fill := make([]uint32, n) // next free slot per row
	for _, e := range edges {
		u, v := uint32(e[0]), uint32(e[1])
		g.adj[g.off[u]+fill[u]] = v
		g.adj[g.off[v]+fill[v]] = u
		fill[u]++
		fill[v]++
	}
	for u := 0; u < n; u++ {
		row := g.adj[g.off[u]:g.off[u+1]]
		slices.Sort(row)
		for i := 1; i < len(row); i++ {
			if row[i] == row[i-1] {
				return nil, fmt.Errorf("topo: duplicate edge (%d, %d)", u, row[i])
			}
		}
	}
	// back[k] is the index of u inside the (sorted) row of adj[k]: the port
	// a message sent on (u, k-off[u]) arrives on.
	g.back = make([]uint32, len(g.adj))
	for u := 0; u < n; u++ {
		uu := uint32(u)
		for k := g.off[u]; k < g.off[u+1]; k++ {
			v := g.adj[k]
			row := g.adj[g.off[v]:g.off[v+1]]
			q, _ := slices.BinarySearch(row, uu)
			g.back[k] = uint32(q)
		}
	}
	if err := g.connect(); err != nil {
		return nil, err
	}
	return g, nil
}

// connect verifies connectivity and sets the double-sweep diameter estimate:
// BFS from node 0 finds an eccentric node a, BFS from a reports ecc(a). The
// second sweep's eccentricity lower-bounds the diameter everywhere and
// equals it on the vertex-transitive generators (ring, torus).
func (g *Graph) connect() error {
	if g.n == 1 {
		g.diam = 0
		return nil
	}
	dist := make([]int32, g.n)
	queue := make([]uint32, 0, g.n)
	far, seen := g.bfs(0, dist, queue)
	if seen != g.n {
		return fmt.Errorf("topo: graph is disconnected (%d of %d nodes reachable from node 0)", seen, g.n)
	}
	a, _ := g.bfs(far, dist, queue)
	g.diam = int(dist[a])
	return nil
}

// bfs runs one sweep from src, filling dist (scratch, overwritten) and
// returning the farthest node plus the number of nodes reached.
func (g *Graph) bfs(src uint32, dist []int32, queue []uint32) (far uint32, seen int) {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue = append(queue[:0], src)
	far = src
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		seen++
		for k := g.off[u]; k < g.off[u+1]; k++ {
			v := g.adj[k]
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				if dist[v] > dist[far] {
					far = v
				}
				queue = append(queue, v)
			}
		}
	}
	return far, seen
}

// Clique is the implicit complete graph: the paper's model, kept in O(1)
// memory with the same algebraic involution as portmap.Canonical (port p of
// node u leads to (u+p+1) mod n, arriving on port n-2-p), so a
// topology-view of the clique and the engines' default clique wiring agree
// port for port.
type Clique struct {
	n int
}

// NewClique returns the implicit clique on n >= 1 nodes.
func NewClique(n int) (*Clique, error) {
	if n < 1 {
		return nil, fmt.Errorf("topo: n = %d", n)
	}
	return &Clique{n: n}, nil
}

// N implements Topology.
func (c *Clique) N() int { return c.n }

// M implements Topology.
func (c *Clique) M() int64 { return int64(c.n) * int64(c.n-1) / 2 }

// Degree implements Topology.
func (c *Clique) Degree(int) int { return c.n - 1 }

// Neighbor implements Topology.
func (c *Clique) Neighbor(u, p int) int { return (u + p + 1) % c.n }

// Dest implements Topology.
func (c *Clique) Dest(u, p int) (int, int) {
	offset := p + 1
	return (u + offset) % c.n, c.n - 1 - offset
}

// Diameter implements Topology.
func (c *Clique) Diameter() int {
	if c.n == 1 {
		return 0
	}
	return 1
}

// Name implements Topology.
func (c *Clique) Name() string { return "clique" }

// Interface compliance checks.
var (
	_ Topology = (*Graph)(nil)
	_ Topology = (*Clique)(nil)
)
