package topo

import (
	"fmt"
	"strconv"
	"strings"

	"cliquelect/internal/xrand"
)

// Spec strings name topologies on CLI flags, the wire schema and the result
// cache. Forms:
//
//	""            the clique (the default; canonical form is the empty string)
//	"clique"      alias for ""
//	"ring"        cycle
//	"torus"       squarest 2-D wraparound grid
//	"rreg"        random d-regular graph; "rreg:d=8" sets the degree (default 4)
//	"power"       Barabási–Albert graph; "power:m=4" sets the attachment count (default 2)
//	"edges:0-1,1-2"  explicit undirected edge list
//
// Canonical reduces any accepted spelling to its canonical form — parameter
// defaults made explicit ("rreg" -> "rreg:d=4"), clique to "", edge lists
// normalized and sorted — so equal topologies always hash to equal
// fingerprints.

// Families lists the non-clique generator family names, in listing order.
// Spec capability metadata (elect.Spec.Topologies) names these.
func Families() []string {
	return []string{"ring", "torus", "rreg", "power", "edges"}
}

// defaults for the parameterized generators.
const (
	defaultRegularDegree = 4
	defaultAttachCount   = 2
)

// parsed is a validated, canonicalized topology spec.
type parsed struct {
	family string // "" (clique), "ring", "torus", "rreg", "power", "edges"
	canon  string // canonical spec string ("" for the clique)
	d      int    // rreg degree
	m      int    // power attachment count
	edges  [][2]int
}

// parse validates a spec string and resolves parameter defaults.
func parse(spec string) (parsed, error) {
	spec = strings.TrimSpace(spec)
	head, arg, hasArg := strings.Cut(spec, ":")
	switch head {
	case "", "clique":
		if hasArg {
			return parsed{}, fmt.Errorf("topo: %q takes no parameters", head)
		}
		return parsed{family: "", canon: ""}, nil
	case "ring", "torus":
		if hasArg {
			return parsed{}, fmt.Errorf("topo: %q takes no parameters", head)
		}
		return parsed{family: head, canon: head}, nil
	case "rreg":
		d, err := intParam(head, arg, hasArg, "d", defaultRegularDegree)
		if err != nil {
			return parsed{}, err
		}
		if d < 1 {
			return parsed{}, fmt.Errorf("topo: random-regular degree d = %d, need d >= 1", d)
		}
		return parsed{family: head, canon: fmt.Sprintf("rreg:d=%d", d), d: d}, nil
	case "power":
		m, err := intParam(head, arg, hasArg, "m", defaultAttachCount)
		if err != nil {
			return parsed{}, err
		}
		if m < 1 {
			return parsed{}, fmt.Errorf("topo: power-law attachment m = %d, need m >= 1", m)
		}
		return parsed{family: head, canon: fmt.Sprintf("power:m=%d", m), m: m}, nil
	case "edges":
		if !hasArg || arg == "" {
			return parsed{}, fmt.Errorf("topo: edge-list spec needs edges, e.g. %q", "edges:0-1,1-2")
		}
		edges, err := parseEdges(arg)
		if err != nil {
			return parsed{}, err
		}
		return parsed{family: head, canon: edgesName(edges), edges: edges}, nil
	}
	return parsed{}, fmt.Errorf("topo: unknown topology %q (have: clique, ring, torus, rreg[:d=K], power[:m=K], edges:u-v,...)", spec)
}

// intParam parses the single "key=value" parameter of a generator spec.
func intParam(head, arg string, hasArg bool, key string, def int) (int, error) {
	if !hasArg {
		return def, nil
	}
	k, v, ok := strings.Cut(arg, "=")
	if !ok || k != key {
		return 0, fmt.Errorf("topo: %s takes %s=<int>, got %q", head, key, arg)
	}
	val, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("topo: %s parameter %s=%q is not an integer", head, key, v)
	}
	return val, nil
}

// parseEdges parses "0-1,1-2,..." into an edge list.
func parseEdges(arg string) ([][2]int, error) {
	parts := strings.Split(arg, ",")
	edges := make([][2]int, 0, len(parts))
	for _, p := range parts {
		a, b, ok := strings.Cut(strings.TrimSpace(p), "-")
		if !ok {
			return nil, fmt.Errorf("topo: edge %q is not of the form u-v", p)
		}
		u, err := strconv.Atoi(a)
		if err != nil {
			return nil, fmt.Errorf("topo: edge endpoint %q is not an integer", a)
		}
		v, err := strconv.Atoi(b)
		if err != nil {
			return nil, fmt.Errorf("topo: edge endpoint %q is not an integer", b)
		}
		edges = append(edges, [2]int{u, v})
	}
	return edges, nil
}

// Canonical validates a spec string and returns its canonical form. The
// clique canonicalizes to "" — the form under which a run carries no
// topology at all, which is what keeps clique fingerprints byte-identical
// to the pre-topology key space.
func Canonical(spec string) (string, error) {
	p, err := parse(spec)
	if err != nil {
		return "", err
	}
	return p.canon, nil
}

// Family returns the generator family of a valid spec ("" for the clique).
func Family(spec string) (string, error) {
	p, err := parse(spec)
	if err != nil {
		return "", err
	}
	return p.family, nil
}

// Build constructs the topology named by spec on n nodes. Seeded generators
// (rreg, power) draw from an xrand stream seeded with seed; the fixed
// topologies ignore it. ""/"clique" builds the implicit Clique.
func Build(spec string, n int, seed uint64) (Topology, error) {
	p, err := parse(spec)
	if err != nil {
		return nil, err
	}
	switch p.family {
	case "":
		return NewClique(n)
	case "ring":
		return Ring(n)
	case "torus":
		return Torus(n)
	case "rreg":
		return RandomRegular(n, p.d, xrand.New(seed))
	case "power":
		return PowerLaw(n, p.m, xrand.New(seed))
	case "edges":
		g, err := FromEdges(n, p.edges)
		if err != nil {
			return nil, err
		}
		return g, nil
	}
	return nil, fmt.Errorf("topo: unknown family %q", p.family)
}
