package topo

import (
	"fmt"
	"slices"

	"cliquelect/internal/xrand"
)

// Ring returns the cycle on n nodes (n = 2 is the single edge, n = 1 the
// trivial graph). Every node has degree 2 (1 at n = 2) and the diameter is
// floor(n/2) — the high-diameter extreme of the generator family.
func Ring(n int) (*Graph, error) {
	return newGraph("ring", n, cycleEdges(nil, n, 0, 1))
}

// Torus returns the 2-dimensional r x c wraparound grid with r·c = n, where
// r is the largest divisor of n with r <= sqrt(n) — the squarest torus n
// admits. Prime n degenerates to a 1 x n torus, i.e. a ring. Diameter is
// floor(r/2) + floor(c/2).
func Torus(n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topo: n = %d", n)
	}
	r := 1
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			r = d
		}
	}
	c := n / r
	var edges [][2]int
	for i := 0; i < r; i++ {
		// Row cycle: nodes i*c .. i*c+c-1 left to right.
		edges = cycleEdges(edges, c, i*c, 1)
	}
	for j := 0; j < c; j++ {
		// Column cycle: nodes j, j+c, j+2c, ...
		edges = cycleEdges(edges, r, j, c)
	}
	return newGraph("torus", n, edges)
}

// cycleEdges appends the edges of a cycle over the L nodes base, base+step,
// ..., base+(L-1)*step. L = 2 contributes the single edge (no doubled
// wraparound), L = 1 contributes nothing.
func cycleEdges(edges [][2]int, L, base, step int) [][2]int {
	for x := 0; x+1 < L; x++ {
		edges = append(edges, [2]int{base + x*step, base + (x+1)*step})
	}
	if L > 2 {
		edges = append(edges, [2]int{base + (L-1)*step, base})
	}
	return edges
}

// regularAttempts bounds the swap-then-check loop of RandomRegular: a
// randomization pass whose result came out disconnected is rethrown. The
// circulant start is connected and double-edge swaps disconnect only rarely,
// so in practice the first attempt succeeds; the bound turns pathological
// parameters (d = 1 with n > 2, where no connected regular graph exists)
// into an error instead of a spin.
const regularAttempts = 200

// RandomRegular returns a random simple connected d-regular graph on n nodes
// by the switch-chain construction: start from the connected circulant
// d-regular graph (each node linked to its d/2 nearest ring neighbors on each
// side, plus the antipode when d is odd) and randomize it with ~10·n·d
// degree-preserving double-edge swaps, accepting only swaps that keep the
// graph simple. The chain mixes to near-uniform over simple d-regular graphs
// and, unlike pairing-model rejection, never stalls at larger d. n·d must be
// even and 1 <= d < n.
func RandomRegular(n, d int, rng *xrand.RNG) (*Graph, error) {
	name := fmt.Sprintf("rreg:d=%d", d)
	if n == 1 && d == 0 {
		return newGraph(name, 1, nil)
	}
	if d < 1 || d >= n {
		return nil, fmt.Errorf("topo: random-regular degree d = %d with n = %d, need 1 <= d < n", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("topo: random-regular n·d = %d·%d is odd", n, d)
	}
	base := circulantEdges(n, d)
	for attempt := 0; attempt < regularAttempts; attempt++ {
		edges := slices.Clone(base)
		present := make(map[[2]int]struct{}, len(edges))
		for _, e := range edges {
			present[e] = struct{}{}
		}
		// Double-edge swap: replace {a-b, c-e} with {a-c, b-e}, keeping both
		// orientations reachable by randomly flipping one edge first.
		for s := 0; s < 10*len(edges); s++ {
			i := rng.Intn(len(edges))
			j := rng.Intn(len(edges))
			if i == j {
				continue
			}
			a, b := edges[i][0], edges[i][1]
			c, e := edges[j][0], edges[j][1]
			if rng.Bernoulli(0.5) {
				c, e = e, c
			}
			n1, n2 := normEdge(a, c), normEdge(b, e)
			if a == c || b == e {
				continue // would create a self-loop
			}
			if _, dup := present[n1]; dup {
				continue
			}
			if _, dup := present[n2]; dup {
				continue
			}
			delete(present, edges[i])
			delete(present, edges[j])
			present[n1] = struct{}{}
			present[n2] = struct{}{}
			edges[i], edges[j] = n1, n2
		}
		g, err := newGraph(name, n, edges)
		if err != nil {
			continue // randomization disconnected the graph: rethrow
		}
		return g, nil
	}
	return nil, fmt.Errorf("topo: no simple connected %d-regular graph on %d nodes after %d attempts (d >= 2 required for n > 2)",
		d, n, regularAttempts)
}

// circulantEdges returns the edges of the connected circulant d-regular graph
// on n nodes: chords to the k nearest ring neighbors on each side for
// k = 1..d/2, plus antipodal chords when d is odd (n is even then, since n·d
// is even). Edges are normalized u < v.
func circulantEdges(n, d int) [][2]int {
	edges := make([][2]int, 0, n*d/2)
	for k := 1; k <= d/2; k++ {
		for u := 0; u < n; u++ {
			edges = append(edges, normEdge(u, (u+k)%n))
		}
	}
	if d%2 == 1 {
		for u := 0; u < n/2; u++ {
			edges = append(edges, normEdge(u, u+n/2))
		}
	}
	return edges
}

// normEdge orders an undirected edge's endpoints as u < v.
func normEdge(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// PowerLaw returns a Barabási–Albert preferential-attachment graph: starting
// from a complete graph on m+1 seed nodes, every further node attaches to m
// distinct existing nodes drawn proportionally to their current degree (by
// sampling the endpoint multiset, resampling duplicates). The result is
// connected by construction, has m·n + O(m^2) edges and a power-law degree
// tail — the low-diameter, hub-heavy counterpoint to Ring. n <= m+1 returns
// the complete graph on n nodes.
func PowerLaw(n, m int, rng *xrand.RNG) (*Graph, error) {
	name := fmt.Sprintf("power:m=%d", m)
	if m < 1 {
		return nil, fmt.Errorf("topo: power-law attachment m = %d, need m >= 1", m)
	}
	if n < 1 {
		return nil, fmt.Errorf("topo: n = %d", n)
	}
	seed := m + 1
	if seed > n {
		seed = n
	}
	var edges [][2]int
	// targets is the degree-weighted endpoint multiset: each edge appends
	// both endpoints, so drawing uniformly from it is preferential
	// attachment.
	var targets []int
	addEdge := func(u, v int) {
		edges = append(edges, [2]int{u, v})
		targets = append(targets, u, v)
	}
	for u := 0; u < seed; u++ {
		for v := u + 1; v < seed; v++ {
			addEdge(u, v)
		}
	}
	picked := make([]int, 0, m)
	for u := seed; u < n; u++ {
		picked = picked[:0]
		for len(picked) < m {
			v := targets[rng.Intn(len(targets))]
			if !slices.Contains(picked, v) {
				picked = append(picked, v)
			}
		}
		for _, v := range picked {
			addEdge(u, v)
		}
	}
	return newGraph(name, n, edges)
}

// FromEdges returns the explicit graph over the given undirected edge list.
// The list must describe a simple connected graph on [0, n).
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	return newGraph(edgesName(edges), n, edges)
}

// edgesName renders the canonical "edges:u-v,..." spec of an explicit edge
// list: endpoints normalized to u < v, pairs sorted lexicographically.
func edgesName(edges [][2]int) string {
	norm := make([][2]int, len(edges))
	for i, e := range edges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		norm[i] = [2]int{u, v}
	}
	slices.SortFunc(norm, func(a, b [2]int) int {
		if a[0] != b[0] {
			return a[0] - b[0]
		}
		return a[1] - b[1]
	})
	out := []byte("edges:")
	for i, e := range norm {
		if i > 0 {
			out = append(out, ',')
		}
		out = fmt.Appendf(out, "%d-%d", e[0], e[1])
	}
	return string(out)
}
