package topo

import (
	"testing"

	"cliquelect/internal/portmap"
	"cliquelect/internal/xrand"
)

// checkInvolution verifies the port-mapping contract on every port: Dest is
// a bijective involution, Neighbor agrees with Dest, and degrees match row
// widths.
func checkInvolution(t *testing.T, g Topology) {
	t.Helper()
	n := g.N()
	var dir int64
	for u := 0; u < n; u++ {
		deg := g.Degree(u)
		seen := make(map[int]bool, deg)
		for p := 0; p < deg; p++ {
			v, q := g.Dest(u, p)
			if v == u {
				t.Fatalf("Dest(%d, %d) is a self-loop", u, p)
			}
			if got := g.Neighbor(u, p); got != v {
				t.Fatalf("Neighbor(%d, %d) = %d, Dest says %d", u, p, got, v)
			}
			if q < 0 || q >= g.Degree(v) {
				t.Fatalf("Dest(%d, %d) arrival port %d outside degree %d of node %d", u, p, q, g.Degree(v), v)
			}
			if bu, bp := g.Dest(v, q); bu != u || bp != p {
				t.Fatalf("Dest(%d, %d) = (%d, %d) but Dest(%d, %d) = (%d, %d): not an involution",
					u, p, v, q, v, q, bu, bp)
			}
			if seen[v] {
				t.Fatalf("node %d has two ports to node %d", u, v)
			}
			seen[v] = true
			dir++
		}
	}
	if dir != 2*g.M() {
		t.Fatalf("directed edge count %d != 2*M() = %d", dir, 2*g.M())
	}
}

func TestRing(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 64} {
		g, err := Ring(n)
		if err != nil {
			t.Fatalf("Ring(%d): %v", n, err)
		}
		checkInvolution(t, g)
		wantM := int64(n)
		if n <= 2 {
			wantM = int64(n - 1)
		}
		if g.M() != wantM {
			t.Errorf("Ring(%d).M() = %d, want %d", n, g.M(), wantM)
		}
		if n > 2 && g.Diameter() != n/2 {
			t.Errorf("Ring(%d).Diameter() = %d, want %d", n, g.Diameter(), n/2)
		}
	}
}

func TestTorus(t *testing.T) {
	for _, tc := range []struct{ n, diam int }{
		{16, 4}, // 4x4
		{12, 3}, // 3x4: 1 + 2
		{7, 3},  // prime: 1x7 ring
		{64, 8}, // 8x8
		{2, 1},  // 1x2
		{100, 10} /* 10x10 */} {
		g, err := Torus(tc.n)
		if err != nil {
			t.Fatalf("Torus(%d): %v", tc.n, err)
		}
		checkInvolution(t, g)
		if g.Diameter() != tc.diam {
			t.Errorf("Torus(%d).Diameter() = %d, want %d", tc.n, g.Diameter(), tc.diam)
		}
	}
}

func TestRandomRegular(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{16, 4}, {50, 3}, {64, 8}, {101, 4}} {
		g, err := RandomRegular(tc.n, tc.d, xrand.New(7))
		if err != nil {
			t.Fatalf("RandomRegular(%d, %d): %v", tc.n, tc.d, err)
		}
		checkInvolution(t, g)
		for u := 0; u < tc.n; u++ {
			if g.Degree(u) != tc.d {
				t.Fatalf("RandomRegular(%d, %d): node %d has degree %d", tc.n, tc.d, u, g.Degree(u))
			}
		}
	}
	if _, err := RandomRegular(5, 3, xrand.New(1)); err == nil {
		t.Error("RandomRegular(5, 3) with odd n·d should fail")
	}
	if _, err := RandomRegular(4, 4, xrand.New(1)); err == nil {
		t.Error("RandomRegular(4, 4) with d >= n should fail")
	}
}

func TestPowerLaw(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{64, 2}, {100, 4}, {3, 2}, {1, 1}} {
		g, err := PowerLaw(tc.n, tc.m, xrand.New(3))
		if err != nil {
			t.Fatalf("PowerLaw(%d, %d): %v", tc.n, tc.m, err)
		}
		checkInvolution(t, g)
	}
	// The hub structure should show: some node well above the attachment
	// degree.
	g, _ := PowerLaw(256, 2, xrand.New(5))
	maxDeg := 0
	for u := 0; u < g.N(); u++ {
		if d := g.Degree(u); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 8 {
		t.Errorf("PowerLaw(256, 2) max degree %d, expected a hub >= 8", maxDeg)
	}
}

func TestFromEdgesValidation(t *testing.T) {
	if _, err := FromEdges(3, [][2]int{{0, 1}, {1, 2}}); err != nil {
		t.Fatalf("path on 3 nodes: %v", err)
	}
	for name, edges := range map[string][][2]int{
		"self-loop":    {{0, 0}, {0, 1}, {1, 2}},
		"duplicate":    {{0, 1}, {1, 0}, {1, 2}},
		"out-of-range": {{0, 3}, {0, 1}, {1, 2}},
		"disconnected": {{0, 1}},
	} {
		if _, err := FromEdges(3, edges); err == nil {
			t.Errorf("FromEdges(%s) should fail", name)
		}
	}
}

func TestCliqueMatchesPortmapCanonical(t *testing.T) {
	// The implicit clique must agree port-for-port with portmap.Canonical,
	// so a topology view of the clique and the engines' default wiring
	// describe the same network.
	for _, n := range []int{2, 3, 5, 16} {
		c, err := NewClique(n)
		if err != nil {
			t.Fatal(err)
		}
		checkInvolution(t, c)
		pm := portmap.NewCanonical(n)
		for u := 0; u < n; u++ {
			for p := 0; p < n-1; p++ {
				cv, cq := c.Dest(u, p)
				pv, pq := pm.Dest(u, p)
				if cv != pv || cq != pq {
					t.Fatalf("n=%d: Clique.Dest(%d,%d) = (%d,%d), portmap.Canonical = (%d,%d)",
						n, u, p, cv, cq, pv, pq)
				}
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	for _, spec := range []string{"ring", "torus", "rreg:d=4", "power:m=3"} {
		a, err := Build(spec, 64, 42)
		if err != nil {
			t.Fatalf("Build(%s): %v", spec, err)
		}
		b, _ := Build(spec, 64, 42)
		ga, oka := a.(*Graph)
		gb, okb := b.(*Graph)
		if !oka || !okb {
			t.Fatalf("Build(%s) did not return *Graph", spec)
		}
		if len(ga.adj) != len(gb.adj) {
			t.Fatalf("Build(%s) edge counts differ across identical seeds", spec)
		}
		for i := range ga.adj {
			if ga.adj[i] != gb.adj[i] || ga.back[i] != gb.back[i] {
				t.Fatalf("Build(%s) wiring differs across identical seeds", spec)
			}
		}
		// A different seed must change the seeded generators.
		if spec == "rreg:d=4" || spec == "power:m=3" {
			c, _ := Build(spec, 64, 43)
			gc := c.(*Graph)
			same := len(gc.adj) == len(ga.adj)
			if same {
				for i := range ga.adj {
					if ga.adj[i] != gc.adj[i] {
						same = false
						break
					}
				}
			}
			if same {
				t.Errorf("Build(%s) identical across different seeds", spec)
			}
		}
	}
}

func TestCanonical(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"", ""},
		{"clique", ""},
		{" ring ", "ring"},
		{"torus", "torus"},
		{"rreg", "rreg:d=4"},
		{"rreg:d=8", "rreg:d=8"},
		{"power", "power:m=2"},
		{"power:m=4", "power:m=4"},
		{"edges:2-1,0-1", "edges:0-1,1-2"},
	} {
		got, err := Canonical(tc.in)
		if err != nil {
			t.Errorf("Canonical(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Canonical(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"lattice", "rreg:k=4", "rreg:d=x", "power:m=0", "edges:", "edges:0", "clique:x", "rreg:d=0"} {
		if _, err := Canonical(bad); err == nil {
			t.Errorf("Canonical(%q) should fail", bad)
		}
	}
}

func TestFamily(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"", ""}, {"clique", ""}, {"ring", "ring"}, {"rreg:d=8", "rreg"}, {"power:m=4", "power"},
	} {
		got, err := Family(tc.in)
		if err != nil {
			t.Fatalf("Family(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Errorf("Family(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestBuildCliqueAndTrivial(t *testing.T) {
	c, err := Build("clique", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(*Clique); !ok {
		t.Fatalf("Build(clique) returned %T, want *Clique", c)
	}
	if c.Diameter() != 1 || c.M() != 28 {
		t.Errorf("clique(8): diameter %d edges %d, want 1 and 28", c.Diameter(), c.M())
	}
	one, err := Build("ring", 1, 1)
	if err != nil {
		t.Fatalf("ring on one node: %v", err)
	}
	if one.M() != 0 || one.Diameter() != 0 || one.Degree(0) != 0 {
		t.Error("trivial ring should have no edges and diameter 0")
	}
}
