// Package trace records the communication graph of a clique execution.
//
// Definition 3.1 of the paper defines the round-r communication graph
// G_r: a directed edge (u,v) exists if u sent a message over a port connected
// to v in some round r' < r. The lower-bound machinery of Section 3 reasons
// entirely about weakly connected components of this graph and their
// "capacity" (Definition 3.2: each node's count of untouched peers inside its
// component). This package maintains that graph incrementally with a
// union-find over weakly connected components, exposing exactly the
// quantities the proofs use: component sizes, per-round growth, capacity, and
// port-open counts.
//
// Naming note: despite the name, this is NOT request tracing. The
// distributed request-tracing layer of the serving stack — spans,
// traceparent propagation, the /v1/traces endpoints — lives in
// internal/obs (span.go / tracecollect.go). This package is a paper
// instrument; that one is a serving instrument. Neither imports the other.
package trace

// Recorder accumulates communication-graph state for an n-node clique.
// The zero value is unusable; call NewRecorder.
type Recorder struct {
	n int

	parent []int // union-find over weakly connected components
	size   []int

	edges     map[[2]int]struct{} // directed (src,dst) pairs seen
	degreeAll []int               // per-node count of distinct touched peers (in or out)
	touched   map[[2]int]struct{} // unordered pairs that have communicated

	portOpens  []int // per-node count of ports first used for sending
	roundEdges []int // new directed edges per round (index = round, 0 unused)
	roundOpens []int // new port-opens per round

	maxRound int
}

// NewRecorder creates a recorder for n nodes with no edges (the round-1
// communication graph: n singleton components).
func NewRecorder(n int) *Recorder {
	r := &Recorder{
		n:         n,
		parent:    make([]int, n),
		size:      make([]int, n),
		edges:     make(map[[2]int]struct{}),
		degreeAll: make([]int, n),
		touched:   make(map[[2]int]struct{}),
		portOpens: make([]int, n),
	}
	for i := range r.parent {
		r.parent[i] = i
		r.size[i] = 1
	}
	return r
}

// N returns the number of nodes.
func (r *Recorder) N() int { return r.n }

// RecordSend records that src sent a message to dst in the given round.
// opened reports whether this send was the first use of src's port to dst
// (a "port open" in the paper's terminology).
func (r *Recorder) RecordSend(round, src, dst int, opened bool) {
	if round > r.maxRound {
		r.maxRound = round
	}
	for len(r.roundEdges) <= round {
		r.roundEdges = append(r.roundEdges, 0)
		r.roundOpens = append(r.roundOpens, 0)
	}
	if opened {
		r.portOpens[src]++
		r.roundOpens[round]++
	}
	key := [2]int{src, dst}
	if _, dup := r.edges[key]; !dup {
		r.edges[key] = struct{}{}
		r.roundEdges[round]++
	}
	pair := [2]int{min(src, dst), max(src, dst)}
	if _, dup := r.touched[pair]; !dup && src != dst {
		r.touched[pair] = struct{}{}
		r.degreeAll[src]++
		r.degreeAll[dst]++
	}
	r.union(src, dst)
}

// TotalEdges returns the number of distinct directed (src,dst) pairs
// recorded so far — the edge count of the communication graph.
func (r *Recorder) TotalEdges() int { return len(r.edges) }

// Component returns the canonical representative of u's weakly connected
// component.
func (r *Recorder) Component(u int) int { return r.find(u) }

// ComponentSize returns |C| for the component containing u.
func (r *Recorder) ComponentSize(u int) int { return r.size[r.find(u)] }

// SameComponent reports whether u and v are weakly connected.
func (r *Recorder) SameComponent(u, v int) bool { return r.find(u) == r.find(v) }

// MaxComponent returns the size of the largest weakly connected component.
func (r *Recorder) MaxComponent() int {
	best := 0
	for u := 0; u < r.n; u++ {
		if r.parent[u] == u && r.size[u] > best {
			best = r.size[u]
		}
	}
	if best == 0 && r.n > 0 {
		best = 1
	}
	return best
}

// NumComponents returns the number of weakly connected components.
func (r *Recorder) NumComponents() int {
	c := 0
	for u := 0; u < r.n; u++ {
		if r.find(u) == u {
			c++
		}
	}
	return c
}

// ComponentSizes returns the multiset of component sizes in descending
// order.
func (r *Recorder) ComponentSizes() []int {
	var out []int
	for u := 0; u < r.n; u++ {
		if r.find(u) == u {
			out = append(out, r.size[u])
		}
	}
	// insertion sort descending; component counts are small
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] > out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Capacity returns u's capacity inside its component per Definition 3.2:
// the number of nodes in u's component to which u has neither sent nor from
// which it has received a message. By the definition, the capacity of a
// component C is min over u in C of that count.
func (r *Recorder) Capacity(u int) int {
	return r.ComponentSize(u) - 1 - r.degreeAll[u]
}

// ComponentCapacity returns the capacity of the whole component containing
// u: the minimum per-node capacity (Definition 3.2). O(n).
func (r *Recorder) ComponentCapacity(u int) int {
	root := r.find(u)
	capacity := r.size[root] // upper bound; shrunk below
	for v := 0; v < r.n; v++ {
		if r.find(v) == root {
			if c := r.Capacity(v); c < capacity {
				capacity = c
			}
		}
	}
	return capacity
}

// HasEdge reports whether the directed edge (src,dst) has been recorded.
func (r *Recorder) HasEdge(src, dst int) bool {
	_, ok := r.edges[[2]int{src, dst}]
	return ok
}

// PortOpens returns the number of distinct ports node u has opened (first
// sends). The Theorem 3.11 harness counts these: Ω(n log n) port opens imply
// Ω(n log n) messages.
func (r *Recorder) PortOpens(u int) int { return r.portOpens[u] }

// TotalPortOpens returns the total number of port-open events.
func (r *Recorder) TotalPortOpens() int {
	t := 0
	for _, c := range r.portOpens {
		t += c
	}
	return t
}

// RoundEdges returns the number of new directed edges first seen in the
// given round, or 0 if out of range.
func (r *Recorder) RoundEdges(round int) int {
	if round < 0 || round >= len(r.roundEdges) {
		return 0
	}
	return r.roundEdges[round]
}

// RoundOpens returns the number of port-open events in the given round.
func (r *Recorder) RoundOpens(round int) int {
	if round < 0 || round >= len(r.roundOpens) {
		return 0
	}
	return r.roundOpens[round]
}

// MaxRound returns the largest round index recorded.
func (r *Recorder) MaxRound() int { return r.maxRound }

func (r *Recorder) find(u int) int {
	for r.parent[u] != u {
		r.parent[u] = r.parent[r.parent[u]]
		u = r.parent[u]
	}
	return u
}

func (r *Recorder) union(u, v int) {
	ru, rv := r.find(u), r.find(v)
	if ru == rv {
		return
	}
	if r.size[ru] < r.size[rv] {
		ru, rv = rv, ru
	}
	r.parent[rv] = ru
	r.size[ru] += r.size[rv]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
