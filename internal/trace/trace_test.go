package trace

import (
	"testing"
	"testing/quick"

	"cliquelect/internal/xrand"
)

func TestEmptyGraphSingletons(t *testing.T) {
	r := NewRecorder(8)
	if r.NumComponents() != 8 {
		t.Fatalf("components = %d", r.NumComponents())
	}
	if r.MaxComponent() != 1 {
		t.Fatalf("max component = %d", r.MaxComponent())
	}
	for u := 0; u < 8; u++ {
		if r.ComponentSize(u) != 1 {
			t.Fatalf("node %d size %d", u, r.ComponentSize(u))
		}
	}
}

func TestMergeChain(t *testing.T) {
	r := NewRecorder(5)
	r.RecordSend(1, 0, 1, true)
	r.RecordSend(1, 2, 3, true)
	if r.NumComponents() != 3 {
		t.Fatalf("components = %d", r.NumComponents())
	}
	if r.SameComponent(0, 2) {
		t.Fatal("0 and 2 should be separate")
	}
	r.RecordSend(2, 1, 2, true)
	if !r.SameComponent(0, 3) {
		t.Fatal("0 and 3 should be weakly connected")
	}
	if r.MaxComponent() != 4 {
		t.Fatalf("max = %d", r.MaxComponent())
	}
	sizes := r.ComponentSizes()
	if len(sizes) != 2 || sizes[0] != 4 || sizes[1] != 1 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestDirectedEdgesAndDuplicates(t *testing.T) {
	r := NewRecorder(3)
	r.RecordSend(1, 0, 1, true)
	r.RecordSend(1, 0, 1, false) // resend over same port: no new edge
	r.RecordSend(2, 1, 0, true)  // reverse direction: new directed edge
	if !r.HasEdge(0, 1) || !r.HasEdge(1, 0) || r.HasEdge(0, 2) {
		t.Fatal("edge bookkeeping wrong")
	}
	if r.RoundEdges(1) != 1 || r.RoundEdges(2) != 1 {
		t.Fatalf("round edges: r1=%d r2=%d", r.RoundEdges(1), r.RoundEdges(2))
	}
	if r.TotalPortOpens() != 2 {
		t.Fatalf("port opens = %d", r.TotalPortOpens())
	}
}

func TestCapacityDefinition(t *testing.T) {
	// Component {0,1,2,3} where 0 talked to 1, 2 talked to 3, 1 talked to 2.
	r := NewRecorder(6)
	r.RecordSend(1, 0, 1, true)
	r.RecordSend(1, 2, 3, true)
	r.RecordSend(2, 1, 2, true)
	// Node 0 touched only 1, so it has 2 untouched peers (2,3) in component.
	if got := r.Capacity(0); got != 2 {
		t.Fatalf("capacity(0) = %d, want 2", got)
	}
	// Node 1 touched 0 and 2: 1 untouched peer (3).
	if got := r.Capacity(1); got != 1 {
		t.Fatalf("capacity(1) = %d, want 1", got)
	}
	// Component capacity is the min over members.
	if got := r.ComponentCapacity(0); got != 1 {
		t.Fatalf("component capacity = %d, want 1", got)
	}
}

func TestCapacityCountsBothDirections(t *testing.T) {
	r := NewRecorder(4)
	r.RecordSend(1, 0, 1, true)
	r.RecordSend(1, 1, 0, true) // both directions: still one touched pair
	if got := r.Capacity(0); got != 0 {
		t.Fatalf("capacity(0) = %d, want 0", got)
	}
}

// TestComponentsMatchNaive cross-checks the union-find against a naive BFS
// over random edge sets.
func TestComponentsMatchNaive(t *testing.T) {
	prop := func(seed uint64, nn uint8, mm uint8) bool {
		n := int(nn%20) + 2
		m := int(mm % 40)
		rng := xrand.New(seed)
		r := NewRecorder(n)
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			r.RecordSend(1, u, v, true)
			adj[u][v], adj[v][u] = true, true
		}
		// Naive BFS component labelling.
		label := make([]int, n)
		for i := range label {
			label[i] = -1
		}
		next := 0
		for s := 0; s < n; s++ {
			if label[s] != -1 {
				continue
			}
			queue := []int{s}
			label[s] = next
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				for v := 0; v < n; v++ {
					if adj[u][v] && label[v] == -1 {
						label[v] = next
						queue = append(queue, v)
					}
				}
			}
			next++
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if (label[u] == label[v]) != r.SameComponent(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundAccounting(t *testing.T) {
	r := NewRecorder(10)
	r.RecordSend(3, 0, 1, true)
	r.RecordSend(3, 0, 2, true)
	r.RecordSend(5, 4, 5, true)
	if r.MaxRound() != 5 {
		t.Fatalf("max round = %d", r.MaxRound())
	}
	if r.RoundOpens(3) != 2 || r.RoundOpens(4) != 0 || r.RoundOpens(5) != 1 {
		t.Fatal("round opens wrong")
	}
	if r.RoundEdges(99) != 0 || r.RoundOpens(-1) != 0 {
		t.Fatal("out-of-range rounds should be 0")
	}
}

func TestPortOpensPerNode(t *testing.T) {
	r := NewRecorder(4)
	r.RecordSend(1, 0, 1, true)
	r.RecordSend(1, 0, 2, true)
	r.RecordSend(2, 0, 1, false)
	if r.PortOpens(0) != 2 || r.PortOpens(1) != 0 {
		t.Fatalf("opens: %d, %d", r.PortOpens(0), r.PortOpens(1))
	}
}
