package obs

import (
	"os"
	"strconv"
	"strings"
)

// ProcessRSSBytes reports the process's resident set size from Linux's
// /proc/self/statm (field 2, in pages). On platforms without procfs — or
// on any read or parse failure — it returns 0 rather than erroring: RSS is
// a best-effort gauge (the process_rss_bytes metric and the electtop
// memory column), never a correctness input.
func ProcessRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || pages < 0 {
		return 0
	}
	return pages * int64(os.Getpagesize())
}
