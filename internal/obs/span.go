package obs

// This file is the distributed request-tracing half of the observability
// core: 128-bit trace / 64-bit span identities, the W3C traceparent header
// codec that carries them across process hops, and the Span record every
// layer of the serving stack emits. The collector and the Chrome
// trace-event exporter live in tracecollect.go.
//
// Naming note: this is REQUEST tracing — the causal story of one serving
// request across client, coordinator and worker daemons. It is unrelated to
// internal/trace, which records the communication graph G_r of a clique
// execution for the paper's lower-bound machinery (Definition 3.1). The two
// never import each other.

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"time"
)

// TraceID is a 128-bit trace identity, rendered as 32 lowercase hex digits
// (the W3C trace-context trace-id field). The zero value is invalid.
type TraceID [16]byte

// SpanID is a 64-bit span identity, rendered as 16 lowercase hex digits
// (the W3C parent-id field). The zero value means "no span".
type SpanID [8]byte

// IsZero reports the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// MarshalText renders the hex form (JSON wire format of span records).
func (t TraceID) MarshalText() ([]byte, error) { return hexAppend(t[:]), nil }

// UnmarshalText parses the hex form.
func (t *TraceID) UnmarshalText(b []byte) error { return hexInto(t[:], b, "trace id") }

// MarshalText renders the hex form.
func (s SpanID) MarshalText() ([]byte, error) { return hexAppend(s[:]), nil }

// UnmarshalText parses the hex form.
func (s *SpanID) UnmarshalText(b []byte) error { return hexInto(s[:], b, "span id") }

func hexAppend(b []byte) []byte {
	out := make([]byte, hex.EncodedLen(len(b)))
	hex.Encode(out, b)
	return out
}

func hexInto(dst, src []byte, what string) error {
	if len(src) != hex.EncodedLen(len(dst)) {
		return fmt.Errorf("obs: %s %q is not %d hex digits", what, src, hex.EncodedLen(len(dst)))
	}
	_, err := hex.Decode(dst, src)
	return err
}

// ParseTraceID parses 32 hex digits; ok is false for anything else
// (including the all-zero id, which the spec declares invalid).
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if hexInto(t[:], []byte(s), "trace id") != nil || t.IsZero() {
		return TraceID{}, false
	}
	return t, true
}

// SpanContext is the propagated identity of one span: which trace it
// belongs to and which span is current. It is what rides the traceparent
// header between processes and the request context within one.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether both ids are set.
func (c SpanContext) Valid() bool { return !c.Trace.IsZero() && !c.Span.IsZero() }

// NewSpanContext mints a fresh root context: a new random trace id and a
// new random span id. Randomness comes from crypto/rand (falling back to
// the clock on a broken platform), never from the engines' seeded streams —
// tracing must not perturb a single protocol coin flip.
func NewSpanContext() SpanContext {
	var c SpanContext
	fillRandom(c.Trace[:])
	fillRandom(c.Span[:])
	return c
}

// Child returns a context in the same trace with a fresh span id — the
// identity of a new child span whose parent is c.Span.
func (c SpanContext) Child() SpanContext {
	out := SpanContext{Trace: c.Trace}
	fillRandom(out.Span[:])
	return out
}

func fillRandom(b []byte) {
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing is a broken platform; derive uniqueness from
		// the clock rather than emitting zero (= invalid) ids.
		now := uint64(time.Now().UnixNano())
		for i := range b {
			b[i] = byte(now >> (8 * (uint(i) % 8)))
			if b[i] == 0 {
				b[i] = 1
			}
		}
	}
}

// traceparent version and flags: we always emit version 00 with the
// "sampled" flag set, and accept any flags on parse.
const traceparentLen = len("00-00000000000000000000000000000000-0000000000000000-00")

// Traceparent renders the W3C trace-context header value,
// "00-<trace-id>-<parent-id>-01". An invalid context renders "".
func (c SpanContext) Traceparent() string {
	if !c.Valid() {
		return ""
	}
	b := make([]byte, 0, traceparentLen)
	b = append(b, '0', '0', '-')
	b = append(b, hexAppend(c.Trace[:])...)
	b = append(b, '-')
	b = append(b, hexAppend(c.Span[:])...)
	b = append(b, '-', '0', '1')
	return string(b)
}

// ParseTraceparent parses a W3C traceparent header value. It accepts any
// two-hex-digit version except the reserved "ff", requires the fixed
// 2-32-16-2 hex field layout, and rejects all-zero trace or span ids (the
// spec's invalid values). Unknown trailing fields of future versions are
// tolerated only behind a further "-".
func ParseTraceparent(s string) (SpanContext, bool) {
	if len(s) < traceparentLen {
		return SpanContext{}, false
	}
	if len(s) > traceparentLen && s[traceparentLen] != '-' {
		return SpanContext{}, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	var version [1]byte
	if hexInto(version[:], []byte(s[0:2]), "version") != nil || s[0:2] == "ff" {
		return SpanContext{}, false
	}
	var c SpanContext
	if hexInto(c.Trace[:], []byte(s[3:35]), "trace id") != nil ||
		hexInto(c.Span[:], []byte(s[36:52]), "span id") != nil {
		return SpanContext{}, false
	}
	var flags [1]byte
	if hexInto(flags[:], []byte(s[53:55]), "flags") != nil {
		return SpanContext{}, false
	}
	if !c.Valid() {
		return SpanContext{}, false
	}
	return c, true
}

// Span is one completed operation in a trace: a named interval with a
// parent link, the service that performed it, and a small bag of string
// attributes. Timestamps are microseconds since the Unix epoch (the native
// unit of the Chrome trace-event format), durations microseconds too.
//
// The JSON form (snake_case tags, hex ids, sorted attr keys — encoding/json
// sorts map keys) is the wire format spans travel in: trailing in chunk
// responses, and as the body of electd's /v1/traces endpoints.
type Span struct {
	Trace  TraceID `json:"trace_id"`
	ID     SpanID  `json:"span_id"`
	Parent SpanID  `json:"parent_id,omitzero"`
	// Name is the operation ("queue.wait", "chunk.dispatch", a route);
	// Service the component that performed it ("client", "electd", "sweep").
	Name    string `json:"name"`
	Service string `json:"service"`
	// Start is microseconds since the Unix epoch; Dur the duration in
	// microseconds (0 for instant events).
	Start int64 `json:"start_us"`
	Dur   int64 `json:"dur_us"`
	// Attrs carries small string annotations (attempt numbers, worker URLs,
	// job ids). Nil for attribute-free spans — the common case — so span
	// emission on the disabled path allocates nothing.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// End returns the span's end time in epoch microseconds.
func (s Span) End() int64 { return s.Start + s.Dur }
