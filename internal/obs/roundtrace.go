package obs

// RoundStat is one round's telemetry on the synchronous engine, or one
// unit-time window's on the asynchronous engine (window w covers event
// times [w, w+1) measured from the first wake-up). All quantities are
// derived from the execution itself, never from ambient state, so a traced
// run's timeline is as deterministic as its Result.
type RoundStat struct {
	// Round is the round number (sync; rounds start at 1) or window index
	// (async; windows start at 0).
	Round int
	// Messages and Words count protocol sends attributed to this round, as
	// in Result.Messages/Words (dropped messages count, duplicates do not).
	Messages int64
	Words    int64
	// Deliveries counts message copies actually delivered (duplicates
	// included, drops excluded).
	Deliveries int64
	// Active is the number of distinct nodes that sent at least one message
	// this round.
	Active int
	// Woke is the number of nodes that woke this round; Decided is the
	// number whose decision became final this round.
	Woke    int
	Decided int
	// Kinds counts this round's sends by payload kind.
	Kinds map[uint8]int64
}

// RoundTrace collects a per-round timeline. The engines call its methods
// only through a nil-guarded Config pointer, so a disabled probe costs one
// predictable branch per event and zero allocations — the PR 4 hot-path
// budget (TestRoundLoopAllocBudget) holds with the probe compiled in.
//
// Not safe for concurrent use; each engine run owns its collector.
type RoundTrace struct {
	base  int
	stats []RoundStat
	stamp []int // per-node: round+1 of the last round counted in Active
}

// NewRoundTrace builds a collector for n nodes whose first round is
// firstRound (1 on the sync engine, 0 on the async engine's windows).
func NewRoundTrace(n, firstRound int) *RoundTrace {
	return &RoundTrace{base: firstRound, stamp: make([]int, n)}
}

// at returns the stat for a round, extending the timeline (and zero-filling
// any gap — async windows may skip) as needed.
func (t *RoundTrace) at(round int) *RoundStat {
	i := round - t.base
	if i < 0 {
		i = 0
	}
	for len(t.stats) <= i {
		t.stats = append(t.stats, RoundStat{Round: t.base + len(t.stats)})
	}
	return &t.stats[i]
}

// Send records one protocol send in the given round.
func (t *RoundTrace) Send(round, node int, kind uint8, words int) {
	s := t.at(round)
	s.Messages++
	s.Words += int64(words)
	if s.Kinds == nil {
		s.Kinds = make(map[uint8]int64, 4)
	}
	s.Kinds[kind]++
	if t.stamp[node] != round+1 {
		t.stamp[node] = round + 1
		s.Active++
	}
}

// Deliver records copies delivered message copies in the given round.
func (t *RoundTrace) Deliver(round, copies int) {
	t.at(round).Deliveries += int64(copies)
}

// Woke records one node waking in the given round.
func (t *RoundTrace) Woke(round int) { t.at(round).Woke++ }

// Decided records one node's decision becoming final in the given round.
func (t *RoundTrace) Decided(round int) { t.at(round).Decided++ }

// Stats returns the collected timeline in round order. The slice is owned
// by the collector; callers that outlive it must copy.
func (t *RoundTrace) Stats() []RoundStat { return t.stats }
