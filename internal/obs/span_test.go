package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestTraceparentRoundTrip drives the encode/parse pair through a
// fuzz-style table: every minted context must survive the header round
// trip, and every malformed header must be rejected.
func TestTraceparentRoundTrip(t *testing.T) {
	for i := 0; i < 64; i++ {
		sc := NewSpanContext()
		if !sc.Valid() {
			t.Fatalf("NewSpanContext minted invalid context %+v", sc)
		}
		hdr := sc.Traceparent()
		got, ok := ParseTraceparent(hdr)
		if !ok || got != sc {
			t.Fatalf("round trip %q: got %+v ok=%v, want %+v", hdr, got, ok, sc)
		}
	}

	sc := NewSpanContext()
	child := sc.Child()
	if child.Trace != sc.Trace {
		t.Fatalf("Child changed trace id: %s -> %s", sc.Trace, child.Trace)
	}
	if child.Span == sc.Span || child.Span.IsZero() {
		t.Fatalf("Child span id %s not fresh (parent %s)", child.Span, sc.Span)
	}

	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		in string
		ok bool
	}{
		{valid, true},
		// Any flags byte and future versions with trailing fields parse.
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", true},
		{"cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", true},
		{"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", true},
		// Malformed: wrong lengths, separators, hex, reserved version,
		// zero ids, trailing garbage without a separator.
		{"", false},
		{"00", false},
		{valid[:len(valid)-1], false},
		{"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"00-00000000000000000000000000000000-00f067aa0ba902b7-01", false},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", false},
		{"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", false},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902zz-01", false},
		{"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7-01", false},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7_01", false},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0x", false},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", false},
	}
	for _, tc := range cases {
		if _, ok := ParseTraceparent(tc.in); ok != tc.ok {
			t.Errorf("ParseTraceparent(%q) ok=%v, want %v", tc.in, ok, tc.ok)
		}
	}

	if got := (SpanContext{}).Traceparent(); got != "" {
		t.Fatalf("invalid context rendered %q, want empty", got)
	}
}

// TestSpanJSONRoundTrip pins the span wire format: hex ids, snake_case
// fields, omitted zero parent, and a lossless decode.
func TestSpanJSONRoundTrip(t *testing.T) {
	sc, _ := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	s := Span{
		Trace: sc.Trace, ID: sc.Span,
		Name: "queue.wait", Service: "electd",
		Start: 1700000000000000, Dur: 1500,
		Attrs: map[string]string{"job": "jabc", "kind": "chunk"},
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"trace_id":"4bf92f3577b34da6a3ce929d0e0e4736","span_id":"00f067aa0ba902b7",` +
		`"name":"queue.wait","service":"electd","start_us":1700000000000000,"dur_us":1500,` +
		`"attrs":{"job":"jabc","kind":"chunk"}}`
	if string(data) != want {
		t.Fatalf("span wire form drifted:\n got %s\nwant %s", data, want)
	}
	var back Span
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Trace != s.Trace || back.ID != s.ID || back.Name != s.Name ||
		back.Start != s.Start || back.Dur != s.Dur || back.Attrs["job"] != "jabc" {
		t.Fatalf("decode mismatch: %+v", back)
	}
	if strings.Contains(string(data), "parent_id") {
		t.Fatalf("zero parent should be omitted: %s", data)
	}
}

// TestSpanContextPropagation checks the context plumbing used between the
// HTTP middleware and the handlers.
func TestSpanContextPropagation(t *testing.T) {
	if got := SpanFromContext(t.Context()); got.Valid() {
		t.Fatalf("empty context yielded %+v", got)
	}
	sc := NewSpanContext()
	ctx := ContextWithSpan(t.Context(), sc)
	if got := SpanFromContext(ctx); got != sc {
		t.Fatalf("got %+v, want %+v", got, sc)
	}
}
